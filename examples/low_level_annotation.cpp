/**
 * @file
 * Annotating a low-level PM program (no transactional library): a
 * checksum-protected record updated with raw CLWB/SFENCE, showing the
 * whole Table 2 interface — commit variables with explicit commit
 * ranges, skip-failure and skip-detection regions, and an explicit
 * failure point in the middle of an ordering interval (the paper's
 * suggested treatment of checksum-based recovery, §5.5).
 *
 * Build & run:  ./examples/low_level_annotation
 */

#include <cstdio>

#include "xfd.hh"

using namespace xfd;

namespace
{

/** Two records versioned by a generation counter (A/B scheme). */
struct Root
{
    std::uint64_t gen; ///< commit variable: low bit picks the slot
    std::uint8_t pad[56];
    std::uint64_t slot[2][4]; ///< two versions of the record
};

Root *
root(trace::PmRuntime &rt)
{
    return static_cast<Root *>(rt.pool().toHost(rt.pool().base()));
}

void
annotate(trace::PmRuntime &rt, Root *r)
{
    rt.addCommitVar(r->gen);
    rt.addCommitRange(r->gen, r->slot, sizeof(r->slot));
}

/** Write the new version out of place, then bump the generation. */
void
update(trace::PmRuntime &rt, std::uint64_t base_val, bool buggy)
{
    Root *r = root(rt);
    trace::RoiScope roi(rt);
    annotate(rt, r);

    std::uint64_t next = (rt.load(r->gen) + 1) & 1;
    for (unsigned i = 0; i < 4; i++)
        rt.store(r->slot[next][i], base_val + i);
    rt.persistBarrier(r->slot[next], sizeof(r->slot[next]));

    // An extra failure point right before the commit: the paper
    // suggests manual failure points to stress checksum/generation
    // commits that sit between ordering points.
    rt.addFailurePoint();

    if (buggy) {
        // Bug: the generation is bumped *before* the new version is
        // complete... simulated by re-dirtying a cell afterwards.
        rt.store(r->gen, rt.load(r->gen) + 1);
        rt.persistBarrier(&r->gen, 8);
        rt.store(r->slot[next][0], base_val + 100);
        rt.persistBarrier(&r->slot[next][0], 8);
    } else {
        rt.store(r->gen, rt.load(r->gen) + 1);
        rt.persistBarrier(&r->gen, 8);
    }
}

void
recoverAndRead(trace::PmRuntime &rt)
{
    Root *r = root(rt);
    trace::RoiScope roi(rt);
    annotate(rt, r);

    // Reading the generation is a benign cross-failure race.
    std::uint64_t cur = rt.load(r->gen) & 1;
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < 4; i++)
        sum += rt.load(r->slot[cur][i]);

    // Diagnostics are not part of the consistency protocol: exclude
    // them from detection.
    rt.skipDetectionBegin();
    (void)rt.load(r->slot[0][0]);
    (void)rt.load(r->slot[1][0]);
    rt.skipDetectionEnd();
    (void)sum;
}

void
runOnce(const char *label, bool buggy)
{
    auto res = Campaign::forProgram(
        [&](trace::PmRuntime &rt) {
            // Seed version 0 outside the region of interest. The
            // commit variable is registered first so the seeding
            // commit (gen = 0) versions the initial record.
            Root *r = root(rt);
            annotate(rt, r);
            for (unsigned i = 0; i < 4; i++)
                rt.store(r->slot[0][i], std::uint64_t{i});
            rt.persistBarrier(r->slot[0], sizeof(r->slot[0]));
            rt.store(r->gen, std::uint64_t{0});
            rt.persistBarrier(&r->gen, 8);
            update(rt, 1000, buggy);
        },
        [&](trace::PmRuntime &rt) { recoverAndRead(rt); })
                   .poolSize(1 << 20)
                   .run();
    // statistics() replaces reaching into res.stats directly.
    std::printf("---- %s ----  [%zu failure point(s)]\n%s\n", label,
                res.statistics().failurePoints,
                res.summary().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    runOnce("A/B generation scheme, correct commit order", false);
    runOnce("A/B generation scheme, version dirtied after commit",
            true);
    return 0;
}
