/**
 * @file
 * Auditing a real storage engine: run a full XFDetector campaign over
 * the PM-Redis workload, first as shipped (reproducing §6.3.2 bug 3 —
 * the server initializes num_dict_entries outside any transaction),
 * then with the initialization fixed.
 *
 * Build & run:  ./examples/kvstore_audit
 */

#include <cstdio>

#include "workloads/workload.hh"
#include "xfd.hh"

using namespace xfd;

namespace
{

/**
 * A minimal CampaignHooks implementation: the versioned observer
 * interface consolidates the old scattered std::function callbacks.
 * Here we only watch progress; onPreTraceReady / onFailurePoint keep
 * their empty defaults.
 */
struct AuditHooks : core::CampaignHooks
{
    void
    onProgress(const core::ProgressUpdate &u) override
    {
        // done/total count failure points *covered* — a batched
        // signature group lands all its members at once.
        std::fprintf(stderr, "\r  audited %zu/%zu points, %zu bugs",
                     u.done, u.total, u.bugs);
        if (u.done == u.total)
            std::fprintf(stderr, "\n");
    }
};

core::CampaignResult
audit(bool shipped)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 0;
    cfg.testOps = 6;
    cfg.postOps = 4;
    cfg.roiFromStart = true; // cover server initialization
    if (shipped)
        cfg.bugs.enable("redis.shipped.init_no_tx");
    auto redis = workloads::makeWorkload("redis", std::move(cfg));

    core::CampaignObserver obsv;
    AuditHooks hooks;
    obsv.hooks = &hooks;
    return Campaign::forProgram(
               [&](trace::PmRuntime &rt) { redis->pre(rt); },
               [&](trace::PmRuntime &rt) { redis->post(rt); })
        .poolSize(1 << 22)
        .backend("batched") // fold signature-equivalent points
        .observer(&obsv)
        .run();
}

void
report(const char *title, const core::CampaignResult &res)
{
    const core::CampaignStats &st = res.statistics();
    std::printf("==== %s ====\n%s", title, res.summary().c_str());
    std::printf("backend \"%s\": %zu groups scheduled, %zu points "
                "folded into representatives\n\n",
                res.config().backend.c_str(), st.batchGroups,
                st.lintPrunedPoints);
}

} // namespace

int
main()
{
    setVerbose(false);

    report("PM-Redis, as shipped", audit(true));
    report("PM-Redis, initialization transactional", audit(false));
    return 0;
}
