/**
 * @file
 * Auditing a real storage engine: run a full XFDetector campaign over
 * the PM-Redis workload, first as shipped (reproducing §6.3.2 bug 3 —
 * the server initializes num_dict_entries outside any transaction),
 * then with the initialization fixed.
 *
 * Build & run:  ./examples/kvstore_audit
 */

#include <cstdio>

#include "workloads/workload.hh"
#include "xfd.hh"

using namespace xfd;

namespace
{

core::CampaignResult
audit(bool shipped)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 0;
    cfg.testOps = 6;
    cfg.postOps = 4;
    cfg.roiFromStart = true; // cover server initialization
    if (shipped)
        cfg.bugs.enable("redis.shipped.init_no_tx");
    auto redis = workloads::makeWorkload("redis", std::move(cfg));

    return Campaign::forProgram(
               [&](trace::PmRuntime &rt) { redis->pre(rt); },
               [&](trace::PmRuntime &rt) { redis->post(rt); })
        .poolSize(1 << 22)
        .run();
}

} // namespace

int
main()
{
    setVerbose(false);

    std::printf("==== PM-Redis, as shipped ====\n%s\n",
                audit(true).summary().c_str());
    std::printf("==== PM-Redis, initialization transactional ====\n%s\n",
                audit(false).summary().c_str());
    return 0;
}
