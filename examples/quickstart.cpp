/**
 * @file
 * Quickstart: detect cross-failure bugs in a 40-line PM program.
 *
 * The program is the paper's Figure 2: an array slot is updated under
 * the protection of a backup slot and a `valid` commit variable. The
 * as-printed version sets `valid` to inverted values, so recovery
 * either skips a needed rollback (a cross-failure race) or rolls back
 * from a stale backup (a cross-failure semantic bug). XFDetector
 * finds both; the corrected version comes back clean.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>

#include "xfd.hh"

using namespace xfd;

namespace
{

/** Persistent layout, at the pool base. */
struct Root
{
    std::int64_t backupIdx;
    std::int64_t backupVal;
    std::uint8_t valid;
    std::uint8_t pad[47];
    std::int64_t arr[8];
};

Root *
root(trace::PmRuntime &rt)
{
    return static_cast<Root *>(rt.pool().toHost(rt.pool().base()));
}

void
annotate(trace::PmRuntime &rt, Root *r)
{
    // Table 2 annotations: `valid` versions the backup and the array.
    rt.addCommitVar(r->valid);
    rt.addCommitRange(r->valid, &r->backupIdx, 16);
    rt.addCommitRange(r->valid, r->arr, sizeof(r->arr));
}

/** update(idx, val) — pre-failure stage (paper Figure 2). */
void
preFailure(trace::PmRuntime &rt, bool fixed)
{
    Root *r = root(rt);
    trace::RoiScope roi(rt);
    annotate(rt, r);

    int idx = 5;
    rt.store(r->backupIdx, std::int64_t{idx});
    rt.store(r->backupVal, r->arr[idx]);
    rt.persistBarrier(&r->backupIdx, 16);
    rt.store(r->valid, std::uint8_t(fixed ? 1 : 0)); // buggy: 0
    rt.persistBarrier(&r->valid, 1);
    rt.store(r->arr[idx], std::int64_t{42});
    rt.persistBarrier(&r->arr[idx], 8);
    rt.store(r->valid, std::uint8_t(fixed ? 0 : 1)); // buggy: 1
    rt.persistBarrier(&r->valid, 1);
}

/** recover() + resumption — post-failure stage. */
void
postFailure(trace::PmRuntime &rt)
{
    Root *r = root(rt);
    trace::RoiScope roi(rt);
    annotate(rt, r);

    if (rt.load(r->valid)) { // benign cross-failure race
        std::int64_t idx = rt.load(r->backupIdx);
        rt.store(r->arr[idx], rt.load(r->backupVal));
        rt.persistBarrier(&r->arr[idx], 8);
        rt.store(r->valid, std::uint8_t{0});
        rt.persistBarrier(&r->valid, 1);
    }
    (void)rt.load(r->arr[5]); // resumption reads the slot
}

void
runOnce(const char *label, bool fixed)
{
    xfd::CampaignResult res =
        xfd::Campaign::forProgram(
            [&](trace::PmRuntime &rt) { preFailure(rt, fixed); },
            [&](trace::PmRuntime &rt) { postFailure(rt); })
            .poolSize(1 << 20)
            .run();
    std::printf("---- %s ----\n%s\n", label, res.summary().c_str());
    // CampaignResult carries the findings as data, not just text:
    // findings() for the deduplicated reports, fingerprint() for the
    // schedule-invariant identity xfdetect --fingerprint emits.
    if (!res.findings().empty())
        std::printf("fingerprint:\n%s\n", res.fingerprint().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    runOnce("as printed in the paper (buggy)", false);
    runOnce("corrected valid-bit protocol", true);
    return 0;
}
