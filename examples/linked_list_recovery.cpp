/**
 * @file
 * The paper's Figure 1: a transactional persistent linked list whose
 * `length` is updated inside the transaction but never TX_ADDed.
 *
 * Three variants run under detection:
 *  1. buggy append + naive recovery      -> cross-failure race on
 *     `length` (the post-failure pop() reads a value that may not
 *     have persisted);
 *  2. buggy append + recover_alt()       -> clean: recovery recounts
 *     the list and overwrites `length`, the paper's preferred fix;
 *  3. fully logged append + naive recovery -> clean.
 *
 * Build & run:  ./examples/linked_list_recovery
 */

#include <cstdio>

#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"
#include "xfd.hh"

using namespace xfd;

namespace
{

struct ListNode
{
    std::uint64_t value;
    pm::PPtr<ListNode> next;
};

struct ListRoot
{
    pm::PPtr<ListNode> head;
    std::uint64_t length;
};

/** append(new_node) — Figure 1 lines 1-8. */
void
append(trace::PmRuntime &rt, pmlib::ObjPool &op, std::uint64_t value,
       bool log_length)
{
    ListRoot *r = op.root<ListRoot>();
    pmlib::Tx tx(op);

    Addr na = op.heap().palloc(sizeof(ListNode));
    auto *node = static_cast<ListNode *>(rt.pool().toHost(na));
    tx.addRange(node, sizeof(ListNode));
    rt.setPm(node, 0, sizeof(ListNode));
    rt.store(node->value, value);
    rt.store(node->next, rt.load(r->head));

    tx.add(r->head); // TX_ADD(list.head), Figure 1 line 4
    rt.store(r->head, pm::PPtr<ListNode>(na));
    if (log_length)
        tx.add(r->length); // the missing TX_ADD
    rt.store(r->length, rt.load(r->length) + 1);
    tx.commit();
}

/** pop() — Figure 1 lines 13-21: reads length, then unlinks head. */
void
pop(trace::PmRuntime &rt, pmlib::ObjPool &op)
{
    ListRoot *r = op.root<ListRoot>();
    pmlib::Tx tx(op);
    if (rt.load(r->length)) {
        pm::PPtr<ListNode> head = rt.load(r->head);
        if (!head.null()) {
            tx.add(r->head);
            rt.store(r->head, rt.load(head.get(rt.pool())->next));
            tx.add(r->length);
            rt.store(r->length, rt.load(r->length) - 1);
        }
    }
    tx.commit();
}

/** recover_alt() — Figure 1 lines 22-31: recount and overwrite. */
void
recoverAlt(trace::PmRuntime &rt, pmlib::ObjPool &op)
{
    ListRoot *r = op.root<ListRoot>();
    std::uint64_t count = 0;
    pm::PPtr<ListNode> cur = rt.load(r->head);
    while (!cur.null()) {
        count++;
        cur = rt.load(cur.get(rt.pool())->next);
    }
    // No transaction needed: this value is reset on every recovery.
    rt.store(r->length, count);
    rt.persistBarrier(&r->length, sizeof(r->length));
}

void
runVariant(const char *label, bool log_length, bool alt_recovery)
{
    auto res = Campaign::forProgram(
        [&](trace::PmRuntime &rt) {
            pmlib::ObjPool op =
                pmlib::ObjPool::create(rt, "list", sizeof(ListRoot));
            append(rt, op, 10, true); // one committed element
            trace::RoiScope roi(rt);
            append(rt, op, 20, log_length);
        },
        [&](trace::PmRuntime &rt) {
            // ObjPool::open applies the undo logs (recover(), line 9).
            pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(
                rt, "list", sizeof(ListRoot));
            trace::RoiScope roi(rt);
            if (alt_recovery)
                recoverAlt(rt, op);
            pop(rt, op); // resumption
        })
                   .poolSize(1 << 21)
                   .run();
    // findings() is the structured view of what summary() prints.
    std::printf("---- %s ----  [%zu finding(s)]\n%s\n", label,
                res.findings().size(), res.summary().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    runVariant("append without TX_ADD(length), naive recovery", false,
               false);
    runVariant("append without TX_ADD(length), recover_alt()", false,
               true);
    runVariant("fully logged append, naive recovery", true, false);
    return 0;
}
