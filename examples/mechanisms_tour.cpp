/**
 * @file
 * A tour of the Table 1 crash-consistency mechanisms, each driven
 * under failure injection:
 *
 *   undo logging       -> pmlib::Tx          (TX_BEGIN/TX_ADD/TX_END)
 *   redo logging       -> pmlib::RedoTx
 *   checkpointing      -> pmlib::Checkpointer
 *   shadow paging      -> pmlib::shadowUpdate
 *   operational logging-> pmlib::OpLog
 *
 * The same logical update — bump two fields of a record — runs under
 * every mechanism; each variant must come back clean (the detector
 * validates the mechanism implementations themselves).
 *
 * Build & run:  ./examples/mechanisms_tour
 */

#include <cstdio>

#include "pmlib/checkpoint.hh"
#include "pmlib/objpool.hh"
#include "pmlib/oplog.hh"
#include "pmlib/redo.hh"
#include "pmlib/shadow_obj.hh"
#include "pmlib/tx.hh"
#include "xfd.hh"

using namespace xfd;
using trace::PmRuntime;

namespace
{

struct Record
{
    std::uint64_t hits;
    std::uint64_t bytes;
};

/** Root: the record, plus bookkeeping for each mechanism. */
struct Root
{
    Record rec;
    pm::PPtr<Record> shadowRec;
    std::uint64_t redoArea;
    std::uint64_t ckptData;
    std::uint64_t ckptArea;
    std::uint64_t opsArea;
};

core::CampaignResult
runMechanism(const char *layout,
             const std::function<void(PmRuntime &, pmlib::ObjPool &)> &setup,
             const std::function<void(PmRuntime &, pmlib::ObjPool &)> &update,
             const std::function<void(PmRuntime &, pmlib::ObjPool &)> &recover)
{
    return Campaign::forProgram(
        [&](PmRuntime &rt) {
            pmlib::ObjPool op =
                pmlib::ObjPool::create(rt, layout, sizeof(Root));
            setup(rt, op);
            trace::RoiScope roi(rt);
            for (int i = 0; i < 3; i++)
                update(rt, op);
        },
        [&](PmRuntime &rt) {
            pmlib::ObjPool op =
                pmlib::ObjPool::openOrCreate(rt, layout, sizeof(Root));
            trace::RoiScope roi(rt);
            recover(rt, op);
        })
        .poolSize(1 << 22)
        .run();
}

void
show(const char *name, const core::CampaignResult &res)
{
    std::printf("%-22s %3zu failure points, %zu finding(s)%s\n", name,
                res.statistics().failurePoints, res.findings().size(),
                res.findings().empty() ? "" : "  <-- unexpected!");
    for (const auto &b : res.findings())
        std::printf("%s\n", b.str().c_str());
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("each mechanism performs the same record update under "
                "failure injection:\n\n");

    // ---- undo logging -------------------------------------------
    show("undo logging",
         runMechanism(
             "tour_undo", [](PmRuntime &, pmlib::ObjPool &) {},
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 pmlib::Tx tx(op);
                 tx.add(r->rec);
                 rt.store(r->rec.hits, rt.load(r->rec.hits) + 1);
                 rt.store(r->rec.bytes, rt.load(r->rec.bytes) + 512);
                 tx.commit();
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 (void)rt.load(r->rec.hits); // open() already recovered
                 (void)rt.load(r->rec.bytes);
             }));

    // ---- redo logging -------------------------------------------
    show("redo logging",
         runMechanism(
             "tour_redo",
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 rt.store(r->redoArea,
                          op.heap().palloc(pmlib::RedoTx::areaSize()));
                 rt.persistBarrier(&r->redoArea, 8);
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 pmlib::RedoTx tx(op, r->redoArea);
                 tx.stageField(r->rec.hits, rt.load(r->rec.hits) + 1);
                 tx.stageField(r->rec.bytes,
                               rt.load(r->rec.bytes) + 512);
                 tx.commit();
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 if (r->redoArea)
                     pmlib::RedoTx::recover(op, r->redoArea);
                 (void)rt.load(r->rec.hits);
                 (void)rt.load(r->rec.bytes);
             }));

    // ---- checkpointing ------------------------------------------
    constexpr std::size_t dsz = sizeof(Record);
    show("checkpointing",
         runMechanism(
             "tour_ckpt",
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 rt.store(r->ckptData, op.heap().palloc(dsz));
                 rt.store(r->ckptArea, op.heap().palloc(
                                           pmlib::Checkpointer::areaSize(
                                               dsz)));
                 rt.persistBarrier(&r->ckptData, 16);
                 pmlib::Checkpointer ck(op, r->ckptArea, r->ckptData,
                                        dsz);
                 ck.annotate();
                 ck.format();
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 pmlib::Checkpointer ck(op, r->ckptArea, r->ckptData,
                                        dsz);
                 ck.annotate();
                 auto *rec = static_cast<Record *>(
                     rt.pool().toHost(r->ckptData, dsz));
                 rt.store(rec->hits, rt.load(rec->hits) + 1);
                 rt.persistBarrier(&rec->hits, 8);
                 ck.checkpoint();
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 if (!r->ckptArea)
                     return;
                 pmlib::Checkpointer ck(op, r->ckptArea, r->ckptData,
                                        dsz);
                 ck.annotate();
                 ck.restore();
                 auto *rec = static_cast<Record *>(
                     rt.pool().toHost(r->ckptData, dsz));
                 (void)rt.load(rec->hits);
             }));

    // ---- shadow paging ------------------------------------------
    show("shadow paging",
         runMechanism(
             "tour_shadow", [](PmRuntime &, pmlib::ObjPool &) {},
             [](PmRuntime &, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 pmlib::shadowUpdate(
                     op, r->shadowRec, [](PmRuntime &rt, Record *rec) {
                         rt.store(rec->hits, rec->hits + 1);
                         rt.store(rec->bytes, rec->bytes + 512);
                     });
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 pm::PPtr<Record> p = rt.load(r->shadowRec);
                 if (!p.null()) {
                     (void)rt.load(p.get(rt.pool())->hits);
                     (void)rt.load(p.get(rt.pool())->bytes);
                 }
             }));

    // ---- operational logging ------------------------------------
    show("operational logging",
         runMechanism(
             "tour_oplog",
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 rt.store(r->opsArea,
                          op.heap().palloc(pmlib::OpLog::areaSize()));
                 rt.persistBarrier(&r->opsArea, 8);
                 pmlib::OpLog log(op, r->opsArea);
                 log.format();
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 pmlib::OpLog log(op, r->opsArea);
                 // Blind (idempotent) operation: "set hits to N".
                 static std::uint64_t n = 0;
                 n += 7;
                 log.append({1, 0, n});
                 rt.store(r->rec.hits, n);
                 rt.persistBarrier(&r->rec.hits, 8);
                 log.markApplied();
             },
             [](PmRuntime &rt, pmlib::ObjPool &op) {
                 Root *r = op.root<Root>();
                 if (!r->opsArea)
                     return;
                 pmlib::OpLog log(op, r->opsArea);
                 log.replay([&](const pmlib::LoggedOp &o) {
                     rt.store(r->rec.hits, o.arg1);
                     rt.persistBarrier(&r->rec.hits, 8);
                 });
                 (void)rt.load(r->rec.hits);
             }));

    std::printf("\nall five mechanisms should report 0 findings: the "
                "detector validates the\nmechanism implementations "
                "themselves.\n");
    return 0;
}
