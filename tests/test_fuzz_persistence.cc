/**
 * @file
 * Randomized differential test of the whole detection pipeline.
 *
 * Programs are random sequences of {write slot, flush slot, fence}
 * over a handful of cache-line-separated slots. An independent oracle
 * (a 20-line re-implementation of the persistence rules, sharing no
 * code with the shadow PM) predicts, for every fence-delimited
 * failure point, which slots are not guaranteed persisted. The
 * driver's race findings must match the oracle exactly — no misses,
 * no false alarms — across hundreds of seeded programs.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/driver.hh"
#include "harness.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;

constexpr unsigned numSlots = 4;
constexpr std::size_t slotStride = 128; // two lines apart: no sharing

enum class OpKind : std::uint8_t { Write, Flush, Fence };

struct FuzzOp
{
    OpKind kind;
    unsigned slot; // for Write/Flush
};

std::vector<FuzzOp>
generate(std::uint64_t seed, unsigned length)
{
    Rng rng(seed);
    std::vector<FuzzOp> ops;
    for (unsigned i = 0; i < length; i++) {
        std::uint64_t pick = rng.below(10);
        if (pick < 5) {
            ops.push_back(
                {OpKind::Write, static_cast<unsigned>(rng.below(numSlots))});
        } else if (pick < 8) {
            ops.push_back(
                {OpKind::Flush, static_cast<unsigned>(rng.below(numSlots))});
        } else {
            ops.push_back({OpKind::Fence, 0});
        }
    }
    // Terminate with a fence so the last interval is testable.
    ops.push_back({OpKind::Fence, 0});
    return ops;
}

/**
 * Independent oracle: which slots can a post-failure read race on at
 * *any* fence-delimited failure point? (The driver aggregates across
 * failure points, so the expectation set is the union.)
 */
std::set<unsigned>
oracleRacingSlots(const std::vector<FuzzOp> &ops)
{
    enum class S : std::uint8_t { Clean, Dirty, Flushed };
    std::set<unsigned> racy;
    S state[numSlots];
    bool written[numSlots];
    for (unsigned s = 0; s < numSlots; s++) {
        state[s] = S::Clean;
        written[s] = false;
    }
    for (const auto &op : ops) {
        if (op.kind == OpKind::Fence) {
            // Failure point just before this fence: every slot that
            // was written but is not persisted-clean races.
            for (unsigned s = 0; s < numSlots; s++) {
                if (written[s] && state[s] != S::Clean)
                    racy.insert(s);
            }
            for (unsigned s = 0; s < numSlots; s++) {
                if (state[s] == S::Flushed)
                    state[s] = S::Clean;
            }
        } else if (op.kind == OpKind::Write) {
            state[op.slot] = S::Dirty;
            written[op.slot] = true;
        } else { // Flush
            if (state[op.slot] == S::Dirty)
                state[op.slot] = S::Flushed;
        }
    }
    return racy;
}

std::set<unsigned>
detectorRacingSlots(const std::vector<FuzzOp> &ops, unsigned gran = 1)
{
    pm::PmPool pool(1 << 20);
    core::DetectorConfig cfg;
    cfg.elideEmptyFailurePoints = false; // test every fence
    cfg.granularity = gran;
    core::Driver driver(pool, cfg);

    auto slot_host = [&](pm::PmPool &p, unsigned s) {
        return p.at<std::uint64_t>(s * slotStride);
    };

    auto res = driver.run(
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            std::uint64_t v = 1;
            for (const auto &op : ops) {
                switch (op.kind) {
                  case OpKind::Write:
                    rt.store(*slot_host(rt.pool(), op.slot), v++);
                    break;
                  case OpKind::Flush:
                    rt.clwb(slot_host(rt.pool(), op.slot), 8);
                    break;
                  case OpKind::Fence:
                    rt.sfence();
                    break;
                }
            }
        },
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            // One source line per slot: findings dedupe on the
            // reader/writer line pair, and this test needs per-slot
            // resolution.
            (void)rt.load(*slot_host(rt.pool(), 0));
            (void)rt.load(*slot_host(rt.pool(), 1));
            (void)rt.load(*slot_host(rt.pool(), 2));
            (void)rt.load(*slot_host(rt.pool(), 3));
        });

    std::set<unsigned> racy;
    for (const auto &b : res.bugs) {
        if (b.type != core::BugType::CrossFailureRace)
            continue;
        racy.insert(static_cast<unsigned>(
            (b.addr - pool.base()) / slotStride));
    }
    return racy;
}

class FuzzPersistence : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzPersistence, DriverMatchesOracle)
{
    std::uint64_t seed = GetParam();
    for (unsigned round = 0; round < 8; round++) {
        std::uint64_t s = seed * 1000 + round;
        auto ops = generate(s, 24);
        auto expect = oracleRacingSlots(ops);
        auto got = detectorRacingSlots(ops);
        EXPECT_EQ(got, expect) << "replay with XFD_FUZZ_SEED=" << s;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPersistence,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(FuzzPersistenceGranularity, CoarseCellsMatchOracleToo)
{
    // Slots are 128 bytes apart, so coarser shadow cells cannot
    // false-share across slots; the oracle must hold at 8B cells.
    for (std::uint64_t seed = 100; seed < 110; seed++) {
        auto ops = generate(seed, 24);
        EXPECT_EQ(detectorRacingSlots(ops, 8), oracleRacingSlots(ops))
            << "replay with XFD_FUZZ_SEED=" << seed;
    }
}

TEST(FuzzPersistenceReplay, ReplayFromEnv)
{
    std::uint64_t s = 0;
    if (!xfdtest::fuzzSeedFromEnv(s))
        GTEST_SKIP()
            << "set XFD_FUZZ_SEED=<seed from a failure message> to "
               "replay a single fuzz program";
    auto ops = generate(s, 24);
    EXPECT_EQ(detectorRacingSlots(ops), oracleRacingSlots(ops))
        << "XFD_FUZZ_SEED=" << s;
}

TEST(FuzzPersistenceOracle, SanityOnKnownSequences)
{
    // write A; fence               -> A races (never flushed)
    auto racy = oracleRacingSlots(
        {{OpKind::Write, 0}, {OpKind::Fence, 0}});
    EXPECT_EQ(racy, (std::set<unsigned>{0}));

    // write A; flush A; fence      -> A races only at the pre-fence
    //                                 point (dirty there), then clean
    racy = oracleRacingSlots(
        {{OpKind::Write, 0}, {OpKind::Flush, 0}, {OpKind::Fence, 0}});
    EXPECT_EQ(racy, (std::set<unsigned>{0}));

    // write A; flush A; fence; fence -> second point clean, but the
    //                                   union still contains A
    racy = oracleRacingSlots({{OpKind::Write, 0},
                              {OpKind::Flush, 0},
                              {OpKind::Fence, 0},
                              {OpKind::Fence, 0}});
    EXPECT_EQ(racy, (std::set<unsigned>{0}));
}

} // namespace
