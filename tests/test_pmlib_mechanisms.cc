/**
 * @file
 * Tests for the additional Table 1 crash-consistency mechanisms:
 * redo logging, checkpointing, operational logging and shadow paging.
 * Each mechanism gets functional tests plus detection campaigns — the
 * correct protocol must be clean under failure injection, and a
 * seeded protocol violation must be caught.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "pmlib/checkpoint.hh"
#include "pmlib/objpool.hh"
#include "pmlib/oplog.hh"
#include "pmlib/redo.hh"
#include "pmlib/shadow_obj.hh"

namespace
{

using namespace xfd;
using core::BugType;
using pmlib::Checkpointer;
using pmlib::LoggedOp;
using pmlib::ObjPool;
using pmlib::OpLog;
using pmlib::RedoTx;
using trace::PmRuntime;
using trace::Stage;

struct MechTest : ::testing::Test
{
    MechTest() : pool(1 << 21), rt(pool, buf, Stage::PreFailure) {}

    ObjPool
    makePool()
    {
        return ObjPool::create(rt, "mech", 256);
    }

    pm::PmPool pool;
    trace::TraceBuffer buf;
    PmRuntime rt;
};

// ------------------------------------------------------------------
// Redo logging
// ------------------------------------------------------------------

TEST_F(MechTest, RedoCommitAppliesStagedWrites)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(RedoTx::areaSize());
    auto *x = op.root<std::uint64_t>();
    {
        RedoTx tx(op, area);
        tx.stageField(*x, std::uint64_t{7});
        EXPECT_EQ(*x, 0u); // nothing in place before commit
        tx.commit();
    }
    EXPECT_EQ(*x, 7u);
}

TEST_F(MechTest, RedoAbortLeavesDataUntouched)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(RedoTx::areaSize());
    auto *x = op.root<std::uint64_t>();
    {
        RedoTx tx(op, area);
        tx.stageField(*x, std::uint64_t{7});
        tx.abort();
    }
    EXPECT_EQ(*x, 0u);
}

TEST_F(MechTest, RedoDestructorAborts)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(RedoTx::areaSize());
    auto *x = op.root<std::uint64_t>();
    {
        RedoTx tx(op, area);
        tx.stageField(*x, std::uint64_t{7});
    }
    EXPECT_EQ(*x, 0u);
}

TEST_F(MechTest, RedoRecoverReappliesSealedLog)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(RedoTx::areaSize());
    auto *x = op.root<std::uint64_t>();
    {
        RedoTx tx(op, area);
        tx.stageField(*x, std::uint64_t{9});
        tx.commit();
    }
    // Simulate a crash right after the seal: re-seal manually.
    auto *a = static_cast<pmlib::RedoArea *>(pool.toHost(area));
    a->sealedCount = 1;
    *x = 0; // pretend the home write was lost
    RedoTx::recover(op, area);
    EXPECT_EQ(*x, 9u);
    EXPECT_EQ(a->sealedCount, 0u);
}

TEST_F(MechTest, RedoLargeRangeChunks)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(RedoTx::areaSize());
    Addr blob = op.heap().palloc(1024);
    std::vector<std::uint8_t> payload(1024, 0x5a);
    {
        RedoTx tx(op, area);
        tx.stage(pool.toHost(blob), payload.data(), payload.size());
        tx.commit();
    }
    auto *p = static_cast<std::uint8_t *>(pool.toHost(blob));
    EXPECT_EQ(p[0], 0x5au);
    EXPECT_EQ(p[1023], 0x5au);
}

TEST(RedoDetector, CorrectRedoProtocolIsClean)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "redo", 64);
            Addr area = op.heap().palloc(RedoTx::areaSize());
            auto *root = op.root<std::uint64_t>();
            rt.store(*root, area); // remember the area address
            rt.persistBarrier(root, 8);
            trace::RoiScope roi(rt);
            auto *x = op.root<std::uint64_t[4]>();
            for (int i = 1; i <= 2; i++) {
                RedoTx tx(op, area);
                tx.stageField((*x)[1],
                              static_cast<std::uint64_t>(i * 10));
                tx.stageField((*x)[2],
                              static_cast<std::uint64_t>(i * 20));
                tx.commit();
            }
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "redo", 64);
            trace::RoiScope roi(rt);
            auto *root = op.root<std::uint64_t>();
            Addr area = *root; // volatile bookkeeping read
            if (area) {
                RedoTx::recover(op, area);
                auto *x = op.root<std::uint64_t[4]>();
                (void)rt.load((*x)[1]);
                (void)rt.load((*x)[2]);
            }
        });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
    EXPECT_GT(res.stats.failurePoints, 0u);
}

TEST(RedoDetector, InPlaceWriteBesideRedoLogRaces)
{
    // Violation: one field updated in place (unlogged, unflushed)
    // while the rest goes through the redo log.
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "redo2", 64);
            Addr area = op.heap().palloc(RedoTx::areaSize());
            auto *root = op.root<std::uint64_t>();
            rt.store(*root, area);
            rt.persistBarrier(root, 8);
            trace::RoiScope roi(rt);
            auto *x = op.root<std::uint64_t[4]>();
            RedoTx tx(op, area);
            tx.stageField((*x)[1], std::uint64_t{10});
            rt.store((*x)[2], std::uint64_t{20}); // in place, no persist
            tx.commit();
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "redo2", 64);
            trace::RoiScope roi(rt);
            auto *root = op.root<std::uint64_t>();
            Addr area = *root;
            if (area) {
                RedoTx::recover(op, area);
                auto *x = op.root<std::uint64_t[4]>();
                (void)rt.load((*x)[1]);
                (void)rt.load((*x)[2]);
            }
        });
    EXPECT_GE(res.count(BugType::CrossFailureRace), 1u)
        << res.summary();
}

// ------------------------------------------------------------------
// Checkpointing
// ------------------------------------------------------------------

struct CkptTest : MechTest
{
    static constexpr std::size_t dataSize = 64;
};

TEST_F(CkptTest, FormatSnapshotsInitialData)
{
    ObjPool op = makePool();
    Addr data = op.heap().palloc(dataSize);
    Addr area = op.heap().palloc(Checkpointer::areaSize(dataSize));
    auto *d = static_cast<std::uint64_t *>(pool.toHost(data));
    rt.store(d[0], std::uint64_t{11});
    Checkpointer ck(op, area, data, dataSize);
    ck.format();
    EXPECT_EQ(ck.generation(), 0u);
    auto *slot0 =
        static_cast<std::uint64_t *>(pool.toHost(ck.slotAddr(0)));
    EXPECT_EQ(slot0[0], 11u);
}

TEST_F(CkptTest, CheckpointAlternatesSlots)
{
    ObjPool op = makePool();
    Addr data = op.heap().palloc(dataSize);
    Addr area = op.heap().palloc(Checkpointer::areaSize(dataSize));
    auto *d = static_cast<std::uint64_t *>(pool.toHost(data));
    Checkpointer ck(op, area, data, dataSize);
    ck.format();

    rt.store(d[0], std::uint64_t{1});
    ck.checkpoint(); // gen 1 -> slot 1
    rt.store(d[0], std::uint64_t{2});
    ck.checkpoint(); // gen 2 -> slot 0
    EXPECT_EQ(ck.generation(), 2u);
    auto *slot0 =
        static_cast<std::uint64_t *>(pool.toHost(ck.slotAddr(0)));
    auto *slot1 =
        static_cast<std::uint64_t *>(pool.toHost(ck.slotAddr(1)));
    EXPECT_EQ(slot0[0], 2u);
    EXPECT_EQ(slot1[0], 1u);
}

TEST_F(CkptTest, RestoreBringsBackLastCommitted)
{
    ObjPool op = makePool();
    Addr data = op.heap().palloc(dataSize);
    Addr area = op.heap().palloc(Checkpointer::areaSize(dataSize));
    auto *d = static_cast<std::uint64_t *>(pool.toHost(data));
    Checkpointer ck(op, area, data, dataSize);
    ck.format();
    rt.store(d[0], std::uint64_t{5});
    ck.checkpoint();
    rt.store(d[0], std::uint64_t{99}); // scribble after the checkpoint
    ck.restore();
    EXPECT_EQ(d[0], 5u);
}

TEST(CkptDetector, ReadingOlderCheckpointIsSemanticBug)
{
    // §2's checkpointing example: "reading from older checkpoints
    // during the post-failure stage violates the semantics".
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    constexpr std::size_t dsz = 64;
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "ckpt", 64);
            Addr data = op.heap().palloc(dsz);
            Addr area = op.heap().palloc(Checkpointer::areaSize(dsz));
            auto *root = op.root<std::uint64_t[2]>();
            rt.store((*root)[0], data);
            rt.store((*root)[1], area);
            rt.persistBarrier(root, 16);
            Checkpointer ck(op, area, data, dsz);
            ck.annotate();
            ck.format();
            trace::RoiScope roi(rt);
            auto *d = static_cast<std::uint64_t *>(rt.pool().toHost(data));
            rt.store(d[0], std::uint64_t{1});
            rt.persistBarrier(&d[0], 8);
            ck.checkpoint(); // gen 1
            rt.store(d[0], std::uint64_t{2});
            rt.persistBarrier(&d[0], 8);
            ck.checkpoint(); // gen 2
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "ckpt", 64);
            trace::RoiScope roi(rt);
            auto *root = op.root<std::uint64_t[2]>();
            Addr data = (*root)[0];
            Addr area = (*root)[1];
            if (!data || !area)
                return;
            Checkpointer ck(op, area, data, dsz);
            ck.annotate();
            // BUG: recovery reads the *older* slot instead of the one
            // the committed generation names.
            std::uint64_t gen = ck.generation();
            unsigned older = static_cast<unsigned>((gen + 1) & 1);
            auto *slot = static_cast<std::uint64_t *>(
                rt.pool().toHost(ck.slotAddr(older)));
            (void)rt.load(slot[0]);
        });
    EXPECT_GE(res.count(BugType::CrossFailureSemantic), 1u)
        << res.summary();
}

TEST(CkptDetector, CorrectRestoreIsClean)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    constexpr std::size_t dsz = 64;
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "ckpt2", 64);
            Addr data = op.heap().palloc(dsz);
            Addr area = op.heap().palloc(Checkpointer::areaSize(dsz));
            auto *root = op.root<std::uint64_t[2]>();
            rt.store((*root)[0], data);
            rt.store((*root)[1], area);
            rt.persistBarrier(root, 16);
            Checkpointer ck(op, area, data, dsz);
            ck.annotate();
            ck.format();
            trace::RoiScope roi(rt);
            auto *d = static_cast<std::uint64_t *>(rt.pool().toHost(data));
            for (std::uint64_t i = 1; i <= 3; i++) {
                rt.store(d[0], i);
                rt.persistBarrier(&d[0], 8);
                ck.checkpoint();
            }
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "ckpt2", 64);
            trace::RoiScope roi(rt);
            auto *root = op.root<std::uint64_t[2]>();
            Addr data = (*root)[0];
            Addr area = (*root)[1];
            if (!data || !area)
                return;
            Checkpointer ck(op, area, data, dsz);
            ck.annotate();
            ck.restore(); // overwrites the live region
            auto *d = static_cast<std::uint64_t *>(rt.pool().toHost(data));
            (void)rt.load(d[0]);
        });
    EXPECT_EQ(res.count(BugType::CrossFailureSemantic), 0u)
        << res.summary();
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

// ------------------------------------------------------------------
// Operational logging
// ------------------------------------------------------------------

TEST_F(MechTest, OpLogAppendAndCounts)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(OpLog::areaSize());
    OpLog log(op, area);
    log.format();
    EXPECT_EQ(log.committedCount(), 0u);
    log.append({1, 10, 20});
    log.append({2, 30, 40});
    EXPECT_EQ(log.committedCount(), 2u);
    EXPECT_EQ(log.pendingCount(), 2u);
    log.markApplied();
    EXPECT_EQ(log.pendingCount(), 0u);
}

TEST_F(MechTest, OpLogReplayReexecutesPendingOps)
{
    ObjPool op = makePool();
    Addr area = op.heap().palloc(OpLog::areaSize());
    OpLog log(op, area);
    log.format();
    log.append({1, 5, 0});
    log.append({1, 7, 0});
    std::uint64_t sum = 0;
    log.replay([&](const LoggedOp &o) { sum += o.arg0; });
    EXPECT_EQ(sum, 12u);
    EXPECT_EQ(log.pendingCount(), 0u);
    // Second replay is a no-op: everything applied.
    log.replay([&](const LoggedOp &) { sum += 100; });
    EXPECT_EQ(sum, 12u);
}

TEST(OpLogDetector, IdempotentLoggedOpsAreCrashConsistent)
{
    // Operational logging requires idempotent operations (blind
    // writes): a torn in-place value is always overwritten by replay
    // before anyone reads it.
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "oplog", 64);
            Addr area = op.heap().palloc(OpLog::areaSize());
            auto *root = op.root<std::uint64_t[2]>();
            rt.store((*root)[1], area);
            rt.persistBarrier(root, 16);
            OpLog log(op, area);
            log.format();
            trace::RoiScope roi(rt);
            for (std::uint64_t i = 1; i <= 3; i++) {
                // op: "set field 0 to i * 11" — idempotent.
                log.append({1, 0, i * 11});
                rt.store((*root)[0], i * 11);
                rt.persistBarrier(&(*root)[0], 8);
                log.markApplied();
            }
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "oplog", 64);
            trace::RoiScope roi(rt);
            auto *root = op.root<std::uint64_t[2]>();
            Addr area = (*root)[1];
            if (!area)
                return;
            OpLog log(op, area);
            log.replay([&](const LoggedOp &o) {
                rt.store((*root)[o.arg0], o.arg1);
                rt.persistBarrier(&(*root)[o.arg0], 8);
            });
            (void)rt.load((*root)[0]);
        });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

// ------------------------------------------------------------------
// Shadow paging
// ------------------------------------------------------------------

struct Record
{
    std::uint64_t a;
    std::uint64_t b;
};

TEST_F(MechTest, ShadowUpdatePublishesNewCopy)
{
    ObjPool op = makePool();
    auto *current = op.root<pm::PPtr<Record>>();
    pmlib::shadowUpdate(op, *current,
                        [](PmRuntime &rt, Record *r) {
                            rt.store(r->a, std::uint64_t{1});
                            rt.store(r->b, std::uint64_t{2});
                        });
    ASSERT_FALSE(current->null());
    EXPECT_EQ(current->get(pool)->a, 1u);

    Addr first = current->addr();
    pmlib::shadowUpdate(op, *current,
                        [](PmRuntime &rt, Record *r) {
                            rt.store(r->b, std::uint64_t{3});
                        });
    EXPECT_NE(current->addr(), first); // out-of-place copy
    EXPECT_EQ(current->get(pool)->a, 1u); // copied forward
    EXPECT_EQ(current->get(pool)->b, 3u);
}

TEST(ShadowDetector, ShadowUpdatesAreClean)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "shadow", 64);
            auto *current = op.root<pm::PPtr<Record>>();
            trace::RoiScope roi(rt);
            for (std::uint64_t i = 1; i <= 3; i++) {
                pmlib::shadowUpdate(op, *current,
                                    [i](PmRuntime &rt, Record *r) {
                                        rt.store(r->a, i);
                                        rt.store(r->b, i * 2);
                                    });
            }
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "shadow", 64);
            trace::RoiScope roi(rt);
            auto *current = op.root<pm::PPtr<Record>>();
            pm::PPtr<Record> p = rt.load(*current);
            if (!p.null()) {
                Record *r = p.get(rt.pool());
                (void)rt.load(r->a);
                (void)rt.load(r->b);
            }
        });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
    EXPECT_EQ(res.count(BugType::CrossFailureSemantic), 0u)
        << res.summary();
}

TEST(ShadowDetector, InPlaceMutationInsteadOfShadowRaces)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "shadow2", 64);
            auto *current = op.root<pm::PPtr<Record>>();
            trace::RoiScope roi(rt);
            pmlib::shadowUpdate(op, *current,
                                [](PmRuntime &rt, Record *r) {
                                    rt.store(r->a, std::uint64_t{1});
                                });
            // BUG: later mutation happens in place, never persisted.
            Record *r = rt.load(*current).get(rt.pool());
            rt.store(r->b, std::uint64_t{7});
            // One more ordering point so the failure can land after.
            auto *root = op.root<pm::PPtr<Record>>();
            rt.clwb(root, 8);
            rt.sfence();
        },
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::openOrCreate(rt, "shadow2", 64);
            trace::RoiScope roi(rt);
            auto *current = op.root<pm::PPtr<Record>>();
            pm::PPtr<Record> p = rt.load(*current);
            if (!p.null()) {
                Record *r = p.get(rt.pool());
                (void)rt.load(r->b);
            }
        });
    EXPECT_GE(res.count(BugType::CrossFailureRace), 1u)
        << res.summary();
}

} // namespace
