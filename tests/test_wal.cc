/**
 * @file
 * The redo-only write-ahead log (pmlib/wal) — the third
 * crash-consistency mechanism — and its wal.* bug-suite family.
 *
 * Functional layer: CRC32 framing round-trips, group-commit batching,
 * checkpoint/truncate invariants (alternating descriptor slots), and
 * idempotent replay (replay twice == replay once). Rejection layer:
 * torn tails, corrupt CRCs, corrupt lengths and corrupt heads must
 * abort cleanly, and a length-splat fuzz over the whole persistent
 * area must never crash the recovery scanner (seeded like the other
 * fuzz suites; XFD_FUZZ_SEED replays one case). Detection layer: the
 * correct protocol is finding-free under failure injection, each
 * planted wal.* defect produces exactly its registered finding class,
 * and each bug's clean twin (same campaign, flag off) stays silent.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "bugsuite/registry.hh"
#include "common/rng.hh"
#include "core/driver.hh"
#include "harness.hh"
#include "pmlib/objpool.hh"
#include "pmlib/wal.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using core::BugType;
using pmlib::ObjPool;
using pmlib::Wal;
using pmlib::WalHeader;
using pmlib::WalOptions;
using pmlib::WalRecordHeader;
using trace::PmRuntime;
using trace::Stage;

constexpr std::size_t kCap = 1 << 12; ///< log arena bytes
constexpr std::size_t kPage = 64;     ///< home-page / payload bytes
constexpr std::size_t kPages = 8;     ///< page-table capacity
const std::size_t kFrame = Wal::frameSize(kPage);

std::vector<std::uint8_t>
img(std::uint8_t fill)
{
    return std::vector<std::uint8_t>(kPage, fill);
}

// ------------------------------------------------------------------
// CRC framing
// ------------------------------------------------------------------

TEST(WalCrc, Crc32MatchesKnownVector)
{
    // The standard CRC-32 check value ("123456789" -> 0xCBF43926)
    // pins the polynomial, reflection and final xor.
    EXPECT_EQ(pmlib::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(pmlib::crc32("", 0), 0u);
}

TEST(WalCrc, Crc32SeedChainsAcrossSplits)
{
    const char data[] = "write-ahead logging";
    const std::size_t n = sizeof(data) - 1;
    std::uint32_t whole = pmlib::crc32(data, n);
    for (std::size_t cut = 0; cut <= n; cut++) {
        std::uint32_t part = pmlib::crc32(data, cut);
        EXPECT_EQ(pmlib::crc32(data + cut, n - cut, part), whole)
            << "cut at " << cut;
    }
}

TEST(WalCrc, RecordCrcCoversEveryField)
{
    std::vector<std::uint8_t> payload = img(0x5a);
    std::uint32_t base =
        pmlib::walRecordCrc(7, 3, payload.data(), kPage);
    EXPECT_NE(pmlib::walRecordCrc(8, 3, payload.data(), kPage), base);
    EXPECT_NE(pmlib::walRecordCrc(7, 4, payload.data(), kPage), base);
    EXPECT_NE(pmlib::walRecordCrc(7, 3, payload.data(), kPage - 8),
              base);
    payload[kPage - 1] ^= 1;
    EXPECT_NE(pmlib::walRecordCrc(7, 3, payload.data(), kPage), base);
    payload[kPage - 1] ^= 1;
    EXPECT_EQ(pmlib::walRecordCrc(7, 3, payload.data(), kPage), base);
}

// ------------------------------------------------------------------
// Framing, group commit, checkpoint, replay
// ------------------------------------------------------------------

struct WalTest : ::testing::Test
{
    WalTest() : pool(1 << 21), rt(pool, buf, Stage::PreFailure) {}

    ObjPool
    makePool()
    {
        return ObjPool::create(rt, "wal", 64);
    }

    /** Palloc one WAL area inside @p op. */
    static Addr
    makeArea(ObjPool &op)
    {
        return op.heap().palloc(Wal::areaSize(kCap, kPages));
    }

    static WalHeader *
    header(ObjPool &op, const Wal &w)
    {
        return static_cast<WalHeader *>(
            op.pm().toHost(w.headerAddr(), sizeof(WalHeader)));
    }

    static std::uint8_t *
    logBytes(ObjPool &op, const Wal &w)
    {
        return static_cast<std::uint8_t *>(
            op.pm().toHost(w.logAddr(), kCap));
    }

    static std::uint8_t *
    homeBytes(ObjPool &op, Addr page_addr)
    {
        return static_cast<std::uint8_t *>(
            op.pm().toHost(page_addr, kPage));
    }

    pm::PmPool pool;
    trace::TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(WalTest, FormatThenRecoverOnEmptyLog)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.annotate();

    Wal fresh(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(fresh.recover());
    EXPECT_EQ(fresh.recordsReplayed(), 0u);
    EXPECT_EQ(fresh.lastCommittedLsn(), 0u);
    EXPECT_EQ(fresh.nextLsn(), 1u);
    EXPECT_EQ(fresh.generation(), 1u);
    EXPECT_EQ(fresh.committedBytes(), 0u);
}

TEST_F(WalTest, UnformattedAreaIsRejectedWholesale)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    EXPECT_FALSE(w.recover()); // no magic: nothing to replay
}

TEST_F(WalTest, AppendStagesWithoutSealing)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);

    auto a = img(0x11);
    w.append(0, a.data());
    EXPECT_EQ(w.stagedBytes(), kFrame);
    EXPECT_EQ(w.committedBytes(), 0u);
    EXPECT_EQ(w.lastCommittedLsn(), 0u);
    EXPECT_EQ(w.nextLsn(), 2u);
    // The commit variable has not moved: the record is invisible to
    // recovery until commit() seals the batch.
    EXPECT_EQ(header(op, w)->headOff, 0u);
}

TEST_F(WalTest, GroupCommitSealsWholeBatchAtOnce)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    Addr p0 = w.registerPage(0);
    Addr p1 = w.registerPage(1);

    auto a = img(0x11), b = img(0x22), c = img(0x33);
    w.append(0, a.data());
    w.append(1, b.data());
    w.append(0, c.data());
    w.commit();

    EXPECT_EQ(w.lastCommittedLsn(), 3u);
    EXPECT_EQ(w.committedBytes(), 3 * kFrame);
    EXPECT_EQ(w.stagedBytes(), w.committedBytes());
    EXPECT_EQ(header(op, w)->headOff, 3 * kFrame);
    // Applied in place, last writer wins per page.
    EXPECT_EQ(std::memcmp(homeBytes(op, p0), c.data(), kPage), 0);
    EXPECT_EQ(std::memcmp(homeBytes(op, p1), b.data(), kPage), 0);
}

TEST_F(WalTest, RecoverReplaysSealedBatchIntoTornHomes)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    Addr p0 = w.registerPage(0);
    Addr p1 = w.registerPage(1);
    auto a = img(0x11), b = img(0x22);
    w.append(0, a.data());
    w.append(1, b.data());
    w.commit();

    // Pretend both home writebacks were lost in the failure.
    std::memset(homeBytes(op, p0), 0xee, kPage);
    std::memset(homeBytes(op, p1), 0xee, kPage);

    Wal fresh(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(fresh.recover());
    EXPECT_EQ(fresh.recordsReplayed(), 2u);
    EXPECT_EQ(fresh.lastCommittedLsn(), 2u);
    EXPECT_EQ(fresh.nextLsn(), 3u);
    EXPECT_EQ(fresh.committedBytes(), 2 * kFrame);
    EXPECT_EQ(std::memcmp(homeBytes(op, p0), a.data(), kPage), 0);
    EXPECT_EQ(std::memcmp(homeBytes(op, p1), b.data(), kPage), 0);
}

TEST_F(WalTest, ReplayTwiceEqualsReplayOnce)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    Addr p0 = w.registerPage(0);
    auto a = img(0x11), b = img(0x22);
    w.append(0, a.data());
    w.append(0, b.data());
    w.commit();

    Wal first(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(first.recover());
    std::vector<std::uint8_t> after1(homeBytes(op, p0),
                                     homeBytes(op, p0) + kPage);

    // A second failure right after recovery replays the same log.
    std::memset(homeBytes(op, p0), 0xee, kPage);
    Wal second(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(second.recover());
    EXPECT_EQ(second.recordsReplayed(), first.recordsReplayed());
    EXPECT_EQ(second.lastCommittedLsn(), first.lastCommittedLsn());
    EXPECT_EQ(second.nextLsn(), first.nextLsn());
    std::vector<std::uint8_t> after2(homeBytes(op, p0),
                                     homeBytes(op, p0) + kPage);
    EXPECT_EQ(after1, after2);
    EXPECT_EQ(std::memcmp(after2.data(), b.data(), kPage), 0);
}

TEST_F(WalTest, UnsealedTailIsDiscardedByRecovery)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11), b = img(0x22);
    w.append(0, a.data());
    w.commit();
    w.append(0, b.data()); // staged, never sealed

    Wal fresh(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(fresh.recover());
    EXPECT_EQ(fresh.recordsReplayed(), 1u);
    EXPECT_EQ(fresh.lastCommittedLsn(), 1u);
    EXPECT_EQ(fresh.nextLsn(), 2u); // the torn tail's LSN is reissued
    EXPECT_EQ(fresh.committedBytes(), kFrame);
}

TEST_F(WalTest, CheckpointTruncatesAndAlternatesSlots)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);

    w.append(0, a.data());
    w.append(0, a.data());
    w.commit();
    w.checkpoint();
    EXPECT_EQ(w.generation(), 2u);
    EXPECT_EQ(w.committedBytes(), 0u);
    WalHeader *h = header(op, w);
    EXPECT_EQ(h->headOff, 0u);
    EXPECT_EQ(h->ckptGen, 2u);
    EXPECT_EQ(h->ckptLsn[0], 2u); // slot (1+1)&1 took this checkpoint

    w.append(0, a.data());
    w.commit();
    w.checkpoint();
    EXPECT_EQ(w.generation(), 3u);
    EXPECT_EQ(h->ckptLsn[1], 3u); // the other slot took the next one
    EXPECT_EQ(h->ckptLsn[0], 2u); // previous descriptor untouched

    Wal fresh(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(fresh.recover());
    EXPECT_EQ(fresh.recordsReplayed(), 0u); // log truncated
    EXPECT_EQ(fresh.lastCommittedLsn(), 3u);
    EXPECT_EQ(fresh.generation(), 3u);
}

TEST_F(WalTest, CheckpointWithoutNewCommitsIsANoOp)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);
    w.append(0, a.data());
    w.commit();
    w.checkpoint();
    ASSERT_EQ(w.generation(), 2u);
    w.checkpoint(); // nothing sealed since the truncation
    EXPECT_EQ(w.generation(), 2u);
    EXPECT_EQ(header(op, w)->ckptGen, 2u);
}

TEST_F(WalTest, OnlyRecordsPastTheCheckpointReplay)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    Addr p0 = w.registerPage(0);
    Addr p1 = w.registerPage(1);
    auto a = img(0x11), b = img(0x22);
    w.append(0, a.data());
    w.commit();
    w.checkpoint(); // lsn 1 is now described as durable in place
    w.append(1, b.data());
    w.commit();

    // Scribble both homes: replay must restore only lsn 2's page —
    // the checkpoint promises lsn 1's home needs no replay.
    std::memset(homeBytes(op, p0), 0xee, kPage);
    std::memset(homeBytes(op, p1), 0xee, kPage);
    Wal fresh(op, area, kCap, kPage, kPages);
    ASSERT_TRUE(fresh.recover());
    EXPECT_EQ(fresh.recordsReplayed(), 1u);
    EXPECT_EQ(fresh.lastCommittedLsn(), 2u);
    EXPECT_EQ(homeBytes(op, p0)[0], 0xee);
    EXPECT_EQ(std::memcmp(homeBytes(op, p1), b.data(), kPage), 0);
}

// ------------------------------------------------------------------
// Torn/corrupt-frame rejection
// ------------------------------------------------------------------

/** recover()'s abort reason for the current area, or "" on success. */
std::string
recoveryAbortReason(ObjPool &op, Addr area)
{
    Wal fresh(op, area, kCap, kPage, kPages);
    try {
        fresh.recover();
    } catch (const trace::PostFailureAbort &e) {
        return e.reason;
    }
    return "";
}

TEST_F(WalTest, TornRecordBelowTheSealedHeadAborts)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);
    w.append(0, a.data());
    w.commit();

    // Zero the frame's LSN: a sealed head pointing past a hole.
    auto *r = reinterpret_cast<WalRecordHeader *>(logBytes(op, w));
    r->lsn = 0;
    EXPECT_NE(recoveryAbortReason(op, area).find("torn record"),
              std::string::npos);
}

TEST_F(WalTest, CorruptPayloadFailsTheCrcCheck)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);
    w.append(0, a.data());
    w.commit();

    logBytes(op, w)[sizeof(WalRecordHeader) + kPage / 2] ^= 0xff;
    EXPECT_NE(recoveryAbortReason(op, area).find("crc mismatch"),
              std::string::npos);
}

TEST_F(WalTest, CorruptStoredCrcFailsTheCrcCheck)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);
    w.append(0, a.data());
    w.commit();

    auto *r = reinterpret_cast<WalRecordHeader *>(logBytes(op, w));
    r->crc ^= 0xff;
    EXPECT_NE(recoveryAbortReason(op, area).find("crc mismatch"),
              std::string::npos);
}

TEST_F(WalTest, CorruptRecordLengthAborts)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);
    w.append(0, a.data());
    w.commit();

    auto *r = reinterpret_cast<WalRecordHeader *>(logBytes(op, w));
    r->dataLen = static_cast<std::uint32_t>(kPage) + 8;
    EXPECT_NE(recoveryAbortReason(op, area).find("record length"),
              std::string::npos);
    r->dataLen = 0;
    EXPECT_NE(recoveryAbortReason(op, area).find("record length"),
              std::string::npos);
}

TEST_F(WalTest, CorruptHeadAborts)
{
    ObjPool op = makePool();
    Addr area = makeArea(op);
    Wal w(op, area, kCap, kPage, kPages);
    w.format();
    w.registerPage(0);
    auto a = img(0x11);
    w.append(0, a.data());
    w.commit();

    WalHeader *h = header(op, w);
    h->headOff = kCap + 8; // past the arena
    EXPECT_NE(recoveryAbortReason(op, area).find("corrupt log head"),
              std::string::npos);
    h->headOff = 4; // not 8-byte aligned
    EXPECT_NE(recoveryAbortReason(op, area).find("corrupt log head"),
              std::string::npos);
}

// ------------------------------------------------------------------
// Length-splat fuzz over the persistent area
// ------------------------------------------------------------------

/**
 * One recovery attempt over a (possibly corrupted) area: must either
 * replay or reject cleanly — PostFailureAbort for malformed frames,
 * BadPmAccess for wild page-table pointers — never crash or hang.
 */
void
recoverNoCrash(ObjPool &op, Addr area, WalOptions opts,
               std::uint64_t seed)
{
    Wal fresh(op, area, kCap, kPage, kPages, opts);
    try {
        if (fresh.recover()) {
            EXPECT_LE(fresh.committedBytes(), kCap)
                << "XFD_FUZZ_SEED=" << seed;
            EXPECT_LE(fresh.recordsReplayed(),
                      kCap / sizeof(WalRecordHeader))
                << "XFD_FUZZ_SEED=" << seed;
        }
    } catch (const trace::PostFailureAbort &) {
        // Clean rejection is the expected common case.
    } catch (const pm::BadPmAccess &) {
        // A splatted page-table entry pointing outside the pool: the
        // detection driver records this as a post-failure crash.
    }
}

/** Committed three-record state the fuzz corrupts copies of. */
struct FuzzArea
{
    ObjPool op;
    Addr area;
    std::vector<std::uint8_t> pristine;

    explicit FuzzArea(PmRuntime &rt)
        : op(ObjPool::create(rt, "walfuzz", 64)),
          area(op.heap().palloc(Wal::areaSize(kCap, kPages)))
    {
        Wal w(op, area, kCap, kPage, kPages);
        w.format();
        w.registerPage(0);
        w.registerPage(1);
        auto a = img(0x11), b = img(0x22), c = img(0x33);
        w.append(0, a.data());
        w.append(1, b.data());
        w.commit();
        w.append(0, c.data());
        w.commit();
        auto *bytes = static_cast<std::uint8_t *>(
            op.pm().toHost(area, Wal::areaSize(kCap, kPages)));
        pristine.assign(bytes, bytes + Wal::areaSize(kCap, kPages));
    }

    std::uint8_t *
    bytes()
    {
        return static_cast<std::uint8_t *>(
            op.pm().toHost(area, pristine.size()));
    }

    void restore() { std::memcpy(bytes(), pristine.data(), pristine.size()); }
};

TEST_F(WalTest, FuzzSplatSweepNeverCrashesRecovery)
{
    FuzzArea f(rt);
    // "Plausible but wrong" u32 patterns at every 8-byte-aligned
    // offset of header, page table and the used log prefix: whatever
    // field that lands on (head, generation, table pointer, LSN,
    // length, CRC, payload), recovery must reject or parse — with and
    // without the CRC-skipping raw scanner.
    const std::uint32_t patterns[] = {1u << 12, 1u << 19, 1u << 23,
                                      0xffffffffu};
    const std::size_t used = sizeof(WalHeader) +
                             kPages * sizeof(std::uint64_t) +
                             4 * kFrame;
    WalOptions rawScan;
    rawScan.missingCrcCheck = true;
    for (std::uint32_t pat : patterns) {
        for (std::size_t off = 0; off + 4 <= used; off += 8) {
            f.restore();
            std::memcpy(f.bytes() + off, &pat, sizeof(pat));
            recoverNoCrash(f.op, f.area, {}, 0);
            f.restore();
            std::memcpy(f.bytes() + off, &pat, sizeof(pat));
            recoverNoCrash(f.op, f.area, rawScan, 0);
        }
    }
}

void
fuzzOne(FuzzArea &f, std::uint64_t seed)
{
    Rng rng(seed);
    f.restore();
    std::size_t splats = 1 + rng.below(8);
    for (std::size_t i = 0; i < splats; i++) {
        std::size_t off = rng.below(f.pristine.size() - 8);
        std::uint64_t val = rng.next();
        std::memcpy(f.bytes() + off, &val, sizeof(val));
    }
    WalOptions opts;
    opts.missingCrcCheck = rng.below(2) == 1;
    opts.replayPastCheckpoint = rng.below(2) == 1;
    recoverNoCrash(f.op, f.area, opts, seed);
}

TEST_F(WalTest, FuzzRandomSplatsNeverCrashRecovery)
{
    FuzzArea f(rt);
    for (std::uint64_t seed = 1; seed <= 64; seed++) {
        SCOPED_TRACE(seed);
        fuzzOne(f, seed);
    }
}

TEST(WalFuzzReplay, ReplayFromEnv)
{
    std::uint64_t s = 0;
    if (!xfdtest::fuzzSeedFromEnv(s))
        GTEST_SKIP()
            << "set XFD_FUZZ_SEED=<seed from a failure message> to "
               "replay a single fuzz case";
    pm::PmPool pool(1 << 21);
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, Stage::PreFailure);
    FuzzArea f(rt);
    fuzzOne(f, s);
}

// ------------------------------------------------------------------
// Detection campaigns at the mechanism level
// ------------------------------------------------------------------

/**
 * Minimal two-page WAL program: one committed+checkpointed batch
 * before the RoI, then two group commits and a checkpoint inside it.
 * LSNs 1 (pre-RoI), 2-3 (first batch), 4 (second batch).
 */
core::CampaignResult
walMechCampaign(WalOptions opts)
{
    auto pre = [opts](PmRuntime &rt) {
        ObjPool op = ObjPool::create(rt, "walmech", 16);
        Addr area = op.heap().palloc(Wal::areaSize(kCap, kPages));
        auto *root = op.root<std::uint64_t>();
        rt.store(*root, static_cast<std::uint64_t>(area));
        rt.persistBarrier(root, sizeof(*root));
        Wal w(op, area, kCap, kPage, kPages, opts);
        w.format();
        w.annotate();
        w.registerPage(0);
        auto a = img(0x11);
        w.append(0, a.data());
        w.commit();
        w.checkpoint();
        {
            trace::RoiScope roi(rt);
            w.registerPage(1);
            auto b = img(0x22), c = img(0x33), d = img(0x44);
            w.append(0, b.data());
            w.append(1, c.data());
            w.commit();
            w.append(1, d.data());
            w.commit();
            w.checkpoint(); // final durability point
        }
    };
    auto post = [opts](PmRuntime &rt) {
        ObjPool op = ObjPool::open(rt, "walmech");
        trace::RoiScope roi(rt);
        Addr area = *op.root<std::uint64_t>(); // bookkeeping read
        if (area == 0)
            return;
        Wal w(op, area, kCap, kPage, kPages, opts);
        w.annotate();
        if (!w.recover())
            return;
        if (w.lastCommittedLsn() == 0)
            return;
        // Resumption reads the recovered pages (the Figure 1 shape).
        // Page 1's table entry only becomes durable with the commit
        // that seals LSN 3, so gate its read on that LSN.
        std::vector<std::uint8_t> pb(kPage);
        Addr p0 = w.pageAddr(0);
        if (p0)
            rt.readPm(pb.data(), op.pm().toHost(p0, kPage), kPage);
        if (w.lastCommittedLsn() >= 3) {
            Addr p1 = w.pageAddr(1);
            if (p1)
                rt.readPm(pb.data(), op.pm().toHost(p1, kPage), kPage);
        }
    };
    return xfdtest::runCampaign(pre, post);
}

TEST(WalDetect, CorrectProtocolIsFindingFree)
{
    auto res = walMechCampaign({});
    EXPECT_TRUE(xfdtest::hasNoFindings(res));
    EXPECT_GT(res.stats.failurePoints, 0u);
}

TEST(WalDetect, EagerSealRacesWithItsPayload)
{
    WalOptions opts;
    opts.tornRecordAccepted = true;
    auto res = walMechCampaign(opts);
    EXPECT_TRUE(
        xfdtest::hasFindingOfClass(res, BugType::CrossFailureRace));
}

// ------------------------------------------------------------------
// The wal.* bug-suite family
// ------------------------------------------------------------------

TEST(WalBugsuite, RegistryPinsSixCasesWithClasses)
{
    using bugsuite::Expected;
    const std::map<std::string, Expected> want = {
        {"wal.race.torn_record_accepted", Expected::Race},
        {"wal.race.commit_before_payload", Expected::Race},
        {"wal.recovery.missing_crc_check", Expected::Race},
        {"wal.race.truncate_before_apply", Expected::Race},
        {"wal.sem.replay_past_checkpoint", Expected::Semantic},
        {"wal.race.unflushed_log_head", Expected::Race},
    };
    auto cases = bugsuite::bugCasesFor("wal_btree");
    ASSERT_EQ(cases.size(), want.size());
    for (const auto &c : cases) {
        SCOPED_TRACE(c.id);
        auto it = want.find(c.id);
        ASSERT_NE(it, want.end());
        EXPECT_EQ(c.expected, it->second);
    }
}

TEST(WalBugsuite, EachPlantedBugProducesItsClass)
{
    for (const auto &c : bugsuite::bugCasesFor("wal_btree")) {
        SCOPED_TRACE(c.id);
        auto res = bugsuite::runBugCase(c);
        EXPECT_TRUE(bugsuite::detected(c, res)) << res.summary();
    }
}

TEST(WalBugsuite, CleanTwinsAreFindingFree)
{
    // Same campaign shape as each registered case, bug flag left off:
    // the defect — not the workload around it — carries the finding.
    std::set<std::tuple<unsigned, unsigned, unsigned, bool>> shapes;
    for (const auto &c : bugsuite::bugCasesFor("wal_btree"))
        shapes.insert({c.initOps, c.testOps, c.postOps, c.roiFromStart});
    for (const auto &[init, test, post, fromStart] : shapes) {
        SCOPED_TRACE(testing::Message()
                     << init << "/" << test << "/" << post
                     << (fromStart ? " roi-from-start" : ""));
        workloads::WorkloadConfig wcfg;
        wcfg.initOps = init;
        wcfg.testOps = test;
        wcfg.postOps = post;
        wcfg.roiFromStart = fromStart;
        auto res = xfdtest::runWorkload("wal_btree", wcfg);
        EXPECT_TRUE(xfdtest::hasNoFindings(res));
        EXPECT_GT(res.stats.failurePoints, 0u);
    }
}

} // namespace
