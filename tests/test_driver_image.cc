/**
 * @file
 * Driver internals: the PM image the post-failure stage sees at
 * failure point F must equal initial-image + every recorded write
 * before F (paper footnote 3: the copy "contains all updates,
 * including those not persisted"). Verified against an independent
 * byte-level reconstruction for every failure point of a real
 * workload run.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/driver.hh"
#include "core/failure_planner.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;

TEST(DriverImage, PostStageSeesPrefixExactImage)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 3;
    cfg.testOps = 4;
    auto w = workloads::makeWorkload("hashmap_tx", cfg);

    pm::PmPool pool(1 << 22);
    pm::PmImage initial = pool.snapshot();

    // Capture what the post-failure stage actually sees, per failure
    // point, by hashing the pool at entry to post().
    std::vector<std::size_t> seen_hashes;
    auto hash_pool = [](pm::PmPool &p) {
        std::size_t h = 1469598103934665603ull;
        const std::uint8_t *b = p.data();
        for (std::size_t i = 0; i < p.size(); i += 7)
            h = (h ^ b[i]) * 1099511628211ull;
        return h;
    };

    trace::TraceBuffer pre_copy;
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            w->pre(rt);
            // Keep a copy of the trace for the oracle (same pool, so
            // the driver's own trace is identical by determinism).
        },
        [&](PmRuntime &rt) { seen_hashes.push_back(hash_pool(rt.pool())); });
    ASSERT_EQ(seen_hashes.size(), res.stats.failurePoints);

    // Oracle: re-run the pre stage on a fresh pool to regenerate the
    // identical trace, then reconstruct each prefix image by hand.
    pm::PmPool pool2(1 << 22);
    auto w2 = workloads::makeWorkload("hashmap_tx", cfg);
    trace::TraceBuffer pre;
    {
        PmRuntime rt(pool2, pre, trace::Stage::PreFailure);
        w2->pre(rt);
    }
    auto plan = core::planFailurePoints(pre, {});
    ASSERT_EQ(plan.points.size(), seen_hashes.size());

    pm::PmImage img = initial;
    std::uint32_t cursor = 0;
    for (std::size_t k = 0; k < plan.points.size(); k++) {
        for (; cursor < plan.points[k]; cursor++) {
            const auto &e = pre[cursor];
            if (e.isWrite())
                img.applyWrite(e.addr, e.data.data(), e.data.size());
        }
        pm::PmPool scratch(pool.size(), pool.base());
        img.copyTo(scratch);
        std::size_t expect = hash_pool(scratch);
        EXPECT_EQ(seen_hashes[k], expect) << "failure point " << k;
    }
}

TEST(DriverImage, UnpersistedWritesAreInTheImage)
{
    // Footnote 3 directly: a write with no flush at all must still be
    // visible to the post-failure stage (persistence is tracked by
    // the shadow PM, not by dropping bytes).
    pm::PmPool pool(1 << 20);
    std::vector<std::uint64_t> seen;
    core::Driver driver(pool, {});
    driver.run(
        [&](PmRuntime &rt) {
            auto *a = rt.pool().at<std::uint64_t>(0);
            auto *b = rt.pool().at<std::uint64_t>(64);
            trace::RoiScope roi(rt);
            rt.store(*a, std::uint64_t{0xaaaa}); // never persisted
            rt.store(*b, std::uint64_t{0xbbbb});
            rt.persistBarrier(b, 8);
        },
        [&](PmRuntime &rt) {
            seen.push_back(*rt.pool().at<std::uint64_t>(0));
        });
    ASSERT_FALSE(seen.empty());
    for (std::uint64_t v : seen)
        EXPECT_EQ(v, 0xaaaau);
}

TEST(DriverImage, CrashImageModeDropsUnpersistedWrites)
{
    // The extension's counterpart of footnote 3: in crashImageMode
    // the post-failure stage sees only data that was flushed AND
    // fenced by the failure point.
    pm::PmPool pool(1 << 20);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> seen;
    core::DetectorConfig dcfg;
    dcfg.crashImageMode = true;
    core::Driver driver(pool, dcfg);
    driver.run(
        [&](PmRuntime &rt) {
            auto *a = rt.pool().at<std::uint64_t>(0);
            auto *b = rt.pool().at<std::uint64_t>(64);
            trace::RoiScope roi(rt);
            rt.store(*a, std::uint64_t{0xaaaa}); // never persisted
            rt.store(*b, std::uint64_t{0xbbbb});
            rt.persistBarrier(b, 8);
            rt.store(*b, std::uint64_t{0xcccc}); // re-dirtied
            rt.clwb(b, 8);
            rt.sfence();
        },
        [&](PmRuntime &rt) {
            seen.emplace_back(*rt.pool().at<std::uint64_t>(0),
                              *rt.pool().at<std::uint64_t>(64));
        });
    ASSERT_GE(seen.size(), 2u);
    // First failure point (before b's first fence): nothing durable.
    EXPECT_EQ(seen[0].first, 0u);
    EXPECT_EQ(seen[0].second, 0u);
    // Second failure point (before b's second fence): a still absent,
    // b holds its first persisted value, not the pending re-dirty.
    EXPECT_EQ(seen[1].first, 0u);
    EXPECT_EQ(seen[1].second, 0xbbbbu);
}

TEST(DriverImage, CleanWorkloadsSurviveRealCrashImages)
{
    // Crash-consistent programs must recover from *realistic* crash
    // images too, not just the keep-everything copy.
    for (const char *name : {"btree", "hashmap_atomic", "redis"}) {
        workloads::WorkloadConfig cfg;
        cfg.initOps = 4;
        cfg.testOps = 5;
        cfg.postOps = 3;
        auto w = workloads::makeWorkload(name, cfg);
        pm::PmPool pool(1 << 22);
        core::DetectorConfig dcfg;
        dcfg.crashImageMode = true;
        core::Driver driver(pool, dcfg);
        auto res =
            driver.run([&](PmRuntime &rt) { w->pre(rt); },
                       [&](PmRuntime &rt) { w->post(rt); });
        EXPECT_EQ(res.count(core::BugType::CrossFailureRace), 0u)
            << name << "\n"
            << res.summary();
        EXPECT_EQ(res.count(core::BugType::RecoveryFailure), 0u)
            << name << "\n"
            << res.summary();
    }
}

TEST(DriverImage, BugStillDetectedInCrashImageMode)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 6;
    cfg.testOps = 8;
    cfg.postOps = 4;
    cfg.bugs.enable("btree.race.leaf_no_add");
    auto w = workloads::makeWorkload("btree", cfg);
    pm::PmPool pool(1 << 22);
    core::DetectorConfig dcfg;
    dcfg.crashImageMode = true;
    core::Driver driver(pool, dcfg);
    auto res = driver.run([&](PmRuntime &rt) { w->pre(rt); },
                          [&](PmRuntime &rt) { w->post(rt); });
    EXPECT_GE(res.count(core::BugType::CrossFailureRace), 1u)
        << res.summary();
}

TEST(DriverImage, MaxFailurePointsCapsExecutions)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 2;
    cfg.testOps = 6;
    auto w = workloads::makeWorkload("btree", cfg);
    pm::PmPool pool(1 << 22);
    core::DetectorConfig dcfg;
    dcfg.maxFailurePoints = 5;
    core::Driver driver(pool, dcfg);
    auto res =
        driver.run([&](PmRuntime &rt) { w->pre(rt); },
                   [&](PmRuntime &rt) { w->post(rt); });
    EXPECT_EQ(res.stats.failurePoints, 5u);
    EXPECT_EQ(res.stats.postExecutions, 5u);
}

} // namespace
