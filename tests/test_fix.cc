/**
 * @file
 * Repair-advisor tests: InsertionMutation hook mechanics, scoreboard
 * golden text/JSON, and the determinism contract — the plan list is a
 * pure function of the program, identical digit for digit whether the
 * inner campaigns run serial or parallel and whichever backend
 * restores the failure points.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/logging.hh"
#include "fix/fix.hh"
#include "harness.hh"
#include "mutate/insert.hh"
#include "obs/json.hh"
#include "testutil_json.hh"
#include "trace/runtime.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;

/** Trace @p prog through a fresh pool, with an optional hook. */
trace::TraceBuffer
traceOf(const core::ProgramFn &prog, trace::MutationHook *hook = nullptr)
{
    trace::TraceBuffer buf;
    pm::PmPool pool(xfdtest::defaultPoolBytes);
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    if (hook)
        rt.setMutationHook(hook);
    try {
        prog(rt);
    } catch (const trace::StageComplete &) {
    }
    return buf;
}

std::size_t
countOp(const trace::TraceBuffer &buf, trace::Op op)
{
    std::size_t n = 0;
    for (const auto &e : buf) {
        if (e.op == op)
            n++;
    }
    return n;
}

/** A two-cache-line store at one source location, never flushed. */
void
writeTwoLines(PmRuntime &rt)
{
    auto *p = rt.pool().at<unsigned char>(0);
    unsigned char bytes[96] = {1};
    rt.copyToPm(p, bytes, sizeof(bytes));
}

TEST(InsertionMutation, FlushFenceAfterWriteCoversEveryLine)
{
    core::ProgramFn prog = [](PmRuntime &rt) { writeTwoLines(rt); };
    trace::TraceBuffer base = traceOf(prog);
    ASSERT_EQ(countOp(base, trace::Op::Clwb), 0u);

    // Find the write's location from the baseline trace.
    trace::SrcLoc wloc{};
    for (const auto &e : base) {
        if (e.isWrite())
            wloc = e.loc;
    }
    ASSERT_NE(wloc.file[0], '\0');

    mutate::EditScript s;
    s.flushFenceAfterWritesAt = wloc;
    mutate::InsertionMutation hook(s);
    trace::TraceBuffer fixed = traceOf(prog, &hook);

    EXPECT_TRUE(hook.fired());
    // A 96-byte store spans two cache lines: the repair must insert
    // one per-line CLWB each (mirroring PmRuntime::clwb) + one SFENCE.
    EXPECT_EQ(countOp(fixed, trace::Op::Clwb), 2u);
    EXPECT_EQ(countOp(fixed, trace::Op::Sfence),
              countOp(base, trace::Op::Sfence) + 1);
    // Inserted entries are marked: internal, skip-failure, repair.
    std::size_t marked = 0;
    for (const auto &e : fixed) {
        if (e.op == trace::Op::Clwb) {
            EXPECT_TRUE(e.has(trace::flagInternal));
            EXPECT_TRUE(e.has(trace::flagSkipFailure));
            EXPECT_TRUE(e.has(trace::flagRepair));
            marked++;
        }
    }
    EXPECT_EQ(marked, 2u);
}

TEST(InsertionMutation, DropAndSkipFireExactly)
{
    core::ProgramFn prog = [](PmRuntime &rt) {
        auto *p = rt.pool().at<std::uint64_t>(0);
        rt.store(*p, std::uint64_t{7});
        rt.clwb(p, sizeof(*p));
        rt.sfence();
    };
    trace::TraceBuffer base = traceOf(prog);

    std::uint32_t flushSeq = ~0u;
    for (const auto &e : base) {
        if (e.op == trace::Op::Clwb)
            flushSeq = e.seq;
    }
    ASSERT_NE(flushSeq, ~0u);

    mutate::EditScript s;
    s.dropSeqs.push_back(flushSeq);
    mutate::InsertionMutation hook(s);
    trace::TraceBuffer fixed = traceOf(prog, &hook);

    EXPECT_TRUE(hook.fired());
    EXPECT_EQ(countOp(fixed, trace::Op::Clwb),
              countOp(base, trace::Op::Clwb) - 1);

    // A never-reached drop seq must leave fired() false.
    mutate::EditScript dead;
    dead.dropSeqs.push_back(static_cast<std::uint32_t>(base.size()) +
                            100);
    mutate::InsertionMutation deadHook(dead);
    traceOf(prog, &deadHook);
    EXPECT_FALSE(deadHook.fired());
}

/** Fix campaign over one bug-suite case, oracle off for speed. */
fix::FixReport
runFixOn(const std::string &workload, const std::string &bugId,
         unsigned threads = 1, const std::string &backend = "delta",
         bool withOracle = false)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 6;
    wcfg.testOps = 6;
    wcfg.postOps = 2;
    wcfg.bugs.enable(bugId);
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload(workload, wcfg);

    fix::FixConfig cfg;
    cfg.pre = [w](PmRuntime &rt) { w->pre(rt); };
    cfg.post = [w](PmRuntime &rt) { w->post(rt); };
    cfg.poolBytes = xfdtest::defaultPoolBytes;
    cfg.threads = threads;
    cfg.detector.backend = backend;
    cfg.withOracle = withOracle;
    return fix::runFixCampaign(cfg);
}

/** Canonical string form of a report's plan list, for diffing. */
std::string
planSignature(const fix::FixReport &rep)
{
    std::string s;
    for (const auto &o : rep.outcomes) {
        s += o.plan.describe();
        s += "|";
        s += fix::verdictName(o.verdict);
        s += "|";
        s += o.plan.patch;
        s += "\n";
    }
    return s;
}

TEST(FixCampaign, ScoreboardGoldenText)
{
    fix::FixReport rep = runFixOn("btree", "btree.perf.extra_flush");
    ASSERT_GE(rep.plans(), 1u);
    EXPECT_GE(rep.verified, 1u);
    EXPECT_EQ(rep.regressed, 0u);

    std::string board = rep.scoreboard();
    EXPECT_NE(board.find(strprintf(
                  "=== repair scoreboard: %zu plan(s): %zu verified, "
                  "%zu incomplete, %zu regressed ===",
                  rep.plans(), rep.verified, rep.incomplete,
                  rep.regressed)),
              std::string::npos)
        << board;
    // Header row + one row per plan, with stable columns.
    EXPECT_NE(board.find("plan kind"), std::string::npos);
    EXPECT_NE(board.find("R1"), std::string::npos);
    EXPECT_NE(board.find("drop_flush"), std::string::npos);
    EXPECT_NE(board.find("verified"), std::string::npos);
}

TEST(FixCampaign, JsonSchemaAndVerdicts)
{
    fix::FixReport rep = runFixOn("btree", "btree.perf.extra_flush");

    std::ostringstream os;
    obs::JsonWriter w(os);
    rep.writeJson(w);

    xfdtest::Json doc = xfdtest::JsonParser(os.str()).parse();
    EXPECT_EQ(doc.at("schema").str, "xfd-fix-v1");
    EXPECT_EQ(static_cast<std::size_t>(doc.at("plans").num),
              rep.plans());
    EXPECT_EQ(static_cast<std::size_t>(doc.at("verified").num),
              rep.verified);
    EXPECT_EQ(static_cast<std::size_t>(doc.at("regressed").num), 0u);

    const xfdtest::Json &repairs = doc.at("repairs");
    ASSERT_EQ(repairs.arr.size(), rep.plans());
    for (std::size_t i = 0; i < repairs.arr.size(); i++) {
        const xfdtest::Json &r = repairs.arr[i];
        EXPECT_EQ(r.at("id").str, rep.outcomes[i].plan.id);
        EXPECT_EQ(r.at("kind").str,
                  fix::repairKindName(rep.outcomes[i].plan.kind));
        EXPECT_EQ(r.at("verdict").str,
                  fix::verdictName(rep.outcomes[i].verdict));
        EXPECT_EQ(r.at("site").at("file").str,
                  std::string(rep.outcomes[i].plan.site.file));
        EXPECT_FALSE(r.at("patch").str.empty());
    }
    EXPECT_NE(doc.find("unplanned"), nullptr);
}

TEST(FixCampaign, RenderFixForMarksPlans)
{
    fix::FixReport rep = runFixOn("btree", "btree.perf.extra_flush");
    ASSERT_GE(rep.plans(), 1u);
    const fix::RepairPlan &p = rep.outcomes[0].plan;
    ASSERT_FALSE(p.findingId.empty());

    std::string fixLines = rep.renderFixFor(p.findingId);
    EXPECT_NE(fixLines.find("[FIX " + p.id + "]"), std::string::npos)
        << fixLines;
    EXPECT_NE(fixLines.find(fix::repairKindName(p.kind)),
              std::string::npos);
    EXPECT_TRUE(rep.renderFixFor("F999").empty());
}

TEST(FixCampaign, DeterministicSerialVsParallel)
{
    fix::FixReport serial =
        runFixOn("hashmap_atomic",
                 "hashmap_atomic.race.slot_plain_store", 1);
    fix::FixReport parallel =
        runFixOn("hashmap_atomic",
                 "hashmap_atomic.race.slot_plain_store", 4);

    ASSERT_GE(serial.plans(), 1u);
    EXPECT_EQ(planSignature(serial), planSignature(parallel));
    EXPECT_EQ(serial.verified, parallel.verified);
    EXPECT_EQ(serial.incomplete, parallel.incomplete);
    EXPECT_EQ(serial.regressed, parallel.regressed);
}

TEST(FixCampaign, DeterministicAcrossBackends)
{
    fix::FixReport full = runFixOn(
        "hashmap_atomic", "hashmap_atomic.race.slot_plain_store", 1,
        "full");
    fix::FixReport delta = runFixOn(
        "hashmap_atomic", "hashmap_atomic.race.slot_plain_store", 1,
        "delta");
    fix::FixReport batched = runFixOn(
        "hashmap_atomic", "hashmap_atomic.race.slot_plain_store", 1,
        "batched");

    ASSERT_GE(full.plans(), 1u);
    EXPECT_EQ(planSignature(full), planSignature(delta));
    EXPECT_EQ(planSignature(full), planSignature(batched));
}

TEST(FixCampaign, TargetSelectionChecksOnlyTheNamedPlan)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 6;
    wcfg.testOps = 6;
    wcfg.postOps = 2;
    wcfg.bugs.enable("btree.perf.extra_flush");
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload("btree", wcfg);

    fix::FixConfig cfg;
    cfg.pre = [w](PmRuntime &rt) { w->pre(rt); };
    cfg.post = [w](PmRuntime &rt) { w->post(rt); };
    cfg.poolBytes = xfdtest::defaultPoolBytes;
    cfg.withOracle = false;
    cfg.targets = "R1";
    fix::FixReport rep = fix::runFixCampaign(cfg);

    ASSERT_GE(rep.plans(), 2u);
    EXPECT_EQ(rep.outcomes[0].verdict, fix::Verdict::Verified);
    // Non-matching plans are synthesized but never machine-checked.
    for (std::size_t i = 1; i < rep.outcomes.size(); i++)
        EXPECT_EQ(rep.outcomes[i].verdict, fix::Verdict::Incomplete);
}

} // namespace
