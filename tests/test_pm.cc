/**
 * @file
 * Unit tests for the PM substrate: pool addressing, snapshots, images.
 */

#include <gtest/gtest.h>

#include "pm/image.hh"
#include "pm/pool.hh"

namespace
{

using namespace xfd;
using pm::PmImage;
using pm::PmPool;
using pm::PPtr;

TEST(PmPool, BaseAndSize)
{
    PmPool pool(1 << 20);
    EXPECT_EQ(pool.base(), defaultPoolBase);
    EXPECT_EQ(pool.size(), 1u << 20);
    EXPECT_EQ(pool.range().begin, defaultPoolBase);
    EXPECT_EQ(pool.range().end, defaultPoolBase + (1 << 20));
}

TEST(PmPool, CustomBase)
{
    PmPool pool(4096, 0x2000000000ull);
    EXPECT_EQ(pool.base(), 0x2000000000ull);
}

TEST(PmPool, ContainsBoundaries)
{
    PmPool pool(4096);
    EXPECT_TRUE(pool.contains(pool.base()));
    EXPECT_TRUE(pool.contains(pool.base() + 4095));
    EXPECT_FALSE(pool.contains(pool.base() + 4096));
    EXPECT_FALSE(pool.contains(pool.base() - 1));
    EXPECT_TRUE(pool.contains(pool.base(), 4096));
    EXPECT_FALSE(pool.contains(pool.base() + 1, 4096));
}

TEST(PmPool, AddressTranslationRoundTrip)
{
    PmPool pool(4096);
    Addr a = pool.base() + 128;
    void *host = pool.toHost(a);
    EXPECT_EQ(pool.toAddr(host), a);
    EXPECT_TRUE(pool.hosts(host));
    int local = 0;
    EXPECT_FALSE(pool.hosts(&local));
}

TEST(PmPool, InitiallyZeroed)
{
    PmPool pool(4096);
    for (std::size_t i = 0; i < 4096; i += 512)
        EXPECT_EQ(pool.data()[i], 0u);
}

TEST(PmPool, TypedAccess)
{
    PmPool pool(4096);
    auto *v = pool.at<std::uint64_t>(64);
    *v = 0xdeadbeef;
    EXPECT_EQ(*pool.at<std::uint64_t>(64), 0xdeadbeefu);
}

TEST(PmPool, WipeClears)
{
    PmPool pool(4096);
    *pool.at<std::uint32_t>(0) = 7;
    pool.wipe();
    EXPECT_EQ(*pool.at<std::uint32_t>(0), 0u);
}

TEST(PmImage, SnapshotRestoreRoundTrip)
{
    PmPool pool(4096);
    *pool.at<std::uint32_t>(100) = 42;
    PmImage img = pool.snapshot();
    *pool.at<std::uint32_t>(100) = 99;
    pool.restore(img);
    EXPECT_EQ(*pool.at<std::uint32_t>(100), 42u);
}

TEST(PmImage, ApplyWrite)
{
    PmPool pool(4096);
    PmImage img = pool.snapshot();
    std::uint32_t v = 0x01020304;
    img.applyWrite(pool.base() + 8, &v, sizeof(v));
    img.copyTo(pool);
    EXPECT_EQ(*pool.at<std::uint32_t>(8), 0x01020304u);
}

TEST(PmImage, ApplyWriteIndependentOfPool)
{
    PmPool pool(4096);
    PmImage img = pool.snapshot();
    std::uint32_t v = 7;
    img.applyWrite(pool.base(), &v, sizeof(v));
    // Pool untouched until copyTo.
    EXPECT_EQ(*pool.at<std::uint32_t>(0), 0u);
}

TEST(PPtrTest, NullAndResolve)
{
    PmPool pool(4096);
    PPtr<std::uint64_t> p;
    EXPECT_TRUE(p.null());
    EXPECT_FALSE(p);
    EXPECT_EQ(p.get(pool), nullptr);

    PPtr<std::uint64_t> q(pool.base() + 256);
    EXPECT_FALSE(q.null());
    *q.get(pool) = 5;
    EXPECT_EQ(*pool.at<std::uint64_t>(256), 5u);
}

TEST(PPtrTest, Equality)
{
    PPtr<int> a(defaultPoolBase + 8);
    PPtr<int> b(defaultPoolBase + 8);
    PPtr<int> c(defaultPoolBase + 16);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(AddrRangeTest, OverlapAndContain)
{
    AddrRange r{100, 200};
    EXPECT_TRUE(r.contains(100));
    EXPECT_TRUE(r.contains(199));
    EXPECT_FALSE(r.contains(200));
    EXPECT_TRUE(r.overlaps({150, 250}));
    EXPECT_TRUE(r.overlaps({0, 101}));
    EXPECT_FALSE(r.overlaps({200, 300}));
    EXPECT_FALSE(r.overlaps({0, 100}));
    EXPECT_EQ(r.size(), 100u);
}

TEST(LineBaseTest, Alignment)
{
    EXPECT_EQ(xfd::lineBase(0), 0u);
    EXPECT_EQ(xfd::lineBase(63), 0u);
    EXPECT_EQ(xfd::lineBase(64), 64u);
    EXPECT_EQ(xfd::lineBase(130), 128u);
}

} // namespace
