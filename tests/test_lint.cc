/**
 * @file
 * Unit coverage for src/lint: every rule (XL01..XL08) on a handcrafted
 * trace with golden text output, rule-list parsing, RoI/internal
 * gating, report-level deduplication, the JSON document, and the
 * prunability verdicts — including the allocation-region tag that
 * keeps aliasing store statements from pruning against each other.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "harness.hh"
#include "lint/frontier.hh"
#include "lint/lint.hh"
#include "obs/json.hh"
#include "trace/buffer.hh"
#include "trace/runtime.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using lint::Diagnostic;
using lint::LintConfig;
using lint::LintReport;
using lint::Rule;
using trace::Op;
using trace::TraceBuffer;
using trace::TraceEntry;

constexpr Addr base = defaultPoolBase;

/** One in-RoI entry at t.cc:@p line; writes carry @p size bytes. */
TraceEntry
mk(Op op, Addr addr, std::uint32_t size, unsigned line,
   const char *file = "t.cc")
{
    TraceEntry e;
    e.op = op;
    e.addr = addr;
    e.size = size;
    e.loc.file = file;
    e.loc.func = "test";
    e.loc.line = line;
    e.flags = trace::flagInRoi;
    if (e.isWrite())
        e.data.assign(size, 0xab);
    return e;
}

LintReport
lintOf(const TraceBuffer &buf, std::uint32_t rules = lint::allRules)
{
    LintConfig cfg;
    cfg.rules = rules;
    return lint::runLint(buf, cfg);
}

TEST(LintRules, RedundantWritebackXL01)
{
    TraceBuffer buf;
    buf.append(mk(Op::Write, base, 8, 10));
    buf.append(mk(Op::Clwb, base, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 12));
    std::uint32_t seq = buf.append(mk(Op::Clwb, base, 64, 13));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::RedundantWriteback), 1u);
    const Diagnostic &d = rep.diagnostics.front();
    EXPECT_EQ(d.rule, Rule::RedundantWriteback);
    EXPECT_EQ(d.seq, seq);
    EXPECT_EQ(d.loc.line, 13u);
    EXPECT_EQ(
        d.str(),
        "[XL01 perf] redundant writeback: no modified data in line at "
        "t.cc:13 (test), seq 3, addr 0x10000000000+64");
}

TEST(LintRules, DuplicateTxAddXL02)
{
    TraceBuffer buf;
    std::uint32_t first = buf.append(mk(Op::TxAdd, base, 64, 40));
    std::uint32_t dup = buf.append(mk(Op::TxAdd, base + 8, 8, 41));

    // A transaction boundary closes the open snapshots: the same
    // contained range afterwards is a fresh TX_ADD, not a duplicate.
    TraceEntry commit = mk(Op::LibCall, 0, 0, 42);
    commit.label = trace::labels::txCommit;
    buf.append(std::move(commit));
    buf.append(mk(Op::TxAdd, base + 8, 8, 43));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::DuplicateTxAdd), 1u);
    const Diagnostic &d = rep.diagnostics.front();
    EXPECT_EQ(d.seq, dup);
    EXPECT_EQ(d.relatedSeq, first);
    EXPECT_EQ(d.related.line, 40u);
    EXPECT_EQ(
        d.str(),
        "[XL02 perf] duplicated TX_ADD of the same PM object at "
        "t.cc:41 (test), seq 1, addr 0x10000000008+8; first at t.cc:40, "
        "seq 0");
}

TEST(LintRules, FlushUnmodifiedXL03)
{
    TraceBuffer buf;
    buf.append(mk(Op::Clwb, base + 256, 64, 20));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::FlushUnmodified), 1u);
    EXPECT_EQ(
        rep.diagnostics.front().str(),
        "[XL03 perf] flush of a line with no tracked PM writes at "
        "t.cc:20 (test), seq 0, addr 0x10000000100+64");
}

TEST(LintRules, FenceNoPendingXL04)
{
    TraceBuffer buf;
    buf.append(mk(Op::Write, base, 8, 10));
    buf.append(mk(Op::Clwb, base, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 12)); // retires: not reported
    std::uint32_t idle = buf.append(mk(Op::Sfence, 0, 0, 13));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::FenceNoPending), 1u);
    EXPECT_EQ(rep.diagnostics.front().seq, idle);
    EXPECT_EQ(
        rep.diagnostics.front().str(),
        "[XL04 note] fence with no pending writebacks to retire at "
        "t.cc:13 (test), seq 3, addr 0+0");
}

TEST(LintRules, UnpersistedAtExitXL05)
{
    // Two writes from the same statement group into one diagnostic;
    // an allocated-but-never-written object is not a lost write.
    TraceBuffer buf;
    buf.append(mk(Op::Write, base, 8, 30));
    buf.append(mk(Op::Write, base + 64, 8, 30));
    buf.append(mk(Op::Alloc, base + 4096, 64, 31));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::UnpersistedAtExit), 1u);
    const Diagnostic &d = rep.diagnostics.front();
    EXPECT_EQ(d.loc.line, 30u);
    EXPECT_EQ(d.size, 16u); // 16 one-byte cells across both writes
    EXPECT_EQ(
        d.str(),
        "[XL05 error] 16 cell(s) written here never reach durability "
        "before the trace ends at t.cc:30 (test), seq 0, "
        "addr 0x10000000000+16");
}

TEST(LintRules, CommitFenceMissingXL06)
{
    TraceBuffer buf;
    buf.append(mk(Op::CommitVar, base + 1024, 8, 50));
    buf.append(mk(Op::Write, base, 8, 51));
    std::uint32_t commit =
        buf.append(mk(Op::Write, base + 1024, 8, 52));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::CommitFenceMissing), 1u);
    EXPECT_EQ(rep.diagnostics.front().seq, commit);

    // Fencing the guarded data first silences the rule.
    TraceBuffer ok;
    ok.append(mk(Op::CommitVar, base + 1024, 8, 50));
    ok.append(mk(Op::Write, base, 8, 51));
    ok.append(mk(Op::Clwb, base, 64, 51));
    ok.append(mk(Op::Sfence, 0, 0, 51));
    ok.append(mk(Op::Write, base + 1024, 8, 52));
    EXPECT_EQ(lintOf(ok).count(Rule::CommitFenceMissing), 0u);
}

TEST(LintRules, EpochOrderXL07)
{
    TraceBuffer buf;
    buf.append(mk(Op::Write, base, 8, 60));
    buf.append(mk(Op::Clwb, base, 64, 61));
    std::uint32_t second = buf.append(mk(Op::Write, base, 8, 62));

    LintReport rep = lintOf(buf);
    ASSERT_EQ(rep.count(Rule::EpochOrder), 1u);
    EXPECT_EQ(rep.diagnostics.front().seq, second);
}

TEST(LintRules, GatingMirrorsTheDetector)
{
    // The same offending flush, outside the RoI / inside library
    // internals / inside skipDetection: no diagnostics, exactly like
    // the dynamic detector's reporting filter.
    for (std::uint16_t flags :
         {std::uint16_t{0},
          std::uint16_t(trace::flagInRoi | trace::flagInternal),
          std::uint16_t(trace::flagInRoi | trace::flagSkipDetection)}) {
        TraceBuffer buf;
        TraceEntry e = mk(Op::Clwb, base, 64, 20);
        e.flags = flags;
        buf.append(std::move(e));
        EXPECT_EQ(lintOf(buf).diagnostics.size(), 0u) << flags;
    }
}

TEST(LintRules, ImageOnlyWritesAreInvisible)
{
    // Allocator zero-fill is replay-only; it must neither trip XL05
    // nor make a later flush look justified.
    TraceBuffer buf;
    TraceEntry z = mk(Op::Write, base, 64, 70);
    z.flags |= trace::flagImageOnly;
    buf.append(std::move(z));
    buf.append(mk(Op::Clwb, base, 64, 71));

    LintReport rep = lintOf(buf);
    EXPECT_EQ(rep.count(Rule::UnpersistedAtExit), 0u);
    EXPECT_EQ(rep.count(Rule::FlushUnmodified), 1u);
}

TEST(LintRules, RuleMaskFilters)
{
    TraceBuffer buf;
    buf.append(mk(Op::Clwb, base, 64, 20));  // XL03
    buf.append(mk(Op::Sfence, 0, 0, 21));    // XL04

    LintReport rep =
        lintOf(buf, lint::ruleBit(Rule::FenceNoPending));
    EXPECT_EQ(rep.diagnostics.size(), 1u);
    EXPECT_EQ(rep.count(Rule::FenceNoPending), 1u);
    EXPECT_EQ(rep.count(Rule::FlushUnmodified), 0u);
}

TEST(LintRules, DiagnosticsAreDeduplicated)
{
    // Report-level invariant behind the dedup sink: no two
    // diagnostics ever share (rule, addr, seq).
    TraceBuffer buf;
    for (unsigned i = 0; i < 8; i++) {
        buf.append(mk(Op::Write, base + i * 8, 8, 80));
        buf.append(mk(Op::Clwb, base + 256, 64, 81));
        buf.append(mk(Op::Sfence, 0, 0, 82));
    }
    LintReport rep = lintOf(buf);
    EXPECT_FALSE(rep.diagnostics.empty());
    std::set<std::tuple<int, Addr, std::uint32_t>> keys;
    for (const auto &d : rep.diagnostics) {
        EXPECT_TRUE(
            keys.emplace(static_cast<int>(d.rule), d.addr, d.seq)
                .second)
            << d.str();
    }
}

TEST(LintParse, RuleListSpellings)
{
    std::uint32_t mask = 0;
    std::string err;
    EXPECT_TRUE(lint::parseRuleList("all", mask, &err));
    EXPECT_EQ(mask, lint::allRules);
    EXPECT_TRUE(lint::parseRuleList("", mask, &err));
    EXPECT_EQ(mask, lint::allRules);

    EXPECT_TRUE(
        lint::parseRuleList("XL01,duplicate_tx_add", mask, &err));
    EXPECT_EQ(mask, lint::ruleBit(Rule::RedundantWriteback) |
                        lint::ruleBit(Rule::DuplicateTxAdd));

    EXPECT_FALSE(lint::parseRuleList("XL99", mask, &err));
    EXPECT_NE(err.find("XL99"), std::string::npos);
    EXPECT_FALSE(lint::parseRuleList(",", mask, &err));
    EXPECT_EQ(err, "empty lint rule list");
}

TEST(LintParse, UnknownRuleErrorNamesCurrentRange)
{
    // The message derives the upper bound from ruleCount with a
    // zero-padded field: it must track the registry ("XL01..XL08"),
    // not misrender the count ("XL010"-style).
    std::uint32_t mask = 0;
    std::string err;
    ASSERT_FALSE(lint::parseRuleList("bogus_rule", mask, &err));
    EXPECT_NE(err.find("XL01..XL08"), std::string::npos) << err;
    EXPECT_EQ(err.find("XL010"), std::string::npos) << err;
    EXPECT_EQ(std::string(lint::ruleId(Rule::CommitVarInference)),
              "XL08");
}

TEST(LintRender, TextScoreboardGolden)
{
    TraceBuffer buf;
    buf.append(mk(Op::Clwb, base, 64, 20));
    LintReport rep = lintOf(buf);
    EXPECT_EQ(lint::renderText(rep),
              "=== xfd-lint: 1 diagnostic(s) ===\n"
              "[XL03 perf] flush of a line with no tracked PM writes "
              "at t.cc:20 (test), seq 0, addr 0x10000000000+64\n"
              "rule hits: XL03=1\n");
}

TEST(LintRender, JsonGolden)
{
    TraceBuffer buf;
    buf.append(mk(Op::Clwb, base, 64, 20));
    LintReport rep =
        lintOf(buf, lint::ruleBit(Rule::FlushUnmodified));

    std::ostringstream out;
    obs::JsonWriter w(out);
    lint::writeLintJson(rep, w);
    EXPECT_EQ(
        out.str(),
        "{\"schema\":\"xfd-lint-v1\",\"diagnostics\":[{\"rule\":"
        "\"XL03\",\"name\":\"flush_unmodified\",\"severity\":\"perf\","
        "\"addr\":\"0x10000000000\",\"size\":64,\"seq\":0,\"loc\":{"
        "\"file\":\"t.cc\",\"line\":20,\"func\":\"test\"},\"note\":"
        "\"flush of a line with no tracked PM writes\"}],\"hits\":{"
        "\"XL03\":1},\"prune\":{\"points\":0,\"kept\":0,\"pruned\":0,"
        "\"ratio\":0,\"pruned_points\":[]}}");
}

// ---------------------------------------------------------------
// Prunability verdicts.
// ---------------------------------------------------------------

/** Fence seqs of @p buf, the ordering points a plan would inject at. */
std::vector<std::uint32_t>
fenceSeqs(const TraceBuffer &buf)
{
    std::vector<std::uint32_t> out;
    for (const auto &e : buf) {
        if (e.isFence())
            out.push_back(e.seq);
    }
    return out;
}

TEST(LintPrune, IdenticalIterationsPrune)
{
    // Four loop iterations writing distinct addresses from one
    // statement: every fence after the first sees the same frontier
    // signature at the same ordering-point location.
    TraceBuffer buf;
    for (unsigned i = 0; i < 4; i++) {
        buf.append(mk(Op::Write, base + i * 64, 8, 10));
        buf.append(mk(Op::Clwb, base + i * 64, 64, 11));
        buf.append(mk(Op::Sfence, 0, 0, 12));
    }
    std::vector<std::uint32_t> points = fenceSeqs(buf);
    ASSERT_EQ(points.size(), 4u);

    lint::PruneVerdicts v =
        lint::computePruneVerdicts(buf, points, 1);
    ASSERT_EQ(v.kept.size(), 1u);
    EXPECT_EQ(v.kept.front(), points.front());
    ASSERT_EQ(v.pruned.size(), 3u);
    for (const auto &p : v.pruned)
        EXPECT_EQ(p.keptRep, points.front());
    EXPECT_DOUBLE_EQ(v.pruneRatio(), 0.75);
}

TEST(LintPrune, DistinctWriterLinesAreKept)
{
    TraceBuffer buf;
    for (unsigned i = 0; i < 2; i++) {
        buf.append(mk(Op::Write, base + i * 64, 8, 10 + i));
        buf.append(mk(Op::Clwb, base + i * 64, 64, 20));
        buf.append(mk(Op::Sfence, 0, 0, 21));
    }
    lint::PruneVerdicts v =
        lint::computePruneVerdicts(buf, fenceSeqs(buf), 1);
    EXPECT_EQ(v.kept.size(), 2u);
    EXPECT_EQ(v.pruned.size(), 0u);
}

TEST(LintPrune, OrderingPointLocationsFormSeparateGroups)
{
    // Same signature, but the fences sit on different source lines:
    // recovery-failure reports carry the failure point's location, so
    // the points are not interchangeable.
    TraceBuffer buf;
    buf.append(mk(Op::Write, base, 8, 10));
    buf.append(mk(Op::Clwb, base, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 12));
    buf.append(mk(Op::Write, base + 64, 8, 10));
    buf.append(mk(Op::Clwb, base + 64, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 99));

    lint::PruneVerdicts v =
        lint::computePruneVerdicts(buf, fenceSeqs(buf), 1);
    EXPECT_EQ(v.kept.size(), 2u);
    EXPECT_EQ(v.pruned.size(), 0u);
}

TEST(LintPrune, AllocationRegionsDisambiguateAliasingStores)
{
    // One store statement writing first into root memory, then into a
    // heap allocation: recovery reaches the two targets through
    // different reads, so the region tag must keep both points even
    // though writer location and cell states match (the memcached
    // bucket-head vs. next-field aliasing case).
    TraceBuffer buf;
    buf.append(mk(Op::Write, base, 8, 10));
    buf.append(mk(Op::Clwb, base, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 12));
    buf.append(mk(Op::Alloc, base + 4096, 64, 5));
    buf.append(mk(Op::Write, base + 4096, 8, 10));
    buf.append(mk(Op::Clwb, base + 4096, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 12));

    lint::PruneVerdicts v =
        lint::computePruneVerdicts(buf, fenceSeqs(buf), 1);
    EXPECT_EQ(v.kept.size(), 2u);
    EXPECT_EQ(v.pruned.size(), 0u);

    // Freeing the region returns the address range to "root": the
    // next identical iteration prunes again.
    buf.append(mk(Op::Free, base + 4096, 64, 6));
    buf.append(mk(Op::Write, base + 128, 8, 10));
    buf.append(mk(Op::Clwb, base + 128, 64, 11));
    buf.append(mk(Op::Sfence, 0, 0, 12));
    v = lint::computePruneVerdicts(buf, fenceSeqs(buf), 1);
    EXPECT_EQ(v.kept.size(), 2u);
    ASSERT_EQ(v.pruned.size(), 1u);
    EXPECT_EQ(v.pruned.front().keptRep, fenceSeqs(buf).front());
}

// ---------------------------------------------------------------
// XL08: WITCHER-style commit-variable inference.
// ---------------------------------------------------------------

/** Pre-failure trace of one stock (bug-free) workload run. */
TraceBuffer
workloadTrace(const std::string &name)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 3;
    wcfg.testOps = 3;
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;
    TraceBuffer captured;
    core::CampaignObserver obs;
    obs.onPreTraceReady = [&captured](const TraceBuffer &b) {
        captured = b;
    };
    xfdtest::RunOptions opt;
    opt.observer = &obs;
    opt.detector.maxFailurePoints = 1;
    xfdtest::runWorkload(name, wcfg, opt);
    return captured;
}

TEST(LintInference, CommitVarSweepAcrossWorkloads)
{
    // The inference invariants must hold on every stock workload:
    // candidates come in address order, the solo-persist count never
    // exceeds (and implies) durable stores, annotations are seen
    // where the workload registers commit variables, and the XL08
    // cross-check stays silent — correct code must not cry wolf.
    unsigned annotatedWorkloads = 0;
    for (const std::string &name : workloads::workloadNames()) {
        SCOPED_TRACE(name);
        TraceBuffer buf = workloadTrace(name);
        ASSERT_FALSE(buf.empty());

        lint::LintConfig cfg;
        lint::CommitVarInferenceResult inf =
            lint::inferCommitVars(buf, cfg.granularity);
        Addr prev = 0;
        for (const lint::CommitVarCandidate &c : inf.candidates) {
            EXPECT_GE(c.addr, prev);
            prev = c.addr;
            EXPECT_LE(c.soloPersists, c.stores);
            if (c.soloPersists > 0) {
                EXPECT_TRUE(c.everDurable);
            }
            if (c.looksLikeCommitVar()) {
                EXPECT_GE(c.stores, 2u);
            }
        }
        if (inf.annotationsPresent) {
            annotatedWorkloads++;
            // Agreement: anything exhibiting the atomic-publish
            // signature is covered by an annotation.
            for (const lint::CommitVarCandidate &c : inf.candidates) {
                EXPECT_TRUE(!c.looksLikeCommitVar() || c.annotated)
                    << "unannotated commit-var candidate at "
                    << c.lastStore.str();
            }
        }

        LintReport rep = lintOf(
            buf, lint::ruleBit(Rule::CommitVarInference));
        EXPECT_EQ(rep.diagnostics.size(), 0u)
            << lint::renderText(rep);

        // Flush-free persistency: the signature cannot exist.
        EXPECT_TRUE(lint::inferCommitVars(buf, cfg.granularity, true)
                        .candidates.empty());
    }
    // The commit-variable mechanisms really annotate.
    EXPECT_GE(annotatedWorkloads, 1u);
}

TEST(LintPrune, ReportCarriesVerdictsWhenPlanSupplied)
{
    TraceBuffer buf;
    for (unsigned i = 0; i < 3; i++) {
        buf.append(mk(Op::Write, base + i * 64, 8, 10));
        buf.append(mk(Op::Clwb, base + i * 64, 64, 11));
        buf.append(mk(Op::Sfence, 0, 0, 12));
    }
    std::vector<std::uint32_t> points = fenceSeqs(buf);
    LintConfig cfg;
    LintReport rep = lint::runLint(buf, cfg, &points);
    EXPECT_EQ(rep.pointsConsidered, 3u);
    EXPECT_EQ(rep.prune.kept.size(), 1u);
    EXPECT_EQ(rep.prune.pruned.size(), 2u);
    EXPECT_NE(lint::renderText(rep).find(
                  "prunable failure points: 2/3 (66.7%)"),
              std::string::npos);
}

} // namespace
