/**
 * @file
 * Batch-scheduler equivalence suite: `--backend=batched` must be an
 * invisible optimization. Findings (compared as byte-identical
 * fingerprints) must match the serial delta backend over every stock
 * workload and every bug-suite entry, the crash-state oracle must
 * agree 1.0 with a batched campaign, planBatches() must account for
 * every input point exactly once, and weighted progress ticks must
 * cover folded group members. Plus a same-value-elision smoke test
 * (emit-time elision cannot change findings either).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "bugsuite/registry.hh"
#include "core/failure_planner.hh"
#include "harness.hh"
#include "oracle/diff.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using bugsuite::allBugCases;
using bugsuite::BugCase;
using core::BatchPlan;
using core::CampaignResult;
using core::DetectorConfig;
using core::FailurePlan;
using core::planBatches;
using core::planFailurePoints;
using core::ProgressUpdate;
using trace::PmRuntime;
using trace::Stage;
using trace::TraceBuffer;

/** Small workload scale so the full cross-product stays fast. */
workloads::WorkloadConfig
smallConfig(const std::string &name)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 4;
    wcfg.testOps = 4;
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;
    return wcfg;
}

xfdtest::RunOptions
withBackend(const std::string &backend)
{
    xfdtest::RunOptions opt;
    opt.detector.backend = backend;
    return opt;
}

/**
 * The batched bookkeeping must add up to the serial plan: in batched
 * mode stats.failurePoints counts executed representatives (the
 * schedule), and representatives + folded members must equal the
 * serial campaign's full failure-point count.
 */
void
expectBatchAccounting(const CampaignResult &serial,
                      const CampaignResult &batched)
{
    const core::CampaignStats &s = serial.statistics();
    const core::CampaignStats &b = batched.statistics();
    EXPECT_EQ(b.failurePoints, b.batchGroups);
    EXPECT_EQ(b.batchGroups + b.lintPrunedPoints, s.failurePoints);
    if (s.failurePoints > 0) {
        EXPECT_GE(b.batchGroups, 1u);
    }
    // Only representatives run post-failure recovery.
    EXPECT_EQ(b.postExecutions, b.batchGroups);
}

class BatchWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BatchWorkloadTest, FingerprintMatchesSerialDelta)
{
    const std::string &name = GetParam();
    auto wcfg = smallConfig(name);
    CampaignResult serial =
        xfdtest::runWorkload(name, wcfg, withBackend("delta"));
    CampaignResult batched =
        xfdtest::runWorkload(name, wcfg, withBackend("batched"));
    EXPECT_EQ(batched.fingerprint(), serial.fingerprint())
        << "batched findings diverge on " << name;
    EXPECT_EQ(xfdtest::fingerprint(batched), xfdtest::fingerprint(serial));
    expectBatchAccounting(serial, batched);
}

TEST_P(BatchWorkloadTest, FingerprintMatchesFullBackend)
{
    const std::string &name = GetParam();
    auto wcfg = smallConfig(name);
    CampaignResult full =
        xfdtest::runWorkload(name, wcfg, withBackend("full"));
    CampaignResult batched =
        xfdtest::runWorkload(name, wcfg, withBackend("batched"));
    EXPECT_EQ(batched.fingerprint(), full.fingerprint());
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BatchWorkloadTest,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto &info) { return info.param; });

class BatchBugSuiteTest : public ::testing::TestWithParam<BugCase>
{
};

TEST_P(BatchBugSuiteTest, FingerprintMatchesSerialDelta)
{
    const BugCase &c = GetParam();
    CampaignResult serial = bugsuite::runBugCase(c);
    DetectorConfig cfg;
    cfg.backend = "batched";
    CampaignResult batched = bugsuite::runBugCase(c, cfg);
    EXPECT_EQ(batched.fingerprint(), serial.fingerprint())
        << "batched findings diverge on bug case " << c.description;
    EXPECT_TRUE(bugsuite::detected(c, batched)) << batched.summary();
}

INSTANTIATE_TEST_SUITE_P(AllBugs, BatchBugSuiteTest,
                         ::testing::ValuesIn(allBugCases()),
                         [](const auto &info) {
                             std::string n = info.param.id.empty()
                                                 ? info.param.workload
                                                 : info.param.id;
                             for (char &ch : n) {
                                 if (isalnum(static_cast<unsigned char>(
                                         ch)) == 0)
                                     ch = '_';
                             }
                             return n;
                         });

TEST(BatchOracle, BatchedCampaignAgreesWithOracle)
{
    for (const std::string &name : {std::string("btree"),
                                    std::string("hashmap_tx")}) {
        auto wcfg = smallConfig(name);
        wcfg.initOps = 3;
        wcfg.testOps = 3;
        std::shared_ptr<workloads::Workload> w =
            workloads::makeWorkload(name, wcfg);
        pm::PmPool pool(xfdtest::defaultPoolBytes);
        oracle::DiffConfig cfg;
        cfg.detector.backend = "batched";
        oracle::DiffReport rep = oracle::runDifferentialCampaign(
            pool, [w](PmRuntime &rt) { w->pre(rt); },
            [w](PmRuntime &rt) { w->post(rt); }, cfg);
        EXPECT_TRUE(rep.clean()) << name;
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0) << name;
    }
}

/** Builds traces hands-on, like the failure-planner unit tests. */
struct BatchPlanTest : ::testing::Test
{
    BatchPlanTest() : pool(1 << 20), rt(pool, buf, Stage::PreFailure) {}

    BatchPlan
    planned(unsigned granularity = 1)
    {
        FailurePlan p = planFailurePoints(buf, DetectorConfig{});
        return planBatches(buf, p.points, granularity);
    }

    pm::PmPool pool;
    TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(BatchPlanTest, EveryPointInExactlyOneGroup)
{
    rt.roiBegin();
    for (int i = 0; i < 4; i++) {
        // Same site, same value: identical frontier signature.
        rt.store(*pool.at<int>(0), 7);
        rt.persistBarrier(pool.at<int>(0), 4);
    }
    rt.roiEnd();
    FailurePlan p = planFailurePoints(buf, DetectorConfig{});
    ASSERT_EQ(p.points.size(), 4u);
    BatchPlan bp = planBatches(buf, p.points, 1);
    EXPECT_EQ(bp.totalPoints(), p.points.size());

    std::vector<std::uint32_t> covered;
    for (const auto &g : bp.groups) {
        covered.push_back(g.rep);
        EXPECT_EQ(g.weight(), 1 + g.folded.size());
        std::uint32_t prev = g.rep;
        for (std::uint32_t f : g.folded) {
            EXPECT_GT(f, prev); // ascending, excludes rep
            prev = f;
            covered.push_back(f);
        }
    }
    std::sort(covered.begin(), covered.end());
    EXPECT_EQ(covered, p.points); // exactly once, nothing extra
}

TEST_F(BatchPlanTest, IdenticalIterationsFoldToOneGroup)
{
    rt.roiBegin();
    for (int i = 0; i < 4; i++) {
        rt.store(*pool.at<int>(0), 7);
        rt.persistBarrier(pool.at<int>(0), 4);
    }
    rt.roiEnd();
    BatchPlan bp = planned();
    ASSERT_EQ(bp.groups.size(), 1u);
    EXPECT_EQ(bp.groups[0].folded.size(), 3u);
    EXPECT_EQ(bp.foldedPoints(), 3u);
}

TEST_F(BatchPlanTest, DistinctFrontiersStaySeparate)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.store(*pool.at<int>(64), 2); // different address and value
    rt.persistBarrier(pool.at<int>(64), 4);
    rt.roiEnd();
    BatchPlan bp = planned();
    EXPECT_EQ(bp.groups.size(), 2u);
    EXPECT_EQ(bp.foldedPoints(), 0u);
    ASSERT_EQ(bp.totalPoints(), 2u);
    EXPECT_LT(bp.groups[0].rep, bp.groups[1].rep);
}

TEST_F(BatchPlanTest, EmptyPointListPlansNothing)
{
    BatchPlan bp = planBatches(buf, {}, 1);
    EXPECT_TRUE(bp.groups.empty());
    EXPECT_EQ(bp.totalPoints(), 0u);
}

/** Records every progress tick a campaign fires. */
struct RecordingHooks final : core::CampaignHooks
{
    static_assert(core::CampaignHooks::version == 2);
    std::vector<ProgressUpdate> ticks;

    void
    onProgress(const ProgressUpdate &u) override
    {
        ticks.push_back(u);
    }
};

TEST(BatchProgress, WeightedTicksCoverFoldedMembers)
{
    core::CampaignObserver obsv;
    RecordingHooks hooks;
    obsv.hooks = &hooks;
    xfdtest::RunOptions opt = withBackend("batched");
    opt.observer = &obsv;
    CampaignResult res =
        xfdtest::runWorkload("btree", smallConfig("btree"), opt);

    ASSERT_FALSE(hooks.ticks.empty());
    // Zero anchor first, so rate estimation has a start-of-loop point.
    EXPECT_EQ(hooks.ticks.front().done, 0u);
    // Progress totals are pre-batching: representatives + folded.
    const std::size_t total = res.statistics().failurePoints +
                              res.statistics().lintPrunedPoints;
    EXPECT_EQ(hooks.ticks.front().total, total);
    std::size_t prev = 0;
    for (const ProgressUpdate &u : hooks.ticks) {
        EXPECT_GE(u.done, prev); // monotone
        EXPECT_LE(u.done, u.total);
        EXPECT_EQ(u.total, total);
        prev = u.done;
    }
    // A finished group reports its whole member count: the final tick
    // reaches the pre-batching total even though only representatives
    // executed.
    EXPECT_EQ(hooks.ticks.back().done, total);
    EXPECT_EQ(res.statistics().postExecutions,
              res.statistics().batchGroups);
    EXPECT_LT(res.statistics().postExecutions, total);
}

TEST(SameValueElision, ElidedWritesDoNotChangeFindings)
{
    for (const std::string &name : {std::string("btree"),
                                    std::string("rbtree")}) {
        auto wcfg = smallConfig(name);
        CampaignResult plain = xfdtest::runWorkload(name, wcfg);
        xfdtest::RunOptions opt;
        opt.detector.elideSameValueWrites = true;
        CampaignResult elided = xfdtest::runWorkload(name, wcfg, opt);
        EXPECT_EQ(elided.fingerprint(), plain.fingerprint()) << name;
    }
}

/**
 * A redundant same-value store must behave exactly like the
 * non-elided run: the payload is dropped but the entry still dirties
 * its line (no redundant-writeback false positive on the following
 * flush) and still marks the location initialized.
 */
TEST(SameValueElision, RedundantStoreIsCountedAndStillConsistent)
{
    auto program = [](PmRuntime &rt) {
        // Persisted before the RoI so no failure point can observe
        // the slot with its very first write still in flight.
        rt.store(*rt.pool().at<int>(0), 5);
        rt.persistBarrier(rt.pool().at<int>(0), 4);
        rt.roiBegin();
        rt.store(*rt.pool().at<int>(0), 5); // same bytes: elided
        rt.persistBarrier(rt.pool().at<int>(0), 4);
        rt.store(*rt.pool().at<int>(64), 7);
        rt.persistBarrier(rt.pool().at<int>(64), 4);
        rt.roiEnd();
    };
    // Recovery reads nothing the RoI wrote: any such read would be a
    // legitimate race at the failure point before its barrier, in the
    // elided and non-elided runs alike.
    auto recovery = [](PmRuntime &rt) { (void)rt; };

    CampaignResult plain = xfdtest::runCampaign(program, recovery);
    xfdtest::RunOptions opt;
    opt.detector.elideSameValueWrites = true;
    CampaignResult res = xfdtest::runCampaign(program, recovery, opt);

    EXPECT_EQ(res.fingerprint(), plain.fingerprint());
    EXPECT_TRUE(xfdtest::hasNoFindings(res)) << res.summary();
    EXPECT_GE(res.statistics().sameValueElided, 1u);
    EXPECT_EQ(plain.statistics().sameValueElided, 0u);
}

} // namespace
