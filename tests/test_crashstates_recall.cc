/**
 * @file
 * Recall tier for --crash-states: the ring-log bug-suite entries are
 * constructed so their defects live only on *partial* crash images
 * (paired stores inside one fence epoch — the all-updates anchor
 * image never tears them). sample:<n> and exhaustive must find them,
 * anchor mode must not, and every clean workload must stay
 * finding-free with exploration enabled under both persistency
 * models.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bugsuite/registry.hh"
#include "harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using xfdtest::RunOptions;

std::vector<bugsuite::BugCase>
ringlogCases()
{
    std::vector<bugsuite::BugCase> cases =
        bugsuite::bugCasesFor("ringlog");
    EXPECT_GE(cases.size(), 2u);
    return cases;
}

TEST(CrashStatesRecall, AnchorModeMissesPartialImageBugs)
{
    for (const auto &c : ringlogCases()) {
        SCOPED_TRACE(c.id);
        EXPECT_EQ(c.crashStates, "sample:64");
        core::DetectorConfig cfg;
        cfg.crashStates = "anchor"; // pin anchor: no overlay
        core::CampaignResult res = bugsuite::runBugCase(c, cfg);
        EXPECT_FALSE(bugsuite::detected(c, res)) << res.summary();
        EXPECT_TRUE(xfdtest::hasNoFindings(res));
    }
}

TEST(CrashStatesRecall, SampledExplorationFindsPartialImageBugs)
{
    for (const auto &c : ringlogCases()) {
        SCOPED_TRACE(c.id);
        // Default config: runBugCase applies the case's own
        // crash-states tier (sample:64).
        core::CampaignResult res = bugsuite::runBugCase(c);
        EXPECT_TRUE(bugsuite::detected(c, res)) << res.summary();
        // The finding's provenance is a partial image: a proper
        // subset of the frontier persisted.
        EXPECT_GT(res.partialImageFindings(), 0u) << res.summary();
        EXPECT_GT(res.stats.crashStatesExplored, 0u);
    }
}

TEST(CrashStatesRecall, ExhaustiveExplorationFindsPartialImageBugs)
{
    for (const auto &c : ringlogCases()) {
        SCOPED_TRACE(c.id);
        core::DetectorConfig cfg;
        cfg.crashStates = "exhaustive";
        core::CampaignResult res = bugsuite::runBugCase(c, cfg);
        EXPECT_TRUE(bugsuite::detected(c, res)) << res.summary();
        EXPECT_GT(res.partialImageFindings(), 0u) << res.summary();
    }
}

TEST(CrashStatesRecall, CleanWorkloadsStayCleanUnderExploration)
{
    for (const std::string &name : workloads::workloadNames()) {
        for (const char *model : {"clwb", "eadr"}) {
            SCOPED_TRACE(name + "/" + model);
            workloads::WorkloadConfig wcfg;
            wcfg.initOps = 2;
            wcfg.testOps = 8;
            wcfg.postOps = 3;
            if (name == "memcached")
                wcfg.memcachedCapacity = 8;
            RunOptions opt;
            opt.detector.crashStates = "sample:16";
            opt.detector.pmModel = model;
            core::CampaignResult res =
                xfdtest::runWorkload(name, wcfg, opt);
            EXPECT_TRUE(xfdtest::hasNoFindings(res));
        }
    }
}

} // namespace
