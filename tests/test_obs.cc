/**
 * @file
 * Observability layer tests: JSON writer round-trips, stats registry
 * golden output, Chrome-trace/JSONL export structure, progress
 * formatting, and end-to-end campaign export — including that serial
 * and parallel campaigns export identical findings and stats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "core/campaign_json.hh"
#include "core/config_flags.hh"
#include "core/driver.hh"
#include "core/observer.hh"
#include "harness.hh"
#include "mutate/campaign.hh"
#include "obs/json.hh"
#include "obs/progress.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "testutil_json.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using xfdtest::Json;
using xfdtest::parseJson;

TEST(JsonWriter, EscapesAndNestingRoundTrip)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("plain", "hello");
    w.field("quoted", "a \"b\"\\\n\tc");
    w.field("int", static_cast<std::int64_t>(-3));
    w.field("big", std::uint64_t{1} << 53);
    w.field("pi", 3.25);
    w.field("flag", true);
    w.key("null").null();
    w.key("list").beginArray().value(1).value(2).endArray();
    w.key("nested").beginObject().field("x", 1).endObject();
    w.endObject();

    Json doc = parseJson(os.str());
    EXPECT_EQ(doc.at("plain").str, "hello");
    EXPECT_EQ(doc.at("quoted").str, "a \"b\"\\\n\tc");
    EXPECT_EQ(doc.at("int").num, -3);
    EXPECT_EQ(doc.at("big").num,
              static_cast<double>(std::uint64_t{1} << 53));
    EXPECT_EQ(doc.at("pi").num, 3.25);
    EXPECT_TRUE(doc.at("flag").b);
    EXPECT_EQ(doc.at("null").kind, Json::Null);
    ASSERT_EQ(doc.at("list").arr.size(), 2u);
    EXPECT_EQ(doc.at("nested").at("x").num, 1);
}

TEST(JsonWriter, DoubleFormattingRoundTrips)
{
    for (double v : {0.1, 1.0 / 3.0, 1e-9, 6.02e23, -0.0, 12345.6789}) {
        std::ostringstream os;
        obs::JsonWriter w(os);
        w.value(v);
        EXPECT_EQ(std::strtod(os.str().c_str(), nullptr), v)
            << os.str();
    }
}

TEST(StatsRegistry, GoldenScalarAndFormulaJson)
{
    obs::StatsRegistry reg;
    obs::Scalar &n = reg.scalar("a.count", "things counted");
    n += 2;
    ++n;
    obs::Scalar &d = reg.scalar("a.total", "things overall");
    d.set(6);
    reg.formula("a.ratio", "counted fraction",
                [&n, &d] { return n.value() / d.value(); });

    std::ostringstream os;
    obs::JsonWriter w(os);
    reg.writeJson(w);
    EXPECT_EQ(os.str(),
              "{\"a.count\":{\"type\":\"scalar\","
              "\"desc\":\"things counted\",\"value\":3},"
              "\"a.total\":{\"type\":\"scalar\","
              "\"desc\":\"things overall\",\"value\":6},"
              "\"a.ratio\":{\"type\":\"formula\","
              "\"desc\":\"counted fraction\",\"value\":0.5}}");
}

TEST(StatsRegistry, ReRegistrationReturnsExisting)
{
    obs::StatsRegistry reg;
    obs::Scalar &a = reg.scalar("x", "first");
    a.set(7);
    obs::Scalar &b = reg.scalar("x", "second registration ignored");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_EQ(reg.value("x"), 7);
    EXPECT_EQ(reg.value("missing"), 0);
    EXPECT_NE(reg.find("x"), nullptr);
    EXPECT_EQ(reg.find("missing"), nullptr);
}

TEST(StatsRegistry, HistogramPowerOfTwoBuckets)
{
    obs::StatsRegistry reg;
    obs::Histogram &h = reg.histogram("lat", "latency");
    for (double v : {0.0, 1.0, 2.0, 3.0, 4.0, 1024.0})
        h.sample(v);

    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.bucketCount(0), 2u);  // [0, 2)
    EXPECT_EQ(h.bucketCount(1), 2u);  // [2, 4)
    EXPECT_EQ(h.bucketCount(2), 1u);  // [4, 8)
    EXPECT_EQ(h.bucketCount(10), 1u); // [1024, 2048)

    std::ostringstream os;
    obs::JsonWriter w(os);
    reg.writeJson(w);
    Json doc = parseJson(os.str());
    const Json &hist = doc.at("lat");
    EXPECT_EQ(hist.at("type").str, "histogram");
    EXPECT_EQ(hist.at("count").num, 6);
    EXPECT_EQ(hist.at("min").num, 0);
    EXPECT_EQ(hist.at("max").num, 1024);
    // Trailing zero buckets elided: bucket 10 is the last non-zero.
    EXPECT_EQ(hist.at("buckets").arr.size(), 11u);
}

TEST(StatsRegistry, DistributionBucketsAndOverflow)
{
    obs::StatsRegistry reg;
    obs::Distribution &d =
        reg.distribution("d", "samples", 0, 10, 5);
    d.sample(-1); // underflow
    d.sample(0);  // bucket 0
    d.sample(5);  // bucket 2
    d.sample(9.9);
    d.sample(10); // overflow
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(2), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
}

TEST(Timeline, ChromeTraceStructure)
{
    obs::Timeline tl;
    int worker = tl.registerTrack("worker-1");
    tl.recordSpan("pre-failure", "phase", 0, 10, 100);
    tl.recordSpan("fp#3", "fp", worker, 120, 40);
    tl.recordInstant("bug", "fp", worker, 150);

    std::ostringstream os;
    tl.writeChromeTrace(os);
    Json doc = parseJson(os.str());
    EXPECT_EQ(doc.at("displayTimeUnit").str, "ms");
    const auto &evs = doc.at("traceEvents").arr;
    // 2 thread_name metadata events + 3 recorded events.
    ASSERT_EQ(evs.size(), 5u);

    EXPECT_EQ(evs[0].at("ph").str, "M");
    EXPECT_EQ(evs[0].at("name").str, "thread_name");
    EXPECT_EQ(evs[0].at("args").at("name").str, "main");
    EXPECT_EQ(evs[1].at("args").at("name").str, "worker-1");

    const Json &span = evs[2];
    EXPECT_EQ(span.at("ph").str, "X");
    EXPECT_EQ(span.at("name").str, "pre-failure");
    EXPECT_EQ(span.at("cat").str, "phase");
    EXPECT_EQ(span.at("pid").num, 1);
    EXPECT_EQ(span.at("tid").num, 0);
    EXPECT_EQ(span.at("ts").num, 10);
    EXPECT_EQ(span.at("dur").num, 100);

    const Json &instant = evs[4];
    EXPECT_EQ(instant.at("ph").str, "i");
    EXPECT_EQ(instant.at("s").str, "t");
    EXPECT_EQ(instant.find("dur"), nullptr);

    // Non-metadata events come out sorted by timestamp.
    double prev = -1;
    for (std::size_t i = 2; i < evs.size(); i++) {
        EXPECT_GE(evs[i].at("ts").num, prev);
        prev = evs[i].at("ts").num;
    }
}

TEST(Timeline, JsonlOneObjectPerLine)
{
    obs::Timeline tl;
    tl.recordSpan("a", "phase", 0, 5, 10);
    tl.recordInstant("b", "phase", 0, 20);

    std::ostringstream os;
    tl.writeJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        Json doc = parseJson(line);
        EXPECT_EQ(doc.at("cat").str, "phase");
        lines++;
    }
    EXPECT_EQ(lines, 2u);
}

TEST(Timeline, DisabledTimelineRecordsNothing)
{
    obs::Timeline tl;
    tl.setEnabled(false);
    {
        obs::SpanScope span(&tl, "ignored", "phase", 0);
    }
    tl.recordInstant("also ignored", "phase", 0, 1);
    EXPECT_EQ(tl.size(), 0u);

    // Null timeline is equally fine.
    obs::SpanScope span(nullptr, "x", "phase", 0);
}

TEST(Progress, FormatGolden)
{
    EXPECT_EQ(obs::formatProgress("fp", 37, 214, 12, 4.1),
              "[fp 37/214, 12 bugs, ETA 4.1s]");
    EXPECT_EQ(obs::formatProgress("fp", 214, 214, 0, 0),
              "[fp 214/214, 0 bugs, ETA 0.0s]");
}

TEST(Progress, MeterRateLimitsAndAlwaysPrintsFinal)
{
    setVerbose(true);
    obs::ProgressMeter meter("fp", /*min_interval=*/3600);
    meter.update(1, 100, 0);
    meter.update(2, 100, 0);  // inside the interval: suppressed
    meter.update(3, 100, 0);  // suppressed
    EXPECT_EQ(meter.linesPrinted(), 1u);
    meter.update(100, 100, 1); // final: always prints
    EXPECT_EQ(meter.linesPrinted(), 2u);

    obs::ProgressMeter quiet("fp", 0);
    setVerbose(false);
    quiet.update(1, 2, 0);
    EXPECT_EQ(quiet.linesPrinted(), 0u);
    setVerbose(true);
}

core::CampaignResult
runObserved(const std::string &workload, unsigned threads,
            core::CampaignObserver &obs)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 5;
    cfg.postOps = 2;
    xfdtest::RunOptions opt;
    opt.threads = threads;
    opt.observer = &obs;
    return xfdtest::runWorkload(workload, cfg, opt);
}

TEST(CampaignExport, StatsRegistryMatchesCampaignStats)
{
    if (!obs::statsCompiledIn)
        GTEST_SKIP() << "stats compiled out (XFD_STATS_NOOP)";
    core::CampaignObserver obs;
    auto res = runObserved("btree", 1, obs);

    const obs::StatsRegistry &reg = obs.stats;
    EXPECT_EQ(reg.value("campaign.failure_points"),
              static_cast<double>(res.stats.failurePoints));
    EXPECT_EQ(reg.value("campaign.post_executions"),
              static_cast<double>(res.stats.postExecutions));
    EXPECT_EQ(reg.value("campaign.checks_performed"),
              static_cast<double>(res.stats.checksPerformed));
    EXPECT_EQ(reg.value("campaign.checks_skipped"),
              static_cast<double>(res.stats.checksSkipped));
    EXPECT_EQ(reg.value("campaign.pre_seconds"), res.stats.preSeconds);
    EXPECT_EQ(reg.value("campaign.total_seconds"),
              res.stats.totalSeconds());

    // Shadow-FSM edges: a btree campaign writes, flushes and fences.
    EXPECT_GT(reg.value("shadow_fsm.edge.Modified_to_WritebackPending"),
              0);
    EXPECT_GT(reg.value("shadow_fsm.edge.WritebackPending_to_Persisted"),
              0);
    EXPECT_GT(reg.value("shadow_fsm.fences"), 0);

    // Per-op trace volumes cover the whole pre-trace.
    EXPECT_GT(reg.value("trace.pre.WRITE"), 0);
    EXPECT_GT(reg.value("trace.post.READ"), 0);

    // One latency sample per post-failure execution.
    const auto *h = dynamic_cast<const obs::Histogram *>(
        reg.find("campaign.post_exec_latency_us"));
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), res.stats.postExecutions);
}

TEST(CampaignExport, StatsJsonDocumentIsValid)
{
    core::CampaignObserver obs;
    auto res = runObserved("btree", 1, obs);

    std::ostringstream os;
    core::writeStatsJson(res, &obs.stats, os);
    Json doc = parseJson(os.str());
    EXPECT_EQ(doc.at("schema").str, "xfd-stats-v1");
    const Json &camp = doc.at("campaign");
    EXPECT_EQ(camp.at("failure_points").num,
              static_cast<double>(res.stats.failurePoints));
    EXPECT_EQ(camp.at("checks_performed").num,
              static_cast<double>(res.stats.checksPerformed));
    EXPECT_EQ(camp.at("pre_seconds").num, res.stats.preSeconds);
    EXPECT_EQ(camp.at("post_seconds").num, res.stats.postSeconds);
    EXPECT_EQ(camp.at("backend_seconds").num,
              res.stats.backendSeconds);
    EXPECT_EQ(doc.at("bugs").at("total").num,
              static_cast<double>(res.bugs.size()));
    const Json &restore = doc.at("restore");
    EXPECT_EQ(restore.at("pool_bytes").num,
              static_cast<double>(res.stats.poolBytes));
    EXPECT_EQ(restore.at("bytes_copied").num,
              static_cast<double>(res.stats.restore.bytesCopied()));
    if (obs::statsCompiledIn) {
        EXPECT_NE(doc.at("stats").find("campaign.post_exec_latency_us"),
                  nullptr);
    }
}

TEST(CampaignExport, StatsJsonEchoesEveryConfigFlag)
{
    core::CampaignObserver obs;
    auto res = runObserved("btree", 1, obs);

    core::DetectorConfig dcfg;
    dcfg.crashImageMode = true;
    dcfg.deltaPageSize = 256;
    std::ostringstream os;
    core::writeStatsJson(res, &dcfg, &obs.stats, os);
    Json doc = parseJson(os.str());

    const Json &conf = doc.at("config");
    for (const auto &d : core::detectorFlagTable()) {
        // Deprecated alias rows write through a canonical field and
        // are deliberately absent from the echo.
        if (d.alias)
            continue;
        EXPECT_NE(conf.find(d.jsonKey), nullptr) << d.jsonKey;
    }
    EXPECT_TRUE(conf.at("crash_image_mode").b);
    EXPECT_EQ(conf.at("backend").str, "delta");
    EXPECT_EQ(conf.at("delta_page_size").num, 256);
    EXPECT_EQ(conf.at("granularity").num, 1);

    // The three-argument overload omits the echo.
    std::ostringstream os2;
    core::writeStatsJson(res, &obs.stats, os2);
    EXPECT_EQ(parseJson(os2.str()).find("config"), nullptr);
}

TEST(ConfigFlags, TableRowsAreWellFormedAndUnique)
{
    std::set<std::string> flags, keys;
    for (const auto &d : core::detectorFlagTable()) {
        EXPECT_TRUE(flags.insert(d.flag).second) << d.flag;
        if (d.alias) {
            // Alias rows have no JSON identity of their own.
            EXPECT_EQ(d.jsonKey, std::string()) << d.flag;
            EXPECT_NE(d.stringField, nullptr) << d.flag;
        } else {
            EXPECT_TRUE(keys.insert(d.jsonKey).second) << d.jsonKey;
        }
        int typed = (d.boolField != nullptr) +
                    (d.uintField != nullptr) + (d.sizeField != nullptr) +
                    (d.stringField != nullptr);
        EXPECT_EQ(typed, 1) << d.flag;
        // Switches and flags with an implied value consume no
        // separate argv slot; everything else requires one.
        EXPECT_EQ(d.takesValue(),
                  d.boolField == nullptr && d.impliedValue == nullptr)
            << d.flag;
        if (d.impliedValue) {
            EXPECT_NE(d.stringField, nullptr) << d.flag;
        }
        EXPECT_NE(core::findDetectorFlag(d.flag), nullptr) << d.flag;
    }
    EXPECT_EQ(core::findDetectorFlag("--not-a-flag"), nullptr);
    EXPECT_FALSE(core::detectorFlagHelp().empty());
}

TEST(ConfigFlags, ApplySetsTheMappedField)
{
    core::DetectorConfig cfg;
    core::applyDetectorFlag(*core::findDetectorFlag("--no-delta"), cfg,
                            nullptr);
    EXPECT_EQ(cfg.backend, "full");
    core::applyDetectorFlag(*core::findDetectorFlag("--backend"), cfg,
                            "batched");
    EXPECT_TRUE(cfg.batchingOn());
    core::applyDetectorFlag(*core::findDetectorFlag("--delta-page"),
                            cfg, "256");
    EXPECT_EQ(cfg.deltaPageSize, 256u);
    core::applyDetectorFlag(
        *core::findDetectorFlag("--delta-checkpoint"), cfg, "7");
    EXPECT_EQ(cfg.deltaCheckpointInterval, 7u);
    core::applyDetectorFlag(*core::findDetectorFlag("--granularity"),
                            cfg, "4");
    EXPECT_EQ(cfg.granularity, 4u);
    core::applyDetectorFlag(*core::findDetectorFlag("--strict-persist"),
                            cfg, nullptr);
    EXPECT_TRUE(cfg.strictPersistCheck);

    // --mutate is a string flag with an implied value: bare use means
    // "all", an attached value is passed through.
    const auto *mut = core::findDetectorFlag("--mutate");
    ASSERT_NE(mut, nullptr);
    EXPECT_FALSE(mut->takesValue());
    core::applyDetectorFlag(*mut, cfg, nullptr);
    EXPECT_EQ(cfg.mutateOps, "all");
    core::applyDetectorFlag(*mut, cfg, "quick");
    EXPECT_EQ(cfg.mutateOps, "quick");
    core::applyDetectorFlag(*core::findDetectorFlag("--mutation-seed"),
                            cfg, "9");
    EXPECT_EQ(cfg.mutationSeed, 9u);

    // Untouched fields keep their defaults.
    EXPECT_TRUE(cfg.elideEmptyFailurePoints);
    EXPECT_EQ(cfg.maxFailurePoints, 0u);
}

TEST(MutationExport, JsonObjectGolden)
{
    // A hand-built report exercises the exporter deterministically —
    // no campaign needed, and zero-mutant operators must be omitted.
    mutate::MutationReport rep;
    rep.seed = 7;
    rep.enumerated = 5;
    rep.baselineFindings = 1;
    auto &df = rep.perOp[static_cast<std::size_t>(
        mutate::MutationOp::DropFlush)];
    df.mutants = 4;
    df.detected = 3;
    df.truePositives = 3;
    df.falsePositives = 1;
    rep.aggregate = df;
    rep.aggregate.falsePositives += rep.baselineFindings;

    std::ostringstream os;
    obs::JsonWriter w(os);
    rep.writeJson(w);
    Json doc = parseJson(os.str());

    EXPECT_EQ(doc.at("seed").num, 7);
    EXPECT_EQ(doc.at("enumerated").num, 5);
    EXPECT_EQ(doc.at("mutants").num, 4);
    EXPECT_EQ(doc.at("baseline_findings").num, 1);

    const Json &per = doc.at("per_operator");
    ASSERT_EQ(per.obj.size(), 1u); // only drop_flush has mutants
    const Json &dfj = per.at("drop_flush");
    EXPECT_EQ(dfj.at("mutants").num, 4);
    EXPECT_EQ(dfj.at("detected").num, 3);
    EXPECT_EQ(dfj.at("true_positives").num, 3);
    EXPECT_EQ(dfj.at("false_positives").num, 1);
    EXPECT_DOUBLE_EQ(dfj.at("recall").num, 0.75);
    EXPECT_DOUBLE_EQ(dfj.at("precision").num, 0.75);

    const Json &agg = doc.at("aggregate");
    EXPECT_EQ(agg.at("false_positives").num, 2);
    EXPECT_DOUBLE_EQ(agg.at("precision").num, 0.6);
}

TEST(MutationExport, StatsRegistryMirrorsReport)
{
    mutate::MutationReport rep;
    rep.enumerated = 3;
    rep.aggregate.mutants = 3;
    rep.aggregate.detected = 2;
    rep.aggregate.truePositives = 2;
    rep.aggregate.falsePositives = 1;

    obs::StatsRegistry reg;
    mutate::exportMutationStats(rep, reg);
    EXPECT_EQ(reg.value("campaign.mutation.mutants"), 3);
    EXPECT_EQ(reg.value("campaign.mutation.detected"), 2);
    EXPECT_DOUBLE_EQ(reg.value("campaign.mutation.recall"), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(reg.value("campaign.mutation.precision"),
                     2.0 / 3.0);
}

TEST(MutationExport, ScoreboardTextGolden)
{
    // Same hand-built report style as JsonObjectGolden, but freezing
    // the human-readable table: column layout, per-operator rows,
    // aggregate row, baseline line and MISSED listing.
    mutate::MutationReport rep;
    auto &df = rep.perOp[static_cast<std::size_t>(
        mutate::MutationOp::DropFlush)];
    df.mutants = 4;
    df.detected = 3;
    df.truePositives = 3;
    df.falsePositives = 1;
    auto &dn = rep.perOp[static_cast<std::size_t>(
        mutate::MutationOp::DropFence)];
    dn.mutants = 2;
    dn.detected = 2;
    dn.truePositives = 2;
    dn.falsePositives = 0;
    rep.baselineFindings = 1;
    rep.aggregate.mutants = 6;
    rep.aggregate.detected = 5;
    rep.aggregate.truePositives = 5;
    rep.aggregate.falsePositives = 2;

    mutate::MutantOutcome missed;
    missed.mutant.op = mutate::MutationOp::DropFlush;
    missed.mutant.occurrence = 3;
    missed.mutant.site = trace::SrcLoc{"btree.cc", 42, "insert"};
    missed.detected = false;
    rep.outcomes.push_back(missed);

    const std::string expected =
        "=== mutation scoreboard: 6 mutant(s), 5 detected ===\n"
        "operator             mutants detected  recall    TP    FP "
        "precision     F1\n"
        "drop_flush                 4        3   0.750     3     1 "
        "    0.750  0.750\n"
        "drop_fence                 2        2   1.000     2     0 "
        "    1.000  1.000\n"
        "aggregate                  6        5   0.833     5     2 "
        "    0.714  0.769\n"
        "baseline findings (counted as false positives): 1\n"
        "  MISSED  drop_flush #3 @ btree.cc:42\n";
    EXPECT_EQ(rep.scoreboard(), expected);
}

TEST(CampaignExport, SerialAndParallelExportIdentically)
{
    core::CampaignObserver serial_obs, par_obs;
    auto serial = runObserved("hashmap_tx", 1, serial_obs);
    auto par = runObserved("hashmap_tx", 4, par_obs);

    // Byte-identical findings documents.
    std::ostringstream serial_report, par_report;
    core::writeReportJson(serial, serial_report);
    core::writeReportJson(par, par_report);
    EXPECT_EQ(serial_report.str(), par_report.str());

    // Identical check accounting and FSM counters.
    EXPECT_EQ(serial.stats.checksPerformed, par.stats.checksPerformed);
    EXPECT_EQ(serial.stats.checksSkipped, par.stats.checksSkipped);
    for (const char *key :
         {"shadow_fsm.edge.Unmodified_to_Modified",
          "shadow_fsm.edge.Modified_to_WritebackPending",
          "shadow_fsm.edge.WritebackPending_to_Persisted",
          "shadow_fsm.fences", "campaign.checks_performed",
          "campaign.checks_skipped", "campaign.post_executions",
          "trace.pre.WRITE", "trace.post.READ"}) {
        EXPECT_EQ(serial_obs.stats.value(key), par_obs.stats.value(key))
            << key;
    }
}

TEST(CampaignExport, ParallelWorkersGetDistinctTimelineTracks)
{
    core::CampaignObserver obs;
    auto res = runObserved("btree", 4, obs);
    ASSERT_EQ(res.stats.threads, 4u);

    std::ostringstream os;
    obs.timeline.writeChromeTrace(os);
    Json doc = parseJson(os.str());

    std::set<double> fp_tids;
    std::set<std::string> labels;
    for (const Json &e : doc.at("traceEvents").arr) {
        if (e.at("ph").str == "M")
            labels.insert(e.at("args").at("name").str);
        else if (e.at("cat").str == "fp")
            fp_tids.insert(e.at("tid").num);
    }
    EXPECT_GE(fp_tids.size(), 2u);
    EXPECT_TRUE(labels.count("main"));
    EXPECT_TRUE(labels.count("worker-0"));
    EXPECT_TRUE(labels.count("worker-3"));
}

TEST(CampaignExport, ProgressCallbackCoversEveryFailurePoint)
{
    core::CampaignObserver obs;
    std::size_t calls = 0;
    std::size_t last_done = 0, last_total = 0;
    obs.onProgress = [&](std::size_t done, std::size_t total,
                         std::size_t) {
        calls++;
        last_done = std::max(last_done, done);
        last_total = total;
    };
    auto res = runObserved("btree", 2, obs);
    // One tick per executed failure point, plus the zero anchor tick
    // the driver fires before the loop starts.
    EXPECT_EQ(calls, res.stats.failurePoints + 1);
    EXPECT_EQ(last_done, res.stats.failurePoints);
    EXPECT_EQ(last_total, res.stats.failurePoints);
}

TEST(CampaignExport, NoStatsWhenCollectionDisabled)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 2;
    cfg.testOps = 2;
    auto w = workloads::makeWorkload("btree", cfg);
    pm::PmPool pool(1 << 22);
    core::DetectorConfig dcfg;
    dcfg.collectStats = false;
    core::Driver driver(pool, dcfg);
    core::CampaignObserver obs;
    driver.setObserver(&obs);
    auto res = driver.run([&](trace::PmRuntime &rt) { w->pre(rt); },
                          [&](trace::PmRuntime &rt) { w->post(rt); });
    EXPECT_GT(res.stats.postExecutions, 0u);
    EXPECT_TRUE(obs.stats.empty());

    // The stats document still works without a registry.
    std::ostringstream os;
    core::writeStatsJson(res, nullptr, os);
    Json doc = parseJson(os.str());
    EXPECT_EQ(doc.find("stats"), nullptr);
    EXPECT_EQ(doc.at("schema").str, "xfd-stats-v1");
}

} // namespace
