/**
 * @file
 * Trace serialization tests: byte-exact round trips, string
 * interning, malformed-stream rejection, and a decoupled-backend
 * round trip (serialize a workload's pre-failure trace, reload it,
 * and plan identical failure points from the copy).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/failure_planner.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"
#include "trace/serialize.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using trace::LoadedTrace;
using trace::Op;
using trace::PmRuntime;
using trace::readTrace;
using trace::Stage;
using trace::TraceBuffer;
using trace::writeTrace;

TraceBuffer
sampleTrace(pm::PmPool &pool)
{
    TraceBuffer buf;
    PmRuntime rt(pool, buf, Stage::PreFailure);
    auto *v = pool.at<std::uint64_t>(0);
    rt.roiBegin();
    rt.store(*v, std::uint64_t{0xf00d});
    rt.addCommitVar(*pool.at<std::uint8_t>(64));
    rt.addCommitRange(*pool.at<std::uint8_t>(64), v, 8);
    {
        trace::LibScope lib(rt, "libfn");
        rt.persistBarrier(v, 8);
    }
    rt.ntstore(*pool.at<std::uint32_t>(128), std::uint32_t{7});
    rt.sfence();
    rt.roiEnd();
    return buf;
}

TEST(TraceSerialize, RoundTripPreservesEverything)
{
    pm::PmPool pool(1 << 20);
    TraceBuffer buf = sampleTrace(pool);

    std::stringstream ss;
    writeTrace(buf, ss);
    LoadedTrace loaded = readTrace(ss);
    const TraceBuffer &copy = loaded.buffer();

    ASSERT_EQ(copy.size(), buf.size());
    for (std::size_t i = 0; i < buf.size(); i++) {
        SCOPED_TRACE(i);
        EXPECT_EQ(copy[i].op, buf[i].op);
        EXPECT_EQ(copy[i].flags, buf[i].flags);
        EXPECT_EQ(copy[i].addr, buf[i].addr);
        EXPECT_EQ(copy[i].aux, buf[i].aux);
        EXPECT_EQ(copy[i].size, buf[i].size);
        EXPECT_EQ(copy[i].seq, buf[i].seq);
        EXPECT_EQ(copy[i].loc.line, buf[i].loc.line);
        EXPECT_STREQ(copy[i].loc.file, buf[i].loc.file);
        EXPECT_STREQ(copy[i].label, buf[i].label);
        EXPECT_EQ(copy[i].data, buf[i].data);
    }
    EXPECT_EQ(copy.payloadBytes(), buf.payloadBytes());
}

TEST(TraceSerialize, EmptyTraceRoundTrips)
{
    TraceBuffer buf;
    std::stringstream ss;
    writeTrace(buf, ss);
    EXPECT_EQ(readTrace(ss).buffer().size(), 0u);
}

TEST(TraceSerialize, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "not a trace at all";
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceSerialize, RejectsTruncatedStream)
{
    pm::PmPool pool(1 << 20);
    TraceBuffer buf = sampleTrace(pool);
    std::stringstream ss;
    writeTrace(buf, ss);
    std::string bytes = ss.str();
    std::stringstream cut(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(readTrace(cut), std::runtime_error);
}

TEST(TraceSerialize, DecoupledBackendPlansIdenticalFailurePoints)
{
    // Capture a real workload trace, ship it through the wire format,
    // and verify the planner sees the same ordering points — the
    // paper's frontend/backend decoupling, made concrete.
    workloads::WorkloadConfig cfg;
    cfg.initOps = 4;
    cfg.testOps = 4;
    auto w = workloads::makeWorkload("hashmap_tx", cfg);
    pm::PmPool pool(1 << 22);
    TraceBuffer buf;
    {
        PmRuntime rt(pool, buf, Stage::PreFailure);
        w->pre(rt);
    }

    std::stringstream ss;
    writeTrace(buf, ss);
    LoadedTrace loaded = readTrace(ss);

    core::DetectorConfig dcfg;
    auto plan_live = core::planFailurePoints(buf, dcfg);
    auto plan_wire = core::planFailurePoints(loaded.buffer(), dcfg);
    EXPECT_EQ(plan_live.points, plan_wire.points);
    EXPECT_EQ(plan_live.candidates, plan_wire.candidates);
}

TEST(TraceSerialize, StringInterningSharesRepeatedLocations)
{
    pm::PmPool pool(1 << 20);
    TraceBuffer buf;
    PmRuntime rt(pool, buf, Stage::PreFailure);
    auto *v = pool.at<std::uint64_t>(0);
    for (int i = 0; i < 100; i++)
        rt.store(*v, static_cast<std::uint64_t>(i));
    std::stringstream ss;
    writeTrace(buf, ss);
    // 100 entries sharing one file/func; the stream must stay small
    // relative to repeating the strings per entry.
    EXPECT_LT(ss.str().size(),
              buf.size() * 64 + 4096); // ~fixed record + one string set
}

} // namespace
