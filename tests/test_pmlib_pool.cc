/**
 * @file
 * Object-pool lifecycle tests: create/validate/open/openOrCreate, root
 * object guarantees, and the §6.3.2 bug-4 campaign — a failure during
 * pool creation leaves metadata that open() rejects.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "pmlib/objpool.hh"

namespace
{

using namespace xfd;
using core::BugType;
using pmlib::ObjPool;
using trace::PmRuntime;
using trace::Stage;

struct PoolTest : ::testing::Test
{
    PoolTest() : pool(1 << 21), rt(pool, buf, Stage::PreFailure) {}

    pm::PmPool pool;
    trace::TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(PoolTest, CreateProducesValidPool)
{
    ObjPool::create(rt, "layout1", 128);
    EXPECT_TRUE(ObjPool::valid(rt, "layout1"));
    EXPECT_FALSE(ObjPool::valid(rt, "otherlayout"));
}

TEST_F(PoolTest, FreshPoolIsInvalid)
{
    EXPECT_FALSE(ObjPool::valid(rt, "layout1"));
}

TEST_F(PoolTest, RootIsZeroed)
{
    ObjPool op = ObjPool::create(rt, "layout1", 256);
    auto *r = op.root<std::uint8_t>();
    for (int i = 0; i < 256; i++)
        EXPECT_EQ(r[i], 0u);
    EXPECT_EQ(op.rootSize(), 256u);
}

TEST_F(PoolTest, OpenAfterCreateWorks)
{
    ObjPool::create(rt, "layout1", 64);
    ObjPool op = ObjPool::open(rt, "layout1");
    EXPECT_EQ(op.baseAddr(), pool.base());
}

TEST_F(PoolTest, CorruptedChecksumInvalidates)
{
    ObjPool::create(rt, "layout1", 64);
    auto *h = pool.at<pmlib::PoolHeader>(0);
    h->rootSize ^= 1; // corrupt a field under the checksum
    EXPECT_FALSE(ObjPool::valid(rt, "layout1"));
}

TEST_F(PoolTest, OpenOrCreateFormatsFreshPool)
{
    ObjPool op = ObjPool::openOrCreate(rt, "layout1", 64);
    EXPECT_TRUE(ObjPool::valid(rt, "layout1"));
    (void)op;
}

TEST_F(PoolTest, OpenOrCreateKeepsExistingData)
{
    ObjPool op = ObjPool::create(rt, "layout1", 64);
    auto *r = op.root<std::uint64_t>();
    rt.store(*r, std::uint64_t{99});
    rt.persistBarrier(r, 8);
    ObjPool again = ObjPool::openOrCreate(rt, "layout1", 64);
    EXPECT_EQ(*again.root<std::uint64_t>(), 99u);
}

TEST_F(PoolTest, PostFailureOpenOfInvalidPoolAborts)
{
    trace::TraceBuffer buf2;
    PmRuntime post_rt(pool, buf2, Stage::PostFailure);
    EXPECT_THROW(ObjPool::open(post_rt, "layout1"),
                 trace::PostFailureAbort);
}

// ------------------------------------------------------------------
// §6.3.2 bug 4: failure during pool creation.
// ------------------------------------------------------------------

core::CampaignResult
runCreateCampaign(bool fixed_recovery)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    return driver.run(
        [&](PmRuntime &rt) {
            // Pool creation itself is the region under test.
            trace::RoiScope roi(rt);
            ObjPool::create(rt, "bug4", 64);
        },
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            if (fixed_recovery) {
                ObjPool::openOrCreate(rt, "bug4", 64);
            } else {
                ObjPool::open(rt, "bug4"); // PMDK behaviour: fails
            }
        });
}

TEST(PoolCreateBug, AsShippedRecoveryCannotOpenHalfCreatedPool)
{
    auto res = runCreateCampaign(false);
    EXPECT_GE(res.count(BugType::RecoveryFailure), 1u) << res.summary();
    bool mentions_metadata = false;
    for (const auto &b : res.bugs) {
        if (b.note.find("incomplete pool metadata") != std::string::npos)
            mentions_metadata = true;
    }
    EXPECT_TRUE(mentions_metadata);
}

TEST(PoolCreateBug, OpenOrCreateRecoveryIsClean)
{
    auto res = runCreateCampaign(true);
    EXPECT_EQ(res.count(BugType::RecoveryFailure), 0u) << res.summary();
}

TEST(PoolCreateBug, LastFailurePointHasCompleteMetadata)
{
    // At the failure point before the final checksum persist the
    // header writes are already in the image; only earlier points see
    // incomplete metadata. So the as-shipped campaign must show both
    // failing and succeeding post-failure executions.
    auto res = runCreateCampaign(false);
    ASSERT_GE(res.stats.failurePoints, 2u);
    std::size_t failures = 0;
    for (const auto &b : res.bugs) {
        if (b.type == BugType::RecoveryFailure)
            failures += b.occurrences;
    }
    EXPECT_LT(failures, res.stats.failurePoints);
    EXPECT_GT(failures, 0u);
}

} // namespace
