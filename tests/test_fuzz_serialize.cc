/**
 * @file
 * Round-trip fuzz for the trace wire formats (trace/serialize):
 * random entry streams covering every Op kind must survive
 * writeTrace/readTrace byte-for-byte in both the v2 (current) and v1
 * (legacy) framings, a v1 stream and a v2 stream of the same trace
 * must replay identically, and every torn tail or corrupted prefix
 * of a valid stream must be rejected with a clean std::runtime_error
 * — never a crash, hang, or silently short trace. Seeded like the
 * other fuzz suites; XFD_FUZZ_SEED replays one case.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "harness.hh"
#include "trace/serialize.hh"

namespace
{

using namespace xfd;
using trace::LoadedTrace;
using trace::Op;
using trace::TraceBuffer;
using trace::TraceEntry;

/**
 * Interned-string candidates. Entry string fields are `const char *`
 * pointing at stable storage, which for a synthetic trace means
 * literals; a small set still exercises the interning table with
 * both sharing and empty strings.
 */
const char *const sampleStrings[] = {
    "", "a", "btree.cc", "recover", "libfn",
    "a/rather/longer/path/to/some/workload_source_file.cc",
};

const char *
pickString(Rng &rng)
{
    return sampleStrings[rng.below(std::size(sampleStrings))];
}

/** One random entry; every Op kind and flag bit is reachable. */
TraceEntry
randomEntry(Rng &rng)
{
    TraceEntry e;
    e.op = static_cast<Op>(rng.below(trace::opCount));
    e.flags = static_cast<std::uint16_t>(rng.below(1u << 5));
    e.addr = defaultPoolBase + rng.below(1 << 20);
    e.aux = defaultPoolBase + rng.below(1 << 20);
    e.size = static_cast<std::uint32_t>(rng.below(256));
    e.loc.file = pickString(rng);
    e.loc.func = pickString(rng);
    e.loc.line = static_cast<unsigned>(rng.below(10000));
    e.label = pickString(rng);
    if (e.isWrite()) {
        e.data.resize(rng.below(64));
        for (auto &b : e.data)
            b = static_cast<std::uint8_t>(rng.next());
    }
    return e;
}

TraceBuffer
randomTrace(std::uint64_t seed, std::size_t entries)
{
    Rng rng(seed);
    TraceBuffer buf;
    for (std::size_t i = 0; i < entries; i++)
        buf.append(randomEntry(rng));
    return buf;
}

void
expectEqualTraces(const TraceBuffer &a, const TraceBuffer &b,
                  std::uint64_t seed)
{
    ASSERT_EQ(a.size(), b.size()) << "XFD_FUZZ_SEED=" << seed;
    for (std::size_t i = 0; i < a.size(); i++) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].flags, b[i].flags);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].aux, b[i].aux);
        EXPECT_EQ(a[i].size, b[i].size);
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].loc.line, b[i].loc.line);
        EXPECT_STREQ(a[i].loc.file, b[i].loc.file);
        EXPECT_STREQ(a[i].loc.func, b[i].loc.func);
        EXPECT_STREQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].data, b[i].data);
    }
    EXPECT_EQ(a.payloadBytes(), b.payloadBytes())
        << "XFD_FUZZ_SEED=" << seed;
}

void
roundTripOne(std::uint64_t seed)
{
    Rng sizes(seed ^ 0x5eedull);
    TraceBuffer buf = randomTrace(seed, 1 + sizes.below(200));

    // Current v2 framing round-trips byte-for-byte...
    std::stringstream v2;
    trace::writeTrace(buf, v2);
    LoadedTrace l2 = trace::readTrace(v2);
    EXPECT_EQ(l2.formatVersion(), trace::traceFormatVersion);
    expectEqualTraces(buf, l2.buffer(), seed);

    // ...and so does the legacy v1 framing through the same reader.
    std::stringstream v1;
    trace::writeTraceV1(buf, v1);
    LoadedTrace l1 = trace::readTrace(v1);
    EXPECT_EQ(l1.formatVersion(), trace::traceFormatVersionV1);
    expectEqualTraces(buf, l1.buffer(), seed);

    // Cross-version replay: both framings decode to the same trace
    // and the same alloc-site inventory (v2 reads it from its table,
    // v1 reconstructs it by scanning).
    expectEqualTraces(l1.buffer(), l2.buffer(), seed);
    ASSERT_EQ(l1.allocSites().size(), l2.allocSites().size())
        << "XFD_FUZZ_SEED=" << seed;
    for (std::size_t i = 0; i < l1.allocSites().size(); i++) {
        EXPECT_STREQ(l1.allocSites()[i].file, l2.allocSites()[i].file);
        EXPECT_EQ(l1.allocSites()[i].line, l2.allocSites()[i].line);
    }
}

TEST(FuzzSerialize, RandomStreamsRoundTrip)
{
    for (std::uint64_t seed = 1; seed <= 50; seed++) {
        SCOPED_TRACE(seed);
        roundTripOne(seed);
    }
}

TEST(FuzzSerialize, TornTailsFailCleanly)
{
    using WriteFn = void (*)(const TraceBuffer &, std::ostream &);
    const WriteFn writers[] = {&trace::writeTrace, &trace::writeTraceV1};
    for (std::uint64_t seed = 1; seed <= 10; seed++) {
        TraceBuffer buf = randomTrace(seed, 40);
        std::stringstream ss;
        writers[seed % 2](buf, ss);
        const std::string bytes = ss.str();

        // Every proper prefix is a torn write of the trace file; the
        // reader must throw rather than return a silently short (or
        // worse, wild) trace. Stride keeps the quadratic scan cheap.
        Rng rng(seed * 77);
        for (std::size_t cut = 0; cut < bytes.size();
             cut += 1 + rng.below(97)) {
            std::stringstream torn(bytes.substr(0, cut));
            EXPECT_THROW(trace::readTrace(torn), std::runtime_error)
                << "cut at " << cut << " of " << bytes.size()
                << ", XFD_FUZZ_SEED=" << seed;
        }
    }
}

TEST(FuzzSerialize, CorruptHeadersAreRejected)
{
    TraceBuffer buf = randomTrace(3, 16);
    std::stringstream ss;
    trace::writeTrace(buf, ss);
    const std::string bytes = ss.str();

    {
        std::string bad = bytes;
        bad[0] ^= 0xff; // magic
        std::stringstream in(bad);
        EXPECT_THROW(trace::readTrace(in), std::runtime_error);
    }
    {
        std::string bad = bytes;
        bad[4] ^= 0xff; // version
        std::stringstream in(bad);
        EXPECT_THROW(trace::readTrace(in), std::runtime_error);
    }
    {
        // String-count field blown up to an absurd value: the reader
        // must bail on its sanity limits instead of allocating.
        std::string bad = bytes;
        std::uint32_t huge = 0xffffffffu;
        std::memcpy(&bad[8], &huge, sizeof(huge));
        std::stringstream in(bad);
        EXPECT_THROW(trace::readTrace(in), std::runtime_error);
    }
}

/** readTrace's failure message for @p bytes, or "" if it succeeded. */
std::string
rejectionMessage(const std::string &bytes)
{
    std::stringstream in(bytes);
    try {
        trace::readTrace(in);
    } catch (const std::runtime_error &e) {
        return e.what();
    }
    return "";
}

TEST(FuzzSerialize, PlausibleLengthsBeyondStreamEndAreRejected)
{
    // The fixed-width v1 framing puts the variable-length fields at
    // known offsets (v2's varints would shift with the values): one
    // Write with 8 data bytes means the entry occupies the last 55
    // bytes and its dlen field the 4 bytes before the payload.
    TraceBuffer buf;
    TraceEntry e;
    e.op = Op::Write;
    e.addr = defaultPoolBase;
    e.size = 8;
    e.loc.file = "f.cc";
    e.loc.func = "fn";
    e.loc.line = 7;
    e.label = "";
    e.data = {1, 2, 3, 4, 5, 6, 7, 8};
    buf.append(std::move(e));
    std::stringstream ss;
    trace::writeTraceV1(buf, ss);
    const std::string bytes = ss.str();

    {
        // Data length under the fixed 16 MiB cap but far past the end
        // of the stream: must be rejected by the stream-bound check,
        // before the payload buffer is allocated — not by a failed
        // read afterwards.
        std::string bad = bytes;
        std::uint32_t dlen = 1u << 20;
        std::memcpy(&bad[bad.size() - 12], &dlen, sizeof(dlen));
        EXPECT_EQ(rejectionMessage(bad), "oversized data payload");
    }
    {
        // Interned-string length under the 1 MiB cap but larger than
        // the whole file (first length field sits right after the
        // 12-byte header).
        std::string bad = bytes;
        std::uint32_t slen = 4096;
        std::memcpy(&bad[12], &slen, sizeof(slen));
        EXPECT_EQ(rejectionMessage(bad), "oversized interned string");
    }
    {
        // String count under the count cap but needing more length
        // fields than bytes remain.
        std::string bad = bytes;
        std::uint32_t n = 1u << 16;
        std::memcpy(&bad[8], &n, sizeof(n));
        EXPECT_EQ(rejectionMessage(bad), "implausible string count");
    }
    {
        // Structurally intact entry with an out-of-range op kind.
        std::string bad = bytes;
        bad[bad.size() - 55] = '\x7f';
        EXPECT_EQ(rejectionMessage(bad), "bad trace op kind");
    }
    {
        // The unmodified bytes still parse, proving the offsets above
        // hit the intended fields rather than tripping other guards.
        EXPECT_EQ(rejectionMessage(bytes), "");
    }
}

TEST(FuzzSerialize, FuzzedLengthFieldsNeverCrash)
{
    // Sweep every 4-byte-aligned offset of a valid stream, splatting a
    // "plausible but huge" length there: whatever field that lands on,
    // the reader must either reject cleanly or produce a well-formed
    // trace — never crash or over-allocate into an OOM kill.
    TraceBuffer buf = randomTrace(11, 24);
    std::stringstream ss;
    trace::writeTrace(buf, ss);
    const std::string bytes = ss.str();

    const std::uint32_t patterns[] = {1u << 12, 1u << 19, 1u << 23};
    for (std::uint32_t pat : patterns) {
        for (std::size_t off = 8; off + 4 <= bytes.size(); off += 4) {
            std::string bad = bytes;
            std::memcpy(&bad[off], &pat, sizeof(pat));
            std::stringstream in(bad);
            try {
                LoadedTrace loaded = trace::readTrace(in);
                (void)loaded;
            } catch (const std::runtime_error &) {
                // Clean rejection is the expected common case.
            }
        }
    }
}

TEST(FuzzSerializeReplay, ReplayFromEnv)
{
    std::uint64_t s = 0;
    if (!xfdtest::fuzzSeedFromEnv(s))
        GTEST_SKIP()
            << "set XFD_FUZZ_SEED=<seed from a failure message> to "
               "replay a single fuzz stream";
    roundTripOne(s);
}

} // namespace
