/**
 * @file
 * Table 5 validation: every registered synthetic bug must be detected
 * with its expected finding class, and no case may trip the detector
 * when its flag is off (covered by the workload no-false-positive
 * tests). Parameterized over the whole registry.
 */

#include <gtest/gtest.h>

#include "bugsuite/registry.hh"

namespace
{

using namespace xfd;
using bugsuite::allBugCases;
using bugsuite::BugCase;
using bugsuite::detected;
using bugsuite::Expected;
using bugsuite::Origin;
using bugsuite::runBugCase;

class BugSuiteTest : public ::testing::TestWithParam<BugCase>
{
};

TEST_P(BugSuiteTest, DetectedWithExpectedClass)
{
    const BugCase &c = GetParam();
    auto res = runBugCase(c);
    EXPECT_TRUE(detected(c, res))
        << c.id << " (" << c.description << ") expected "
        << bugsuite::expectedName(c.expected) << "\n"
        << res.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Table5, BugSuiteTest, ::testing::ValuesIn(allBugCases()),
    [](const ::testing::TestParamInfo<BugCase> &info) {
        std::string n = info.param.id.empty() ? info.param.workload
                                              : info.param.id;
        for (auto &ch : n) {
            if (!std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return n;
    });

TEST(BugSuiteRegistry, MatchesTable5Counts)
{
    // Table 5 row sums (R: PMTest suite + additional, S, P).
    struct Row
    {
        const char *workload;
        std::size_t races;
        std::size_t semantics;
        std::size_t perfs;
    };
    const Row rows[] = {
        {"btree", 8 + 4, 0, 2},   {"ctree", 5 + 1, 0, 1},
        {"rbtree", 7 + 1, 0, 1},  {"hashmap_tx", 6 + 3, 0, 1},
        {"hashmap_atomic", 10 + 3, 4, 2},
    };
    for (const auto &row : rows) {
        std::size_t r = 0, s = 0, p = 0;
        for (const auto &c : bugsuite::bugCasesFor(row.workload)) {
            if (c.origin == Origin::Extra)
                continue;
            if (c.origin == Origin::NewBug &&
                std::string(row.workload) != "hashmap_atomic") {
                continue;
            }
            switch (c.expected) {
              case Expected::Race: r++; break;
              case Expected::Semantic: s++; break;
              case Expected::Performance: p++; break;
              default: break;
            }
        }
        EXPECT_EQ(r, row.races) << row.workload;
        EXPECT_EQ(s, row.semantics) << row.workload;
        EXPECT_EQ(p, row.perfs) << row.workload;
    }
}

TEST(BugSuiteRegistry, HasAllFourNewBugs)
{
    std::size_t new_bugs = 0;
    for (const auto &c : allBugCases()) {
        if (c.origin == Origin::NewBug)
            new_bugs++;
    }
    EXPECT_EQ(new_bugs, 4u);
}

} // namespace
