/**
 * @file
 * End-to-end detection tests against the campaign driver, built around
 * the paper's Figure 2 program: an array update protected by a backup
 * slot and a `valid` commit variable.
 *
 * The as-printed (buggy) version sets `valid` to the wrong values, so
 * recovery either skips a needed rollback (cross-failure race on the
 * unpersisted in-place update) or rolls back with a stale backup
 * (cross-failure semantic bug). The corrected version must produce no
 * findings — the no-false-positive half of the contract.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "harness.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using core::BugType;
using core::CampaignResult;
using core::DetectorConfig;
using core::Driver;
using trace::PmRuntime;

/** Persistent layout of the Figure 2 program, at the pool base. */
struct ArrayRoot
{
    std::int64_t backupIdx;
    std::int64_t backupVal;
    std::uint8_t valid;
    std::uint8_t pad[47];
    std::int64_t arr[8]; // starts at offset 64: own cache line
};

struct Fig2Program
{
    /** When false, `valid` is set to the paper's buggy values. */
    bool fixed;
    int idx = 5;
    std::int64_t newVal = 42;

    ArrayRoot *
    root(PmRuntime &rt) const
    {
        return static_cast<ArrayRoot *>(rt.pool().toHost(rt.pool().base()));
    }

    void
    annotate(PmRuntime &rt, ArrayRoot *r) const
    {
        rt.addCommitVar(r->valid);
        rt.addCommitRange(r->valid, &r->backupIdx, 16);
        rt.addCommitRange(r->valid, r->arr, sizeof(r->arr));
    }

    void
    pre(PmRuntime &rt) const
    {
        ArrayRoot *r = root(rt);
        trace::RoiScope roi(rt);
        annotate(rt, r);

        // update(idx, newVal), paper Figure 2.
        rt.store(r->backupIdx, static_cast<std::int64_t>(idx));
        rt.store(r->backupVal, r->arr[idx]);
        rt.persistBarrier(&r->backupIdx, 16);
        rt.store(r->valid, static_cast<std::uint8_t>(fixed ? 1 : 0));
        rt.persistBarrier(&r->valid, 1);
        rt.store(r->arr[idx], newVal);
        rt.persistBarrier(&r->arr[idx], 8);
        rt.store(r->valid, static_cast<std::uint8_t>(fixed ? 0 : 1));
        rt.persistBarrier(&r->valid, 1);
    }

    void
    post(PmRuntime &rt) const
    {
        ArrayRoot *r = root(rt);
        trace::RoiScope roi(rt);
        annotate(rt, r);

        // recover(): roll back iff the backup is marked valid.
        if (rt.load(r->valid)) {
            std::int64_t bidx = rt.load(r->backupIdx);
            std::int64_t bval = rt.load(r->backupVal);
            rt.store(r->arr[bidx], bval);
            rt.persistBarrier(&r->arr[bidx], 8);
            rt.store(r->valid, static_cast<std::uint8_t>(0));
            rt.persistBarrier(&r->valid, 1);
        }
        // Resumption: the next operation reads the slot.
        (void)rt.load(r->arr[idx]);
    }
};

struct DetectorE2E : ::testing::Test
{
    // Tests that inspect the pool after a run, or drive the Driver
    // directly, share this fixture pool; plain campaigns go through
    // the harness on a fresh pool.
    pm::PmPool pool{1 << 20};

    CampaignResult
    runCampaign(const Fig2Program &prog, DetectorConfig cfg = {})
    {
        xfdtest::RunOptions opt;
        opt.detector = cfg;
        opt.poolBytes = 1 << 20;
        return xfdtest::runCampaign(
            [&](PmRuntime &rt) { prog.pre(rt); },
            [&](PmRuntime &rt) { prog.post(rt); }, opt);
    }
};

TEST_F(DetectorE2E, CorrectProtocolHasNoFindings)
{
    Fig2Program prog{true};
    CampaignResult res = runCampaign(prog);
    EXPECT_EQ(res.bugs.size(), 0u) << res.summary();
    EXPECT_GT(res.stats.failurePoints, 0u);
    EXPECT_EQ(res.stats.postExecutions, res.stats.failurePoints);
}

TEST_F(DetectorE2E, BuggyProtocolYieldsRaceAndSemanticBug)
{
    Fig2Program prog{false};
    CampaignResult res = runCampaign(prog);
    EXPECT_TRUE(xfdtest::hasFindingOfClass(
        res, BugType::CrossFailureRace));
    EXPECT_TRUE(xfdtest::hasFindingOfClass(
        res, BugType::CrossFailureSemantic));
}

TEST_F(DetectorE2E, BugReportPointsAtReaderAndWriter)
{
    Fig2Program prog{false};
    CampaignResult res = runCampaign(prog);
    ASSERT_TRUE(res.hasBugs());
    for (const auto &b : res.bugs) {
        EXPECT_GT(b.reader.line, 0u);
        EXPECT_NE(std::string(b.reader.file).find("test_detector_e2e"),
                  std::string::npos);
    }
}

TEST_F(DetectorE2E, FailurePointCountMatchesOrderingPoints)
{
    // Four persist barriers inside the RoI -> four failure points.
    Fig2Program prog{true};
    CampaignResult res = runCampaign(prog);
    EXPECT_EQ(res.stats.failurePoints, 4u);
}

TEST_F(DetectorE2E, PoolHoldsFinalStateAfterCampaign)
{
    Fig2Program prog{true};
    Driver driver(pool, {});
    (void)driver.run([&](PmRuntime &rt) { prog.pre(rt); },
                     [&](PmRuntime &rt) { prog.post(rt); });
    auto *r = static_cast<ArrayRoot *>(pool.toHost(pool.base()));
    EXPECT_EQ(r->arr[5], 42);
    EXPECT_EQ(r->valid, 0);
}

TEST_F(DetectorE2E, DedupeAcrossFailurePoints)
{
    Fig2Program prog{false};
    CampaignResult res = runCampaign(prog);
    // The same reader/writer pair at several failure points is one
    // finding with occurrences counted.
    for (const auto &b : res.bugs)
        EXPECT_GE(b.occurrences, 1u);
    std::size_t races = res.count(BugType::CrossFailureRace);
    EXPECT_LE(races, 2u);
}

TEST_F(DetectorE2E, RecoveryFailureReported)
{
    Fig2Program prog{true};
    Driver driver(pool, {});
    CampaignResult res = driver.run(
        [&](PmRuntime &rt) { prog.pre(rt); },
        [&](PmRuntime &rt) {
            throw trace::PostFailureAbort{"recovery exploded",
                                          trace::here()};
            (void)rt;
        });
    EXPECT_EQ(res.count(BugType::RecoveryFailure), 1u);
    EXPECT_EQ(res.bugs[0].note, "recovery exploded");
}

TEST_F(DetectorE2E, PerformanceBugRedundantFlush)
{
    Driver driver(pool, {});
    CampaignResult res = driver.run(
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            auto *v = static_cast<std::uint64_t *>(
                rt.pool().toHost(rt.pool().base()));
            rt.store(*v, std::uint64_t{1});
            rt.persistBarrier(v, 8);
            rt.clwb(v, 8); // redundant: line already persisted
            rt.sfence();
        },
        [](PmRuntime &) {});
    EXPECT_EQ(res.count(BugType::Performance), 1u) << res.summary();
}

TEST_F(DetectorE2E, PerformanceBugsCanBeSilenced)
{
    DetectorConfig cfg;
    cfg.reportPerformanceBugs = false;
    Driver driver(pool, cfg);
    CampaignResult res = driver.run(
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            auto *v = static_cast<std::uint64_t *>(
                rt.pool().toHost(rt.pool().base()));
            rt.store(*v, std::uint64_t{1});
            rt.persistBarrier(v, 8);
            rt.clwb(v, 8);
            rt.sfence();
        },
        [](PmRuntime &) {});
    EXPECT_EQ(res.count(BugType::Performance), 0u);
}

TEST_F(DetectorE2E, CompleteDetectionTerminatesPost)
{
    Fig2Program prog{true};
    Driver driver(pool, {});
    CampaignResult res = driver.run(
        [&](PmRuntime &rt) { prog.pre(rt); },
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            rt.completeDetection();
        });
    EXPECT_EQ(res.bugs.size(), 0u);
    EXPECT_EQ(res.stats.postExecutions, res.stats.failurePoints);
}

TEST_F(DetectorE2E, BaselineModesRun)
{
    Fig2Program prog{true};
    Driver driver(pool, {});
    double traced = driver.runBaseline(
        [&](PmRuntime &rt) { prog.pre(rt); }, true);
    double original = driver.runBaseline(
        [&](PmRuntime &rt) { prog.pre(rt); }, false);
    EXPECT_GE(traced, 0.0);
    EXPECT_GE(original, 0.0);
}

TEST_F(DetectorE2E, StatsAreCoherent)
{
    Fig2Program prog{false};
    CampaignResult res = runCampaign(prog);
    EXPECT_GT(res.stats.preTraceEntries, 0u);
    EXPECT_GT(res.stats.postTraceEntries, 0u);
    EXPECT_GT(res.stats.checksPerformed, 0u);
    EXPECT_GE(res.stats.preSeconds, 0.0);
    EXPECT_EQ(res.stats.orderingCandidates,
              res.stats.failurePoints + res.stats.elidedPoints);
}

TEST_F(DetectorE2E, SummaryMentionsBugTypes)
{
    Fig2Program prog{false};
    CampaignResult res = runCampaign(prog);
    std::string s = res.summary();
    EXPECT_NE(s.find("CROSS-FAILURE RACE"), std::string::npos);
    EXPECT_NE(s.find("CROSS-FAILURE SEMANTIC BUG"), std::string::npos);
}

} // namespace
