/**
 * @file
 * Cross-model conformance matrix for the persistency-model parameter
 * (--pm-model): the default clwb model (explicit writeback + fence)
 * against the flush-free eADR/CXL model, where the persistence domain
 * covers the caches and every store is durable the moment it retires.
 *
 * Pinned contracts:
 *  - parse-time validation of the flag and the config accessors;
 *  - every workload stays finding-free under eADR, with crash-state
 *    oracle agreement 1.0 — the oracle mirrors the model's semantics;
 *  - the full bug suite keeps per-failure-point oracle agreement
 *    under eADR, whatever each case now produces;
 *  - pure flush-ordering defects (the wal.* mis-ordered-writeback
 *    family) vanish under eADR, while semantic, validation and
 *    batch-atomicity defects persist — the model changes durability,
 *    not recovery logic;
 *  - serial, parallel and all three backends produce byte-identical
 *    finding fingerprints under both models, and campaigns stay
 *    deterministic across runs.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bugsuite/registry.hh"
#include "core/config_flags.hh"
#include "harness.hh"
#include "oracle/diff.hh"
#include "pmlib/objpool.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using core::BugType;
using core::DetectorConfig;
using core::PersistencyModel;
using trace::PmRuntime;

/** Detector config with --pm-model applied. */
DetectorConfig
modelConfig(const std::string &model)
{
    DetectorConfig cfg;
    cfg.pmModel = model;
    return cfg;
}

/** Run one differential campaign over a stock workload. */
oracle::DiffReport
diffWorkload(const std::string &name, workloads::WorkloadConfig wcfg,
             oracle::DiffConfig cfg)
{
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload(name, std::move(wcfg));
    pm::PmPool pool(xfdtest::defaultPoolBytes);
    return oracle::runDifferentialCampaign(
        pool, [w](PmRuntime &rt) { w->pre(rt); },
        [w](PmRuntime &rt) { w->post(rt); }, cfg);
}

/** Small-scale config: exhaustive oracle tier stays fast. */
workloads::WorkloadConfig
smallConfig(const std::string &name)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 3;
    wcfg.testOps = 3;
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;
    return wcfg;
}

/** The registered case for @p id (must exist). */
bugsuite::BugCase
caseById(const std::string &id)
{
    for (const auto &c : bugsuite::allBugCases()) {
        if (c.id == id)
            return c;
    }
    ADD_FAILURE() << "no registered bug case " << id;
    return {};
}

// ------------------------------------------------------------------
// Flag parsing and config accessors
// ------------------------------------------------------------------

TEST(PmModelConfig, DefaultsToClwb)
{
    DetectorConfig cfg;
    EXPECT_EQ(cfg.pmModel, "clwb");
    EXPECT_EQ(cfg.pmModelEnum(), PersistencyModel::Clwb);
    EXPECT_FALSE(cfg.eadrOn());
}

TEST(PmModelConfig, ParseAcceptsBothModelsOnly)
{
    PersistencyModel m = PersistencyModel::Clwb;
    EXPECT_TRUE(DetectorConfig::parsePmModel("clwb", m));
    EXPECT_EQ(m, PersistencyModel::Clwb);
    EXPECT_TRUE(DetectorConfig::parsePmModel("eadr", m));
    EXPECT_EQ(m, PersistencyModel::Eadr);
    // An unset value degrades to the default model.
    EXPECT_TRUE(DetectorConfig::parsePmModel("", m));
    EXPECT_EQ(m, PersistencyModel::Clwb);
    EXPECT_FALSE(DetectorConfig::parsePmModel("eADR", m));
    EXPECT_FALSE(DetectorConfig::parsePmModel("cxl", m));
}

TEST(PmModelConfig, FlagAppliesValidatedValue)
{
    const core::ConfigFlagDesc *d = core::findDetectorFlag("--pm-model");
    ASSERT_NE(d, nullptr);
    DetectorConfig cfg;
    core::applyDetectorFlag(*d, cfg, "eadr");
    EXPECT_EQ(cfg.pmModel, "eadr");
    EXPECT_EQ(cfg.pmModelEnum(), PersistencyModel::Eadr);
    EXPECT_TRUE(cfg.eadrOn());
}

// ------------------------------------------------------------------
// eADR conformance: workloads and bug suite
// ------------------------------------------------------------------

TEST(PmModelEadr, AllWorkloadsCleanWithOracleAgreement)
{
    for (const std::string &name : workloads::workloadNames()) {
        SCOPED_TRACE(name);
        oracle::DiffConfig cfg;
        cfg.detector = modelConfig("eadr");
        oracle::DiffReport rep =
            diffWorkload(name, smallConfig(name), cfg);
        EXPECT_TRUE(rep.clean()) << rep.summary();
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0) << rep.summary();
        EXPECT_GT(rep.failurePoints, 0u);
        EXPECT_TRUE(xfdtest::hasNoFindings(rep.detector));
    }
}

TEST(PmModelEadr, FullBugsuiteKeepsOracleAgreement)
{
    // Whatever each planted defect produces under the flush-free
    // model (many vanish, see below), detector and oracle must agree
    // on it at every failure point.
    for (const bugsuite::BugCase &c : bugsuite::allBugCases()) {
        SCOPED_TRACE(c.id.empty() ? c.workload : c.id);
        oracle::DiffConfig cfg;
        cfg.detector = modelConfig("eadr");
        oracle::DiffReport rep;
        if (c.workload == "pool_create") {
            pm::PmPool pool(xfdtest::defaultPoolBytes);
            rep = oracle::runDifferentialCampaign(
                pool,
                [](PmRuntime &rt) {
                    trace::RoiScope roi(rt);
                    pmlib::ObjPool::create(rt, "bug4", 64);
                },
                [](PmRuntime &rt) {
                    trace::RoiScope roi(rt);
                    pmlib::ObjPool::open(rt, "bug4");
                },
                cfg);
        } else {
            workloads::WorkloadConfig wcfg;
            wcfg.initOps = c.initOps;
            wcfg.testOps = c.testOps;
            wcfg.postOps = c.postOps;
            wcfg.roiFromStart = c.roiFromStart;
            if (c.workload == "memcached")
                wcfg.memcachedCapacity = 8;
            if (!c.id.empty())
                wcfg.bugs.enable(c.id);
            rep = diffWorkload(c.workload, std::move(wcfg), cfg);
        }
        EXPECT_TRUE(rep.clean()) << rep.summary();
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0) << rep.summary();
    }
}

TEST(PmModelEadr, FlushOrderingBugsVanish)
{
    // Each of these defects mis-orders writeback against the commit
    // point. With the persistence domain covering the caches there is
    // no writeback left to mis-order: every store is durable when it
    // retires, so the planted window closes and the campaign is
    // clean.
    const char *const ids[] = {
        "wal.race.commit_before_payload",
        "wal.race.truncate_before_apply",
        "wal.race.unflushed_log_head",
    };
    for (const char *id : ids) {
        SCOPED_TRACE(id);
        bugsuite::BugCase c = caseById(id);
        auto res = bugsuite::runBugCase(c, modelConfig("eadr"));
        EXPECT_TRUE(xfdtest::hasNoFindings(res)) << res.summary();
        EXPECT_GT(res.stats.failurePoints, 0u);
    }
}

TEST(PmModelEadr, SemanticAndValidationBugsPersist)
{
    // Defects eADR does not mask: reading the dead checkpoint
    // descriptor is wrong under any durability model; a replay that
    // skips CRC validation still consumes never-written log cells;
    // and the eager per-record seal publishes a partially staged
    // batch — instantly durable under eADR — so recovery can reach
    // pages that were allocated but never written. Only the last
    // one's *flush* aspect vanishes; its atomicity aspect stays.
    for (const char *id : {"wal.sem.replay_past_checkpoint",
                           "wal.recovery.missing_crc_check",
                           "wal.race.torn_record_accepted"}) {
        SCOPED_TRACE(id);
        bugsuite::BugCase c = caseById(id);
        auto res = bugsuite::runBugCase(c, modelConfig("eadr"));
        EXPECT_TRUE(bugsuite::detected(c, res)) << res.summary();
    }
}

// ------------------------------------------------------------------
// Cross-backend / cross-run identity under both models
// ------------------------------------------------------------------

TEST(PmModel, BackendsAndThreadsAgreeUnderBothModels)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 4;
    wcfg.testOps = 6;
    wcfg.postOps = 3;
    for (const char *model : {"clwb", "eadr"}) {
        for (const char *workload : {"btree", "wal_btree"}) {
            SCOPED_TRACE(testing::Message() << workload << " under "
                                            << model);
            auto run = [&](const char *backend, unsigned threads) {
                xfdtest::RunOptions opt;
                opt.detector = modelConfig(model);
                opt.detector.backend = backend;
                opt.threads = threads;
                return xfdtest::fingerprint(
                    xfdtest::runWorkload(workload, wcfg, opt));
            };
            auto serial = run("full", 1);
            EXPECT_EQ(run("delta", 1), serial);
            EXPECT_EQ(run("batched", 1), serial);
            EXPECT_EQ(run("full", 3), serial);
        }
    }
}

TEST(PmModelEadr, CampaignIsDeterministicAcrossRuns)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 4;
    wcfg.testOps = 6;
    wcfg.postOps = 3;
    xfdtest::RunOptions opt;
    opt.detector = modelConfig("eadr");
    auto a = xfdtest::runWorkload("wal_btree", wcfg, opt);
    auto b = xfdtest::runWorkload("wal_btree", wcfg, opt);
    EXPECT_EQ(xfdtest::fingerprint(a), xfdtest::fingerprint(b));
    EXPECT_EQ(a.stats.failurePoints, b.stats.failurePoints);
}

TEST(PmModelEadr, PlansNoMoreFailurePointsThanClwb)
{
    // eADR drops the flush-driven fence points; the plan can only
    // shrink, never grow, and must not collapse to nothing.
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 4;
    wcfg.testOps = 6;
    wcfg.postOps = 3;
    xfdtest::RunOptions clwb, eadr;
    eadr.detector = modelConfig("eadr");
    auto resClwb = xfdtest::runWorkload("btree", wcfg, clwb);
    auto resEadr = xfdtest::runWorkload("btree", wcfg, eadr);
    EXPECT_GT(resEadr.stats.failurePoints, 0u);
    EXPECT_LE(resEadr.stats.failurePoints, resClwb.stats.failurePoints);
}

} // namespace
