/**
 * @file
 * Repair-advisor acceptance sweep over the synthetic bug suite.
 *
 * The advisor's contract splits the registry in two:
 *
 *  - Every performance-bug case and every flush-ordering race case
 *    (a missing flush, a missing fence, or a plain store where a
 *    persist was required) must end with at least one *verified*
 *    repair and zero regressions — these defects have a sound
 *    trace-level inverse and the machine check must prove it.
 *
 *  - Semantic and recovery-logic cases (a missing CRC check, replay
 *    past the checkpoint, a commit-window protocol violation) have no
 *    sound trace-level repair: the advisor must stay honest and
 *    report advisory/incomplete plans instead of a bogus "verified"
 *    — and still must not regress anything.
 *
 * Cases that produce no findings at this campaign size (the bug path
 * never executes) are excluded; a fix campaign with nothing to fix is
 * vacuous, not wrong.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "fix/fix.hh"
#include "harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;

/** Workload a bug-suite case id runs on ("wal.*" → wal_btree). */
std::string
workloadOf(const std::string &bugId)
{
    std::string prefix = bugId.substr(0, bugId.find('.'));
    return prefix == "wal" ? "wal_btree" : prefix;
}

/**
 * Fix campaign over one case at the acceptance size (6 init / 6 test
 * ops — several perf defects only manifest from size 6 up). Oracle
 * off: the sweep asserts plan verdicts, not oracle conformance, and
 * the oracle path has its own suite.
 */
fix::FixReport
sweepCase(const std::string &bugId)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 6;
    wcfg.testOps = 6;
    wcfg.postOps = 2;
    wcfg.bugs.enable(bugId);
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload(workloadOf(bugId), wcfg);

    fix::FixConfig cfg;
    cfg.pre = [w](PmRuntime &rt) { w->pre(rt); };
    cfg.post = [w](PmRuntime &rt) { w->post(rt); };
    cfg.poolBytes = xfdtest::defaultPoolBytes;
    cfg.withOracle = false;
    return fix::runFixCampaign(cfg);
}

void
expectVerifiedRepair(const std::string &bugId)
{
    SCOPED_TRACE(bugId);
    fix::FixReport rep = sweepCase(bugId);
    ASSERT_FALSE(rep.baseline.bugs.empty())
        << "case no longer manifests at the sweep size";
    EXPECT_GE(rep.verified, 1u) << rep.scoreboard();
    EXPECT_EQ(rep.regressed, 0u) << rep.scoreboard();
}

TEST(FixSweep, PerformanceBugsAllGetVerifiedRepairs)
{
    for (const char *id : {
             "btree.perf.double_add",
             "btree.perf.extra_flush",
             "ctree.perf.double_add",
             "rbtree.perf.double_add",
             "hashmap_tx.perf.double_add",
             "redis.perf.double_add",
             "hashmap_atomic.perf.double_persist_entry",
             "hashmap_atomic.perf.flush_clean_count",
         })
        expectVerifiedRepair(id);
}

TEST(FixSweep, HashmapFlushOrderingRacesAllGetVerifiedRepairs)
{
    for (const char *id : {
             "hashmap_atomic.race.entry_no_persist",
             "hashmap_atomic.race.entry_partial_persist",
             "hashmap_atomic.race.entry_clwb_no_fence",
             "hashmap_atomic.race.slot_plain_store",
             "hashmap_atomic.race.slot_clwb_no_fence",
             "hashmap_atomic.race.count_no_persist",
             "hashmap_atomic.race.remove_slot_plain_store",
             "hashmap_atomic.race.remove_count_no_persist",
             "hashmap_atomic.race.next_write_after_persist",
         })
        expectVerifiedRepair(id);
}

TEST(FixSweep, MemcachedAndWalFlushOrderingRacesAllGetVerifiedRepairs)
{
    for (const char *id : {
             "memcached.race.item_no_persist",
             "memcached.race.link_plain_store",
             "wal.race.unflushed_log_head",
             "wal.race.commit_before_payload",
             "wal.race.torn_record_accepted",
             "wal.race.truncate_before_apply",
         })
        expectVerifiedRepair(id);
}

/**
 * The honesty half: semantic defects must not produce a fraudulent
 * "verified" story. The advisor may verify genuine side findings
 * (e.g. an unfenced writeback next to the semantic bug), but at least
 * one plan must remain advisory or incomplete — the semantic defect
 * itself has no sound trace-level repair — and nothing may regress.
 */
void
expectHonestIncomplete(const std::string &bugId)
{
    SCOPED_TRACE(bugId);
    fix::FixReport rep = sweepCase(bugId);
    ASSERT_FALSE(rep.baseline.bugs.empty())
        << "case no longer manifests at the sweep size";
    EXPECT_EQ(rep.regressed, 0u) << rep.scoreboard();
    EXPECT_GE(rep.incomplete + rep.unplanned.size(), 1u)
        << rep.scoreboard();
    // Not everything may be claimed fixed.
    EXPECT_LT(rep.verified, rep.plans() + rep.unplanned.size())
        << rep.scoreboard();
}

TEST(FixSweep, SemanticCasesStayHonest)
{
    for (const char *id : {
             "wal.recovery.missing_crc_check",
             "wal.sem.replay_past_checkpoint",
             "hashmap_atomic.sem.count_outside_window",
         })
        expectHonestIncomplete(id);
}

/** missing_crc_check specifically must surface an advisory plan. */
TEST(FixSweep, MissingCrcCheckIsAdvisory)
{
    fix::FixReport rep = sweepCase("wal.recovery.missing_crc_check");
    bool sawAdvisory = false;
    for (const auto &o : rep.outcomes) {
        if (o.plan.advisory) {
            sawAdvisory = true;
            EXPECT_EQ(o.verdict, fix::Verdict::Incomplete)
                << o.plan.describe();
        }
    }
    EXPECT_TRUE(sawAdvisory || !rep.unplanned.empty())
        << rep.scoreboard();
}

} // namespace
