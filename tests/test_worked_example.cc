/**
 * @file
 * The paper's worked example (Fig. 11), reproduced step by step.
 *
 * Layout (as in the figure):
 *   0x100-0x10F  backup        (16 B)
 *   0x110-0x113  valid         (commit variable, same cache line)
 *   0x200-0x20F  arr[idx]      (the in-place update)
 *
 * Pre-failure trace:
 *   WRITE 0x100 16 ; WRITE 0x110 4 ; CLWB 0x100 64 ; SFENCE ;
 *   WRITE 0x200 16
 * Post-failure trace (both failure points):
 *   READ 0x110 1 ; READ 0x100 16
 *
 * Expected (paper §5.4): at F1 (before the CLWB/SFENCE) reading
 * backup is a cross-failure RACE (persistence state modified); at F2
 * (after the barrier, before the in-place update is committed)
 * reading backup is a cross-failure SEMANTIC bug, "due to backup not
 * being updated before the last update to the commit variable".
 */

#include <gtest/gtest.h>

#include "core/shadow_pm.hh"

namespace
{

using namespace xfd;
using core::DetectorConfig;
using core::PersistState;
using core::ReadCheck;
using core::ShadowPM;

struct Fig11Test : ::testing::Test
{
    static constexpr Addr base = defaultPoolBase;
    static constexpr Addr backup = base + 0x100;
    static constexpr Addr valid = base + 0x110;
    static constexpr Addr arr = base + 0x200;

    Fig11Test() : shadow({base, base + 0x1000}, cfg)
    {
        shadow.registerCommitVar(valid, 4);
        shadow.registerCommitRange(valid, backup, 16);
        shadow.registerCommitRange(valid, arr, 16);
    }

    DetectorConfig cfg;
    ShadowPM shadow;
};

TEST_F(Fig11Test, StepByStep)
{
    // Line 1: WRITE 0x100 16 (backup) -> modified, Tlast = 0.
    shadow.preWrite(backup, 16, 1, false);
    EXPECT_EQ(shadow.persistStateOf(backup), PersistState::Modified);
    EXPECT_EQ(shadow.tlastOf(backup), 0);

    // Line 2: WRITE 0x110 4 (valid, the commit write) -> modified.
    shadow.preWrite(valid, 4, 2, false);
    EXPECT_EQ(shadow.persistStateOf(valid), PersistState::Modified);

    // F1: the first failure triggers post-failure execution.
    shadow.beginPostReplay();
    {
        // Line 6 (F1): READ 0x110 1 — the commit variable: benign.
        auto r_valid = shadow.checkPostRead(valid, 1);
        EXPECT_EQ(r_valid.verdict, ReadCheck::Benign);

        // Line 7 (F1): READ 0x100 16 — backup is modified:
        // cross-failure RACE (paper: "XFDetector reports a
        // cross-failure race").
        auto r_backup = shadow.checkPostRead(backup, 16);
        EXPECT_EQ(r_backup.verdict, ReadCheck::Race);
        EXPECT_EQ(r_backup.writerSeq, 1u);
    }
    shadow.endPostReplay();

    // Line 3: CLWB 0x100 64 — covers both backup and valid.
    EXPECT_FALSE(shadow.preFlush(backup, 3));
    EXPECT_EQ(shadow.persistStateOf(backup),
              PersistState::WritebackPending);
    EXPECT_EQ(shadow.persistStateOf(valid),
              PersistState::WritebackPending);

    // Line 4: SFENCE — both persisted; global timestamp increments.
    shadow.preFence();
    EXPECT_EQ(shadow.persistStateOf(backup), PersistState::Persisted);
    EXPECT_EQ(shadow.persistStateOf(valid), PersistState::Persisted);
    EXPECT_EQ(shadow.timestamp(), 1);

    // Line 5: WRITE 0x200 16 (arr) in place -> modified, Tlast = 1.
    shadow.preWrite(arr, 16, 5, false);
    EXPECT_EQ(shadow.persistStateOf(arr), PersistState::Modified);
    EXPECT_EQ(shadow.tlastOf(arr), 1);

    // F2: the second failure triggers post-failure execution.
    shadow.beginPostReplay();
    {
        // Line 6 (F2): READ 0x110 — still benign.
        EXPECT_EQ(shadow.checkPostRead(valid, 1).verdict,
                  ReadCheck::Benign);

        // Line 7 (F2): READ 0x100 — backup persisted, but modified in
        // the same epoch as the last commit write, not between the
        // last two: cross-failure SEMANTIC bug.
        auto r_backup = shadow.checkPostRead(backup, 16);
        EXPECT_EQ(r_backup.verdict, ReadCheck::SemanticBug);
        EXPECT_EQ(r_backup.writerSeq, 1u);
    }
    shadow.endPostReplay();
}

TEST_F(Fig11Test, ArrReadAtF2WouldRace)
{
    // Not shown in the figure, but implied: the in-place update at
    // 0x200 is unpersisted at F2, so reading it races.
    shadow.preWrite(backup, 16, 1, false);
    shadow.preWrite(valid, 4, 2, false);
    shadow.preFlush(backup, 3);
    shadow.preFence();
    shadow.preWrite(arr, 16, 5, false);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(arr, 16).verdict, ReadCheck::Race);
}

TEST_F(Fig11Test, CorrectedProtocolIsCleanAtBothPoints)
{
    // The green-box fix (valid = 1 after the backup persists, 0 at
    // the end) makes both reads clean; see test_detector_e2e for the
    // full-program version.
    shadow.preWrite(backup, 16, 1, false);
    shadow.preFlush(backup, 2);
    shadow.preFence(); // ts 1
    shadow.preWrite(valid, 4, 3, false); // commit: backup now covered
    shadow.preFlush(valid, 4);
    shadow.preFence(); // ts 2

    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(valid, 1).verdict,
              ReadCheck::Benign);
    EXPECT_EQ(shadow.checkPostRead(backup, 16).verdict, ReadCheck::Ok);
}

} // namespace
