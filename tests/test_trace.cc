/**
 * @file
 * Unit tests for the tracing frontend: entry emission, flags, RoI and
 * skip regions, line-granular flushes, termination.
 */

#include <gtest/gtest.h>

#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using trace::Op;
using trace::PmRuntime;
using trace::Stage;
using trace::TraceBuffer;

struct TraceTest : ::testing::Test
{
    TraceTest() : pool(1 << 20), rt(pool, buf, Stage::PreFailure) {}

    pm::PmPool pool;
    TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(TraceTest, StorePerformsWriteAndTraces)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.store(*v, std::uint64_t{0x1122334455667788ull});
    EXPECT_EQ(*v, 0x1122334455667788ull);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].op, Op::Write);
    EXPECT_EQ(buf[0].addr, pool.base());
    EXPECT_EQ(buf[0].size, 8u);
    ASSERT_EQ(buf[0].data.size(), 8u);
    EXPECT_EQ(buf[0].data[0], 0x88u);
    EXPECT_EQ(buf[0].data[7], 0x11u);
}

TEST_F(TraceTest, LoadReturnsValueAndTraces)
{
    auto *v = pool.at<std::uint32_t>(16);
    *v = 77;
    EXPECT_EQ(rt.load(*v), 77u);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].op, Op::Read);
    EXPECT_EQ(buf[0].addr, pool.base() + 16);
    EXPECT_EQ(buf[0].size, 4u);
}

TEST_F(TraceTest, SourceLocationCaptured)
{
    auto *v = pool.at<int>(0);
    rt.store(*v, 1);
    EXPECT_GT(buf[0].loc.line, 0u);
    EXPECT_NE(std::string(buf[0].loc.file).find("test_trace"),
              std::string::npos);
}

TEST_F(TraceTest, ClwbEmitsPerLine)
{
    // 100 bytes starting at offset 60 spans lines 0, 64 and 128.
    rt.clwb(pool.at<char>(60), 100);
    ASSERT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0].addr, pool.base());
    EXPECT_EQ(buf[1].addr, pool.base() + 64);
    EXPECT_EQ(buf[2].addr, pool.base() + 128);
    for (std::size_t i = 0; i < 3; i++) {
        EXPECT_EQ(buf[i].op, Op::Clwb);
        EXPECT_EQ(buf[i].size, cacheLineSize);
    }
}

TEST_F(TraceTest, PersistBarrierIsClwbThenSfence)
{
    rt.persistBarrier(pool.at<char>(0), 8);
    ASSERT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf[0].op, Op::Clwb);
    EXPECT_EQ(buf[1].op, Op::Sfence);
}

TEST_F(TraceTest, NtStoreTraced)
{
    auto *v = pool.at<std::uint64_t>(8);
    rt.ntstore(*v, std::uint64_t{5});
    EXPECT_EQ(*v, 5u);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].op, Op::NtWrite);
}

TEST_F(TraceTest, CopyToPmCarriesData)
{
    const char msg[] = "hello";
    rt.copyToPm(pool.at<char>(100), msg, sizeof(msg));
    EXPECT_STREQ(pool.at<char>(100), "hello");
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].data.size(), sizeof(msg));
}

TEST_F(TraceTest, SetPmFills)
{
    rt.setPm(pool.at<char>(0), 0xab, 32);
    EXPECT_EQ(static_cast<unsigned char>(*pool.at<char>(31)), 0xabu);
    EXPECT_EQ(buf[0].data[0], 0xabu);
}

TEST_F(TraceTest, ReadPmCopiesOut)
{
    *pool.at<std::uint32_t>(4) = 9;
    std::uint32_t out = 0;
    rt.readPm(&out, pool.at<std::uint32_t>(4), 4);
    EXPECT_EQ(out, 9u);
    EXPECT_EQ(buf[0].op, Op::Read);
}

TEST_F(TraceTest, RoiFlagsApplied)
{
    auto *v = pool.at<int>(0);
    rt.store(*v, 1);
    rt.roiBegin();
    rt.store(*v, 2);
    rt.roiEnd();
    rt.store(*v, 3);
    // entries: write, RoiBegin, write, RoiEnd, write
    ASSERT_EQ(buf.size(), 5u);
    EXPECT_FALSE(buf[0].has(trace::flagInRoi));
    EXPECT_TRUE(buf[2].has(trace::flagInRoi));
    EXPECT_FALSE(buf[4].has(trace::flagInRoi));
}

TEST_F(TraceTest, ConditionFalseIsNoOp)
{
    rt.roiBegin(false);
    auto *v = pool.at<int>(0);
    rt.store(*v, 1);
    EXPECT_FALSE(buf[buf.size() - 1].has(trace::flagInRoi));
}

TEST_F(TraceTest, SkipRegionsFlagEntries)
{
    auto *v = pool.at<int>(0);
    rt.skipDetectionBegin();
    rt.store(*v, 1);
    rt.skipDetectionEnd();
    rt.skipFailureBegin();
    rt.sfence();
    rt.skipFailureEnd();
    EXPECT_TRUE(buf[0].has(trace::flagSkipDetection));
    EXPECT_TRUE(buf[1].has(trace::flagSkipFailure));
    EXPECT_FALSE(buf[1].has(trace::flagSkipDetection));
}

TEST_F(TraceTest, LibScopeMarksInternal)
{
    auto *v = pool.at<int>(0);
    {
        trace::LibScope lib(rt, "testlib");
        rt.store(*v, 1);
    }
    rt.store(*v, 2);
    ASSERT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0].op, Op::LibCall);
    EXPECT_STREQ(buf[0].label, "testlib");
    EXPECT_TRUE(buf[1].has(trace::flagInternal));
    EXPECT_FALSE(buf[2].has(trace::flagInternal));
}

TEST_F(TraceTest, NestedLibScopes)
{
    auto *v = pool.at<int>(0);
    {
        trace::LibScope a(rt, "outer");
        {
            trace::LibScope b(rt, "inner");
            rt.store(*v, 1);
        }
        rt.store(*v, 2);
    }
    EXPECT_TRUE(rt.inLib() == false);
    EXPECT_TRUE(buf[2].has(trace::flagInternal));
    EXPECT_TRUE(buf[3].has(trace::flagInternal));
}

TEST_F(TraceTest, CompleteDetectionThrowsAndStopsTracing)
{
    auto *v = pool.at<int>(0);
    EXPECT_THROW(rt.completeDetection(), trace::StageComplete);
    EXPECT_TRUE(rt.completed());
    std::size_t before = buf.size();
    rt.store(*v, 1); // must not trace any more
    EXPECT_EQ(buf.size(), before);
    EXPECT_EQ(*v, 1); // but data still flows
}

TEST_F(TraceTest, TracingDisabledStillMovesData)
{
    rt.setTracing(false);
    auto *v = pool.at<int>(0);
    rt.store(*v, 42);
    EXPECT_EQ(*v, 42);
    EXPECT_EQ(buf.size(), 0u);
}

TEST_F(TraceTest, ZeroFillIsImageOnly)
{
    auto *v = pool.at<std::uint64_t>(0);
    *v = 123;
    rt.zeroFill(v, 8);
    EXPECT_EQ(*v, 0u);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_TRUE(buf[0].has(trace::flagImageOnly));
}

TEST_F(TraceTest, CommitVarAnnotation)
{
    auto *v = pool.at<std::uint8_t>(32);
    rt.addCommitVar(*v);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].op, Op::CommitVar);
    EXPECT_EQ(buf[0].addr, pool.base() + 32);
    EXPECT_EQ(buf[0].size, 1u);
}

TEST_F(TraceTest, CommitRangeAnnotation)
{
    auto *cv = pool.at<std::uint8_t>(32);
    rt.addCommitRange(*cv, pool.at<char>(64), 16);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].op, Op::CommitRange);
    EXPECT_EQ(buf[0].aux, pool.base() + 32);
    EXPECT_EQ(buf[0].addr, pool.base() + 64);
}

TEST_F(TraceTest, PayloadBytesAccumulated)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.store(*v, std::uint64_t{1});
    rt.store(*v, std::uint64_t{2});
    EXPECT_EQ(buf.payloadBytes(), 16u);
}

TEST_F(TraceTest, StageRecorded)
{
    EXPECT_EQ(rt.stage(), Stage::PreFailure);
    TraceBuffer b2;
    PmRuntime rt2(pool, b2, Stage::PostFailure);
    EXPECT_EQ(rt2.stage(), Stage::PostFailure);
}

} // namespace
