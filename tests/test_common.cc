/**
 * @file
 * Unit tests for the common utilities: formatting, verbosity control,
 * and the deterministic RNG the workloads depend on for reproducible
 * traces.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace
{

using namespace xfd;

TEST(StrPrintf, FormatsLikePrintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strprintf("%%"), "%");
    EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(StrPrintf, LongStringsDoNotTruncate)
{
    std::string big(5000, 'a');
    std::string out = strprintf("[%s]", big.c_str());
    EXPECT_EQ(out.size(), big.size() + 2);
    EXPECT_EQ(out.front(), '[');
    EXPECT_EQ(out.back(), ']');
}

TEST(Verbosity, ToggleRoundTrips)
{
    bool before = verbose();
    setVerbose(false);
    EXPECT_FALSE(verbose());
    setVerbose(true);
    EXPECT_TRUE(verbose());
    setVerbose(before);
}

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_LT(same, 4);
}

TEST(RngTest, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng r(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; i++) {
        std::uint64_t v = r.below(10);
        EXPECT_LT(v, 10u);
        seen.insert(v);
    }
    // Not a statistical test, just sanity: all buckets reachable.
    EXPECT_EQ(seen.size(), 10u);
}

TEST(TypesTest, LineBaseCoversBoundaries)
{
    EXPECT_EQ(lineBase(defaultPoolBase), defaultPoolBase);
    EXPECT_EQ(lineBase(defaultPoolBase + 63), defaultPoolBase);
    EXPECT_EQ(lineBase(defaultPoolBase + 64), defaultPoolBase + 64);
}

TEST(TypesTest, DefaultPoolBaseMatchesPaperHint)
{
    // The paper sets PMEM_MMAP_HINT=0x10000000000 in its artifact.
    EXPECT_EQ(defaultPoolBase, 0x10000000000ull);
    EXPECT_EQ(defaultPoolBase % cacheLineSize, 0u);
}

} // namespace
