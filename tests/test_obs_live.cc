/**
 * @file
 * Live-telemetry and phase-profiler tests: sliding-window rate and
 * latency math, deterministic snapshot goldens (test clocks),
 * Prometheus text conformance, the HTTP responder's bodies, JSONL
 * streaming, ETA anchoring, finding-provenance round-trips through
 * the report JSON, and the serial/parallel phase-accounting
 * invariants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "core/campaign_json.hh"
#include "core/driver.hh"
#include "core/explain.hh"
#include "core/observer.hh"
#include "harness.hh"
#include "obs/json.hh"
#include "obs/live.hh"
#include "obs/phase_profiler.hh"
#include "obs/progress.hh"
#include "obs/serve.hh"
#include "testutil_json.hh"
#include "trace/runtime.hh"
#include "trace/subset.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using xfdtest::Json;
using xfdtest::parseJson;

TEST(RateWindow, SumAndRateOverExplicitSeconds)
{
    obs::RateWindow w(64);
    w.note(3, 0);
    w.note(2, 0);
    EXPECT_EQ(w.total(), 5u);
    EXPECT_EQ(w.sumLast(1, 0), 5u);

    w.note(4, 1);
    EXPECT_EQ(w.sumLast(1, 1), 4u);
    EXPECT_EQ(w.sumLast(2, 1), 9u);
    EXPECT_DOUBLE_EQ(w.ratePerSec(1, 1), 4.0);
    EXPECT_DOUBLE_EQ(w.ratePerSec(10, 1), 0.9);
    EXPECT_DOUBLE_EQ(w.ratePerSec(0, 1), 0.0);
}

TEST(RateWindow, RollForgetsOldSecondsButNotTheTotal)
{
    obs::RateWindow w(4);
    EXPECT_EQ(w.capacity(), 4u);
    for (std::int64_t s = 0; s < 4; s++)
        w.note(1, s);
    EXPECT_EQ(w.sumLast(4, 3), 4u);

    // Second 4 reuses second 0's ring slot.
    w.note(10, 4);
    EXPECT_EQ(w.sumLast(4, 4), 13u);
    EXPECT_EQ(w.total(), 14u);

    // A gap longer than the ring empties the window entirely.
    EXPECT_EQ(w.sumLast(4, 100), 0u);
    EXPECT_EQ(w.total(), 14u);

    // k beyond the capacity clamps instead of double-counting.
    w.note(2, 100);
    EXPECT_EQ(w.sumLast(1000, 100), 2u);
}

TEST(LatencyWindow, MergeBucketsMatchHistogramSemantics)
{
    obs::LatencyWindow w(64, 32);
    w.note(1.0, 0);
    w.note(3.0, 0);
    w.note(1000.0, 0);

    auto m = w.mergeLast(10, 0);
    EXPECT_EQ(m.count, 3u);
    EXPECT_DOUBLE_EQ(m.sum, 1004.0);
    EXPECT_DOUBLE_EQ(m.maxVal, 1000.0);
    // Same bucketing as obs::Histogram: [0,2), [2,4), ..., [512,1024).
    EXPECT_EQ(m.buckets[0], 1u);
    EXPECT_EQ(m.buckets[1], 1u);
    EXPECT_EQ(m.buckets[9], 1u);

    // Quantiles report the holding bucket's upper bound, clamped by
    // the observed max.
    EXPECT_DOUBLE_EQ(m.quantile(0.50), 4.0);
    EXPECT_DOUBLE_EQ(m.quantile(0.99), 1000.0);
    EXPECT_DOUBLE_EQ(obs::LatencyWindow::Merged{}.quantile(0.5), 0.0);
}

TEST(LatencyWindow, SamplesExpireWithTheirSecond)
{
    obs::LatencyWindow w(4);
    w.note(5.0, 0);
    EXPECT_EQ(w.mergeLast(4, 0).count, 1u);
    EXPECT_EQ(w.mergeLast(4, 10).count, 0u);
    EXPECT_EQ(w.totalCount(), 1u);
}

TEST(LiveMetrics, DisabledFeedsAreDropped)
{
    obs::LiveMetrics lm;
    EXPECT_FALSE(lm.enabled());
    lm.count("fp");
    lm.gauge("g", 1);
    lm.sample("lat", 2);
    auto snap = lm.snapshot();
    EXPECT_TRUE(snap.counters.empty());
    EXPECT_TRUE(snap.gauges.empty());
    EXPECT_TRUE(snap.hists.empty());
}

/** One deterministic registry all snapshot/export tests share. */
obs::LiveMetrics &
frozenMetrics()
{
    static obs::LiveMetrics *lm = [] {
        auto *m = new obs::LiveMetrics;
        m->setEnabled(true);
        m->setClockForTest([] { return std::int64_t{5}; });
        m->setWallClockForTest([] { return 1234.5; });
        m->count("fp", 3);
        m->gauge("g", 2.5);
        m->sample("lat", 3.0);
        return m;
    }();
    return *lm;
}

TEST(LiveSnapshot, JsonGoldenWithTestClocks)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    frozenMetrics().snapshot(10).writeJson(w);
    EXPECT_EQ(os.str(),
              "{\"schema\":\"xfd-live-v1\",\"wall_time\":1234.5,"
              "\"uptime_seconds\":5,\"window_seconds\":10,"
              "\"counters\":{\"fp\":{\"total\":3,\"per_sec_1s\":3,"
              "\"per_sec_10s\":0.3,\"per_sec_60s\":0.05}},"
              "\"gauges\":{\"g\":2.5},"
              "\"histograms\":{\"lat\":{\"count\":1,\"sum\":3,"
              "\"max\":3,\"p50\":3,\"p90\":3,\"p99\":3,"
              "\"buckets\":[0,1]}}}");
}

TEST(LiveSnapshot, PrometheusTextConformance)
{
    std::ostringstream os;
    frozenMetrics().snapshot(10).writePrometheus(os);
    const std::string text = os.str();

    // Counters: lifetime _total plus windowed per-second gauges.
    EXPECT_NE(text.find("# TYPE xfd_fp_total counter\n"
                        "xfd_fp_total 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("xfd_fp_per_sec{window=\"1s\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("xfd_fp_per_sec{window=\"10s\"} 0.3\n"),
              std::string::npos);

    // Gauges.
    EXPECT_NE(text.find("# TYPE xfd_g gauge\nxfd_g 2.5\n"),
              std::string::npos);

    // Histograms: cumulative buckets, then +Inf == _count, _sum.
    EXPECT_NE(text.find("# TYPE xfd_lat histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("xfd_lat_bucket{le=\"2\"} 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("xfd_lat_bucket{le=\"4\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("xfd_lat_bucket{le=\"+Inf\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("xfd_lat_sum 3\n"), std::string::npos);
    EXPECT_NE(text.find("xfd_lat_count 1\n"), std::string::npos);

    // Every line is either a comment or an xfd_-prefixed sample.
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_TRUE(line[0] == '#' || line.rfind("xfd_", 0) == 0)
            << line;
    }
}

TEST(LiveSnapshot, PromNameSanitizesToMetricCharset)
{
    EXPECT_EQ(obs::promName("phase.restore_us"),
              "xfd_phase_restore_us");
    EXPECT_EQ(obs::promName("A-b.9"), "xfd_a_b_9");
}

TEST(LiveServer, RenderBodiesWithoutSockets)
{
    obs::LiveServer srv(frozenMetrics());
    EXPECT_EQ(srv.renderBody("/metrics").rfind("# HELP xfd_up", 0), 0u);

    Json snap = parseJson(srv.renderBody("/snapshot"));
    EXPECT_EQ(snap.at("schema").str, "xfd-live-v1");
    EXPECT_EQ(snap.at("counters").at("fp").at("total").num, 3);

    EXPECT_NE(srv.renderBody("/").find("/metrics"), std::string::npos);
    EXPECT_TRUE(srv.renderBody("/nope").empty());
}

TEST(LiveServer, BindsEphemeralPortAndStops)
{
    obs::LiveMetrics lm;
    obs::LiveServer srv(lm);
    std::string err;
    ASSERT_TRUE(srv.start(0, &err)) << err;
    EXPECT_GT(srv.port(), 0);
    EXPECT_TRUE(srv.running());
    srv.stop();
    EXPECT_FALSE(srv.running());
    srv.stop(); // idempotent
}

TEST(LiveSession, StreamsAtLeastOneFinalJsonlLine)
{
    std::string path =
        ::testing::TempDir() + "/xfd_live_stream.jsonl";
    obs::LiveMetrics lm;
    {
        obs::LiveSession::Options opts;
        opts.jsonlPath = path;
        obs::LiveSession session(lm, opts);
        ASSERT_TRUE(session.ok()) << session.error();
        EXPECT_TRUE(lm.enabled());
        lm.count("fp", 7);
    }
    // Teardown disables the registry and flushes a final snapshot.
    EXPECT_FALSE(lm.enabled());
    std::ifstream in(path);
    std::string line, last;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        last = line;
        lines++;
    }
    ASSERT_GE(lines, 1u);
    Json doc = parseJson(last);
    EXPECT_EQ(doc.at("schema").str, "xfd-live-v1");
    EXPECT_EQ(doc.at("counters").at("fp").at("total").num, 7);
}

TEST(Progress, EtaPricesOnlyWorkSinceTheFirstUpdate)
{
    // 10 units in 10 s since the anchor, 50 left: 50 s to go. The
    // anchor excludes trace capture / planning / lint pruning, which
    // used to inflate the rate's denominator.
    EXPECT_DOUBLE_EQ(obs::etaSeconds(10, 60, 50, 110), 50.0);
    EXPECT_DOUBLE_EQ(obs::etaSeconds(5, 20, 10, 30), 5.0);
    // No rate yet, done, or a zero interval: no estimate.
    EXPECT_DOUBLE_EQ(obs::etaSeconds(10, 50, 50, 110), 0.0);
    EXPECT_DOUBLE_EQ(obs::etaSeconds(10, 110, 50, 110), 0.0);
    EXPECT_DOUBLE_EQ(obs::etaSeconds(0, 60, 50, 110), 0.0);
}

/**
 * Minimal cross-failure race: `payload` is written between two
 * fences but never written back, so it is in flight at the second
 * ordering point; recovery reads it. Each field sits on its own
 * cache line so no neighbouring flush persists it by accident.
 */
struct RaceRoot
{
    std::int64_t committed;
    std::uint8_t pad0[56];
    std::int64_t payload;
    std::uint8_t pad1[56];
    std::int64_t seal;
};

core::CampaignResult
runRaceCampaign(core::DetectorConfig cfg = {},
                core::CampaignObserver *obs = nullptr)
{
    auto root = [](trace::PmRuntime &rt) {
        return static_cast<RaceRoot *>(
            rt.pool().toHost(rt.pool().base()));
    };
    xfdtest::RunOptions opt;
    opt.detector = cfg;
    opt.observer = obs;
    return xfdtest::runCampaign(
        [&](trace::PmRuntime &rt) {
            RaceRoot *r = root(rt);
            trace::RoiScope roi(rt);
            rt.store(r->committed, std::int64_t{1});
            rt.persistBarrier(&r->committed, 8);
            rt.store(r->payload, std::int64_t{42});
            rt.store(r->seal, std::int64_t{1});
            rt.persistBarrier(&r->seal, 8);
        },
        [&](trace::PmRuntime &rt) {
            RaceRoot *r = root(rt);
            trace::RoiScope roi(rt);
            (void)rt.load(r->payload);
        },
        opt);
}

TEST(Provenance, RoundTripsThroughReportJsonAndExplain)
{
    auto res = runRaceCampaign();
    ASSERT_FALSE(res.bugs.empty()) << res.summary();

    // Locate a finding that carries a causal chain.
    std::size_t idx = res.bugs.size();
    for (std::size_t i = 0; i < res.bugs.size(); i++) {
        if (!res.bugs[i].frontierSeqs.empty()) {
            idx = i;
            break;
        }
    }
    ASSERT_LT(idx, res.bugs.size()) << res.summary();
    const core::BugReport &bug = res.bugs[idx];

    // Report JSON carries the same chain under "provenance".
    std::ostringstream os;
    core::writeReportJson(res, os);
    Json doc = parseJson(os.str());
    const Json &finding = doc.at("findings").arr[idx];
    EXPECT_EQ(finding.at("id").str,
              "F" + std::to_string(idx + 1));
    const Json &prov = finding.at("provenance");
    const auto &seqs = prov.at("frontier_seqs").arr;
    ASSERT_EQ(seqs.size(), bug.frontierSeqs.size());
    EXPECT_EQ(prov.at("frontier_size").num,
              static_cast<double>(seqs.size()));
    for (std::size_t i = 0; i < seqs.size(); i++)
        EXPECT_EQ(seqs[i].num, bug.frontierSeqs[i]);

    // The mask hex parses back over exactly frontier_size bits; the
    // paper's footnote-3 image keeps every in-flight write.
    trace::SubsetMask mask;
    ASSERT_TRUE(trace::SubsetMask::fromHex(
        prov.at("persisted_mask").str, seqs.size(), mask));
    EXPECT_EQ(mask, bug.persistedMask);
    EXPECT_TRUE(mask.all());

    // --explain renders the same chain, seq by seq.
    std::string err;
    std::string text = core::renderExplain(
        res, "F" + std::to_string(idx + 1), nullptr, &err);
    ASSERT_FALSE(text.empty()) << err;
    EXPECT_NE(text.find("=== F" + std::to_string(idx + 1)),
              std::string::npos);
    for (std::uint32_t seq : bug.frontierSeqs) {
        EXPECT_NE(text.find("seq " + std::to_string(seq)),
                  std::string::npos)
            << text;
    }

    // Bare indices work; bad selectors error without output.
    EXPECT_EQ(core::renderExplain(res, std::to_string(idx + 1),
                                  nullptr, &err),
              text);
    EXPECT_TRUE(
        core::renderExplain(res, "F999", nullptr, &err).empty());
    EXPECT_FALSE(err.empty());
}

TEST(Provenance, CrashImageModeRecordsAnEmptyPersistedMask)
{
    core::DetectorConfig cfg;
    cfg.crashImageMode = true;
    auto res = runRaceCampaign(cfg);
    bool saw = false;
    for (const auto &b : res.bugs) {
        if (b.frontierSeqs.empty())
            continue;
        saw = true;
        EXPECT_EQ(b.persistedMask.size(), b.frontierSeqs.size());
        EXPECT_TRUE(b.persistedMask.none());
    }
    EXPECT_TRUE(saw) << res.summary();
}

core::CampaignResult
runPhased(unsigned threads, core::CampaignObserver &obs)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 5;
    cfg.postOps = 2;
    xfdtest::RunOptions opt;
    opt.threads = threads;
    opt.observer = &obs;
    return xfdtest::runWorkload("hashmap_tx", cfg, opt);
}

TEST(PhaseProfiler, SerialTotalsAttributeAllBackendSeconds)
{
    core::CampaignObserver obs;
    auto res = runPhased(1, obs);
    const obs::PhaseTotals &ph = res.stats.phases;

    auto n = [&](obs::Phase p) {
        return ph.count[static_cast<std::size_t>(p)];
    };
    EXPECT_EQ(n(obs::Phase::TraceCapture), 1u);
    EXPECT_GE(n(obs::Phase::Plan), 1u);
    EXPECT_EQ(n(obs::Phase::Restore), res.stats.failurePoints);
    EXPECT_EQ(n(obs::Phase::RecoveryExec), res.stats.postExecutions);
    EXPECT_GE(n(obs::Phase::Classify), res.stats.failurePoints);
    EXPECT_EQ(n(obs::Phase::Oracle), 0u);

    // Restore + classify wrap exactly the intervals the driver adds
    // to backendSeconds, so a serial campaign attributes 100% of it
    // (up to summation order).
    EXPECT_NEAR(ph.backendAttributed(), res.stats.backendSeconds,
                1e-9 + 1e-9 * res.stats.backendSeconds);
    EXPECT_GE(ph.total(), ph.backendAttributed());
}

TEST(PhaseProfiler, ScopedTimerCountsAreThreadCountInvariant)
{
    core::CampaignObserver serial_obs, par_obs;
    auto serial = runPhased(1, serial_obs);
    auto par = runPhased(4, par_obs);
    EXPECT_EQ(serial.stats.phases.count, par.stats.phases.count);
}

TEST(PhaseProfiler, ExportedStatsAndJsonMirrorTheTotals)
{
    core::CampaignObserver obs;
    auto res = runPhased(1, obs);
    const obs::PhaseTotals &ph = res.stats.phases;

    if (obs::statsCompiledIn) {
        const obs::StatsRegistry &reg = obs.stats;
        EXPECT_EQ(reg.value("campaign.phase.restore_seconds"),
                  ph.seconds[static_cast<std::size_t>(
                      obs::Phase::Restore)]);
        EXPECT_EQ(reg.value("campaign.phase.classify_count"),
                  static_cast<double>(
                      ph.count[static_cast<std::size_t>(
                          obs::Phase::Classify)]));
        EXPECT_EQ(reg.value("campaign.phase.total_seconds"),
                  ph.total());
        EXPECT_NEAR(
            reg.value("campaign.phase.backend_attribution"), 1.0,
            1e-6);
    }

    // The stats document exposes the same breakdown per phase.
    std::ostringstream os;
    core::writeStatsJson(res, &obs.stats, os);
    Json doc = parseJson(os.str());
    const Json &camp = doc.at("campaign");
    const Json &phases = camp.at("phases");
    EXPECT_NE(phases.find("trace_capture"), nullptr);
    EXPECT_EQ(phases.at("restore").at("count").num,
              static_cast<double>(res.stats.failurePoints));
    EXPECT_EQ(phases.find("oracle"), nullptr);
    EXPECT_NEAR(camp.at("backend_attribution").num, 1.0, 1e-6);

    // ScopedPhase attributes to its phase; a null sink is a no-op.
    obs::PhaseTotals t;
    {
        obs::ScopedPhase timer(&t, obs::Phase::Plan);
    }
    EXPECT_EQ(t.count[static_cast<std::size_t>(obs::Phase::Plan)], 1u);
    obs::ScopedPhase noop(nullptr, obs::Phase::Plan);
    EXPECT_DOUBLE_EQ(noop.stop(), 0.0);
}

} // namespace
