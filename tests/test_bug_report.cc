/**
 * @file
 * Unit tests for bug reporting: deduplication keys, occurrence
 * accumulation, cross-sink merging (parallel detection), counting,
 * and report rendering.
 */

#include <gtest/gtest.h>

#include "core/bug_report.hh"

namespace
{

using namespace xfd;
using core::BugReport;
using core::BugSink;
using core::BugType;

BugReport
mk(BugType t, unsigned reader_line, unsigned writer_line,
   const char *note = "", Addr addr = 0x100)
{
    BugReport r;
    r.type = t;
    r.addr = addr;
    r.size = 8;
    r.reader = {"reader.cc", reader_line, "f"};
    r.writer = {"writer.cc", writer_line, "g"};
    r.note = note;
    return r;
}

TEST(BugSinkTest, DistinctLinePairsAreDistinctFindings)
{
    BugSink sink;
    sink.report(mk(BugType::CrossFailureRace, 1, 2));
    sink.report(mk(BugType::CrossFailureRace, 1, 3));
    sink.report(mk(BugType::CrossFailureRace, 4, 2));
    EXPECT_EQ(sink.size(), 3u);
}

TEST(BugSinkTest, SameSiteAccumulatesOccurrences)
{
    BugSink sink;
    for (int i = 0; i < 5; i++)
        sink.report(mk(BugType::CrossFailureRace, 1, 2));
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.bugs()[0].occurrences, 5u);
}

TEST(BugSinkTest, TypeDistinguishesFindings)
{
    BugSink sink;
    sink.report(mk(BugType::CrossFailureRace, 1, 2));
    sink.report(mk(BugType::CrossFailureSemantic, 1, 2));
    EXPECT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.count(BugType::CrossFailureRace), 1u);
    EXPECT_EQ(sink.count(BugType::CrossFailureSemantic), 1u);
}

TEST(BugSinkTest, NoteDistinguishesFindings)
{
    BugSink sink;
    sink.report(mk(BugType::CrossFailureSemantic, 1, 2, "stale"));
    sink.report(mk(BugType::CrossFailureSemantic, 1, 2, "uncommitted"));
    EXPECT_EQ(sink.size(), 2u);
}

TEST(BugSinkTest, RecoveryFailureKeyedByReaderOnly)
{
    BugSink sink;
    // Different "writers" (failure points) must still collapse.
    sink.report(mk(BugType::RecoveryFailure, 1, 10, "open failed"));
    sink.report(mk(BugType::RecoveryFailure, 1, 20, "open failed"));
    ASSERT_EQ(sink.size(), 1u);
    EXPECT_EQ(sink.bugs()[0].occurrences, 2u);
}

TEST(BugSinkTest, MergeAccumulatesAcrossSinks)
{
    BugSink a, b;
    a.report(mk(BugType::CrossFailureRace, 1, 2));
    a.report(mk(BugType::CrossFailureRace, 1, 2));
    b.report(mk(BugType::CrossFailureRace, 1, 2));
    b.report(mk(BugType::Performance, 3, 0));
    a.merge(b);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.bugs()[0].occurrences, 3u);
    EXPECT_EQ(a.count(BugType::Performance), 1u);
}

TEST(BugSinkTest, ClearEmpties)
{
    BugSink sink;
    sink.report(mk(BugType::CrossFailureRace, 1, 2));
    sink.clear();
    EXPECT_TRUE(sink.empty());
    sink.report(mk(BugType::CrossFailureRace, 1, 2));
    EXPECT_EQ(sink.size(), 1u);
}

TEST(BugReportStr, ContainsTypeAndSites)
{
    BugReport r = mk(BugType::CrossFailureRace, 12, 34, "a note");
    std::string s = r.str();
    EXPECT_NE(s.find("CROSS-FAILURE RACE"), std::string::npos);
    EXPECT_NE(s.find("reader.cc:12"), std::string::npos);
    EXPECT_NE(s.find("writer.cc:34"), std::string::npos);
    EXPECT_NE(s.find("a note"), std::string::npos);
}

TEST(BugTypeNames, AllDistinct)
{
    std::set<std::string> names;
    names.insert(core::bugTypeName(BugType::CrossFailureRace));
    names.insert(core::bugTypeName(BugType::CrossFailureSemantic));
    names.insert(core::bugTypeName(BugType::Performance));
    names.insert(core::bugTypeName(BugType::RecoveryFailure));
    EXPECT_EQ(names.size(), 4u);
}

} // namespace
