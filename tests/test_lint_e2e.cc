/**
 * @file
 * Whole-pipeline coverage for xfd-lint: the paper's two
 * performance-bug classes found statically across the bug suite,
 * pruning preserving the exact finding set over every workload and
 * every bug-suite entry, serial/parallel lint identity, a seeded fuzz
 * sweep over random campaign configurations (XFD_FUZZ_SEED replays),
 * and the oracle re-checking every pruned point at full agreement.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bugsuite/registry.hh"
#include "common/rng.hh"
#include "core/failure_planner.hh"
#include "harness.hh"
#include "lint/lint.hh"
#include "obs/json.hh"
#include "oracle/diff.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using lint::LintReport;
using lint::Rule;
using trace::PmRuntime;
using trace::TraceBuffer;
using xfdtest::RunOptions;

/** Small-scale config keeping the sweeps fast. */
workloads::WorkloadConfig
smallConfig(const std::string &name)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 3;
    wcfg.testOps = 3;
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;
    return wcfg;
}

/**
 * Pre-failure trace of one campaign over @p wcfg. A single failure
 * point is enough: the trace is complete before injection starts.
 */
TraceBuffer
captureTrace(const std::string &workload,
             workloads::WorkloadConfig wcfg, unsigned threads = 1)
{
    TraceBuffer captured;
    core::CampaignObserver obs;
    obs.onPreTraceReady = [&captured](const TraceBuffer &b) {
        captured = b;
    };
    RunOptions opt;
    opt.observer = &obs;
    opt.threads = threads;
    opt.detector.maxFailurePoints = 1;
    xfdtest::runWorkload(workload, std::move(wcfg), opt);
    return captured;
}

/** Lint @p buf with the planner's failure points supplied. */
LintReport
lintWithPlan(const TraceBuffer &buf)
{
    core::DetectorConfig dcfg;
    core::FailurePlan plan = core::planFailurePoints(buf, dcfg);
    lint::LintConfig lcfg;
    return lint::runLint(buf, lcfg, &plan.points);
}

TEST(LintE2E, CleanWorkloadsLintClean)
{
    // The stock (bug-free) workloads follow the write->flush->fence
    // discipline; the lint pass must not cry wolf on them.
    for (const std::string &name : workloads::workloadNames()) {
        SCOPED_TRACE(name);
        TraceBuffer buf = captureTrace(name, smallConfig(name));
        ASSERT_FALSE(buf.empty());
        LintReport rep = lintWithPlan(buf);
        EXPECT_EQ(rep.diagnostics.size(), 0u)
            << lint::renderText(rep);
    }
}

TEST(LintE2E, PaperPerfBugClassesFoundStatically)
{
    // Table 5's two performance-bug classes — duplicated TX_ADD and
    // redundant flush — must fall out of the static pass alone, with
    // no post-failure execution, on every suite entry of those
    // classes.
    std::size_t swept = 0;
    for (const auto &c : bugsuite::allBugCases()) {
        if (c.expected != bugsuite::Expected::Performance)
            continue;
        SCOPED_TRACE(c.id);
        workloads::WorkloadConfig wcfg;
        wcfg.initOps = c.initOps;
        wcfg.testOps = c.testOps;
        wcfg.postOps = c.postOps;
        wcfg.roiFromStart = c.roiFromStart;
        if (c.workload == "memcached")
            wcfg.memcachedCapacity = 8;
        wcfg.bugs.enable(c.id);
        TraceBuffer buf = captureTrace(c.workload, std::move(wcfg));
        LintReport rep = lintWithPlan(buf);

        bool duplicateAddClass =
            c.id.find(".double_add") != std::string::npos;
        Rule expected = duplicateAddClass ? Rule::DuplicateTxAdd
                                          : Rule::RedundantWriteback;
        EXPECT_GT(rep.count(expected), 0u)
            << "expected " << lint::ruleId(expected) << " for " << c.id
            << "\n"
            << lint::renderText(rep);
        swept++;
    }
    EXPECT_GE(swept, 8u); // the suite's performance entries
}

TEST(LintE2E, SerialAndParallelCampaignsLintIdentically)
{
    TraceBuffer serial = captureTrace("btree", smallConfig("btree"), 1);
    TraceBuffer parallel =
        captureTrace("btree", smallConfig("btree"), 4);

    LintReport a = lintWithPlan(serial);
    LintReport b = lintWithPlan(parallel);
    EXPECT_EQ(lint::renderText(a), lint::renderText(b));

    std::ostringstream ja, jb;
    {
        obs::JsonWriter w(ja);
        lint::writeLintJson(a, w);
    }
    {
        obs::JsonWriter w(jb);
        lint::writeLintJson(b, w);
    }
    EXPECT_EQ(ja.str(), jb.str());
}

/** Campaign over @p wcfg, with or without signature batching. */
core::CampaignResult
runPruned(const std::string &workload,
          const workloads::WorkloadConfig &wcfg, bool prune,
          unsigned threads = 2)
{
    RunOptions opt;
    opt.threads = threads;
    opt.detector.backend = prune ? "batched" : "delta";
    return xfdtest::runWorkload(workload, wcfg, opt);
}

TEST(LintE2E, PruningPreservesFindingsAcrossWorkloads)
{
    // The acceptance bar: identical finding fingerprints with and
    // without pruning on all workloads, and at least a 20% prune rate
    // on two of them.
    std::size_t deepPrunes = 0;
    for (const std::string &name : workloads::workloadNames()) {
        SCOPED_TRACE(name);
        workloads::WorkloadConfig wcfg = smallConfig(name);
        core::CampaignResult off = runPruned(name, wcfg, false);
        core::CampaignResult on = runPruned(name, wcfg, true);

        EXPECT_EQ(off.stats.lintPrunedPoints, 0u);
        // ringlog's frontier signatures embed its monotonically
        // increasing counters, so no two failure points fold.
        if (name != "ringlog") {
            EXPECT_GT(on.stats.lintPrunedPoints, 0u);
        }
        EXPECT_EQ(xfdtest::fingerprint(off), xfdtest::fingerprint(on))
            << "pruned campaign changed the finding set\n"
            << off.summary() << on.summary();

        std::size_t total =
            on.stats.failurePoints + on.stats.lintPrunedPoints;
        ASSERT_GT(total, 0u);
        if (static_cast<double>(on.stats.lintPrunedPoints) /
                static_cast<double>(total) >=
            0.2) {
            deepPrunes++;
        }
    }
    EXPECT_GE(deepPrunes, 2u);
}

TEST(LintE2E, PruningPreservesFindingsAcrossBugSuite)
{
    // Every synthetic defect: the pruned campaign must report exactly
    // the findings the full campaign reports — the planted bug is
    // never lost to a pruned point.
    for (const auto &c : bugsuite::allBugCases()) {
        SCOPED_TRACE(c.id.empty() ? c.workload : c.id);
        core::DetectorConfig off;
        core::CampaignResult full = bugsuite::runBugCase(c, off);

        core::DetectorConfig on;
        on.backend = "batched";
        core::CampaignResult pruned = bugsuite::runBugCase(c, on);

        EXPECT_EQ(xfdtest::fingerprint(full),
                  xfdtest::fingerprint(pruned))
            << full.summary() << pruned.summary();
        EXPECT_EQ(bugsuite::detected(c, full),
                  bugsuite::detected(c, pruned));
    }
}

void
fuzzOne(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::string> names = workloads::workloadNames();
    const std::string name = names[rng.below(names.size())];
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 1 + static_cast<unsigned>(rng.below(6));
    wcfg.testOps = 1 + static_cast<unsigned>(rng.below(6));
    wcfg.postOps = 1 + static_cast<unsigned>(rng.below(4));
    wcfg.seed = rng.next();
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;

    core::CampaignResult off = runPruned(name, wcfg, false);
    core::CampaignResult on = runPruned(name, wcfg, true);
    EXPECT_EQ(xfdtest::fingerprint(off), xfdtest::fingerprint(on))
        << name << " XFD_FUZZ_SEED=" << seed << "\n"
        << off.summary() << on.summary();
}

TEST(LintFuzz, RandomCampaignsPruneSafely)
{
    for (std::uint64_t seed = 1; seed <= 10; seed++) {
        SCOPED_TRACE(seed);
        fuzzOne(seed);
    }
}

TEST(LintFuzzReplay, ReplayFromEnv)
{
    std::uint64_t s = 0;
    if (!xfdtest::fuzzSeedFromEnv(s))
        GTEST_SKIP()
            << "set XFD_FUZZ_SEED=<seed from a failure message> to "
               "replay a single fuzz campaign";
    fuzzOne(s);
}

TEST(LintOracle, PrunedPointsRecheckedAtFullAgreement)
{
    // The prune rule's ground truth: the oracle runs every pruned
    // point for real and compares against the kept representative's
    // classes; any disagreement falsifies the static rule.
    for (const std::string name : {"btree", "hashmap_atomic"}) {
        SCOPED_TRACE(name);
        std::shared_ptr<workloads::Workload> w =
            workloads::makeWorkload(name, smallConfig(name));
        pm::PmPool pool(xfdtest::defaultPoolBytes);
        oracle::DiffConfig cfg;
        cfg.detector.backend = "batched";
        oracle::DiffReport rep = oracle::runDifferentialCampaign(
            pool, [w](PmRuntime &rt) { w->pre(rt); },
            [w](PmRuntime &rt) { w->post(rt); }, cfg);

        EXPECT_GT(rep.prunedRechecked, 0u);
        EXPECT_EQ(rep.disagreements, 0u) << rep.summary();
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0);
    }
}

} // namespace
