/**
 * @file
 * Minimal JSON document model + recursive-descent parser for tests —
 * enough to validate our exporters without external dependencies.
 * Shared by test_obs.cc and test_obs_live.cc.
 */

#ifndef XFD_TESTS_TESTUTIL_JSON_HH
#define XFD_TESTS_TESTUTIL_JSON_HH

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace xfdtest
{

struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::vector<std::pair<std::string, Json>> obj;

    const Json *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj) {
            if (k == key)
                return &v;
        }
        return nullptr;
    }

    const Json &
    at(const std::string &key) const
    {
        const Json *v = find(key);
        if (!v)
            throw std::runtime_error("missing key: " + key);
        return *v;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos != s.size())
            throw std::runtime_error("trailing garbage");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(
                                     static_cast<unsigned char>(s[pos])))
            pos++;
    }

    char
    peek()
    {
        if (pos >= s.size())
            throw std::runtime_error("unexpected end");
        return s[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            throw std::runtime_error(std::string("expected ") + c);
        pos++;
    }

    bool
    consume(const char *lit)
    {
        std::size_t n = std::strlen(lit);
        if (s.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (peek() != '"') {
            char c = s[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = static_cast<unsigned>(
                    std::strtoul(s.substr(pos, 4).c_str(), nullptr, 16));
                pos += 4;
                // Test inputs only use ASCII escapes.
                out += static_cast<char>(code);
                break;
              }
              default:
                throw std::runtime_error("bad escape");
            }
        }
        pos++;
        return out;
    }

    Json
    parseValue()
    {
        skipWs();
        Json v;
        char c = peek();
        if (c == '{') {
            pos++;
            v.kind = Json::Obj;
            skipWs();
            if (peek() == '}') {
                pos++;
                return v;
            }
            while (true) {
                skipWs();
                std::string key = parseString();
                skipWs();
                expect(':');
                v.obj.emplace_back(std::move(key), parseValue());
                skipWs();
                if (peek() == ',') {
                    pos++;
                    continue;
                }
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            pos++;
            v.kind = Json::Arr;
            skipWs();
            if (peek() == ']') {
                pos++;
                return v;
            }
            while (true) {
                v.arr.push_back(parseValue());
                skipWs();
                if (peek() == ',') {
                    pos++;
                    continue;
                }
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.kind = Json::Str;
            v.str = parseString();
            return v;
        }
        if (consume("true")) {
            v.kind = Json::Bool;
            v.b = true;
            return v;
        }
        if (consume("false")) {
            v.kind = Json::Bool;
            v.b = false;
            return v;
        }
        if (consume("null"))
            return v;
        v.kind = Json::Num;
        char *end = nullptr;
        v.num = std::strtod(s.c_str() + pos, &end);
        if (end == s.c_str() + pos)
            throw std::runtime_error("bad number");
        pos = static_cast<std::size_t>(end - s.c_str());
        return v;
    }

    const std::string &s;
    std::size_t pos = 0;
};

inline Json
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace xfdtest

#endif // XFD_TESTS_TESTUTIL_JSON_HH
