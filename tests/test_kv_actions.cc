/**
 * @file
 * Tests for the shared operation-sequence generator and its reference
 * model — the ground truth every workload's verify() compares against.
 */

#include <gtest/gtest.h>

#include "workloads/kv_actions.hh"

namespace
{

using namespace xfd;
using workloads::kvActions;
using workloads::KvAction;
using workloads::kvExpected;
using workloads::KvOp;
using workloads::WorkloadConfig;

TEST(KvActions, DeterministicForSameConfig)
{
    WorkloadConfig cfg;
    cfg.seed = 7;
    auto a = kvActions(cfg, 50);
    auto b = kvActions(cfg, 50);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].op, b[i].op);
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].val, b[i].val);
    }
}

TEST(KvActions, PrefixStability)
{
    // Extending the sequence must not change the prefix — workloads
    // rely on this to resume the stream in the post-failure stage.
    WorkloadConfig cfg;
    auto short_seq = kvActions(cfg, 20);
    auto long_seq = kvActions(cfg, 40);
    for (std::size_t i = 0; i < short_seq.size(); i++) {
        EXPECT_EQ(short_seq[i].op, long_seq[i].op);
        EXPECT_EQ(short_seq[i].key, long_seq[i].key);
    }
}

TEST(KvActions, InitPhaseIsAllInserts)
{
    WorkloadConfig cfg;
    cfg.initOps = 15;
    auto actions = kvActions(cfg, 15);
    for (const auto &a : actions)
        EXPECT_EQ(a.op, KvOp::Insert);
}

TEST(KvActions, TestPhaseMixesOperations)
{
    WorkloadConfig cfg;
    cfg.initOps = 5;
    auto actions = kvActions(cfg, 120);
    std::size_t inserts = 0, removes = 0, gets = 0;
    for (std::size_t i = cfg.initOps; i < actions.size(); i++) {
        switch (actions[i].op) {
          case KvOp::Insert: inserts++; break;
          case KvOp::Remove: removes++; break;
          case KvOp::Get: gets++; break;
        }
    }
    EXPECT_GT(inserts, 40u); // ~60%
    EXPECT_GT(removes, 5u);  // ~20%
    EXPECT_GT(gets, 5u);     // ~20%
}

TEST(KvActions, KeysAreNonZeroAndBounded)
{
    WorkloadConfig cfg;
    for (const auto &a : kvActions(cfg, 200)) {
        EXPECT_GE(a.key, 1u);
        EXPECT_LE(a.key, 64u);
    }
}

TEST(KvActions, RemovesTargetInsertedKeys)
{
    WorkloadConfig cfg;
    cfg.initOps = 10;
    auto actions = kvActions(cfg, 100);
    std::set<std::uint64_t> inserted;
    for (const auto &a : actions) {
        if (a.op == KvOp::Insert) {
            inserted.insert(a.key);
        } else if (a.op == KvOp::Remove) {
            EXPECT_TRUE(inserted.count(a.key)) << a.key;
        }
    }
}

TEST(KvActions, DifferentSeedsGiveDifferentStreams)
{
    WorkloadConfig a, b;
    a.seed = 1;
    b.seed = 2;
    auto sa = kvActions(a, 30);
    auto sb = kvActions(b, 30);
    unsigned same = 0;
    for (std::size_t i = 0; i < sa.size(); i++) {
        if (sa[i].key == sb[i].key)
            same++;
    }
    EXPECT_LT(same, 10u);
}

TEST(KvExpected, ModelTracksInsertRemoveUpdate)
{
    WorkloadConfig cfg;
    cfg.initOps = 10;
    auto model = kvExpected(cfg, 60);
    auto actions = kvActions(cfg, 60);
    // Independent replay must agree with kvExpected.
    std::map<std::uint64_t, std::uint64_t> replay;
    for (const auto &a : actions) {
        if (a.op == KvOp::Insert)
            replay[a.key] = a.val;
        else if (a.op == KvOp::Remove)
            replay.erase(a.key);
    }
    EXPECT_EQ(model, replay);
}

TEST(KvExpected, EmptyForZeroOps)
{
    WorkloadConfig cfg;
    EXPECT_TRUE(kvExpected(cfg, 0).empty());
}

} // namespace
