/**
 * @file
 * Persistent-allocator tests: bump and free-list paths, atomic
 * allocation publishing, and the detector-visible uninitialized-
 * allocation semantics (§6.3.2 bug 2).
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"

namespace
{

using namespace xfd;
using pmlib::ObjPool;
using trace::PmRuntime;
using trace::Stage;

struct AllocTest : ::testing::Test
{
    AllocTest() : pool(1 << 21), rt(pool, buf, Stage::PreFailure) {}

    ObjPool
    makePool()
    {
        return ObjPool::create(rt, "alloctest", 64);
    }

    pm::PmPool pool;
    trace::TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(AllocTest, BumpAllocationReturnsDistinctBlocks)
{
    ObjPool op = makePool();
    Addr a = op.heap().palloc(100);
    Addr b = op.heap().palloc(100);
    ASSERT_NE(a, 0u);
    ASSERT_NE(b, 0u);
    EXPECT_NE(a, b);
    EXPECT_GE(b, a + 100);
}

TEST_F(AllocTest, BlocksAreZeroed)
{
    ObjPool op = makePool();
    Addr a = op.heap().palloc(64);
    auto *p = static_cast<std::uint8_t *>(pool.toHost(a));
    for (int i = 0; i < 64; i++)
        EXPECT_EQ(p[i], 0u);
}

TEST_F(AllocTest, SizeRoundedUpAndRecorded)
{
    ObjPool op = makePool();
    Addr a = op.heap().palloc(5);
    EXPECT_EQ(op.heap().blockSize(a), 16u);
}

TEST_F(AllocTest, FreeListReuse)
{
    ObjPool op = makePool();
    Addr a = op.heap().palloc(128);
    std::size_t used = op.heap().bumpUsed();
    op.heap().pfree(a);
    Addr b = op.heap().palloc(64);
    EXPECT_EQ(b, a); // first fit reuses the freed block
    EXPECT_EQ(op.heap().bumpUsed(), used);
}

TEST_F(AllocTest, FreeListSkipsTooSmallBlocks)
{
    ObjPool op = makePool();
    Addr small = op.heap().palloc(16);
    Addr big = op.heap().palloc(256);
    op.heap().pfree(small);
    op.heap().pfree(big);
    Addr c = op.heap().palloc(200);
    EXPECT_EQ(c, big);
}

TEST_F(AllocTest, ExhaustionReturnsNull)
{
    ObjPool op = makePool();
    // Ask for more than the heap holds.
    Addr a = op.heap().palloc(pool.size());
    EXPECT_EQ(a, 0u);
}

TEST_F(AllocTest, AllocAtomicPublishesTarget)
{
    ObjPool op = makePool();
    auto *root = op.root<pm::PPtr<std::uint64_t>>();
    ASSERT_TRUE(op.heap().allocAtomic(*root, 64));
    EXPECT_FALSE(root->null());
    EXPECT_EQ(*root->get(pool), 0u);
}

TEST_F(AllocTest, AllocEmitsAnnotationAndImageOnlyZeroFill)
{
    ObjPool op = makePool();
    std::size_t before = buf.size();
    op.heap().palloc(32);
    bool saw_alloc = false, saw_zero = false;
    for (std::size_t i = before; i < buf.size(); i++) {
        if (buf[i].op == trace::Op::Alloc)
            saw_alloc = true;
        if (buf[i].isWrite() && buf[i].has(trace::flagImageOnly))
            saw_zero = true;
    }
    EXPECT_TRUE(saw_alloc);
    EXPECT_TRUE(saw_zero);
}

// ------------------------------------------------------------------
// Detector integration: relying on allocator zeroing is a race.
// ------------------------------------------------------------------

struct UninitCampaign
{
    /** When true, explicitly initialize (and persist) the counter. */
    bool initialize;

    void
    pre(PmRuntime &rt) const
    {
        ObjPool op = ObjPool::create(rt, "uninit", 64);
        trace::RoiScope roi(rt);
        auto *root = op.root<pm::PPtr<std::uint64_t>>();
        if (initialize) {
            // PMDK idiom: the constructor initializes the object
            // before it is published.
            op.heap().allocAtomic(
                *root, sizeof(std::uint64_t),
                [](PmRuntime &rt, std::uint64_t *counter) {
                    rt.store(*counter, std::uint64_t{0});
                });
        } else {
            op.heap().allocAtomic(*root, sizeof(std::uint64_t));
        }
        // One more ordering point so a failure can land after the
        // allocation completed.
        auto *pad = static_cast<std::uint64_t *>(
            rt.pool().toHost(op.rootAddr() + 8));
        rt.store(*pad, std::uint64_t{1});
        rt.persistBarrier(pad, 8);
    }

    void
    post(PmRuntime &rt) const
    {
        ObjPool op = ObjPool::open(rt, "uninit");
        trace::RoiScope roi(rt);
        auto *root = op.root<pm::PPtr<std::uint64_t>>();
        pm::PPtr<std::uint64_t> p = rt.load(*root);
        if (!p.null()) {
            // Reads the counter the allocator only implicitly zeroed.
            (void)rt.load(*p.get(rt.pool()));
        }
    }
};

TEST(AllocDetector, ReadingImplicitlyZeroedCounterIsRace)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    UninitCampaign prog{false};
    auto res = driver.run([&](PmRuntime &rt) { prog.pre(rt); },
                          [&](PmRuntime &rt) { prog.post(rt); });
    EXPECT_GE(res.count(core::BugType::CrossFailureRace), 1u)
        << res.summary();
    bool uninit_note = false;
    for (const auto &b : res.bugs) {
        if (b.note.find("never initialized") != std::string::npos)
            uninit_note = true;
    }
    EXPECT_TRUE(uninit_note);
}

TEST(AllocDetector, ExplicitInitializationIsClean)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    UninitCampaign prog{true};
    auto res = driver.run([&](PmRuntime &rt) { prog.pre(rt); },
                          [&](PmRuntime &rt) { prog.post(rt); });
    EXPECT_EQ(res.count(core::BugType::CrossFailureRace), 0u)
        << res.summary();
}

} // namespace
