/**
 * @file
 * Determinism and conformance tier for the --crash-states detection
 * mode: a fixed sampler seed yields byte-identical finding
 * fingerprints serial vs. parallel and across all three campaign
 * backends (the sampler stream is keyed by equivalence class, not by
 * schedule); equivalence-class pruning actually skips a substantial
 * share of the enumerated subsets; and the oracle re-runs what the
 * detector pruned, agreeing with the kept representative on every
 * candidate (agreement 1.0).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "bugsuite/registry.hh"
#include "harness.hh"
#include "oracle/diff.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;
using xfdtest::RunOptions;

workloads::WorkloadConfig
smallConfig(const std::string &name)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 4;
    wcfg.testOps = 8;
    wcfg.postOps = 3;
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;
    return wcfg;
}

core::CampaignResult
runExplored(const std::string &name, const std::string &backend,
            unsigned threads)
{
    RunOptions opt;
    opt.detector.crashStates = "sample:16";
    opt.detector.backend = backend;
    opt.threads = threads;
    return xfdtest::runWorkload(name, smallConfig(name), opt);
}

TEST(CrashStatesDeterminism, FingerprintStableAcrossSchedules)
{
    for (const std::string name :
         {"btree", "hashmap_atomic", "ringlog"}) {
        SCOPED_TRACE(name);
        core::CampaignResult serial = runExplored(name, "delta", 1);
        auto want = xfdtest::fingerprint(serial);
        EXPECT_EQ(want, xfdtest::fingerprint(
                            runExplored(name, "delta", 4)));
        EXPECT_EQ(want, xfdtest::fingerprint(
                            runExplored(name, "full", 1)));
        EXPECT_EQ(want, xfdtest::fingerprint(
                            runExplored(name, "batched", 1)));
        EXPECT_EQ(want, xfdtest::fingerprint(
                            runExplored(name, "batched", 4)));
    }
}

TEST(CrashStatesDeterminism, PlantedBugFingerprintStable)
{
    // The interesting schedules are the ones that actually carry
    // partial-image findings.
    const auto cases = bugsuite::bugCasesFor("ringlog");
    ASSERT_GE(cases.size(), 1u);
    const auto &c = cases.front();
    auto run = [&](const char *backend, unsigned threads) {
        workloads::WorkloadConfig wcfg;
        wcfg.initOps = c.initOps;
        wcfg.testOps = c.testOps;
        wcfg.postOps = c.postOps;
        wcfg.bugs.enable(c.id);
        RunOptions opt;
        opt.detector.crashStates = c.crashStates;
        opt.detector.backend = backend;
        opt.threads = threads;
        return xfdtest::fingerprint(
            xfdtest::runWorkload(c.workload, wcfg, opt));
    };
    auto want = run("delta", 1);
    EXPECT_FALSE(want.empty());
    EXPECT_EQ(want, run("delta", 4));
    EXPECT_EQ(want, run("full", 1));
    EXPECT_EQ(want, run("batched", 1));
}

TEST(CrashStatesPruning, EquivalenceClassesSkipSubstantialShare)
{
    // Workloads whose ordering points repeat with identical frontier
    // signatures (loop bodies over the same fields) must dedupe hard:
    // at least 40% of the enumerated subsets fold into an already-run
    // representative.
    for (const std::string name : {"hashmap_atomic", "ctree"}) {
        SCOPED_TRACE(name);
        workloads::WorkloadConfig wcfg;
        wcfg.initOps = 10;
        wcfg.testOps = 12;
        wcfg.postOps = 6;
        RunOptions opt;
        opt.detector.crashStates = "sample:64";
        core::CampaignResult res =
            xfdtest::runWorkload(name, wcfg, opt);
        const core::CampaignStats &s = res.stats;
        ASSERT_GT(s.crashStatesEnumerated, 0u);
        EXPECT_EQ(s.crashStatesEnumerated,
                  s.crashStatesExplored + s.crashStatesPruned);
        EXPECT_GE(s.crashStatesPruned * 100,
                  s.crashStatesEnumerated * 40)
            << s.crashStatesPruned << " of " << s.crashStatesEnumerated
            << " enumerated subsets pruned";
    }
}

TEST(CrashStatesOracle, PrunedCandidatesRecheckedAtFullAgreement)
{
    // The oracle mirrors the detector's enumeration stream, runs
    // every candidate the detector pruned, and compares its verdict
    // with the kept representative's: agreement must be exact.
    std::shared_ptr<workloads::Workload> w = workloads::makeWorkload(
        "hashmap_atomic", smallConfig("hashmap_atomic"));
    pm::PmPool pool(xfdtest::defaultPoolBytes);
    oracle::DiffConfig cfg;
    cfg.detector.crashStates = "sample:16";
    cfg.sampleCount = 16;
    oracle::DiffReport rep = oracle::runDifferentialCampaign(
        pool, [w](PmRuntime &rt) { w->pre(rt); },
        [w](PmRuntime &rt) { w->post(rt); }, cfg);

    EXPECT_GT(rep.crashPrunedRechecked, 0u) << rep.summary();
    EXPECT_EQ(rep.crashPrunedDisagreements, 0u) << rep.summary();
    EXPECT_EQ(rep.partialDisagreements, 0u) << rep.summary();
    EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0);
    EXPECT_TRUE(rep.clean()) << rep.summary();
}

TEST(CrashStatesOracle, PartialFindingsConfirmedAtSameMask)
{
    // Every detector finding first exposed on a partial image must be
    // reproduced by the oracle's candidate at the identical mask.
    const auto cases = bugsuite::bugCasesFor("ringlog");
    for (const auto &c : cases) {
        SCOPED_TRACE(c.id);
        workloads::WorkloadConfig wcfg;
        wcfg.initOps = c.initOps;
        wcfg.testOps = c.testOps;
        wcfg.postOps = c.postOps;
        wcfg.bugs.enable(c.id);
        std::shared_ptr<workloads::Workload> w =
            workloads::makeWorkload("ringlog", std::move(wcfg));
        pm::PmPool pool(xfdtest::defaultPoolBytes);
        oracle::DiffConfig cfg;
        cfg.detector.crashStates = c.crashStates;
        oracle::DiffReport rep = oracle::runDifferentialCampaign(
            pool, [w](PmRuntime &rt) { w->pre(rt); },
            [w](PmRuntime &rt) { w->post(rt); }, cfg);

        EXPECT_GT(rep.detector.partialImageFindings(), 0u)
            << rep.detector.summary();
        EXPECT_GT(rep.partialChecked, 0u) << rep.summary();
        EXPECT_EQ(rep.partialDisagreements, 0u) << rep.summary();
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0);
        EXPECT_TRUE(rep.clean()) << rep.summary();
    }
}

} // namespace
