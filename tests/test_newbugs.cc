/**
 * @file
 * §6.3.2 — the four new bugs, tested individually: each must be
 * detected as shipped and disappear when the fix is applied, and the
 * reports must point at the right reading site.
 */

#include <gtest/gtest.h>

#include "bugsuite/registry.hh"
#include "harness.hh"
#include "pmlib/objpool.hh"

namespace
{

using namespace xfd;
using bugsuite::allBugCases;
using bugsuite::BugCase;
using core::BugType;

const BugCase &
findCase(const std::string &id_or_workload)
{
    for (const auto &c : allBugCases()) {
        if (c.origin != bugsuite::Origin::NewBug)
            continue;
        if (c.id == id_or_workload || c.workload == id_or_workload)
            return c;
    }
    throw std::runtime_error("case not found");
}

bool
anyReaderIn(const core::CampaignResult &res, const char *file_part)
{
    for (const auto &b : res.bugs) {
        if (std::string(b.reader.file).find(file_part) !=
            std::string::npos) {
            return true;
        }
    }
    return false;
}

TEST(NewBugs, Bug1HashmapMetadataUnpersisted)
{
    const auto &c = findCase("hashmap_atomic.shipped.meta_no_persist");
    auto res = bugsuite::runBugCase(c);
    EXPECT_GE(res.count(BugType::CrossFailureRace), 1u)
        << res.summary();
    // The readers are the hash function's metadata loads.
    EXPECT_TRUE(anyReaderIn(res, "hashmap_atomic.cc"));

    BugCase fixed = c;
    fixed.id.clear();
    auto clean = bugsuite::runBugCase(fixed);
    EXPECT_EQ(clean.bugs.size(), 0u) << clean.summary();
}

TEST(NewBugs, Bug2CountNeverInitialized)
{
    const auto &c = findCase("hashmap_atomic.shipped.count_uninit");
    auto res = bugsuite::runBugCase(c);
    ASSERT_GE(res.count(BugType::CrossFailureRace), 1u)
        << res.summary();
    bool uninit_note = false;
    for (const auto &b : res.bugs) {
        if (b.note.find("never initialized") != std::string::npos)
            uninit_note = true;
    }
    EXPECT_TRUE(uninit_note) << res.summary();

    BugCase fixed = c;
    fixed.id.clear();
    EXPECT_EQ(bugsuite::runBugCase(fixed).bugs.size(), 0u);
}

TEST(NewBugs, Bug3RedisInitUnprotected)
{
    const auto &c = findCase("redis.shipped.init_no_tx");
    auto res = bugsuite::runBugCase(c);
    EXPECT_GE(res.count(BugType::CrossFailureRace), 1u)
        << res.summary();
    EXPECT_TRUE(anyReaderIn(res, "mini_redis.cc"));

    BugCase fixed = c;
    fixed.id.clear();
    EXPECT_EQ(bugsuite::runBugCase(fixed).bugs.size(), 0u);
}

TEST(NewBugs, Bug4PoolCreationNotFailureAtomic)
{
    const auto &c = findCase("pool_create");
    auto res = bugsuite::runBugCase(c);
    EXPECT_GE(res.count(BugType::RecoveryFailure), 1u)
        << res.summary();
    bool metadata_note = false;
    for (const auto &b : res.bugs) {
        if (b.note.find("incomplete pool metadata") != std::string::npos)
            metadata_note = true;
    }
    EXPECT_TRUE(metadata_note);

    // The fix: recovery uses openOrCreate() to reformat the half
    // pool; no finding remains.
    auto clean = xfdtest::runCampaign(
        [](trace::PmRuntime &rt) {
            trace::RoiScope roi(rt);
            pmlib::ObjPool::create(rt, "bug4fix", 64);
        },
        [](trace::PmRuntime &rt) {
            trace::RoiScope roi(rt);
            pmlib::ObjPool::openOrCreate(rt, "bug4fix", 64);
        });
    EXPECT_TRUE(xfdtest::hasNoFindings(clean));
}

TEST(NewBugs, AllFourAnnotatedMinimally)
{
    // Paper: "XFDetector is effective at detecting cross-failure bugs
    // with minimum annotation" — the hashmap bugs needed only the
    // commit-variable registration, Redis none beyond the RoI.
    std::size_t n = 0;
    for (const auto &c : allBugCases()) {
        if (c.origin == bugsuite::Origin::NewBug)
            n++;
    }
    EXPECT_EQ(n, 4u);
}

} // namespace
