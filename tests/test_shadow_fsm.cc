/**
 * @file
 * Shadow-PM state machine tests: the persistence FSM of paper Fig. 9,
 * the consistency/timestamp rules of Fig. 10 and condition (3), and
 * the post-failure read-check rules of §5.4 — including parameterized
 * sweeps across cell granularities.
 */

#include <gtest/gtest.h>

#include "core/shadow_pm.hh"

namespace
{

using namespace xfd;
using core::DetectorConfig;
using core::PersistState;
using core::ReadCheck;
using core::ShadowPM;

constexpr Addr base = defaultPoolBase;

DetectorConfig
cfgWithGran(unsigned g)
{
    DetectorConfig cfg;
    cfg.granularity = g;
    return cfg;
}

struct ShadowTest : ::testing::Test
{
    ShadowTest() : cfg(), shadow({base, base + (1 << 20)}, cfg) {}

    DetectorConfig cfg;
    ShadowPM shadow;
};

// ---------------------------------------------------------------
// Persistence FSM (Fig. 9)
// ---------------------------------------------------------------

TEST_F(ShadowTest, InitiallyUnmodified)
{
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Unmodified);
}

TEST_F(ShadowTest, WriteMakesModified)
{
    shadow.preWrite(base, 8, 0, false);
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Modified);
    EXPECT_EQ(shadow.persistStateOf(base + 7), PersistState::Modified);
    EXPECT_EQ(shadow.persistStateOf(base + 8), PersistState::Unmodified);
}

TEST_F(ShadowTest, FlushMakesWritebackPending)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    EXPECT_EQ(shadow.persistStateOf(base),
              PersistState::WritebackPending);
}

TEST_F(ShadowTest, FenceMakesPersisted)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    shadow.preFence();
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Persisted);
}

TEST_F(ShadowTest, FenceWithoutFlushLeavesModified)
{
    // M --SFENCE--> M: a fence alone does not write anything back.
    shadow.preWrite(base, 8, 0, false);
    shadow.preFence();
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Modified);
}

TEST_F(ShadowTest, WriteAfterPersistRedirties)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    shadow.preFence();
    shadow.preWrite(base, 8, 2, false);
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Modified);
}

TEST_F(ShadowTest, WriteWhilePendingRedirties)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    shadow.preWrite(base, 8, 2, false);
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Modified);
    shadow.preFence();
    // The re-dirtied write was never flushed again.
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Modified);
}

TEST_F(ShadowTest, NtWriteIsPendingThenPersists)
{
    shadow.preWrite(base, 8, 0, true);
    EXPECT_EQ(shadow.persistStateOf(base),
              PersistState::WritebackPending);
    shadow.preFence();
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Persisted);
}

TEST_F(ShadowTest, RedundantFlushOfCleanLineFlagged)
{
    EXPECT_TRUE(shadow.preFlush(base, 0));
}

TEST_F(ShadowTest, RedundantFlushOfPersistedLineFlagged)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    shadow.preFence();
    EXPECT_TRUE(shadow.preFlush(base, 2));
}

TEST_F(ShadowTest, DoubleFlushBeforeFenceFlagged)
{
    shadow.preWrite(base, 8, 0, false);
    EXPECT_FALSE(shadow.preFlush(base, 1));
    EXPECT_TRUE(shadow.preFlush(base, 2));
}

TEST_F(ShadowTest, FlushOfPartiallyModifiedLineNotRedundant)
{
    shadow.preWrite(base + 32, 4, 0, false);
    EXPECT_FALSE(shadow.preFlush(base, 1));
}

TEST_F(ShadowTest, FreeResetsState)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFree(base, 8);
    EXPECT_EQ(shadow.persistStateOf(base), PersistState::Unmodified);
}

TEST_F(ShadowTest, AllocMarksUninitialized)
{
    shadow.preAlloc(base + 64, 16, 3);
    EXPECT_EQ(shadow.persistStateOf(base + 64), PersistState::Modified);
    shadow.beginPostReplay();
    auto res = shadow.checkPostRead(base + 64, 4);
    EXPECT_EQ(res.verdict, ReadCheck::Race);
    EXPECT_TRUE(res.uninitialized);
    EXPECT_EQ(res.writerSeq, 3u);
}

// ---------------------------------------------------------------
// Post-failure read checks (cross-failure race, §3.1)
// ---------------------------------------------------------------

TEST_F(ShadowTest, ReadOfUntouchedIsOk)
{
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(base, 64).verdict, ReadCheck::Ok);
}

TEST_F(ShadowTest, ReadOfModifiedIsRace)
{
    shadow.preWrite(base, 8, 7, false);
    shadow.beginPostReplay();
    auto res = shadow.checkPostRead(base, 8);
    EXPECT_EQ(res.verdict, ReadCheck::Race);
    EXPECT_EQ(res.writerSeq, 7u);
    EXPECT_EQ(res.addr, base);
}

TEST_F(ShadowTest, ReadOfWritebackPendingIsStillRace)
{
    // CLWB without SFENCE does not guarantee persistence.
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Race);
}

TEST_F(ShadowTest, ReadOfPersistedIsOk)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.preFlush(base, 1);
    shadow.preFence();
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Ok);
}

TEST_F(ShadowTest, PostOverwriteSuppressesRace)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.beginPostReplay();
    shadow.postWrite(base, 8);
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Ok);
}

TEST_F(ShadowTest, PostOverlayResetsPerFailurePoint)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.beginPostReplay();
    shadow.postWrite(base, 8);
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Ok);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Race);
}

TEST_F(ShadowTest, PartialOverwriteStillRaces)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.beginPostReplay();
    shadow.postWrite(base, 4);
    auto res = shadow.checkPostRead(base, 8);
    EXPECT_EQ(res.verdict, ReadCheck::Race);
    EXPECT_EQ(res.addr, base + 4);
}

TEST_F(ShadowTest, FirstReadOnlySkipsSecondRead)
{
    shadow.preWrite(base, 8, 0, false);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Race);
    // Optimization (1): the second read is not re-checked.
    EXPECT_EQ(shadow.checkPostRead(base, 8).verdict, ReadCheck::Ok);
    EXPECT_GT(shadow.checksSkipped(), 0u);
}

// ---------------------------------------------------------------
// Commit variables & semantic consistency (Fig. 10, condition (3))
// ---------------------------------------------------------------

struct CommitVarTest : ShadowTest
{
    static constexpr Addr valid = base;        // commit variable
    static constexpr Addr backup = base + 64;  // protected data
    static constexpr Addr arr = base + 128;    // protected data

    void
    SetUp() override
    {
        shadow.registerCommitVar(valid, 1);
        shadow.registerCommitRange(valid, backup, 16);
        shadow.registerCommitRange(valid, arr, 16);
    }

    /** Write [a,a+n) and persist it, advancing the timestamp. */
    void
    persistedWrite(Addr a, std::size_t n, std::uint32_t seq)
    {
        shadow.preWrite(a, n, seq, false);
        shadow.preFlush(lineBase(a), seq);
        shadow.preFence();
    }
};

TEST_F(CommitVarTest, ReadingCommitVarIsBenign)
{
    shadow.preWrite(valid, 1, 0, false);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(valid, 1).verdict, ReadCheck::Benign);
}

TEST_F(CommitVarTest, UncommittedPersistedDataIsSemanticBug)
{
    // Data persisted, but no commit write followed: uncommitted.
    persistedWrite(backup, 16, 0);
    shadow.beginPostReplay();
    auto res = shadow.checkPostRead(backup, 16);
    EXPECT_EQ(res.verdict, ReadCheck::SemanticBug);
    EXPECT_FALSE(res.stale);
}

TEST_F(CommitVarTest, CommittedDataIsConsistent)
{
    persistedWrite(backup, 16, 0);   // write at ts 0
    persistedWrite(valid, 1, 1);     // commit write at ts 1
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(backup, 16).verdict, ReadCheck::Ok);
}

TEST_F(CommitVarTest, StaleDataIsSemanticBug)
{
    persistedWrite(backup, 16, 0); // ts 0
    persistedWrite(valid, 1, 1);   // commit @ ts 1 -> backup consistent
    persistedWrite(arr, 16, 2);    // ts 2
    persistedWrite(valid, 1, 3);   // commit @ ts 3 -> arr consistent
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(arr, 16).verdict, ReadCheck::Ok);
    auto res = shadow.checkPostRead(backup, 16);
    // backup was last modified before the pre-last commit write.
    EXPECT_EQ(res.verdict, ReadCheck::SemanticBug);
    EXPECT_TRUE(res.stale);
}

TEST_F(CommitVarTest, SameEpochCommitDoesNotCover)
{
    // Fig. 11 / F2: backup and the commit write land in the same
    // epoch — the backup is not ordered before the commit, so it is
    // not covered by it.
    shadow.preWrite(backup, 16, 0, false);
    shadow.preWrite(valid, 1, 1, false); // commit, same ts
    shadow.preFlush(lineBase(backup), 2);
    shadow.preFlush(lineBase(valid), 2);
    shadow.preFence();
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(backup, 16).verdict,
              ReadCheck::SemanticBug);
}

TEST_F(CommitVarTest, RaceTakesPriorityWhenNotPersisted)
{
    // Fig. 11 / F1: backup modified but not yet written back -> the
    // read is reported as a race, not a semantic bug.
    shadow.preWrite(backup, 16, 0, false);
    shadow.preWrite(valid, 1, 1, false);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(backup, 16).verdict, ReadCheck::Race);
}

TEST_F(CommitVarTest, UncoveredAddressHasNoSemanticCheck)
{
    Addr elsewhere = base + 4096;
    persistedWrite(elsewhere, 8, 0);
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(elsewhere, 8).verdict, ReadCheck::Ok);
}

TEST_F(CommitVarTest, RegistrationIsIdempotent)
{
    shadow.registerCommitVar(valid, 1);
    shadow.registerCommitRange(valid, backup, 16);
    EXPECT_EQ(shadow.commitVarCount(), 1u);
}

TEST_F(ShadowTest, SingleCommitVarWithoutRangesCoversAll)
{
    shadow.registerCommitVar(base, 1);
    // Persist data with no commit write afterwards: uncommitted.
    shadow.preWrite(base + 512, 8, 0, false);
    shadow.preFlush(base + 512, 1);
    shadow.preFence();
    shadow.beginPostReplay();
    EXPECT_EQ(shadow.checkPostRead(base + 512, 8).verdict,
              ReadCheck::SemanticBug);
}

TEST_F(ShadowTest, StrictPersistCheckCatchesUnflushedCommitted)
{
    DetectorConfig strict;
    strict.strictPersistCheck = true;
    ShadowPM s({base, base + (1 << 20)}, strict);
    s.registerCommitVar(base, 1);
    s.registerCommitRange(base, base + 64, 8);
    s.preWrite(base + 64, 8, 0, false); // modified, never flushed
    s.preFence();                       // ts 1
    s.preWrite(base, 1, 1, false);      // commit write
    s.preFlush(base, 2);
    s.preFence();
    s.beginPostReplay();
    // Paper-faithful mode would call this consistent; strict mode
    // notices it was never persisted.
    EXPECT_EQ(s.checkPostRead(base + 64, 8).verdict, ReadCheck::Race);
}

// ---------------------------------------------------------------
// Granularity sweeps (TEST_P)
// ---------------------------------------------------------------

class GranularityTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GranularityTest, FsmHoldsAtEveryGranularity)
{
    DetectorConfig cfg = cfgWithGran(GetParam());
    ShadowPM s({base, base + (1 << 20)}, cfg);
    s.preWrite(base + 8, 8, 0, false);
    EXPECT_EQ(s.persistStateOf(base + 8), PersistState::Modified);
    s.preFlush(base, 1);
    s.preFence();
    EXPECT_EQ(s.persistStateOf(base + 8), PersistState::Persisted);
    s.beginPostReplay();
    EXPECT_EQ(s.checkPostRead(base + 8, 8).verdict, ReadCheck::Ok);
}

TEST_P(GranularityTest, RaceDetectedAtEveryGranularity)
{
    DetectorConfig cfg = cfgWithGran(GetParam());
    ShadowPM s({base, base + (1 << 20)}, cfg);
    s.preWrite(base + 16, 4, 0, false);
    s.beginPostReplay();
    EXPECT_EQ(s.checkPostRead(base + 16, 4).verdict, ReadCheck::Race);
}

TEST_P(GranularityTest, CoarseCellsMayFalseShareWithinCell)
{
    unsigned g = GetParam();
    DetectorConfig cfg = cfgWithGran(g);
    ShadowPM s({base, base + (1 << 20)}, cfg);
    // Write the first byte only; read the byte g bytes away.
    s.preWrite(base, 1, 0, false);
    s.beginPostReplay();
    auto far_res = s.checkPostRead(base + g, 1);
    // One cell away is always clean, whatever the granularity.
    EXPECT_EQ(far_res.verdict, ReadCheck::Ok);
}

INSTANTIATE_TEST_SUITE_P(Granularities, GranularityTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

// ---------------------------------------------------------------
// Property sweep: any (write, flush?, fence?) prefix must yield a
// race verdict unless both flush and fence happened.
// ---------------------------------------------------------------

struct PersistSequenceCase
{
    bool flush;
    bool fence;
};

class PersistSequenceTest
    : public ::testing::TestWithParam<PersistSequenceCase>
{
};

TEST_P(PersistSequenceTest, RaceUnlessFlushedAndFenced)
{
    auto [flush, fence] = GetParam();
    DetectorConfig cfg;
    ShadowPM s({base, base + (1 << 20)}, cfg);
    s.preWrite(base, 8, 0, false);
    if (flush)
        s.preFlush(base, 1);
    if (fence)
        s.preFence();
    s.beginPostReplay();
    auto verdict = s.checkPostRead(base, 8).verdict;
    if (flush && fence)
        EXPECT_EQ(verdict, ReadCheck::Ok);
    else
        EXPECT_EQ(verdict, ReadCheck::Race);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrefixes, PersistSequenceTest,
    ::testing::Values(PersistSequenceCase{false, false},
                      PersistSequenceCase{true, false},
                      PersistSequenceCase{false, true},
                      PersistSequenceCase{true, true}));

} // namespace
