/**
 * @file
 * Baseline (pre-failure-only) checker tests, including the paper's
 * two headline comparisons (§2, Fig. 3):
 *  - the baseline false-positives on the Figure 1 program fixed by
 *    recover_alt(), because it cannot see the post-failure overwrite;
 *  - the baseline misses the Figure 2 inverted-valid bug, which only
 *    manifests across the failure; XFDetector catches it.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "core/prefailure_checker.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"

namespace
{

using namespace xfd;
using core::PreFailureChecker;
using core::PreFailureFinding;
using Kind = core::PreFailureFinding::Kind;
using trace::PmRuntime;
using trace::Stage;

struct BaselineTest : ::testing::Test
{
    BaselineTest() : pool(1 << 21), rt(pool, buf, Stage::PreFailure) {}

    std::vector<PreFailureFinding>
    check()
    {
        PreFailureChecker checker(pool.range());
        return checker.check(buf);
    }

    std::size_t
    countKind(const std::vector<PreFailureFinding> &fs, Kind k)
    {
        std::size_t n = 0;
        for (const auto &f : fs) {
            if (f.kind == k)
                n++;
        }
        return n;
    }

    pm::PmPool pool;
    trace::TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(BaselineTest, CleanProgramHasNoFindings)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.roiBegin();
    rt.store(*v, std::uint64_t{1});
    rt.persistBarrier(v, 8);
    rt.roiEnd();
    EXPECT_TRUE(check().empty());
}

TEST_F(BaselineTest, UnpersistedStoreAtEndReported)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.roiBegin();
    rt.store(*v, std::uint64_t{1});
    rt.roiEnd();
    auto fs = check();
    EXPECT_EQ(countKind(fs, Kind::UnpersistedAtEnd), 1u);
}

TEST_F(BaselineTest, FlushWithoutFenceStillReported)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.roiBegin();
    rt.store(*v, std::uint64_t{1});
    rt.clwb(v, 8);
    rt.roiEnd();
    auto fs = check();
    EXPECT_EQ(countKind(fs, Kind::UnpersistedAtEnd), 1u);
}

TEST_F(BaselineTest, NonRoiStoresExempt)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.store(*v, std::uint64_t{1}); // outside RoI: setup
    rt.roiBegin();
    rt.roiEnd();
    EXPECT_TRUE(check().empty());
}

TEST_F(BaselineTest, RedundantFlushReported)
{
    auto *v = pool.at<std::uint64_t>(0);
    rt.roiBegin();
    rt.store(*v, std::uint64_t{1});
    rt.persistBarrier(v, 8);
    rt.clwb(v, 8);
    rt.sfence();
    rt.roiEnd();
    auto fs = check();
    EXPECT_EQ(countKind(fs, Kind::RedundantFlush), 1u);
}

TEST_F(BaselineTest, UnloggedTxWriteReported)
{
    pmlib::ObjPool op = pmlib::ObjPool::create(rt, "base", 64);
    auto *root = op.root<std::uint64_t[2]>();
    rt.roiBegin();
    {
        pmlib::Tx tx(op);
        tx.add((*root)[0]);
        rt.store((*root)[0], std::uint64_t{1});
        rt.store((*root)[1], std::uint64_t{2}); // never TX_ADDed
        tx.commit();
    }
    rt.roiEnd();
    auto fs = check();
    EXPECT_EQ(countKind(fs, Kind::UnloggedTxWrite), 1u);
}

TEST_F(BaselineTest, LoggedTxWriteClean)
{
    pmlib::ObjPool op = pmlib::ObjPool::create(rt, "base2", 64);
    auto *root = op.root<std::uint64_t[2]>();
    rt.roiBegin();
    {
        pmlib::Tx tx(op);
        tx.add((*root)[0]);
        rt.store((*root)[0], std::uint64_t{1});
        tx.commit();
    }
    rt.roiEnd();
    EXPECT_TRUE(check().empty());
}

// ------------------------------------------------------------------
// The paper's capability comparison (§2 / Fig. 3).
// ------------------------------------------------------------------

struct ListRoot
{
    std::uint64_t value;
    std::uint64_t length;
};

/** Figure 1: length updated in tx without TX_ADD. */
void
fig1Pre(PmRuntime &rt)
{
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "fig1cmp", sizeof(ListRoot));
    trace::RoiScope roi(rt);
    auto *r = op.root<ListRoot>();
    pmlib::Tx tx(op);
    tx.add(r->value);
    rt.store(r->value, rt.load(r->value) + 1);
    rt.store(r->length, rt.load(r->length) + 1); // unlogged
    tx.commit();
}

/** recover_alt(): recompute length, then resume. */
void
fig1PostAlt(PmRuntime &rt)
{
    pmlib::ObjPool op = pmlib::ObjPool::openOrCreate(
        rt, "fig1cmp", sizeof(ListRoot));
    trace::RoiScope roi(rt);
    auto *r = op.root<ListRoot>();
    rt.store(r->length, rt.load(r->value));
    rt.persistBarrier(&r->length, 8);
    (void)rt.load(r->length);
}

TEST(BaselineComparison, BaselineFalsePositivesOnRecoverAlt)
{
    // End-to-end, the program is correct (XFDetector: clean). The
    // pre-failure-only baseline still flags `length` — the paper's
    // "existing works can report a false positive" claim.
    pm::PmPool pool(1 << 21);
    trace::TraceBuffer pre;
    {
        PmRuntime rt(pool, pre, Stage::PreFailure);
        fig1Pre(rt);
    }
    PreFailureChecker baseline(pool.range());
    auto base_findings = baseline.check(pre);
    EXPECT_FALSE(base_findings.empty());

    pm::PmPool pool2(1 << 21);
    core::Driver driver(pool2, {});
    auto xfd_res = driver.run(fig1Pre, fig1PostAlt);
    EXPECT_EQ(xfd_res.count(core::BugType::CrossFailureRace), 0u)
        << xfd_res.summary();
}

struct ArrRoot
{
    std::int64_t backupIdx;
    std::int64_t backupVal;
    std::uint8_t valid;
    std::uint8_t pad[47];
    std::int64_t arr[8];
};

/** Figure 2 as printed: valid set to inverted values. */
void
fig2Pre(PmRuntime &rt)
{
    auto *r = static_cast<ArrRoot *>(rt.pool().toHost(rt.pool().base()));
    trace::RoiScope roi(rt);
    rt.addCommitVar(r->valid);
    rt.addCommitRange(r->valid, &r->backupIdx, 16);
    rt.addCommitRange(r->valid, r->arr, sizeof(r->arr));
    rt.store(r->backupIdx, std::int64_t{5});
    rt.store(r->backupVal, r->arr[5]);
    rt.persistBarrier(&r->backupIdx, 16);
    rt.store(r->valid, std::uint8_t{0}); // should be 1
    rt.persistBarrier(&r->valid, 1);
    rt.store(r->arr[5], std::int64_t{42});
    rt.persistBarrier(&r->arr[5], 8);
    rt.store(r->valid, std::uint8_t{1}); // should be 0
    rt.persistBarrier(&r->valid, 1);
}

void
fig2Post(PmRuntime &rt)
{
    auto *r = static_cast<ArrRoot *>(rt.pool().toHost(rt.pool().base()));
    trace::RoiScope roi(rt);
    rt.addCommitVar(r->valid);
    rt.addCommitRange(r->valid, &r->backupIdx, 16);
    rt.addCommitRange(r->valid, r->arr, sizeof(r->arr));
    if (rt.load(r->valid)) {
        std::int64_t idx = rt.load(r->backupIdx);
        rt.store(r->arr[idx], rt.load(r->backupVal));
        rt.persistBarrier(&r->arr[idx], 8);
    }
    (void)rt.load(r->arr[5]);
}

TEST(BaselineComparison, BaselineMissesCrossFailureSemanticBug)
{
    // Every store is flushed and fenced, so the pre-failure-only
    // baseline sees nothing; the bug only exists across the failure.
    pm::PmPool pool(1 << 21);
    trace::TraceBuffer pre;
    {
        PmRuntime rt(pool, pre, Stage::PreFailure);
        fig2Pre(rt);
    }
    PreFailureChecker baseline(pool.range());
    EXPECT_TRUE(baseline.check(pre).empty());

    pm::PmPool pool2(1 << 21);
    core::Driver driver(pool2, {});
    auto xfd_res = driver.run(fig2Pre, fig2Post);
    EXPECT_GE(xfd_res.count(core::BugType::CrossFailureSemantic) +
                  xfd_res.count(core::BugType::CrossFailureRace),
              1u)
        << xfd_res.summary();
}

TEST(BaselineComparison, BothCatchPlainMissingPersist)
{
    pm::PmPool pool(1 << 21);
    auto pre = [](PmRuntime &rt) {
        auto *v = static_cast<std::uint64_t *>(
            rt.pool().toHost(rt.pool().base()));
        trace::RoiScope roi(rt);
        rt.store(*v, std::uint64_t{1}); // never persisted
        rt.store(*(v + 8), std::uint64_t{2});
        rt.persistBarrier(v + 8, 8);
    };
    trace::TraceBuffer pre_trace;
    {
        PmRuntime rt(pool, pre_trace, Stage::PreFailure);
        pre(rt);
    }
    PreFailureChecker baseline(pool.range());
    EXPECT_FALSE(baseline.check(pre_trace).empty());

    pm::PmPool pool2(1 << 21);
    core::Driver driver(pool2, {});
    auto res = driver.run(pre, [](PmRuntime &rt) {
        auto *v = static_cast<std::uint64_t *>(
            rt.pool().toHost(rt.pool().base()));
        trace::RoiScope roi(rt);
        (void)rt.load(*v);
    });
    EXPECT_GE(res.count(core::BugType::CrossFailureRace), 1u);
}

} // namespace
