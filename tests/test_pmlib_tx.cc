/**
 * @file
 * Undo-log transaction tests: commit/abort/rollback mechanics, log
 * chunking, nesting, recovery on open, and detector integration — the
 * essence of the paper's Figure 1 (a field updated inside a
 * transaction without TX_ADD races with the post-failure resumption).
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"

namespace
{

using namespace xfd;
using core::BugType;
using pmlib::ObjPool;
using pmlib::Tx;
using trace::PmRuntime;
using trace::Stage;

/** Root object used throughout: two counters. */
struct CounterRoot
{
    std::uint64_t value;
    std::uint64_t length;
};

struct TxTest : ::testing::Test
{
    TxTest() : pool(1 << 21), rt(pool, buf, Stage::PreFailure) {}

    ObjPool
    makePool()
    {
        return ObjPool::create(rt, "txtest", sizeof(CounterRoot));
    }

    pm::PmPool pool;
    trace::TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(TxTest, CommitKeepsNewValues)
{
    ObjPool op = makePool();
    auto *r = op.root<CounterRoot>();
    {
        Tx tx(op);
        tx.add(r->value);
        rt.store(r->value, std::uint64_t{7});
        tx.commit();
    }
    EXPECT_EQ(r->value, 7u);
    EXPECT_EQ(op.txLog()->active, 0u);
}

TEST_F(TxTest, AbortRollsBack)
{
    ObjPool op = makePool();
    auto *r = op.root<CounterRoot>();
    rt.store(r->value, std::uint64_t{3});
    rt.persistBarrier(&r->value, 8);
    {
        Tx tx(op);
        tx.add(r->value);
        rt.store(r->value, std::uint64_t{9});
        tx.abort();
    }
    EXPECT_EQ(r->value, 3u);
}

TEST_F(TxTest, DestructorAbortsOpenTransaction)
{
    ObjPool op = makePool();
    auto *r = op.root<CounterRoot>();
    {
        Tx tx(op);
        tx.add(r->value);
        rt.store(r->value, std::uint64_t{9});
        // no commit: destructor must roll back
    }
    EXPECT_EQ(r->value, 0u);
    EXPECT_EQ(pmlib::txDepth(), 0u);
}

TEST_F(TxTest, NestedTransactionsFlatten)
{
    ObjPool op = makePool();
    auto *r = op.root<CounterRoot>();
    {
        Tx outer(op);
        outer.add(r->value);
        rt.store(r->value, std::uint64_t{1});
        {
            Tx inner(op);
            inner.add(r->length);
            rt.store(r->length, std::uint64_t{2});
            inner.commit(); // no-op: outer still open
        }
        EXPECT_EQ(op.txLog()->active, 1u);
        outer.commit();
    }
    EXPECT_EQ(op.txLog()->active, 0u);
    EXPECT_EQ(r->value, 1u);
    EXPECT_EQ(r->length, 2u);
}

TEST_F(TxTest, LargeRangeChunksAcrossLogEntries)
{
    ObjPool op = makePool();
    Addr big = op.heap().palloc(2048);
    auto *p = static_cast<std::uint8_t *>(pool.toHost(big));
    {
        Tx tx(op);
        tx.addRange(p, 2048);
        EXPECT_EQ(op.txLog()->numEntries, 4u); // 2048 / 512
        rt.setPm(p, 0xee, 2048);
        tx.abort();
    }
    for (int i = 0; i < 2048; i += 511)
        EXPECT_EQ(p[i], 0u); // rollback restored zeros
}

TEST_F(TxTest, RecoveryOnOpenRollsBackActiveTx)
{
    ObjPool op = makePool();
    auto *r = op.root<CounterRoot>();
    rt.store(r->value, std::uint64_t{5});
    rt.persistBarrier(&r->value, 8);

    // Simulate a crash mid-transaction: leave the log active.
    {
        Tx tx(op);
        tx.add(r->value);
        rt.store(r->value, std::uint64_t{100});
        // pretend the process died here
        EXPECT_EQ(op.txLog()->active, 1u);
        // Re-open: recovery must roll the update back.
        ObjPool reopened = ObjPool::open(rt, "txtest");
        EXPECT_EQ(reopened.txLog()->active, 0u);
        EXPECT_EQ(r->value, 5u);
        tx.commit(); // retired log: commit is now harmless
    }
}

TEST_F(TxTest, RunTxSugarCommits)
{
    ObjPool op = makePool();
    auto *r = op.root<CounterRoot>();
    pmlib::runTx(op, [&](Tx &tx) {
        tx.add(r->value);
        rt.store(r->value, std::uint64_t{11});
    });
    EXPECT_EQ(r->value, 11u);
    EXPECT_EQ(op.txLog()->active, 0u);
}

// ------------------------------------------------------------------
// Detector integration: the Figure 1 scenario.
// ------------------------------------------------------------------

struct Fig1Campaign
{
    /** When false, `length` is updated without TX_ADD (the bug). */
    bool addLength;
    /** When true, recovery recomputes length (the recover_alt fix). */
    bool recoverAlt = false;

    void
    pre(PmRuntime &rt) const
    {
        ObjPool op = ObjPool::create(rt, "fig1", sizeof(CounterRoot));
        trace::RoiScope roi(rt);
        auto *r = op.root<CounterRoot>();
        Tx tx(op);
        tx.add(r->value);
        rt.store(r->value, rt.load(r->value) + 1);
        if (addLength)
            tx.add(r->length);
        rt.store(r->length, rt.load(r->length) + 1);
        tx.commit();
    }

    void
    post(PmRuntime &rt) const
    {
        ObjPool op = ObjPool::open(rt, "fig1"); // applies undo logs
        trace::RoiScope roi(rt);
        auto *r = op.root<CounterRoot>();
        if (recoverAlt) {
            // recover_alt(): overwrite length with a recomputed value.
            rt.store(r->length, rt.load(r->value));
            rt.persistBarrier(&r->length, 8);
        }
        // Resumption (pop() in the paper): reads both fields.
        (void)rt.load(r->value);
        (void)rt.load(r->length);
    }
};

core::CampaignResult
runFig1(const Fig1Campaign &prog)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    return driver.run([&](PmRuntime &rt) { prog.pre(rt); },
                      [&](PmRuntime &rt) { prog.post(rt); });
}

TEST(TxDetector, MissingTxAddIsARace)
{
    auto res = runFig1({false});
    EXPECT_GE(res.count(BugType::CrossFailureRace), 1u) << res.summary();
}

TEST(TxDetector, FullyProtectedTxIsClean)
{
    auto res = runFig1({true});
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u) << res.summary();
    EXPECT_EQ(res.count(BugType::CrossFailureSemantic), 0u)
        << res.summary();
}

TEST(TxDetector, RecoverAltFixesThePostFailureStage)
{
    // The paper's Figure 1 fix: recovery overwrites the unlogged
    // field, so the resumption no longer reads inconsistent data.
    auto res = runFig1({false, true});
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u) << res.summary();
}

TEST(TxDetector, DuplicateTxAddIsPerformanceBug)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "dup", sizeof(CounterRoot));
            trace::RoiScope roi(rt);
            auto *r = op.root<CounterRoot>();
            Tx tx(op);
            tx.add(r->value);
            // A second snapshot of the same object: add() itself
            // dedupes (PMDK semantics), so the waste is injected with
            // the unchecked variant the bug suite uses.
            tx.addUnchecked(r->value);
            rt.store(r->value, std::uint64_t{1});
            tx.commit();
        },
        [](PmRuntime &) {});
    EXPECT_GE(res.count(BugType::Performance), 1u) << res.summary();
}

TEST(TxDetector, TxAddAfterCommitBoundaryIsNotDuplicate)
{
    pm::PmPool pool(1 << 21);
    core::Driver driver(pool, {});
    auto res = driver.run(
        [&](PmRuntime &rt) {
            ObjPool op = ObjPool::create(rt, "dup2", sizeof(CounterRoot));
            trace::RoiScope roi(rt);
            auto *r = op.root<CounterRoot>();
            for (int i = 0; i < 2; i++) {
                Tx tx(op);
                tx.add(r->value);
                rt.store(r->value, static_cast<std::uint64_t>(i));
                tx.commit();
            }
        },
        [](PmRuntime &) {});
    EXPECT_EQ(res.count(BugType::Performance), 0u) << res.summary();
}

} // namespace
