/**
 * @file
 * Flush/fence instruction variants: CLFLUSHOPT, CLFLUSH, MFENCE and
 * non-temporal stores must all drive the persistence FSM (the paper's
 * footnote: "XFDetector also handles non-temporal writes and other
 * types of fence"), end to end through the driver.
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using core::BugType;
using trace::PmRuntime;

/**
 * Campaign skeleton: write v, persist it with @p persist, then commit
 * by setting the flag w (a registered commit variable). The post
 * stage reads v only once w says the protocol finished, so the only
 * way to race is for @p persist to have left v unpersisted.
 */
core::CampaignResult
runWith(const std::function<void(PmRuntime &, std::uint64_t *)> &persist)
{
    pm::PmPool pool(1 << 20);
    core::Driver driver(pool, {});
    return driver.run(
        [&](PmRuntime &rt) {
            auto *v = rt.pool().at<std::uint64_t>(0);
            auto *w = rt.pool().at<std::uint64_t>(64);
            trace::RoiScope roi(rt);
            rt.addCommitVar(*w);
            rt.addCommitRange(*w, v, 8);
            rt.store(*v, std::uint64_t{1});
            persist(rt, v);
            rt.store(*w, std::uint64_t{2});
            rt.clwb(w, 8);
            rt.sfence();
        },
        [&](PmRuntime &rt) {
            auto *v = rt.pool().at<std::uint64_t>(0);
            auto *w = rt.pool().at<std::uint64_t>(64);
            trace::RoiScope roi(rt);
            rt.addCommitVar(*w);
            rt.addCommitRange(*w, v, 8);
            if (rt.load(*w) == 2) // benign commit-variable read
                (void)rt.load(*v);
        });
}

TEST(FlushVariants, ClwbSfencePersists)
{
    auto res = runWith([](PmRuntime &rt, std::uint64_t *v) {
        rt.clwb(v, 8);
        rt.sfence();
    });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

TEST(FlushVariants, ClflushOptSfencePersists)
{
    auto res = runWith([](PmRuntime &rt, std::uint64_t *v) {
        rt.clflushopt(v, 8);
        rt.sfence();
    });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

TEST(FlushVariants, ClflushSfencePersists)
{
    auto res = runWith([](PmRuntime &rt, std::uint64_t *v) {
        rt.clflush(v, 8);
        rt.sfence();
    });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

TEST(FlushVariants, MfenceCompletesWritebacks)
{
    auto res = runWith([](PmRuntime &rt, std::uint64_t *v) {
        rt.clwb(v, 8);
        rt.mfence();
    });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

TEST(FlushVariants, NtStorePersistsAtFence)
{
    auto res = runWith([](PmRuntime &rt, std::uint64_t *v) {
        // Re-publish v with a non-temporal store; the fence persists
        // it without any explicit flush.
        rt.ntstore(*v, std::uint64_t{1});
        rt.sfence();
    });
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
}

TEST(FlushVariants, UnfencedFlushStillRaces)
{
    // A flush alone does not guarantee persistence: at the failure
    // point *before* the commit's fence, v is writeback-pending and
    // the commit flag is already in the image — the recovery read
    // races. Skipping the flush entirely races the same way.
    for (int variant = 0; variant < 3; variant++) {
        auto res = runWith([variant](PmRuntime &rt, std::uint64_t *v) {
            if (variant == 0)
                rt.clwb(v, 8);
            else if (variant == 1)
                rt.clflushopt(v, 8);
            // variant 2: no flush at all
        });
        EXPECT_GE(res.count(BugType::CrossFailureRace), 1u)
            << "variant " << variant << "\n"
            << res.summary();
    }
}

TEST(FlushVariants, NtCopyToPmBulk)
{
    pm::PmPool pool(1 << 20);
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    char payload[100];
    std::memset(payload, 0x3c, sizeof(payload));
    rt.ntCopyToPm(pool.at<char>(0), payload, sizeof(payload));
    EXPECT_EQ(static_cast<unsigned char>(*pool.at<char>(99)), 0x3cu);
    ASSERT_EQ(buf.size(), 1u);
    EXPECT_EQ(buf[0].op, trace::Op::NtWrite);
    EXPECT_EQ(buf[0].data.size(), 100u);
}

} // namespace
