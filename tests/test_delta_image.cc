/**
 * @file
 * The delta-image engine's correctness contract: a campaign run with
 * page-granular delta restores must be indistinguishable from one
 * that full-copies the image at every failure point — identical
 * deduplicated findings AND byte-identical exec-pool contents at the
 * start of every post-failure execution. Verified three ways:
 *
 *  1. unit tests of the moving parts (ImageDeltaStore, the pool's
 *     dirty-page map, restorePages coalescing);
 *  2. equivalence sweeps over every registered workload and the whole
 *     synthetic-bug suite, serial and parallel, plus crash-image mode;
 *  3. differential fuzzing across checkpoint cadences and page sizes
 *     against the full-copy configuration as the oracle.
 *
 * The whole binary additionally runs with XFD_DELTA_VALIDATE=1, which
 * makes the driver memcmp the exec pool against the source image
 * after every restore and panic on the first diverging byte — so any
 * equivalence campaign below doubles as an invariant check.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "bugsuite/registry.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "pm/delta.hh"
#include "pm/image.hh"
#include "pm/pool.hh"
#include "workloads/workload.hh"
#include "xfd.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;

// Before main(): every campaign in this binary runs in paranoia mode.
const int validateEnvSet =
    (setenv("XFD_DELTA_VALIDATE", "1", 1), 0);

/* --------------------------------------------------------------- */
/* Unit tests: ImageDeltaStore                                     */
/* --------------------------------------------------------------- */

constexpr Addr storeBase = 0x1000000;

TEST(ImageDeltaStore, CollectsPagesByHalfOpenSeqInterval)
{
    pm::ImageDeltaStore s(4096, {storeBase, storeBase + (1 << 20)});
    EXPECT_EQ(s.pageSize(), 4096u);
    EXPECT_EQ(s.pageCount(), 256u);

    s.recordWrite(0, storeBase, 1);
    s.recordWrite(3, storeBase + 5000, 8);
    s.recordWrite(7, storeBase + 9000, 8);

    std::set<std::uint32_t> pages;
    s.collectPages(0, 1, pages);
    EXPECT_EQ(pages, (std::set<std::uint32_t>{0}));

    pages.clear();
    s.collectPages(0, 4, pages);
    EXPECT_EQ(pages, (std::set<std::uint32_t>{0, 1}));

    // toSeq is exclusive: seq 7 is outside [0, 7).
    pages.clear();
    s.collectPages(0, 7, pages);
    EXPECT_EQ(pages, (std::set<std::uint32_t>{0, 1}));

    // fromSeq is inclusive, and out is unioned into, not replaced.
    s.collectPages(3, 8, pages);
    EXPECT_EQ(pages, (std::set<std::uint32_t>{0, 1, 2}));

    pages.clear();
    s.collectPages(8, 100, pages);
    EXPECT_TRUE(pages.empty());
}

TEST(ImageDeltaStore, WriteSpanningPagesTouchesAllOfThem)
{
    pm::ImageDeltaStore s(256, {storeBase, storeBase + 4096});
    s.recordWrite(1, storeBase + 250, 520); // pages 0..3
    std::set<std::uint32_t> pages;
    s.collectPages(0, 2, pages);
    EXPECT_EQ(pages, (std::set<std::uint32_t>{0, 1, 2, 3}));
}

TEST(ImageDeltaStore, RepeatedWritesToOnePageAreNotFolded)
{
    // Regression guard: folding consecutive same-page writes onto the
    // earlier seq makes a failure point that lands between them miss
    // the later write. Every recorded write must keep its own span.
    pm::ImageDeltaStore s(4096, {storeBase, storeBase + (1 << 16)});
    s.recordWrite(2, storeBase + 8, 8);
    s.recordWrite(9, storeBase + 16, 8); // same page, later seq
    EXPECT_EQ(s.spanCount(), 2u);

    std::set<std::uint32_t> pages;
    s.collectPages(3, 100, pages); // interval sees only the second
    EXPECT_EQ(pages, (std::set<std::uint32_t>{0}));
}

TEST(ImageDeltaStore, IgnoresEmptyAndOutOfRangeWrites)
{
    pm::ImageDeltaStore s(4096, {storeBase, storeBase + (1 << 16)});
    s.recordWrite(0, storeBase, 0);
    s.recordWrite(1, storeBase - 4096, 8);
    EXPECT_EQ(s.spanCount(), 0u);
}

/* --------------------------------------------------------------- */
/* Unit tests: PmPool dirty-page tracking                          */
/* --------------------------------------------------------------- */

TEST(DirtyTracking, MarksDrainsAndClears)
{
    pm::PmPool pool(1 << 16);
    EXPECT_EQ(pool.trackingPageSize(), 0u);
    pool.markDirty(pool.base(), 64); // no-op while disabled
    EXPECT_EQ(pool.dirtyPageCount(), 0u);

    pool.enableDirtyTracking(256);
    EXPECT_EQ(pool.trackingPageSize(), 256u);

    // One write straddling a page boundary dirties both pages.
    pool.markDirty(pool.base() + 255, 2);
    pool.markDirty(pool.base() + 7 * 256, 1);
    EXPECT_EQ(pool.dirtyPageCount(), 3u);

    std::set<std::uint32_t> out{42}; // drain unions into out
    pool.drainDirtyPages(out);
    EXPECT_EQ(out, (std::set<std::uint32_t>{0, 1, 7, 42}));
    EXPECT_EQ(pool.dirtyPageCount(), 0u); // drain clears

    pool.markDirty(pool.base(), 1);
    EXPECT_EQ(pool.dirtyPageCount(), 1u);
    pool.clearDirtyPages();
    EXPECT_EQ(pool.dirtyPageCount(), 0u);

    // Out-of-range marks are clamped, not fatal.
    pool.markDirty(pool.base() + pool.size() - 1, 4096);
    EXPECT_EQ(pool.dirtyPageCount(), 1u);

    pool.disableDirtyTracking();
    EXPECT_EQ(pool.trackingPageSize(), 0u);
    pool.markDirty(pool.base(), 64);
    EXPECT_EQ(pool.dirtyPageCount(), 0u);
}

/* --------------------------------------------------------------- */
/* Unit tests: restorePages                                        */
/* --------------------------------------------------------------- */

TEST(RestorePages, RestoresExactlyTheNamedPages)
{
    pm::PmPool pool(1 << 12);
    for (std::size_t i = 0; i < pool.size(); i++)
        pool.data()[i] = static_cast<std::uint8_t>(i * 7);
    pm::PmImage img = pool.snapshot();

    // Soil everything, then restore pages {2,3,7} of 256 bytes.
    std::memset(pool.data(), 0xAB, pool.size());
    pm::DeltaRestoreStats stats;
    pm::restorePages(img, pool, 256, {2, 3, 7}, stats);

    for (std::size_t i = 0; i < pool.size(); i++) {
        std::size_t page = i / 256;
        std::uint8_t want = (page == 2 || page == 3 || page == 7)
                                ? static_cast<std::uint8_t>(i * 7)
                                : 0xAB;
        ASSERT_EQ(pool.data()[i], want) << "offset " << i;
    }
    EXPECT_EQ(stats.deltaRestores, 1u);
    EXPECT_EQ(stats.pagesRestored, 3u);
    EXPECT_EQ(stats.bytesRestored, 3u * 256);
    EXPECT_EQ(stats.fullCopies, 0u);
    EXPECT_EQ(stats.bytesCopied(), 3u * 256);
}

TEST(RestorePages, ClampsTheFinalPartialPage)
{
    // 1 KiB pool, 256-byte pages, but restore a page set containing
    // the last page of a pool whose size is not page-aligned.
    pm::PmPool pool(1000);
    pm::PmImage img = pool.snapshot();
    std::memset(pool.data(), 0xCD, pool.size());
    pm::DeltaRestoreStats stats;
    pm::restorePages(img, pool, 256, {3}, stats);
    EXPECT_EQ(stats.bytesRestored, 1000u - 3 * 256);
    for (std::size_t i = 3 * 256; i < pool.size(); i++)
        ASSERT_EQ(pool.data()[i], 0);
}

TEST(RestoreFull, AccountsTheWholeImage)
{
    pm::PmPool pool(1 << 12);
    pm::PmImage img = pool.snapshot();
    pm::DeltaRestoreStats stats;
    pm::restoreFull(img, pool, stats);
    EXPECT_EQ(stats.fullCopies, 1u);
    EXPECT_EQ(stats.bytesFullCopy, pool.size());
    EXPECT_EQ(stats.deltaRestores, 0u);
}

/* --------------------------------------------------------------- */
/* Equivalence harness                                             */
/* --------------------------------------------------------------- */

/** Order-independent fingerprint of a campaign's findings. */
std::vector<std::string>
fingerprint(const CampaignResult &res)
{
    std::vector<std::string> fp;
    for (const auto &b : res.bugs) {
        fp.push_back(strprintf(
            "%d %#llx %u %s:%u %s:%u fp=%u n=%u",
            static_cast<int>(b.type),
            static_cast<unsigned long long>(b.addr), b.size,
            b.reader.file, b.reader.line, b.writer.file, b.writer.line,
            b.failurePoint, b.occurrences));
    }
    std::sort(fp.begin(), fp.end());
    return fp;
}

std::uint64_t
fnv1a(const std::uint8_t *p, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct CampaignCapture
{
    CampaignResult result;
    /** Exec-pool content hash at the start of every post execution. */
    std::vector<std::uint64_t> poolHashes;
};

/**
 * Run one workload campaign and capture, on entry to every
 * post-failure execution, a hash of the exec pool the driver just
 * reconstructed. Delta restore and full copy must produce the same
 * multiset of images (and, serially, the same sequence).
 */
CampaignCapture
runWorkload(const std::string &name, const workloads::WorkloadConfig &wcfg,
            const DetectorConfig &dcfg, unsigned threads)
{
    auto w = workloads::makeWorkload(name, wcfg);
    CampaignCapture cap;
    std::mutex mu;
    cap.result =
        Campaign::forProgram(
            [&](PmRuntime &rt) { w->pre(rt); },
            [&](PmRuntime &rt) {
                pm::PmPool &p = rt.pool();
                std::uint64_t h = fnv1a(p.data(), p.size());
                {
                    std::lock_guard<std::mutex> lk(mu);
                    cap.poolHashes.push_back(h);
                }
                w->post(rt);
            })
            .poolSize(1 << 22)
            .config(dcfg)
            .threads(threads)
            .run();
    if (threads > 1) // worker interleaving: compare as a multiset
        std::sort(cap.poolHashes.begin(), cap.poolHashes.end());
    return cap;
}

void
expectEquivalent(const std::string &name, unsigned threads,
                 bool crashImage)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 4;
    wcfg.testOps = 4;
    wcfg.postOps = 2;

    DetectorConfig full;
    full.backend = "full";
    full.crashImageMode = crashImage;
    DetectorConfig delta;
    delta.backend = "delta";
    delta.crashImageMode = crashImage;
    // A small cadence exercises the resync path inside one campaign.
    delta.deltaCheckpointInterval = 3;

    auto a = runWorkload(name, wcfg, full, threads);
    auto b = runWorkload(name, wcfg, delta, threads);

    std::string ctx = strprintf("%s threads=%u crash=%d", name.c_str(),
                                threads, crashImage);
    EXPECT_EQ(fingerprint(a.result), fingerprint(b.result)) << ctx;
    EXPECT_EQ(a.poolHashes, b.poolHashes) << ctx;
    EXPECT_EQ(a.result.stats.failurePoints, b.result.stats.failurePoints)
        << ctx;

    // The engine must actually have taken the delta path, and moved
    // fewer bytes than one full copy per post execution would.
    const auto &r = b.result.stats.restore;
    if (b.result.stats.postExecutions > 1) {
        EXPECT_GT(r.deltaRestores, 0u) << ctx;
        EXPECT_LT(r.bytesCopied(), a.result.stats.restore.bytesCopied())
            << ctx;
    }
    EXPECT_EQ(a.result.stats.restore.deltaRestores, 0u) << ctx;
}

TEST(DeltaEquivalence, EveryWorkloadSerial)
{
    for (const auto &name : workloads::workloadNames())
        expectEquivalent(name, 1, false);
}

TEST(DeltaEquivalence, EveryWorkloadParallel)
{
    for (const auto &name : workloads::workloadNames())
        expectEquivalent(name, 3, false);
}

TEST(DeltaEquivalence, CrashImageMode)
{
    // Crash-image restores derive dirty pages from fence-time durable
    // deltas instead of the write log — a separate code path.
    for (const auto &name : workloads::workloadNames()) {
        expectEquivalent(name, 1, true);
        expectEquivalent(name, 2, true);
    }
}

TEST(DeltaEquivalence, FullBugsuiteFindsTheSameBugs)
{
    DetectorConfig full;
    full.backend = "full";
    DetectorConfig delta;
    delta.backend = "delta";
    delta.deltaCheckpointInterval = 5;

    for (const auto &c : bugsuite::allBugCases()) {
        auto a = bugsuite::runBugCase(c, full);
        auto b = bugsuite::runBugCase(c, delta);
        EXPECT_EQ(fingerprint(a), fingerprint(b))
            << c.workload << " " << c.id;
        EXPECT_EQ(bugsuite::detected(c, a), bugsuite::detected(c, b))
            << c.workload << " " << c.id;
    }
}

/* --------------------------------------------------------------- */
/* Differential fuzzing: full copy is the oracle                   */
/* --------------------------------------------------------------- */

/**
 * Random {write, flush, fence} programs over cache-line-separated
 * slots (the test_fuzz_persistence shape), plus an occasional large
 * streaming write so delta pages see multi-page spans.
 */
void
fuzzProgram(PmRuntime &rt, std::uint64_t seed, unsigned length)
{
    constexpr unsigned numSlots = 6;
    constexpr std::size_t slotStride = 128;
    Rng rng(seed);
    trace::RoiScope roi(rt);
    std::uint64_t v = seed * 1000 + 1;
    for (unsigned i = 0; i < length; i++) {
        std::uint64_t pick = rng.below(12);
        unsigned slot = static_cast<unsigned>(rng.below(numSlots));
        auto *host = rt.pool().at<std::uint64_t>(slot * slotStride);
        if (pick < 5) {
            rt.store(*host, v++);
        } else if (pick < 8) {
            rt.clwb(host, 8);
        } else if (pick < 10) {
            rt.sfence();
        } else {
            // A 600-byte streaming write spans page boundaries at the
            // 256-byte delta page size.
            std::uint8_t buf[600];
            std::memset(buf, static_cast<int>(v++ & 0xFF), sizeof(buf));
            rt.ntCopyToPm(host, buf, sizeof(buf));
        }
    }
    rt.sfence();
}

void
fuzzPost(PmRuntime &rt)
{
    constexpr unsigned numSlots = 6;
    constexpr std::size_t slotStride = 128;
    trace::RoiScope roi(rt);
    std::uint64_t sum = 0;
    for (unsigned s = 0; s < numSlots; s++)
        sum += rt.load(*rt.pool().at<std::uint64_t>(s * slotStride));
    // Keep the reads observable.
    rt.store(*rt.pool().at<std::uint64_t>(numSlots * slotStride), sum);
    rt.clwb(rt.pool().at<std::uint64_t>(numSlots * slotStride), 8);
    rt.sfence();
}

class DeltaFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DeltaFuzz, MatchesFullCopyAcrossKnobSettings)
{
    std::uint64_t seed = GetParam();

    auto run = [&](const DetectorConfig &dcfg) {
        std::vector<std::uint64_t> hashes;
        auto res = Campaign::forProgram(
                       [&](PmRuntime &rt) {
                           fuzzProgram(rt, seed, 40);
                       },
                       [&](PmRuntime &rt) {
                           pm::PmPool &p = rt.pool();
                           hashes.push_back(fnv1a(p.data(), p.size()));
                           fuzzPost(rt);
                       })
                       .poolSize(1 << 16)
                       .config(dcfg)
                       .run();
        return std::make_pair(fingerprint(res), hashes);
    };

    DetectorConfig oracle;
    oracle.backend = "full";
    oracle.elideEmptyFailurePoints = false; // every fence tested
    auto want = run(oracle);

    for (std::size_t interval : {std::size_t{1}, std::size_t{2},
                                 std::size_t{1000}}) {
        for (std::size_t pageSize : {std::size_t{256},
                                     std::size_t{4096}}) {
            DetectorConfig dcfg = oracle;
            dcfg.backend = "delta";
            dcfg.deltaPageSize = pageSize;
            dcfg.deltaCheckpointInterval = interval;
            auto got = run(dcfg);
            EXPECT_EQ(got.first, want.first)
                << "seed " << seed << " interval " << interval
                << " page " << pageSize;
            EXPECT_EQ(got.second, want.second)
                << "seed " << seed << " interval " << interval
                << " page " << pageSize;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

} // namespace
