/**
 * @file
 * Randomized differential test of the commit-variable semantics
 * (paper condition (3)): random sequences of persisted slot writes
 * and commit writes, checked against an independent oracle.
 *
 * Each operation is store+CLWB+SFENCE, so the driver injects one
 * failure point per operation (before its fence). At that point the
 * operation's own write is still writeback-pending; the oracle
 * therefore predicts, per failure point:
 *   - consistent (last write between the last two commit writes): ok;
 *   - inconsistent and pending (the op's own write): RACE;
 *   - inconsistent and persisted (an earlier write): SEMANTIC.
 * The driver's findings, unioned over failure points, must match.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "core/driver.hh"
#include "harness.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;

constexpr unsigned numSlots = 3;
constexpr std::size_t slotStride = 128;
constexpr std::size_t commitOff = numSlots * slotStride;

enum class OpKind : std::uint8_t { WriteSlot, CommitWrite };

struct FuzzOp
{
    OpKind kind;
    unsigned slot;
};

struct Verdicts
{
    std::set<unsigned> races;
    std::set<unsigned> semantics;

    bool operator==(const Verdicts &) const = default;
};

std::vector<FuzzOp>
generate(std::uint64_t seed, unsigned length)
{
    Rng rng(seed);
    std::vector<FuzzOp> ops;
    for (unsigned i = 0; i < length; i++) {
        if (rng.below(10) < 7) {
            ops.push_back({OpKind::WriteSlot,
                           static_cast<unsigned>(rng.below(numSlots))});
        } else {
            ops.push_back({OpKind::CommitWrite, 0});
        }
    }
    return ops;
}

Verdicts
oracle(const std::vector<FuzzOp> &ops)
{
    Verdicts v;
    int tlast_slot[numSlots];
    for (unsigned s = 0; s < numSlots; s++)
        tlast_slot[s] = -1;
    int commit_last = -1, commit_prelast = -1;

    for (unsigned i = 0; i < ops.size(); i++) {
        // Op i's write has executed (shadow timestamps update at the
        // write), but its fence has not retired at the failure point.
        if (ops[i].kind == OpKind::WriteSlot) {
            tlast_slot[ops[i].slot] = static_cast<int>(i);
        } else {
            commit_prelast = commit_last;
            commit_last = static_cast<int>(i);
        }
        for (unsigned s = 0; s < numSlots; s++) {
            int tl = tlast_slot[s];
            if (tl < 0)
                continue; // never written: initial data is fine
            bool consistent =
                commit_prelast <= tl && tl < commit_last;
            if (consistent)
                continue;
            if (tl == static_cast<int>(i))
                v.races.insert(s); // the pending write itself
            else
                v.semantics.insert(s); // persisted but inconsistent
        }
    }
    return v;
}

Verdicts
detector(const std::vector<FuzzOp> &ops)
{
    pm::PmPool pool(1 << 20);
    core::DetectorConfig cfg;
    cfg.elideEmptyFailurePoints = false;
    core::Driver driver(pool, cfg);

    auto slot_host = [](pm::PmPool &p, unsigned s) {
        return p.at<std::uint64_t>(s * slotStride);
    };
    auto commit_host = [](pm::PmPool &p) {
        return p.at<std::uint64_t>(commitOff);
    };

    auto annotate = [&](PmRuntime &rt) {
        auto *cv = commit_host(rt.pool());
        rt.addCommitVar(*cv);
        for (unsigned s = 0; s < numSlots; s++)
            rt.addCommitRange(*cv, slot_host(rt.pool(), s), 8);
    };

    auto res = driver.run(
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            annotate(rt);
            std::uint64_t v = 1;
            for (const auto &op : ops) {
                if (op.kind == OpKind::WriteSlot) {
                    auto *h = slot_host(rt.pool(), op.slot);
                    rt.store(*h, v++);
                    rt.persistBarrier(h, 8);
                } else {
                    auto *cv = commit_host(rt.pool());
                    rt.store(*cv, v++);
                    rt.persistBarrier(cv, 8);
                }
            }
        },
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            annotate(rt);
            // Distinct source lines: findings dedupe per line pair.
            (void)rt.load(*slot_host(rt.pool(), 0));
            (void)rt.load(*slot_host(rt.pool(), 1));
            (void)rt.load(*slot_host(rt.pool(), 2));
        });

    Verdicts v;
    for (const auto &b : res.bugs) {
        auto slot =
            static_cast<unsigned>((b.addr - pool.base()) / slotStride);
        if (b.type == core::BugType::CrossFailureRace)
            v.races.insert(slot);
        else if (b.type == core::BugType::CrossFailureSemantic)
            v.semantics.insert(slot);
        else
            ADD_FAILURE() << "unexpected finding: " << b.str();
    }
    return v;
}

class FuzzSemantics : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSemantics, DriverMatchesOracle)
{
    std::uint64_t seed = GetParam();
    for (unsigned round = 0; round < 6; round++) {
        std::uint64_t s = seed * 777 + round;
        auto ops = generate(s, 16);
        Verdicts expect = oracle(ops);
        Verdicts got = detector(ops);
        EXPECT_EQ(got.races, expect.races)
            << "replay with XFD_FUZZ_SEED=" << s;
        EXPECT_EQ(got.semantics, expect.semantics)
            << "replay with XFD_FUZZ_SEED=" << s;
    }
}

TEST(FuzzSemanticsReplay, ReplayFromEnv)
{
    std::uint64_t s = 0;
    if (!xfdtest::fuzzSeedFromEnv(s))
        GTEST_SKIP()
            << "set XFD_FUZZ_SEED=<seed from a failure message> to "
               "replay a single fuzz program";
    auto ops = generate(s, 16);
    Verdicts expect = oracle(ops);
    Verdicts got = detector(ops);
    EXPECT_EQ(got.races, expect.races) << "XFD_FUZZ_SEED=" << s;
    EXPECT_EQ(got.semantics, expect.semantics)
        << "XFD_FUZZ_SEED=" << s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSemantics,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(FuzzSemanticsOracle, SanityOnKnownSequences)
{
    using K = OpKind;
    // write s0; commit: race at s0's own point (pending,
    // uncommitted); at the commit's point s0 is persisted but its
    // write is not yet *before* the last commit... it is: tlast=0 <
    // commit_last=1 and >= prelast(-1): consistent. So only a race.
    Verdicts v = oracle({{K::WriteSlot, 0}, {K::CommitWrite, 0}});
    EXPECT_EQ(v.races, (std::set<unsigned>{0}));
    EXPECT_TRUE(v.semantics.empty());

    // write s0; write s1; commit; commit: s0/s1 race at their own
    // points; at the second commit both are stale (written before the
    // pre-last commit? s0: tlast 0 < prelast... prelast=2 after the
    // 2nd commit; 0 < 2 -> inconsistent persisted -> semantic).
    v = oracle({{K::WriteSlot, 0},
                {K::WriteSlot, 1},
                {K::CommitWrite, 0},
                {K::CommitWrite, 0}});
    EXPECT_EQ(v.races, (std::set<unsigned>{0, 1}));
    EXPECT_EQ(v.semantics, (std::set<unsigned>{0, 1}));
}

} // namespace
