/**
 * @file
 * Shared campaign setup for the test suite.
 *
 * Most detection tests repeat the same four steps: build a fresh pool
 * at the deterministic base, wire a program (or a named workload)
 * into pre/post lambdas, run the driver, and assert on finding
 * classes. This header centralizes that boilerplate so a test states
 * only what is specific to it: the program, the config deltas, and
 * the expected findings.
 */

#ifndef XFD_TESTS_HARNESS_HH
#define XFD_TESTS_HARNESS_HH

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "core/campaign_json.hh"
#include "core/driver.hh"
#include "core/observer.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"
#include "workloads/workload.hh"

namespace xfdtest
{

constexpr std::size_t defaultPoolBytes = std::size_t{1} << 22;

/** Optional knobs for runCampaign()/runWorkload(). */
struct RunOptions
{
    xfd::core::DetectorConfig detector;
    unsigned threads = 1; ///< 1 = serial driver path
    std::size_t poolBytes = defaultPoolBytes;
    xfd::core::CampaignObserver *observer = nullptr;
};

/** Run a detection campaign over @p pre / @p post on a fresh pool. */
inline xfd::core::CampaignResult
runCampaign(xfd::core::ProgramFn pre, xfd::core::ProgramFn post,
            const RunOptions &opt = {})
{
    xfd::pm::PmPool pool(opt.poolBytes);
    xfd::core::Driver driver(pool, opt.detector);
    if (opt.observer)
        driver.setObserver(opt.observer);
    return driver.runParallel(std::move(pre), std::move(post),
                              opt.threads);
}

/** Run a detection campaign over the named workload. */
inline xfd::core::CampaignResult
runWorkload(const std::string &name,
            const xfd::workloads::WorkloadConfig &wcfg,
            const RunOptions &opt = {})
{
    auto w = xfd::workloads::makeWorkload(name, wcfg);
    return runCampaign(
        [&](xfd::trace::PmRuntime &rt) { w->pre(rt); },
        [&](xfd::trace::PmRuntime &rt) { w->post(rt); }, opt);
}

/**
 * Findings as a sorted multiset of (type, reader line, writer line,
 * note) — the order-insensitive identity serial/parallel equivalence
 * tests compare.
 */
inline std::vector<std::tuple<int, unsigned, unsigned, std::string>>
fingerprint(const xfd::core::CampaignResult &res)
{
    std::vector<std::tuple<int, unsigned, unsigned, std::string>> out;
    for (const auto &b : res.bugs) {
        out.emplace_back(static_cast<int>(b.type), b.reader.line,
                         b.writer.line, b.note);
    }
    std::sort(out.begin(), out.end());
    return out;
}

/**
 * Replay knob for the fuzz suites: when XFD_FUZZ_SEED is set, the
 * ReplayFromEnv tests re-run exactly that derived seed (the value a
 * failing fuzz iteration prints). Returns false when unset.
 */
inline bool
fuzzSeedFromEnv(std::uint64_t &out)
{
    const char *s = std::getenv("XFD_FUZZ_SEED");
    if (s == nullptr || *s == '\0')
        return false;
    out = std::strtoull(s, nullptr, 0);
    return true;
}

/** EXPECT_TRUE-able: at least @p atLeast findings of class @p t. */
inline ::testing::AssertionResult
hasFindingOfClass(const xfd::core::CampaignResult &res,
                  xfd::core::BugType t, std::size_t atLeast = 1)
{
    if (res.count(t) >= atLeast)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "expected >= " << atLeast << " finding(s) of class "
           << xfd::core::bugTypeId(t) << ", got " << res.count(t)
           << "\n"
           << res.summary();
}

/** EXPECT_TRUE-able: no findings of class @p t. */
inline ::testing::AssertionResult
hasNoFindingOfClass(const xfd::core::CampaignResult &res,
                    xfd::core::BugType t)
{
    if (res.count(t) == 0)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "expected no findings of class " << xfd::core::bugTypeId(t)
           << ", got " << res.count(t) << "\n"
           << res.summary();
}

/** EXPECT_TRUE-able: a completely clean campaign. */
inline ::testing::AssertionResult
hasNoFindings(const xfd::core::CampaignResult &res)
{
    if (res.bugs.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "expected a clean campaign\n"
           << res.summary();
}

} // namespace xfdtest

#endif // XFD_TESTS_HARNESS_HH
