/**
 * @file
 * Differential conformance tests: the crash-state oracle (src/oracle)
 * against the FSM-based detector, per failure point. The contract is
 * finding-class equivalence on the all-updates anchor candidate over
 * every workload and every bug-suite entry, attributed-only extras
 * from partial candidates, deterministic sampling, and no artifacts
 * on clean runs. Plus unit coverage for the SubsetMask identity the
 * disagreement artifacts carry and the --oracle mode parser.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>

#include "bugsuite/registry.hh"
#include "harness.hh"
#include "mutate/campaign.hh"
#include "obs/stats.hh"
#include "oracle/diff.hh"
#include "pmlib/objpool.hh"
#include "trace/subset.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using trace::PmRuntime;
using trace::SubsetMask;

/** Run one differential campaign over a stock workload. */
oracle::DiffReport
diffWorkload(const std::string &name, workloads::WorkloadConfig wcfg,
             oracle::DiffConfig cfg = {})
{
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload(name, std::move(wcfg));
    pm::PmPool pool(xfdtest::defaultPoolBytes);
    return oracle::runDifferentialCampaign(
        pool, [w](PmRuntime &rt) { w->pre(rt); },
        [w](PmRuntime &rt) { w->post(rt); }, cfg);
}

/** Small-scale config: exhaustive tier stays fast. */
workloads::WorkloadConfig
smallConfig(const std::string &name)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 3;
    wcfg.testOps = 3;
    if (name == "memcached")
        wcfg.memcachedCapacity = 8;
    return wcfg;
}

TEST(SubsetMask, SetTestCountAll)
{
    SubsetMask m(70); // cross a word boundary
    EXPECT_EQ(m.size(), 70u);
    EXPECT_TRUE(m.none());
    EXPECT_FALSE(m.all());
    m.set(0);
    m.set(63);
    m.set(69);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_TRUE(m.test(63));
    EXPECT_FALSE(m.test(64));
    m.set(63, false);
    EXPECT_EQ(m.count(), 2u);
    m.setAll();
    EXPECT_TRUE(m.all());
    EXPECT_EQ(m.count(), 70u);
}

TEST(SubsetMask, HexRoundTripIsStable)
{
    for (std::size_t bits : {0u, 1u, 4u, 7u, 64u, 65u, 130u}) {
        SubsetMask m(bits);
        for (std::size_t i = 0; i < bits; i += 3)
            m.set(i);
        std::string hex = m.toHex();
        EXPECT_EQ(hex.size(), (bits + 3) / 4);
        SubsetMask back;
        ASSERT_TRUE(SubsetMask::fromHex(hex, bits, back)) << hex;
        EXPECT_EQ(back, m);
    }
}

TEST(SubsetMask, FromHexRejectsMalformedSpellings)
{
    SubsetMask out;
    EXPECT_FALSE(SubsetMask::fromHex("ff", 4, out)); // too many digits
    EXPECT_FALSE(SubsetMask::fromHex("f", 8, out));  // too few
    EXPECT_FALSE(SubsetMask::fromHex("g", 4, out));  // not hex
    EXPECT_FALSE(SubsetMask::fromHex("8", 3, out));  // bit past size
    EXPECT_TRUE(SubsetMask::fromHex("", 0, out));
    EXPECT_EQ(out.size(), 0u);
}

TEST(SubsetMask, OrdersAsSetKey)
{
    SubsetMask a(8), b(8);
    b.set(0);
    EXPECT_TRUE(a < b || b < a);
    EXPECT_FALSE(a < a);
    std::set<SubsetMask> s{a, b, a};
    EXPECT_EQ(s.size(), 2u);
}

TEST(OracleMode, ParseSpecs)
{
    bool ex = false;
    std::size_t n = 0;
    std::string err;
    EXPECT_TRUE(oracle::parseOracleMode("exhaustive", ex, n, &err));
    EXPECT_TRUE(ex);
    EXPECT_TRUE(oracle::parseOracleMode("sample", ex, n, &err));
    EXPECT_FALSE(ex);
    EXPECT_TRUE(oracle::parseOracleMode("sample:128", ex, n, &err));
    EXPECT_FALSE(ex);
    EXPECT_EQ(n, 128u);
    EXPECT_FALSE(oracle::parseOracleMode("sample:0", ex, n, &err));
    EXPECT_FALSE(oracle::parseOracleMode("sample:x", ex, n, &err));
    EXPECT_FALSE(oracle::parseOracleMode("bogus", ex, n, &err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
}

TEST(OracleDiff, AllWorkloadsAgreeAtExhaustiveTier)
{
    for (const std::string &name : workloads::workloadNames()) {
        SCOPED_TRACE(name);
        oracle::DiffReport rep = diffWorkload(name, smallConfig(name));
        EXPECT_TRUE(rep.clean()) << rep.summary();
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0) << rep.summary();
        EXPECT_GT(rep.failurePoints, 0u);
        EXPECT_GT(rep.statesEnumerated, 0u);
        EXPECT_GE(rep.candidatesRun, rep.failurePoints);
        EXPECT_TRUE(rep.artifacts.empty());
    }
}

TEST(OracleDiff, FullBugsuiteAgreesPerFailurePoint)
{
    for (const bugsuite::BugCase &c : bugsuite::allBugCases()) {
        SCOPED_TRACE(c.id.empty() ? c.workload : c.id);
        oracle::DiffConfig cfg;
        // Cases that live only on partial crash images declare the
        // exploration tier they need (mirrors runBugCase).
        cfg.detector.crashStates = c.crashStates;
        oracle::DiffReport rep;
        if (c.workload == "pool_create") {
            // §6.3.2 bug 4 lives in the library, not in a workload.
            pm::PmPool pool(xfdtest::defaultPoolBytes);
            rep = oracle::runDifferentialCampaign(
                pool,
                [](PmRuntime &rt) {
                    trace::RoiScope roi(rt);
                    pmlib::ObjPool::create(rt, "bug4", 64);
                },
                [](PmRuntime &rt) {
                    trace::RoiScope roi(rt);
                    pmlib::ObjPool::open(rt, "bug4");
                },
                cfg);
        } else {
            workloads::WorkloadConfig wcfg;
            wcfg.initOps = c.initOps;
            wcfg.testOps = c.testOps;
            wcfg.postOps = c.postOps;
            wcfg.roiFromStart = c.roiFromStart;
            if (c.workload == "memcached")
                wcfg.memcachedCapacity = 8;
            if (!c.id.empty())
                wcfg.bugs.enable(c.id);
            rep = diffWorkload(c.workload, std::move(wcfg), cfg);
        }
        EXPECT_TRUE(rep.clean()) << rep.summary();
        EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0) << rep.summary();
        // The planted bug must still be caught by the detector side —
        // the oracle comparison must not perturb detection.
        EXPECT_TRUE(bugsuite::detected(c, rep.detector))
            << rep.detector.summary();
    }
}

TEST(OracleDiff, SamplingIsDeterministicPerSeed)
{
    workloads::WorkloadConfig wcfg = smallConfig("ctree");
    wcfg.bugs.enable("ctree.race.link_no_add");

    oracle::DiffConfig cfg;
    cfg.exhaustive = false;
    cfg.sampleCount = 16;
    cfg.seed = 7;
    oracle::DiffReport a = diffWorkload("ctree", wcfg, cfg);
    oracle::DiffReport b = diffWorkload("ctree", wcfg, cfg);

    ASSERT_EQ(a.perFp.size(), b.perFp.size());
    for (std::size_t i = 0; i < a.perFp.size(); i++) {
        SCOPED_TRACE(i);
        EXPECT_EQ(a.perFp[i].fp, b.perFp[i].fp);
        EXPECT_EQ(a.perFp[i].frontier, b.perFp[i].frontier);
        EXPECT_EQ(a.perFp[i].candidates, b.perFp[i].candidates);
        EXPECT_EQ(a.perFp[i].sampled, b.perFp[i].sampled);
        EXPECT_EQ(a.perFp[i].oracleClasses, b.perFp[i].oracleClasses);
        EXPECT_EQ(a.perFp[i].extras, b.perFp[i].extras);
    }
    EXPECT_EQ(a.statesEnumerated, b.statesEnumerated);
    EXPECT_EQ(a.subsetsSampled, b.subsetsSampled);
    EXPECT_EQ(a.summary(), b.summary());
    EXPECT_TRUE(a.clean()) << a.summary();

    // A different seed may pick different subsets, but conformance on
    // the anchor candidate must hold regardless.
    cfg.seed = 1234;
    oracle::DiffReport c = diffWorkload("ctree", wcfg, cfg);
    EXPECT_TRUE(c.clean()) << c.summary();
    EXPECT_DOUBLE_EQ(c.agreementRate(), 1.0);
}

TEST(OracleDiff, CleanRunWritesNoArtifacts)
{
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "xfd-oracle-artifacts-test";
    fs::remove_all(dir);

    oracle::DiffConfig cfg;
    cfg.artifactDir = dir.string();
    oracle::DiffReport rep =
        diffWorkload("btree", smallConfig("btree"), cfg);
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_TRUE(rep.artifacts.empty());
    // No disagreement: the harness must not even create the directory.
    EXPECT_FALSE(fs::exists(dir));
}

TEST(OracleDiff, StatsExportAndJsonSection)
{
    oracle::DiffReport rep = diffWorkload("btree", smallConfig("btree"));
    ASSERT_TRUE(rep.clean()) << rep.summary();

    obs::StatsRegistry reg;
    oracle::exportOracleStats(reg, rep);
    EXPECT_EQ(reg.value("campaign.oracle.failure_points"),
              static_cast<double>(rep.failurePoints));
    EXPECT_EQ(reg.value("campaign.oracle.states_enumerated"),
              static_cast<double>(rep.statesEnumerated));
    EXPECT_EQ(reg.value("campaign.oracle.candidates_run"),
              static_cast<double>(rep.candidatesRun));
    EXPECT_EQ(reg.value("campaign.oracle.disagreements"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("campaign.oracle.agreement_rate"), 1.0);

    core::JsonSection sec = oracle::oracleJsonSection(rep);
    EXPECT_EQ(sec.key, "oracle");
    std::ostringstream os;
    obs::JsonWriter w(os);
    sec.body(w);
    std::string json = os.str();
    EXPECT_NE(json.find("\"agreement_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"disagreements\""), std::string::npos);
    EXPECT_NE(json.find("\"states_enumerated\""), std::string::npos);
}

/**
 * The xfdetect mutation branch runs the oracle on the unmutated
 * workload next to the mutation campaign. Replicate that composition:
 * the quick-operator recall must stay 1.0 with the oracle config set
 * (inner campaigns strip it), and the sample:64 differential pass over
 * the same clean workload must conform.
 */
TEST(OracleDiff, MutationRecallPreservedUnderSampledOracle)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 5;
    wcfg.testOps = 5;
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload("btree", wcfg);

    mutate::MutationConfig mcfg;
    mcfg.pre = [w](PmRuntime &rt) { w->pre(rt); };
    mcfg.post = [w](PmRuntime &rt) { w->post(rt); };
    mcfg.poolBytes = xfdtest::defaultPoolBytes;
    mcfg.detector.oracleMode = "sample:64"; // must not leak inward
    mcfg.ops[static_cast<std::size_t>(mutate::MutationOp::DropFlush)] =
        true;
    mcfg.ops[static_cast<std::size_t>(mutate::MutationOp::DropFence)] =
        true;
    mutate::MutationReport mrep = mutate::runMutationCampaign(mcfg);
    EXPECT_EQ(mrep.baselineFindings, 0u);
    EXPECT_GT(mrep.aggregate.mutants, 0u);
    EXPECT_DOUBLE_EQ(mrep.aggregate.recall(), 1.0)
        << mrep.scoreboard();

    oracle::DiffConfig cfg;
    cfg.exhaustive = false;
    cfg.sampleCount = 64;
    pm::PmPool pool(xfdtest::defaultPoolBytes);
    oracle::DiffReport rep = oracle::runDifferentialCampaign(
        pool, [w](PmRuntime &rt) { w->pre(rt); },
        [w](PmRuntime &rt) { w->post(rt); }, cfg);
    EXPECT_TRUE(rep.clean()) << rep.summary();
    EXPECT_DOUBLE_EQ(rep.agreementRate(), 1.0) << rep.summary();
}

} // namespace
