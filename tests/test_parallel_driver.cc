/**
 * @file
 * Parallel detection tests — the paper's named future work ("the
 * post-failure executions are independent... and therefore, can be
 * parallelized", §6.2.1). The parallel driver must produce exactly
 * the findings of the serial run, for clean and buggy programs alike.
 */

#include <gtest/gtest.h>

#include "bugsuite/registry.hh"
#include "harness.hh"

namespace
{

using namespace xfd;
using core::BugType;
using core::CampaignResult;
using core::Driver;
using trace::PmRuntime;
using workloads::makeWorkload;
using workloads::WorkloadConfig;
using xfdtest::fingerprint;

CampaignResult
runWorkload(const std::string &name, const WorkloadConfig &cfg,
            unsigned threads)
{
    xfdtest::RunOptions opt;
    opt.threads = threads;
    return xfdtest::runWorkload(name, cfg, opt);
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParallelEquivalence, CleanWorkloadSameFindings)
{
    WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 6;
    cfg.postOps = 3;
    auto serial = runWorkload(GetParam(), cfg, 1);
    auto par = runWorkload(GetParam(), cfg, 4);
    EXPECT_EQ(fingerprint(serial), fingerprint(par));
    EXPECT_EQ(serial.stats.failurePoints, par.stats.failurePoints);
    EXPECT_EQ(serial.stats.postExecutions, par.stats.postExecutions);
    EXPECT_EQ(par.stats.threads, 4u);

    // Accounting must merge exactly across workers: each worker's
    // shadow counts its own chunk's checks, and elision happens once
    // in the shared plan.
    EXPECT_EQ(serial.stats.checksPerformed, par.stats.checksPerformed);
    EXPECT_EQ(serial.stats.checksSkipped, par.stats.checksSkipped);
    EXPECT_EQ(serial.stats.elidedPoints, par.stats.elidedPoints);
    EXPECT_EQ(serial.stats.orderingCandidates,
              par.stats.orderingCandidates);
    EXPECT_EQ(serial.stats.preTraceEntries, par.stats.preTraceEntries);
    EXPECT_EQ(serial.stats.postTraceEntries,
              par.stats.postTraceEntries);
}

INSTANTIATE_TEST_SUITE_P(Micro, ParallelEquivalence,
                         ::testing::Values("btree", "hashmap_tx",
                                           "hashmap_atomic"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '_')
                                     c = 'X';
                             }
                             return n;
                         });

TEST(ParallelDriver, BuggyCampaignsMatchSerial)
{
    const char *const ids[] = {
        "btree.race.leaf_no_add",
        "hashmap_atomic.sem.no_recount",
        "hashmap_tx.race.slot_no_add",
    };
    for (const char *id : ids) {
        for (const auto &c : bugsuite::allBugCases()) {
            if (c.id != id)
                continue;
            SCOPED_TRACE(id);
            auto serial = bugsuite::runBugCase(c);

            // Re-run the same campaign through the parallel path.
            workloads::WorkloadConfig wcfg;
            wcfg.initOps = c.initOps;
            wcfg.testOps = c.testOps;
            wcfg.postOps = c.postOps;
            wcfg.roiFromStart = c.roiFromStart;
            wcfg.bugs.enable(c.id);
            auto w = makeWorkload(c.workload, std::move(wcfg));
            xfdtest::RunOptions opt;
            opt.threads = 3;
            auto par = xfdtest::runCampaign(
                [&](PmRuntime &rt) { w->pre(rt); },
                [&](PmRuntime &rt) { w->post(rt); }, opt);
            EXPECT_EQ(fingerprint(serial), fingerprint(par));
            EXPECT_TRUE(bugsuite::detected(c, par));
        }
    }
}

TEST(ParallelDriver, MoreThreadsThanPointsIsFine)
{
    WorkloadConfig cfg;
    cfg.initOps = 0;
    cfg.testOps = 1;
    auto res = runWorkload("btree", cfg, 64);
    EXPECT_EQ(res.stats.postExecutions, res.stats.failurePoints);
}

TEST(ParallelDriver, ZeroThreadsMeansSerial)
{
    WorkloadConfig cfg;
    cfg.initOps = 2;
    cfg.testOps = 2;
    auto w = makeWorkload("ctree", cfg);
    xfdtest::RunOptions opt;
    opt.threads = 0;
    auto res = xfdtest::runCampaign(
        [&](PmRuntime &rt) { w->pre(rt); },
        [&](PmRuntime &rt) { w->post(rt); }, opt);
    EXPECT_EQ(res.stats.threads, 1u);
    EXPECT_GT(res.stats.postExecutions, 0u);
}

TEST(ParallelDriver, PoolHoldsFinalStateAfterParallelRun)
{
    WorkloadConfig cfg;
    cfg.initOps = 4;
    cfg.testOps = 4;
    auto w = makeWorkload("rbtree", cfg);
    pm::PmPool pool(1 << 22);
    Driver driver(pool, {});
    (void)driver.runParallel([&](PmRuntime &rt) { w->pre(rt); },
                             [&](PmRuntime &rt) { w->post(rt); }, 4);
    // The pool must hold the final pre-failure contents: verify()
    // checks the structure against the reference model.
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    EXPECT_EQ(w->verify(rt), "");
}

} // namespace
