/**
 * @file
 * Multithreaded pre-failure programs (paper §7): "The frontend of
 * XFDetector is thread-safe... The concurrent threads in our
 * workloads perform PM operations on independent tasks." Two threads
 * update disjoint PM regions through one shared runtime; the campaign
 * must stay clean for correct protocols and catch a per-thread
 * missing-persist bug.
 */

#include <gtest/gtest.h>

#include <thread>

#include "core/driver.hh"
#include "pm/pool.hh"
#include "pmlib/atomic.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using core::BugType;
using trace::PmRuntime;

constexpr unsigned slotsPerThread = 4;
constexpr std::size_t regionStride = 8192;

std::uint64_t *
slotHost(pm::PmPool &pool, unsigned thread, unsigned slot)
{
    return pool.at<std::uint64_t>(thread * regionStride + slot * 128);
}

/**
 * Worker: failure-atomic updates confined to its own region (any slot
 * the post-failure stage reads unconditionally must be published
 * atomically — a plain store races at its own fence point). The buggy
 * variant publishes one slot with a bare, unpersisted store.
 */
void
threadBody(PmRuntime &rt, unsigned tid, bool skip_persist)
{
    for (unsigned i = 0; i < 12; i++) {
        auto *slot = slotHost(rt.pool(), tid, i % slotsPerThread);
        std::uint64_t v = tid * 1000 + i;
        bool last_slot = (i % slotsPerThread) == slotsPerThread - 1;
        // A scratch write with its own persist: creates real ordering
        // points between the atomic updates (a bare fence there would
        // be elided — nothing can change between two atomic stores).
        // The post-failure stage never reads the scratch slot.
        auto *scratch = slotHost(rt.pool(), tid, slotsPerThread);
        rt.store(*scratch, v);
        rt.persistBarrier(scratch, 8);
        if (skip_persist && last_slot)
            rt.store(*slot, v); // bug: never persisted
        else
            pmlib::atomicStore(rt, *slot, v);
    }
}

core::CampaignResult
runParallelPre(bool thread1_buggy)
{
    pm::PmPool pool(1 << 20);
    core::Driver driver(pool, {});
    return driver.run(
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            std::thread t0(threadBody, std::ref(rt), 0, false);
            std::thread t1(threadBody, std::ref(rt), 1, thread1_buggy);
            t0.join();
            t1.join();
        },
        [&](PmRuntime &rt) {
            trace::RoiScope roi(rt);
            // Single-threaded recovery reads every slot.
            for (unsigned t = 0; t < 2; t++) {
                for (unsigned s = 0; s < slotsPerThread; s++)
                    (void)rt.load(*slotHost(rt.pool(), t, s));
            }
        });
}

TEST(Multithreaded, TraceCapturesBothThreads)
{
    pm::PmPool pool(1 << 20);
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    rt.roiBegin();
    std::thread t0(threadBody, std::ref(rt), 0, false);
    std::thread t1(threadBody, std::ref(rt), 1, false);
    t0.join();
    t1.join();
    rt.roiEnd();

    // Per iteration: scratch write + clwb + sfence, then LibCall +
    // write + clwb + sfence (atomicStore); 2 threads, 12 iterations,
    // plus the RoI pair.
    EXPECT_EQ(buf.size(), 2u + 2 * 12 * 7);
    // Sequence numbers must be dense despite concurrent emission.
    for (std::size_t i = 0; i < buf.size(); i++)
        EXPECT_EQ(buf[i].seq, i);
    // Both regions were written.
    EXPECT_EQ(*slotHost(pool, 0, 0), 0u * 1000 + 8);
    EXPECT_EQ(*slotHost(pool, 1, 0), 1u * 1000 + 8);
}

TEST(Multithreaded, IndependentTasksAreClean)
{
    auto res = runParallelPre(false);
    EXPECT_EQ(res.count(BugType::CrossFailureRace), 0u)
        << res.summary();
    EXPECT_GT(res.stats.failurePoints, 0u);
}

TEST(Multithreaded, PerThreadMissingPersistDetected)
{
    auto res = runParallelPre(true);
    EXPECT_GE(res.count(BugType::CrossFailureRace), 1u)
        << res.summary();
    // The racy slot belongs to thread 1's region.
    bool in_thread1_region = false;
    for (const auto &b : res.bugs) {
        if (b.type == BugType::CrossFailureRace &&
            b.addr >= defaultPoolBase + regionStride &&
            b.addr < defaultPoolBase + 2 * regionStride) {
            in_thread1_region = true;
        }
    }
    EXPECT_TRUE(in_thread1_region) << res.summary();
}

} // namespace
