/**
 * @file
 * Mutation-campaign scoring tests: the engine's contract is that a
 * correct workload scores a clean baseline, every planted drop-flush
 * and drop-fence mutant is detected (recall 1.0 — the paper's Table 4
 * claims exactly these misses are caught), and the score is a pure
 * function of the plan — serial and parallel inner campaigns must
 * agree digit for digit.
 */

#include <gtest/gtest.h>

#include <memory>

#include "harness.hh"
#include "mutate/campaign.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using mutate::MutationOp;
using mutate::MutationReport;
using mutate::OpScore;
using trace::PmRuntime;

std::size_t
opIdx(MutationOp op)
{
    return static_cast<std::size_t>(op);
}

/** Mutation campaign over the bug-free btree workload. */
mutate::MutationConfig
btreeConfig(const mutate::PerOp<bool> &ops, unsigned threads = 1)
{
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 5;
    wcfg.testOps = 5;
    std::shared_ptr<workloads::Workload> w =
        workloads::makeWorkload("btree", wcfg);

    mutate::MutationConfig cfg;
    cfg.pre = [w](PmRuntime &rt) { w->pre(rt); };
    cfg.post = [w](PmRuntime &rt) { w->post(rt); };
    cfg.poolBytes = std::size_t{1} << 22;
    cfg.threads = threads;
    cfg.ops = ops;
    return cfg;
}

mutate::PerOp<bool>
quickOps()
{
    mutate::PerOp<bool> ops{};
    ops[opIdx(MutationOp::DropFlush)] = true;
    ops[opIdx(MutationOp::DropFence)] = true;
    return ops;
}

TEST(MutationCampaign, QuickOpsPerfectRecallOnBtree)
{
    auto rep = mutate::runMutationCampaign(btreeConfig(quickOps()));

    // The workload is correct: the unmutated run must be clean.
    EXPECT_EQ(rep.baselineFindings, 0u);
    EXPECT_TRUE(xfdtest::hasNoFindings(rep.baseline));

    const OpScore &df = rep.perOp[opIdx(MutationOp::DropFlush)];
    const OpScore &dn = rep.perOp[opIdx(MutationOp::DropFence)];
    EXPECT_GT(df.mutants, 0u);
    EXPECT_GT(dn.mutants, 0u);
    EXPECT_DOUBLE_EQ(df.recall(), 1.0) << rep.scoreboard();
    EXPECT_DOUBLE_EQ(dn.recall(), 1.0) << rep.scoreboard();
    EXPECT_DOUBLE_EQ(rep.aggregate.precision(), 1.0)
        << rep.scoreboard();

    // Every planned mutation must actually fire — an unfired mutant
    // means the occurrence addressing drifted from the real trace.
    for (const auto &o : rep.outcomes)
        EXPECT_TRUE(o.fired) << o.mutant.describe();
}

TEST(MutationCampaign, FullOpSetPlansBroadlyAndIsDetected)
{
    mutate::PerOp<bool> all{};
    for (auto &b : all)
        b = true;
    auto rep = mutate::runMutationCampaign(btreeConfig(all));

    // The acceptance floor: a short btree run already yields a
    // substantial campaign, and the detector catches every mutant.
    EXPECT_GE(rep.aggregate.mutants, 20u) << rep.scoreboard();
    EXPECT_DOUBLE_EQ(rep.aggregate.recall(), 1.0) << rep.scoreboard();
    EXPECT_EQ(rep.baselineFindings, 0u);

    // btree's transactions give the tx-level operators real sites.
    EXPECT_GT(rep.perOp[opIdx(MutationOp::SkipTxAdd)].mutants, 0u);
    EXPECT_GT(rep.perOp[opIdx(MutationOp::CommitBeforeData)].mutants,
              0u);
    EXPECT_GT(rep.perOp[opIdx(MutationOp::StaleBackup)].mutants, 0u);
}

TEST(MutationCampaign, SerialAndParallelScoresAgree)
{
    auto serial = mutate::runMutationCampaign(btreeConfig(quickOps(), 1));
    auto par = mutate::runMutationCampaign(btreeConfig(quickOps(), 4));

    ASSERT_EQ(serial.outcomes.size(), par.outcomes.size());
    for (std::size_t i = 0; i < serial.outcomes.size(); i++) {
        SCOPED_TRACE(serial.outcomes[i].mutant.describe());
        EXPECT_EQ(serial.outcomes[i].detected, par.outcomes[i].detected);
        EXPECT_EQ(serial.outcomes[i].matchedFindings,
                  par.outcomes[i].matchedFindings);
        EXPECT_EQ(serial.outcomes[i].unmatchedFindings,
                  par.outcomes[i].unmatchedFindings);
    }
    for (std::size_t op = 0; op < mutate::mutationOpCount; op++) {
        EXPECT_EQ(serial.perOp[op].mutants, par.perOp[op].mutants);
        EXPECT_EQ(serial.perOp[op].detected, par.perOp[op].detected);
        EXPECT_EQ(serial.perOp[op].truePositives,
                  par.perOp[op].truePositives);
        EXPECT_EQ(serial.perOp[op].falsePositives,
                  par.perOp[op].falsePositives);
    }
    EXPECT_EQ(serial.baselineFindings, par.baselineFindings);
}

TEST(MutationCampaign, PerOpCapIsDeterministicAndHonored)
{
    auto cfg = btreeConfig(quickOps());
    cfg.maxPerOp = 2;
    auto a = mutate::runMutationCampaign(cfg);
    auto b = mutate::runMutationCampaign(cfg);

    EXPECT_GT(a.enumerated, a.aggregate.mutants);
    for (std::size_t op = 0; op < mutate::mutationOpCount; op++)
        EXPECT_LE(a.perOp[op].mutants, 2u);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); i++) {
        EXPECT_EQ(a.outcomes[i].mutant.op, b.outcomes[i].mutant.op);
        EXPECT_EQ(a.outcomes[i].mutant.occurrence,
                  b.outcomes[i].mutant.occurrence);
    }
}

/**
 * The stock workloads never use non-temporal stores, so demote_flush
 * needs a synthetic program: a publication protocol whose payload is
 * ntstored, then fenced, then published through a guard flag. The
 * recovery reads the guard under SkipDetectionScope (the standard
 * commit-flag annotation) and the payload only when published, so the
 * baseline is clean. Demoting the ntstore to a cached store leaves
 * the payload unflushed at the publish point — a cross-failure race.
 */
TEST(MutationCampaign, DemoteFlushOnSyntheticNtProgram)
{
    mutate::MutationConfig cfg;
    cfg.pre = [](PmRuntime &rt) {
        trace::RoiScope roi(rt);
        auto *a = rt.pool().at<std::uint64_t>(0);
        auto *valid = rt.pool().at<std::uint64_t>(64);
        rt.ntstore(*a, std::uint64_t{1});
        rt.sfence(); // payload persisted: safe to publish
        rt.store(*valid, std::uint64_t{1});
        rt.persistBarrier(valid, 8);
    };
    cfg.post = [](PmRuntime &rt) {
        trace::RoiScope roi(rt);
        auto *a = rt.pool().at<std::uint64_t>(0);
        auto *valid = rt.pool().at<std::uint64_t>(64);
        std::uint64_t published;
        {
            trace::SkipDetectionScope skip(rt);
            published = rt.load(*valid);
        }
        if (published)
            (void)rt.load(*a);
    };
    cfg.poolBytes = std::size_t{1} << 20;
    cfg.ops = mutate::PerOp<bool>{};
    cfg.ops[opIdx(MutationOp::DemoteFlush)] = true;
    cfg.ops[opIdx(MutationOp::DropFence)] = true;

    auto rep = mutate::runMutationCampaign(cfg);
    EXPECT_EQ(rep.baselineFindings, 0u)
        << rep.baseline.summary();
    const OpScore &dm = rep.perOp[opIdx(MutationOp::DemoteFlush)];
    EXPECT_EQ(dm.mutants, 1u) << rep.scoreboard();
    EXPECT_DOUBLE_EQ(dm.recall(), 1.0) << rep.scoreboard();
    EXPECT_DOUBLE_EQ(rep.aggregate.recall(), 1.0) << rep.scoreboard();
}

TEST(MutationCampaign, ScoreboardNamesOperatorsAndAggregate)
{
    auto cfg = btreeConfig(quickOps());
    cfg.maxPerOp = 2;
    auto rep = mutate::runMutationCampaign(cfg);
    std::string sb = rep.scoreboard();
    EXPECT_NE(sb.find("drop_flush"), std::string::npos) << sb;
    EXPECT_NE(sb.find("drop_fence"), std::string::npos) << sb;
    EXPECT_NE(sb.find("aggregate"), std::string::npos) << sb;
}

TEST(MutationOps, ParseSpecs)
{
    mutate::PerOp<bool> ops{};
    std::string err;

    // "all" covers the fault operators; the repair (insertion)
    // operators are applied by --fix plans, never planted as mutants.
    EXPECT_TRUE(mutate::parseMutationOps("all", ops, &err));
    for (std::size_t i = 0; i < mutate::mutationOpCount; i++)
        EXPECT_EQ(ops[i], i < mutate::faultOpCount) << i;

    EXPECT_TRUE(mutate::parseMutationOps("add_flush", ops, &err));
    EXPECT_TRUE(ops[opIdx(MutationOp::AddFlush)]);

    EXPECT_TRUE(mutate::parseMutationOps("quick", ops, &err));
    EXPECT_TRUE(ops[opIdx(MutationOp::DropFlush)]);
    EXPECT_TRUE(ops[opIdx(MutationOp::DropFence)]);
    EXPECT_FALSE(ops[opIdx(MutationOp::SkipTxAdd)]);

    EXPECT_TRUE(
        mutate::parseMutationOps("skip_tx_add,stale_backup", ops, &err));
    EXPECT_TRUE(ops[opIdx(MutationOp::SkipTxAdd)]);
    EXPECT_TRUE(ops[opIdx(MutationOp::StaleBackup)]);
    EXPECT_FALSE(ops[opIdx(MutationOp::DropFlush)]);

    EXPECT_FALSE(mutate::parseMutationOps("no_such_op", ops, &err));
    EXPECT_NE(err.find("no_such_op"), std::string::npos);
    EXPECT_FALSE(mutate::parseMutationOps("", ops, &err));
}

} // namespace
