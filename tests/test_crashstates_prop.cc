/**
 * @file
 * Property tests pinning the crash-state candidate enumeration the
 * --crash-states mode and the oracle share (trace::CandidateSet):
 * every generated mask satisfies the per-cell prefix closure, the
 * all-updates anchor leads the enumeration, masks never repeat (so
 * the driver's equivalence-class pruning can key on mask identity),
 * and a fixed (seed, stream) pair reproduces the sequence exactly.
 * Randomized frontiers are seeded; XFD_FUZZ_SEED replays one case.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "harness.hh"
#include "trace/candidates.hh"

namespace
{

using namespace xfd;
using trace::CandidateSet;
using trace::FrontierEvent;
using trace::SubsetMask;

/**
 * A random frontier of @p k events spread over a random number of
 * cells. Indices are assigned to cells in ascending order, so each
 * chain is ascending as the CandidateSet contract requires.
 */
CandidateSet
randomSet(Rng &rng, std::size_t k)
{
    std::vector<FrontierEvent> frontier;
    for (std::size_t i = 0; i < k; i++) {
        frontier.push_back({static_cast<std::uint32_t>(i * 3 + 1),
                            0x1000 + i, 1});
    }
    std::size_t cells = k ? 1 + rng.below(k) : 0;
    std::vector<std::vector<std::size_t>> chains(cells);
    for (std::size_t i = 0; i < k; i++)
        chains[rng.below(cells)].push_back(i);
    return CandidateSet(std::move(frontier), std::move(chains));
}

CandidateSet::EnumerateOptions
randomOptions(Rng &rng)
{
    CandidateSet::EnumerateOptions opt;
    opt.exhaustive = rng.below(2) == 0;
    opt.frontierLimit = 4 + rng.below(6);
    opt.sampleCount = 2 + rng.below(40);
    opt.seed = rng.next();
    opt.stream = rng.next();
    return opt;
}

void
fuzzOne(std::uint64_t seed)
{
    Rng rng(seed);
    std::size_t k = rng.below(13);
    CandidateSet set = randomSet(rng, k);
    CandidateSet::EnumerateOptions opt = randomOptions(rng);

    CandidateSet::Enumeration en = set.enumerate(opt);
    ASSERT_FALSE(en.masks.empty()) << "XFD_FUZZ_SEED=" << seed;

    // The anchor (all updates applied) always leads.
    EXPECT_EQ(en.masks[0].size(), set.bits());
    EXPECT_TRUE(en.masks[0].all()) << "XFD_FUZZ_SEED=" << seed;

    std::set<SubsetMask> seen;
    for (const SubsetMask &m : en.masks) {
        EXPECT_EQ(m.size(), set.bits());
        // Prefix closure: per cell, the applied events form a prefix
        // of the cell's write tail.
        EXPECT_TRUE(set.legal(m))
            << "illegal mask " << m.toHex() << " XFD_FUZZ_SEED=" << seed;
        // Legal masks are fixed points of repair().
        SubsetMask repaired = m;
        set.repair(repaired);
        EXPECT_EQ(repaired, m) << "XFD_FUZZ_SEED=" << seed;
        // No duplicates: the driver's equivalence pruning keys
        // candidates by mask identity, so a repeat would silently
        // halve coverage.
        EXPECT_TRUE(seen.insert(m).second)
            << "duplicate mask " << m.toHex()
            << " XFD_FUZZ_SEED=" << seed;
    }

    // Sampling promises the empty image too (nothing persisted).
    if (k > 0 && !opt.exhaustive) {
        SubsetMask none(set.bits());
        EXPECT_TRUE(seen.count(none)) << "XFD_FUZZ_SEED=" << seed;
    }

    // Determinism: the same (seed, stream) reproduces the sequence
    // mask-for-mask — what keeps serial, parallel and batched
    // campaigns fingerprint-identical.
    CandidateSet::Enumeration again = set.enumerate(opt);
    EXPECT_EQ(again.masks, en.masks) << "XFD_FUZZ_SEED=" << seed;

    // repair() always lands on a legal mask, from any starting point.
    for (int i = 0; i < 8; i++) {
        SubsetMask m(set.bits());
        for (std::size_t b = 0; b < set.bits(); b++) {
            if (rng.below(2))
                m.set(b);
        }
        set.repair(m);
        EXPECT_TRUE(set.legal(m)) << "XFD_FUZZ_SEED=" << seed;
    }
}

TEST(CrashStatesProp, EnumerationInvariantsHoldOnRandomFrontiers)
{
    for (std::uint64_t seed = 1; seed <= 200; seed++) {
        SCOPED_TRACE(seed);
        fuzzOne(seed);
    }
}

TEST(CrashStatesProp, ExhaustiveSweepCoversEveryLegalMask)
{
    // Small frontiers enumerate completely: cross-check the sweep
    // against a brute-force scan of all 2^k subsets.
    Rng rng(7);
    for (int round = 0; round < 20; round++) {
        SCOPED_TRACE(round);
        CandidateSet set = randomSet(rng, 1 + rng.below(8));
        CandidateSet::EnumerateOptions opt;
        opt.exhaustive = true;
        opt.frontierLimit = 8;
        CandidateSet::Enumeration en = set.enumerate(opt);
        EXPECT_FALSE(en.sampled);

        std::size_t legal = 0;
        for (std::uint64_t bitsv = 0;
             bitsv < (std::uint64_t{1} << set.bits()); bitsv++) {
            SubsetMask m(set.bits());
            for (std::size_t b = 0; b < set.bits(); b++) {
                if (bitsv & (std::uint64_t{1} << b))
                    m.set(b);
            }
            if (set.legal(m))
                legal++;
        }
        EXPECT_EQ(en.masks.size(), legal);
    }
}

TEST(CrashStatesPropReplay, ReplayFromEnv)
{
    std::uint64_t s = 0;
    if (!xfdtest::fuzzSeedFromEnv(s))
        GTEST_SKIP()
            << "set XFD_FUZZ_SEED=<seed from a failure message> to "
               "replay a single enumeration case";
    fuzzOne(s);
}

} // namespace
