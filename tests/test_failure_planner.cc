/**
 * @file
 * Failure-planner tests: ordering-point enumeration, the empty-interval
 * elision optimization, RoI/skip gating, explicit failure points.
 */

#include <gtest/gtest.h>

#include "core/failure_planner.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace
{

using namespace xfd;
using core::DetectorConfig;
using core::FailurePlan;
using core::planFailurePoints;
using trace::PmRuntime;
using trace::Stage;
using trace::TraceBuffer;

struct PlannerTest : ::testing::Test
{
    PlannerTest() : pool(1 << 20), rt(pool, buf, Stage::PreFailure) {}

    FailurePlan
    plan(const DetectorConfig &cfg = {})
    {
        return planFailurePoints(buf, cfg);
    }

    pm::PmPool pool;
    TraceBuffer buf;
    PmRuntime rt;
};

TEST_F(PlannerTest, NoFencesNoPoints)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.roiEnd();
    EXPECT_TRUE(plan().points.empty());
}

TEST_F(PlannerTest, FailurePointBeforeEachOrderingPoint)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.store(*pool.at<int>(64), 2);
    rt.persistBarrier(pool.at<int>(64), 4);
    rt.roiEnd();
    FailurePlan p = plan();
    ASSERT_EQ(p.points.size(), 2u);
    // Each point is the seq of the fence itself (failure hits before).
    EXPECT_EQ(buf[p.points[0]].op, trace::Op::Sfence);
    EXPECT_EQ(buf[p.points[1]].op, trace::Op::Sfence);
}

TEST_F(PlannerTest, OutsideRoiNotEligible)
{
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    EXPECT_TRUE(plan().points.empty());
}

TEST_F(PlannerTest, ElidesFenceWithNoPmOpsBetween)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.sfence(); // nothing between: elided
    rt.roiEnd();
    FailurePlan p = plan();
    EXPECT_EQ(p.points.size(), 1u);
    EXPECT_EQ(p.elided, 1u);
    EXPECT_EQ(p.candidates, 2u);
}

TEST_F(PlannerTest, ElisionCanBeDisabled)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.sfence();
    rt.roiEnd();
    DetectorConfig cfg;
    cfg.elideEmptyFailurePoints = false;
    EXPECT_EQ(plan(cfg).points.size(), 2u);
}

TEST_F(PlannerTest, SkipFailureRegionExcluded)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.skipFailureBegin();
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.skipFailureEnd();
    rt.store(*pool.at<int>(64), 2);
    rt.persistBarrier(pool.at<int>(64), 4);
    rt.roiEnd();
    FailurePlan p = plan();
    ASSERT_EQ(p.points.size(), 1u);
    EXPECT_FALSE(buf[p.points[0]].has(trace::flagSkipFailure));
}

TEST_F(PlannerTest, ExplicitFailurePointAlwaysKept)
{
    rt.roiBegin();
    rt.addFailurePoint();
    rt.roiEnd();
    FailurePlan p = plan();
    ASSERT_EQ(p.points.size(), 1u);
    EXPECT_EQ(buf[p.points[0]].op, trace::Op::FailurePoint);
}

TEST_F(PlannerTest, InternalFencesControlledByConfig)
{
    rt.roiBegin();
    {
        trace::LibScope lib(rt, "libfn");
        rt.store(*pool.at<int>(0), 1);
        rt.persistBarrier(pool.at<int>(0), 4);
    }
    rt.roiEnd();
    EXPECT_EQ(plan().points.size(), 1u);

    DetectorConfig cfg;
    cfg.failureAtInternalFences = false;
    EXPECT_TRUE(plan(cfg).points.empty());
}

TEST_F(PlannerTest, MaxFailurePointsCaps)
{
    rt.roiBegin();
    for (int i = 0; i < 10; i++) {
        rt.store(*pool.at<int>(static_cast<std::size_t>(i) * 64), i);
        rt.persistBarrier(pool.at<int>(static_cast<std::size_t>(i) * 64),
                          4);
    }
    rt.roiEnd();
    DetectorConfig cfg;
    cfg.maxFailurePoints = 3;
    EXPECT_EQ(plan(cfg).points.size(), 3u);
}

TEST_F(PlannerTest, ImageOnlyWritesDoNotCountAsPmOps)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.zeroFill(pool.at<int>(64), 4); // image-only: no state change
    rt.sfence();
    rt.roiEnd();
    EXPECT_EQ(plan().points.size(), 1u);
}

TEST_F(PlannerTest, FlushAloneEnablesAFailurePoint)
{
    rt.roiBegin();
    rt.store(*pool.at<int>(0), 1);
    rt.persistBarrier(pool.at<int>(0), 4);
    rt.clwb(pool.at<int>(0), 4); // a flush is a PM op
    rt.sfence();
    rt.roiEnd();
    EXPECT_EQ(plan().points.size(), 2u);
}

TEST_F(PlannerTest, PointsAreMonotonic)
{
    rt.roiBegin();
    for (int i = 0; i < 5; i++) {
        rt.store(*pool.at<int>(static_cast<std::size_t>(i) * 64), i);
        rt.persistBarrier(pool.at<int>(static_cast<std::size_t>(i) * 64),
                          4);
    }
    rt.roiEnd();
    FailurePlan p = plan();
    for (std::size_t i = 1; i < p.points.size(); i++)
        EXPECT_LT(p.points[i - 1], p.points[i]);
}

} // namespace
