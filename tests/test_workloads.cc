/**
 * @file
 * Workload tests: functional correctness against the volatile
 * reference model, determinism, crash-recovery round trips, and —
 * most importantly — the no-false-positive gauntlet: a full detection
 * campaign over every bug-free workload must report no cross-failure
 * findings (the paper's tool reports only real bugs on these
 * programs).
 */

#include <gtest/gtest.h>

#include "core/driver.hh"
#include "harness.hh"
#include "workloads/workload.hh"

namespace
{

using namespace xfd;
using core::BugType;
using core::Driver;
using trace::PmRuntime;
using workloads::makeWorkload;
using workloads::Workload;
using workloads::WorkloadConfig;

constexpr std::size_t poolSize = 1 << 22;

class WorkloadParamTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadParamTest, FunctionalAgainstReferenceModel)
{
    WorkloadConfig cfg;
    cfg.initOps = 12;
    cfg.testOps = 12;
    auto w = makeWorkload(GetParam(), cfg);

    pm::PmPool pool(poolSize);
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    w->pre(rt);
    EXPECT_EQ(w->verify(rt), "");
}

TEST_P(WorkloadParamTest, DeterministicTrace)
{
    WorkloadConfig cfg;
    cfg.initOps = 6;
    cfg.testOps = 6;
    std::size_t sizes[2];
    for (int round = 0; round < 2; round++) {
        auto w = makeWorkload(GetParam(), cfg);
        pm::PmPool pool(poolSize);
        trace::TraceBuffer buf;
        PmRuntime rt(pool, buf, trace::Stage::PreFailure);
        w->pre(rt);
        sizes[round] = buf.size();
    }
    EXPECT_EQ(sizes[0], sizes[1]);
}

TEST_P(WorkloadParamTest, PostStageRunsAfterPre)
{
    WorkloadConfig cfg;
    cfg.initOps = 6;
    cfg.testOps = 4;
    cfg.postOps = 3;
    auto w = makeWorkload(GetParam(), cfg);

    pm::PmPool pool(poolSize);
    trace::TraceBuffer pre_buf, post_buf;
    {
        PmRuntime rt(pool, pre_buf, trace::Stage::PreFailure);
        w->pre(rt);
    }
    {
        PmRuntime rt(pool, post_buf, trace::Stage::PostFailure);
        w->post(rt); // recovery on a cleanly finished image
    }
    EXPECT_GT(post_buf.size(), 0u);
}

TEST_P(WorkloadParamTest, NoFalsePositives)
{
    // Large enough that splits, rebuilds and remove paths all run.
    WorkloadConfig cfg;
    cfg.initOps = 8;
    cfg.testOps = 10;
    cfg.postOps = 4;
    auto res = xfdtest::runWorkload(GetParam(), cfg);
    EXPECT_TRUE(xfdtest::hasNoFindings(res));
    EXPECT_GT(res.stats.failurePoints, 0u);
}

TEST_P(WorkloadParamTest, NoFalsePositivesWithRoiFromStart)
{
    WorkloadConfig cfg;
    cfg.initOps = 2;
    cfg.testOps = 2;
    cfg.postOps = 2;
    cfg.roiFromStart = true;
    auto res = xfdtest::runWorkload(GetParam(), cfg);
    EXPECT_TRUE(
        xfdtest::hasNoFindingOfClass(res, BugType::CrossFailureRace));
    EXPECT_TRUE(
        xfdtest::hasNoFindingOfClass(res, BugType::CrossFailureSemantic));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadParamTest,
                         ::testing::ValuesIn(workloads::workloadNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n) {
                                 if (c == '-' || c == '_')
                                     c = 'X';
                             }
                             return n;
                         });

TEST(WorkloadFactory, ListsNineWorkloads)
{
    EXPECT_EQ(workloads::workloadNames().size(), 9u);
}

TEST(WorkloadScaling, MoreOpsMoreTraceEntries)
{
    std::size_t last = 0;
    for (unsigned ops : {1u, 5u, 10u}) {
        WorkloadConfig cfg;
        cfg.initOps = 3;
        cfg.testOps = ops;
        auto w = makeWorkload("btree", cfg);
        pm::PmPool pool(poolSize);
        trace::TraceBuffer buf;
        PmRuntime rt(pool, buf, trace::Stage::PreFailure);
        w->pre(rt);
        EXPECT_GT(buf.size(), last);
        last = buf.size();
    }
}

TEST(MemcachedEviction, CapacityEnforced)
{
    WorkloadConfig cfg;
    cfg.initOps = 20;
    cfg.testOps = 10;
    cfg.memcachedCapacity = 8;
    auto w = makeWorkload("memcached", cfg);
    pm::PmPool pool(poolSize);
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    w->pre(rt);
    // verify() skips content checks beyond capacity but must not
    // report errors either.
    EXPECT_EQ(w->verify(rt), "");
}

TEST(HashmapTxRebuild, GrowsBuckets)
{
    // 20 inserts cross the load factor threshold (8 buckets).
    WorkloadConfig cfg;
    cfg.initOps = 20;
    cfg.testOps = 5;
    auto w = makeWorkload("hashmap_tx", cfg);
    pm::PmPool pool(poolSize);
    trace::TraceBuffer buf;
    PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    w->pre(rt);
    EXPECT_EQ(w->verify(rt), "");
}

} // namespace
