file(REMOVE_RECURSE
  "CMakeFiles/xfdetect.dir/xfdetect.cc.o"
  "CMakeFiles/xfdetect.dir/xfdetect.cc.o.d"
  "xfdetect"
  "xfdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
