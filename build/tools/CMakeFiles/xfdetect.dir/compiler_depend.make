# Empty compiler generated dependencies file for xfdetect.
# This may be replaced when dependencies are built.
