# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list_workloads "/root/repo/build/tools/xfdetect" "--list-workloads")
set_tests_properties(cli_list_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list_bugs "/root/repo/build/tools/xfdetect" "--list-bugs" "btree")
set_tests_properties(cli_list_bugs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_clean_run "/root/repo/build/tools/xfdetect" "--workload" "ctree" "--init" "3" "--test" "2" "--quiet")
set_tests_properties(cli_clean_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_buggy_run "/root/repo/build/tools/xfdetect" "--workload" "ctree" "--init" "3" "--test" "2" "--quiet" "--bug" "ctree.race.link_no_add")
set_tests_properties(cli_buggy_run PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_baseline "/root/repo/build/tools/xfdetect" "--workload" "btree" "--baseline" "--quiet" "--init" "3" "--test" "2")
set_tests_properties(cli_baseline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
