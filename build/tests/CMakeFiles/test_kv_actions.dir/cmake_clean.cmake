file(REMOVE_RECURSE
  "CMakeFiles/test_kv_actions.dir/test_kv_actions.cc.o"
  "CMakeFiles/test_kv_actions.dir/test_kv_actions.cc.o.d"
  "test_kv_actions"
  "test_kv_actions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
