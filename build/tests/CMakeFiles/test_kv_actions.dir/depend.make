# Empty dependencies file for test_kv_actions.
# This may be replaced when dependencies are built.
