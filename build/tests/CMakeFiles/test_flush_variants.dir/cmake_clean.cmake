file(REMOVE_RECURSE
  "CMakeFiles/test_flush_variants.dir/test_flush_variants.cc.o"
  "CMakeFiles/test_flush_variants.dir/test_flush_variants.cc.o.d"
  "test_flush_variants"
  "test_flush_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flush_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
