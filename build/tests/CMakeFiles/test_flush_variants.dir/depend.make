# Empty dependencies file for test_flush_variants.
# This may be replaced when dependencies are built.
