file(REMOVE_RECURSE
  "CMakeFiles/test_pmlib_mechanisms.dir/test_pmlib_mechanisms.cc.o"
  "CMakeFiles/test_pmlib_mechanisms.dir/test_pmlib_mechanisms.cc.o.d"
  "test_pmlib_mechanisms"
  "test_pmlib_mechanisms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmlib_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
