# Empty compiler generated dependencies file for test_pmlib_mechanisms.
# This may be replaced when dependencies are built.
