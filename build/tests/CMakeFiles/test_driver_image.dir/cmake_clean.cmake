file(REMOVE_RECURSE
  "CMakeFiles/test_driver_image.dir/test_driver_image.cc.o"
  "CMakeFiles/test_driver_image.dir/test_driver_image.cc.o.d"
  "test_driver_image"
  "test_driver_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driver_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
