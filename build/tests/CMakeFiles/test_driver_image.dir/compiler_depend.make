# Empty compiler generated dependencies file for test_driver_image.
# This may be replaced when dependencies are built.
