file(REMOVE_RECURSE
  "CMakeFiles/test_bug_report.dir/test_bug_report.cc.o"
  "CMakeFiles/test_bug_report.dir/test_bug_report.cc.o.d"
  "test_bug_report"
  "test_bug_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bug_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
