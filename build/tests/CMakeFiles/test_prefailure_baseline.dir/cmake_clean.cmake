file(REMOVE_RECURSE
  "CMakeFiles/test_prefailure_baseline.dir/test_prefailure_baseline.cc.o"
  "CMakeFiles/test_prefailure_baseline.dir/test_prefailure_baseline.cc.o.d"
  "test_prefailure_baseline"
  "test_prefailure_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefailure_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
