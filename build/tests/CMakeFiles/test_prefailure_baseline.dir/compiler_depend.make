# Empty compiler generated dependencies file for test_prefailure_baseline.
# This may be replaced when dependencies are built.
