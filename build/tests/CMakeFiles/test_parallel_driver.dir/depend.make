# Empty dependencies file for test_parallel_driver.
# This may be replaced when dependencies are built.
