file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_driver.dir/test_parallel_driver.cc.o"
  "CMakeFiles/test_parallel_driver.dir/test_parallel_driver.cc.o.d"
  "test_parallel_driver"
  "test_parallel_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
