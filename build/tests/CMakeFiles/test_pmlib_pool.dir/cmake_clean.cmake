file(REMOVE_RECURSE
  "CMakeFiles/test_pmlib_pool.dir/test_pmlib_pool.cc.o"
  "CMakeFiles/test_pmlib_pool.dir/test_pmlib_pool.cc.o.d"
  "test_pmlib_pool"
  "test_pmlib_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmlib_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
