# Empty dependencies file for test_pmlib_pool.
# This may be replaced when dependencies are built.
