# Empty compiler generated dependencies file for test_bugsuite.
# This may be replaced when dependencies are built.
