file(REMOVE_RECURSE
  "CMakeFiles/test_bugsuite.dir/test_bugsuite.cc.o"
  "CMakeFiles/test_bugsuite.dir/test_bugsuite.cc.o.d"
  "test_bugsuite"
  "test_bugsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bugsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
