file(REMOVE_RECURSE
  "CMakeFiles/test_failure_planner.dir/test_failure_planner.cc.o"
  "CMakeFiles/test_failure_planner.dir/test_failure_planner.cc.o.d"
  "test_failure_planner"
  "test_failure_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
