# Empty dependencies file for test_pmlib_alloc.
# This may be replaced when dependencies are built.
