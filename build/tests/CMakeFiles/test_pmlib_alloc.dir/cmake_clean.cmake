file(REMOVE_RECURSE
  "CMakeFiles/test_pmlib_alloc.dir/test_pmlib_alloc.cc.o"
  "CMakeFiles/test_pmlib_alloc.dir/test_pmlib_alloc.cc.o.d"
  "test_pmlib_alloc"
  "test_pmlib_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmlib_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
