file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_semantics.dir/test_fuzz_semantics.cc.o"
  "CMakeFiles/test_fuzz_semantics.dir/test_fuzz_semantics.cc.o.d"
  "test_fuzz_semantics"
  "test_fuzz_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
