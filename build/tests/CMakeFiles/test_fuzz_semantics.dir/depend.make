# Empty dependencies file for test_fuzz_semantics.
# This may be replaced when dependencies are built.
