file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_fsm.dir/test_shadow_fsm.cc.o"
  "CMakeFiles/test_shadow_fsm.dir/test_shadow_fsm.cc.o.d"
  "test_shadow_fsm"
  "test_shadow_fsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_fsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
