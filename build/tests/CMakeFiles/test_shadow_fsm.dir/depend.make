# Empty dependencies file for test_shadow_fsm.
# This may be replaced when dependencies are built.
