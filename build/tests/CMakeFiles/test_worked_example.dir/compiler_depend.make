# Empty compiler generated dependencies file for test_worked_example.
# This may be replaced when dependencies are built.
