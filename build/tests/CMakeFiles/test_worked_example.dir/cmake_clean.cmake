file(REMOVE_RECURSE
  "CMakeFiles/test_worked_example.dir/test_worked_example.cc.o"
  "CMakeFiles/test_worked_example.dir/test_worked_example.cc.o.d"
  "test_worked_example"
  "test_worked_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worked_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
