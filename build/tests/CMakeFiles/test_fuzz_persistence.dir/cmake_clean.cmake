file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_persistence.dir/test_fuzz_persistence.cc.o"
  "CMakeFiles/test_fuzz_persistence.dir/test_fuzz_persistence.cc.o.d"
  "test_fuzz_persistence"
  "test_fuzz_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
