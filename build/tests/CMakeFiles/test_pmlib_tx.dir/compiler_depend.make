# Empty compiler generated dependencies file for test_pmlib_tx.
# This may be replaced when dependencies are built.
