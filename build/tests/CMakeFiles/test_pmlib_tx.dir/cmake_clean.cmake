file(REMOVE_RECURSE
  "CMakeFiles/test_pmlib_tx.dir/test_pmlib_tx.cc.o"
  "CMakeFiles/test_pmlib_tx.dir/test_pmlib_tx.cc.o.d"
  "test_pmlib_tx"
  "test_pmlib_tx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmlib_tx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
