file(REMOVE_RECURSE
  "CMakeFiles/test_newbugs.dir/test_newbugs.cc.o"
  "CMakeFiles/test_newbugs.dir/test_newbugs.cc.o.d"
  "test_newbugs"
  "test_newbugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_newbugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
