# Empty compiler generated dependencies file for test_newbugs.
# This may be replaced when dependencies are built.
