file(REMOVE_RECURSE
  "CMakeFiles/test_detector_e2e.dir/test_detector_e2e.cc.o"
  "CMakeFiles/test_detector_e2e.dir/test_detector_e2e.cc.o.d"
  "test_detector_e2e"
  "test_detector_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detector_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
