file(REMOVE_RECURSE
  "CMakeFiles/xfd_common.dir/logging.cc.o"
  "CMakeFiles/xfd_common.dir/logging.cc.o.d"
  "libxfd_common.a"
  "libxfd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
