file(REMOVE_RECURSE
  "libxfd_common.a"
)
