# Empty compiler generated dependencies file for xfd_common.
# This may be replaced when dependencies are built.
