# Empty dependencies file for xfd_pm.
# This may be replaced when dependencies are built.
