file(REMOVE_RECURSE
  "CMakeFiles/xfd_pm.dir/image.cc.o"
  "CMakeFiles/xfd_pm.dir/image.cc.o.d"
  "CMakeFiles/xfd_pm.dir/pool.cc.o"
  "CMakeFiles/xfd_pm.dir/pool.cc.o.d"
  "libxfd_pm.a"
  "libxfd_pm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_pm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
