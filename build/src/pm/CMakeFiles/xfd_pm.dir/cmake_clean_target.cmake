file(REMOVE_RECURSE
  "libxfd_pm.a"
)
