file(REMOVE_RECURSE
  "libxfd_workloads.a"
)
