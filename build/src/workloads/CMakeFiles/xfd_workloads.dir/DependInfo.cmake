
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/ctree.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/ctree.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/ctree.cc.o.d"
  "/root/repo/src/workloads/hashmap_atomic.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/hashmap_atomic.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/hashmap_atomic.cc.o.d"
  "/root/repo/src/workloads/hashmap_tx.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/hashmap_tx.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/hashmap_tx.cc.o.d"
  "/root/repo/src/workloads/mini_memcached.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/mini_memcached.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/mini_memcached.cc.o.d"
  "/root/repo/src/workloads/mini_redis.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/mini_redis.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/mini_redis.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/xfd_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/xfd_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pmlib/CMakeFiles/xfd_pmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xfd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/xfd_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xfd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
