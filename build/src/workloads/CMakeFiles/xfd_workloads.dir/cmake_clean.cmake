file(REMOVE_RECURSE
  "CMakeFiles/xfd_workloads.dir/btree.cc.o"
  "CMakeFiles/xfd_workloads.dir/btree.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/ctree.cc.o"
  "CMakeFiles/xfd_workloads.dir/ctree.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/hashmap_atomic.cc.o"
  "CMakeFiles/xfd_workloads.dir/hashmap_atomic.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/hashmap_tx.cc.o"
  "CMakeFiles/xfd_workloads.dir/hashmap_tx.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/mini_memcached.cc.o"
  "CMakeFiles/xfd_workloads.dir/mini_memcached.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/mini_redis.cc.o"
  "CMakeFiles/xfd_workloads.dir/mini_redis.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/rbtree.cc.o"
  "CMakeFiles/xfd_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/xfd_workloads.dir/workload.cc.o"
  "CMakeFiles/xfd_workloads.dir/workload.cc.o.d"
  "libxfd_workloads.a"
  "libxfd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
