# Empty dependencies file for xfd_workloads.
# This may be replaced when dependencies are built.
