file(REMOVE_RECURSE
  "CMakeFiles/xfd_bugsuite.dir/registry.cc.o"
  "CMakeFiles/xfd_bugsuite.dir/registry.cc.o.d"
  "libxfd_bugsuite.a"
  "libxfd_bugsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_bugsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
