# Empty dependencies file for xfd_bugsuite.
# This may be replaced when dependencies are built.
