file(REMOVE_RECURSE
  "libxfd_bugsuite.a"
)
