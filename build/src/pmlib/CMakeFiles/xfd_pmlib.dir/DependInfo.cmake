
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmlib/alloc.cc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/alloc.cc.o" "gcc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/alloc.cc.o.d"
  "/root/repo/src/pmlib/checkpoint.cc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/checkpoint.cc.o" "gcc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/checkpoint.cc.o.d"
  "/root/repo/src/pmlib/objpool.cc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/objpool.cc.o" "gcc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/objpool.cc.o.d"
  "/root/repo/src/pmlib/oplog.cc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/oplog.cc.o" "gcc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/oplog.cc.o.d"
  "/root/repo/src/pmlib/redo.cc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/redo.cc.o" "gcc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/redo.cc.o.d"
  "/root/repo/src/pmlib/tx.cc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/tx.cc.o" "gcc" "src/pmlib/CMakeFiles/xfd_pmlib.dir/tx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/xfd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/xfd_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xfd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
