file(REMOVE_RECURSE
  "CMakeFiles/xfd_pmlib.dir/alloc.cc.o"
  "CMakeFiles/xfd_pmlib.dir/alloc.cc.o.d"
  "CMakeFiles/xfd_pmlib.dir/checkpoint.cc.o"
  "CMakeFiles/xfd_pmlib.dir/checkpoint.cc.o.d"
  "CMakeFiles/xfd_pmlib.dir/objpool.cc.o"
  "CMakeFiles/xfd_pmlib.dir/objpool.cc.o.d"
  "CMakeFiles/xfd_pmlib.dir/oplog.cc.o"
  "CMakeFiles/xfd_pmlib.dir/oplog.cc.o.d"
  "CMakeFiles/xfd_pmlib.dir/redo.cc.o"
  "CMakeFiles/xfd_pmlib.dir/redo.cc.o.d"
  "CMakeFiles/xfd_pmlib.dir/tx.cc.o"
  "CMakeFiles/xfd_pmlib.dir/tx.cc.o.d"
  "libxfd_pmlib.a"
  "libxfd_pmlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_pmlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
