# Empty compiler generated dependencies file for xfd_pmlib.
# This may be replaced when dependencies are built.
