file(REMOVE_RECURSE
  "libxfd_pmlib.a"
)
