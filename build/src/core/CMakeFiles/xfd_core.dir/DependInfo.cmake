
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bug_report.cc" "src/core/CMakeFiles/xfd_core.dir/bug_report.cc.o" "gcc" "src/core/CMakeFiles/xfd_core.dir/bug_report.cc.o.d"
  "/root/repo/src/core/driver.cc" "src/core/CMakeFiles/xfd_core.dir/driver.cc.o" "gcc" "src/core/CMakeFiles/xfd_core.dir/driver.cc.o.d"
  "/root/repo/src/core/failure_planner.cc" "src/core/CMakeFiles/xfd_core.dir/failure_planner.cc.o" "gcc" "src/core/CMakeFiles/xfd_core.dir/failure_planner.cc.o.d"
  "/root/repo/src/core/prefailure_checker.cc" "src/core/CMakeFiles/xfd_core.dir/prefailure_checker.cc.o" "gcc" "src/core/CMakeFiles/xfd_core.dir/prefailure_checker.cc.o.d"
  "/root/repo/src/core/shadow_pm.cc" "src/core/CMakeFiles/xfd_core.dir/shadow_pm.cc.o" "gcc" "src/core/CMakeFiles/xfd_core.dir/shadow_pm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/xfd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/xfd_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xfd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
