# Empty compiler generated dependencies file for xfd_core.
# This may be replaced when dependencies are built.
