file(REMOVE_RECURSE
  "CMakeFiles/xfd_core.dir/bug_report.cc.o"
  "CMakeFiles/xfd_core.dir/bug_report.cc.o.d"
  "CMakeFiles/xfd_core.dir/driver.cc.o"
  "CMakeFiles/xfd_core.dir/driver.cc.o.d"
  "CMakeFiles/xfd_core.dir/failure_planner.cc.o"
  "CMakeFiles/xfd_core.dir/failure_planner.cc.o.d"
  "CMakeFiles/xfd_core.dir/prefailure_checker.cc.o"
  "CMakeFiles/xfd_core.dir/prefailure_checker.cc.o.d"
  "CMakeFiles/xfd_core.dir/shadow_pm.cc.o"
  "CMakeFiles/xfd_core.dir/shadow_pm.cc.o.d"
  "libxfd_core.a"
  "libxfd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
