file(REMOVE_RECURSE
  "libxfd_core.a"
)
