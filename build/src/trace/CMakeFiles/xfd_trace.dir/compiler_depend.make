# Empty compiler generated dependencies file for xfd_trace.
# This may be replaced when dependencies are built.
