file(REMOVE_RECURSE
  "libxfd_trace.a"
)
