file(REMOVE_RECURSE
  "CMakeFiles/xfd_trace.dir/buffer.cc.o"
  "CMakeFiles/xfd_trace.dir/buffer.cc.o.d"
  "CMakeFiles/xfd_trace.dir/runtime.cc.o"
  "CMakeFiles/xfd_trace.dir/runtime.cc.o.d"
  "CMakeFiles/xfd_trace.dir/serialize.cc.o"
  "CMakeFiles/xfd_trace.dir/serialize.cc.o.d"
  "libxfd_trace.a"
  "libxfd_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfd_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
