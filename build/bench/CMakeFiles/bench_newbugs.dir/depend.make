# Empty dependencies file for bench_newbugs.
# This may be replaced when dependencies are built.
