file(REMOVE_RECURSE
  "CMakeFiles/bench_newbugs.dir/bench_newbugs.cc.o"
  "CMakeFiles/bench_newbugs.dir/bench_newbugs.cc.o.d"
  "bench_newbugs"
  "bench_newbugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_newbugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
