
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table5_validation.cc" "bench/CMakeFiles/bench_table5_validation.dir/bench_table5_validation.cc.o" "gcc" "bench/CMakeFiles/bench_table5_validation.dir/bench_table5_validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bugsuite/CMakeFiles/xfd_bugsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xfd_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xfd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pmlib/CMakeFiles/xfd_pmlib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/xfd_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/pm/CMakeFiles/xfd_pm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xfd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
