# Empty dependencies file for bench_table4_inventory.
# This may be replaced when dependencies are built.
