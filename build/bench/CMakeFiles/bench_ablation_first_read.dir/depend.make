# Empty dependencies file for bench_ablation_first_read.
# This may be replaced when dependencies are built.
