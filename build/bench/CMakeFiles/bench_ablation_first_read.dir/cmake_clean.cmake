file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_first_read.dir/bench_ablation_first_read.cc.o"
  "CMakeFiles/bench_ablation_first_read.dir/bench_ablation_first_read.cc.o.d"
  "bench_ablation_first_read"
  "bench_ablation_first_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_first_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
