file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_failure_points.dir/bench_ablation_failure_points.cc.o"
  "CMakeFiles/bench_ablation_failure_points.dir/bench_ablation_failure_points.cc.o.d"
  "bench_ablation_failure_points"
  "bench_ablation_failure_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_failure_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
