file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_capability.dir/bench_fig3_capability.cc.o"
  "CMakeFiles/bench_fig3_capability.dir/bench_fig3_capability.cc.o.d"
  "bench_fig3_capability"
  "bench_fig3_capability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_capability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
