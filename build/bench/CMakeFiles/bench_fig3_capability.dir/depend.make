# Empty dependencies file for bench_fig3_capability.
# This may be replaced when dependencies are built.
