file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_throughput.dir/bench_trace_throughput.cc.o"
  "CMakeFiles/bench_trace_throughput.dir/bench_trace_throughput.cc.o.d"
  "bench_trace_throughput"
  "bench_trace_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
