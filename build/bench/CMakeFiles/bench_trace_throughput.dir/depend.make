# Empty dependencies file for bench_trace_throughput.
# This may be replaced when dependencies are built.
