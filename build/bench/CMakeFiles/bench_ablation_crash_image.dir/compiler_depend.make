# Empty compiler generated dependencies file for bench_ablation_crash_image.
# This may be replaced when dependencies are built.
