file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_crash_image.dir/bench_ablation_crash_image.cc.o"
  "CMakeFiles/bench_ablation_crash_image.dir/bench_ablation_crash_image.cc.o.d"
  "bench_ablation_crash_image"
  "bench_ablation_crash_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crash_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
