file(REMOVE_RECURSE
  "CMakeFiles/low_level_annotation.dir/low_level_annotation.cpp.o"
  "CMakeFiles/low_level_annotation.dir/low_level_annotation.cpp.o.d"
  "low_level_annotation"
  "low_level_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_level_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
