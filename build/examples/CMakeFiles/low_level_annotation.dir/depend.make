# Empty dependencies file for low_level_annotation.
# This may be replaced when dependencies are built.
