# Empty dependencies file for mechanisms_tour.
# This may be replaced when dependencies are built.
