file(REMOVE_RECURSE
  "CMakeFiles/mechanisms_tour.dir/mechanisms_tour.cpp.o"
  "CMakeFiles/mechanisms_tour.dir/mechanisms_tour.cpp.o.d"
  "mechanisms_tour"
  "mechanisms_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mechanisms_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
