# Empty dependencies file for linked_list_recovery.
# This may be replaced when dependencies are built.
