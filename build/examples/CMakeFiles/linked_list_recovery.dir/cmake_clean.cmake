file(REMOVE_RECURSE
  "CMakeFiles/linked_list_recovery.dir/linked_list_recovery.cpp.o"
  "CMakeFiles/linked_list_recovery.dir/linked_list_recovery.cpp.o.d"
  "linked_list_recovery"
  "linked_list_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_list_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
