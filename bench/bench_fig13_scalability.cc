/**
 * @file
 * Figure 13 reproduction — scalability in pre-failure transactions.
 *
 * For each micro benchmark, scale the number of pre-failure test
 * operations through {1, 10, 20, 30, 40, 50} (post-failure held at
 * one operation, as in §6.2.2) and report detection wall-clock time
 * and the number of injected failure points.
 *
 * Expected shape (paper): execution time grows linearly with the
 * number of failure points, which grows linearly with transactions.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

const char *const kMicro[] = {"btree", "wal_btree", "ctree", "rbtree",
                              "hashmap_tx", "hashmap_atomic"};
const unsigned kTxns[] = {1, 10, 20, 30, 40, 50};

workloads::WorkloadConfig
fig13Config(unsigned txns)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = txns;
    cfg.postOps = 1;
    return cfg;
}

void
printTable()
{
    struct Point
    {
        unsigned txns;
        double ms;
        std::size_t failpoints;
        std::size_t csExplored; // --crash-states=sample:16 run
        std::size_t csPruned;
        pm::DeltaRestoreStats restore;
        std::uint64_t fullCopyBaseline; // bytes a full-copy run moves
        std::array<double, obs::phaseCount> phaseSeconds;
        double attribution; // backend share restore+classify explain
    };
    std::vector<std::pair<std::string, std::vector<Point>>> series;

    // XFD_BENCH_QUICK=1 (CI smoke): smallest two sizes only.
    bool quick = std::getenv("XFD_BENCH_QUICK") != nullptr;
    std::vector<unsigned> txn_set(std::begin(kTxns), std::end(kTxns));
    if (quick)
        txn_set.resize(2);

    std::printf("\n=== Figure 13: execution time vs. #pre-failure "
                "transactions ===\n");
    for (const char *w : kMicro) {
        rule();
        std::printf("%s\n", w);
        std::printf("  %-8s %10s %12s %14s %14s %10s %8s\n", "#txns",
                    "time(ms)", "#failpoints", "ms/failpoint",
                    "restored(KB)", "of full", "attrib");
        std::vector<Point> points;
        core::DetectorConfig cs_dcfg;
        cs_dcfg.crashStates = "sample:16";
        for (unsigned txns : txn_set) {
            Timing t = timeCampaign(w, fig13Config(txns), {}, 1);
            Timing cs = timeCampaign(w, fig13Config(txns), cs_dcfg, 1);
            const core::CampaignStats &cst = cs.last.statistics();
            double ms = t.meanTotalSeconds * 1e3;
            const auto &s = t.last.stats;
            std::size_t fp = s.failurePoints;
            double per = fp ? ms / fp : 0;
            // What the pre-delta driver would have copied: one full
            // image per restore.
            std::uint64_t baseline =
                (s.restore.fullCopies + s.restore.deltaRestores) *
                s.poolBytes;
            double frac = baseline
                              ? static_cast<double>(
                                    s.restore.bytesCopied()) /
                                    static_cast<double>(baseline)
                              : 0;
            std::printf(
                "  %-8u %10.2f %12zu %14.3f %14.1f %9.1f%% %7.1f%%\n",
                txns, ms, fp, per,
                static_cast<double>(s.restore.bytesCopied()) / 1024.0,
                frac * 100.0, t.backendAttribution() * 100.0);
            points.push_back({txns, ms, fp, cst.crashStatesExplored,
                              cst.crashStatesPruned, s.restore,
                              baseline, t.meanPhaseSeconds,
                              t.backendAttribution()});
        }
        series.emplace_back(w, std::move(points));
    }
    rule();
    std::printf("\npaper: time increases linearly as the number of "
                "failure points increases\n(the per-failure-point cost "
                "column should stay roughly flat). The restore columns\n"
                "track the delta-image engine: bytes actually copied "
                "into exec pools and the\nfraction of the "
                "full-copy-per-failure-point baseline they represent.\n\n");

    writeBenchJson("fig13", [&](obs::JsonWriter &w) {
        w.field("quick", quick);
        w.key("workloads").beginArray();
        for (const auto &[name, points] : series) {
            w.beginObject();
            w.field("workload", name);
            w.key("points").beginArray();
            for (const auto &p : points) {
                w.beginObject();
                w.field("txns", p.txns);
                w.field("time_ms", p.ms);
                w.field("failure_points",
                        static_cast<std::uint64_t>(p.failpoints));
                w.field("ms_per_failpoint",
                        p.failpoints ? p.ms / p.failpoints : 0.0);
                w.field("crash_states_explored",
                        static_cast<std::uint64_t>(p.csExplored));
                w.field("candidates_pruned",
                        static_cast<std::uint64_t>(p.csPruned));
                w.key("phases_ms").beginObject();
                for (std::size_t i = 0; i < obs::phaseCount; i++) {
                    if (p.phaseSeconds[i] > 0) {
                        w.field(
                            obs::phaseName(static_cast<obs::Phase>(i)),
                            p.phaseSeconds[i] * 1e3);
                    }
                }
                w.endObject();
                w.field("backend_attribution", p.attribution);
                w.key("restore").beginObject();
                w.field("full_copies", p.restore.fullCopies);
                w.field("delta_restores", p.restore.deltaRestores);
                w.field("pages_restored", p.restore.pagesRestored);
                w.field("bytes_copied", p.restore.bytesCopied());
                w.field("bytes_full_copy_baseline", p.fullCopyBaseline);
                w.field("reduction",
                        p.fullCopyBaseline
                            ? 1.0 -
                                  static_cast<double>(
                                      p.restore.bytesCopied()) /
                                      static_cast<double>(
                                          p.fullCopyBaseline)
                            : 0.0);
                w.endObject();
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    });
}

void
BM_Scalability(benchmark::State &state)
{
    unsigned txns = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Timing t = timeCampaign("btree", fig13Config(txns), {}, 1);
        benchmark::DoNotOptimize(t.last.statistics().failurePoints);
    }
    state.counters["failpoints"] = static_cast<double>(
        timeCampaign("btree", fig13Config(txns), {}, 1)
            .last.statistics().failurePoints);
}

BENCHMARK(BM_Scalability)
    ->Arg(1)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    printTable();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
