/**
 * @file
 * Figure 13 reproduction — scalability in pre-failure transactions.
 *
 * For each micro benchmark, scale the number of pre-failure test
 * operations through {1, 10, 20, 30, 40, 50} (post-failure held at
 * one operation, as in §6.2.2) and report detection wall-clock time
 * and the number of injected failure points.
 *
 * Expected shape (paper): execution time grows linearly with the
 * number of failure points, which grows linearly with transactions.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

const char *const kMicro[] = {"btree", "ctree", "rbtree", "hashmap_tx",
                              "hashmap_atomic"};
const unsigned kTxns[] = {1, 10, 20, 30, 40, 50};

workloads::WorkloadConfig
fig13Config(unsigned txns)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = txns;
    cfg.postOps = 1;
    return cfg;
}

void
printTable()
{
    struct Point
    {
        unsigned txns;
        double ms;
        std::size_t failpoints;
    };
    std::vector<std::pair<std::string, std::vector<Point>>> series;

    std::printf("\n=== Figure 13: execution time vs. #pre-failure "
                "transactions ===\n");
    for (const char *w : kMicro) {
        rule();
        std::printf("%s\n", w);
        std::printf("  %-8s %12s %14s %16s\n", "#txns", "time(ms)",
                    "#failpoints", "ms per failpoint");
        std::vector<Point> points;
        for (unsigned txns : kTxns) {
            Timing t = timeCampaign(w, fig13Config(txns), {}, 1);
            double ms = t.meanTotalSeconds * 1e3;
            std::size_t fp = t.last.stats.failurePoints;
            double per = fp ? ms / fp : 0;
            std::printf("  %-8u %12.2f %14zu %16.3f\n", txns, ms, fp,
                        per);
            points.push_back({txns, ms, fp});
        }
        series.emplace_back(w, std::move(points));
    }
    rule();
    std::printf("\npaper: time increases linearly as the number of "
                "failure points increases\n(the per-failure-point cost "
                "column should stay roughly flat).\n\n");

    writeBenchJson("fig13", [&](obs::JsonWriter &w) {
        w.key("workloads").beginArray();
        for (const auto &[name, points] : series) {
            w.beginObject();
            w.field("workload", name);
            w.key("points").beginArray();
            for (const auto &p : points) {
                w.beginObject();
                w.field("txns", p.txns);
                w.field("time_ms", p.ms);
                w.field("failure_points",
                        static_cast<std::uint64_t>(p.failpoints));
                w.field("ms_per_failpoint",
                        p.failpoints ? p.ms / p.failpoints : 0.0);
                w.endObject();
            }
            w.endArray();
            w.endObject();
        }
        w.endArray();
    });
}

void
BM_Scalability(benchmark::State &state)
{
    unsigned txns = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        Timing t = timeCampaign("btree", fig13Config(txns), {}, 1);
        benchmark::DoNotOptimize(t.last.stats.failurePoints);
    }
    state.counters["failpoints"] = static_cast<double>(
        timeCampaign("btree", fig13Config(txns), {}, 1)
            .last.stats.failurePoints);
}

BENCHMARK(BM_Scalability)
    ->Arg(1)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    printTable();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
