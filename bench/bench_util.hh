/**
 * @file
 * Shared helpers for the benchmark binaries: campaign runners with
 * repetition, fixed-width table printing that mirrors the paper's
 * tables/figures as console output, and machine-readable
 * BENCH_<name>.json emission for regression tracking.
 */

#ifndef XFD_BENCH_BENCH_UTIL_HH
#define XFD_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/phase_profiler.hh"
#include "workloads/workload.hh"
#include "xfd.hh"

namespace xfd::bench
{

/** Pool size used by all benchmark campaigns. */
constexpr std::size_t benchPoolSize = 1 << 23;

/** Result of repeated campaign timing. */
struct Timing
{
    core::CampaignResult last;
    double meanTotalSeconds = 0;
    double meanPreSeconds = 0;
    double meanPostSeconds = 0;
    double meanBackendSeconds = 0;
    /** Mean seconds attributed to each obs::Phase. */
    std::array<double, obs::phaseCount> meanPhaseSeconds{};

    /** Mean seconds of one phase. */
    double
    phaseSeconds(obs::Phase p) const
    {
        return meanPhaseSeconds[static_cast<std::size_t>(p)];
    }

    /**
     * Fraction of the backend component the profiler attributes to
     * restore + classify (1 when there is no backend time at all).
     */
    double
    backendAttribution() const
    {
        double attributed = phaseSeconds(obs::Phase::Restore) +
                            phaseSeconds(obs::Phase::Classify);
        double denom = std::max(meanBackendSeconds, attributed);
        return denom > 0 ? attributed / denom : 1.0;
    }
};

/** Run a detection campaign @p reps times and average the timings. */
inline Timing
timeCampaign(const std::string &workload,
             workloads::WorkloadConfig cfg,
             core::DetectorConfig dcfg = {}, unsigned reps = 3)
{
    Timing t;
    for (unsigned i = 0; i < reps; i++) {
        auto w = workloads::makeWorkload(workload, cfg);
        auto res = Campaign::forProgram(
                       [&](trace::PmRuntime &rt) { w->pre(rt); },
                       [&](trace::PmRuntime &rt) { w->post(rt); })
                       .config(dcfg)
                       .poolSize(benchPoolSize)
                       .run();
        const core::CampaignStats &st = res.statistics();
        t.meanTotalSeconds += st.totalSeconds();
        t.meanPreSeconds += st.preSeconds;
        t.meanPostSeconds += st.postSeconds;
        t.meanBackendSeconds += st.backendSeconds;
        for (std::size_t p = 0; p < obs::phaseCount; p++)
            t.meanPhaseSeconds[p] += res.phases().seconds[p];
        t.last = std::move(res);
    }
    t.meanTotalSeconds /= reps;
    t.meanPreSeconds /= reps;
    t.meanPostSeconds /= reps;
    t.meanBackendSeconds /= reps;
    for (double &p : t.meanPhaseSeconds)
        p /= reps;
    return t;
}

/**
 * Emit the per-phase breakdown of @p t into the open JSON object:
 * a "phases_ms" object (zero-time phases omitted) and the
 * "backend_attribution" fraction.
 */
inline void
writePhaseBreakdownJson(obs::JsonWriter &w, const Timing &t)
{
    w.key("phases_ms").beginObject();
    for (std::size_t p = 0; p < obs::phaseCount; p++) {
        if (t.meanPhaseSeconds[p] > 0) {
            w.field(obs::phaseName(static_cast<obs::Phase>(p)),
                    t.meanPhaseSeconds[p] * 1e3);
        }
    }
    w.endObject();
    w.field("backend_attribution", t.backendAttribution());
}

/** Time only the pre-failure stage in a baseline mode. */
inline double
timeBaseline(const std::string &workload, workloads::WorkloadConfig cfg,
             bool traced, unsigned reps = 5)
{
    double total = 0;
    for (unsigned i = 0; i < reps; i++) {
        auto w = workloads::makeWorkload(workload, cfg);
        total += Campaign::forProgram(
                     [&](trace::PmRuntime &rt) { w->pre(rt); },
                     [](trace::PmRuntime &) {})
                     .poolSize(benchPoolSize)
                     .baseline(traced);
    }
    return total / reps;
}

/** Print a horizontal rule sized for our tables. */
inline void
rule(int width = 78)
{
    for (int i = 0; i < width; i++)
        std::putchar('-');
    std::putchar('\n');
}

/**
 * Where BENCH_<name>.json lands: $XFD_BENCH_JSON_DIR when set, the
 * current directory otherwise.
 */
inline std::string
benchJsonPath(const std::string &name)
{
    const char *dir = std::getenv("XFD_BENCH_JSON_DIR");
    std::string prefix =
        dir && *dir ? std::string(dir) + "/" : std::string();
    return prefix + "BENCH_" + name + ".json";
}

/**
 * Write BENCH_<name>.json: a "xfd-bench-v1" envelope whose body
 * (everything besides schema/bench) @p body emits into the open
 * top-level object.
 */
inline void
writeBenchJson(const std::string &name,
               const std::function<void(obs::JsonWriter &)> &body)
{
    std::string path = benchJsonPath(name);
    std::ofstream out(path);
    if (!out) {
        warn("cannot write %s", path.c_str());
        return;
    }
    obs::JsonWriter w(out);
    w.beginObject();
    w.field("schema", "xfd-bench-v1");
    w.field("bench", name);
    body(w);
    w.endObject();
    out << '\n';
    std::printf("wrote %s\n", path.c_str());
}

} // namespace xfd::bench

#endif // XFD_BENCH_BENCH_UTIL_HH
