/**
 * @file
 * Table 5 reproduction — synthetic-bug validation matrix.
 *
 * Runs every registered bug campaign and prints, per workload, how
 * many of the injected races (R), semantic bugs (S) and performance
 * bugs (P) were detected, split into the PMTest-suite column and the
 * additional column, exactly like the paper's Table 5. The expected
 * output is full detection (the paper reports the same).
 */

#include "bench/bench_util.hh"
#include "bugsuite/registry.hh"

using namespace xfd;
using namespace xfd::bench;
using namespace xfd::bugsuite;

namespace
{

struct Cell
{
    std::size_t detected = 0;
    std::size_t total = 0;

    std::string
    str() const
    {
        if (!total)
            return "  -  ";
        return strprintf("%2zu/%-2zu", detected, total);
    }
};

} // namespace

int
main()
{
    setVerbose(false);

    const char *const micro[] = {"btree", "ctree", "rbtree",
                                 "hashmap_tx", "hashmap_atomic"};

    std::printf("\n=== Table 5: synthetic-bug validation "
                "(detected/injected) ===\n");
    rule();
    std::printf("%-16s | %-13s | %-11s | %-5s\n", "",
                "PMTest suite", "Additional", "");
    std::printf("%-16s | %5s %5s | %5s %5s | %5s\n", "workload", "R",
                "P", "R", "S", "total");
    rule();

    std::size_t all_detected = 0, all_total = 0;
    for (const char *w : micro) {
        Cell suite_r, suite_p, add_r, add_s;
        for (const auto &c : bugCasesFor(w)) {
            if (c.origin == Origin::Extra)
                continue;
            Cell *cell = nullptr;
            bool suite = c.origin == Origin::PmTestSuite;
            if (c.expected == Expected::Race)
                cell = suite ? &suite_r : &add_r;
            else if (c.expected == Expected::Performance)
                cell = &suite_p;
            else if (c.expected == Expected::Semantic)
                cell = &add_s;
            if (!cell)
                continue;
            cell->total++;
            auto res = runBugCase(c);
            if (detected(c, res))
                cell->detected++;
        }
        std::size_t det = suite_r.detected + suite_p.detected +
                          add_r.detected + add_s.detected;
        std::size_t tot = suite_r.total + suite_p.total + add_r.total +
                          add_s.total;
        all_detected += det;
        all_total += tot;
        std::printf("%-16s | %s %s | %s %s | %2zu/%-2zu\n", w,
                    suite_r.str().c_str(), suite_p.str().c_str(),
                    add_r.str().c_str(), add_s.str().c_str(), det, tot);
    }
    rule();
    std::printf("overall: %zu/%zu detected\n", all_detected, all_total);
    std::printf("\npaper Table 5 injects R/S/P per workload: B-Tree "
                "8R+2P(+4R), C-Tree 5R+1P(+1R),\nRB-Tree 7R+1P(+1R), "
                "Hashmap-TX 6R+1P(+3R), Hashmap-Atomic 10R+2P(+3R+4S); "
                "the\nvalidation 'shows that XFDetector is effective "
                "in detecting these synthetic bugs'.\n\n");
    return all_detected == all_total ? 0 : 1;
}
