/**
 * @file
 * Figure 12 reproduction — detection cost per workload.
 *
 * (a) wall-clock time of one campaign per workload (init 5, one test
 *     operation, as in §6.2.1: "one transaction/query that performs
 *     an insertion, and another one for each failure point"), broken
 *     into pre-failure, post-failure and backend components;
 * (b) slowdown of full detection over a trace-only run ("Pure Pin")
 *     and over the untraced original program.
 *
 * Expected shape (paper): the post-failure executions dominate the
 * campaign, detection >> pure tracing >> original.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

const char *const kWorkloads[] = {"btree",          "wal_btree",
                                  "ctree",          "rbtree",
                                  "hashmap_tx",     "hashmap_atomic",
                                  "redis",          "memcached"};

workloads::WorkloadConfig
fig12Config()
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 1;
    cfg.postOps = 1;
    return cfg;
}

/**
 * The campaign runs the production backend: the signature-batched
 * scheduler plus same-value write elision (DESIGN.md §12). Findings
 * are byte-identical to the serial unbatched run — enforced by
 * tests/test_batch_sched.cc and the CI batch-smoke job — so only the
 * cost changes.
 */
core::DetectorConfig
fig12Detector()
{
    core::DetectorConfig dcfg;
    dcfg.backend = "batched";
    dcfg.elideSameValueWrites = true;
    return dcfg;
}

void
printTables()
{
    std::printf("\n=== Figure 12a: XFDetector execution time "
                "(per campaign) ===\n");
    rule();
    std::printf("%-16s %10s %10s %10s %10s %8s\n", "workload",
                "total(ms)", "pre(ms)", "post(ms)", "backend", "#fail");
    rule();

    struct Row
    {
        std::string name;
        Timing t;
        Timing cs; ///< same campaign with --crash-states=sample:16
        double traced;
        double original;
    };
    std::vector<Row> rows;

    core::DetectorConfig cs_dcfg = fig12Detector();
    cs_dcfg.crashStates = "sample:16";

    // Discarded warmup: fault in the allocator arenas and code paths
    // so the first measured workload is not charged for them.
    (void)timeCampaign(kWorkloads[0], fig12Config(), fig12Detector(), 1);

    for (const char *w : kWorkloads) {
        Row row;
        row.name = w;
        row.t = timeCampaign(w, fig12Config(), fig12Detector(), 5);
        row.cs = timeCampaign(w, fig12Config(), cs_dcfg, 1);
        row.traced = timeBaseline(w, fig12Config(), true);
        row.original = timeBaseline(w, fig12Config(), false);
        // failurePoints counts executed representatives in batched
        // mode; the folded members ride along via lintPrunedPoints.
        const core::CampaignStats &st = row.t.last.statistics();
        std::printf("%-16s %10.3f %10.3f %10.3f %10.3f %5zu/%zu\n", w,
                    row.t.meanTotalSeconds * 1e3,
                    row.t.meanPreSeconds * 1e3,
                    row.t.meanPostSeconds * 1e3,
                    row.t.meanBackendSeconds * 1e3, st.failurePoints,
                    st.failurePoints + st.lintPrunedPoints);
        rows.push_back(std::move(row));
    }
    rule();

    std::printf("\n=== Figure 12a addendum: phase attribution "
                "(ms per campaign) ===\n");
    rule();
    std::printf("%-16s %9s %7s %9s %9s %9s %7s\n", "workload",
                "capture", "plan", "restore", "recexec", "classify",
                "attrib");
    rule();
    for (const auto &row : rows) {
        std::printf("%-16s %9.3f %7.3f %9.3f %9.3f %9.3f %6.1f%%\n",
                    row.name.c_str(),
                    row.t.phaseSeconds(obs::Phase::TraceCapture) * 1e3,
                    row.t.phaseSeconds(obs::Phase::Plan) * 1e3,
                    row.t.phaseSeconds(obs::Phase::Restore) * 1e3,
                    row.t.phaseSeconds(obs::Phase::RecoveryExec) * 1e3,
                    row.t.phaseSeconds(obs::Phase::Classify) * 1e3,
                    row.t.backendAttribution() * 100);
    }
    rule();
    std::printf("attrib = share of the backend(ms) column the "
                "restore+classify phases account\nfor; the profiler "
                "wraps exactly the intervals that feed that counter, "
                "so this\nshould sit at ~100%%.\n");

    std::printf("\n=== Figure 12a addendum: --crash-states=sample:16 "
                "exploration cost ===\n");
    rule();
    std::printf("%-16s %10s %10s %10s %10s\n", "workload", "total(ms)",
                "explored", "pruned", "prune%");
    rule();
    for (const auto &row : rows) {
        const core::CampaignStats &cst = row.cs.last.statistics();
        std::size_t enumd = cst.crashStatesEnumerated;
        std::printf("%-16s %10.3f %10zu %10zu %9.1f%%\n",
                    row.name.c_str(), row.cs.meanTotalSeconds * 1e3,
                    cst.crashStatesExplored, cst.crashStatesPruned,
                    enumd ? 100.0 * cst.crashStatesPruned / enumd : 0.0);
    }
    rule();
    std::printf("partial crash-state exploration multiplies recovery "
                "executions; the pruned\ncolumn counts candidates the "
                "equivalence classes folded into an already-run\n"
                "representative.\n");

    std::printf("\n=== Figure 12b: slowdown over baselines ===\n");
    rule();
    std::printf("%-16s %16s %16s %14s\n", "workload", "vs trace-only",
                "vs original", "post share");
    rule();
    double geo_trace = 1, geo_orig = 1;
    for (const auto &row : rows) {
        double s_trace = row.t.meanTotalSeconds /
                         std::max(row.traced, 1e-9);
        double s_orig = row.t.meanTotalSeconds /
                        std::max(row.original, 1e-9);
        double post_share =
            (row.t.meanPostSeconds + row.t.meanBackendSeconds) /
            std::max(row.t.meanTotalSeconds, 1e-12);
        geo_trace *= s_trace;
        geo_orig *= s_orig;
        std::printf("%-16s %15.1fx %15.1fx %13.0f%%\n",
                    row.name.c_str(), s_trace, s_orig,
                    post_share * 100);
    }
    rule();
    std::printf("%-16s %15.1fx %15.1fx\n", "geomean",
                std::pow(geo_trace, 1.0 / rows.size()),
                std::pow(geo_orig, 1.0 / rows.size()));
    std::printf("\npaper: detection is 12.3x over pure Pin and 400.8x "
                "over the original\nprogram (geomean), with the "
                "post-failure stage the dominant component.\n\n");

    writeBenchJson("fig12", [&](obs::JsonWriter &w) {
        w.key("workloads").beginArray();
        for (const auto &row : rows) {
            w.beginObject();
            w.field("workload", row.name);
            w.field("total_ms", row.t.meanTotalSeconds * 1e3);
            w.field("pre_ms", row.t.meanPreSeconds * 1e3);
            w.field("post_ms", row.t.meanPostSeconds * 1e3);
            w.field("backend_ms", row.t.meanBackendSeconds * 1e3);
            const core::CampaignStats &st = row.t.last.statistics();
            // Pre-batching total, comparable across backend modes.
            w.field("failure_points",
                    static_cast<std::uint64_t>(st.failurePoints +
                                               st.lintPrunedPoints));
            w.field("batch_groups",
                    static_cast<std::uint64_t>(st.batchGroups));
            w.field("same_value_elided",
                    static_cast<std::uint64_t>(st.sameValueElided));
            const core::CampaignStats &cst = row.cs.last.statistics();
            w.field("crash_states_ms",
                    row.cs.meanTotalSeconds * 1e3);
            w.field("crash_states_explored",
                    static_cast<std::uint64_t>(cst.crashStatesExplored));
            w.field("candidates_pruned",
                    static_cast<std::uint64_t>(cst.crashStatesPruned));
            writePhaseBreakdownJson(w, row.t);
            w.field("trace_only_ms", row.traced * 1e3);
            w.field("original_ms", row.original * 1e3);
            w.field("slowdown_vs_trace",
                    row.t.meanTotalSeconds /
                        std::max(row.traced, 1e-9));
            w.field("slowdown_vs_original",
                    row.t.meanTotalSeconds /
                        std::max(row.original, 1e-9));
            w.endObject();
        }
        w.endArray();
        w.field("geomean_slowdown_vs_trace",
                std::pow(geo_trace, 1.0 / rows.size()));
        w.field("geomean_slowdown_vs_original",
                std::pow(geo_orig, 1.0 / rows.size()));
    });
}

/** google-benchmark probe: full campaign on one representative. */
void
BM_DetectionCampaign(benchmark::State &state)
{
    const char *w = kWorkloads[state.range(0)];
    for (auto _ : state) {
        auto t = timeCampaign(w, fig12Config(), fig12Detector(), 1);
        benchmark::DoNotOptimize(t.last.statistics().failurePoints);
    }
    state.SetLabel(w);
}

BENCHMARK(BM_DetectionCampaign)->DenseRange(0, 7)->Unit(
    benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    printTables();
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    return 0;
}
