/**
 * @file
 * Ablation — crash-image construction.
 *
 * The paper's image copy keeps all updates (footnote 3) and relies on
 * the shadow PM to flag reads of unpersisted data. Our crashImageMode
 * extension instead materializes the image a real crash would leave
 * (pmreorder/Yat-style). This bench compares the two on the micro
 * workloads and a representative bug from each class:
 *
 *  - bug-free workloads must be clean either way;
 *  - the shadow-based race detection is mode-independent;
 *  - crash mode can additionally surface behavioural recovery
 *    failures (the recovery *acting* on missing data), at the cost of
 *    testing one materialization instead of all interleavings.
 */

#include "bench/bench_util.hh"
#include "bugsuite/registry.hh"

using namespace xfd;
using namespace xfd::bench;

int
main()
{
    setVerbose(false);
    const char *const micro[] = {"btree", "ctree", "rbtree",
                                 "hashmap_tx", "hashmap_atomic"};

    workloads::WorkloadConfig cfg;
    cfg.initOps = 6;
    cfg.testOps = 10;
    cfg.postOps = 4;

    std::printf("\n=== Ablation: footnote-3 image vs. realistic crash "
                "image ===\n");
    rule();
    std::printf("%-16s %-14s %12s %12s %12s\n", "workload", "mode",
                "findings", "recoveries", "time(ms)");
    rule();
    bool clean = true;
    for (const char *w : micro) {
        for (int mode = 0; mode < 2; mode++) {
            core::DetectorConfig dcfg;
            dcfg.crashImageMode = mode == 1;
            Timing t = timeCampaign(w, cfg, dcfg, 1);
            std::printf("%-16s %-14s %12zu %12zu %12.2f\n", w,
                        mode ? "crash image" : "paper (all)",
                        t.last.findings().size(),
                        t.last.count(core::BugType::RecoveryFailure),
                        t.meanTotalSeconds * 1e3);
            clean = clean && t.last.findings().empty();
        }
    }
    rule();

    std::printf("\nrepresentative bugs under both modes:\n");
    rule();
    // Semantic cases are excluded: crash-image mode disables the
    // commit-variable checks (see DetectorConfig::crashImageMode).
    const char *const reps[] = {"btree.race.leaf_no_add",
                                "hashmap_tx.race.slot_no_add",
                                "hashmap_atomic.shipped.count_uninit"};
    bool detected_both = true;
    for (const char *id : reps) {
        for (const auto &c : bugsuite::allBugCases()) {
            if (c.id != id)
                continue;
            core::DetectorConfig crash;
            crash.crashImageMode = true;
            bool d_paper = bugsuite::detected(c, bugsuite::runBugCase(c));
            bool d_crash =
                bugsuite::detected(c, bugsuite::runBugCase(c, crash));
            detected_both = detected_both && d_paper && d_crash;
            std::printf("%-46s paper:%s crash-image:%s\n", id,
                        d_paper ? "Y" : "n", d_crash ? "Y" : "n");
        }
    }
    rule();
    std::printf("\nshadow-based detection is image-mode independent; "
                "the paper's all-updates copy\nremains the default "
                "because it covers every persistence interleaving at "
                "once.\n\n");
    return (clean && detected_both) ? 0 : 1;
}
