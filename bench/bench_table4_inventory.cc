/**
 * @file
 * Tables 3 & 4 reproduction — evaluated system and evaluated
 * programs.
 *
 * Table 3 reports the paper's testbed (Xeon 6230 + Optane DCPMM); we
 * print the emulated-substrate equivalent. Table 4 lists the
 * evaluated PM programs with their crash-consistency type and lines
 * of code, plus the annotation burden (the paper reports 4-10
 * annotation lines per workload); we count both from this repo's
 * sources.
 */

#include <fstream>
#include <string>

#include "bench/bench_util.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

#ifndef XFD_SOURCE_DIR
#define XFD_SOURCE_DIR "."
#endif

struct Counts
{
    std::size_t loc = 0;
    std::size_t annotations = 0;
};

/** Count code lines and Table 2 annotation calls in a source file. */
Counts
countFile(const std::string &rel)
{
    Counts c;
    std::ifstream in(std::string(XFD_SOURCE_DIR) + "/" + rel);
    std::string line;
    const char *const markers[] = {"addCommitVar", "addCommitRange",
                                   "RoiScope",     "roiBegin",
                                   "addFailurePoint", "skipDetection",
                                   "skipFailure"};
    while (std::getline(in, line)) {
        // Count non-empty, non-comment-only lines.
        auto pos = line.find_first_not_of(" \t");
        if (pos == std::string::npos)
            continue;
        if (line.compare(pos, 2, "//") == 0 ||
            line.compare(pos, 2, "/*") == 0 ||
            line.compare(pos, 1, "*") == 0) {
            continue;
        }
        c.loc++;
        for (const char *m : markers) {
            if (line.find(m) != std::string::npos) {
                c.annotations++;
                break;
            }
        }
    }
    return c;
}

} // namespace

int
main()
{
    std::printf("\n=== Table 3: evaluated system ===\n");
    rule();
    std::printf("  paper: Xeon Gold 6230, 2x128GB Optane DCPMM (App "
                "Direct), Ubuntu 18.04,\n         Pin-3.10, PMDK-1.6\n");
    std::printf("  here:  PM emulated in DRAM (deterministic base "
                "%#llx), software-directed\n         tracing frontend, "
                "xfd::pmlib transactional library, C++20\n",
                static_cast<unsigned long long>(defaultPoolBase));
    rule();

    struct Row
    {
        const char *name;
        const char *type;
        const char *file;
    };
    const Row rows[] = {
        {"B-Tree", "Transaction", "src/workloads/btree.cc"},
        {"C-Tree", "Transaction", "src/workloads/ctree.cc"},
        {"RB-Tree", "Transaction", "src/workloads/rbtree.cc"},
        {"Hashmap-TX", "Transaction", "src/workloads/hashmap_tx.cc"},
        {"Hashmap-Atomic", "Low-level",
         "src/workloads/hashmap_atomic.cc"},
        {"Memcached", "Low-level", "src/workloads/mini_memcached.cc"},
        {"Redis", "Transaction", "src/workloads/mini_redis.cc"},
    };

    std::printf("\n=== Table 4: evaluated PM programs ===\n");
    rule();
    std::printf("%-16s %-14s %10s %14s\n", "name", "type", "LOC",
                "annotations");
    rule();
    for (const auto &row : rows) {
        Counts c = countFile(row.file);
        if (c.loc == 0) {
            std::printf("%-16s %-14s %10s %14s\n", row.name, row.type,
                        "n/a", "n/a");
            continue;
        }
        std::printf("%-16s %-14s %10zu %14zu\n", row.name, row.type,
                    c.loc, c.annotations);
    }
    rule();
    std::printf("\npaper Table 4: micro benchmarks 698-981 LOC with 4-5 "
                "annotation lines;\nMemcached 23k/10, Redis 66k/6. Our "
                "engines are scoped to the storage paths the\npaper "
                "exercises, so LOC is smaller; the annotation burden "
                "is comparable.\n\n");
    return 0;
}
