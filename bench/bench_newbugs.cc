/**
 * @file
 * §6.3.2 reproduction — the four new bugs XFDetector found.
 *
 *  1. Hashmap-Atomic create_hashmap(): hash metadata assigned but
 *     never persisted (hashmap_atomic.c:132-138).
 *  2. Hashmap-Atomic: `count` read from an allocation that was never
 *     explicitly initialized (hashmap_atomic.c:280).
 *  3. PM-Redis initPersistentMemory(): num_dict_entries written
 *     without transactional protection (server.c:4029).
 *  4. libpmemobj pool creation is not failure-atomic; a half-created
 *     pool cannot be opened (obj.c:1324).
 *
 * For each bug the campaign runs as shipped (finding expected) and
 * with the fix applied (clean run expected).
 */

#include "bench/bench_util.hh"
#include "bugsuite/registry.hh"
#include "pmlib/objpool.hh"

using namespace xfd;
using namespace xfd::bench;
using namespace xfd::bugsuite;

namespace
{

/** Run a case with the bug flag removed (the fixed program). */
core::CampaignResult
runFixed(const BugCase &c)
{
    BugCase fixed = c;
    if (fixed.workload == "pool_create") {
        // Fixed recovery: openOrCreate() reformats the half pool.
        pm::PmPool pool(1 << 22);
        core::Driver driver(pool, {});
        return driver.run(
            [](trace::PmRuntime &rt) {
                trace::RoiScope roi(rt);
                pmlib::ObjPool::create(rt, "bug4", 64);
            },
            [](trace::PmRuntime &rt) {
                trace::RoiScope roi(rt);
                pmlib::ObjPool::openOrCreate(rt, "bug4", 64);
            });
    }
    fixed.id.clear();
    return runBugCase(fixed);
}

} // namespace

int
main()
{
    setVerbose(false);

    std::printf("\n=== Section 6.3.2: the four new bugs ===\n");
    int bug_no = 0;
    bool all_ok = true;
    for (const auto &c : allBugCases()) {
        if (c.origin != Origin::NewBug)
            continue;
        bug_no++;
        auto shipped = runBugCase(c);
        auto fixed = runFixed(c);
        bool found = detected(c, shipped);
        bool clean = !fixed.hasBugs();
        all_ok = all_ok && found && clean;

        rule();
        std::printf("Bug %d: %s\n", bug_no, c.description.c_str());
        std::printf("  as shipped: %zu finding(s) [%s expected] -> %s\n",
                    shipped.findings().size(), expectedName(c.expected),
                    found ? "DETECTED" : "MISSED");
        for (const auto &b : shipped.findings()) {
            std::printf("    [%s] reader %s:%u\n",
                        core::bugTypeName(b.type),
                        b.reader.file, b.reader.line);
        }
        std::printf("  fixed:      %zu finding(s) -> %s\n",
                    fixed.findings().size(), clean ? "CLEAN" : "NOT CLEAN");
    }
    rule();
    std::printf("paper: 'XFDetector has detected four new bugs in "
                "three pieces of PM software'\n\n");
    return all_ok ? 0 : 1;
}
