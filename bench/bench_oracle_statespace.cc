/**
 * @file
 * Oracle state-space throughput.
 *
 * The crash-state oracle's cost is one recovery execution per
 * candidate crash image, so its practical reach is measured in crash
 * states per second. This bench drives the oracle over synthetic
 * pre-failure programs with exactly k in-flight writes at the failure
 * point (k independent cells, so every subset is legal and the space
 * is 2^k), across the exhaustive tier and the sampled tier beyond the
 * frontier limit, with both a no-op and a reading recovery. Emits
 * BENCH_oracle_statespace.json for regression tracking.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "oracle/oracle.hh"
#include "trace/runtime.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

constexpr std::size_t poolBytes = 1 << 20;
constexpr Addr slotStride = 128; // one oracle cell per slot

/** k cached stores left in flight at the trailing fence. */
void
prepareProgram(trace::PmRuntime &rt, unsigned k)
{
    trace::RoiScope roi(rt);
    for (unsigned i = 0; i < k; i++) {
        auto *slot = rt.pool().at<std::uint64_t>(i * slotStride);
        rt.store(*slot, std::uint64_t{i} + 1);
    }
    rt.sfence();
}

/** Recovery that reads every slot (classification on each candidate). */
core::ProgramFn
readerRecovery(unsigned k)
{
    return [k](trace::PmRuntime &rt) {
        trace::RoiScope roi(rt);
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < k; i++)
            sum += rt.load(*rt.pool().at<std::uint64_t>(i * slotStride));
        (void)sum;
    };
}

struct Row
{
    unsigned k;
    bool sampled;
    const char *recovery;
    std::size_t states;
    std::size_t candidates;
    double seconds;

    double
    statesPerSec() const
    {
        return seconds > 0 ? candidates / seconds : 0;
    }
};

Row
runOne(unsigned k, std::size_t sampleCount, const char *recoveryName,
       const core::ProgramFn &post)
{
    pm::PmPool pool(poolBytes);
    pm::PmImage initial = pool.snapshot();
    trace::TraceBuffer pre;
    {
        trace::PmRuntime rt(pool, pre, trace::Stage::PreFailure);
        prepareProgram(rt, k);
    }

    // The failure point is the trailing fence: it has not retired, so
    // all k stores are still in flight there.
    std::uint32_t fp = 0;
    for (const auto &e : pre) {
        if (e.op == trace::Op::Sfence)
            fp = e.seq;
    }

    oracle::OracleConfig cfg;
    cfg.frontierLimit = 16;
    cfg.sampleCount = sampleCount;
    oracle::CrashStateOracle o(pre, initial, cfg);

    auto t0 = std::chrono::steady_clock::now();
    oracle::FpOracleResult res = o.runFailurePoint(fp, post);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    Row row;
    row.k = k;
    row.sampled = res.sampled;
    row.recovery = recoveryName;
    row.states = res.statesLegal;
    row.candidates = res.candidates.size();
    row.seconds = dt.count();
    return row;
}

} // namespace

int
main()
{
    setVerbose(false);

    std::vector<Row> rows;
    bool sane = true;

    // Exhaustive tier: k independent cells => exactly 2^k legal
    // states, and the oracle must visit every one of them.
    for (unsigned k : {4u, 8u, 12u, 14u}) {
        for (int reader = 0; reader < 2; reader++) {
            Row r = runOne(k, 256, reader ? "reader" : "noop",
                           reader ? readerRecovery(k)
                                  : core::ProgramFn(
                                        [](trace::PmRuntime &) {}));
            sane = sane && !r.sampled &&
                   r.states == (std::size_t{1} << k) &&
                   r.candidates == r.states;
            rows.push_back(r);
        }
    }

    // Sampled tier: past the frontier limit the candidate count is
    // bounded by the sample budget, not the 2^k space.
    for (unsigned k : {24u, 32u, 48u}) {
        Row r = runOne(k, 256, "reader", readerRecovery(k));
        sane = sane && r.sampled && r.candidates <= 256 + 1;
        rows.push_back(r);
    }

    std::printf("\n=== Oracle state-space throughput (frontier k, "
                "2^k crash states) ===\n");
    rule();
    std::printf("%6s %10s %9s %10s %11s %11s %12s\n", "k", "tier",
                "recovery", "states", "candidates", "time(ms)",
                "states/sec");
    rule();
    for (const Row &r : rows) {
        std::printf("%6u %10s %9s %10zu %11zu %11.2f %12.0f\n", r.k,
                    r.sampled ? "sampled" : "exhaustive", r.recovery,
                    r.states, r.candidates, r.seconds * 1e3,
                    r.statesPerSec());
    }
    rule();
    std::printf("\nexhaustive cost doubles per in-flight write; the "
                "sampled tier keeps the\nper-point cost flat at the "
                "sample budget.\n\n");

    writeBenchJson("oracle_statespace", [&](obs::JsonWriter &w) {
        w.key("rows").beginArray();
        for (const Row &r : rows) {
            w.beginObject();
            w.field("k", r.k);
            w.field("tier", r.sampled ? "sampled" : "exhaustive");
            w.field("recovery", r.recovery);
            w.field("states", static_cast<std::uint64_t>(r.states));
            w.field("candidates",
                    static_cast<std::uint64_t>(r.candidates));
            w.field("seconds", r.seconds);
            w.field("states_per_sec", r.statesPerSec());
            w.endObject();
        }
        w.endArray();
    });

    return sane ? 0 : 1;
}
