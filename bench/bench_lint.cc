/**
 * @file
 * Lint pruning payoff. Per workload: the planned failure-point count,
 * the share the static pass proves redundant, the cost of the lint
 * pass itself, and the end-to-end campaign wall-clock with and
 * without signature batching. Emits BENCH_lint.json for regression
 * tracking; XFD_BENCH_QUICK shrinks the op counts and repetitions for
 * CI.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "core/failure_planner.hh"
#include "lint/lint.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

struct Row
{
    std::string workload;
    std::size_t points = 0;
    std::size_t pruned = 0;
    std::size_t diagnostics = 0;
    double lintSeconds = 0;
    double fullSeconds = 0;
    double prunedSeconds = 0;

    double
    ratio() const
    {
        return points ? static_cast<double>(pruned) /
                            static_cast<double>(points)
                      : 0;
    }

    double
    speedup() const
    {
        return prunedSeconds > 0 ? fullSeconds / prunedSeconds : 0;
    }
};

Row
runOne(const std::string &name, const workloads::WorkloadConfig &wcfg,
       unsigned reps)
{
    Row row;
    row.workload = name;

    // The static pass alone: trace the pre-failure stage once, plan,
    // and time runLint over the trace.
    auto w = workloads::makeWorkload(name, wcfg);
    pm::PmPool pool(benchPoolSize);
    trace::TraceBuffer pre;
    {
        trace::PmRuntime rt(pool, pre, trace::Stage::PreFailure);
        w->pre(rt);
    }
    core::DetectorConfig dcfg;
    core::FailurePlan plan = core::planFailurePoints(pre, dcfg);

    auto t0 = std::chrono::steady_clock::now();
    lint::LintConfig lcfg;
    lint::LintReport lrep = lint::runLint(pre, lcfg, &plan.points);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    row.points = plan.points.size();
    row.pruned = lrep.prune.pruned.size();
    row.diagnostics = lrep.diagnostics.size();
    row.lintSeconds = dt.count();

    // The payoff: the same campaign with and without pruning.
    core::DetectorConfig off;
    row.fullSeconds = timeCampaign(name, wcfg, off, reps)
                          .meanTotalSeconds;
    core::DetectorConfig on;
    on.backend = "batched";
    row.prunedSeconds = timeCampaign(name, wcfg, on, reps)
                            .meanTotalSeconds;
    return row;
}

} // namespace

int
main()
{
    setVerbose(false);
    const bool quick = std::getenv("XFD_BENCH_QUICK") != nullptr;
    const unsigned reps = quick ? 1 : 3;

    std::vector<Row> rows;
    for (const std::string &name : workloads::workloadNames()) {
        workloads::WorkloadConfig wcfg;
        wcfg.initOps = quick ? 3 : 10;
        wcfg.testOps = quick ? 3 : 10;
        if (name == "memcached")
            wcfg.memcachedCapacity = 64;
        rows.push_back(runOne(name, wcfg, reps));
    }

    std::printf("%-16s %8s %8s %7s %9s %10s %10s %8s\n", "workload",
                "points", "pruned", "ratio", "lint(s)", "full(s)",
                "pruned(s)", "speedup");
    rule();
    for (const Row &r : rows) {
        std::printf("%-16s %8zu %8zu %6.1f%% %9.5f %10.4f %10.4f "
                    "%7.2fx\n",
                    r.workload.c_str(), r.points, r.pruned,
                    100.0 * r.ratio(), r.lintSeconds, r.fullSeconds,
                    r.prunedSeconds, r.speedup());
    }

    writeBenchJson("lint", [&](obs::JsonWriter &w) {
        w.field("quick", quick);
        w.key("workloads").beginArray();
        for (const Row &r : rows) {
            w.beginObject();
            w.field("workload", r.workload);
            w.field("points", static_cast<std::uint64_t>(r.points));
            w.field("pruned", static_cast<std::uint64_t>(r.pruned));
            w.field("prune_ratio", r.ratio());
            w.field("diagnostics",
                    static_cast<std::uint64_t>(r.diagnostics));
            w.field("lint_seconds", r.lintSeconds);
            w.field("full_seconds", r.fullSeconds);
            w.field("pruned_seconds", r.prunedSeconds);
            w.field("speedup", r.speedup());
            w.endObject();
        }
        w.endArray();
    });
    return 0;
}
