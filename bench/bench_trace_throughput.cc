/**
 * @file
 * Microbenchmarks of the substrate itself: frontend trace emission,
 * shadow-PM state transitions, post-read checking, and PM-image write
 * replay — the components whose costs compose Fig. 12's totals.
 */

#include <benchmark/benchmark.h>

#include "core/shadow_pm.hh"
#include "pm/image.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

using namespace xfd;

namespace
{

void
BM_TraceStore(benchmark::State &state)
{
    pm::PmPool pool(1 << 20);
    trace::TraceBuffer buf;
    trace::PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    auto *v = pool.at<std::uint64_t>(0);
    std::uint64_t i = 0;
    for (auto _ : state) {
        rt.store(*v, i++);
        if (buf.size() > (1u << 20))
            buf.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceStore);

void
BM_TraceLoad(benchmark::State &state)
{
    pm::PmPool pool(1 << 20);
    trace::TraceBuffer buf;
    trace::PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    auto *v = pool.at<std::uint64_t>(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rt.load(*v));
        if (buf.size() > (1u << 20))
            buf.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceLoad);

void
BM_TracePersistBarrier(benchmark::State &state)
{
    pm::PmPool pool(1 << 20);
    trace::TraceBuffer buf;
    trace::PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    auto *v = pool.at<std::uint64_t>(0);
    for (auto _ : state) {
        rt.persistBarrier(v, 8);
        if (buf.size() > (1u << 20))
            buf.clear();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracePersistBarrier);

void
BM_ShadowWriteFlushFence(benchmark::State &state)
{
    core::DetectorConfig cfg;
    cfg.granularity = static_cast<unsigned>(state.range(0));
    core::ShadowPM shadow({defaultPoolBase, defaultPoolBase + (1 << 20)},
                          cfg);
    Addr a = defaultPoolBase;
    std::uint32_t seq = 0;
    for (auto _ : state) {
        shadow.preWrite(a, 64, seq++, false);
        shadow.preFlush(a, seq);
        shadow.preFence();
        a = defaultPoolBase + ((a + 64) & ((1 << 20) - 1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowWriteFlushFence)->Arg(1)->Arg(8);

void
BM_ShadowPostReadCheck(benchmark::State &state)
{
    core::DetectorConfig cfg;
    core::ShadowPM shadow({defaultPoolBase, defaultPoolBase + (1 << 20)},
                          cfg);
    for (Addr a = defaultPoolBase; a < defaultPoolBase + (1 << 16);
         a += 64) {
        shadow.preWrite(a, 64, 0, false);
        shadow.preFlush(a, 1);
    }
    shadow.preFence();
    Addr a = defaultPoolBase;
    shadow.beginPostReplay();
    for (auto _ : state) {
        benchmark::DoNotOptimize(shadow.checkPostRead(a, 8));
        a = defaultPoolBase + ((a + 8) & ((1 << 16) - 1));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowPostReadCheck);

void
BM_ImageWriteReplay(benchmark::State &state)
{
    pm::PmPool pool(1 << 20);
    pm::PmImage img = pool.snapshot();
    std::uint8_t payload[64] = {1, 2, 3};
    Addr a = pool.base();
    for (auto _ : state) {
        img.applyWrite(a, payload, sizeof(payload));
        a = pool.base() + ((a + 64) & ((1 << 20) - 1));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_ImageWriteReplay);

void
BM_ImageCopyToPool(benchmark::State &state)
{
    pm::PmPool pool(static_cast<std::size_t>(state.range(0)));
    pm::PmImage img = pool.snapshot();
    for (auto _ : state)
        img.copyTo(pool);
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ImageCopyToPool)->Arg(1 << 20)->Arg(1 << 23);

} // namespace

BENCHMARK_MAIN();
