/**
 * @file
 * Ablation — first-read-only checking (paper optimization 1) and the
 * strict-persist extension.
 *
 * Optimization 1 skips re-checking later post-failure reads of a
 * location already checked at this failure point; the ablation
 * reports how many checks it saves and the backend-time effect.
 * The strict-persist extension additionally requires commit-covered
 * data to be persisted (a detection gap in the paper's check order);
 * it must not change results on bug-free workloads.
 */

#include "bench/bench_util.hh"

using namespace xfd;
using namespace xfd::bench;

int
main()
{
    setVerbose(false);
    const char *const micro[] = {"btree", "ctree", "rbtree",
                                 "hashmap_tx", "hashmap_atomic"};

    workloads::WorkloadConfig cfg;
    cfg.initOps = 8;
    cfg.testOps = 10;
    cfg.postOps = 4;

    std::printf("\n=== Ablation: first-read-only checking ===\n");
    rule();
    std::printf("%-16s %-12s %12s %12s %12s\n", "workload", "config",
                "checks", "skipped", "backend(ms)");
    rule();
    for (const char *w : micro) {
        core::DetectorConfig on;
        core::DetectorConfig off;
        off.firstReadOnly = false;
        Timing t_on = timeCampaign(w, cfg, on, 1);
        Timing t_off = timeCampaign(w, cfg, off, 1);
        std::printf("%-16s %-12s %12zu %12zu %12.3f\n", w, "on",
                    t_on.last.statistics().checksPerformed,
                    t_on.last.statistics().checksSkipped,
                    t_on.meanBackendSeconds * 1e3);
        std::printf("%-16s %-12s %12zu %12zu %12.3f\n", w, "off",
                    t_off.last.statistics().checksPerformed,
                    t_off.last.statistics().checksSkipped,
                    t_off.meanBackendSeconds * 1e3);
        if (t_on.last.findings().size() != t_off.last.findings().size()) {
            std::printf("  !! findings differ between configs\n");
            return 1;
        }
    }
    rule();

    std::printf("\n=== Extension: strict persist check on bug-free "
                "workloads ===\n");
    rule();
    std::printf("%-16s %20s %20s\n", "workload", "paper rules",
                "strict persist");
    rule();
    bool clean = true;
    for (const char *w : micro) {
        core::DetectorConfig strict;
        strict.strictPersistCheck = true;
        Timing base = timeCampaign(w, cfg, {}, 1);
        Timing hard = timeCampaign(w, cfg, strict, 1);
        std::printf("%-16s %17zu bug %17zu bug\n", w,
                    base.last.findings().size(), hard.last.findings().size());
        clean = clean && base.last.findings().empty() &&
                hard.last.findings().empty();
    }
    rule();
    std::printf("\nboth optimizations are result-preserving; strict "
                "mode adds no false positives\non the bug-free "
                "workloads.\n\n");
    return clean ? 0 : 1;
}
