/**
 * @file
 * Figure 3 reproduction — "Causes of inconsistency" / tool coverage.
 *
 * The paper positions XFDetector against prior pre-failure-only tools
 * (pmemcheck, PMTest): those cover inconsistencies caused in the
 * pre-failure stage but cannot test the interaction with the
 * post-failure stage. This bench runs both our baseline
 * (PreFailureChecker) and XFDetector over four scenarios and prints
 * the coverage matrix:
 *
 *  1. plain missing persist (pre-failure cause)       — both catch;
 *  2. Figure 1 + naive recovery (cross-failure race)  — both flag it
 *     (the baseline by luck of R1);
 *  3. Figure 1 + recover_alt() (correct end-to-end)   — the baseline
 *     false-positives, XFDetector is clean;
 *  4. Figure 2 inverted valid (cross-failure semantic) — only
 *     XFDetector catches it.
 */

#include "bench/bench_util.hh"
#include "core/prefailure_checker.hh"
#include "pmlib/objpool.hh"
#include "pmlib/tx.hh"

using namespace xfd;
using namespace xfd::bench;
using trace::PmRuntime;

namespace
{

struct ListRoot
{
    std::uint64_t value;
    std::uint64_t length;
};

struct ArrRoot
{
    std::int64_t backupIdx;
    std::int64_t backupVal;
    std::uint8_t valid;
    std::uint8_t pad[47];
    std::int64_t arr[8];
};

void
missingPersistPre(PmRuntime &rt)
{
    auto *v =
        static_cast<std::uint64_t *>(rt.pool().toHost(rt.pool().base()));
    trace::RoiScope roi(rt);
    rt.store(*v, std::uint64_t{1});
    rt.store(*(v + 8), std::uint64_t{2});
    rt.persistBarrier(v + 8, 8);
}

void
missingPersistPost(PmRuntime &rt)
{
    auto *v =
        static_cast<std::uint64_t *>(rt.pool().toHost(rt.pool().base()));
    trace::RoiScope roi(rt);
    (void)rt.load(*v);
}

void
fig1Pre(PmRuntime &rt)
{
    pmlib::ObjPool op =
        pmlib::ObjPool::create(rt, "f1", sizeof(ListRoot));
    trace::RoiScope roi(rt);
    auto *r = op.root<ListRoot>();
    pmlib::Tx tx(op);
    tx.add(r->value);
    rt.store(r->value, rt.load(r->value) + 1);
    rt.store(r->length, rt.load(r->length) + 1); // unlogged
    tx.commit();
}

void
fig1PostNaive(PmRuntime &rt)
{
    pmlib::ObjPool op =
        pmlib::ObjPool::openOrCreate(rt, "f1", sizeof(ListRoot));
    trace::RoiScope roi(rt);
    (void)rt.load(op.root<ListRoot>()->length);
}

void
fig1PostAlt(PmRuntime &rt)
{
    pmlib::ObjPool op =
        pmlib::ObjPool::openOrCreate(rt, "f1", sizeof(ListRoot));
    trace::RoiScope roi(rt);
    auto *r = op.root<ListRoot>();
    rt.store(r->length, rt.load(r->value));
    rt.persistBarrier(&r->length, 8);
    (void)rt.load(r->length);
}

void
fig2Annotate(PmRuntime &rt, ArrRoot *r)
{
    rt.addCommitVar(r->valid);
    rt.addCommitRange(r->valid, &r->backupIdx, 16);
    rt.addCommitRange(r->valid, r->arr, sizeof(r->arr));
}

void
fig2Pre(PmRuntime &rt)
{
    auto *r = static_cast<ArrRoot *>(rt.pool().toHost(rt.pool().base()));
    trace::RoiScope roi(rt);
    fig2Annotate(rt, r);
    rt.store(r->backupIdx, std::int64_t{5});
    rt.store(r->backupVal, r->arr[5]);
    rt.persistBarrier(&r->backupIdx, 16);
    rt.store(r->valid, std::uint8_t{0});
    rt.persistBarrier(&r->valid, 1);
    rt.store(r->arr[5], std::int64_t{42});
    rt.persistBarrier(&r->arr[5], 8);
    rt.store(r->valid, std::uint8_t{1});
    rt.persistBarrier(&r->valid, 1);
}

void
fig2Post(PmRuntime &rt)
{
    auto *r = static_cast<ArrRoot *>(rt.pool().toHost(rt.pool().base()));
    trace::RoiScope roi(rt);
    fig2Annotate(rt, r);
    if (rt.load(r->valid)) {
        std::int64_t idx = rt.load(r->backupIdx);
        rt.store(r->arr[idx], rt.load(r->backupVal));
        rt.persistBarrier(&r->arr[idx], 8);
    }
    (void)rt.load(r->arr[5]);
}

struct Scenario
{
    const char *name;
    const char *truth; ///< is the program actually buggy end-to-end?
    void (*pre)(PmRuntime &);
    void (*post)(PmRuntime &);
};

} // namespace

int
main()
{
    setVerbose(false);

    const Scenario scenarios[] = {
        {"missing persist (pre-failure cause)", "buggy",
         missingPersistPre, missingPersistPost},
        {"Fig.1 unlogged length, naive recovery", "buggy", fig1Pre,
         fig1PostNaive},
        {"Fig.1 unlogged length, recover_alt fix", "correct", fig1Pre,
         fig1PostAlt},
        {"Fig.2 inverted valid bit", "buggy", fig2Pre, fig2Post},
    };

    std::printf("\n=== Figure 3: coverage of pre-failure-only tools "
                "vs XFDetector ===\n");
    rule();
    std::printf("%-42s %-8s %-12s %-12s\n", "scenario", "truth",
                "baseline", "XFDetector");
    rule();
    for (const auto &s : scenarios) {
        // Baseline: trace the pre-failure stage only.
        pm::PmPool pool(1 << 21);
        trace::TraceBuffer pre;
        {
            PmRuntime rt(pool, pre, trace::Stage::PreFailure);
            try {
                s.pre(rt);
            } catch (const trace::StageComplete &) {
            }
        }
        core::PreFailureChecker baseline(pool.range());
        bool base_flags = !baseline.check(pre).empty();

        // XFDetector: full cross-failure campaign.
        pm::PmPool pool2(1 << 21);
        core::Driver driver(pool2, {});
        auto res = driver.run(s.pre, s.post);
        bool xfd_flags =
            res.count(core::BugType::CrossFailureRace) +
                res.count(core::BugType::CrossFailureSemantic) >
            0;

        bool truth_buggy = std::string(s.truth) == "buggy";
        auto verdict = [&](bool flagged) {
            if (flagged && truth_buggy)
                return "found";
            if (!flagged && !truth_buggy)
                return "clean";
            return flagged ? "FALSE POS" : "MISSED";
        };
        std::printf("%-42s %-8s %-12s %-12s\n", s.name, s.truth,
                    verdict(base_flags), verdict(xfd_flags));
    }
    rule();
    std::printf("\npaper Fig. 3: prior works [pmemcheck, PMTest] "
                "cover only the pre-failure stage;\n'without "
                "performing an end-to-end test with both stages "
                "involved, it is\nimpossible to cover all buggy "
                "scenarios'.\n\n");
    return 0;
}
