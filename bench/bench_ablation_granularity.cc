/**
 * @file
 * Ablation — shadow-PM cell granularity (1/2/4/8 bytes per cell).
 *
 * Coarser cells shrink the shadow footprint and speed up replay but
 * can false-share state within a cell (a 1-byte write marks the whole
 * cell modified). The ablation reports campaign time per granularity
 * and verifies detections are preserved on a representative bug, plus
 * whether the bug-free workloads stay clean.
 */

#include "bench/bench_util.hh"
#include "bugsuite/registry.hh"

using namespace xfd;
using namespace xfd::bench;

int
main()
{
    setVerbose(false);
    const unsigned grans[] = {1, 2, 4, 8};

    workloads::WorkloadConfig cfg;
    cfg.initOps = 8;
    cfg.testOps = 12;
    cfg.postOps = 4;

    std::printf("\n=== Ablation: shadow-PM cell granularity ===\n");
    rule();
    std::printf("%-12s %12s %14s %16s %14s\n", "granularity",
                "time(ms)", "backend(ms)", "btree findings",
                "bug detected");
    rule();

    const bugsuite::BugCase *rep = nullptr;
    for (const auto &c : bugsuite::allBugCases()) {
        if (c.id == "btree.race.leaf_no_add")
            rep = &c;
    }

    bool all_clean = true;
    bool all_detect = true;
    for (unsigned g : grans) {
        core::DetectorConfig dcfg;
        dcfg.granularity = g;
        Timing t = timeCampaign("btree", cfg, dcfg, 2);
        bool det = rep && bugsuite::detected(
                              *rep, bugsuite::runBugCase(*rep, dcfg));
        std::printf("%-9uB %12.2f %14.3f %16zu %14s\n", g,
                    t.meanTotalSeconds * 1e3,
                    t.meanBackendSeconds * 1e3, t.last.findings().size(),
                    det ? "yes" : "NO");
        all_clean = all_clean && t.last.findings().empty();
        all_detect = all_detect && det;
    }
    rule();
    std::printf("\nall granularities must keep the bug-free workload "
                "clean and still detect the\ninjected race; byte "
                "granularity is the default (no false sharing of "
                "state).\n\n");
    return (all_clean && all_detect) ? 0 : 1;
}
