/**
 * @file
 * Ablation — failure-point planning (paper §4.2 + optimization 2).
 *
 * Compares, per micro workload:
 *  - elision of empty ordering intervals ON (paper default) vs OFF:
 *    how many post-failure executions the optimization saves;
 *  - failure points at library-internal fences ON (our default,
 *    strictly finer than the paper's one-point-per-library-call) vs
 *    OFF (user-code fences only): coverage vs. cost.
 *
 * Detection capability is also shown: a representative bug from each
 * workload must remain detected in every configuration that covers
 * its ordering points.
 */

#include "bench/bench_util.hh"
#include "bugsuite/registry.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

workloads::WorkloadConfig
config()
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 10;
    cfg.postOps = 2;
    return cfg;
}

} // namespace

int
main()
{
    setVerbose(false);
    const char *const micro[] = {"btree", "ctree", "rbtree",
                                 "hashmap_tx", "hashmap_atomic"};

    std::printf("\n=== Ablation: failure-point planning ===\n");
    rule();
    std::printf("%-16s %-22s %10s %10s %10s\n", "workload", "config",
                "#points", "elided", "time(ms)");
    rule();
    for (const char *w : micro) {
        struct
        {
            const char *label;
            core::DetectorConfig dcfg;
        } configs[3];
        configs[0].label = "default";
        configs[1].label = "no elision";
        configs[1].dcfg.elideEmptyFailurePoints = false;
        configs[2].label = "user fences only";
        configs[2].dcfg.failureAtInternalFences = false;

        for (const auto &c : configs) {
            Timing t = timeCampaign(w, config(), c.dcfg, 1);
            std::printf("%-16s %-22s %10zu %10zu %10.2f\n", w, c.label,
                        t.last.statistics().failurePoints,
                        t.last.statistics().elidedPoints,
                        t.meanTotalSeconds * 1e3);
        }
    }
    rule();

    std::printf("\ndetection capability under each config "
                "(one representative bug per workload):\n");
    rule();
    const char *const rep_bugs[] = {
        "btree.race.leaf_no_add", "ctree.race.link_no_add",
        "rbtree.race.insert_link_no_add", "hashmap_tx.race.slot_no_add",
        "hashmap_atomic.race.entry_no_persist"};
    for (const char *id : rep_bugs) {
        for (const auto &c : bugsuite::allBugCases()) {
            if (c.id != id)
                continue;
            core::DetectorConfig no_elide;
            no_elide.elideEmptyFailurePoints = false;
            core::DetectorConfig user_only;
            user_only.failureAtInternalFences = false;
            bool d1 = bugsuite::detected(c, bugsuite::runBugCase(c));
            bool d2 = bugsuite::detected(
                c, bugsuite::runBugCase(c, no_elide));
            bool d3 = bugsuite::detected(
                c, bugsuite::runBugCase(c, user_only));
            std::printf("%-44s default:%s no-elision:%s user-only:%s\n",
                        id, d1 ? "Y" : "n", d2 ? "Y" : "n",
                        d3 ? "Y" : "n");
        }
    }
    rule();
    std::printf("\nelision removes post-failure executions without "
                "losing detections (the paper's\nobservation that "
                "state only changes at ordering points).\n\n");
    return 0;
}
