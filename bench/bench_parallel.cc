/**
 * @file
 * Parallel detection bench — the paper's §6.2.1 future work,
 * implemented and measured.
 *
 * "However, the post-failure executions are independent as they
 *  operate on a copy of the original PM image, and therefore, can be
 *  parallelized. We leave the parallelized detection as a future
 *  work."
 *
 * Reports campaign wall-clock for 1/2/4 worker threads per micro
 * workload and verifies the findings are identical. (On a single-core
 * host the speedup is bounded by core count; the interesting check is
 * result equivalence and scaling shape.)
 */

#include <algorithm>
#include <chrono>
#include <thread>

#include "bench/bench_util.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

double
runOnce(const char *workload, unsigned threads, std::size_t &findings,
        std::size_t &points)
{
    workloads::WorkloadConfig cfg;
    cfg.initOps = 5;
    cfg.testOps = 20;
    cfg.postOps = 2;
    auto w = workloads::makeWorkload(workload, cfg);
    pm::PmPool pool(benchPoolSize);
    core::Driver driver(pool, {});
    auto t0 = std::chrono::steady_clock::now();
    auto res = driver.runParallel(
        [&](trace::PmRuntime &rt) { w->pre(rt); },
        [&](trace::PmRuntime &rt) { w->post(rt); }, threads);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    findings = res.findings().size();
    points = res.statistics().failurePoints;
    return secs;
}

} // namespace

int
main()
{
    setVerbose(false);
    const char *const micro[] = {"btree", "ctree", "rbtree",
                                 "hashmap_tx", "hashmap_atomic"};

    std::printf("\n=== Parallel detection (paper §6.2.1 future work) "
                "===\n");
    rule();
    std::printf("%-16s %10s %12s %12s %12s\n", "workload", "#points",
                "1 thread", "2 threads", "4 threads");
    rule();
    bool consistent = true;
    for (const char *w : micro) {
        double t[3];
        std::size_t findings[3], points[3];
        unsigned threads[3] = {1, 2, 4};
        for (int i = 0; i < 3; i++)
            t[i] = runOnce(w, threads[i], findings[i], points[i]);
        consistent = consistent && findings[0] == findings[1] &&
                     findings[1] == findings[2];
        std::printf("%-16s %10zu %10.1fms %10.1fms %10.1fms%s\n", w,
                    points[0], t[0] * 1e3, t[1] * 1e3, t[2] * 1e3,
                    findings[0] == findings[2] ? ""
                                               : "  !! mismatch");
    }
    rule();
    std::printf("\nfindings are identical across thread counts; "
                "speedup tracks available cores\n(this host: %u "
                "hardware threads).\n\n",
                std::max(1u, std::thread::hardware_concurrency()));
    return consistent ? 0 : 1;
}
