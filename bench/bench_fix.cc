/**
 * @file
 * Repair-advisor cost/payoff table. Per representative bug-suite
 * case: baseline findings, plans synthesized, verdict counts, and the
 * wall-clock split between the baseline campaign and the per-plan
 * machine checks (each check re-traces and re-runs the campaign, so
 * check cost ~ plans × campaign cost). Emits BENCH_fix.json;
 * XFD_BENCH_QUICK drops the oracle cross-check for CI.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "fix/fix.hh"

using namespace xfd;
using namespace xfd::bench;

namespace
{

struct Row
{
    std::string bugId;
    std::size_t baselineFindings = 0;
    std::size_t plans = 0;
    std::size_t verified = 0;
    std::size_t incomplete = 0;
    std::size_t regressed = 0;
    double seconds = 0;
};

Row
runOne(const std::string &bugId, bool withOracle)
{
    Row row;
    row.bugId = bugId;

    std::string prefix = bugId.substr(0, bugId.find('.'));
    workloads::WorkloadConfig wcfg;
    wcfg.initOps = 6;
    wcfg.testOps = 6;
    wcfg.postOps = 2;
    wcfg.bugs.enable(bugId);
    std::shared_ptr<workloads::Workload> w = workloads::makeWorkload(
        prefix == "wal" ? "wal_btree" : prefix, wcfg);

    fix::FixConfig cfg;
    cfg.pre = [w](trace::PmRuntime &rt) { w->pre(rt); };
    cfg.post = [w](trace::PmRuntime &rt) { w->post(rt); };
    cfg.poolBytes = benchPoolSize;
    cfg.withOracle = withOracle;

    auto t0 = std::chrono::steady_clock::now();
    fix::FixReport rep = fix::runFixCampaign(cfg);
    std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    row.baselineFindings = rep.baseline.bugs.size();
    row.plans = rep.plans();
    row.verified = rep.verified;
    row.incomplete = rep.incomplete;
    row.regressed = rep.regressed;
    row.seconds = dt.count();
    return row;
}

} // namespace

int
main()
{
    setVerbose(false);
    const bool quick = std::getenv("XFD_BENCH_QUICK") != nullptr;

    // One case per repair shape: drop_flush (redundant writeback),
    // skip_tx_add (duplicated snapshot), add_flush_fence (unpersisted
    // store), add_fence (unfenced writeback), reorder_commit-adjacent
    // epoch split, and an advisory-only semantic defect.
    const std::vector<std::string> cases = {
        "btree.perf.extra_flush",
        "btree.perf.double_add",
        "hashmap_atomic.race.entry_no_persist",
        "hashmap_atomic.race.entry_clwb_no_fence",
        "hashmap_atomic.race.count_no_persist",
        "wal.race.unflushed_log_head",
        "wal.recovery.missing_crc_check",
    };

    std::vector<Row> rows;
    for (const std::string &id : cases)
        rows.push_back(runOne(id, !quick));

    std::printf("%-42s %9s %6s %9s %11s %10s %9s\n", "case",
                "findings", "plans", "verified", "incomplete",
                "regressed", "secs");
    rule();
    for (const Row &r : rows) {
        std::printf("%-42s %9zu %6zu %9zu %11zu %10zu %8.3f\n",
                    r.bugId.c_str(), r.baselineFindings, r.plans,
                    r.verified, r.incomplete, r.regressed, r.seconds);
    }

    writeBenchJson("fix", [&](obs::JsonWriter &w) {
        w.field("quick", quick);
        w.key("cases").beginArray();
        for (const Row &r : rows) {
            w.beginObject();
            w.field("case", r.bugId);
            w.field("baseline_findings",
                    static_cast<std::uint64_t>(r.baselineFindings));
            w.field("plans", static_cast<std::uint64_t>(r.plans));
            w.field("verified",
                    static_cast<std::uint64_t>(r.verified));
            w.field("incomplete",
                    static_cast<std::uint64_t>(r.incomplete));
            w.field("regressed",
                    static_cast<std::uint64_t>(r.regressed));
            w.field("seconds", r.seconds);
            w.endObject();
        }
        w.endArray();
    });
    return 0;
}
