#include "bugsuite/registry.hh"

#include "common/logging.hh"
#include "pmlib/objpool.hh"
#include "workloads/workload.hh"
#include "xfd.hh"

namespace xfd::bugsuite
{

const char *
expectedName(Expected e)
{
    switch (e) {
      case Expected::Race: return "race";
      case Expected::Semantic: return "semantic";
      case Expected::Performance: return "performance";
      case Expected::RecoveryFailure: return "recovery-failure";
    }
    return "?";
}

const char *
originName(Origin o)
{
    switch (o) {
      case Origin::PmTestSuite: return "PMTest suite";
      case Origin::Additional: return "additional";
      case Origin::NewBug: return "new bug (6.3.2)";
      case Origin::Extra: return "extra";
    }
    return "?";
}

namespace
{

using E = Expected;
using O = Origin;

std::vector<BugCase>
buildRegistry()
{
    std::vector<BugCase> r;
    auto add = [&](const char *id, const char *wl, E e, O o,
                   const char *desc, unsigned init = 10,
                   unsigned test = 12, unsigned post = 6,
                   bool roi_start = false,
                   const char *crash_states = "") {
        r.push_back(BugCase{id, wl, e, o, desc, init, test, post,
                            roi_start, crash_states});
    };

    // ----------------------------------------------------------
    // B-Tree: 8 races + 2 perf (PMTest suite), 4 additional races.
    // ----------------------------------------------------------
    add("btree.race.leaf_no_add", "btree", E::Race, O::PmTestSuite,
        "leaf modified without TX_ADD");
    add("btree.race.update_no_add", "btree", E::Race, O::PmTestSuite,
        "value update without TX_ADD", 10, 20);
    add("btree.race.parent_no_add", "btree", E::Race, O::PmTestSuite,
        "split parent not snapshotted", 10, 16);
    add("btree.race.child_no_add", "btree", E::Race, O::PmTestSuite,
        "split child not snapshotted", 10, 16);
    add("btree.race.sibling_no_init", "btree", E::Race, O::PmTestSuite,
        "new split sibling never logged/flushed", 10, 16);
    add("btree.race.rootptr_no_add", "btree", E::Race, O::PmTestSuite,
        "root pointer update without TX_ADD", 0, 14, 6, true);
    add("btree.race.count_no_add", "btree", E::Race, O::PmTestSuite,
        "element count update without TX_ADD");
    add("btree.race.remove_no_add", "btree", E::Race, O::PmTestSuite,
        "removal modifies node without TX_ADD", 10, 20);
    add("btree.perf.double_add", "btree", E::Performance, O::PmTestSuite,
        "same leaf snapshotted twice in one transaction");
    add("btree.perf.extra_flush", "btree", E::Performance,
        O::PmTestSuite, "flush of already-committed root object", 10,
        20);
    add("btree.race.first_node_no_init", "btree", E::Race, O::Additional,
        "first node never logged/flushed", 0, 10, 6, true);
    add("btree.race.remove_count_no_add", "btree", E::Race,
        O::Additional, "removal count update without TX_ADD", 10, 20);
    add("btree.race.write_before_add", "btree", E::Race, O::Additional,
        "in-place write ordered before its snapshot");
    add("btree.race.newroot_no_init", "btree", E::Race, O::Additional,
        "new root (split) never logged/flushed", 0, 14, 6, true);

    // ----------------------------------------------------------
    // C-Tree: 5 races + 1 perf (PMTest suite), 1 additional race.
    // ----------------------------------------------------------
    add("ctree.race.link_no_add", "ctree", E::Race, O::PmTestSuite,
        "splice link update without TX_ADD");
    add("ctree.race.newleaf_no_init", "ctree", E::Race, O::PmTestSuite,
        "new leaf never logged/flushed");
    add("ctree.race.newnode_no_init", "ctree", E::Race, O::PmTestSuite,
        "new internal node never logged/flushed");
    add("ctree.race.count_no_add", "ctree", E::Race, O::PmTestSuite,
        "element count update without TX_ADD");
    add("ctree.race.update_no_add", "ctree", E::Race, O::PmTestSuite,
        "value update without TX_ADD", 10, 20);
    add("ctree.perf.double_add", "ctree", E::Performance, O::PmTestSuite,
        "same link snapshotted twice in one transaction");
    add("ctree.race.remove_link_no_add", "ctree", E::Race, O::Additional,
        "removal splice without TX_ADD", 10, 20);

    // ----------------------------------------------------------
    // RB-Tree: 7 races + 1 perf (PMTest suite), 1 additional race.
    // ----------------------------------------------------------
    add("rbtree.race.newnode_no_init", "rbtree", E::Race, O::PmTestSuite,
        "new node never logged/flushed");
    add("rbtree.race.insert_link_no_add", "rbtree", E::Race,
        O::PmTestSuite, "BST insert parent link without TX_ADD");
    add("rbtree.race.color_no_add", "rbtree", E::Race, O::PmTestSuite,
        "recolor without TX_ADD", 12, 16);
    add("rbtree.race.rotate_no_add", "rbtree", E::Race, O::PmTestSuite,
        "rotation pointer updates without TX_ADD", 12, 16);
    add("rbtree.race.rootptr_no_add", "rbtree", E::Race, O::PmTestSuite,
        "root pointer update without TX_ADD", 0, 12, 6, true);
    add("rbtree.race.count_no_add", "rbtree", E::Race, O::PmTestSuite,
        "element count update without TX_ADD");
    add("rbtree.race.update_no_add", "rbtree", E::Race, O::PmTestSuite,
        "value update without TX_ADD", 10, 20);
    add("rbtree.perf.double_add", "rbtree", E::Performance,
        O::PmTestSuite, "same node snapshotted twice");
    add("rbtree.race.remove_link_no_add", "rbtree", E::Race,
        O::Additional, "removal splice without TX_ADD", 10, 20);

    // ----------------------------------------------------------
    // Hashmap-TX: 6 races + 1 perf (PMTest suite), 3 additional.
    // ----------------------------------------------------------
    add("hashmap_tx.race.slot_no_add", "hashmap_tx", E::Race,
        O::PmTestSuite, "bucket slot link without TX_ADD");
    add("hashmap_tx.race.newentry_no_init", "hashmap_tx", E::Race,
        O::PmTestSuite, "new entry never logged/flushed");
    add("hashmap_tx.race.count_no_add", "hashmap_tx", E::Race,
        O::PmTestSuite, "count update without TX_ADD");
    add("hashmap_tx.race.update_no_add", "hashmap_tx", E::Race,
        O::PmTestSuite, "value update without TX_ADD", 10, 20);
    add("hashmap_tx.race.remove_no_add", "hashmap_tx", E::Race,
        O::PmTestSuite, "unlink without TX_ADD", 10, 20);
    add("hashmap_tx.race.rebuild_bucketsptr_no_add", "hashmap_tx",
        E::Race, O::PmTestSuite,
        "rebuild swaps bucket array without TX_ADD", 6, 10);
    add("hashmap_tx.perf.double_add", "hashmap_tx", E::Performance,
        O::PmTestSuite, "same slot snapshotted twice");
    add("hashmap_tx.race.rebuild_newbuckets_no_init", "hashmap_tx",
        E::Race, O::Additional,
        "rebuilt bucket array never logged/flushed", 6, 10);
    add("hashmap_tx.race.rebuild_entry_no_add", "hashmap_tx", E::Race,
        O::Additional, "rehash rewrites entry links without TX_ADD", 6,
        10);
    add("hashmap_tx.race.remove_count_no_add", "hashmap_tx", E::Race,
        O::Additional, "removal count update without TX_ADD", 10, 20);

    // ----------------------------------------------------------
    // Hashmap-Atomic: 10 races + 2 perf (PMTest suite),
    // 3 additional races, 4 semantic bugs.
    // ----------------------------------------------------------
    add("hashmap_atomic.race.entry_no_persist", "hashmap_atomic",
        E::Race, O::PmTestSuite, "entry contents never persisted");
    add("hashmap_atomic.race.entry_partial_persist", "hashmap_atomic",
        E::Race, O::PmTestSuite, "only the entry key persisted");
    add("hashmap_atomic.race.entry_clwb_no_fence", "hashmap_atomic",
        E::Race, O::PmTestSuite, "entry written back but never fenced");
    add("hashmap_atomic.race.slot_plain_store", "hashmap_atomic",
        E::Race, O::PmTestSuite, "bucket link published without persist");
    add("hashmap_atomic.race.slot_clwb_no_fence", "hashmap_atomic",
        E::Race, O::PmTestSuite, "bucket link written back, no fence");
    add("hashmap_atomic.race.count_no_persist", "hashmap_atomic",
        E::Race, O::PmTestSuite, "count update never persisted");
    add("hashmap_atomic.race.remove_slot_plain_store", "hashmap_atomic",
        E::Race, O::PmTestSuite, "unlink published without persist", 10,
        20);
    add("hashmap_atomic.race.buckets_no_ctor", "hashmap_atomic",
        E::Race, O::PmTestSuite,
        "bucket array relied on allocator zeroing", 0, 8, 6, true);
    add("hashmap_atomic.race.seed_no_persist", "hashmap_atomic",
        E::Race, O::PmTestSuite, "hash seed re-written without persist",
        0, 8, 6, true);
    add("hashmap_atomic.race.remove_count_no_persist", "hashmap_atomic",
        E::Race, O::PmTestSuite, "removal count update not persisted",
        10, 20);
    add("hashmap_atomic.race.next_write_after_persist", "hashmap_atomic",
        E::Race, O::Additional,
        "entry next-pointer written after the content persist");
    add("hashmap_atomic.shipped.meta_no_persist", "hashmap_atomic",
        E::Race, O::NewBug,
        "bug 1: create_hashmap leaves hash metadata unpersisted "
        "(hashmap_atomic.c:132-138)", 0, 6, 6, true);
    add("hashmap_atomic.shipped.count_uninit", "hashmap_atomic",
        E::Race, O::NewBug,
        "bug 2: count read from allocation never initialized "
        "(hashmap_atomic.c:280)", 0, 1, 4, true);
    add("hashmap_atomic.sem.no_recount", "hashmap_atomic", E::Semantic,
        O::Additional, "recovery trusts a dirty count (no recount)");
    add("hashmap_atomic.sem.dirty_inverted", "hashmap_atomic",
        E::Semantic, O::Additional,
        "count_dirty set to inverted values (Fig. 2 pattern)");
    add("hashmap_atomic.sem.count_outside_window", "hashmap_atomic",
        E::Semantic, O::Additional,
        "count updated outside the dirty window");
    add("hashmap_atomic.sem.remove_no_dirty", "hashmap_atomic",
        E::Semantic, O::Additional,
        "removal updates count without opening the dirty window", 10,
        20);
    add("hashmap_atomic.perf.double_persist_entry", "hashmap_atomic",
        E::Performance, O::PmTestSuite, "entry persisted twice");
    add("hashmap_atomic.perf.flush_clean_count", "hashmap_atomic",
        E::Performance, O::PmTestSuite, "flush of a clean count line");

    // ----------------------------------------------------------
    // §6.3.2 new bugs 3 and 4.
    // ----------------------------------------------------------
    add("redis.shipped.init_no_tx", "redis", E::Race, O::NewBug,
        "bug 3: server init writes num_dict_entries unprotected "
        "(server.c:4029)", 0, 6, 6, true);
    add("", "pool_create", E::RecoveryFailure, O::NewBug,
        "bug 4: pool creation not failure-atomic; open() rejects a "
        "half-created pool (obj.c:1324)", 0, 0, 0, true);

    // ----------------------------------------------------------
    // Extra coverage beyond the paper (Redis/Memcached engines).
    // ----------------------------------------------------------
    add("redis.race.set_no_add_count", "redis", E::Race, O::Extra,
        "SET updates num_dict_entries without TX_ADD");
    add("redis.race.entry_no_init", "redis", E::Race, O::Extra,
        "new dict entry never logged/flushed");
    add("redis.race.slot_no_add", "redis", E::Race, O::Extra,
        "dict slot link without TX_ADD");
    add("redis.race.del_no_add", "redis", E::Race, O::Extra,
        "DEL unlink without TX_ADD", 10, 20);
    add("redis.race.update_no_add", "redis", E::Race, O::Extra,
        "SET over existing key without TX_ADD", 10, 20);
    add("redis.perf.double_add", "redis", E::Performance, O::Extra,
        "dict slot snapshotted twice");
    add("memcached.race.item_no_persist", "memcached", E::Race,
        O::Extra, "item contents never persisted");
    add("memcached.race.link_plain_store", "memcached", E::Race,
        O::Extra, "item published without persist");
    add("memcached.race.evict_plain_store", "memcached", E::Race,
        O::Extra, "eviction unlink without persist", 20, 20, 6);

    // ----------------------------------------------------------
    // Write-ahead-log family: defects in the redo-log protocol
    // itself (pmlib/wal), driven through the WAL B-Tree.
    // ----------------------------------------------------------
    add("wal.race.torn_record_accepted", "wal_btree", E::Race,
        O::Extra, "record sealed before its payload writeback");
    add("wal.race.commit_before_payload", "wal_btree", E::Race,
        O::Extra, "group-commit seal ordered before batch payload");
    add("wal.recovery.missing_crc_check", "wal_btree", E::Race,
        O::Extra, "replay scans raw frames without CRC validation");
    add("wal.race.truncate_before_apply", "wal_btree", E::Race,
        O::Extra, "log truncated while applied pages are unflushed");
    add("wal.sem.replay_past_checkpoint", "wal_btree", E::Semantic,
        O::Extra, "recovery reads the dead checkpoint descriptor");
    add("wal.race.unflushed_log_head", "wal_btree", E::Race,
        O::Extra, "first record of the batch left out of writeback");

    // ----------------------------------------------------------
    // Ring-Log: defects only partial crash images reach. Both pair
    // their stores inside one fence epoch, so the all-updates anchor
    // image never tears them — the --crash-states tier is what
    // executes the recovery paths that fail.
    // ----------------------------------------------------------
    add("ringlog.recovery.mirror_mismatch_abort", "ringlog",
        E::RecoveryFailure, O::Extra,
        "recovery aborts when the mirrored cursors diverge (torn "
        "same-epoch pair; anchor-invisible)", 4, 12, 4, false,
        "sample:64");
    // initOps=2 keeps the first-ever checkpoint (the only one whose
    // superseded descriptor pointer is still null) inside the RoI.
    add("ringlog.recovery.torn_pair_wild", "ringlog",
        E::RecoveryFailure, O::Extra,
        "checkpoint valid-flag raised before its pointer; recovery "
        "derefs a torn install (anchor-invisible)", 2, 12, 4, false,
        "sample:64");

    return r;
}

} // namespace

const std::vector<BugCase> &
allBugCases()
{
    static const std::vector<BugCase> registry = buildRegistry();
    return registry;
}

std::vector<BugCase>
bugCasesFor(const std::string &workload)
{
    std::vector<BugCase> out;
    for (const auto &c : allBugCases()) {
        if (c.workload == workload)
            out.push_back(c);
    }
    return out;
}

core::CampaignResult
runBugCase(const BugCase &c, core::DetectorConfig cfg)
{
    if (!c.crashStates.empty() && cfg.crashStates.empty())
        cfg.crashStates = c.crashStates;
    if (c.workload == "pool_create") {
        // §6.3.2 bug 4 lives in the library, not in a workload.
        return Campaign::forProgram(
                   [](trace::PmRuntime &rt) {
                       trace::RoiScope roi(rt);
                       pmlib::ObjPool::create(rt, "bug4", 64);
                   },
                   [](trace::PmRuntime &rt) {
                       trace::RoiScope roi(rt);
                       pmlib::ObjPool::open(rt, "bug4");
                   })
            .config(cfg)
            .poolSize(1 << 22)
            .run();
    }

    workloads::WorkloadConfig wcfg;
    wcfg.initOps = c.initOps;
    wcfg.testOps = c.testOps;
    wcfg.postOps = c.postOps;
    wcfg.roiFromStart = c.roiFromStart;
    if (c.workload == "memcached") {
        // Small capacity so the eviction paths execute.
        wcfg.memcachedCapacity = 8;
    }
    if (!c.id.empty())
        wcfg.bugs.enable(c.id);
    auto w = workloads::makeWorkload(c.workload, std::move(wcfg));
    return Campaign::forProgram(
               [&](trace::PmRuntime &rt) { w->pre(rt); },
               [&](trace::PmRuntime &rt) { w->post(rt); })
        .config(cfg)
        .poolSize(1 << 22)
        .run();
}

bool
detected(const BugCase &c, const core::CampaignResult &result)
{
    switch (c.expected) {
      case Expected::Race:
        return result.count(core::BugType::CrossFailureRace) > 0;
      case Expected::Semantic:
        return result.count(core::BugType::CrossFailureSemantic) > 0;
      case Expected::Performance:
        return result.count(core::BugType::Performance) > 0;
      case Expected::RecoveryFailure:
        return result.count(core::BugType::RecoveryFailure) > 0;
    }
    return false;
}

} // namespace xfd::bugsuite
