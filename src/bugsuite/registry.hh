/**
 * @file
 * The synthetic-bug registry — our rendition of paper Table 5 plus
 * the four new bugs of §6.3.2.
 *
 * Every case names one injected defect (a workload flag), the
 * campaign parameters that make the defective path execute, and the
 * finding class XFDetector must report. The validation test and the
 * Table 5 bench both drive this registry.
 */

#ifndef XFD_BUGSUITE_REGISTRY_HH
#define XFD_BUGSUITE_REGISTRY_HH

#include <string>
#include <vector>

#include "core/driver.hh"
#include "pm/pool.hh"

namespace xfd::bugsuite
{

/** Finding class a case must produce. */
enum class Expected : std::uint8_t
{
    Race,            ///< cross-failure race
    Semantic,        ///< cross-failure semantic bug
    Performance,     ///< performance bug
    RecoveryFailure, ///< post-failure stage fails outright
};

/** Which column of Table 5 (or §6.3.2) a case belongs to. */
enum class Origin : std::uint8_t
{
    PmTestSuite, ///< ported from the PMTest bug suite
    Additional,  ///< the paper's additional synthetic bugs
    NewBug,      ///< §6.3.2 newly found bugs
    Extra,       ///< beyond the paper: our extra coverage
};

const char *expectedName(Expected e);
const char *originName(Origin o);

/** One synthetic-bug campaign. */
struct BugCase
{
    /** Injected flag; empty for special cases (pool creation). */
    std::string id;
    /** Workload factory name, or "pool_create" for §6.3.2 bug 4. */
    std::string workload;
    Expected expected;
    Origin origin;
    std::string description;
    unsigned initOps = 10;
    unsigned testOps = 12;
    unsigned postOps = 6;
    bool roiFromStart = false;
    /**
     * Crash-state tier the defect needs (--crash-states spelling);
     * empty for anchor-detectable cases. runBugCase() applies it
     * unless the caller's config already picked a tier.
     */
    std::string crashStates;
};

/** The full registry. */
const std::vector<BugCase> &allBugCases();

/** Cases restricted to one workload. */
std::vector<BugCase> bugCasesFor(const std::string &workload);

/** Run one case's detection campaign. */
core::CampaignResult runBugCase(const BugCase &c,
                                core::DetectorConfig cfg = {});

/** @return whether @p result contains the case's expected finding. */
bool detected(const BugCase &c, const core::CampaignResult &result);

} // namespace xfd::bugsuite

#endif // XFD_BUGSUITE_REGISTRY_HH
