#include "trace/serialize.hh"

#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace xfd::trace
{

namespace
{

constexpr std::uint32_t traceMagic = 0x58464454; // "XFDT"

template <typename T>
void
put(std::ostream &out, T v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
get(std::istream &in)
{
    T v{};
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!in)
        throw std::runtime_error("trace stream truncated");
    return v;
}

/**
 * Absolute end position of @p in, or ~0 when the stream is not
 * seekable (a pipe): length fields then fall back to the fixed
 * plausibility caps instead of exact stream-bounded validation.
 */
std::uint64_t
streamEndPos(std::istream &in)
{
    std::istream::pos_type cur = in.tellg();
    if (cur == std::istream::pos_type(-1))
        return ~std::uint64_t{0};
    in.seekg(0, std::ios::end);
    std::istream::pos_type end = in.tellg();
    in.seekg(cur);
    if (end == std::istream::pos_type(-1))
        return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(end);
}

} // namespace

void
writeTrace(const TraceBuffer &buf, std::ostream &out)
{
    // Intern all strings first.
    std::map<std::string, std::uint32_t> intern;
    std::vector<const std::string *> ordered;
    auto intern_str = [&](const char *s) {
        auto [it, fresh] = intern.emplace(s ? s : "", 0);
        if (fresh) {
            it->second = static_cast<std::uint32_t>(ordered.size());
            ordered.push_back(&it->first);
        }
        return it->second;
    };

    struct Ids
    {
        std::uint32_t file, func, label;
    };
    std::vector<Ids> ids;
    ids.reserve(buf.size());
    for (const auto &e : buf) {
        ids.push_back(Ids{intern_str(e.loc.file), intern_str(e.loc.func),
                          intern_str(e.label)});
    }

    put(out, traceMagic);
    put(out, traceFormatVersion);
    put(out, static_cast<std::uint32_t>(ordered.size()));
    for (const auto *s : ordered) {
        put(out, static_cast<std::uint32_t>(s->size()));
        out.write(s->data(), static_cast<std::streamsize>(s->size()));
    }
    put(out, static_cast<std::uint32_t>(buf.size()));
    for (std::size_t i = 0; i < buf.size(); i++) {
        const TraceEntry &e = buf[i];
        put(out, static_cast<std::uint8_t>(e.op));
        put(out, e.flags);
        put(out, e.size);
        put(out, e.addr);
        put(out, e.aux);
        put(out, e.seq);
        put(out, e.loc.line);
        put(out, ids[i].file);
        put(out, ids[i].func);
        put(out, ids[i].label);
        put(out, static_cast<std::uint32_t>(e.data.size()));
        out.write(reinterpret_cast<const char *>(e.data.data()),
                  static_cast<std::streamsize>(e.data.size()));
    }
}

LoadedTrace
readTrace(std::istream &in)
{
    if (get<std::uint32_t>(in) != traceMagic)
        throw std::runtime_error("bad trace magic");
    if (get<std::uint32_t>(in) != traceFormatVersion)
        throw std::runtime_error("unsupported trace version");

    LoadedTrace loaded;

    // Every variable-length field is validated against the bytes
    // actually left in the stream *before* its buffer is allocated:
    // a fuzzed length that is individually plausible must still fail
    // when it overflows the stream. Unseekable streams keep only the
    // fixed caps.
    std::uint64_t stream_end = streamEndPos(in);
    auto remaining = [&]() -> std::uint64_t {
        if (stream_end == ~std::uint64_t{0})
            return ~std::uint64_t{0};
        std::istream::pos_type cur = in.tellg();
        if (cur == std::istream::pos_type(-1))
            return ~std::uint64_t{0};
        auto c = static_cast<std::uint64_t>(cur);
        return c >= stream_end ? 0 : stream_end - c;
    };

    std::uint32_t nstrings = get<std::uint32_t>(in);
    // Each interned string needs at least its length field in the
    // stream; a fuzzed count must fail before the table allocation.
    if (nstrings > (1u << 24) || nstrings > remaining() / 4)
        throw std::runtime_error("implausible string count");
    std::vector<const char *> table;
    table.reserve(nstrings);
    for (std::uint32_t i = 0; i < nstrings; i++) {
        std::uint32_t len = get<std::uint32_t>(in);
        if (len > (1u << 20) || len > remaining())
            throw std::runtime_error("oversized interned string");
        std::string s(len, '\0');
        in.read(s.data(), len);
        if (!in)
            throw std::runtime_error("trace stream truncated");
        loaded.strings.push_back(std::move(s));
        table.push_back(loaded.strings.back().c_str());
    }

    auto lookup = [&](std::uint32_t id) -> const char * {
        if (id >= table.size())
            throw std::runtime_error("bad string id");
        return table[id];
    };

    std::uint32_t count = get<std::uint32_t>(in);
    for (std::uint32_t i = 0; i < count; i++) {
        TraceEntry e;
        std::uint8_t op = get<std::uint8_t>(in);
        if (op >= opCount)
            throw std::runtime_error("bad trace op kind");
        e.op = static_cast<Op>(op);
        e.flags = get<std::uint16_t>(in);
        e.size = get<std::uint32_t>(in);
        e.addr = get<Addr>(in);
        e.aux = get<Addr>(in);
        std::uint32_t seq = get<std::uint32_t>(in);
        e.loc.line = get<unsigned>(in);
        e.loc.file = lookup(get<std::uint32_t>(in));
        e.loc.func = lookup(get<std::uint32_t>(in));
        e.label = lookup(get<std::uint32_t>(in));
        std::uint32_t dlen = get<std::uint32_t>(in);
        if (dlen > (1u << 24) || dlen > remaining())
            throw std::runtime_error("oversized data payload");
        e.data.resize(dlen);
        in.read(reinterpret_cast<char *>(e.data.data()), dlen);
        if (!in)
            throw std::runtime_error("trace stream truncated");
        std::uint32_t assigned = loaded.buf.append(std::move(e));
        if (assigned != seq)
            throw std::runtime_error("non-contiguous trace seq");
    }
    return loaded;
}

} // namespace xfd::trace
