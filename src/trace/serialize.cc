#include "trace/serialize.hh"

#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace xfd::trace
{

namespace
{

constexpr std::uint32_t traceMagic = 0x58464454; // "XFDT"

template <typename T>
void
put(std::ostream &out, T v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
get(std::istream &in)
{
    T v{};
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!in)
        throw std::runtime_error("trace stream truncated");
    return v;
}

/** LEB128 unsigned varint: 7 payload bits per byte, msb = continue. */
void
putVarint(std::ostream &out, std::uint64_t v)
{
    while (v >= 0x80) {
        put(out, static_cast<std::uint8_t>(v | 0x80));
        v >>= 7;
    }
    put(out, static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(std::istream &in)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        std::uint8_t b = get<std::uint8_t>(in);
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80)) {
            // Reject non-canonical (overlong) encodings so a fuzzed
            // stream has exactly one spelling per value.
            if (b == 0 && shift > 0)
                throw std::runtime_error("overlong varint");
            return v;
        }
    }
    throw std::runtime_error("varint too long");
}

/** getVarint with a range check, for count/length/id fields. */
std::uint64_t
getVarint(std::istream &in, std::uint64_t max, const char *what)
{
    std::uint64_t v = getVarint(in);
    if (v > max)
        throw std::runtime_error(what);
    return v;
}

/** Per-entry presence bits (v2): which optional fields follow. */
enum PresenceBits : std::uint8_t
{
    presAddr = 1 << 0,
    presAux = 1 << 1,
    presSize = 1 << 2,
    presData = 1 << 3,
    presMask = presAddr | presAux | presSize | presData,
};

/**
 * Absolute end position of @p in, or ~0 when the stream is not
 * seekable (a pipe): length fields then fall back to the fixed
 * plausibility caps instead of exact stream-bounded validation.
 */
std::uint64_t
streamEndPos(std::istream &in)
{
    std::istream::pos_type cur = in.tellg();
    if (cur == std::istream::pos_type(-1))
        return ~std::uint64_t{0};
    in.seekg(0, std::ios::end);
    std::istream::pos_type end = in.tellg();
    in.seekg(cur);
    if (end == std::istream::pos_type(-1))
        return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(end);
}

/**
 * String interner shared by both writers: stable ids in first-use
 * order, id 0 always the empty string (the overwhelmingly common
 * label), so v2 presence decisions stay simple.
 */
class InternTable
{
  public:
    InternTable() { id(""); }

    std::uint32_t
    id(const char *s)
    {
        auto [it, fresh] = intern.emplace(s ? s : "", 0);
        if (fresh) {
            it->second = static_cast<std::uint32_t>(ordered.size());
            ordered.push_back(&it->first);
        }
        return it->second;
    }

    const std::vector<const std::string *> &all() const { return ordered; }

  private:
    std::map<std::string, std::uint32_t> intern;
    std::vector<const std::string *> ordered;
};

/** Bytes-remaining closure for stream-bounded length validation. */
class Remaining
{
  public:
    explicit Remaining(std::istream &in)
        : in(in), streamEnd(streamEndPos(in))
    {
    }

    std::uint64_t
    operator()() const
    {
        if (streamEnd == ~std::uint64_t{0})
            return ~std::uint64_t{0};
        std::istream::pos_type cur = in.tellg();
        if (cur == std::istream::pos_type(-1))
            return ~std::uint64_t{0};
        auto c = static_cast<std::uint64_t>(cur);
        return c >= streamEnd ? 0 : streamEnd - c;
    }

  private:
    std::istream &in;
    std::uint64_t streamEnd;
};

} // namespace

void
writeTraceV1(const TraceBuffer &buf, std::ostream &out)
{
    // Intern all strings first. v1 has no reserved empty-string slot,
    // so build the table ad hoc exactly as the original writer did.
    std::map<std::string, std::uint32_t> intern;
    std::vector<const std::string *> ordered;
    auto intern_str = [&](const char *s) {
        auto [it, fresh] = intern.emplace(s ? s : "", 0);
        if (fresh) {
            it->second = static_cast<std::uint32_t>(ordered.size());
            ordered.push_back(&it->first);
        }
        return it->second;
    };

    struct Ids
    {
        std::uint32_t file, func, label;
    };
    std::vector<Ids> ids;
    ids.reserve(buf.size());
    for (const auto &e : buf) {
        ids.push_back(Ids{intern_str(e.loc.file), intern_str(e.loc.func),
                          intern_str(e.label)});
    }

    put(out, traceMagic);
    put(out, traceFormatVersionV1);
    put(out, static_cast<std::uint32_t>(ordered.size()));
    for (const auto *s : ordered) {
        put(out, static_cast<std::uint32_t>(s->size()));
        out.write(s->data(), static_cast<std::streamsize>(s->size()));
    }
    put(out, static_cast<std::uint32_t>(buf.size()));
    for (std::size_t i = 0; i < buf.size(); i++) {
        const TraceEntry &e = buf[i];
        put(out, static_cast<std::uint8_t>(e.op));
        put(out, e.flags);
        put(out, e.size);
        put(out, e.addr);
        put(out, e.aux);
        put(out, e.seq);
        put(out, e.loc.line);
        put(out, ids[i].file);
        put(out, ids[i].func);
        put(out, ids[i].label);
        put(out, static_cast<std::uint32_t>(e.data.size()));
        out.write(reinterpret_cast<const char *>(e.data.data()),
                  static_cast<std::streamsize>(e.data.size()));
    }
}

void
writeTrace(const TraceBuffer &buf, std::ostream &out)
{
    // Intern strings and (file, line, func) location triples; record
    // the distinct alloc-entry locations as the alloc-site table.
    InternTable strings;
    std::map<std::tuple<std::uint32_t, unsigned, std::uint32_t>,
             std::uint32_t>
        locs;
    std::vector<std::tuple<std::uint32_t, unsigned, std::uint32_t>>
        loc_list;
    auto loc_id = [&](const SrcLoc &l) {
        auto key = std::make_tuple(strings.id(l.file), l.line,
                                   strings.id(l.func));
        auto [it, fresh] =
            locs.emplace(key, static_cast<std::uint32_t>(loc_list.size()));
        if (fresh)
            loc_list.push_back(key);
        return it->second;
    };

    struct Ids
    {
        std::uint32_t loc, label;
    };
    std::vector<Ids> ids;
    ids.reserve(buf.size());
    std::vector<std::uint32_t> alloc_sites;
    for (const auto &e : buf) {
        std::uint32_t lid = loc_id(e.loc);
        ids.push_back(Ids{lid, strings.id(e.label)});
        if (e.op == Op::Alloc) {
            bool seen = false;
            for (std::uint32_t s : alloc_sites)
                seen = seen || s == lid;
            if (!seen)
                alloc_sites.push_back(lid);
        }
    }

    put(out, traceMagic);
    put(out, traceFormatVersion);

    putVarint(out, strings.all().size());
    for (const auto *s : strings.all()) {
        putVarint(out, s->size());
        out.write(s->data(), static_cast<std::streamsize>(s->size()));
    }

    putVarint(out, loc_list.size());
    for (const auto &[file, line, func] : loc_list) {
        putVarint(out, file);
        putVarint(out, line);
        putVarint(out, func);
    }

    putVarint(out, alloc_sites.size());
    for (std::uint32_t s : alloc_sites)
        putVarint(out, s);

    putVarint(out, buf.size());
    for (std::size_t i = 0; i < buf.size(); i++) {
        const TraceEntry &e = buf[i];
        put(out, static_cast<std::uint8_t>(e.op));
        std::uint8_t pres = 0;
        if (e.addr)
            pres |= presAddr;
        if (e.aux)
            pres |= presAux;
        if (e.size)
            pres |= presSize;
        if (!e.data.empty())
            pres |= presData;
        put(out, pres);
        putVarint(out, e.flags);
        putVarint(out, ids[i].loc);
        putVarint(out, ids[i].label);
        if (pres & presAddr)
            putVarint(out, e.addr);
        if (pres & presAux)
            putVarint(out, e.aux);
        if (pres & presSize)
            putVarint(out, e.size);
        if (pres & presData) {
            putVarint(out, e.data.size());
            out.write(reinterpret_cast<const char *>(e.data.data()),
                      static_cast<std::streamsize>(e.data.size()));
        }
        // seq is implicit: readers re-derive it from entry order.
    }
}

LoadedTrace
Reader::readV1(LoadedTrace loaded)
{
    // Every variable-length field is validated against the bytes
    // actually left in the stream *before* its buffer is allocated:
    // a fuzzed length that is individually plausible must still fail
    // when it overflows the stream. Unseekable streams keep only the
    // fixed caps.
    Remaining remaining(in);

    std::uint32_t nstrings = get<std::uint32_t>(in);
    // Each interned string needs at least its length field in the
    // stream; a fuzzed count must fail before the table allocation.
    if (nstrings > (1u << 24) || nstrings > remaining() / 4)
        throw std::runtime_error("implausible string count");
    std::vector<const char *> table;
    table.reserve(nstrings);
    for (std::uint32_t i = 0; i < nstrings; i++) {
        std::uint32_t len = get<std::uint32_t>(in);
        if (len > (1u << 20) || len > remaining())
            throw std::runtime_error("oversized interned string");
        std::string s(len, '\0');
        in.read(s.data(), len);
        if (!in)
            throw std::runtime_error("trace stream truncated");
        loaded.strings.push_back(std::move(s));
        table.push_back(loaded.strings.back().c_str());
    }

    auto lookup = [&](std::uint32_t id) -> const char * {
        if (id >= table.size())
            throw std::runtime_error("bad string id");
        return table[id];
    };

    std::uint32_t count = get<std::uint32_t>(in);
    for (std::uint32_t i = 0; i < count; i++) {
        TraceEntry e;
        std::uint8_t op = get<std::uint8_t>(in);
        if (op >= opCount)
            throw std::runtime_error("bad trace op kind");
        e.op = static_cast<Op>(op);
        e.flags = get<std::uint16_t>(in);
        e.size = get<std::uint32_t>(in);
        e.addr = get<Addr>(in);
        e.aux = get<Addr>(in);
        std::uint32_t seq = get<std::uint32_t>(in);
        e.loc.line = get<unsigned>(in);
        e.loc.file = lookup(get<std::uint32_t>(in));
        e.loc.func = lookup(get<std::uint32_t>(in));
        e.label = lookup(get<std::uint32_t>(in));
        std::uint32_t dlen = get<std::uint32_t>(in);
        if (dlen > (1u << 24) || dlen > remaining())
            throw std::runtime_error("oversized data payload");
        e.data.resize(dlen);
        in.read(reinterpret_cast<char *>(e.data.data()), dlen);
        if (!in)
            throw std::runtime_error("trace stream truncated");
        std::uint32_t assigned = loaded.buf.append(std::move(e));
        if (assigned != seq)
            throw std::runtime_error("non-contiguous trace seq");
    }

    // v1 has no alloc-site table: reconstruct it by scanning, giving
    // cross-version consumers of allocSites() identical results.
    for (const TraceEntry &e : loaded.buf) {
        if (e.op != Op::Alloc)
            continue;
        bool seen = false;
        for (const SrcLoc &s : loaded.sites)
            seen = seen || s == e.loc;
        if (!seen)
            loaded.sites.push_back(e.loc);
    }
    return loaded;
}

LoadedTrace
Reader::readV2(LoadedTrace loaded)
{
    Remaining remaining(in);

    // String table. Each string needs at least its 1-byte length
    // varint; validate the count against that before allocating.
    std::uint64_t nstrings =
        getVarint(in, 1u << 24, "implausible string count");
    if (nstrings > remaining())
        throw std::runtime_error("implausible string count");
    std::vector<const char *> table;
    table.reserve(nstrings);
    for (std::uint64_t i = 0; i < nstrings; i++) {
        std::uint64_t len =
            getVarint(in, 1u << 20, "oversized interned string");
        if (len > remaining())
            throw std::runtime_error("oversized interned string");
        std::string s(len, '\0');
        in.read(s.data(), static_cast<std::streamsize>(len));
        if (!in)
            throw std::runtime_error("trace stream truncated");
        loaded.strings.push_back(std::move(s));
        table.push_back(loaded.strings.back().c_str());
    }
    if (table.empty() || table[0][0] != '\0')
        throw std::runtime_error("v2 string table lacks empty slot");

    auto str = [&](std::uint64_t id) -> const char * {
        if (id >= table.size())
            throw std::runtime_error("bad string id");
        return table[id];
    };

    // Location table: (file, line, func) triples over the string
    // table. Each triple needs at least 3 varint bytes.
    std::uint64_t nlocs =
        getVarint(in, 1u << 24, "implausible location count");
    if (nlocs > remaining() / 3)
        throw std::runtime_error("implausible location count");
    std::vector<SrcLoc> loc_table;
    loc_table.reserve(nlocs);
    for (std::uint64_t i = 0; i < nlocs; i++) {
        SrcLoc l;
        l.file = str(getVarint(in));
        l.line = static_cast<unsigned>(
            getVarint(in, ~std::uint32_t{0}, "bad location line"));
        l.func = str(getVarint(in));
        loc_table.push_back(l);
    }
    auto loc = [&](std::uint64_t id) -> const SrcLoc & {
        if (id >= loc_table.size())
            throw std::runtime_error("bad location id");
        return loc_table[id];
    };

    // Alloc-site table: loc ids of the distinct allocation sites.
    std::uint64_t nsites =
        getVarint(in, 1u << 24, "implausible alloc-site count");
    if (nsites > remaining())
        throw std::runtime_error("implausible alloc-site count");
    for (std::uint64_t i = 0; i < nsites; i++)
        loaded.sites.push_back(loc(getVarint(in)));

    std::uint64_t count =
        getVarint(in, 1u << 28, "implausible entry count");
    // Leanest possible entry: op + presence + 2 varints = 4 bytes.
    if (count > remaining() / 4)
        throw std::runtime_error("implausible entry count");
    for (std::uint64_t i = 0; i < count; i++) {
        TraceEntry e;
        std::uint8_t op = get<std::uint8_t>(in);
        if (op >= opCount)
            throw std::runtime_error("bad trace op kind");
        e.op = static_cast<Op>(op);
        std::uint8_t pres = get<std::uint8_t>(in);
        if (pres & ~presMask)
            throw std::runtime_error("bad presence bits");
        e.flags = static_cast<std::uint16_t>(
            getVarint(in, ~std::uint16_t{0}, "bad entry flags"));
        e.loc = loc(getVarint(in));
        e.label = str(getVarint(in));
        if (pres & presAddr)
            e.addr = getVarint(in);
        if (pres & presAux)
            e.aux = getVarint(in);
        if (pres & presSize)
            e.size = static_cast<std::uint32_t>(
                getVarint(in, ~std::uint32_t{0}, "bad entry size"));
        if (pres & presData) {
            std::uint64_t dlen =
                getVarint(in, 1u << 24, "oversized data payload");
            if (dlen > remaining())
                throw std::runtime_error("oversized data payload");
            e.data.resize(dlen);
            in.read(reinterpret_cast<char *>(e.data.data()),
                    static_cast<std::streamsize>(dlen));
            if (!in)
                throw std::runtime_error("trace stream truncated");
        }
        loaded.buf.append(std::move(e)); // assigns the implicit seq
    }
    return loaded;
}

Reader::Reader(std::istream &in) : in(in), ver(0)
{
    if (get<std::uint32_t>(in) != traceMagic)
        throw std::runtime_error("bad trace magic");
    ver = get<std::uint32_t>(in);
    if (ver != traceFormatVersionV1 && ver != traceFormatVersion)
        throw std::runtime_error("unsupported trace version");
}

LoadedTrace
Reader::read()
{
    LoadedTrace loaded;
    loaded.version = ver;
    return ver == traceFormatVersionV1 ? readV1(std::move(loaded))
                                       : readV2(std::move(loaded));
}

LoadedTrace
readTrace(std::istream &in)
{
    Reader r(in);
    return r.read();
}

} // namespace xfd::trace
