/**
 * @file
 * Write-log page index: bridges the recorded pre-failure trace and
 * the page-granular delta-image engine (pm::ImageDeltaStore).
 *
 * The pre-failure trace already carries every image-affecting write
 * (including allocator zero-fills, which reach the PM image even
 * though they are invisible to the shadow PM). Indexing those entries
 * by page once per campaign lets each worker derive "pages the image
 * gained between failure points" with a binary search instead of a
 * trace replay.
 */

#ifndef XFD_TRACE_PAGE_INDEX_HH
#define XFD_TRACE_PAGE_INDEX_HH

#include "pm/delta.hh"
#include "trace/buffer.hh"

namespace xfd::trace
{

/**
 * Build the delta store for @p buf: every write entry (cached,
 * non-temporal, and image-only zero-fill) is recorded at @p pageSize
 * granularity over @p poolRange.
 */
pm::ImageDeltaStore buildDeltaStore(const TraceBuffer &buf,
                                    std::size_t pageSize,
                                    AddrRange poolRange);

/**
 * Total pages the write log touches at @p pageSize granularity — the
 * working-set size a full-trace replay dirties (stats/benchmarks).
 */
std::size_t writeLogPageFootprint(const TraceBuffer &buf,
                                  std::size_t pageSize,
                                  AddrRange poolRange);

} // namespace xfd::trace

#endif // XFD_TRACE_PAGE_INDEX_HH
