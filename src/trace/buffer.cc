#include "trace/buffer.hh"

namespace xfd::trace
{

std::uint32_t
TraceBuffer::append(TraceEntry e)
{
    e.seq = static_cast<std::uint32_t>(entries.size());
    payload += e.data.size();
    entries.push_back(std::move(e));
    return entries.back().seq;
}

void
TraceBuffer::appendBatch(TraceEntry *batch, std::size_t n)
{
    entries.reserve(entries.size() + n);
    for (std::size_t i = 0; i < n; i++) {
        TraceEntry &e = batch[i];
        e.seq = static_cast<std::uint32_t>(entries.size());
        payload += e.data.size();
        entries.push_back(std::move(e));
    }
}

void
TraceBuffer::clear()
{
    entries.clear();
    payload = 0;
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::Read: return "READ";
      case Op::Write: return "WRITE";
      case Op::NtWrite: return "NTWRITE";
      case Op::Clwb: return "CLWB";
      case Op::ClflushOpt: return "CLFLUSHOPT";
      case Op::Clflush: return "CLFLUSH";
      case Op::Sfence: return "SFENCE";
      case Op::Mfence: return "MFENCE";
      case Op::LibCall: return "LIBCALL";
      case Op::TxAdd: return "TX_ADD";
      case Op::Alloc: return "ALLOC";
      case Op::Free: return "FREE";
      case Op::CommitVar: return "COMMIT_VAR";
      case Op::CommitRange: return "COMMIT_RANGE";
      case Op::FailurePoint: return "FAILURE_POINT";
      case Op::RoiBegin: return "ROI_BEGIN";
      case Op::RoiEnd: return "ROI_END";
      case Op::Complete: return "COMPLETE";
    }
    return "?";
}

} // namespace xfd::trace
