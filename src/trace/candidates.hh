/**
 * @file
 * Crash-state candidate enumeration over a write frontier.
 *
 * At a failure point, the writes still in flight form the *frontier*;
 * every legal crash image corresponds to a downward-closed subset of
 * it (per cell, the applied events must form a prefix of that cell's
 * write tail — stores to one location persist in store order). The
 * crash-state oracle (oracle/oracle.cc) introduced this model as a
 * conformance checker; the driver's --crash-states detection mode
 * executes recovery on the same candidates. Both build a CandidateSet
 * from their own per-cell tail models, so the legality rule, the
 * repair fixpoint and the enumeration order (anchor first, then the
 * exhaustive sweep or the seeded sampler) are one implementation —
 * candidate-for-candidate identical between detector and oracle by
 * construction, which is what the conformance tier asserts.
 */

#ifndef XFD_TRACE_CANDIDATES_HH
#define XFD_TRACE_CANDIDATES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/subset.hh"

namespace xfd::trace
{

/** One in-flight write event at a failure point. */
struct FrontierEvent
{
    /** Pre-trace seq of the write. */
    std::uint32_t seq = 0;
    Addr addr = 0;
    std::uint32_t size = 0;
};

/**
 * The legal crash states of one failure point: the frontier events
 * (mask bit i = i-th event, ascending by seq) plus the per-cell
 * prefix chains that constrain which subsets are reachable.
 */
class CandidateSet
{
  public:
    CandidateSet() = default;

    /**
     * @param frontier in-flight write events, ascending by seq
     * @param chains   per-cell tails as bit indices into @p frontier,
     *                 each ascending (a cell's applied events must be
     *                 a prefix of its chain)
     */
    CandidateSet(std::vector<FrontierEvent> frontier,
                 std::vector<std::vector<std::size_t>> chains)
        : events(std::move(frontier)), cellChains(std::move(chains))
    {
    }

    /** Frontier size = mask width. */
    std::size_t bits() const { return events.size(); }

    const std::vector<FrontierEvent> &
    frontier() const
    {
        return events;
    }

    /** Is the per-cell prefix rule satisfied by @p mask? */
    bool legal(const SubsetMask &mask) const;

    /** Clear mask bits until every cell's applied set is a prefix. */
    void repair(SubsetMask &mask) const;

    /** Enumeration knobs (see oracle::OracleConfig for semantics). */
    struct EnumerateOptions
    {
        /** Enumerate every legal subset (<= frontierLimit bits). */
        bool exhaustive = true;
        /** Above this frontier size, sample even in exhaustive mode. */
        std::size_t frontierLimit = 8;
        /** Distinct candidates wanted per failure point (sampling). */
        std::size_t sampleCount = 64;
        /** Base seed; the stream id perturbs it. */
        std::uint64_t seed = 42;
        /**
         * Sampler stream identity. The oracle keys it by failure
         * point; the driver's --crash-states mode keys it by the
         * candidate equivalence class (ordering-point location +
         * frontier signature), so equivalent failure points sample
         * identical mask sequences and batched/pruned schedules stay
         * fingerprint-identical to the full one.
         */
        std::uint64_t stream = 0;
    };

    /** The enumerated candidates of one failure point. */
    struct Enumeration
    {
        /** Legal subsets; [0] is always the all-ones anchor. */
        std::vector<SubsetMask> masks;
        /** True when the space was sampled rather than enumerated. */
        bool sampled = false;
    };

    /**
     * Enumerate the legal subsets: the all-updates anchor first, then
     * either every other legal mask (exhaustive, frontier within the
     * limit) or up to sampleCount distinct repaired random masks (the
     * all-zero mask is always included). Deterministic for a fixed
     * (seed, stream) pair regardless of caller threading.
     */
    Enumeration enumerate(const EnumerateOptions &opt) const;

  private:
    std::vector<FrontierEvent> events;
    std::vector<std::vector<std::size_t>> cellChains;
};

} // namespace xfd::trace

#endif // XFD_TRACE_CANDIDATES_HH
