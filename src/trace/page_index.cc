#include "trace/page_index.hh"

namespace xfd::trace
{

pm::ImageDeltaStore
buildDeltaStore(const TraceBuffer &buf, std::size_t pageSize,
                AddrRange poolRange)
{
    pm::ImageDeltaStore store(pageSize, poolRange);
    for (const auto &e : buf) {
        if (e.isWrite())
            store.recordWrite(e.seq, e.addr, e.size);
    }
    return store;
}

std::size_t
writeLogPageFootprint(const TraceBuffer &buf, std::size_t pageSize,
                      AddrRange poolRange)
{
    pm::ImageDeltaStore store(pageSize, poolRange);
    std::set<std::uint32_t> pages;
    for (const auto &e : buf) {
        if (!e.isWrite() || e.size == 0 || e.addr < poolRange.begin)
            continue;
        for (std::uint32_t p = store.pageOf(e.addr);
             p <= store.pageOf(e.addr + e.size - 1); p++) {
            pages.insert(p);
        }
    }
    return pages.size();
}

} // namespace xfd::trace
