#include "trace/candidates.hh"

#include <algorithm>
#include <set>

#include "common/rng.hh"

namespace xfd::trace
{

bool
CandidateSet::legal(const SubsetMask &mask) const
{
    for (const auto &chain : cellChains) {
        bool unset = false;
        for (std::size_t b : chain) {
            bool applied = mask.test(b);
            if (applied && unset)
                return false;
            if (!applied)
                unset = true;
        }
    }
    return true;
}

void
CandidateSet::repair(SubsetMask &mask) const
{
    // Clearing a shared event's bit can break another cell's prefix,
    // so iterate to a fixpoint (bits only ever clear).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &chain : cellChains) {
            bool unset = false;
            for (std::size_t b : chain) {
                if (!mask.test(b)) {
                    unset = true;
                } else if (unset) {
                    mask.set(b, false);
                    changed = true;
                }
            }
        }
    }
}

CandidateSet::Enumeration
CandidateSet::enumerate(const EnumerateOptions &opt) const
{
    Enumeration out;
    std::size_t k = bits();

    // The all-updates anchor goes first: its image byte-reproduces
    // the detector's footnote-3 image, so its classes are the
    // conformance baseline.
    SubsetMask full(k);
    full.setAll();
    out.masks.push_back(full);

    bool exhaustiveHere =
        opt.exhaustive && k <= std::min<std::size_t>(opt.frontierLimit,
                                                     20);
    out.sampled = !exhaustiveHere;
    if (exhaustiveHere) {
        std::uint64_t space = std::uint64_t{1} << k;
        // All values except all-ones, which is already at masks[0].
        for (std::uint64_t m = 0; m + 1 < space; m++) {
            SubsetMask cand(k);
            for (std::size_t b = 0; b < k; b++) {
                if (m & (std::uint64_t{1} << b))
                    cand.set(b);
            }
            if (legal(cand))
                out.masks.push_back(std::move(cand));
        }
    } else {
        std::set<SubsetMask> seen;
        seen.insert(full);
        SubsetMask none(k);
        if (seen.insert(none).second)
            out.masks.push_back(std::move(none));
        Rng rng(opt.seed ^ (opt.stream * 0x9e3779b97f4a7c15ull));
        std::size_t want = std::max<std::size_t>(opt.sampleCount, 2);
        // Random bits repaired to downward closure; duplicates are
        // discarded, so bound the attempts for tiny legal spaces.
        for (std::size_t tries = 0;
             out.masks.size() < want && tries < want * 8; tries++) {
            SubsetMask cand(k);
            for (std::size_t b = 0; b < k; b++) {
                if (rng.next() & 1)
                    cand.set(b);
            }
            repair(cand);
            if (seen.insert(cand).second)
                out.masks.push_back(std::move(cand));
        }
    }
    return out;
}

} // namespace xfd::trace
