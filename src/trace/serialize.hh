/**
 * @file
 * Trace serialization.
 *
 * §5.5 of the paper stresses that the backend is decoupled from the
 * frontend and can consume traces from other instrumentation (Pin,
 * WHISPER-style software tracing, PMTest hooks). This module gives
 * the decoupling a concrete wire format: traces round-trip through a
 * compact binary stream, so a trace captured in one process can be
 * replayed by the detector in another.
 *
 * Two on-disk framings share the 8-byte magic+version header:
 *
 *  - v1: fixed-width little-endian fields, one interned string table.
 *    Kept writable (writeTraceV1) so old consumers and cross-version
 *    tests still have a producer; readable forever.
 *  - v2 (current, written by writeTrace): LEB128 varints throughout,
 *    an interned string table, an interned source-location table
 *    ((file, line, func) triples — the per-entry cost of a location
 *    drops to one small varint id), an allocation-site table (the
 *    distinct locations of Op::Alloc entries, so tools can inventory
 *    alloc sites without scanning the stream), and per-entry
 *    presence-byte encoding: addr/aux/size/data are only present
 *    when nonzero/nonempty, and the sequence number is implicit in
 *    entry order.
 *
 * Readers should go through trace::Reader (or the readTrace
 * convenience wrapper), which sniffs the version and hides the
 * framing difference entirely.
 */

#ifndef XFD_TRACE_SERIALIZE_HH
#define XFD_TRACE_SERIALIZE_HH

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/buffer.hh"

namespace xfd::trace
{

/** Current serialization format version (what writeTrace emits). */
constexpr std::uint32_t traceFormatVersion = 2;

/** Legacy fixed-width format version (still read; writeTraceV1). */
constexpr std::uint32_t traceFormatVersionV1 = 1;

/** Write @p buf to @p out in the current (v2) binary trace format. */
void writeTrace(const TraceBuffer &buf, std::ostream &out);

/**
 * Write @p buf in the legacy v1 framing. Exists for cross-version
 * tests and for feeding consumers that predate v2; new code should
 * use writeTrace().
 */
void writeTraceV1(const TraceBuffer &buf, std::ostream &out);

/**
 * A deserialized trace. Owns the storage behind every SrcLoc/label
 * string in `buffer`, so keep it alive while the buffer is used.
 */
class LoadedTrace
{
  public:
    LoadedTrace() = default;
    LoadedTrace(LoadedTrace &&) = default;
    LoadedTrace &operator=(LoadedTrace &&) = default;
    LoadedTrace(const LoadedTrace &) = delete;
    LoadedTrace &operator=(const LoadedTrace &) = delete;

    const TraceBuffer &buffer() const { return buf; }

    /**
     * Distinct source locations of Op::Alloc entries, in first-use
     * order: decoded from the v2 alloc-site table, reconstructed by
     * scanning for v1 streams. Strings point into this object.
     */
    const std::vector<SrcLoc> &allocSites() const { return sites; }

    /** Format version the stream carried (1 or 2). */
    std::uint32_t formatVersion() const { return version; }

  private:
    friend class Reader;

    TraceBuffer buf;
    std::vector<SrcLoc> sites;
    std::uint32_t version = 0;
    /** Interned strings; deque keeps pointers stable. */
    std::deque<std::string> strings;
};

/**
 * The single entry point of the trace read path: binds to a stream,
 * sniffs the magic + format version, and decodes whichever framing
 * the producer used. Consumers never branch on the version
 * themselves.
 *
 *   trace::Reader r(in);      // throws on bad magic / unknown version
 *   LoadedTrace t = r.read(); // decodes the body
 *
 * @throw std::runtime_error on a malformed stream.
 */
class Reader
{
  public:
    /** Parse and validate the 8-byte header of @p in. */
    explicit Reader(std::istream &in);

    /** Format version announced by the stream (1 or 2). */
    std::uint32_t version() const { return ver; }

    /** Decode the stream body. Call once. */
    LoadedTrace read();

  private:
    LoadedTrace readV1(LoadedTrace loaded);
    LoadedTrace readV2(LoadedTrace loaded);

    std::istream &in;
    std::uint32_t ver;
};

/**
 * Read a trace written by writeTrace() of any supported format
 * version (convenience wrapper over trace::Reader).
 * @throw std::runtime_error on a malformed stream.
 */
LoadedTrace readTrace(std::istream &in);

} // namespace xfd::trace

#endif // XFD_TRACE_SERIALIZE_HH
