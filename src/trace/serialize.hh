/**
 * @file
 * Trace serialization.
 *
 * §5.5 of the paper stresses that the backend is decoupled from the
 * frontend and can consume traces from other instrumentation (Pin,
 * WHISPER-style software tracing, PMTest hooks). This module gives
 * the decoupling a concrete wire format: traces round-trip through a
 * compact binary stream with interned source-location strings, so a
 * trace captured in one process can be replayed by the detector in
 * another.
 */

#ifndef XFD_TRACE_SERIALIZE_HH
#define XFD_TRACE_SERIALIZE_HH

#include <deque>
#include <iosfwd>
#include <string>

#include "trace/buffer.hh"

namespace xfd::trace
{

/** Serialization format version. */
constexpr std::uint32_t traceFormatVersion = 1;

/** Write @p buf to @p out in the binary trace format. */
void writeTrace(const TraceBuffer &buf, std::ostream &out);

/**
 * A deserialized trace. Owns the storage behind every SrcLoc/label
 * string in `buffer`, so keep it alive while the buffer is used.
 */
class LoadedTrace
{
  public:
    LoadedTrace() = default;
    LoadedTrace(LoadedTrace &&) = default;
    LoadedTrace &operator=(LoadedTrace &&) = default;
    LoadedTrace(const LoadedTrace &) = delete;
    LoadedTrace &operator=(const LoadedTrace &) = delete;

    const TraceBuffer &buffer() const { return buf; }

  private:
    friend LoadedTrace readTrace(std::istream &in);

    TraceBuffer buf;
    /** Interned strings; deque keeps pointers stable. */
    std::deque<std::string> strings;
};

/**
 * Read a trace written by writeTrace().
 * @throw std::runtime_error on a malformed stream.
 */
LoadedTrace readTrace(std::istream &in);

} // namespace xfd::trace

#endif // XFD_TRACE_SERIALIZE_HH
