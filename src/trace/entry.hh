/**
 * @file
 * Trace-entry format shared by the frontend (PmRuntime) and backend
 * (ReplayDetector).
 *
 * The paper's frontend traces with Intel Pin and records, per entry,
 * the operation, the instruction pointer (for bug backtraces) and the
 * source/destination addresses and sizes (§5.3). Our instrumented
 * runtime records the same information, with std::source_location in
 * place of the raw instruction pointer, plus the written bytes so the
 * failure injector can reconstruct the PM image at any failure point.
 *
 * In memory an entry is this plain struct; on the wire the v2 format
 * (trace/serialize.hh) stores it compactly — interned location and
 * label ids, presence-byte field elision, varints, implicit seq —
 * so the struct can stay convenient without bloating dumped traces.
 */

#ifndef XFD_TRACE_ENTRY_HH
#define XFD_TRACE_ENTRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace xfd::trace
{

/** Which execution stage produced a trace. */
enum class Stage : std::uint8_t { PreFailure, PostFailure };

/** Traced PM operations and annotations. */
enum class Op : std::uint8_t
{
    Read,           ///< PM load
    Write,          ///< PM store (cached); data carried inline
    NtWrite,        ///< non-temporal PM store; persists at next fence
    Clwb,           ///< cache-line writeback (line retained)
    ClflushOpt,     ///< cache-line flush, weakly ordered
    Clflush,        ///< cache-line flush, self-ordering
    Sfence,         ///< store fence: completes pending writebacks
    Mfence,         ///< full fence: same persistence effect as SFENCE
    LibCall,        ///< function-granularity PM-library call marker
    TxAdd,          ///< transactional snapshot (TX_ADD) of [addr,+size)
    Alloc,          ///< persistent allocation of [addr,+size), uninit
    Free,           ///< persistent deallocation of [addr,+size)
    CommitVar,      ///< register [addr,+size) as a commit variable
    CommitRange,    ///< associate [addr,+size) with commit var at aux
    FailurePoint,   ///< explicit failure point (addFailurePoint)
    RoiBegin,       ///< region-of-interest begins
    RoiEnd,         ///< region-of-interest ends
    Complete,       ///< completeDetection(): terminate this stage
};

/** Number of distinct Op values (for per-op counter arrays). */
inline constexpr std::size_t opCount =
    static_cast<std::size_t>(Op::Complete) + 1;

/** @return a short mnemonic for @p op. */
const char *opName(Op op);

/** Per-entry context flags. */
enum EntryFlags : std::uint16_t
{
    flagInternal = 1 << 0,      ///< inside PM-library code (LibScope)
    flagInRoi = 1 << 1,         ///< inside the region-of-interest
    flagSkipFailure = 1 << 2,   ///< inside a skipFailure region
    flagSkipDetection = 1 << 3, ///< inside a skipDetection region
    /**
     * Write applied only to the PM image replay, not to shadow state.
     * Used by the allocator's zero-fill: PMDK-style allocators happen
     * to zero new objects, but a program must not rely on that (§6.3.2
     * bug 2), so the zeroing is invisible to the detector.
     */
    flagImageOnly = 1 << 4,
    /**
     * Same-value write: the stored bytes equal the PM content at emit
     * time, so the capture elided the payload (--elide-same-value).
     * The entry itself still flows through the detector — a redundant
     * store still dirties its line and still marks the location
     * initialized — but image replay is a content no-op (empty data),
     * which is exactly right: the image already holds those bytes.
     */
    flagSameValue = 1 << 5,
    /**
     * Entry synthesized by a repair plan (xfdetect --fix), not emitted
     * by the traced program. Repair flushes clean real data, but the
     * program flush they pre-empt was not redundant in the unrepaired
     * execution — the detector uses this bit to exonerate it from the
     * redundant-flush performance verdict.
     */
    flagRepair = 1 << 6,
};

/**
 * Source location captured at each traced operation; stands in for the
 * instruction pointer Pin records, and is what bug reports show.
 */
struct SrcLoc
{
    const char *file = "";
    unsigned line = 0;
    const char *func = "";

    std::string
    str() const
    {
        return strprintf("%s:%u (%s)", file, line, func);
    }

    bool
    operator==(const SrcLoc &o) const
    {
        return line == o.line && std::string(file) == o.file;
    }
};

/** One traced PM operation or annotation. */
struct TraceEntry
{
    Op op = Op::Read;
    std::uint16_t flags = 0;
    std::uint32_t size = 0;
    Addr addr = 0;
    /** Secondary address (commit variable for Op::CommitRange). */
    Addr aux = 0;
    /** Position in the owning trace. */
    std::uint32_t seq = 0;
    SrcLoc loc;
    /** Library-call or annotation label (string literal). */
    const char *label = "";
    /** Written bytes for Write/NtWrite; used for image replay. */
    std::vector<std::uint8_t> data;

    bool isWrite() const { return op == Op::Write || op == Op::NtWrite; }

    bool
    isFlush() const
    {
        return op == Op::Clwb || op == Op::ClflushOpt || op == Op::Clflush;
    }

    bool isFence() const { return op == Op::Sfence || op == Op::Mfence; }

    bool has(EntryFlags f) const { return (flags & f) != 0; }
};

} // namespace xfd::trace

#endif // XFD_TRACE_ENTRY_HH
