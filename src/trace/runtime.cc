#include "trace/runtime.hh"

#include "trace/mutation.hh"

namespace xfd::trace
{

PmRuntime::PmRuntime(pm::PmPool &pool, TraceBuffer &buf, Stage stage)
    : pmPool(pool), trace(buf), stg(stage)
{
}

PmRuntime::~PmRuntime()
{
    if (ring && ringTail)
        ringRetire();
}

void
PmRuntime::retireLocked()
{
    if (ring && ringTail) {
        trace.appendBatch(ring->data(), ringTail);
        ringTail = 0;
        if (obs::statsCompiledIn) {
            for (std::size_t i = 0; i < opCount; i++) {
                emitted[i] += ringEmitted[i];
                ringEmitted[i] = 0;
            }
        }
    }
    ringBase = trace.size();
}

void
PmRuntime::ringRetire()
{
    std::lock_guard<std::mutex> guard(emitLock);
    retireLocked();
}

void
PmRuntime::setBatching(bool on)
{
    std::lock_guard<std::mutex> guard(emitLock);
    if (on) {
        if (!ring)
            ring = std::make_unique<std::array<TraceEntry, ringSlots>>();
        ringOwner = std::this_thread::get_id();
        ownerScopes = &threadScopes[ringOwner];
        ringBase = trace.size();
        batching = true;
    } else {
        batching = false;
        retireLocked();
    }
}

PmRuntime::ThreadScopes &
PmRuntime::myScopes()
{
    return threadScopes[std::this_thread::get_id()];
}

std::uint16_t
PmRuntime::currentFlags() const
{
    // Called with emitLock held (from push) or single-threaded.
    auto *self = const_cast<PmRuntime *>(this);
    ThreadScopes &ts = self->myScopes();
    std::uint16_t f = 0;
    if (ts.lib > 0)
        f |= flagInternal;
    if (roiDepth > 0)
        f |= flagInRoi;
    if (ts.skipFailure > 0)
        f |= flagSkipFailure;
    if (ts.skipDetection > 0)
        f |= flagSkipDetection;
    return f;
}

bool
PmRuntime::inLib()
{
    std::lock_guard<std::mutex> guard(emitLock);
    return myScopes().lib > 0;
}

void
PmRuntime::push(TraceEntry e)
{
    if (done || !tracing)
        return;
    if (batching && std::this_thread::get_id() == ringOwner) {
        // Owner-thread fast path: stage into the ring without the
        // lock. ringBase + ringTail tracks the logical trace length
        // (exact while the owner is the only emitter).
        if (ringBase + ringTail >= entryCap) {
            done = true;
            if (stg == Stage::PostFailure) {
                throw PostFailureAbort{
                    "post-failure stage exceeded the trace limit "
                    "(likely looping over corrupted persistent data)",
                    e.loc};
            }
            fatal("pre-failure trace exceeded %zu entries", entryCap);
        }
        std::uint16_t f = 0;
        if (ownerScopes->lib > 0)
            f |= flagInternal;
        if (roiDepth > 0)
            f |= flagInRoi;
        if (ownerScopes->skipFailure > 0)
            f |= flagSkipFailure;
        if (ownerScopes->skipDetection > 0)
            f |= flagSkipDetection;
        e.flags |= f;
        auto stage = [this](TraceEntry &&x) {
            if (obs::statsCompiledIn)
                ringEmitted[static_cast<std::size_t>(x.op)]++;
            (*ring)[ringTail++] = std::move(x);
            if (ringTail == ringSlots)
                ringRetire();
        };
        if (mutHook && stg == Stage::PreFailure) {
            bool keep = mutHook->onEmit(e);
            std::vector<TraceEntry> extra;
            mutHook->onInsert(e, keep, extra);
            if (keep)
                stage(std::move(e));
            for (auto &x : extra)
                stage(std::move(x));
            return;
        }
        stage(std::move(e));
        return;
    }
    std::lock_guard<std::mutex> guard(emitLock);
    if (batching) {
        // A non-owner thread emits while the ring is armed: retire
        // first so this entry lands after everything already staged.
        retireLocked();
    }
    if (trace.size() >= entryCap) {
        // A post-failure stage looping over corrupted pointers would
        // otherwise never terminate; surface it as a crash.
        done = true;
        if (stg == Stage::PostFailure) {
            throw PostFailureAbort{
                "post-failure stage exceeded the trace limit "
                "(likely looping over corrupted persistent data)",
                e.loc};
        }
        fatal("pre-failure trace exceeded %zu entries", entryCap);
    }
    e.flags |= currentFlags();
    auto append = [this](TraceEntry &&x) {
        if (obs::statsCompiledIn)
            emitted[static_cast<std::size_t>(x.op)]++;
        trace.append(std::move(x));
    };
    if (mutHook && stg == Stage::PreFailure) {
        bool keep = mutHook->onEmit(e);
        std::vector<TraceEntry> extra;
        mutHook->onInsert(e, keep, extra);
        if (keep)
            append(std::move(e));
        for (auto &x : extra)
            append(std::move(x));
        return;
    }
    append(std::move(e));
}

void
PmRuntime::emit(Op op, Addr a, std::size_t n, SrcLoc loc,
                const char *label)
{
    TraceEntry e;
    e.op = op;
    e.addr = a;
    e.size = static_cast<std::uint32_t>(n);
    e.loc = loc;
    e.label = label;
    push(std::move(e));
}

void
PmRuntime::emitWrite(Op op, Addr a, const void *bytes, std::size_t n,
                     SrcLoc loc)
{
    TraceEntry e;
    e.op = op;
    e.addr = a;
    e.size = static_cast<std::uint32_t>(n);
    e.loc = loc;
    auto *b = static_cast<const std::uint8_t *>(bytes);
    e.data.assign(b, b + n);
    push(std::move(e));
}

void
PmRuntime::emitSameValueWrite(Op op, Addr a, std::size_t n, SrcLoc loc)
{
    elided.fetch_add(1, std::memory_order_relaxed);
    TraceEntry e;
    e.op = op;
    e.addr = a;
    e.size = static_cast<std::uint32_t>(n);
    e.loc = loc;
    e.flags = flagSameValue; // push() ORs in the context flags
    push(std::move(e));
}

void
PmRuntime::copyToPm(void *dst, const void *src, std::size_t n, SrcLoc loc)
{
    if (n == 0)
        return;
    Addr a = pmPool.toAddr(dst);
    if (!pmPool.contains(a, n))
        panic("copyToPm overruns pool");
    if (elideSame && std::memcmp(dst, src, n) == 0) {
        emitSameValueWrite(Op::Write, a, n, loc);
        return;
    }
    std::memmove(dst, src, n);
    pmPool.markDirty(a, n);
    emitWrite(Op::Write, a, dst, n, loc);
}

void
PmRuntime::ntCopyToPm(void *dst, const void *src, std::size_t n,
                      SrcLoc loc)
{
    if (n == 0)
        return;
    Addr a = pmPool.toAddr(dst);
    if (!pmPool.contains(a, n))
        panic("ntCopyToPm overruns pool");
    if (elideSame && std::memcmp(dst, src, n) == 0) {
        emitSameValueWrite(Op::NtWrite, a, n, loc);
        return;
    }
    std::memmove(dst, src, n);
    pmPool.markDirty(a, n);
    emitWrite(Op::NtWrite, a, dst, n, loc);
}

void
PmRuntime::setPm(void *dst, int value, std::size_t n, SrcLoc loc)
{
    if (n == 0)
        return;
    Addr a = pmPool.toAddr(dst);
    if (!pmPool.contains(a, n))
        panic("setPm overruns pool");
    if (elideSame) {
        const auto *b = static_cast<const std::uint8_t *>(dst);
        const auto v = static_cast<std::uint8_t>(value);
        std::size_t i = 0;
        while (i < n && b[i] == v)
            i++;
        if (i == n) {
            emitSameValueWrite(Op::Write, a, n, loc);
            return;
        }
    }
    std::memset(dst, value, n);
    pmPool.markDirty(a, n);
    emitWrite(Op::Write, a, dst, n, loc);
}

void
PmRuntime::readPm(void *dst, const void *src, std::size_t n, SrcLoc loc)
{
    if (n == 0)
        return;
    Addr a = pmPool.toAddr(src);
    if (!pmPool.contains(a, n))
        panic("readPm overruns pool");
    std::memcpy(dst, src, n);
    emit(Op::Read, a, n, loc);
}

void
PmRuntime::clwb(const void *p, std::size_t n, SrcLoc loc)
{
    Addr first = lineBase(pmPool.toAddr(p));
    Addr last = lineBase(pmPool.toAddr(p) + (n ? n - 1 : 0));
    for (Addr line = first; line <= last; line += cacheLineSize)
        emit(Op::Clwb, line, cacheLineSize, loc);
}

void
PmRuntime::clflushopt(const void *p, std::size_t n, SrcLoc loc)
{
    Addr first = lineBase(pmPool.toAddr(p));
    Addr last = lineBase(pmPool.toAddr(p) + (n ? n - 1 : 0));
    for (Addr line = first; line <= last; line += cacheLineSize)
        emit(Op::ClflushOpt, line, cacheLineSize, loc);
}

void
PmRuntime::clflush(const void *p, std::size_t n, SrcLoc loc)
{
    Addr first = lineBase(pmPool.toAddr(p));
    Addr last = lineBase(pmPool.toAddr(p) + (n ? n - 1 : 0));
    for (Addr line = first; line <= last; line += cacheLineSize)
        emit(Op::Clflush, line, cacheLineSize, loc);
}

void
PmRuntime::sfence(SrcLoc loc)
{
    emit(Op::Sfence, 0, 0, loc);
}

void
PmRuntime::mfence(SrcLoc loc)
{
    emit(Op::Mfence, 0, 0, loc);
}

void
PmRuntime::persistBarrier(const void *p, std::size_t n, SrcLoc loc)
{
    clwb(p, n, loc);
    sfence(loc);
}

void
PmRuntime::roiBegin(bool condition, SrcLoc loc)
{
    if (!condition)
        return;
    emit(Op::RoiBegin, 0, 0, loc);
    ++roiDepth;
}

void
PmRuntime::roiEnd(bool condition, SrcLoc loc)
{
    if (!condition)
        return;
    if (roiDepth > 0)
        --roiDepth;
    emit(Op::RoiEnd, 0, 0, loc);
}

void
PmRuntime::skipFailureBegin(bool condition, SrcLoc loc)
{
    (void)loc;
    if (!condition)
        return;
    std::lock_guard<std::mutex> guard(emitLock);
    ++myScopes().skipFailure;
}

void
PmRuntime::skipFailureEnd(bool condition, SrcLoc loc)
{
    (void)loc;
    if (!condition)
        return;
    std::lock_guard<std::mutex> guard(emitLock);
    ThreadScopes &ts = myScopes();
    if (ts.skipFailure > 0)
        --ts.skipFailure;
}

void
PmRuntime::skipDetectionBegin(bool condition, SrcLoc loc)
{
    (void)loc;
    if (!condition)
        return;
    std::lock_guard<std::mutex> guard(emitLock);
    ++myScopes().skipDetection;
}

void
PmRuntime::skipDetectionEnd(bool condition, SrcLoc loc)
{
    (void)loc;
    if (!condition)
        return;
    std::lock_guard<std::mutex> guard(emitLock);
    ThreadScopes &ts = myScopes();
    if (ts.skipDetection > 0)
        --ts.skipDetection;
}

void
PmRuntime::addFailurePoint(bool condition, SrcLoc loc)
{
    if (condition)
        emit(Op::FailurePoint, 0, 0, loc);
}

void
PmRuntime::completeDetection(SrcLoc loc)
{
    emit(Op::Complete, 0, 0, loc);
    done = true;
    throw StageComplete{};
}

void
PmRuntime::libBegin(const char *label, SrcLoc loc)
{
    emit(Op::LibCall, 0, 0, loc, label);
    std::lock_guard<std::mutex> guard(emitLock);
    ++myScopes().lib;
}

void
PmRuntime::libEnd()
{
    std::lock_guard<std::mutex> guard(emitLock);
    ThreadScopes &ts = myScopes();
    if (ts.lib > 0)
        --ts.lib;
}

bool
PmRuntime::completed() const
{
    return done.load();
}

void
PmRuntime::noteAlloc(Addr a, std::size_t n, SrcLoc loc)
{
    emit(Op::Alloc, a, n, loc);
}

void
PmRuntime::zeroFill(void *dst, std::size_t n, SrcLoc loc)
{
    if (n == 0)
        return;
    Addr a = pmPool.toAddr(dst);
    if (!pmPool.contains(a, n))
        panic("zeroFill overruns pool");
    std::memset(dst, 0, n);
    pmPool.markDirty(a, n);
    TraceEntry e;
    e.op = Op::Write;
    e.flags = flagImageOnly;
    e.addr = a;
    e.size = static_cast<std::uint32_t>(n);
    e.loc = loc;
    e.data.assign(n, 0);
    push(std::move(e));
}

void
PmRuntime::noteFree(Addr a, std::size_t n, SrcLoc loc)
{
    emit(Op::Free, a, n, loc);
}

void
PmRuntime::noteTxAdd(Addr a, std::size_t n, SrcLoc loc)
{
    emit(Op::TxAdd, a, n, loc);
}

} // namespace xfd::trace
