/**
 * @file
 * Fault-injection hook points in the tracing frontend.
 *
 * A MutationHook installed on a pre-failure PmRuntime lets the
 * mutation engine (src/mutate) deterministically perturb a correct
 * program into a buggy variant without touching workload code:
 *
 *  - onEmit() sees every pre-failure trace entry right before it is
 *    appended (context flags already applied) and may drop it
 *    (drop-flush, drop-fence) or rewrite it in place
 *    (demote-flush-to-plain-store turns NtWrite into Write). Dropping
 *    an entry never changes program execution — the runtime performs
 *    the data movement before emitting — so the pre-failure control
 *    flow of a mutant is identical to the baseline and occurrence
 *    indices stay aligned across runs.
 *
 *  - onTxAdd() / onTxCommit() are consulted by the PM library (tx.cc)
 *    because skipping a TX_ADD or reordering a commit must change the
 *    library's *behaviour* (what gets logged and flushed), not merely
 *    the trace: dropping only the TxAdd annotation would be a no-op,
 *    as commit flushes from the persistent log.
 *
 *  - onInsert() runs right after onEmit() for the same entry and may
 *    append *new* entries to be spliced into the trace immediately
 *    after it (or in its place, when onEmit dropped it). Insertion is
 *    the inverse-mutation primitive the repair advisor (src/fix)
 *    builds on: a synthesized CLWB+SFENCE pair after a racy writer,
 *    or a commit-variable store re-emitted after its data's fence,
 *    lands in the trace as if the program had issued it. Inserted
 *    flush/fence entries carry no payload, so image replay is
 *    unaffected; an inserted Write must carry the bytes the dropped
 *    original carried (deterministic re-execution guarantees they
 *    match). Inserted entries do NOT pass back through the hook, so
 *    the onEmit call stream — and with it occurrence/seq addressing
 *    against the unhooked baseline trace — stays aligned.
 *
 * Post-failure runtimes never carry a hook; recovery and resumption
 * always run unperturbed.
 */

#ifndef XFD_TRACE_MUTATION_HH
#define XFD_TRACE_MUTATION_HH

#include <vector>

#include "trace/entry.hh"

namespace xfd::trace
{

/** Interface the mutation engine implements; see file comment. */
class MutationHook
{
  public:
    virtual ~MutationHook() = default;

    /**
     * Called (under the emission lock) for every pre-failure entry
     * about to be appended. May modify @p e in place.
     * @return false to drop the entry from the trace.
     */
    virtual bool onEmit(TraceEntry &e) = 0;

    /**
     * Called right after onEmit() for the same pre-failure entry.
     * Entries appended to @p extra are spliced into the trace
     * immediately after @p e (or in its place when @p kept is false),
     * with the flags they carry — compose them from e.flags; the
     * context flags are already applied. Inserted entries are not fed
     * back through the hook.
     */
    virtual void
    onInsert(const TraceEntry &e, bool kept,
             std::vector<TraceEntry> &extra)
    {
        (void)e;
        (void)kept;
        (void)extra;
    }

    /** What the library should do with one TX_ADD call. */
    enum class TxAddAction
    {
        /** Snapshot and publish as usual. */
        Normal,
        /** Skip the snapshot entirely (the range is never logged). */
        Skip,
        /**
         * Write the backup entry but never publish the new entry
         * count: recovery reads a stale count and misses the entry.
         */
        StalePublish,
    };

    /** Consulted once per TX_ADD of an open transaction. */
    virtual TxAddAction onTxAdd() { return TxAddAction::Normal; }

    /**
     * Consulted once per outermost commit.
     * @return true to retire the log *before* flushing the data
     *         ranges (the classic commit-before-data ordering bug).
     */
    virtual bool onTxCommit() { return false; }
};

} // namespace xfd::trace

#endif // XFD_TRACE_MUTATION_HH
