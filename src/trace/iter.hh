/**
 * @file
 * Read-only iteration helpers over trace entries, shared by the
 * failure planner, the driver and the lint pass so their notions of
 * "PM mutation", "transaction boundary" and cache-line coverage
 * cannot drift apart.
 */

#ifndef XFD_TRACE_ITER_HH
#define XFD_TRACE_ITER_HH

#include <cstring>
#include <initializer_list>

#include "trace/buffer.hh"
#include "trace/entry.hh"
#include "trace/runtime.hh"

namespace xfd::trace
{

/**
 * Does @p e mutate detectable PM state? This is the failure planner's
 * elision predicate: an interval between ordering points with no such
 * entry cannot change what a failure exposes.
 */
inline bool
isPmMutation(const TraceEntry &e)
{
    return (e.isWrite() || e.isFlush() || e.op == Op::TxAdd ||
            e.op == Op::Alloc || e.op == Op::Free) &&
           !e.has(flagImageOnly);
}

/**
 * Is @p e a transaction-boundary library call (tx_begin / tx_commit /
 * tx_abort)? These reset per-transaction analysis state, e.g. the
 * open TX_ADD set of the duplicate-snapshot checks.
 */
inline bool
isTxBoundary(const TraceEntry &e)
{
    return e.op == Op::LibCall &&
           (std::strcmp(e.label, labels::txBegin) == 0 ||
            std::strcmp(e.label, labels::txCommit) == 0 ||
            std::strcmp(e.label, labels::txAbort) == 0);
}

/**
 * Visit the base address of every cache line covered by
 * [@p addr, @p addr + @p size).
 */
template <typename Fn>
void
forEachLine(Addr addr, std::size_t size, Fn &&fn)
{
    if (size == 0)
        return;
    Addr last = lineBase(addr + size - 1);
    for (Addr l = lineBase(addr); l <= last; l += cacheLineSize)
        fn(l);
}

/**
 * Visit every entry of @p buf whose op is one of @p ops, in trace
 * order.
 */
template <typename Fn>
void
forEachOp(const TraceBuffer &buf, std::initializer_list<Op> ops,
          Fn &&fn)
{
    for (const auto &e : buf) {
        for (Op op : ops) {
            if (e.op == op) {
                fn(e);
                break;
            }
        }
    }
}

} // namespace xfd::trace

#endif // XFD_TRACE_ITER_HH
