/**
 * @file
 * Instrumented PM-access runtime — the tracing frontend.
 *
 * The paper's frontend instruments binaries with Intel Pin; Pin is
 * proprietary and x86-host-specific, so per §5.5 ("the backend of
 * XFDetector can be attached to other tracing frameworks, such as the
 * software-directed tracing in WHISPER and PMTest") we implement a
 * software-directed frontend: every PM load/store/flush/fence in
 * workload code goes through this runtime, which appends trace entries
 * carrying the operation, address, size, written bytes, and the
 * caller's source location (the bug-backtrace equivalent of Pin's
 * instruction pointer).
 *
 * The runtime also implements the paper's Table 2 software interface:
 * RoI selection, skip-failure and skip-detection regions, explicit
 * failure points, commit-variable registration, and detection
 * termination.
 */

#ifndef XFD_TRACE_RUNTIME_HH
#define XFD_TRACE_RUNTIME_HH

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <mutex>
#include <source_location>
#include <thread>
#include <type_traits>
#include <unordered_map>

#include "obs/stats.hh"
#include "pm/pool.hh"
#include "trace/buffer.hh"

namespace xfd::trace
{

class MutationHook;

/** Capture the caller's location as a SrcLoc (default-arg idiom). */
inline SrcLoc
here(const std::source_location &sl = std::source_location::current())
{
    return {sl.file_name(), sl.line(), sl.function_name()};
}

/**
 * Thrown by completeDetection() to unwind out of the traced program;
 * the detection driver catches it (the paper's "termination point").
 */
struct StageComplete
{
};

/**
 * Thrown by library/workload code when the post-failure stage cannot
 * proceed at all (e.g. the pool refuses to open because its metadata
 * is incomplete). The detection driver records it as a
 * RecoveryFailure finding — this is how §6.3.2 bug 4 is observed.
 */
struct PostFailureAbort
{
    std::string reason;
    SrcLoc loc;
};

/** Well-known LibCall labels the backend recognizes. */
namespace labels
{
inline constexpr const char *txBegin = "tx_begin";
inline constexpr const char *txCommit = "tx_commit";
inline constexpr const char *txAbort = "tx_abort";
} // namespace labels

/**
 * Per-execution tracing context. One instance exists for the
 * pre-failure run and one for every post-failure continuation.
 */
class PmRuntime
{
  public:
    PmRuntime(pm::PmPool &pool, TraceBuffer &buf, Stage stage);

    /** Flushes any entries still staged in the emit ring. */
    ~PmRuntime();

    PmRuntime(const PmRuntime &) = delete;
    PmRuntime &operator=(const PmRuntime &) = delete;

    pm::PmPool &pool() { return pmPool; }
    Stage stage() const { return stg; }
    TraceBuffer &buffer() { return trace; }
    bool completed() const;

    /**
     * Disable/enable trace emission. With tracing off the runtime only
     * performs the data movement — the "original program" baseline of
     * Fig. 12b. Annotations and failure semantics are also disabled.
     */
    void setTracing(bool on) { tracing = on; }
    bool tracingEnabled() const { return tracing; }

    /** Bound the trace length (runaway-loop backstop). */
    void setEntryCap(std::size_t cap) { entryCap = cap; }

    /**
     * Batch trace emission through a fixed-slot ring. Enabled by the
     * campaign driver for its single-owner-thread stages: the thread
     * that called setBatching(true) stages entries lock-free and the
     * ring retires into the buffer in bulk — one lock acquisition and
     * one vector reservation per ringSlots entries instead of per
     * entry. Any other thread keeps the locked per-entry slow path
     * (and forces a retire first, preserving cross-thread order).
     * Disabling — or destroying the runtime — flushes staged entries;
     * disable before reading buffer() or opCounts() mid-run.
     */
    void setBatching(bool on);

    /**
     * Jaaru-style same-value write elision (--elide-same-value): a
     * store whose bytes equal what PM already holds cannot change any
     * crash image, so the store, its dirty-line tracking and its
     * trace entry are all skipped. The driver enables this for the
     * pre-failure capture only — post-failure writes must stay exact,
     * because recovery rewriting a location with the same bytes still
     * re-establishes its consistency.
     */
    void setSameValueElision(bool on) { elideSame = on; }

    /** Writes skipped by same-value elision. */
    std::uint64_t
    sameValueElided() const
    {
        return elided.load(std::memory_order_relaxed);
    }

    /**
     * Install a fault-injection hook (src/mutate). Consulted for
     * every pre-failure entry before it is appended and by the PM
     * library at TX_ADD/commit; see trace/mutation.hh. The hook must
     * outlive emission; pass nullptr to detach.
     */
    void setMutationHook(MutationHook *h) { mutHook = h; }
    MutationHook *mutationHook() const { return mutHook; }

    /**
     * Per-op counts of the entries this runtime emitted — the
     * trace-entry volume statistic the campaign observer aggregates.
     * Index with static_cast<std::size_t>(Op); maintained inside the
     * emission lock (one add), compiled out under XFD_STATS_NOOP.
     */
    const std::array<std::uint64_t, opCount> &
    opCounts() const
    {
        return emitted;
    }

    /**
     * @name Data operations
     * All addresses must resolve inside the pool; the value flow is
     * performed here so that tracing can never be skipped.
     * @{
     */

    /** Traced PM load of a trivially-copyable field. */
    template <typename T>
    T
    load(const T &field, SrcLoc loc = here())
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Addr a = pmPool.toAddr(&field);
        emit(Op::Read, a, sizeof(T), loc);
        return field;
    }

    /** Traced PM store (cached; persists only after CLWB+SFENCE). */
    template <typename T>
    void
    store(T &field, const T &value, SrcLoc loc = here())
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Addr a = pmPool.toAddr(&field);
        if (elideSame && std::memcmp(&field, &value, sizeof(T)) == 0) {
            emitSameValueWrite(Op::Write, a, sizeof(T), loc);
            return;
        }
        field = value;
        pmPool.markDirty(a, sizeof(T));
        emitWrite(Op::Write, a, &field, sizeof(T), loc);
    }

    /** Traced non-temporal PM store (persists at the next fence). */
    template <typename T>
    void
    ntstore(T &field, const T &value, SrcLoc loc = here())
    {
        static_assert(std::is_trivially_copyable_v<T>);
        Addr a = pmPool.toAddr(&field);
        if (elideSame && std::memcmp(&field, &value, sizeof(T)) == 0) {
            emitSameValueWrite(Op::NtWrite, a, sizeof(T), loc);
            return;
        }
        field = value;
        pmPool.markDirty(a, sizeof(T));
        emitWrite(Op::NtWrite, a, &field, sizeof(T), loc);
    }

    /** Traced memcpy into PM. */
    void copyToPm(void *dst, const void *src, std::size_t n,
                  SrcLoc loc = here());

    /** Traced non-temporal memcpy into PM. */
    void ntCopyToPm(void *dst, const void *src, std::size_t n,
                    SrcLoc loc = here());

    /** Traced memset of PM. */
    void setPm(void *dst, int value, std::size_t n, SrcLoc loc = here());

    /** Traced bulk PM read into volatile memory. */
    void readPm(void *dst, const void *src, std::size_t n,
                SrcLoc loc = here());

    /** CLWB every cache line covering [p, p+n). */
    void clwb(const void *p, std::size_t n = 1, SrcLoc loc = here());

    /** CLFLUSHOPT every cache line covering [p, p+n). */
    void clflushopt(const void *p, std::size_t n = 1, SrcLoc loc = here());

    /** CLFLUSH every cache line covering [p, p+n). */
    void clflush(const void *p, std::size_t n = 1, SrcLoc loc = here());

    /** Store fence: completes all pending writebacks (ordering point). */
    void sfence(SrcLoc loc = here());

    /** Full fence; identical persistence semantics to sfence. */
    void mfence(SrcLoc loc = here());

    /**
     * The paper's persist_barrier(): "CLWB; SFENCE" over the given
     * range — writes back the covering lines and orders them before
     * future persists.
     */
    void persistBarrier(const void *p, std::size_t n, SrcLoc loc = here());

    /** @} */

    /**
     * @name Table 2 software interface
     * @{
     */

    /** Mark the start of the region-of-interest for detection. */
    void roiBegin(bool condition = true, SrcLoc loc = here());

    /** Mark the end of the region-of-interest. */
    void roiEnd(bool condition = true, SrcLoc loc = here());

    /** Begin a region where no failure points are injected. */
    void skipFailureBegin(bool condition = true, SrcLoc loc = here());
    void skipFailureEnd(bool condition = true, SrcLoc loc = here());

    /** Begin a region whose reads/writes are exempt from detection. */
    void skipDetectionBegin(bool condition = true, SrcLoc loc = here());
    void skipDetectionEnd(bool condition = true, SrcLoc loc = here());

    /** Inject an explicit failure point here. */
    void addFailurePoint(bool condition = true, SrcLoc loc = here());

    /**
     * Register a commit variable: post-failure reads of it are benign
     * cross-failure races, and its writes version the consistency of
     * its associated addresses (all PM if none registered).
     */
    template <typename T>
    void
    addCommitVar(const T &field, SrcLoc loc = here())
    {
        static_assert(std::is_trivially_copyable_v<T>);
        emit(Op::CommitVar, pmPool.toAddr(&field), sizeof(T), loc);
    }

    /** Associate the range [p, p+n) with the commit variable @p cv. */
    template <typename T>
    void
    addCommitRange(const T &cv, const void *p, std::size_t n,
                   SrcLoc loc = here())
    {
        static_assert(std::is_trivially_copyable_v<T>);
        TraceEntry e;
        e.op = Op::CommitRange;
        e.addr = pmPool.toAddr(p);
        e.size = static_cast<std::uint32_t>(n);
        e.aux = pmPool.toAddr(&cv);
        e.loc = loc;
        push(std::move(e));
    }

    /** Terminate this execution stage (throws StageComplete). */
    [[noreturn]] void completeDetection(SrcLoc loc = here());

    /** @} */

    /**
     * @name PM-library integration
     * Used by xfd::pmlib, not by application code.
     * @{
     */

    /** Enter library code: function-granularity tracing begins. */
    void libBegin(const char *label, SrcLoc loc = here());

    /** Leave library code. */
    void libEnd();

    /** @return whether execution is currently inside library code. */
    bool inLib();

    /** Record a persistent allocation (contents are uninitialized). */
    void noteAlloc(Addr a, std::size_t n, SrcLoc loc = here());

    /**
     * Allocator zero-fill: reaches the PM image (so post-failure code
     * reads zeros, as with PMDK's zeroing allocator) but is invisible
     * to the shadow PM — programs must not depend on implicit
     * initialization (§6.3.2 bug 2).
     */
    void zeroFill(void *dst, std::size_t n, SrcLoc loc = here());

    /** Record a persistent deallocation. */
    void noteFree(Addr a, std::size_t n, SrcLoc loc = here());

    /** Record a transactional snapshot (TX_ADD) of [a, a+n). */
    void noteTxAdd(Addr a, std::size_t n, SrcLoc loc = here());

    /** @} */

  private:
    /** Current context flags for a new entry. */
    std::uint16_t currentFlags() const;

    /** Append a simple entry. */
    void emit(Op op, Addr a, std::size_t n, SrcLoc loc,
              const char *label = "");

    /** Append a write entry carrying the written bytes. */
    void emitWrite(Op op, Addr a, const void *bytes, std::size_t n,
                   SrcLoc loc);

    /**
     * Append a payload-elided same-value write (flagSameValue, no
     * data bytes) and bump the elision counter.
     */
    void emitSameValueWrite(Op op, Addr a, std::size_t n, SrcLoc loc);

    void push(TraceEntry e);

    /** Retire the emit ring into the buffer; emitLock must be held. */
    void retireLocked();

    /** Locking wrapper around retireLocked(). */
    void ringRetire();

    pm::PmPool &pmPool;
    TraceBuffer &trace;
    Stage stg;
    /**
     * Thread safety (paper §7: the frontend is thread-safe via
     * thread-local storage and locking, for workloads whose
     * "concurrent threads perform PM operations on independent
     * tasks"): emission is serialized by emitLock; the RoI is global
     * (one thread arms detection for all); skip-failure,
     * skip-detection and library scopes are per thread, so one
     * thread's library call never masks another thread's operations.
     * The fence model stays global (a fence retires every pending
     * writeback), which is conservative only for independent tasks.
     */
    struct ThreadScopes
    {
        int skipFailure = 0;
        int skipDetection = 0;
        int lib = 0;
    };

    /** Per-thread scope depths; guarded by emitLock. */
    ThreadScopes &myScopes();

    std::atomic<int> roiDepth{0};
    std::unordered_map<std::thread::id, ThreadScopes> threadScopes;
    std::atomic<bool> done{false};
    bool tracing = true;
    MutationHook *mutHook = nullptr;
    std::size_t entryCap = 64u << 20;
    std::mutex emitLock;
    /** Per-op emission counters (guarded by emitLock). */
    std::array<std::uint64_t, opCount> emitted{};

    /** Emit-ring capacity; sized so a retire amortizes the lock and
     * reservation without holding many payload vectors alive. */
    static constexpr std::size_t ringSlots = 64;

    /**
     * Fixed-slot emit ring (allocated on first setBatching(true)).
     * Only the owner thread touches ring/ringTail/ringEmitted without
     * the lock; ringBase caches trace.size() as of the last retire so
     * the owner's entry-cap check never reads the buffer unlocked.
     * Owner-thread scope flags come from ownerScopes (unordered_map
     * references are stable, and a thread's scopes are only mutated
     * by that thread), so staging reads no shared mutable state.
     */
    std::unique_ptr<std::array<TraceEntry, ringSlots>> ring;
    std::size_t ringTail = 0;
    std::size_t ringBase = 0;
    std::array<std::uint64_t, opCount> ringEmitted{};
    bool batching = false;
    std::thread::id ringOwner;
    ThreadScopes *ownerScopes = nullptr;

    /** Same-value write elision (setSameValueElision). */
    bool elideSame = false;
    std::atomic<std::uint64_t> elided{0};
};

/** RAII region-of-interest marker. */
class RoiScope
{
  public:
    explicit RoiScope(PmRuntime &rt, SrcLoc loc = here()) : rt(rt)
    {
        rt.roiBegin(true, loc);
    }

    ~RoiScope() { rt.roiEnd(); }

  private:
    PmRuntime &rt;
};

/** RAII library-code scope (function-granularity tracing). */
class LibScope
{
  public:
    LibScope(PmRuntime &rt, const char *label, SrcLoc loc = here())
        : rt(rt)
    {
        rt.libBegin(label, loc);
    }

    ~LibScope() { rt.libEnd(); }

  private:
    PmRuntime &rt;
};

/** RAII skip-detection region. */
class SkipDetectionScope
{
  public:
    explicit SkipDetectionScope(PmRuntime &rt, SrcLoc loc = here())
        : rt(rt)
    {
        rt.skipDetectionBegin(true, loc);
    }

    ~SkipDetectionScope() { rt.skipDetectionEnd(); }

  private:
    PmRuntime &rt;
};

/** RAII skip-failure-injection region. */
class SkipFailureScope
{
  public:
    explicit SkipFailureScope(PmRuntime &rt, SrcLoc loc = here()) : rt(rt)
    {
        rt.skipFailureBegin(true, loc);
    }

    ~SkipFailureScope() { rt.skipFailureEnd(); }

  private:
    PmRuntime &rt;
};

} // namespace xfd::trace

#endif // XFD_TRACE_RUNTIME_HH
