/**
 * @file
 * Subset masks over trace-entry streams.
 *
 * The crash-state oracle (src/oracle) enumerates which of the
 * in-flight write events of a pre-failure trace are persisted in a
 * candidate crash image. A SubsetMask is the compact identity of one
 * such candidate: bit i corresponds to the i-th frontier event in
 * ascending trace-sequence order. Masks round-trip through a fixed
 * hex spelling so disagreement artifacts can name the exact candidate
 * that produced a verdict.
 */

#ifndef XFD_TRACE_SUBSET_HH
#define XFD_TRACE_SUBSET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xfd::trace
{

/** A fixed-width bitmask over an event list (bit i = event i). */
class SubsetMask
{
  public:
    SubsetMask() = default;

    /** All-zero mask over @p bits events. */
    explicit SubsetMask(std::size_t bits);

    /** Number of events the mask ranges over. */
    std::size_t size() const { return nbits; }

    bool test(std::size_t i) const;
    void set(std::size_t i, bool v = true);

    /** Set every bit (the all-updates candidate). */
    void setAll();

    bool all() const;
    bool none() const;

    /** Number of set bits. */
    std::size_t count() const;

    /**
     * Fixed-width hex spelling, most significant nibble first
     * (ceil(size/4) digits; "" for an empty mask). Stable across
     * runs — the identity disagreement artifacts carry.
     */
    std::string toHex() const;

    /**
     * Parse a toHex() spelling back into a mask over @p bits events.
     * @return false when the digit count or a trailing bit does not
     *         match @p bits, or a character is not a hex digit.
     */
    static bool fromHex(const std::string &hex, std::size_t bits,
                        SubsetMask &out);

    bool operator==(const SubsetMask &o) const = default;

    /** Strict-weak order so masks can key std::set/std::map. */
    bool operator<(const SubsetMask &o) const;

  private:
    std::size_t nbits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace xfd::trace

#endif // XFD_TRACE_SUBSET_HH
