/**
 * @file
 * Append-only trace FIFO between the frontend and the backend.
 *
 * The paper streams completed trace entries through pre-/post-failure
 * FIFOs so detection overlaps tracing (§5.4); in-process we model the
 * FIFO as an append-only buffer the backend consumes by index.
 */

#ifndef XFD_TRACE_BUFFER_HH
#define XFD_TRACE_BUFFER_HH

#include <cstddef>
#include <vector>

#include "trace/entry.hh"

namespace xfd::trace
{

/** An append-only sequence of trace entries. */
class TraceBuffer
{
  public:
    /** Append @p e, assigning its sequence number. @return the seq. */
    std::uint32_t append(TraceEntry e);

    /**
     * Bulk-append @p n entries from @p batch (moved from), assigning
     * contiguous sequence numbers: the retire half of PmRuntime's
     * fixed-slot emit ring — one reservation and one call per ring
     * instead of per entry.
     */
    void appendBatch(TraceEntry *batch, std::size_t n);

    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    const TraceEntry &operator[](std::size_t i) const { return entries[i]; }

    /** Total bytes of write payload carried (stats/benchmarks). */
    std::size_t payloadBytes() const { return payload; }

    void clear();

    std::vector<TraceEntry>::const_iterator begin() const
    {
        return entries.begin();
    }

    std::vector<TraceEntry>::const_iterator end() const
    {
        return entries.end();
    }

  private:
    std::vector<TraceEntry> entries;
    std::size_t payload = 0;
};

} // namespace xfd::trace

#endif // XFD_TRACE_BUFFER_HH
