#include "trace/subset.hh"

namespace xfd::trace
{

namespace
{

constexpr std::size_t wordBits = 64;

std::size_t
wordCount(std::size_t bits)
{
    return (bits + wordBits - 1) / wordBits;
}

} // namespace

SubsetMask::SubsetMask(std::size_t bits)
    : nbits(bits), words(wordCount(bits), 0)
{
}

bool
SubsetMask::test(std::size_t i) const
{
    if (i >= nbits)
        return false;
    return (words[i / wordBits] >> (i % wordBits)) & 1u;
}

void
SubsetMask::set(std::size_t i, bool v)
{
    if (i >= nbits)
        return;
    std::uint64_t bit = std::uint64_t{1} << (i % wordBits);
    if (v)
        words[i / wordBits] |= bit;
    else
        words[i / wordBits] &= ~bit;
}

void
SubsetMask::setAll()
{
    for (std::size_t i = 0; i < words.size(); i++)
        words[i] = ~std::uint64_t{0};
    // Keep bits past nbits clear so equality and toHex stay canonical.
    if (nbits % wordBits != 0 && !words.empty()) {
        words.back() &=
            (std::uint64_t{1} << (nbits % wordBits)) - 1;
    }
}

bool
SubsetMask::all() const
{
    return count() == nbits;
}

bool
SubsetMask::none() const
{
    for (std::uint64_t w : words) {
        if (w)
            return false;
    }
    return true;
}

std::size_t
SubsetMask::count() const
{
    std::size_t n = 0;
    for (std::uint64_t w : words) {
        while (w) {
            w &= w - 1;
            n++;
        }
    }
    return n;
}

std::string
SubsetMask::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::size_t ndigits = (nbits + 3) / 4;
    std::string s(ndigits, '0');
    for (std::size_t d = 0; d < ndigits; d++) {
        // Digit 0 is the most significant nibble.
        std::size_t nibble = ndigits - 1 - d;
        unsigned v = 0;
        for (std::size_t b = 0; b < 4; b++) {
            if (test(nibble * 4 + b))
                v |= 1u << b;
        }
        s[d] = digits[v];
    }
    return s;
}

bool
SubsetMask::fromHex(const std::string &hex, std::size_t bits,
                    SubsetMask &out)
{
    std::size_t ndigits = (bits + 3) / 4;
    if (hex.size() != ndigits)
        return false;
    SubsetMask m(bits);
    for (std::size_t d = 0; d < ndigits; d++) {
        char c = hex[d];
        unsigned v;
        if (c >= '0' && c <= '9')
            v = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            v = static_cast<unsigned>(c - 'A') + 10;
        else
            return false;
        std::size_t nibble = ndigits - 1 - d;
        for (std::size_t b = 0; b < 4; b++) {
            if (!(v & (1u << b)))
                continue;
            std::size_t i = nibble * 4 + b;
            if (i >= bits)
                return false; // set bit past the event count
            m.set(i);
        }
    }
    out = std::move(m);
    return true;
}

bool
SubsetMask::operator<(const SubsetMask &o) const
{
    if (nbits != o.nbits)
        return nbits < o.nbits;
    for (std::size_t i = words.size(); i-- > 0;) {
        if (words[i] != o.words[i])
            return words[i] < o.words[i];
    }
    return false;
}

} // namespace xfd::trace
