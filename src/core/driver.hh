/**
 * @file
 * The XFDetector campaign driver (paper Fig. 7 / Fig. 8).
 *
 * One detection campaign over a program:
 *  1. run the pre-failure stage once under tracing,
 *  2. plan failure points before every ordering point (§4.2),
 *  3. for each failure point: materialize the PM image as of that
 *     point (initial image + all recorded writes before it, persisted
 *     or not — footnote 3), run the post-failure stage (recovery +
 *     resumption) on it under tracing,
 *  4. replay the pre-failure trace incrementally into the shadow PM
 *     and check every post-failure read against it (§5.4),
 *  5. aggregate deduplicated bug reports and timing statistics.
 *
 * runParallel() implements the future work the paper names in §6.2.1
 * ("the post-failure executions are independent as they operate on a
 * copy of the original PM image, and therefore, can be parallelized"):
 * the schedule — one work item per failure point, or per signature
 * group under --backend=batched — is pulled dynamically off a shared
 * queue by worker threads, each with its own pool replica, shadow PM
 * and replay cursors. Items are consumed in ascending seq order, so
 * every worker's cursors stay monotonic regardless of which items it
 * wins, and findings collect per item and merge in item order, so
 * the result is deterministic and identical to the serial run.
 */

#ifndef XFD_CORE_DRIVER_HH
#define XFD_CORE_DRIVER_HH

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/bug_report.hh"
#include "core/config.hh"
#include "core/failure_planner.hh"
#include "core/observer.hh"
#include "core/shadow_pm.hh"
#include "obs/phase_profiler.hh"
#include "pm/cow.hh"
#include "pm/delta.hh"
#include "pm/image.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"

namespace xfd::core
{

/** A traced program stage: receives the tracing runtime. */
using ProgramFn = std::function<void(trace::PmRuntime &)>;

/** Timing and volume statistics for one campaign. */
struct CampaignStats
{
    std::size_t failurePoints = 0;
    std::size_t orderingCandidates = 0;
    std::size_t elidedPoints = 0;
    /**
     * Points folded into a signature group's representative and not
     * executed (0 unless --backend=batched).
     */
    std::size_t lintPrunedPoints = 0;
    /** Signature groups scheduled (0 unless --backend=batched). */
    std::size_t batchGroups = 0;
    /** Same-value stores elided at emit time (--elide-same-value). */
    std::size_t sameValueElided = 0;
    std::size_t postExecutions = 0;
    /**
     * @name Crash-state exploration volume (--crash-states)
     * Partial candidates only — the anchor run is not counted here.
     * @{
     */
    /** Partial candidate masks enumerated over all failure points. */
    std::size_t crashStatesEnumerated = 0;
    /** Partial candidates actually executed (recovery + classify). */
    std::size_t crashStatesExplored = 0;
    /** Candidates skipped by equivalence-class pruning. */
    std::size_t crashStatesPruned = 0;
    /**
     * One record per pruned candidate: where it was skipped, the
     * failure point whose identical candidate already executed, and
     * the mask — the conformance tier oracle-rechecks exactly these.
     */
    struct PrunedCrashCandidate
    {
        std::uint32_t fp = 0;
        std::uint32_t repFp = 0;
        std::string maskHex;
    };
    std::vector<PrunedCrashCandidate> crashPruned;
    /** @} */
    std::size_t preTraceEntries = 0;
    std::size_t postTraceEntries = 0;
    double preSeconds = 0;
    double postSeconds = 0;
    double backendSeconds = 0;
    std::size_t checksPerformed = 0;
    std::size_t checksSkipped = 0;
    /** Worker threads used (1 = serial). */
    unsigned threads = 1;
    /** Exec-pool restore volume (delta engine or full copies). */
    pm::DeltaRestoreStats restore;
    /** Pool capacity in bytes (baseline for restore-volume ratios). */
    std::size_t poolBytes = 0;
    /**
     * Per-phase wall-time attribution of the campaign loop. The
     * restore/classify entries reuse the exact measured intervals
     * that feed backendSeconds, so in a serial campaign
     * phases.backendAttributed() == backendSeconds identically;
     * phase *counts* are serial/parallel-invariant.
     */
    obs::PhaseTotals phases;

    double totalSeconds() const
    {
        return preSeconds + postSeconds + backendSeconds;
    }
};

/**
 * Everything a campaign produced: findings, stats, per-phase timing
 * and the configuration it ran under — the first-class return object
 * of Driver::run()/xfd::Campaign::run(). Prefer the accessors
 * (findings(), statistics(), phases(), config(), fingerprint()) over
 * reaching into the public members; the members stay public for one
 * PR of source compatibility (removal schedule: DESIGN.md §16).
 */
struct CampaignResult
{
    std::vector<BugReport> bugs;
    CampaignStats stats;

    /** The deduplicated findings, in deterministic merge order. */
    const std::vector<BugReport> &findings() const { return bugs; }

    /** Timing/volume statistics of the campaign. */
    const CampaignStats &statistics() const { return stats; }

    /** Per-phase wall-time attribution of the campaign loop. */
    const obs::PhaseTotals &phases() const { return stats.phases; }

    /** The DetectorConfig this campaign actually ran with. */
    const DetectorConfig &config() const { return runConfig; }

    /** @return number of distinct findings of type @p t. */
    std::size_t count(BugType t) const;

    bool hasBugs() const { return !bugs.empty(); }

    /** Multi-line human-readable report. */
    std::string summary() const;

    /**
     * Order-insensitive identity of the findings: one sorted line
     * per finding ("type|reader|writer|note"), independent of
     * scheduling, worker count and backend mode. Byte-comparable
     * across runs — the batch-equivalence tests and the CI
     * batch-smoke job diff exactly this string.
     */
    std::string fingerprint() const;

    /**
     * Findings first exposed on a *partial* crash image: their
     * persistedMask provenance has at least one cleared bit, i.e. the
     * anchor (all-updates) image of the same failure point did not
     * produce them. Meaningful for --crash-states campaigns; under
     * --crash-image every finding's mask is all-zero by construction
     * and counts here.
     */
    std::size_t partialImageFindings() const;

    /** Filled by the driver; read through config(). */
    DetectorConfig runConfig;
};

/** Orchestrates detection campaigns over a PM pool. */
class Driver
{
  public:
    explicit Driver(pm::PmPool &pool, DetectorConfig cfg = {});

    /**
     * Run a full detection campaign.
     *
     * @param pre  the pre-failure stage (setup + RoI operations)
     * @param post the post-failure stage (recovery + resumption),
     *             invoked once per failure point on the reconstructed
     *             PM image
     */
    CampaignResult run(const ProgramFn &pre, const ProgramFn &post);

    /**
     * Like run(), but post-failure executions are distributed over
     * @p threads worker threads (each on its own pool replica).
     * Findings are identical to the serial run.
     */
    CampaignResult runParallel(const ProgramFn &pre,
                               const ProgramFn &post, unsigned threads);

    /**
     * Fig. 12b baselines: run only the pre-failure stage.
     * @param traced when true, trace but do not detect ("pure Pin");
     *               when false, disable tracing too ("original").
     * @return wall-clock seconds.
     */
    double runBaseline(const ProgramFn &pre, bool traced);

    /**
     * Attach observability sinks: phase/failure-point spans land on
     * @p o's timeline, stat counters are aggregated into its registry
     * at campaign end (when cfg.collectStats), and o->onProgress fires
     * after every failure point. Pass nullptr to detach. The observer
     * must outlive subsequent run()/runParallel() calls.
     */
    void setObserver(CampaignObserver *o) { observer = o; }

  private:
    /**
     * Per-worker replay state: the shadow PM and the working image,
     * both advanced monotonically over the pre-failure trace.
     */
    struct PreCursor
    {
        /**
         * @p initial is the shared campaign-start snapshot; both
         * images fork it (O(pages) pointer copies — pages physically
         * split only as writes land).
         */
        PreCursor(AddrRange range, const DetectorConfig &cfg,
                  const pm::CowImage &initial);
        ~PreCursor();

        ShadowPM shadow;
        /** All updates applied (the paper's footnote-3 image). */
        pm::CowImage image;
        /** Persisted-only image (crashImageMode extension). */
        pm::CowImage durable;
        /** Lines written since their last durable copy. */
        std::set<Addr> dirtyLines;
        /** Lines flushed, awaiting the next fence. */
        std::set<Addr> pendingLines;
        std::uint32_t shadowCursor = 0;
        std::uint32_t imageCursor = 0;
        /** TX_ADD ranges of the open transaction (perf bugs). */
        std::vector<AddrRange> openTxAdds;

        /**
         * @name Frontier tracking (finding provenance)
         *
         * Mirrors the line-granular persistency bookkeeping above,
         * but keyed by write seq: inflight maps each dirty cache
         * line to the seqs of writes covering it that are not yet
         * durably persisted; inflightPending holds lines whose
         * writes have been flushed and persist at the next fence.
         * The sorted union of inflight's seq lists at a failure
         * point is that point's write frontier — the same identity
         * the crash-state oracle enumerates subsets of.
         * @{
         */
        std::map<Addr, std::vector<std::uint32_t>> inflight;
        std::set<Addr> inflightPending;
        /** @} */

        /**
         * @name Delta-restore state (meaningful only when the driver
         * runs with an ImageDeltaStore attached)
         * @{
         */
        /** Exec pool has been synced with a full copy at least once. */
        bool execSynced = false;
        /** Failure point the exec pool was last restored to. */
        std::uint32_t lastRestoredSeq = 0;
        /** Delta restores since the last full checkpoint. */
        std::size_t sinceCheckpoint = 0;
        /**
         * Pages of the durable image changed since the last restore
         * (crashImageMode: fences persist lines whose writes may
         * predate the restore window, so the write-log index cannot
         * derive the durable delta; track it where it happens).
         */
        std::set<std::uint32_t> durablePages;
        /** @} */

        /**
         * Crash-state exploration state (--crash-states): a
         * cell-granular mirror of the oracle's persistency model so
         * the driver's frontiers, candidate masks and candidate
         * images agree with the oracle's byte for byte. Null unless
         * the campaign explores partial crash states.
         */
        struct CsState;
        std::unique_ptr<CsState> cs;
    };

    /**
     * Advance the shadow PM over pre-trace entries up to @p to.
     * @param perf_sink when non-null, performance bugs are reported
     */
    void advanceShadow(PreCursor &cur, const trace::TraceBuffer &pre,
                       std::uint32_t to, BugSink *perf_sink);

    /** Advance the working image over pre-trace writes up to @p to. */
    void advanceImage(PreCursor &cur, const trace::TraceBuffer &pre,
                      std::uint32_t to);

    /** Per-worker observability context threaded through the chunk. */
    struct WorkerObs
    {
        /** Null when no observer is attached (spans disabled). */
        obs::Timeline *timeline = nullptr;
        /** Timeline track of this worker (0 = main). */
        int track = 0;
        /** Post-failure-stage seconds, one entry per failure point. */
        std::vector<double> *postLatency = nullptr;
        /** Per-op post-trace entry counts, accumulated per point. */
        std::array<std::uint64_t, trace::opCount> *postOps = nullptr;
        /** Live telemetry registry; null unless live output is on. */
        obs::LiveMetrics *live = nullptr;
    };

    /**
     * Handle failure point @p fp end to end on @p exec_pool:
     * reconstruct the image, run the post-failure stage, replay the
     * post trace against the shadow.
     */
    void handleFailurePoint(PreCursor &cur, pm::PmPool &exec_pool,
                            const trace::TraceBuffer &pre,
                            const ProgramFn &post, std::uint32_t fp,
                            BugSink &sink, CampaignStats &stats,
                            const WorkerObs &wobs);

    /**
     * Replay one post-failure trace against the shadow PM.
     * @param suppressSemantic drop commit-window (condition (3))
     *        verdicts — set for partial candidates that dropped a
     *        commit-variable write, where recovery legitimately
     *        observes the previous committed epoch.
     */
    void replayPost(PreCursor &cur, const trace::TraceBuffer &pre,
                    const trace::TraceBuffer &post, std::uint32_t fp,
                    BugSink &sink, bool suppressSemantic = false);

    /**
     * Partial crash-state exploration at failure point @p fp
     * (--crash-states=sample:<n>|exhaustive): enumerate the legal
     * persisted subsets of the write frontier from the cursor's cell
     * model, equivalence-prune against the campaign-global seen set,
     * materialize each surviving candidate (durable image + masked
     * frontier events) on @p exec_pool, run recovery and classify.
     * Candidate findings merge into @p local annotated with their
     * own persistedMask. Runs after the anchor execution; the exec
     * pool is left consistent with the delta bookkeeping.
     */
    void exploreCrashStates(PreCursor &cur, pm::PmPool &exec_pool,
                            const trace::TraceBuffer &pre,
                            const ProgramFn &post, std::uint32_t fp,
                            BugSink &local, CampaignStats &stats,
                            const WorkerObs &wobs);

    /**
     * Aggregate campaign counters into the observer's registry:
     * timing/volume scalars, shadow-FSM edge counts (from the
     * deterministic full-trace replay, so serial and parallel
     * campaigns register identical values), per-op trace volumes,
     * elision savings, and the post-execution latency histogram.
     */
    void fillObserverStats(
        const CampaignResult &res,
        const std::array<std::uint64_t, trace::opCount> &pre_ops,
        const std::array<std::uint64_t, trace::opCount> &post_ops,
        const ShadowFsmCounters &fsm,
        const std::vector<double> &post_latency);

    pm::PmPool &pool;
    DetectorConfig cfg;
    CampaignObserver *observer = nullptr;
    /**
     * Write-log page index for the campaign in flight; null disables
     * delta restores (handleFailurePoint falls back to full copies).
     * Set by runParallel() for the delta and batched backends,
     * cleared before it returns.
     */
    const pm::ImageDeltaStore *deltaStore = nullptr;
    /**
     * Pages where any working image can differ from a fresh zeroed
     * pool: the full write-log page set united with the initial
     * snapshot's nonzero pages. Chunk starts and checkpoint resyncs
     * restore this set (plus exec-pool dirt) instead of copying the
     * whole pool. Valid exactly while deltaStore is.
     */
    const std::set<std::uint32_t> *chunkSyncPages = nullptr;

    /**
     * Campaign-global crash-state exploration context (parsed mode
     * knobs + the equivalence-class pruning set shared by every
     * worker). Set by runParallel() while a --crash-states campaign
     * is in flight, cleared before it returns; null otherwise.
     */
    struct CrashStateCtx;
    CrashStateCtx *csCtx = nullptr;
};

} // namespace xfd::core

#endif // XFD_CORE_DRIVER_HH
