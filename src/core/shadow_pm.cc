#include "core/shadow_pm.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfd::core
{

const char *
persistStateName(PersistState s)
{
    switch (s) {
      case PersistState::Unmodified: return "Unmodified";
      case PersistState::Modified: return "Modified";
      case PersistState::WritebackPending: return "WritebackPending";
      case PersistState::Persisted: return "Persisted";
    }
    return "?";
}

ShadowPM::ShadowPM(AddrRange pool, const DetectorConfig &c)
    : poolRange(pool), cfg(c), gran(c.granularity),
      collect(c.collectStats), eadr(c.eadrOn())
{
    if (gran == 0 || (gran & (gran - 1)) != 0 || gran > cacheLineSize)
        fatal("shadow granularity must be a power of two <= 64");
}

ShadowPM::Page &
ShadowPM::pageAt(std::uint64_t idx)
{
    auto &page = pages[idx / cellsPerPage];
    if (!page)
        page = std::make_unique<Page>();
    return *page;
}

ShadowPM::Page *
ShadowPM::findPage(std::uint64_t idx)
{
    auto it = pages.find(idx / cellsPerPage);
    return it == pages.end() ? nullptr : it->second.get();
}

ShadowPM::Cell &
ShadowPM::cellAt(std::uint64_t idx)
{
    return pageAt(idx)[idx % cellsPerPage];
}

const ShadowPM::Cell *
ShadowPM::findCell(std::uint64_t idx) const
{
    auto it = pages.find(idx / cellsPerPage);
    if (it == pages.end())
        return nullptr;
    return &(*it->second)[idx % cellsPerPage];
}

ShadowPM::PostPage &
ShadowPM::postPageAt(std::uint64_t idx)
{
    auto &page = postPages[idx / cellsPerPage];
    if (!page)
        page = std::make_unique<PostPage>();
    return *page;
}

void
ShadowPM::preWrite(Addr a, std::size_t n, std::uint32_t seq,
                   bool non_temporal)
{
    if (n == 0)
        return;
    std::uint64_t idx = cellIndex(a);
    std::uint64_t end = idx + cellCount(a, n);
    // Under eADR the persistence domain covers the caches: every
    // store is durable the moment it lands, so the Modified and
    // WritebackPending states are skipped entirely.
    PersistState to = eadr ? PersistState::Persisted
                     : non_temporal ? PersistState::WritebackPending
                                    : PersistState::Modified;
    // Page-chunked: one hash lookup per page run, not per cell.
    while (idx < end) {
        std::uint64_t off = idx % cellsPerPage;
        std::uint64_t run = std::min(end - idx, cellsPerPage - off);
        Page &pg = pageAt(idx);
        for (std::uint64_t i = 0; i < run; i++) {
            Cell &c = pg[off + i];
            noteEdge(c.ps, to);
            c.ps = to;
            c.flags &= static_cast<std::uint8_t>(~cellUninit);
            c.tlast = ts;
            c.lastWriterSeq = seq;
            if (non_temporal && !eadr)
                pendingCells.push_back(idx + i);
        }
        idx += run;
    }
    // A write that overlaps a commit variable is a commit write Cx:
    // it versions the consistency of the variable's address set.
    for (auto &cv : commitVars) {
        if (cv.var.overlaps({a, a + n})) {
            cv.tprelast = cv.tlast;
            cv.tlast = ts;
        }
    }
}

bool
ShadowPM::preFlush(Addr line, std::uint32_t seq, bool repair)
{
    (void)seq;
    auto repairClean = [&] {
        return std::find(repairCleanLines.begin(), repairCleanLines.end(),
                         line);
    };
    // Flush-free model: a writeback neither persists anything new nor
    // counts as redundant — the instruction is simply dead weight the
    // program carries for clwb portability, not a performance bug.
    if (eadr)
        return false;
    std::uint64_t first = cellIndex(line);
    std::uint64_t end = first + cellCount(line, cacheLineSize);
    // Page-chunked in both passes: a line's cells live in at most two
    // pages, so the scan costs two hash lookups instead of one per
    // cell. Cells in absent pages are Unmodified by construction.
    bool any_modified = false;
    for (std::uint64_t idx = first; idx < end && !any_modified;) {
        std::uint64_t off = idx % cellsPerPage;
        std::uint64_t run = std::min(end - idx, cellsPerPage - off);
        if (const Page *pg = findPage(idx)) {
            for (std::uint64_t i = 0; i < run; i++) {
                if ((*pg)[off + i].ps == PersistState::Modified) {
                    any_modified = true;
                    break;
                }
            }
        }
        idx += run;
    }
    if (!any_modified) {
        if (!repair) {
            auto it = repairClean();
            if (it != repairCleanLines.end()) {
                // The line was cleaned by a repair-inserted flush just
                // ahead of this program flush; the program flush was
                // not redundant in the unrepaired execution.
                repairCleanLines.erase(it);
                return false;
            }
        }
        // Fig. 9 yellow edges: flushing a line with nothing modified
        // (clean, already pending, or already persisted) is redundant.
        if (obs::statsCompiledIn && collect)
            fsm.redundantFlushes++;
        return true;
    }
    for (std::uint64_t idx = first; idx < end;) {
        std::uint64_t off = idx % cellsPerPage;
        std::uint64_t run = std::min(end - idx, cellsPerPage - off);
        if (Page *pg = findPage(idx)) {
            for (std::uint64_t i = 0; i < run; i++) {
                Cell &c = (*pg)[off + i];
                if (c.ps == PersistState::Modified) {
                    noteEdge(PersistState::Modified,
                             PersistState::WritebackPending);
                    c.ps = PersistState::WritebackPending;
                    pendingCells.push_back(idx + i);
                }
            }
        }
        idx += run;
    }
    if (repair) {
        if (repairClean() == repairCleanLines.end())
            repairCleanLines.push_back(line);
    } else {
        auto it = repairClean();
        if (it != repairCleanLines.end())
            repairCleanLines.erase(it);
    }
    return false;
}

void
ShadowPM::preFence()
{
    bool retired = false;
    // pendingCells runs are mostly consecutive (whole lines): cache
    // the page across iterations.
    std::uint64_t cached_pg = ~std::uint64_t{0};
    Page *pg = nullptr;
    for (std::uint64_t idx : pendingCells) {
        if (idx / cellsPerPage != cached_pg) {
            cached_pg = idx / cellsPerPage;
            pg = &pageAt(idx);
        }
        Cell &c = (*pg)[idx % cellsPerPage];
        if (c.ps == PersistState::WritebackPending) {
            noteEdge(PersistState::WritebackPending,
                     PersistState::Persisted);
            c.ps = PersistState::Persisted;
            retired = true;
        }
    }
    pendingCells.clear();
    if (obs::statsCompiledIn && collect) {
        fsm.fences++;
        if (retired)
            fsm.orderingFences++;
    }
    // The global timestamp increments after each ordering point (§5.4).
    ts++;
}

void
ShadowPM::preAlloc(Addr a, std::size_t n, std::uint32_t seq)
{
    std::uint64_t idx = cellIndex(a);
    std::uint64_t end = idx + cellCount(a, n);
    while (idx < end) {
        std::uint64_t off = idx % cellsPerPage;
        std::uint64_t run = std::min(end - idx, cellsPerPage - off);
        Page &pg = pageAt(idx);
        for (std::uint64_t i = 0; i < run; i++) {
            Cell &c = pg[off + i];
            // Freshly allocated cells hold no guaranteed contents: the
            // pre-failure program "creates an unmodified PM location
            // that is read by the post-failure execution" (§6.3.2
            // bug 2).
            noteEdge(c.ps, PersistState::Modified);
            c.ps = PersistState::Modified;
            c.flags |= cellUninit;
            c.tlast = ts;
            c.lastWriterSeq = seq;
        }
        idx += run;
    }
}

void
ShadowPM::preFree(Addr a, std::size_t n)
{
    std::uint64_t idx = cellIndex(a);
    std::uint64_t end = idx + cellCount(a, n);
    while (idx < end) {
        std::uint64_t off = idx % cellsPerPage;
        std::uint64_t run = std::min(end - idx, cellsPerPage - off);
        // Absent pages are already all-Unmodified; skip them rather
        // than materializing a page just to reset it.
        if (Page *pg = findPage(idx)) {
            for (std::uint64_t i = 0; i < run; i++) {
                Cell &c = (*pg)[off + i];
                noteEdge(c.ps, PersistState::Unmodified);
                c = Cell{};
            }
        }
        idx += run;
    }
}

void
ShadowPM::registerCommitVar(Addr a, std::size_t n)
{
    AddrRange r{a, a + n};
    for (const auto &cv : commitVars) {
        if (cv.var == r)
            return;
    }
    commitVars.push_back(CommitVar{r, {}, -1, -1});
}

void
ShadowPM::registerCommitRange(Addr cv_addr, Addr a, std::size_t n)
{
    for (auto &cv : commitVars) {
        if (cv.var.contains(cv_addr)) {
            AddrRange r{a, a + n};
            for (const auto &existing : cv.ranges) {
                if (existing == r)
                    return;
            }
            // Condition (2): address sets of distinct commit variables
            // must be disjoint.
            for (const auto &other : commitVars) {
                if (&other != &cv) {
                    for (const auto &orng : other.ranges) {
                        if (orng.overlaps(r))
                            warn("commit ranges of two commit variables "
                                 "overlap; behaviour is undefined");
                    }
                }
            }
            cv.ranges.push_back(r);
            return;
        }
    }
    warn("addCommitRange: no commit variable registered at %#llx",
         static_cast<unsigned long long>(cv_addr));
}

const ShadowPM::CommitVar *
ShadowPM::coveringVar(Addr a) const
{
    for (const auto &cv : commitVars) {
        for (const auto &r : cv.ranges) {
            if (r.contains(a))
                return &cv;
        }
    }
    // "By default, if there is only one commit variable and no object
    // is specified, it covers all PM locations" (§5.2).
    if (commitVars.size() == 1 && commitVars.front().ranges.empty())
        return &commitVars.front();
    return nullptr;
}

bool
ShadowPM::isCommitVarAddr(Addr a) const
{
    for (const auto &cv : commitVars) {
        if (cv.var.contains(a))
            return true;
    }
    return false;
}

bool
ShadowPM::consistentUnder(const Cell &c, const CommitVar &var) const
{
    // Paper condition (3): consistent iff the location was last
    // modified between the last two commit writes.
    return var.tprelast <= c.tlast && c.tlast < var.tlast;
}

void
ShadowPM::beginPostReplay()
{
    postPages.clear();
    savedCommitVars = commitVars;
    inPostReplay = true;
}

void
ShadowPM::endPostReplay()
{
    if (!inPostReplay)
        return;
    commitVars = std::move(savedCommitVars);
    savedCommitVars.clear();
    inPostReplay = false;
}

void
ShadowPM::postWrite(Addr a, std::size_t n)
{
    if (n == 0)
        return;
    std::uint64_t idx = cellIndex(a);
    std::uint64_t end = idx + cellCount(a, n);
    while (idx < end) {
        std::uint64_t off = idx % cellsPerPage;
        std::uint64_t run = std::min(end - idx, cellsPerPage - off);
        PostPage &page = postPageAt(idx);
        for (std::uint64_t i = 0; i < run; i++)
            page[off + i] |= postOverwritten;
        idx += run;
    }
}

ReadCheckResult
ShadowPM::checkPostRead(Addr a, std::size_t n)
{
    ReadCheckResult res;
    if (n == 0)
        return res;
    std::uint64_t first = cellIndex(a);
    std::uint64_t count = cellCount(a, n);
    bool benign_seen = false;
    // Reads are nearly always page-local: resolve both the post
    // overlay page and the pre-state page once per page crossing
    // rather than once per cell.
    std::uint64_t cached_pg = ~std::uint64_t{0};
    PostPage *post_pg = nullptr;
    const Page *pre_pg = nullptr;
    for (std::uint64_t i = 0; i < count; i++) {
        std::uint64_t idx = first + i;
        Addr cell_addr = poolRange.begin + idx * gran;

        // Reading a commit variable is a benign cross-failure race.
        if (isCommitVarAddr(cell_addr)) {
            benign_seen = true;
            continue;
        }

        if (idx / cellsPerPage != cached_pg) {
            cached_pg = idx / cellsPerPage;
            post_pg = &postPageAt(idx);
            auto it = pages.find(cached_pg);
            pre_pg = it == pages.end() ? nullptr : it->second.get();
        }
        std::uint8_t &pflags = (*post_pg)[idx % cellsPerPage];
        if (pflags & postOverwritten)
            continue;
        if (cfg.firstReadOnly && (pflags & postChecked)) {
            nSkipped++;
            continue;
        }
        pflags |= postChecked;

        const Cell *c = pre_pg ? &(*pre_pg)[idx % cellsPerPage]
                               : nullptr;
        if (!c || c->ps == PersistState::Unmodified) {
            // Untouched pre-failure: initial data, consistent.
            nChecks++;
            continue;
        }
        nChecks++;

        if (res.verdict == ReadCheck::Race ||
            res.verdict == ReadCheck::SemanticBug) {
            // Already found the first offending cell; keep scanning
            // only to mark the remaining cells as checked.
            continue;
        }

        if (c->flags & cellUninit) {
            // Allocated but never explicitly written by the program:
            // implicit allocator zeroing (even persisted) is not
            // initialization the program may rely on (§6.3.2 bug 2).
            res.verdict = ReadCheck::Race;
            res.addr = cell_addr;
            res.writerSeq = c->lastWriterSeq;
            res.uninitialized = true;
            continue;
        }

        const CommitVar *var = coveringVar(cell_addr);

        // Check consistency first: "reading a consistent location is
        // certainly bug-free" (§5.4) — unless the strict extension is
        // enabled, which additionally requires persistence.
        bool consistent = var && consistentUnder(*c, *var);
        if (consistent &&
            !(cfg.strictPersistCheck && c->ps != PersistState::Persisted)) {
            continue;
        }

        bool persisted = c->ps == PersistState::Persisted;
        if (!persisted) {
            res.verdict = ReadCheck::Race;
            res.addr = cell_addr;
            res.writerSeq = c->lastWriterSeq;
            res.uninitialized = (c->flags & cellUninit) != 0;
            continue;
        }
        if (var) {
            res.verdict = ReadCheck::SemanticBug;
            res.addr = cell_addr;
            res.writerSeq = c->lastWriterSeq;
            // Stale: last modified before even the pre-last commit
            // write; uncommitted: modified at/after the last one.
            res.stale = c->tlast < var->tprelast;
            continue;
        }
        // Persisted and not governed by any commit variable: fine.
    }
    if (benign_seen && res.verdict == ReadCheck::Ok)
        res.verdict = ReadCheck::Benign;
    return res;
}

PersistState
ShadowPM::persistStateOf(Addr a) const
{
    const Cell *c = findCell(cellIndex(a));
    return c ? c->ps : PersistState::Unmodified;
}

std::int32_t
ShadowPM::tlastOf(Addr a) const
{
    const Cell *c = findCell(cellIndex(a));
    return c ? c->tlast : -1;
}

} // namespace xfd::core
