/**
 * @file
 * Campaign observability context.
 *
 * A CampaignObserver owns the three observability channels of one
 * detection campaign:
 *
 *  - stats:      the gem5-style registry Driver/ShadowPM/PmRuntime
 *                counters are aggregated into at campaign end,
 *  - timeline:   per-phase and per-failure-point spans (exportable as
 *                JSONL or Chrome trace_event),
 *  - onProgress: invoked after every failure point with
 *                (done, total, bugs-so-far) — wire it to an
 *                obs::ProgressMeter for the periodic progress line.
 *
 * Attach with Driver::setObserver(); a null observer keeps the
 * driver's hot paths free of observability work.
 */

#ifndef XFD_CORE_OBSERVER_HH
#define XFD_CORE_OBSERVER_HH

#include <cstddef>
#include <functional>

#include "obs/stats.hh"
#include "obs/timeline.hh"

namespace xfd::core
{

/** Observability sinks for one (or more) detection campaigns. */
struct CampaignObserver
{
    obs::StatsRegistry stats;
    obs::Timeline timeline;

    /** (failure points done, total planned, distinct bugs so far). */
    using ProgressFn =
        std::function<void(std::size_t, std::size_t, std::size_t)>;
    ProgressFn onProgress;
};

} // namespace xfd::core

#endif // XFD_CORE_OBSERVER_HH
