/**
 * @file
 * Campaign observability context.
 *
 * A CampaignObserver owns the observability channels of one
 * detection campaign:
 *
 *  - stats:      the gem5-style registry Driver/ShadowPM/PmRuntime
 *                counters are aggregated into at campaign end,
 *  - timeline:   per-phase and per-failure-point spans (exportable as
 *                JSONL or Chrome trace_event),
 *  - live:       the per-second sliding-window registry behind
 *                --live-port/--live-jsonl (fed mid-run, disabled by
 *                default),
 *  - onProgress: invoked after every failure point with
 *                (done, total, bugs-so-far) — wire it to an
 *                obs::ProgressMeter for the periodic progress line.
 *
 * Two further hooks exist for harnesses that need the campaign's raw
 * material rather than its aggregates (the differential oracle in
 * src/oracle is the canonical consumer): onPreTraceReady hands out the
 * pre-failure trace right after it was captured, and onFailurePoint
 * delivers each failure point's findings before cross-point dedup.
 *
 * Attach with Driver::setObserver(); a null observer keeps the
 * driver's hot paths free of observability work.
 */

#ifndef XFD_CORE_OBSERVER_HH
#define XFD_CORE_OBSERVER_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/bug_report.hh"
#include "obs/live.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "trace/buffer.hh"

namespace xfd::core
{

/** Observability sinks for one (or more) detection campaigns. */
struct CampaignObserver
{
    obs::StatsRegistry stats;
    obs::Timeline timeline;

    /**
     * Live per-second telemetry registry. Disabled by default; the
     * driver feeds it from the per-failure-point loop only while an
     * obs::LiveSession (or a caller) has enabled it, so campaigns
     * without live outputs pay one atomic load per failure point.
     */
    obs::LiveMetrics live;

    /** (failure points done, total planned, distinct bugs so far). */
    using ProgressFn =
        std::function<void(std::size_t, std::size_t, std::size_t)>;
    ProgressFn onProgress;

    /**
     * Invoked once per campaign, from the main thread, after the
     * pre-failure stage ran and before failure points are planned.
     * The buffer reference is valid only for the duration of the
     * call — copy it to keep it (TraceEntry is copyable; its string
     * members point at literals).
     */
    using PreTraceFn = std::function<void(const trace::TraceBuffer &)>;
    PreTraceFn onPreTraceReady;

    /**
     * Invoked after each failure point's post-failure replay with the
     * findings that exact failure point produced (a per-point sink:
     * no suppression by earlier points, unlike the campaign's merged
     * result). With a parallel driver this fires concurrently from
     * worker threads — the callback must synchronize itself.
     */
    using FailurePointFn =
        std::function<void(std::uint32_t fp, const BugSink &findings)>;
    FailurePointFn onFailurePoint;
};

} // namespace xfd::core

#endif // XFD_CORE_OBSERVER_HH
