/**
 * @file
 * Campaign observability context.
 *
 * A CampaignObserver owns the observability channels of one
 * detection campaign:
 *
 *  - stats:    the gem5-style registry Driver/ShadowPM/PmRuntime
 *              counters are aggregated into at campaign end,
 *  - timeline: per-phase and per-failure-point spans (exportable as
 *              JSONL or Chrome trace_event),
 *  - live:     the per-second sliding-window registry behind
 *              --live-port/--live-jsonl (fed mid-run, disabled by
 *              default),
 *  - hooks:    one versioned CampaignHooks interface for everything
 *              event-shaped — progress ticks, the captured pre-trace,
 *              per-failure-point findings.
 *
 * CampaignHooks replaces the three scattered std::function members
 * that accumulated here across PRs (onProgress, onPreTraceReady,
 * onFailurePoint). Those members remain as deprecated shims for one
 * PR — the driver fires both surfaces — and their removal schedule is
 * documented in DESIGN.md conventions.
 *
 * Attach with Driver::setObserver(); a null observer keeps the
 * driver's hot paths free of observability work.
 */

#ifndef XFD_CORE_OBSERVER_HH
#define XFD_CORE_OBSERVER_HH

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/bug_report.hh"
#include "obs/live.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "trace/buffer.hh"

namespace xfd::core
{

/** One progress tick of the per-failure-point loop. */
struct ProgressUpdate
{
    /**
     * Failure points accounted for so far. In a batched campaign a
     * finished group contributes its whole member count, so rates
     * and ETAs stay comparable with serial runs.
     */
    std::size_t done = 0;
    /** Total planned failure points (pre-batching). */
    std::size_t total = 0;
    /** Findings reported so far (per-worker dedup). */
    std::size_t bugs = 0;
};

/**
 * The versioned campaign event interface. Subclass and override what
 * you need; every default is a no-op. Delivery contract:
 *
 *  - onPreTraceReady: once per campaign, from the main thread, after
 *    the pre-failure stage ran and before planning. The buffer
 *    reference is valid only for the duration of the call.
 *  - onFailurePoint: after each executed failure point's replay,
 *    with the findings that exact point produced (per-point sink, no
 *    cross-point suppression). Parallel campaigns fire this
 *    concurrently from worker threads — synchronize yourself.
 *  - onProgress: after every executed failure point, serialized
 *    under the driver's progress lock.
 *
 * `version` bumps whenever a method is added, removed or changes
 * meaning, so out-of-tree observers fail loudly at compile time
 * (static_assert on the value they were written against) instead of
 * silently missing events.
 */
class CampaignHooks
{
  public:
    /** Interface version: 2 (v1 was the std::function trio). */
    static constexpr int version = 2;

    virtual ~CampaignHooks() = default;

    /** The captured pre-failure trace, before planning. */
    virtual void onPreTraceReady(const trace::TraceBuffer &) {}

    /** Findings of one executed failure point, pre-dedup. */
    virtual void onFailurePoint(std::uint32_t /*fp*/,
                                const BugSink & /*findings*/)
    {
    }

    /** Periodic progress; see ProgressUpdate for batched semantics. */
    virtual void onProgress(const ProgressUpdate &) {}
};

/** Observability sinks for one (or more) detection campaigns. */
struct CampaignObserver
{
    obs::StatsRegistry stats;
    obs::Timeline timeline;

    /**
     * Live per-second telemetry registry. Disabled by default; the
     * driver feeds it from the per-failure-point loop only while an
     * obs::LiveSession (or a caller) has enabled it, so campaigns
     * without live outputs pay one atomic load per failure point.
     */
    obs::LiveMetrics live;

    /**
     * The campaign event interface (may be null). Not owned; must
     * outlive the campaign.
     */
    CampaignHooks *hooks = nullptr;

    /**
     * @name Deprecated functional hooks (v1)
     * Superseded by CampaignHooks; the driver still fires these when
     * set, after the hooks-interface call. Removal schedule:
     * DESIGN.md §16.
     * @{
     */

    /** @deprecated (done, total, bugs) — use CampaignHooks. */
    using ProgressFn =
        std::function<void(std::size_t, std::size_t, std::size_t)>;
    ProgressFn onProgress;

    /** @deprecated Use CampaignHooks::onPreTraceReady. */
    using PreTraceFn = std::function<void(const trace::TraceBuffer &)>;
    PreTraceFn onPreTraceReady;

    /** @deprecated Use CampaignHooks::onFailurePoint. */
    using FailurePointFn =
        std::function<void(std::uint32_t fp, const BugSink &findings)>;
    FailurePointFn onFailurePoint;

    /** @} */

    /** Whether any progress consumer is attached. */
    bool
    wantsProgress() const
    {
        return hooks != nullptr || static_cast<bool>(onProgress);
    }

    /** Deliver the pre-trace to whichever surfaces are attached. */
    void
    notifyPreTrace(const trace::TraceBuffer &pre)
    {
        if (hooks)
            hooks->onPreTraceReady(pre);
        if (onPreTraceReady)
            onPreTraceReady(pre);
    }

    /** Deliver one failure point's findings to attached surfaces. */
    void
    notifyFailurePoint(std::uint32_t fp, const BugSink &findings)
    {
        if (hooks)
            hooks->onFailurePoint(fp, findings);
        if (onFailurePoint)
            onFailurePoint(fp, findings);
    }

    /** Deliver a progress tick to attached surfaces. */
    void
    notifyProgress(const ProgressUpdate &u)
    {
        if (hooks)
            hooks->onProgress(u);
        if (onProgress)
            onProgress(u.done, u.total, u.bugs);
    }
};

} // namespace xfd::core

#endif // XFD_CORE_OBSERVER_HH
