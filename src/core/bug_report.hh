/**
 * @file
 * Bug classification and reporting.
 */

#ifndef XFD_CORE_BUG_REPORT_HH
#define XFD_CORE_BUG_REPORT_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/entry.hh"
#include "trace/subset.hh"

namespace xfd::core
{

/** The classes of findings XFDetector produces. */
enum class BugType : std::uint8_t
{
    /**
     * Cross-failure race: the post-failure stage read a location whose
     * pre-failure write is not guaranteed persisted (§3.1).
     */
    CrossFailureRace,

    /**
     * Cross-failure semantic bug: the post-failure stage read data that
     * persisted but violates the crash-consistency mechanism (§3.2).
     */
    CrossFailureSemantic,

    /**
     * Performance bug: redundant writeback or duplicated TX_ADD
     * (reported as a side effect of shadow-PM replay, §5.4).
     */
    Performance,

    /**
     * The post-failure stage failed outright (e.g. the pool refused to
     * open because its metadata was incomplete) — how §6.3.2 bug 4
     * becomes observable under failure injection.
     */
    RecoveryFailure,
};

/** @return human-readable name of @p t. */
const char *bugTypeName(BugType t);

/** Stable identifier of @p t for JSON keys ("cross_failure_race"). */
const char *bugTypeId(BugType t);

/** One deduplicated finding. */
struct BugReport
{
    BugType type = BugType::CrossFailureRace;
    /** First offending PM address (for data bugs). */
    Addr addr = 0;
    std::uint32_t size = 0;
    /** Post-failure reader (or the redundant operation for perf bugs). */
    trace::SrcLoc reader;
    /** Last pre-failure writer of the inconsistent location. */
    trace::SrcLoc writer;
    /** Trace seq of the failure point that exposed the bug. */
    std::uint32_t failurePoint = 0;
    /** Extra context ("uninitialized allocation", "stale", ...). */
    std::string note;
    /** How many reads/failure points hit this same bug. */
    unsigned occurrences = 1;

    /**
     * @name Finding provenance (the causal chain)
     *
     * Captured at the first failure point that exposed the finding:
     * the in-flight (not-durably-persisted) write seqs at that point
     * in ascending order, and which of them the post-failure image
     * actually contained — bit i of the mask corresponds to
     * frontierSeqs[i], the same identity the crash-state oracle uses
     * for candidate images. Under the paper's footnote-3 all-updates
     * image the mask is all ones; under --crash-image it is all
     * zeros (in-flight means exactly "absent from the durable
     * image"). Empty for findings that are not tied to a failure
     * point (performance bugs from the full-trace scan).
     * @{
     */
    std::vector<std::uint32_t> frontierSeqs;
    trace::SubsetMask persistedMask;
    /** @} */

    /** One-line rendering, paper-style (file:line of reader/writer). */
    std::string str() const;
};

/** Deduplicating collector for findings. */
class BugSink
{
  public:
    /**
     * Record a finding; merged with an existing one when the type and
     * both source lines match (occurrence counts accumulate).
     */
    void report(BugReport r);

    /** Fold another sink's findings into this one. */
    void merge(const BugSink &other);

    /**
     * Apply @p fn to every collected finding — for annotating
     * non-key fields (provenance) in place. Mutating a dedup-key
     * field (type, reader, writer, note) would desync the index.
     */
    void annotate(const std::function<void(BugReport &)> &fn);

    const std::vector<BugReport> &bugs() const { return all; }

    /** @return number of distinct findings of type @p t. */
    std::size_t count(BugType t) const;

    bool empty() const { return all.empty(); }
    std::size_t size() const { return all.size(); }
    void clear();

  private:
    std::vector<BugReport> all;
    std::map<std::string, std::size_t> index;
};

} // namespace xfd::core

#endif // XFD_CORE_BUG_REPORT_HH
