/**
 * @file
 * Failure-point planning over the pre-failure trace.
 *
 * Per §4.2, persistent data can only transition from inconsistent to
 * consistent at an ordering point (an explicit writeback, e.g.
 * CLWB;SFENCE), so XFDetector injects failure points only *before*
 * ordering points, plus wherever the programmer placed an explicit
 * addFailurePoint(). Optimization (2) elides a failure point when no
 * PM operation happened since the previous ordering point.
 */

#ifndef XFD_CORE_FAILURE_PLANNER_HH
#define XFD_CORE_FAILURE_PLANNER_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "trace/buffer.hh"

namespace xfd::core
{

/** The planned set of failure points for one campaign. */
struct FailurePlan
{
    /**
     * Trace positions to fail at: the failure preempts execution just
     * *before* the entry at this seq (the ordering point does not
     * retire).
     */
    std::vector<std::uint32_t> points;

    /** Ordering points considered. */
    std::size_t candidates = 0;

    /** Candidates removed by the empty-interval elision. */
    std::size_t elided = 0;
};

/** Enumerate failure points in @p pre according to @p cfg. */
FailurePlan planFailurePoints(const trace::TraceBuffer &pre,
                              const DetectorConfig &cfg);

/**
 * One scheduling unit of a batched campaign: a representative
 * failure point plus every later point whose frontier signature the
 * lint pass proved identical (same ordering-point source location,
 * same in-flight write set, inconsistency set and commit values).
 * The representative's recovery run stands in for the whole group —
 * its findings are, provably, what every member would rediscover.
 */
struct BatchGroup
{
    /** The failure point actually executed. */
    std::uint32_t rep = 0;
    /** Points folded into this group (ascending, excludes rep). */
    std::vector<std::uint32_t> folded;

    /** Failure points this group accounts for (progress weight). */
    std::size_t weight() const { return 1 + folded.size(); }
};

/**
 * The batched schedule for one campaign: groups ascending by
 * representative seq, pulled dynamically by the worker pool.
 */
struct BatchPlan
{
    std::vector<BatchGroup> groups;

    /** Points folded into representatives (not executed). */
    std::size_t
    foldedPoints() const
    {
        std::size_t n = 0;
        for (const auto &g : groups)
            n += g.folded.size();
        return n;
    }

    /** Total failure points the schedule accounts for. */
    std::size_t
    totalPoints() const
    {
        return groups.size() + foldedPoints();
    }
};

/**
 * Group @p points (ascending, from planFailurePoints) by frontier
 * signature at @p granularity. Every input point appears in exactly
 * one group; a point whose signature matches no earlier point forms
 * a new single-member group. @p flushFree selects the eADR frontier
 * semantics (must match the campaign's persistency model so the
 * grouping relation stays sound).
 */
BatchPlan planBatches(const trace::TraceBuffer &pre,
                      const std::vector<std::uint32_t> &points,
                      unsigned granularity, bool flushFree = false);

} // namespace xfd::core

#endif // XFD_CORE_FAILURE_PLANNER_HH
