/**
 * @file
 * Failure-point planning over the pre-failure trace.
 *
 * Per §4.2, persistent data can only transition from inconsistent to
 * consistent at an ordering point (an explicit writeback, e.g.
 * CLWB;SFENCE), so XFDetector injects failure points only *before*
 * ordering points, plus wherever the programmer placed an explicit
 * addFailurePoint(). Optimization (2) elides a failure point when no
 * PM operation happened since the previous ordering point.
 */

#ifndef XFD_CORE_FAILURE_PLANNER_HH
#define XFD_CORE_FAILURE_PLANNER_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "trace/buffer.hh"

namespace xfd::core
{

/** The planned set of failure points for one campaign. */
struct FailurePlan
{
    /**
     * Trace positions to fail at: the failure preempts execution just
     * *before* the entry at this seq (the ordering point does not
     * retire).
     */
    std::vector<std::uint32_t> points;

    /** Ordering points considered. */
    std::size_t candidates = 0;

    /** Candidates removed by the empty-interval elision. */
    std::size_t elided = 0;
};

/** Enumerate failure points in @p pre according to @p cfg. */
FailurePlan planFailurePoints(const trace::TraceBuffer &pre,
                              const DetectorConfig &cfg);

} // namespace xfd::core

#endif // XFD_CORE_FAILURE_PLANNER_HH
