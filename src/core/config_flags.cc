#include "core/config_flags.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "obs/json.hh"

namespace xfd::core
{

/*
 * Coverage tripwire: adding a DetectorConfig field changes its size,
 * which fails this assert until the new field gets a descriptor row
 * below (or a deliberate exemption documented here). Update the
 * constant together with the table.
 */
static_assert(sizeof(DetectorConfig) ==
                  96 + 9 * sizeof(std::string),
              "DetectorConfig changed: add a ConfigFlagDesc row for "
              "the new field, then update this size tripwire");

namespace
{

std::vector<ConfigFlagDesc>
buildTable()
{
    using C = DetectorConfig;
    std::vector<ConfigFlagDesc> t;

    auto sw = [&](const char *flag, const char *help,
                  const char *jsonKey, bool C::*field, bool value) {
        ConfigFlagDesc d;
        d.flag = flag;
        d.arg = nullptr;
        d.help = help;
        d.jsonKey = jsonKey;
        d.boolField = field;
        d.boolValue = value;
        t.push_back(d);
    };
    auto uintf = [&](const char *flag, const char *arg,
                     const char *help, const char *jsonKey,
                     unsigned C::*field) {
        ConfigFlagDesc d;
        d.flag = flag;
        d.arg = arg;
        d.help = help;
        d.jsonKey = jsonKey;
        d.uintField = field;
        t.push_back(d);
    };
    auto sizef = [&](const char *flag, const char *arg,
                     const char *help, const char *jsonKey,
                     std::size_t C::*field) {
        ConfigFlagDesc d;
        d.flag = flag;
        d.arg = arg;
        d.help = help;
        d.jsonKey = jsonKey;
        d.sizeField = field;
        t.push_back(d);
    };
    auto strf = [&](const char *flag, const char *arg,
                    const char *help, const char *jsonKey,
                    std::string C::*field, const char *implied) {
        ConfigFlagDesc d;
        d.flag = flag;
        d.arg = arg;
        d.help = help;
        d.jsonKey = jsonKey;
        d.stringField = field;
        d.impliedValue = implied;
        t.push_back(d);
    };
    // Deprecated switch spelling that stores a fixed string into a
    // canonical field's slot ("--no-delta" == "--backend=full").
    auto alias = [&](const char *flag, const char *help,
                     std::string C::*field, const char *implied) {
        ConfigFlagDesc d;
        d.flag = flag;
        d.arg = nullptr;
        d.help = help;
        d.jsonKey = "";
        d.stringField = field;
        d.impliedValue = implied;
        d.alias = true;
        t.push_back(d);
    };

    sw("--no-elision",
       "disable empty-interval failure-point elision",
       "elide_empty_failure_points", &C::elideEmptyFailurePoints,
       false);
    sw("--no-first-read", "disable first-read-only checking",
       "first_read_only", &C::firstReadOnly, false);
    sw("--no-internal-fences",
       "no failure points at PM-library-internal fences",
       "failure_at_internal_fences", &C::failureAtInternalFences,
       false);
    uintf("--granularity", "<1|2|4|8>",
          "shadow-PM cell size (default 1)", "granularity",
          &C::granularity);
    sw("--strict-persist", "enable the strict persist extension",
       "strict_persist_check", &C::strictPersistCheck, true);
    sw("--no-perf-bugs",
       "do not report performance bugs (redundant flush/TX_ADD)",
       "report_performance_bugs", &C::reportPerformanceBugs, false);
    sw("--crash-image",
       "post-failure stage sees a realistic crash image "
       "(unpersisted writes dropped) instead of the paper's "
       "keep-everything copy",
       "crash_image_mode", &C::crashImageMode, true);
    sizef("--max-failpoints", "<n>", "cap injected failure points",
          "max_failure_points", &C::maxFailurePoints);
    strf("--backend", "<full|delta|batched>",
         "campaign backend: \"full\" copies the whole exec pool per "
         "failure point, \"delta\" (default) restores only dirtied "
         "pages, \"batched\" additionally folds failure points with "
         "identical frontier signatures into one representative "
         "recovery run",
         "backend", &C::backend, nullptr);
    alias("--no-delta", "deprecated alias for --backend=full",
          &C::backend, "full");
    strf("--pm-model", "<clwb|eadr>",
         "persistency model: \"clwb\" (default) requires explicit "
         "writeback + fence for durability, \"eadr\" is flush-free "
         "(eADR/CXL: stores are durable on arrival, flushes are "
         "no-ops and flush-omission is not a bug class)",
         "pm_model", &C::pmModel, nullptr);
    sizef("--delta-page", "<bytes>",
          "delta restore granularity (power of two >= 64, "
          "default 4096)",
          "delta_page_size", &C::deltaPageSize);
    sizef("--delta-checkpoint", "<n>",
          "full-copy resync after <n> delta restores (0 = only at "
          "chunk starts, default 64)",
          "delta_checkpoint_interval", &C::deltaCheckpointInterval);
    sw("--no-stats", "skip stat collection", "collect_stats",
       &C::collectStats, false);
    strf("--mutate", "[=<ops>]",
         "run a scored fault-injection campaign; <ops> is \"all\" "
         "(default), \"quick\", or a comma list of drop_flush, "
         "drop_fence, demote_flush, skip_tx_add, commit_before_data, "
         "stale_backup",
         "mutate_ops", &C::mutateOps, "all");
    sizef("--mutation-seed", "<n>",
          "seed for deterministic mutant subsampling (default 42)",
          "mutation_seed", &C::mutationSeed);
    sizef("--mutation-cap", "<n>",
          "cap mutants per operator (0 = run every enumerated one)",
          "mutation_max_per_op", &C::mutationMaxPerOp);
    strf("--oracle", "[=exhaustive|sample:<n>]",
         "cross-check the detector against the crash-state "
         "enumeration oracle (exhaustive below the frontier limit, "
         "<n> seeded-random legal subsets per failure point above)",
         "oracle_mode", &C::oracleMode, "exhaustive");
    sizef("--oracle-frontier", "<n>",
          "exhaustive-enumeration bound on in-flight writes per "
          "failure point (default 8)",
          "oracle_frontier_limit", &C::oracleFrontierLimit);
    strf("--oracle-artifacts", "<dir>",
         "write replayable disagreement artifacts (pre-trace + "
         "failure point + subset mask) into <dir>",
         "oracle_artifact_dir", &C::oracleArtifactDir, nullptr);
    strf("--crash-states", "<anchor|sample:<n>|exhaustive>",
         "crash-state exploration per failure point: \"anchor\" "
         "(default) runs recovery only on the all-updates image, "
         "\"sample:<n>\" additionally on up to <n> seeded-random "
         "legal persisted subsets of the write frontier, "
         "\"exhaustive\" on every legal subset within the "
         "--oracle-frontier bound",
         "crash_states", &C::crashStates, nullptr);
    sizef("--crash-seed", "<n>",
          "seed for the per-failure-point crash-state sampler "
          "(default 42)",
          "crash_states_seed", &C::crashStatesSeed);
    strf("--lint", "[=<rules>]",
         "run the static lint pass over the pre-failure trace; "
         "<rules> is \"all\" (default) or a comma list of XL01..XL08 "
         "ids or names (redundant_writeback, duplicate_tx_add, ...)",
         "lint_rules", &C::lintRules, "all");
    strf("--fix", "[=<id|all>]",
         "run the repair advisor: synthesize a repair plan per "
         "finding/lint diagnostic, apply each as an inverse mutation "
         "and machine-check it by re-running the campaign; <id> "
         "limits checking to one finding (\"F3\") or plan (\"R2\")",
         "fix_targets", &C::fixTargets, "all");
    alias("--lint-prune", "deprecated alias for --backend=batched",
          &C::backend, "batched");
    sw("--elide-same-value",
       "drop trace entries for stores that write back the bytes "
       "already in memory (Jaaru-style; cannot change any crash "
       "image, but also hides findings anchored on such writes)",
       "elide_same_value_writes", &C::elideSameValueWrites, true);
    sw("--live",
       "feed the live per-second telemetry registry during the "
       "campaign (off by default; implied by --live-port and "
       "--live-jsonl)",
       "live_telemetry", &C::liveTelemetry, true);
    sizef("--live-port", "<port>",
          "serve live telemetry on 127.0.0.1:<port>: Prometheus "
          "text /metrics and JSON /snapshot",
          "live_port", &C::livePort);
    strf("--live-jsonl", "<file>",
         "stream one live-snapshot JSON line per second (plus a "
         "final one) to <file>",
         "live_jsonl", &C::liveJsonlPath, nullptr);

    return t;
}

} // namespace

const std::vector<ConfigFlagDesc> &
detectorFlagTable()
{
    static const std::vector<ConfigFlagDesc> table = buildTable();
    return table;
}

const ConfigFlagDesc *
findDetectorFlag(const char *flag)
{
    for (const auto &d : detectorFlagTable()) {
        if (std::strcmp(d.flag, flag) == 0)
            return &d;
    }
    return nullptr;
}

void
applyDetectorFlag(const ConfigFlagDesc &d, DetectorConfig &cfg,
                  const char *value)
{
    if (d.boolField) {
        cfg.*(d.boolField) = d.boolValue;
        return;
    }
    if (d.stringField) {
        if (!value)
            value = d.impliedValue;
        if (!value)
            panic("flag %s requires a value", d.flag);
        if (d.stringField == &DetectorConfig::backend) {
            BackendMode m;
            if (!DetectorConfig::parseBackend(value, m)) {
                panic("flag %s: unknown backend \"%s\" (expected "
                      "full, delta or batched)",
                      d.flag, value);
            }
        }
        if (d.stringField == &DetectorConfig::pmModel) {
            PersistencyModel m;
            if (!DetectorConfig::parsePmModel(value, m)) {
                panic("flag %s: unknown persistency model \"%s\" "
                      "(expected clwb or eadr)",
                      d.flag, value);
            }
        }
        if (d.stringField == &DetectorConfig::crashStates) {
            bool exhaustive = false;
            std::size_t n = 0;
            if (!DetectorConfig::parseCrashStates(value, exhaustive,
                                                  n)) {
                panic("flag %s: bad crash-states mode \"%s\" "
                      "(expected anchor, sample:<n> or exhaustive)",
                      d.flag, value);
            }
        }
        cfg.*(d.stringField) = value;
        return;
    }
    if (!value)
        panic("flag %s requires a value", d.flag);
    if (d.uintField) {
        cfg.*(d.uintField) =
            static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (d.sizeField) {
        cfg.*(d.sizeField) = std::strtoul(value, nullptr, 10);
    }
}

std::string
detectorFlagHelp()
{
    std::string s;
    for (const auto &d : detectorFlagTable()) {
        std::string head = d.flag;
        if (d.arg) {
            // Optional values attach to the flag ("--mutate[=<ops>]").
            if (!d.impliedValue)
                head += ' ';
            head += d.arg;
        }
        s += strprintf("  %-22s %s\n", head.c_str(), d.help);
    }
    return s;
}

void
writeConfigJson(const DetectorConfig &cfg, obs::JsonWriter &w)
{
    w.beginObject();
    for (const auto &d : detectorFlagTable()) {
        if (d.alias)
            continue;
        if (d.boolField)
            w.field(d.jsonKey, cfg.*(d.boolField));
        else if (d.uintField)
            w.field(d.jsonKey, cfg.*(d.uintField));
        else if (d.sizeField)
            w.field(d.jsonKey,
                    static_cast<std::uint64_t>(cfg.*(d.sizeField)));
        else if (d.stringField)
            w.field(d.jsonKey, cfg.*(d.stringField));
    }
    w.endObject();
}

} // namespace xfd::core
