#include "core/prefailure_checker.hh"

#include <cstring>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.hh"
#include "trace/runtime.hh"

namespace xfd::core
{

const char *
preFailureKindName(PreFailureFinding::Kind k)
{
    switch (k) {
      case PreFailureFinding::Kind::UnpersistedAtEnd:
        return "UNPERSISTED AT END";
      case PreFailureFinding::Kind::UnloggedTxWrite:
        return "UNLOGGED TX WRITE";
      case PreFailureFinding::Kind::RedundantFlush:
        return "REDUNDANT FLUSH";
    }
    return "?";
}

std::string
PreFailureFinding::str() const
{
    return strprintf("[%s] addr=%#llx size=%u\n  writer: %s",
                     preFailureKindName(kind),
                     static_cast<unsigned long long>(addr), size,
                     writer.str().c_str());
}

PreFailureChecker::PreFailureChecker(AddrRange pool) : poolRange(pool)
{
}

namespace
{

/** 8-byte tracking granule for the baseline (PMTest uses words). */
constexpr unsigned gran = 8;

enum class CellState : std::uint8_t { Clean, Modified, Pending };

struct CellInfo
{
    CellState state = CellState::Clean;
    std::uint32_t writerSeq = 0;
    bool inRoi = false;
};

} // namespace

std::vector<PreFailureFinding>
PreFailureChecker::check(const trace::TraceBuffer &pre)
{
    using trace::Op;

    std::unordered_map<std::uint64_t, CellInfo> cells;
    std::vector<std::uint64_t> pending;
    /** Ranges covered by TX_ADD in the open transaction. */
    std::vector<AddrRange> txAdds;
    bool tx_open = false;

    std::vector<PreFailureFinding> findings;
    std::set<std::string> dedupe;
    auto report = [&](PreFailureFinding::Kind kind, Addr a,
                      std::uint32_t size, trace::SrcLoc loc) {
        std::string key = strprintf("%d|%s:%u", static_cast<int>(kind),
                                    loc.file, loc.line);
        if (!dedupe.insert(std::move(key)).second)
            return;
        findings.push_back(PreFailureFinding{kind, a, size, loc});
    };

    auto cell_of = [&](Addr a) { return (a - poolRange.begin) / gran; };

    for (const auto &e : pre) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite: {
            if (e.has(trace::flagImageOnly))
                break;
            bool user = e.has(trace::flagInRoi) &&
                        !e.has(trace::flagInternal) &&
                        !e.has(trace::flagSkipDetection);
            // R2: user store inside a transaction must be snapshotted.
            if (user && tx_open) {
                bool covered = false;
                for (const auto &r : txAdds) {
                    if (r.begin <= e.addr &&
                        e.addr + e.size <= r.end) {
                        covered = true;
                        break;
                    }
                }
                if (!covered) {
                    report(PreFailureFinding::Kind::UnloggedTxWrite,
                           e.addr, e.size, e.loc);
                }
            }
            std::uint64_t first = cell_of(e.addr);
            std::uint64_t last = cell_of(e.addr + e.size - 1);
            for (std::uint64_t c = first; c <= last; c++) {
                CellInfo &ci = cells[c];
                ci.state = e.op == Op::NtWrite ? CellState::Pending
                                               : CellState::Modified;
                ci.writerSeq = e.seq;
                ci.inRoi = user;
                if (e.op == Op::NtWrite)
                    pending.push_back(c);
            }
            break;
          }
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush: {
            std::uint64_t first = cell_of(e.addr);
            std::uint64_t last = cell_of(e.addr + e.size - 1);
            bool any_modified = false;
            for (std::uint64_t c = first; c <= last; c++) {
                auto it = cells.find(c);
                if (it != cells.end() &&
                    it->second.state == CellState::Modified) {
                    any_modified = true;
                    it->second.state = CellState::Pending;
                    pending.push_back(c);
                }
            }
            if (!any_modified && e.has(trace::flagInRoi) &&
                !e.has(trace::flagInternal) &&
                !e.has(trace::flagSkipDetection)) {
                report(PreFailureFinding::Kind::RedundantFlush, e.addr,
                       e.size, e.loc);
            }
            break;
          }
          case Op::Sfence:
          case Op::Mfence:
            for (std::uint64_t c : pending) {
                auto it = cells.find(c);
                if (it != cells.end() &&
                    it->second.state == CellState::Pending) {
                    it->second.state = CellState::Clean;
                }
            }
            pending.clear();
            break;
          case Op::Free:
            // Freed memory is exempt.
            for (std::uint64_t c = cell_of(e.addr);
                 c <= cell_of(e.addr + e.size - 1); c++) {
                cells.erase(c);
            }
            break;
          case Op::TxAdd:
            txAdds.push_back(AddrRange{e.addr, e.addr + e.size});
            break;
          case Op::LibCall:
            if (std::strcmp(e.label, trace::labels::txBegin) == 0) {
                tx_open = true;
                txAdds.clear();
            } else if (std::strcmp(e.label,
                                   trace::labels::txCommit) == 0 ||
                       std::strcmp(e.label,
                                   trace::labels::txAbort) == 0) {
                tx_open = false;
                txAdds.clear();
            }
            break;
          default:
            break;
        }
    }

    // R1: RoI stores never written back by the end of execution.
    for (const auto &[c, ci] : cells) {
        if (ci.state != CellState::Clean && ci.inRoi) {
            report(PreFailureFinding::Kind::UnpersistedAtEnd,
                   poolRange.begin + c * gran, gran,
                   pre[ci.writerSeq].loc);
        }
    }
    return findings;
}

} // namespace xfd::core
