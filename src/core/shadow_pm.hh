/**
 * @file
 * Shadow persistent memory — the backend's model of PM state.
 *
 * Per paper §5.4, the shadow PM records for every PM location:
 *  - a persistence state {Unmodified, Modified, WritebackPending,
 *    Persisted} driven by WRITE/CLWB/SFENCE (Fig. 9),
 *  - a consistency state versus the program's commit variables
 *    (Fig. 10), which we evaluate with the paper's timestamp condition
 *    (3): a location m in commit set Sx is consistent iff
 *    T(Cx,n-1) <= Tlast(m) < T(Cx,n),
 *  - the timestamp Tlast of its last modification, where the global
 *    timestamp increments at each ordering point.
 *
 * The pre-failure trace is replayed incrementally (state carries over
 * from one failure point to the next); each post-failure trace is
 * replayed against a lightweight overlay so the pre-failure state is
 * never disturbed.
 */

#ifndef XFD_CORE_SHADOW_PM_HH
#define XFD_CORE_SHADOW_PM_HH

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/bug_report.hh"
#include "core/config.hh"
#include "obs/stats.hh"
#include "trace/entry.hh"

namespace xfd::core
{

/** Persistence state of a shadow cell (paper Fig. 9). */
enum class PersistState : std::uint8_t
{
    Unmodified,       ///< never written inside the traced execution
    Modified,         ///< written; no writeback issued
    WritebackPending, ///< CLWB/CLFLUSH issued; fence not yet reached
    Persisted,        ///< written back and fenced
};

/** @return short name of @p s. */
const char *persistStateName(PersistState s);

/**
 * Counters over the persistence-FSM edges of paper Fig. 9, collected
 * while the pre-failure trace is replayed into the shadow PM. One
 * entry per (from, to) state pair, plus the yellow redundant-flush
 * edges and fence retirement counts.
 */
struct ShadowFsmCounters
{
    static constexpr std::size_t numStates = 4;

    /** Cell transitions: edge[from][to]. */
    std::uint64_t edge[numStates][numStates] = {};
    /** Flushes of lines holding no modified data (perf-bug edges). */
    std::uint64_t redundantFlushes = 0;
    /** Fences observed. */
    std::uint64_t fences = 0;
    /** Fences that retired at least one pending writeback. */
    std::uint64_t orderingFences = 0;

    std::uint64_t
    edgeCount(PersistState from, PersistState to) const
    {
        return edge[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(to)];
    }
};

/** Outcome of checking one post-failure read. */
enum class ReadCheck : std::uint8_t
{
    Ok,            ///< consistent (or untouched / overwritten post-failure)
    Benign,        ///< read of a commit variable: benign cross-failure race
    Race,          ///< cross-failure race (not guaranteed persisted)
    SemanticBug,   ///< cross-failure semantic bug (persisted but stale or
                   ///< uncommitted per the commit-variable protocol)
    Skipped,       ///< first-read-only optimization suppressed the check
};

/** Detailed result of a post-failure read check. */
struct ReadCheckResult
{
    ReadCheck verdict = ReadCheck::Ok;
    /** First offending cell address. */
    Addr addr = 0;
    /** Pre-failure trace seq of the last writer (or allocation). */
    std::uint32_t writerSeq = noSeq;
    /** True when the location was allocated but never initialized. */
    bool uninitialized = false;
    /** True when semantically inconsistent because stale (vs. uncommitted). */
    bool stale = false;

    static constexpr std::uint32_t noSeq = 0xffffffffu;
};

/**
 * The shadow PM. One instance lives for a whole detection campaign;
 * pre-failure replay mutates it, post-failure replay reads it through
 * an overlay.
 */
class ShadowPM
{
  public:
    ShadowPM(AddrRange pool, const DetectorConfig &cfg);

    /**
     * @name Pre-failure replay
     * @{
     */

    /** Apply a pre-failure write of [a, a+n), trace position @p seq. */
    void preWrite(Addr a, std::size_t n, std::uint32_t seq,
                  bool nonTemporal);

    /**
     * Apply a CLWB/CLFLUSH of one cache line.
     *
     * @param repair true for entries carrying flagRepair (flushes
     *        inserted by a repair plan, xfdetect --fix). A repair
     *        flush that cleans a line exonerates the next program
     *        flush of that line from the redundant-flush verdict —
     *        the program flush was not redundant in the unrepaired
     *        execution.
     * @return true when the flush was redundant (no modified data in
     *         the line) — a performance bug (Fig. 9 yellow edges).
     */
    bool preFlush(Addr line, std::uint32_t seq, bool repair = false);

    /** Apply an SFENCE/MFENCE: pending writebacks become persisted. */
    void preFence();

    /** Record a persistent allocation: cells become uninitialized. */
    void preAlloc(Addr a, std::size_t n, std::uint32_t seq);

    /** Record a deallocation: cells return to Unmodified. */
    void preFree(Addr a, std::size_t n);

    /** Register a commit variable at [a, a+n). Idempotent. */
    void registerCommitVar(Addr a, std::size_t n);

    /** Associate [a, a+n) with the commit variable at @p cv. */
    void registerCommitRange(Addr cv, Addr a, std::size_t n);

    /** @} */

    /**
     * @name Post-failure replay
     * @{
     */

    /**
     * Reset the post-failure overlay (call per failure point).
     * Commit-variable registrations made while the overlay is active
     * are scoped to it: post-failure code may allocate objects at
     * addresses the pre-failure execution later uses differently.
     */
    void beginPostReplay();

    /** Drop post-replay-scoped state (registrations). */
    void endPostReplay();

    /**
     * Apply a post-failure write: the location is overwritten, so
     * later post-failure reads of it are unconditionally fine (§5.4:
     * inconsistencies it introduces are caught when this code later
     * runs as the pre-failure stage).
     */
    void postWrite(Addr a, std::size_t n);

    /** Check a post-failure read of [a, a+n) (paper Fig. 11 rules). */
    ReadCheckResult checkPostRead(Addr a, std::size_t n);

    /** @} */

    /** Current global timestamp (increments per ordering point). */
    std::int32_t timestamp() const { return ts; }

    /** Number of registered commit variables. */
    std::size_t commitVarCount() const { return commitVars.size(); }

    /** Statistics: post-read checks actually performed / elided. */
    std::size_t checksPerformed() const { return nChecks; }
    std::size_t checksSkipped() const { return nSkipped; }

    /** Persistence-FSM transition counters (Fig. 9 edges). */
    const ShadowFsmCounters &fsmCounters() const { return fsm; }

    /** Introspection for tests: persistence state of address @p a. */
    PersistState persistStateOf(Addr a) const;

    /** Introspection for tests: Tlast of address @p a (-1 if never). */
    std::int32_t tlastOf(Addr a) const;

  private:
    /** Per-cell record (granularity cfg.granularity bytes). */
    struct Cell
    {
        PersistState ps = PersistState::Unmodified;
        std::uint8_t flags = 0;
        std::int32_t tlast = -1;
        std::uint32_t lastWriterSeq = ReadCheckResult::noSeq;
    };

    enum CellFlags : std::uint8_t
    {
        cellUninit = 1 << 0,   ///< allocated, never explicitly written
    };

    /** Post-overlay flags. */
    enum PostFlags : std::uint8_t
    {
        postOverwritten = 1 << 0,
        postChecked = 1 << 1,
    };

    /** A commit variable and its associated address set Sx. */
    struct CommitVar
    {
        AddrRange var;
        std::vector<AddrRange> ranges;
        std::int32_t tlast = -1;    ///< ts of the last commit write
        std::int32_t tprelast = -1; ///< ts of the pre-last commit write
    };

    static constexpr std::size_t cellsPerPage = 4096;
    using Page = std::array<Cell, cellsPerPage>;
    /** Post-overlay flags, paged like the pre-state cells. */
    using PostPage = std::array<std::uint8_t, cellsPerPage>;

    std::uint64_t
    cellIndex(Addr a) const
    {
        return (a - poolRange.begin) / gran;
    }

    /** Cell count covering [a, a+n). */
    std::uint64_t
    cellCount(Addr a, std::size_t n) const
    {
        if (n == 0)
            return 0;
        return cellIndex(a + n - 1) - cellIndex(a) + 1;
    }

    Cell &cellAt(std::uint64_t idx);
    const Cell *findCell(std::uint64_t idx) const;

    /** Pre-state page holding cell @p idx, created on demand. */
    Page &pageAt(std::uint64_t idx);

    /** Pre-state page holding cell @p idx, or nullptr. */
    Page *findPage(std::uint64_t idx);

    /** Post-overlay page holding cell @p idx, created zeroed. */
    PostPage &postPageAt(std::uint64_t idx);

    /** The commit variable covering @p a, or nullptr. */
    const CommitVar *coveringVar(Addr a) const;

    /** Whether @p a lies inside any commit variable itself. */
    bool isCommitVarAddr(Addr a) const;

    /** Evaluate paper condition (3) for a cell under @p var. */
    bool consistentUnder(const Cell &c, const CommitVar &var) const;

    /** FSM edge bookkeeping; compiles to nothing under XFD_STATS_NOOP. */
    void
    noteEdge(PersistState from, PersistState to)
    {
        if (obs::statsCompiledIn && collect) {
            fsm.edge[static_cast<std::size_t>(from)]
                    [static_cast<std::size_t>(to)]++;
        }
    }

    AddrRange poolRange;
    const DetectorConfig &cfg;
    unsigned gran;
    /** Cached cfg.collectStats (hot-path branch on a plain bool). */
    bool collect;
    /**
     * Cached cfg.eadrOn(). Under the flush-free eADR/CXL model every
     * store is durable on arrival: writes land directly in Persisted,
     * flushes are no-ops (neither required nor redundant), and the
     * Modified/WritebackPending states are reachable only through
     * allocation (uninitialized cells).
     */
    bool eadr;
    ShadowFsmCounters fsm;
    std::int32_t ts = 0;

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages;
    /** Cells with a writeback pending, resolved at the next fence. */
    std::vector<std::uint64_t> pendingCells;
    /**
     * Lines last cleaned by an internal (repair-inserted) flush. Each
     * entry exonerates at most one subsequent program flush of the
     * line from the redundant-flush performance verdict. Bounded by
     * the number of repair insertions — tiny in practice.
     */
    std::vector<Addr> repairCleanLines;
    std::vector<CommitVar> commitVars;
    /** commitVars as of beginPostReplay, restored by endPostReplay. */
    std::vector<CommitVar> savedCommitVars;
    bool inPostReplay = false;
    /**
     * Post-overlay flag pages, cleared per failure point. Paged so the
     * classify stage pays one hash lookup per page run instead of one
     * per byte cell — recovery code touches thousands of cells per
     * point, which made the flat map the dominant classify cost.
     */
    std::unordered_map<std::uint64_t, std::unique_ptr<PostPage>> postPages;

    std::size_t nChecks = 0;
    std::size_t nSkipped = 0;
};

} // namespace xfd::core

#endif // XFD_CORE_SHADOW_PM_HH
