#include "core/explain.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace xfd::core
{

namespace
{

/** Render one finding's chain, paper-figure style. */
std::string
explainOne(const BugReport &b, std::size_t idx,
           const trace::TraceBuffer *pre)
{
    std::string s = strprintf("=== F%zu: %s ===\n", idx + 1,
                              bugTypeName(b.type));
    if (b.addr || b.size) {
        s += strprintf("  location: addr=%#llx size=%u\n",
                       static_cast<unsigned long long>(b.addr),
                       b.size);
    }
    if (b.writer.line)
        s += strprintf("  writer:   %s\n", b.writer.str().c_str());
    if (b.reader.line)
        s += strprintf("  reader:   %s\n", b.reader.str().c_str());
    if (!b.note.empty())
        s += strprintf("  note:     %s\n", b.note.c_str());

    s += strprintf("  exposed at failure point #%u", b.failurePoint);
    if (pre && b.failurePoint < pre->size()) {
        s += strprintf(" (%s)",
                       (*pre)[b.failurePoint].loc.str().c_str());
    }
    s += strprintf(", seen %u time(s)\n", b.occurrences);

    if (b.frontierSeqs.empty()) {
        s += "  frontier: (none — not tied to a failure point)\n";
        return s;
    }

    bool partial = b.persistedMask.size() && !b.persistedMask.all();
    s += strprintf("  frontier: %zu write(s) in flight at the "
                   "failure point (mask %s%s)\n",
                   b.frontierSeqs.size(),
                   b.persistedMask.toHex().c_str(),
                   partial ? ", partial crash image" : "");
    if (partial) {
        s += "  only a --crash-states partial candidate reaches this "
             "state;\n  the all-updates anchor image never executes "
             "it\n";
    }
    for (std::size_t i = 0; i < b.frontierSeqs.size(); i++) {
        std::uint32_t seq = b.frontierSeqs[i];
        bool persisted = b.persistedMask.test(i);
        std::string loc;
        if (pre && seq < pre->size())
            loc = strprintf("  %s", (*pre)[seq].loc.str().c_str());
        s += strprintf("    [%c] seq %u%s\n", persisted ? 'P' : '-',
                       seq, loc.c_str());
    }
    s += "  [P] = present in the post-failure image, [-] = dropped\n";
    return s;
}

} // namespace

std::string
renderExplain(const CampaignResult &res, const std::string &selector,
              const trace::TraceBuffer *pre, std::string *err)
{
    if (res.bugs.empty()) {
        if (err)
            *err = "the campaign produced no findings";
        return "";
    }

    if (selector == "all") {
        std::string s;
        for (std::size_t i = 0; i < res.bugs.size(); i++)
            s += explainOne(res.bugs[i], i, pre);
        return s;
    }

    const char *digits = selector.c_str();
    if (*digits == 'F' || *digits == 'f')
        digits++;
    char *endp = nullptr;
    unsigned long n = std::strtoul(digits, &endp, 10);
    if (endp == digits || *endp != '\0' || n == 0 ||
        n > res.bugs.size()) {
        if (err) {
            *err = strprintf(
                "no such finding \"%s\" (have F1..F%zu, or \"all\")",
                selector.c_str(), res.bugs.size());
        }
        return "";
    }
    return explainOne(res.bugs[n - 1], n - 1, pre);
}

} // namespace xfd::core
