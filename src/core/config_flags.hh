/**
 * @file
 * Descriptor table for DetectorConfig command-line flags.
 *
 * One row per DetectorConfig field that is user-settable from
 * xfdetect. The same table drives three things that used to drift
 * apart (a flag with no help line, a config knob missing from the
 * stats export):
 *
 *  - flag parsing        (findDetectorFlag + applyDetectorFlag),
 *  - the --help text     (detectorFlagHelp),
 *  - the "config" echo inside xfd-stats-v1 (writeConfigJson).
 */

#ifndef XFD_CORE_CONFIG_FLAGS_HH
#define XFD_CORE_CONFIG_FLAGS_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/config.hh"

namespace xfd::obs
{
class JsonWriter;
}

namespace xfd::core
{

/**
 * Maps one command-line flag onto one DetectorConfig field. Exactly
 * one of the member pointers is non-null; it selects the field type.
 */
struct ConfigFlagDesc
{
    /** Flag spelling, e.g. "--no-elision". */
    const char *flag;
    /** Value placeholder for --help ("<n>"), null for switches. */
    const char *arg;
    /** One-line help text. */
    const char *help;
    /** Key in the xfd-stats-v1 "config" object. */
    const char *jsonKey;

    bool DetectorConfig::*boolField = nullptr;
    /** Value a bool switch stores (false for --no-* flags). */
    bool boolValue = true;
    unsigned DetectorConfig::*uintField = nullptr;
    std::size_t DetectorConfig::*sizeField = nullptr;
    std::string DetectorConfig::*stringField = nullptr;

    /**
     * For flags whose value is optional ("--mutate[=<ops>]"): the
     * string stored when the flag appears bare. Such flags never
     * consume the next argv word; an explicit value arrives as
     * --flag=value.
     */
    const char *impliedValue = nullptr;

    /**
     * Deprecated alias row: parses like any other row (storing into
     * the same field as its canonical spelling) but is skipped by the
     * xfd-stats-v1 "config" echo so the canonical key appears exactly
     * once. The removal schedule lives in DESIGN.md conventions.
     */
    bool alias = false;

    bool
    takesValue() const
    {
        return arg != nullptr && impliedValue == nullptr;
    }
};

/** The full flag table, one row per user-settable config field. */
const std::vector<ConfigFlagDesc> &detectorFlagTable();

/** @return the row for @p flag, or null if no such flag exists. */
const ConfigFlagDesc *findDetectorFlag(const char *flag);

/**
 * Apply one parsed flag to @p cfg. @p value is the argument string
 * for value-taking rows (parsed base-10), ignored for switches.
 */
void applyDetectorFlag(const ConfigFlagDesc &d, DetectorConfig &cfg,
                       const char *value);

/** Formatted help lines for every row (the --help detector section). */
std::string detectorFlagHelp();

/**
 * Emit the current value of every table row as one JSON object — the
 * "config" echo of the xfd-stats-v1 document.
 */
void writeConfigJson(const DetectorConfig &cfg, obs::JsonWriter &w);

} // namespace xfd::core

#endif // XFD_CORE_CONFIG_FLAGS_HH
