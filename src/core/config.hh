/**
 * @file
 * Detection configuration knobs.
 *
 * Defaults match the paper's described behaviour; the non-default
 * settings exist for the ablation benchmarks (see DESIGN.md §5).
 */

#ifndef XFD_CORE_CONFIG_HH
#define XFD_CORE_CONFIG_HH

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <string>

namespace xfd::core
{

/**
 * How the campaign backend restores and schedules failure points.
 * Parsed from DetectorConfig::backend ("full", "delta", "batched").
 */
enum class BackendMode
{
    /** Full-image copy before every post-failure run (ablation). */
    Full,
    /** Page-granular delta restores, one run per failure point. */
    Delta,
    /**
     * Delta restores plus frontier-signature batching: failure
     * points whose lint signature proves them equivalent share one
     * representative recovery run, and groups are pulled dynamically
     * by the worker pool.
     */
    Batched,
};

/**
 * Persistency model the shadow PM (and everything downstream of it)
 * assumes of the hardware. Parsed from DetectorConfig::pmModel
 * ("clwb", "eadr").
 */
enum class PersistencyModel
{
    /**
     * ADR-era x86: stores persist only after an explicit CLWB/CLFLUSH
     * writeback followed by an SFENCE (the paper's model, Fig. 9).
     */
    Clwb,
    /**
     * eADR / CXL flush-free persistency: the persistence domain
     * covers the caches, so every store is durable on arrival.
     * Flush-omission ceases to be a bug class; ordering and semantic
     * (commit-protocol) bugs remain.
     */
    Eadr,
};

/**
 * Tuning and ablation switches for a detection campaign.
 *
 * This struct is the single source of truth for detector knobs: every
 * field has a row in the descriptor table in config_flags.cc, which
 * drives xfdetect's flag parsing, its --help text, and the config
 * echo inside the xfd-stats-v1 JSON document. Adding a field without
 * a table row fails the DetectorFlagTable coverage test.
 */
struct DetectorConfig
{
    /**
     * Paper optimization (2): do not inject a failure point between two
     * ordering points with no PM operations in between.
     */
    bool elideEmptyFailurePoints = true;

    /**
     * Paper optimization (1): check only the first post-failure read of
     * each location modified pre-failure; later reads give the same
     * answer.
     */
    bool firstReadOnly = true;

    /**
     * Inject failure points at ordering points inside PM-library code.
     * The paper injects one failure point per fence-bearing library
     * function; tracking every internal fence is strictly finer
     * coverage (it is how the pool-creation bug, §6.3.2 bug 4, shows
     * up inside the library itself).
     */
    bool failureAtInternalFences = true;

    /** Shadow-PM cell granularity in bytes (1, 2, 4 or 8). */
    unsigned granularity = 1;

    /**
     * Extension beyond the paper: when set, a location covered by a
     * commit variable must *also* be persisted for a post-failure read
     * to pass; the paper's check order ("reading a consistent location
     * is certainly bug-free") can miss an unflushed-but-committed
     * write.
     */
    bool strictPersistCheck = false;

    /** Report performance bugs (redundant flushes, duplicate TX_ADD). */
    bool reportPerformanceBugs = true;

    /**
     * Extension beyond the paper: build the post-failure PM image the
     * way a real crash would leave it — writes that were not flushed
     * *and* fenced by the failure point are absent (they revert to
     * their last persisted value). The paper instead copies all
     * updates and relies on the shadow PM (footnote 3); that finds
     * races that this mode's single materialization might mask, while
     * this mode makes the post-failure stage *behave* like a real
     * recovery (pmreorder/Yat-style). Commit-variable semantic checks
     * are disabled in this mode: they assume recovery observes the
     * latest commit write, which only the all-updates image
     * guarantees.
     */
    bool crashImageMode = false;

    /** Upper bound on injected failure points (0 = unlimited). */
    std::size_t maxFailurePoints = 0;

    /**
     * Backend descriptor: how exec pools are restored and failure
     * points scheduled. One of
     *
     *  - "full":    full-image copy before every post-failure run
     *               (the ablation baseline, ex --no-delta);
     *  - "delta":   page-granular delta restores, one recovery run
     *               per failure point (the former default);
     *  - "batched": delta restores plus frontier-signature batching —
     *               failure points the lint pass proves equivalent
     *               (same ordering-point location, identical frontier
     *               signature) fold into one representative run, and
     *               the worker pool pulls groups dynamically
     *               (subsumes the former --lint-prune switch).
     *
     * Findings are byte-identical across all three modes; the
     * equivalence suites (test_delta_image, test_batch_sched) and the
     * oracle differential campaign enforce that.
     */
    std::string backend = "delta";

    /**
     * Persistency-model descriptor: what the hardware guarantees
     * about store durability. One of
     *
     *  - "clwb": ADR-era x86 — stores persist only after an explicit
     *            writeback (CLWB/CLFLUSH) plus SFENCE. The paper's
     *            model and the default.
     *  - "eadr": eADR / CXL flush-free persistency — the persistence
     *            domain covers the caches, so stores are durable on
     *            arrival. Flushes become no-ops (neither required nor
     *            reported as redundant) and flush-omission findings
     *            vanish; ordering and commit-protocol semantic bugs
     *            are preserved.
     *
     * Threads through the shadow-PM FSM, the crash-image builder, the
     * failure planner, the lint frontier rules, and the oracle's
     * per-cell tail model; the oracle differential campaign enforces
     * agreement under both models.
     */
    std::string pmModel = "clwb";

    /** Delta restore granularity in bytes (power of two >= 64). */
    std::size_t deltaPageSize = 4096;

    /**
     * Full-image checkpoint cadence: after this many consecutive
     * delta restores, resync with one full copy so error recovery and
     * drift stay bounded (0 = checkpoint only at chunk starts).
     */
    std::size_t deltaCheckpointInterval = 64;

    /**
     * Collect observability counters (shadow-FSM transition counts,
     * per-op trace volumes, latency histograms). Increments are plain
     * adds, but perf-sensitive callers can turn them off; defining
     * XFD_STATS_NOOP (CMake option XFD_DISABLE_STATS) compiles them
     * out entirely.
     */
    bool collectStats = true;

    /**
     * Mutation campaign (src/mutate): empty = off. "all" enables
     * every operator, "quick" the fast drop_flush/drop_fence pair;
     * otherwise a comma-separated operator list. When set, xfdetect
     * runs a scored fault-injection campaign instead of a single
     * detection campaign.
     */
    std::string mutateOps;

    /** Seed for deterministic mutant subsampling (with a cap set). */
    std::size_t mutationSeed = 42;

    /** Cap on mutants per operator (0 = run every enumerated one). */
    std::size_t mutationMaxPerOp = 0;

    /**
     * Crash-state oracle (src/oracle): empty = off. "exhaustive"
     * enumerates every legal persisted-subset of the crash image at
     * each failure point (frontiers larger than oracleFrontierLimit
     * fall back to seeded sampling); "sample:<n>" caps candidates at
     * <n> seeded-random legal subsets per failure point. When set,
     * xfdetect cross-checks the detector's per-failure-point verdicts
     * against the oracle's and reports disagreements.
     */
    std::string oracleMode;

    /**
     * Exhaustive-enumeration bound: a failure point with more
     * in-flight write events than this is sampled instead of
     * enumerated (the state space is 2^frontier).
     */
    std::size_t oracleFrontierLimit = 8;

    /**
     * Directory for replayable disagreement artifacts (serialized
     * pre-trace plus one JSON descriptor per disagreeing failure
     * point). Empty = do not write artifacts.
     */
    std::string oracleArtifactDir;

    /**
     * Crash-state exploration mode: which candidate crash images the
     * driver executes recovery on per failure point. One of
     *
     *  - "anchor" (or empty): only the paper's footnote-3 all-updates
     *    image — the classic single-candidate campaign;
     *  - "sample:<n>": additionally up to <n> seeded-random legal
     *    persisted-subsets of the write frontier (per-cell prefix
     *    closure, same enumeration as the oracle);
     *  - "exhaustive": every legal subset for frontiers within
     *    oracleFrontierLimit, sampling above it.
     *
     * Findings only reachable on a partial image carry partial-image
     * provenance (persistedMask with cleared bits) and surface as
     * campaign.crashstates.* stats. Structurally identical candidates
     * across failure points (same ordering-point location, same lint
     * frontier signature, same mask) execute once. Incompatible with
     * crashImageMode (which pins one alternative materialization);
     * under the eADR model frontiers are empty, so the mode
     * degenerates to the anchor.
     */
    std::string crashStates;

    /** Seed for the per-failure-point crash-state sampler. */
    std::size_t crashStatesSeed = 42;

    /**
     * Static lint pass (src/lint): empty = off. "all" enables every
     * rule; otherwise a comma-separated list of rule ids (XL01..XL08)
     * or names (redundant_writeback, ...). Reporting only — campaign
     * findings are unchanged.
     */
    std::string lintRules;

    /**
     * Repair advisor (src/fix): empty = off. When set, xfdetect runs
     * a fix campaign instead of a single detection campaign: the
     * broken baseline is detected and linted, a repair plan is
     * synthesized per finding/diagnostic, and each plan is applied as
     * an inverse mutation and machine-checked by re-running the
     * campaign. "all" checks every plan; a finding id ("F3") or plan
     * id ("R2") checks only the plans targeting it. Incompatible with
     * mutateOps (both repurpose the campaign loop).
     */
    std::string fixTargets;

    /**
     * Jaaru-style same-value write elision at trace-emit time: a
     * store whose bytes equal the current memory contents cannot
     * change any crash image, so the runtime drops its trace entry
     * (the pool is still written). Off by default — eliding also
     * drops any *findings* anchored on such writes (arguably false
     * positives, but a behaviour change), so it is an opt-in
     * trace-volume optimization.
     */
    bool elideSameValueWrites = false;

    /**
     * Live telemetry (src/obs/live): per-second sliding-window rate
     * counters and latency windows fed from the campaign loop,
     * snapshottable mid-run. Off by default — a campaign without
     * --live/--live-port/--live-jsonl pays nothing beyond one atomic
     * load per failure point.
     */
    bool liveTelemetry = false;

    /**
     * Serve live telemetry over HTTP on 127.0.0.1:<port> (Prometheus
     * text /metrics, JSON /snapshot). 0 = no server. Implies
     * liveTelemetry.
     */
    std::size_t livePort = 0;

    /**
     * Stream one live-snapshot JSON line per second (plus one final
     * line) to this file. Empty = off. Implies liveTelemetry.
     */
    std::string liveJsonlPath;

    /** Whether any live-telemetry output was requested. */
    bool
    liveRequested() const
    {
        return liveTelemetry || livePort != 0 ||
               !liveJsonlPath.empty();
    }

    /**
     * Parse @p s as a backend descriptor. @return true and set
     * @p mode on success, false on an unknown descriptor.
     */
    static bool
    parseBackend(const std::string &s, BackendMode &mode)
    {
        if (s == "full")
            mode = BackendMode::Full;
        else if (s == "delta" || s.empty())
            mode = BackendMode::Delta;
        else if (s == "batched")
            mode = BackendMode::Batched;
        else
            return false;
        return true;
    }

    /**
     * The parsed backend descriptor. An unknown string degrades to
     * Delta here; the driver validates and reports it at campaign
     * start.
     */
    BackendMode
    backendMode() const
    {
        BackendMode m = BackendMode::Delta;
        parseBackend(backend, m);
        return m;
    }

    /** Whether the delta-image engine is on (delta and batched). */
    bool
    deltaImagesOn() const
    {
        return backendMode() != BackendMode::Full;
    }

    /** Whether signature batching folds failure points (batched). */
    bool
    batchingOn() const
    {
        return backendMode() == BackendMode::Batched;
    }

    /**
     * Parse @p s as a persistency-model descriptor. @return true and
     * set @p model on success, false on an unknown descriptor.
     */
    static bool
    parsePmModel(const std::string &s, PersistencyModel &model)
    {
        if (s == "clwb" || s.empty())
            model = PersistencyModel::Clwb;
        else if (s == "eadr")
            model = PersistencyModel::Eadr;
        else
            return false;
        return true;
    }

    /**
     * The parsed persistency model. An unknown string degrades to
     * Clwb here; flag parsing rejects it before it can get this far.
     */
    PersistencyModel
    pmModelEnum() const
    {
        PersistencyModel m = PersistencyModel::Clwb;
        parsePmModel(pmModel, m);
        return m;
    }

    /** Whether the flush-free eADR/CXL model is selected. */
    bool
    eadrOn() const
    {
        return pmModelEnum() == PersistencyModel::Eadr;
    }

    /**
     * Parse @p s as a crash-states descriptor. @return true (setting
     * @p exhaustive / @p sampleCount for the non-anchor modes) on
     * success, false on an unknown descriptor.
     */
    static bool
    parseCrashStates(const std::string &s, bool &exhaustive,
                     std::size_t &sampleCount)
    {
        if (s.empty() || s == "anchor") {
            exhaustive = false;
            sampleCount = 0;
            return true;
        }
        if (s == "exhaustive") {
            exhaustive = true;
            return true;
        }
        if (s.rfind("sample:", 0) == 0) {
            const std::string arg = s.substr(7);
            if (arg.empty())
                return false;
            char *end = nullptr;
            unsigned long n =
                std::strtoul(arg.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || n == 0)
                return false;
            exhaustive = false;
            sampleCount = n;
            return true;
        }
        return false;
    }

    /** Whether partial crash-state exploration is requested. */
    bool
    crashStatesOn() const
    {
        return !crashStates.empty() && crashStates != "anchor";
    }
};

} // namespace xfd::core

#endif // XFD_CORE_CONFIG_HH
