#include "core/campaign_json.hh"

#include "common/logging.hh"
#include "core/config_flags.hh"
#include "obs/json.hh"
#include "obs/phase_profiler.hh"

namespace xfd::core
{

namespace
{

void
writeSrcLoc(obs::JsonWriter &w, const trace::SrcLoc &loc)
{
    w.beginObject();
    w.field("file", loc.file);
    w.field("line", static_cast<std::uint64_t>(loc.line));
    w.field("func", loc.func);
    w.endObject();
}

void
writeBug(obs::JsonWriter &w, const BugReport &b, std::size_t idx)
{
    w.beginObject();
    w.field("id", strprintf("F%zu", idx + 1));
    w.field("type", bugTypeId(b.type));
    w.field("addr", strprintf("%#llx",
                              static_cast<unsigned long long>(b.addr)));
    w.field("size", static_cast<std::uint64_t>(b.size));
    w.key("reader");
    writeSrcLoc(w, b.reader);
    w.key("writer");
    writeSrcLoc(w, b.writer);
    w.field("failure_point", static_cast<std::uint64_t>(b.failurePoint));
    w.field("occurrences", static_cast<std::uint64_t>(b.occurrences));
    w.field("note", b.note);
    if (!b.frontierSeqs.empty()) {
        w.key("provenance").beginObject();
        w.field("frontier_size",
                static_cast<std::uint64_t>(b.frontierSeqs.size()));
        w.key("frontier_seqs").beginArray();
        for (std::uint32_t seq : b.frontierSeqs)
            w.value(static_cast<std::uint64_t>(seq));
        w.endArray();
        w.field("persisted_mask", b.persistedMask.toHex());
        w.endObject();
    }
    w.endObject();
}

} // namespace

void
writeStatsJson(const CampaignResult &res,
               const obs::StatsRegistry *stats, std::ostream &os)
{
    writeStatsJson(res, nullptr, stats, os);
}

void
writeStatsJson(const CampaignResult &res, const DetectorConfig *cfg,
               const obs::StatsRegistry *stats, std::ostream &os,
               const std::vector<JsonSection> &extra)
{
    const CampaignStats &s = res.stats;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "xfd-stats-v1");

    if (cfg) {
        w.key("config");
        writeConfigJson(*cfg, w);
    }

    // The same numbers summary() prints, machine-readable.
    w.key("campaign").beginObject();
    w.field("failure_points", static_cast<std::uint64_t>(s.failurePoints));
    w.field("ordering_candidates",
            static_cast<std::uint64_t>(s.orderingCandidates));
    w.field("elided_points", static_cast<std::uint64_t>(s.elidedPoints));
    w.field("lint_pruned_points",
            static_cast<std::uint64_t>(s.lintPrunedPoints));
    w.field("post_executions",
            static_cast<std::uint64_t>(s.postExecutions));
    w.field("pre_trace_entries",
            static_cast<std::uint64_t>(s.preTraceEntries));
    w.field("post_trace_entries",
            static_cast<std::uint64_t>(s.postTraceEntries));
    w.field("checks_performed",
            static_cast<std::uint64_t>(s.checksPerformed));
    w.field("checks_skipped",
            static_cast<std::uint64_t>(s.checksSkipped));
    w.field("threads", s.threads);
    w.field("pre_seconds", s.preSeconds);
    w.field("post_seconds", s.postSeconds);
    w.field("backend_seconds", s.backendSeconds);
    w.field("total_seconds", s.totalSeconds());
    if (s.crashStatesEnumerated || s.crashStatesExplored ||
        s.crashStatesPruned) {
        w.key("crash_states").beginObject();
        w.field("enumerated",
                static_cast<std::uint64_t>(s.crashStatesEnumerated));
        w.field("explored",
                static_cast<std::uint64_t>(s.crashStatesExplored));
        w.field("pruned",
                static_cast<std::uint64_t>(s.crashStatesPruned));
        w.field("partial_findings",
                static_cast<std::uint64_t>(res.partialImageFindings()));
        w.endObject();
    }
    w.key("phases");
    obs::writePhaseJson(s.phases, w);
    w.field("backend_attribution",
            s.phases.attributionOf(s.backendSeconds));
    w.endObject();

    // Exec-pool restore volume (delta-image engine accounting).
    w.key("restore").beginObject();
    w.field("pool_bytes", static_cast<std::uint64_t>(s.poolBytes));
    w.field("full_copies", s.restore.fullCopies);
    w.field("delta_restores", s.restore.deltaRestores);
    w.field("pages_restored", s.restore.pagesRestored);
    w.field("bytes_restored", s.restore.bytesRestored);
    w.field("bytes_full_copy", s.restore.bytesFullCopy);
    w.field("bytes_copied", s.restore.bytesCopied());
    w.endObject();

    w.key("bugs").beginObject();
    w.field("total", static_cast<std::uint64_t>(res.bugs.size()));
    w.key("by_type").beginObject();
    for (BugType t : {BugType::CrossFailureRace,
                      BugType::CrossFailureSemantic, BugType::Performance,
                      BugType::RecoveryFailure}) {
        w.field(bugTypeId(t), static_cast<std::uint64_t>(res.count(t)));
    }
    w.endObject();
    w.endObject();

    if (stats) {
        w.key("stats");
        stats->writeJson(w);
    }

    for (const auto &section : extra) {
        w.key(section.key);
        section.body(w);
    }

    w.endObject();
    os << '\n';
}

void
writeReportJson(const CampaignResult &res, std::ostream &os)
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("schema", "xfd-report-v1");
    w.field("findings_total",
            static_cast<std::uint64_t>(res.bugs.size()));
    w.field("checks_performed",
            static_cast<std::uint64_t>(res.stats.checksPerformed));
    w.field("checks_skipped",
            static_cast<std::uint64_t>(res.stats.checksSkipped));
    w.key("findings").beginArray();
    for (std::size_t i = 0; i < res.bugs.size(); i++)
        writeBug(w, res.bugs[i], i);
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace xfd::core
