#include "core/bug_report.hh"

#include "common/logging.hh"

namespace xfd::core
{

const char *
bugTypeName(BugType t)
{
    switch (t) {
      case BugType::CrossFailureRace: return "CROSS-FAILURE RACE";
      case BugType::CrossFailureSemantic: return "CROSS-FAILURE SEMANTIC BUG";
      case BugType::Performance: return "PERFORMANCE BUG";
      case BugType::RecoveryFailure: return "RECOVERY FAILURE";
    }
    return "?";
}

const char *
bugTypeId(BugType t)
{
    switch (t) {
      case BugType::CrossFailureRace: return "cross_failure_race";
      case BugType::CrossFailureSemantic: return "cross_failure_semantic";
      case BugType::Performance: return "performance";
      case BugType::RecoveryFailure: return "recovery_failure";
    }
    return "unknown";
}

std::string
BugReport::str() const
{
    std::string s = strprintf("[%s] addr=%#llx size=%u", bugTypeName(type),
                              static_cast<unsigned long long>(addr), size);
    if (reader.line)
        s += strprintf("\n  reader: %s", reader.str().c_str());
    if (writer.line)
        s += strprintf("\n  writer: %s", writer.str().c_str());
    if (!note.empty())
        s += strprintf("\n  note:   %s", note.c_str());
    s += strprintf("\n  seen %u time(s), first at failure point #%u",
                   occurrences, failurePoint);
    return s;
}

void
BugSink::report(BugReport r)
{
    // Recovery failures are keyed by reader and reason only: the
    // "writer" is the failure point itself, which varies per point.
    std::string key =
        r.type == BugType::RecoveryFailure
            ? strprintf("%d|%s:%u|%s", static_cast<int>(r.type),
                        r.reader.file, r.reader.line, r.note.c_str())
            : strprintf("%d|%s:%u|%s:%u|%s", static_cast<int>(r.type),
                        r.reader.file, r.reader.line, r.writer.file,
                        r.writer.line, r.note.c_str());
    auto it = index.find(key);
    if (it != index.end()) {
        all[it->second].occurrences += r.occurrences;
        return;
    }
    index.emplace(std::move(key), all.size());
    all.push_back(std::move(r));
}

void
BugSink::merge(const BugSink &other)
{
    for (const auto &b : other.bugs())
        report(b);
}

void
BugSink::annotate(const std::function<void(BugReport &)> &fn)
{
    for (auto &b : all)
        fn(b);
}

std::size_t
BugSink::count(BugType t) const
{
    std::size_t n = 0;
    for (const auto &b : all) {
        if (b.type == t)
            n++;
    }
    return n;
}

void
BugSink::clear()
{
    all.clear();
    index.clear();
}

} // namespace xfd::core
