/**
 * @file
 * JSON export of campaign results — the machine-readable counterpart
 * of CampaignResult::summary().
 *
 * Two documents:
 *
 *  - stats JSON  ("xfd-stats-v1"): the campaign timing/volume
 *    breakdown (identical values to summary()), bug counts by type,
 *    and the full stats registry when an observer collected one;
 *  - report JSON ("xfd-report-v1"): the deduplicated findings with
 *    source locations — diff-friendly, so serial and parallel
 *    campaigns over the same program export byte-identical reports.
 */

#ifndef XFD_CORE_CAMPAIGN_JSON_HH
#define XFD_CORE_CAMPAIGN_JSON_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "obs/stats.hh"

namespace xfd::core
{

/**
 * One extra top-level object in the xfd-stats-v1 document, supplied
 * by a layer core does not depend on (e.g. the mutation engine's
 * "mutation" section). The callback writes the value for @p key —
 * typically beginObject()...endObject().
 */
struct JsonSection
{
    std::string key;
    std::function<void(obs::JsonWriter &)> body;
};

/**
 * Write the stats document for @p res. @p cfg (may be null) adds a
 * "config" echo of the detector knobs the campaign ran with, driven
 * by the config_flags descriptor table; @p stats (may be null) is the
 * registry collected by the campaign's observer; @p extra sections
 * are appended after the built-in ones.
 */
void writeStatsJson(const CampaignResult &res, const DetectorConfig *cfg,
                    const obs::StatsRegistry *stats, std::ostream &os,
                    const std::vector<JsonSection> &extra = {});

/** Overload without the config echo (kept for existing callers). */
void writeStatsJson(const CampaignResult &res,
                    const obs::StatsRegistry *stats, std::ostream &os);

/** Write the findings document for @p res. */
void writeReportJson(const CampaignResult &res, std::ostream &os);

} // namespace xfd::core

#endif // XFD_CORE_CAMPAIGN_JSON_HH
