#include "core/driver.hh"

#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "common/logging.hh"

namespace xfd::core
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now() - t0).count();
}

} // namespace

std::size_t
CampaignResult::count(BugType t) const
{
    std::size_t n = 0;
    for (const auto &b : bugs) {
        if (b.type == t)
            n++;
    }
    return n;
}

std::string
CampaignResult::summary() const
{
    std::string s = strprintf(
        "=== XFDetector report: %zu finding(s) ===\n"
        "failure points: %zu (candidates %zu, elided %zu), "
        "post-failure executions: %zu\n"
        "time: pre %.3fs, post %.3fs, backend %.3fs\n",
        bugs.size(), stats.failurePoints, stats.orderingCandidates,
        stats.elidedPoints, stats.postExecutions, stats.preSeconds,
        stats.postSeconds, stats.backendSeconds);
    for (const auto &b : bugs)
        s += b.str() + "\n";
    return s;
}

Driver::Driver(pm::PmPool &p, DetectorConfig c) : pool(p), cfg(c)
{
}

double
Driver::runBaseline(const ProgramFn &pre, bool traced)
{
    trace::TraceBuffer buf;
    trace::PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    rt.setTracing(traced);
    auto t0 = std::chrono::steady_clock::now();
    try {
        pre(rt);
    } catch (const trace::StageComplete &) {
    }
    return secondsSince(t0);
}

void
Driver::advanceShadow(PreCursor &cur, const trace::TraceBuffer &pre,
                      std::uint32_t to, BugSink *perf_sink)
{
    using trace::Op;

    ShadowPM &shadow = cur.shadow;
    for (std::uint32_t &i = cur.shadowCursor; i < to; i++) {
        const auto &e = pre[i];
        bool detectable = e.has(trace::flagInRoi) &&
                          !e.has(trace::flagInternal) &&
                          !e.has(trace::flagSkipDetection);
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
            if (!e.has(trace::flagImageOnly)) {
                shadow.preWrite(e.addr, e.size, e.seq,
                                e.op == Op::NtWrite);
            }
            break;
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush:
            if (shadow.preFlush(e.addr, e.seq) && detectable &&
                perf_sink && cfg.reportPerformanceBugs) {
                BugReport r;
                r.type = BugType::Performance;
                r.addr = e.addr;
                r.size = e.size;
                r.reader = e.loc;
                r.note = "redundant writeback: no modified data in line";
                perf_sink->report(std::move(r));
            }
            break;
          case Op::Sfence:
          case Op::Mfence:
            shadow.preFence();
            break;
          case Op::Alloc:
            shadow.preAlloc(e.addr, e.size, e.seq);
            break;
          case Op::Free:
            shadow.preFree(e.addr, e.size);
            break;
          case Op::CommitVar:
            shadow.registerCommitVar(e.addr, e.size);
            break;
          case Op::CommitRange:
            shadow.registerCommitRange(e.aux, e.addr, e.size);
            break;
          case Op::TxAdd: {
            AddrRange r{e.addr, e.addr + e.size};
            bool duplicate = false;
            for (const auto &prev : cur.openTxAdds) {
                if (prev.begin <= r.begin && r.end <= prev.end) {
                    duplicate = true;
                    break;
                }
            }
            if (duplicate && detectable && perf_sink &&
                cfg.reportPerformanceBugs) {
                BugReport br;
                br.type = BugType::Performance;
                br.addr = e.addr;
                br.size = e.size;
                br.reader = e.loc;
                br.note = "duplicated TX_ADD of the same PM object";
                perf_sink->report(std::move(br));
            }
            if (!duplicate)
                cur.openTxAdds.push_back(r);
            break;
          }
          case Op::LibCall:
            if (std::strcmp(e.label, trace::labels::txBegin) == 0 ||
                std::strcmp(e.label, trace::labels::txCommit) == 0 ||
                std::strcmp(e.label, trace::labels::txAbort) == 0) {
                cur.openTxAdds.clear();
            }
            break;
          default:
            break;
        }
    }
}

void
Driver::advanceImage(PreCursor &cur, const trace::TraceBuffer &pre,
                     std::uint32_t to)
{
    using trace::Op;

    for (std::uint32_t &i = cur.imageCursor; i < to; i++) {
        const auto &e = pre[i];
        if (e.isWrite()) {
            cur.image.applyWrite(e.addr, e.data.data(), e.data.size());
            if (cfg.crashImageMode) {
                Addr last = lineBase(e.addr + (e.size ? e.size - 1 : 0));
                for (Addr l = lineBase(e.addr); l <= last;
                     l += cacheLineSize) {
                    cur.dirtyLines.insert(l);
                    if (e.op == Op::NtWrite)
                        cur.pendingLines.insert(l);
                }
            }
            continue;
        }
        if (!cfg.crashImageMode)
            continue;
        if (e.isFlush()) {
            // Flushing moves the line toward durability; it lands at
            // the next fence.
            if (cur.dirtyLines.count(e.addr))
                cur.pendingLines.insert(e.addr);
        } else if (e.isFence()) {
            for (Addr l : cur.pendingLines) {
                std::size_t off = l - cur.image.base();
                std::memcpy(cur.durable.data() + off,
                            cur.image.data() + off, cacheLineSize);
                cur.dirtyLines.erase(l);
            }
            cur.pendingLines.clear();
        }
    }
}

void
Driver::replayPost(PreCursor &cur, const trace::TraceBuffer &pre,
                   const trace::TraceBuffer &post, std::uint32_t fp,
                   BugSink &sink)
{
    using trace::Op;

    ShadowPM &shadow = cur.shadow;
    shadow.beginPostReplay();
    for (const auto &e : post) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
            // Post-failure writes overwrite the old data; reading the
            // location afterwards is unconditionally fine (§5.4).
            shadow.postWrite(e.addr, e.size);
            break;
          case Op::Alloc:
            shadow.postWrite(e.addr, e.size);
            break;
          case Op::CommitVar:
            shadow.registerCommitVar(e.addr, e.size);
            break;
          case Op::CommitRange:
            shadow.registerCommitRange(e.aux, e.addr, e.size);
            break;
          case Op::Read: {
            if (!e.has(trace::flagInRoi) || e.has(trace::flagInternal) ||
                e.has(trace::flagSkipDetection)) {
                break;
            }
            ReadCheckResult res = shadow.checkPostRead(e.addr, e.size);
            if (res.verdict != ReadCheck::Race &&
                res.verdict != ReadCheck::SemanticBug) {
                break;
            }
            if (res.verdict == ReadCheck::SemanticBug &&
                cfg.crashImageMode) {
                // The commit-variable timestamps assume recovery
                // observes the *latest* commit write, which only the
                // paper's all-updates image guarantees; under a
                // realistic crash image the recovery may be acting on
                // an older committed version, so the semantic verdict
                // is not sound here.
                break;
            }
            BugReport r;
            r.type = res.verdict == ReadCheck::Race
                         ? BugType::CrossFailureRace
                         : BugType::CrossFailureSemantic;
            r.addr = res.addr;
            r.size = e.size;
            r.reader = e.loc;
            if (res.writerSeq != ReadCheckResult::noSeq)
                r.writer = pre[res.writerSeq].loc;
            r.failurePoint = fp;
            if (res.uninitialized)
                r.note = "location allocated but never initialized";
            else if (res.verdict == ReadCheck::SemanticBug)
                r.note = res.stale
                             ? "stale: last modified before the pre-last "
                               "commit write"
                             : "uncommitted: modified after the last "
                               "commit write";
            sink.report(std::move(r));
            break;
          }
          default:
            break;
        }
    }
    shadow.endPostReplay();
}

void
Driver::handleFailurePoint(PreCursor &cur, pm::PmPool &exec_pool,
                           const trace::TraceBuffer &pre,
                           const ProgramFn &post, std::uint32_t fp,
                           BugSink &sink, CampaignStats &stats)
{
    auto tb0 = std::chrono::steady_clock::now();
    // Performance bugs are collected by the dedicated full-trace
    // advance, not here (workers would double-report them).
    advanceShadow(cur, pre, fp, nullptr);
    advanceImage(cur, pre, fp);
    stats.backendSeconds += secondsSince(tb0);

    if (cfg.crashImageMode)
        cur.durable.copyTo(exec_pool);
    else
        cur.image.copyTo(exec_pool);
    trace::TraceBuffer post_trace;
    {
        trace::PmRuntime rt(exec_pool, post_trace,
                            trace::Stage::PostFailure);
        rt.setEntryCap(1u << 20);
        auto t0 = std::chrono::steady_clock::now();
        try {
            post(rt);
        } catch (const trace::StageComplete &) {
        } catch (const trace::PostFailureAbort &abort) {
            BugReport r;
            r.type = BugType::RecoveryFailure;
            r.reader = abort.loc;
            r.writer = pre[fp].loc;
            r.failurePoint = fp;
            r.note = abort.reason;
            sink.report(std::move(r));
        } catch (const pm::BadPmAccess &bad) {
            // The post-failure stage dereferenced a corrupted
            // persistent pointer — the emulated equivalent of the
            // resumption segfault in the paper's Figure 1.
            BugReport r;
            r.type = BugType::RecoveryFailure;
            r.addr = bad.addr;
            r.size = static_cast<std::uint32_t>(bad.size);
            r.writer = pre[fp].loc;
            r.failurePoint = fp;
            r.note = strprintf(
                "post-failure crash: wild PM access at %#llx",
                static_cast<unsigned long long>(bad.addr));
            sink.report(std::move(r));
        }
        stats.postSeconds += secondsSince(t0);
    }
    stats.postExecutions++;
    stats.postTraceEntries += post_trace.size();

    auto tb1 = std::chrono::steady_clock::now();
    replayPost(cur, pre, post_trace, fp, sink);
    stats.backendSeconds += secondsSince(tb1);
}

CampaignResult
Driver::run(const ProgramFn &pre, const ProgramFn &post)
{
    return runParallel(pre, post, 1);
}

CampaignResult
Driver::runParallel(const ProgramFn &pre, const ProgramFn &post,
                    unsigned threads)
{
    if (threads == 0)
        threads = 1;
    CampaignResult result;
    result.stats.threads = threads;

    pm::PmImage initial = pool.snapshot();

    // Step 1: pre-failure stage, traced.
    trace::TraceBuffer pre_trace;
    {
        trace::PmRuntime rt(pool, pre_trace, trace::Stage::PreFailure);
        auto t0 = std::chrono::steady_clock::now();
        try {
            pre(rt);
        } catch (const trace::StageComplete &) {
        }
        result.stats.preSeconds = secondsSince(t0);
    }
    result.stats.preTraceEntries = pre_trace.size();

    // Step 2: plan failure points before each ordering point.
    FailurePlan plan = planFailurePoints(pre_trace, cfg);
    result.stats.failurePoints = plan.points.size();
    result.stats.orderingCandidates = plan.candidates;
    result.stats.elidedPoints = plan.elided;

    std::uint32_t trace_end =
        static_cast<std::uint32_t>(pre_trace.size());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(
                                           plan.points.size(), 1)));

    // Steps 3-4: per failure point, reconstruct the image, run the
    // post-failure stage, and check its trace against the shadow PM.
    // Failure points are split into contiguous chunks per worker.
    std::deque<BugSink> sinks(threads);
    std::deque<CampaignStats> stats(threads);
    std::deque<PreCursor> cursors;
    for (unsigned t = 0; t < threads; t++)
        cursors.emplace_back(pool.range(), cfg, initial);

    auto worker = [&](unsigned t) {
        std::size_t per =
            (plan.points.size() + threads - 1) / threads;
        std::size_t begin = t * per;
        std::size_t end =
            std::min(plan.points.size(), begin + per);
        if (begin >= end)
            return;
        // Each worker executes post-failure stages on its own pool
        // replica at the same base address.
        pm::PmPool *exec_pool = &pool;
        std::unique_ptr<pm::PmPool> local;
        if (threads > 1) {
            local = std::make_unique<pm::PmPool>(pool.size(),
                                                 pool.base());
            exec_pool = local.get();
        }
        for (std::size_t i = begin; i < end; i++) {
            handleFailurePoint(cursors[t], *exec_pool, pre_trace, post,
                               plan.points[i], sinks[t], stats[t]);
        }
        cursors[t].shadow.endPostReplay();
    };

    auto tpar0 = std::chrono::steady_clock::now();
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool_threads;
        for (unsigned t = 0; t < threads; t++)
            pool_threads.emplace_back(worker, t);
        for (auto &th : pool_threads)
            th.join();
    }
    double wall = secondsSince(tpar0);

    // Merge per-worker findings in chunk order (deterministic).
    BugSink merged;
    for (unsigned t = 0; t < threads; t++) {
        merged.merge(sinks[t]);
        result.stats.postExecutions += stats[t].postExecutions;
        result.stats.postTraceEntries += stats[t].postTraceEntries;
        if (threads == 1) {
            result.stats.postSeconds += stats[t].postSeconds;
            result.stats.backendSeconds += stats[t].backendSeconds;
        }
        result.stats.checksPerformed +=
            cursors[t].shadow.checksPerformed();
        result.stats.checksSkipped +=
            cursors[t].shadow.checksSkipped();
    }
    if (threads > 1) {
        // Per-thread CPU times overlap; report the wall time split
        // proportionally like the serial breakdown would be.
        result.stats.postSeconds = wall;
    }

    // Performance bugs come from one full pre-trace replay, and the
    // pool is left holding the final pre-failure contents.
    {
        PreCursor full(pool.range(), cfg, std::move(initial));
        auto tb = std::chrono::steady_clock::now();
        advanceShadow(full, pre_trace, trace_end, &merged);
        advanceImage(full, pre_trace, trace_end);
        result.stats.backendSeconds += secondsSince(tb);
        full.image.copyTo(pool);
    }

    result.bugs = merged.bugs();
    return result;
}

} // namespace xfd::core
