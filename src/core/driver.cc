#include "core/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <latch>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "lint/frontier.hh"
#include "trace/buffer.hh"
#include "trace/candidates.hh"
#include "trace/iter.hh"
#include "trace/page_index.hh"

namespace xfd::core
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now() - t0).count();
}

} // namespace

/**
 * Cell-granular persistency mirror for --crash-states. Semantics
 * replicate the oracle's per-cell model (oracle/oracle.cc advance())
 * exactly: the driver's write frontiers, prefix chains and candidate
 * images must agree with the oracle's byte for byte, or the
 * conformance tier could never hold agreement at 1.0.
 */
struct Driver::PreCursor::CsState
{
    enum class St : std::uint8_t
    {
        Modified,  ///< dirty in cache, no writeback in flight
        Pending,   ///< writeback issued, fence not reached
        Persisted, ///< last write guaranteed durable
    };

    struct Cell
    {
        St state = St::Modified;
        /** Write seqs applied since the last guaranteed persist,
            ascending — empty iff the cell's bytes are decided. */
        std::vector<std::uint32_t> tail;
    };

    explicit CsState(const DetectorConfig &cfg)
        : gran(cfg.granularity), lint(cfg.granularity, cfg.eadrOn())
    {
    }

    unsigned gran;
    std::map<std::uint64_t, Cell> cells;
    /** Cells awaiting the next fence (stale entries re-checked). */
    std::vector<std::uint64_t> pending;
    /** Registered commit variables (dropped-commit suppression). */
    std::vector<AddrRange> commitVars;
    /**
     * Lint frontier state advanced to lintCursor — the equivalence
     * signature feeding the candidate pruning key and the sampler
     * stream (the same identity --backend=batched folds points by).
     */
    lint::FrontierState lint;
    std::uint32_t lintCursor = 0;

    std::uint64_t cellIndex(Addr a) const { return a / gran; }
    std::uint64_t cellCount(Addr a, std::size_t n) const
    {
        return (a + n - 1) / gran - a / gran + 1;
    }
    Addr cellAddr(std::uint64_t idx) const { return idx * gran; }
};

Driver::PreCursor::PreCursor(AddrRange range,
                             const DetectorConfig &cfg,
                             const pm::CowImage &initial)
    : shadow(range, cfg), image(initial)
{
    // Crash-state exploration needs the durable twin too: a partial
    // candidate materializes as durable image + masked frontier
    // events. Under eADR every frontier is empty and the mode
    // degenerates to the anchor, so the extra bookkeeping is skipped.
    bool cs_on = cfg.crashStatesOn() && !cfg.eadrOn();
    if (cfg.crashImageMode || cs_on)
        durable = initial;
    if (cs_on)
        cs = std::make_unique<CsState>(cfg);
}

Driver::PreCursor::~PreCursor() = default;

/**
 * Campaign-global crash-state context: parsed --crash-states knobs
 * plus the equivalence-class pruning set all workers share.
 */
struct Driver::CrashStateCtx
{
    bool exhaustive = false;
    std::size_t sampleCount = 0;
    std::mutex lock;
    /** Equivalence key -> failure point whose run represents it. */
    std::map<std::string, std::uint32_t> seen;
};

std::size_t
CampaignResult::count(BugType t) const
{
    std::size_t n = 0;
    for (const auto &b : bugs) {
        if (b.type == t)
            n++;
    }
    return n;
}

std::string
CampaignResult::summary() const
{
    std::string batched;
    if (stats.batchGroups) {
        batched = strprintf(", batched %zu groups (+%zu folded)",
                            stats.batchGroups, stats.lintPrunedPoints);
    } else if (stats.lintPrunedPoints) {
        batched =
            strprintf(", lint-pruned %zu", stats.lintPrunedPoints);
    }
    std::string s = strprintf(
        "=== XFDetector report: %zu finding(s) ===\n"
        "failure points: %zu (candidates %zu, elided %zu%s), "
        "post-failure executions: %zu\n"
        "time: pre %.3fs, post %.3fs, backend %.3fs\n",
        bugs.size(), stats.failurePoints, stats.orderingCandidates,
        stats.elidedPoints, batched.c_str(), stats.postExecutions,
        stats.preSeconds, stats.postSeconds, stats.backendSeconds);
    if (stats.crashStatesExplored || stats.crashStatesPruned) {
        s += strprintf(
            "crash states: %zu partial candidate(s) explored "
            "(+%zu pruned as equivalent), partial-image findings: "
            "%zu\n",
            stats.crashStatesExplored, stats.crashStatesPruned,
            partialImageFindings());
    }
    for (const auto &b : bugs)
        s += b.str() + "\n";
    return s;
}

std::size_t
CampaignResult::partialImageFindings() const
{
    std::size_t n = 0;
    for (const auto &b : bugs) {
        if (b.persistedMask.size() && !b.persistedMask.all())
            n++;
    }
    return n;
}

std::string
CampaignResult::fingerprint() const
{
    // One line per finding, sorted: the same identity the test
    // harness and the CI batch-smoke job compare. Deliberately
    // excludes occurrence counts, failure-point seqs and provenance —
    // those legitimately differ between serial, parallel and batched
    // schedules; the finding *set* must not.
    std::vector<std::string> lines;
    lines.reserve(bugs.size());
    for (const auto &b : bugs) {
        lines.push_back(strprintf("%s|%s|%s|%s", bugTypeId(b.type),
                                  b.reader.str().c_str(),
                                  b.writer.str().c_str(),
                                  b.note.c_str()));
    }
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const auto &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

Driver::Driver(pm::PmPool &p, DetectorConfig c) : pool(p), cfg(c)
{
}

double
Driver::runBaseline(const ProgramFn &pre, bool traced)
{
    trace::TraceBuffer buf;
    trace::PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    rt.setTracing(traced);
    rt.setBatching(true);
    auto t0 = std::chrono::steady_clock::now();
    try {
        pre(rt);
    } catch (const trace::StageComplete &) {
    }
    return secondsSince(t0);
}

void
Driver::advanceShadow(PreCursor &cur, const trace::TraceBuffer &pre,
                      std::uint32_t to, BugSink *perf_sink)
{
    using trace::Op;

    ShadowPM &shadow = cur.shadow;
    for (std::uint32_t &i = cur.shadowCursor; i < to; i++) {
        const auto &e = pre[i];
        bool detectable = e.has(trace::flagInRoi) &&
                          !e.has(trace::flagInternal) &&
                          !e.has(trace::flagSkipDetection);
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
            if (!e.has(trace::flagImageOnly)) {
                shadow.preWrite(e.addr, e.size, e.seq,
                                e.op == Op::NtWrite);
            }
            break;
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush:
            if (shadow.preFlush(e.addr, e.seq,
                                e.has(trace::flagRepair)) &&
                detectable &&
                perf_sink && cfg.reportPerformanceBugs) {
                BugReport r;
                r.type = BugType::Performance;
                r.addr = e.addr;
                r.size = e.size;
                r.reader = e.loc;
                r.note = "redundant writeback: no modified data in line";
                perf_sink->report(std::move(r));
            }
            break;
          case Op::Sfence:
          case Op::Mfence:
            shadow.preFence();
            break;
          case Op::Alloc:
            shadow.preAlloc(e.addr, e.size, e.seq);
            break;
          case Op::Free:
            shadow.preFree(e.addr, e.size);
            break;
          case Op::CommitVar:
            shadow.registerCommitVar(e.addr, e.size);
            break;
          case Op::CommitRange:
            shadow.registerCommitRange(e.aux, e.addr, e.size);
            break;
          case Op::TxAdd: {
            AddrRange r{e.addr, e.addr + e.size};
            bool duplicate = false;
            for (const auto &prev : cur.openTxAdds) {
                if (prev.begin <= r.begin && r.end <= prev.end) {
                    duplicate = true;
                    break;
                }
            }
            if (duplicate && detectable && perf_sink &&
                cfg.reportPerformanceBugs) {
                BugReport br;
                br.type = BugType::Performance;
                br.addr = e.addr;
                br.size = e.size;
                br.reader = e.loc;
                br.note = "duplicated TX_ADD of the same PM object";
                perf_sink->report(std::move(br));
            }
            if (!duplicate)
                cur.openTxAdds.push_back(r);
            break;
          }
          case Op::LibCall:
            if (trace::isTxBoundary(e))
                cur.openTxAdds.clear();
            break;
          default:
            break;
        }
    }
}

void
Driver::advanceImage(PreCursor &cur, const trace::TraceBuffer &pre,
                     std::uint32_t to)
{
    using trace::Op;

    const bool eadr = cfg.eadrOn();
    using St = PreCursor::CsState::St;
    PreCursor::CsState *cs = cur.cs.get();
    // The oracle's persistCellBytes: a retired or freed cell's
    // content is decided, so the durable image takes its bytes and
    // partial candidates build on them.
    auto persistCell = [&](std::uint64_t idx) {
        Addr a = cs->cellAddr(idx);
        cur.durable.copyFrom(cur.image, a, cs->gran);
        if (deltaStore)
            cur.durablePages.insert(deltaStore->pageOf(a));
    };
    for (std::uint32_t &i = cur.imageCursor; i < to; i++) {
        const auto &e = pre[i];
        if (e.isWrite()) {
            cur.image.applyWrite(e.addr, e.data.data(), e.data.size());
            if (cs) {
                if (e.has(trace::flagImageOnly)) {
                    // Allocator zero-fill and friends: image data with
                    // no persistence semantics. Both images take it at
                    // once, so it is never part of any frontier.
                    cur.durable.applyWrite(e.addr, e.data.data(),
                                           e.data.size());
                    if (deltaStore && !e.data.empty()) {
                        Addr end = e.addr + e.data.size() - 1;
                        std::size_t ps = deltaStore->pageSize();
                        for (Addr a = e.addr; a <= end;
                             a = (a / ps + 1) * ps) {
                            cur.durablePages.insert(
                                deltaStore->pageOf(a));
                        }
                    }
                } else if (e.size != 0) {
                    bool nt = e.op == Op::NtWrite;
                    std::uint64_t first = cs->cellIndex(e.addr);
                    std::uint64_t n = cs->cellCount(e.addr, e.size);
                    for (std::uint64_t c = 0; c < n; c++) {
                        auto &cell = cs->cells[first + c];
                        cell.state = nt ? St::Pending : St::Modified;
                        cell.tail.push_back(e.seq);
                        if (nt)
                            cs->pending.push_back(first + c);
                    }
                }
            }
            Addr last = lineBase(e.addr + (e.size ? e.size - 1 : 0));
            if (eadr) {
                // Flush-free persistency: the store is durable on
                // arrival, so it is never part of a write frontier
                // (provenance stays empty) and a realistic crash
                // image carries it immediately.
                if (cfg.crashImageMode) {
                    for (Addr l = lineBase(e.addr); l <= last;
                         l += cacheLineSize) {
                        cur.durable.copyFrom(cur.image, l,
                                             cacheLineSize);
                        if (deltaStore)
                            cur.durablePages.insert(
                                deltaStore->pageOf(l));
                    }
                }
                continue;
            }
            for (Addr l = lineBase(e.addr); l <= last;
                 l += cacheLineSize) {
                // Frontier bookkeeping (provenance): the write is
                // in flight until a fence lands its line.
                cur.inflight[l].push_back(e.seq);
                if (e.op == Op::NtWrite)
                    cur.inflightPending.insert(l);
                if (cfg.crashImageMode) {
                    cur.dirtyLines.insert(l);
                    if (e.op == Op::NtWrite)
                        cur.pendingLines.insert(l);
                }
            }
            continue;
        }
        if (e.isFlush()) {
            if (cs) {
                // Writeback starts for every modified cell in the
                // line; durability lands at the next fence.
                std::uint64_t first = cs->cellIndex(e.addr);
                std::uint64_t n = cs->cellCount(e.addr, cacheLineSize);
                for (std::uint64_t c = 0; c < n; c++) {
                    auto it = cs->cells.find(first + c);
                    if (it == cs->cells.end() ||
                        it->second.state != St::Modified) {
                        continue;
                    }
                    it->second.state = St::Pending;
                    cs->pending.push_back(first + c);
                }
            }
            // Flushing moves the line toward durability; it lands at
            // the next fence.
            if (cur.inflight.count(e.addr))
                cur.inflightPending.insert(e.addr);
            if (cfg.crashImageMode && cur.dirtyLines.count(e.addr))
                cur.pendingLines.insert(e.addr);
        } else if (e.isFence()) {
            if (cs) {
                // The fence retires cells still pending (a cached
                // write after the flush keeps the cell in flight).
                for (std::uint64_t idx : cs->pending) {
                    auto it = cs->cells.find(idx);
                    if (it == cs->cells.end() ||
                        it->second.state != St::Pending) {
                        continue;
                    }
                    it->second.state = St::Persisted;
                    persistCell(idx);
                    it->second.tail.clear();
                }
                cs->pending.clear();
            }
            for (Addr l : cur.inflightPending)
                cur.inflight.erase(l);
            cur.inflightPending.clear();
            if (!cfg.crashImageMode)
                continue;
            for (Addr l : cur.pendingLines) {
                cur.durable.copyFrom(cur.image, l, cacheLineSize);
                cur.dirtyLines.erase(l);
                if (deltaStore)
                    cur.durablePages.insert(deltaStore->pageOf(l));
            }
            cur.pendingLines.clear();
        } else if (cs) {
            // Ops the line model ignores but the cell model mirrors
            // from the oracle.
            switch (e.op) {
              case Op::Alloc: {
                std::uint64_t first = cs->cellIndex(e.addr);
                std::uint64_t n = cs->cellCount(e.addr, e.size);
                for (std::uint64_t c = 0; c < n; c++)
                    cs->cells[first + c].state = St::Modified;
                break;
              }
              case Op::Free: {
                std::uint64_t first = cs->cellIndex(e.addr);
                std::uint64_t n = cs->cellCount(e.addr, e.size);
                for (std::uint64_t c = 0; c < n; c++) {
                    auto it = cs->cells.find(first + c);
                    if (it == cs->cells.end())
                        continue;
                    // Freed cells leave the frontier; pin their bytes
                    // at the last written value so the anchor stays
                    // byte-identical to the footnote-3 image.
                    if (!it->second.tail.empty())
                        persistCell(first + c);
                    cs->cells.erase(it);
                }
                break;
              }
              case Op::CommitVar: {
                AddrRange r{e.addr, e.addr + e.size};
                bool known = false;
                for (const auto &cv : cs->commitVars) {
                    if (cv == r) {
                        known = true;
                        break;
                    }
                }
                if (!known)
                    cs->commitVars.push_back(r);
                break;
              }
              default:
                break;
            }
        }
    }
}

void
Driver::replayPost(PreCursor &cur, const trace::TraceBuffer &pre,
                   const trace::TraceBuffer &post, std::uint32_t fp,
                   BugSink &sink, bool suppressSemantic)
{
    using trace::Op;

    ShadowPM &shadow = cur.shadow;
    shadow.beginPostReplay();
    for (const auto &e : post) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
            // Post-failure writes overwrite the old data; reading the
            // location afterwards is unconditionally fine (§5.4).
            shadow.postWrite(e.addr, e.size);
            break;
          case Op::Alloc:
            shadow.postWrite(e.addr, e.size);
            break;
          case Op::CommitVar:
            shadow.registerCommitVar(e.addr, e.size);
            break;
          case Op::CommitRange:
            shadow.registerCommitRange(e.aux, e.addr, e.size);
            break;
          case Op::Read: {
            if (!e.has(trace::flagInRoi) || e.has(trace::flagInternal) ||
                e.has(trace::flagSkipDetection)) {
                break;
            }
            ReadCheckResult res = shadow.checkPostRead(e.addr, e.size);
            if (res.verdict != ReadCheck::Race &&
                res.verdict != ReadCheck::SemanticBug) {
                break;
            }
            if (res.verdict == ReadCheck::SemanticBug &&
                (cfg.crashImageMode || suppressSemantic)) {
                // The commit-variable timestamps assume recovery
                // observes the *latest* commit write, which only the
                // paper's all-updates image guarantees; under a
                // realistic crash image — or a partial candidate that
                // dropped a commit write — the recovery may be acting
                // on an older committed version, so the semantic
                // verdict is not sound here.
                break;
            }
            BugReport r;
            r.type = res.verdict == ReadCheck::Race
                         ? BugType::CrossFailureRace
                         : BugType::CrossFailureSemantic;
            r.addr = res.addr;
            r.size = e.size;
            r.reader = e.loc;
            if (res.writerSeq != ReadCheckResult::noSeq)
                r.writer = pre[res.writerSeq].loc;
            r.failurePoint = fp;
            if (res.uninitialized)
                r.note = "location allocated but never initialized";
            else if (res.verdict == ReadCheck::SemanticBug)
                r.note = res.stale
                             ? "stale: last modified before the pre-last "
                               "commit write"
                             : "uncommitted: modified after the last "
                               "commit write";
            sink.report(std::move(r));
            break;
          }
          default:
            break;
        }
    }
    shadow.endPostReplay();
}

void
Driver::handleFailurePoint(PreCursor &cur, pm::PmPool &exec_pool,
                           const trace::TraceBuffer &pre,
                           const ProgramFn &post, std::uint32_t fp,
                           BugSink &sink, CampaignStats &stats,
                           const WorkerObs &wobs)
{
    obs::Timeline *tl = wobs.timeline;
    obs::SpanScope fp_span(tl, tl ? strprintf("fp#%u", fp)
                                  : std::string(),
                           "fp", wobs.track);

    // Findings collect in a local sink first, for two reasons: the
    // per-failure-point hook must see a finding's recurrence at later
    // points (the worker sink dedups across points), and provenance
    // (this point's write frontier) is annotated onto exactly the
    // findings this point produced before they merge.
    BugSink local;
    BugSink &fp_sink = local;

    auto tb0 = std::chrono::steady_clock::now();
    {
        obs::SpanScope span(tl, "reconstruct", "backend", wobs.track);
        // Performance bugs are collected by the dedicated full-trace
        // advance, not here (workers would double-report them).
        {
            obs::SpanScope s2(tl, "advance-shadow", "backend",
                              wobs.track);
            advanceShadow(cur, pre, fp, nullptr);
        }
        {
            obs::SpanScope s2(tl, "advance-image", "backend",
                              wobs.track);
            advanceImage(cur, pre, fp);
        }
        obs::SpanScope s3(tl, "restore-pool", "backend", wobs.track);

        const pm::CowImage &src =
            cfg.crashImageMode ? cur.durable : cur.image;
        bool checkpoint_due =
            cfg.deltaCheckpointInterval != 0 &&
            cur.sinceCheckpoint >= cfg.deltaCheckpointInterval;
        if (!deltaStore) {
            pm::restoreFull(src, exec_pool, stats.restore);
        } else if (!cur.execSynced || checkpoint_due) {
            // Chunk start or checkpoint cadence: resync from scratch.
            // A fresh pool is all zeros and any working image can
            // differ from zero only where the write log landed or the
            // initial snapshot was nonzero (chunkSyncPages), so
            // restoring that set plus the exec pool's own dirt is
            // byte-equivalent to the old full O(pool) copy.
            std::set<std::uint32_t> pages = *chunkSyncPages;
            exec_pool.drainDirtyPages(pages);
            pm::restorePages(src, exec_pool, deltaStore->pageSize(),
                             pages, stats.restore);
            stats.restore.syncRestores++;
            cur.durablePages.clear();
            cur.execSynced = true;
            cur.sinceCheckpoint = 0;
        } else {
            // The exec pool matches the source image as of the
            // previous restore except on (a) pages the image gained
            // since, and (b) pages the previous post-failure
            // execution soiled. Copy exactly that union.
            std::set<std::uint32_t> pages;
            if (cfg.crashImageMode)
                pages.swap(cur.durablePages);
            else
                deltaStore->collectPages(cur.lastRestoredSeq, fp,
                                         pages);
            exec_pool.drainDirtyPages(pages);
            pm::restorePages(src, exec_pool, deltaStore->pageSize(),
                             pages, stats.restore);
            cur.sinceCheckpoint++;
        }
        cur.lastRestoredSeq = fp;
        // Paranoia mode (XFD_DELTA_VALIDATE=1): after any restore the
        // exec pool must equal the source image byte-for-byte; a
        // mismatch means a mutation path missed markDirty() or the
        // write-log index missed a write. The equivalence suite runs
        // its campaigns under this check.
        static const bool validate =
            std::getenv("XFD_DELTA_VALIDATE") != nullptr;
        if (validate) {
            std::size_t off = src.firstMismatch(exec_pool.data());
            if (off != SIZE_MAX) {
                panic("delta restore diverged at fp %u: pool offset "
                      "%#zx (page %zu) pool=%02x",
                      fp, off, off / cfg.deltaPageSize,
                      exec_pool.data()[off]);
            }
        }
    }
    // The phase entry reuses the exact interval that feeds
    // backendSeconds, so restore + classify attribute the backend
    // identically in a serial campaign.
    double restore_s = secondsSince(tb0);
    stats.backendSeconds += restore_s;
    stats.phases.note(obs::Phase::Restore, restore_s);

    // This point's write frontier: the in-flight (not durably
    // persisted) write seqs as of fp, in ascending order — the
    // causal candidates for anything the post-failure stage trips
    // over. Captured before the post-failure run dirties anything.
    // Crash-states campaigns take it from the cell model so the bit
    // order of every candidate mask matches the oracle's exactly;
    // otherwise the line-granular bookkeeping supplies it.
    std::vector<std::uint32_t> frontier;
    if (cur.cs) {
        std::set<std::uint32_t> seqs;
        for (const auto &[idx, c] : cur.cs->cells)
            seqs.insert(c.tail.begin(), c.tail.end());
        frontier.assign(seqs.begin(), seqs.end());
    } else {
        for (const auto &ent : cur.inflight)
            frontier.insert(frontier.end(), ent.second.begin(),
                            ent.second.end());
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()),
                       frontier.end());
    }

    trace::TraceBuffer post_trace;
    {
        obs::SpanScope span(tl, "post-exec", "post", wobs.track);
        trace::PmRuntime rt(exec_pool, post_trace,
                            trace::Stage::PostFailure);
        rt.setEntryCap(1u << 20);
        // Ring-buffered emission; no same-value elision post-failure
        // (recovery rewriting identical bytes still re-establishes
        // consistency, so every post write must be traced).
        rt.setBatching(true);
        auto t0 = std::chrono::steady_clock::now();
        try {
            post(rt);
        } catch (const trace::StageComplete &) {
        } catch (const trace::PostFailureAbort &abort) {
            BugReport r;
            r.type = BugType::RecoveryFailure;
            r.reader = abort.loc;
            r.writer = pre[fp].loc;
            r.failurePoint = fp;
            r.note = abort.reason;
            fp_sink.report(std::move(r));
        } catch (const pm::BadPmAccess &bad) {
            // The post-failure stage dereferenced a corrupted
            // persistent pointer — the emulated equivalent of the
            // resumption segfault in the paper's Figure 1.
            BugReport r;
            r.type = BugType::RecoveryFailure;
            r.addr = bad.addr;
            r.size = static_cast<std::uint32_t>(bad.size);
            r.writer = pre[fp].loc;
            r.failurePoint = fp;
            r.note = strprintf(
                "post-failure crash: wild PM access at %#llx",
                static_cast<unsigned long long>(bad.addr));
            fp_sink.report(std::move(r));
        }
        rt.setBatching(false); // flush the ring before reading counts
        double post_s = secondsSince(t0);
        stats.postSeconds += post_s;
        stats.phases.note(obs::Phase::RecoveryExec, post_s);
        if (wobs.postLatency)
            wobs.postLatency->push_back(post_s);
        if (wobs.postOps) {
            const auto &ops = rt.opCounts();
            for (std::size_t i = 0; i < ops.size(); i++)
                (*wobs.postOps)[i] += ops[i];
        }
        if (wobs.live)
            wobs.live->sample("post_exec_latency_us", post_s * 1e6);
    }
    stats.postExecutions++;
    stats.postTraceEntries += post_trace.size();

    auto tb1 = std::chrono::steady_clock::now();
    {
        obs::SpanScope span(tl, "replay", "backend", wobs.track);
        replayPost(cur, pre, post_trace, fp, fp_sink);
    }
    double classify_s = secondsSince(tb1);
    stats.backendSeconds += classify_s;
    stats.phases.note(obs::Phase::Classify, classify_s);

    // Annotate provenance onto the findings this exact point exposed:
    // its frontier, plus which frontier writes the post-failure image
    // contained (all of them under the paper's footnote-3 image, none
    // under --crash-image, where in flight means absent).
    trace::SubsetMask mask(frontier.size());
    if (!cfg.crashImageMode)
        mask.setAll();
    local.annotate([&](BugReport &b) {
        b.frontierSeqs = frontier;
        b.persistedMask = mask;
    });

    if (tl) {
        for (const auto &b : local.bugs()) {
            std::vector<std::pair<std::string, std::string>> args;
            args.emplace_back("type", bugTypeId(b.type));
            args.emplace_back("reader", b.reader.str());
            args.emplace_back("writer", b.writer.str());
            args.emplace_back("failure_point", strprintf("%u", fp));
            std::string seqs;
            for (std::uint32_t s : frontier) {
                if (!seqs.empty())
                    seqs += ',';
                seqs += strprintf("%u", s);
            }
            args.emplace_back("frontier", std::move(seqs));
            args.emplace_back("persisted_mask", mask.toHex());
            tl->recordInstant(strprintf("finding@fp#%u", fp), "finding",
                              wobs.track, tl->nowUs(), std::move(args));
        }
    }

    if (wobs.live) {
        wobs.live->count("failure_points");
        wobs.live->count("restore_us",
                         static_cast<std::uint64_t>(restore_s * 1e6));
        wobs.live->count("classify_us",
                         static_cast<std::uint64_t>(classify_s * 1e6));
    }

    // Partial crash-state exploration rides after the anchor so its
    // findings merge into the same per-point sink (each annotated
    // with its own persisted mask) before the hook fires.
    if (csCtx && cur.cs)
        exploreCrashStates(cur, exec_pool, pre, post, fp, local,
                           stats, wobs);

    if (observer)
        observer->notifyFailurePoint(fp, local);
    sink.merge(local);
}

void
Driver::exploreCrashStates(PreCursor &cur, pm::PmPool &exec_pool,
                           const trace::TraceBuffer &pre,
                           const ProgramFn &post, std::uint32_t fp,
                           BugSink &local, CampaignStats &stats,
                           const WorkerObs &wobs)
{
    PreCursor::CsState &cs = *cur.cs;

    // Frontier + per-cell prefix chains from the cell model — the
    // identical inputs the oracle derives, so enumeration agrees with
    // it candidate for candidate.
    std::set<std::uint32_t> seqs;
    for (const auto &[idx, c] : cs.cells)
        seqs.insert(c.tail.begin(), c.tail.end());
    if (seqs.empty())
        return;
    std::vector<trace::FrontierEvent> events;
    events.reserve(seqs.size());
    std::map<std::uint32_t, std::size_t> bitOf;
    for (std::uint32_t s : seqs) {
        bitOf[s] = events.size();
        events.push_back(trace::FrontierEvent{s, pre[s].addr,
                                              pre[s].size});
    }
    std::size_t k = events.size();
    std::vector<std::vector<std::size_t>> chains;
    for (const auto &[idx, c] : cs.cells) {
        if (c.tail.empty())
            continue;
        std::vector<std::size_t> chain;
        chain.reserve(c.tail.size());
        for (std::uint32_t s : c.tail)
            chain.push_back(bitOf.at(s));
        chains.push_back(std::move(chain));
    }
    trace::CandidateSet cset(std::move(events), std::move(chains));
    const auto &frontier_ev = cset.frontier();

    // Candidate equivalence class: ordering-point source location +
    // lint frontier signature — the identity --backend=batched folds
    // failure points by. It keys both the sampler stream (equivalent
    // points sample identical mask sequences, keeping full, delta and
    // batched schedules fingerprint-identical) and the campaign-global
    // pruning set.
    for (; cs.lintCursor < fp; cs.lintCursor++)
        cs.lint.apply(pre[cs.lintCursor]);
    std::string group = pre[fp].loc.str() + '|' + cs.lint.signature();
    std::uint64_t stream = 1469598103934665603ull; // FNV-1a 64
    for (char ch : group)
        stream = (stream ^ static_cast<unsigned char>(ch)) *
                 1099511628211ull;

    trace::CandidateSet::EnumerateOptions eopt;
    eopt.exhaustive = csCtx->exhaustive;
    eopt.frontierLimit = cfg.oracleFrontierLimit;
    eopt.sampleCount = csCtx->sampleCount;
    eopt.seed = cfg.crashStatesSeed;
    eopt.stream = stream;
    auto en = cset.enumerate(eopt);
    if (en.masks.size() <= 1)
        return;
    stats.crashStatesEnumerated += en.masks.size() - 1;

    std::vector<std::uint32_t> frontier(seqs.begin(), seqs.end());

    obs::Timeline *tl = wobs.timeline;
    obs::SpanScope span(tl,
                        tl ? strprintf("crash-states@fp#%u", fp)
                           : std::string(),
                        "crash-states", wobs.track);

    bool first_restore = true;
    std::set<std::uint32_t> touched;
    for (std::size_t ci = 1; ci < en.masks.size(); ci++) {
        const trace::SubsetMask &mask = en.masks[ci];
        {
            // Structurally identical candidates execute once per
            // campaign: recovery is a function of the crash image,
            // which this key determines up to batching equivalence.
            std::string key =
                group + '|' + strprintf("%zu:", k) + mask.toHex();
            std::lock_guard<std::mutex> lock(csCtx->lock);
            auto [it, fresh] = csCtx->seen.emplace(key, fp);
            if (!fresh) {
                stats.crashStatesPruned++;
                stats.crashPruned.push_back(
                    {fp, it->second, mask.toHex()});
                continue;
            }
        }
        stats.crashStatesExplored++;

        auto tb0 = std::chrono::steady_clock::now();
        // Materialize: durable image + masked frontier events. The
        // pool holds the previous run's aftermath; restore only what
        // can differ from durable — the pool's own dirt plus, before
        // the first candidate, the pages of in-flight cells (the only
        // places the anchor image diverges from durable).
        if (!deltaStore) {
            pm::restoreFull(cur.durable, exec_pool, stats.restore);
        } else {
            std::set<std::uint32_t> pages;
            if (first_restore) {
                for (const auto &[idx, c] : cs.cells) {
                    if (!c.tail.empty())
                        pages.insert(
                            deltaStore->pageOf(cs.cellAddr(idx)));
                }
            }
            exec_pool.drainDirtyPages(pages);
            pm::restorePages(cur.durable, exec_pool,
                             deltaStore->pageSize(), pages,
                             stats.restore);
            touched.insert(pages.begin(), pages.end());
        }
        first_restore = false;

        // Apply the persisted subset in ascending seq order; only
        // cells still carrying the event are undecided (mirrors the
        // oracle's applyMask byte for byte). Payload-elided same-value
        // writes (empty data) have nothing to materialize.
        for (std::size_t b = 0; b < k; b++) {
            if (!mask.test(b))
                continue;
            const auto &e = pre[frontier_ev[b].seq];
            if (e.size == 0 || e.data.empty())
                continue;
            std::uint64_t first = cs.cellIndex(e.addr);
            std::uint64_t n = cs.cellCount(e.addr, e.size);
            for (std::uint64_t c = 0; c < n; c++) {
                std::uint64_t idx = first + c;
                auto it = cs.cells.find(idx);
                if (it == cs.cells.end())
                    continue;
                const auto &tail = it->second.tail;
                if (std::find(tail.begin(), tail.end(), e.seq) ==
                    tail.end()) {
                    continue;
                }
                Addr lo = std::max(cs.cellAddr(idx), e.addr);
                Addr hi =
                    std::min(cs.cellAddr(idx) + cs.gran,
                             static_cast<Addr>(e.addr + e.size));
                if (lo >= hi)
                    continue;
                std::size_t len = hi - lo;
                std::memcpy(exec_pool.data() +
                                (lo - exec_pool.base()),
                            e.data.data() + (lo - e.addr), len);
                exec_pool.markDirty(lo, len);
            }
        }
        double restore_s = secondsSince(tb0);
        stats.backendSeconds += restore_s;
        stats.phases.note(obs::Phase::Restore, restore_s);

        // A candidate that drops a commit-variable write shows
        // recovery the previous committed epoch: commit-window
        // (condition (3)) verdicts on it describe a legitimate older
        // state, not a bug.
        bool dropped_commit = false;
        for (std::size_t b = 0; b < k && !dropped_commit; b++) {
            if (mask.test(b))
                continue;
            AddrRange ev{frontier_ev[b].addr,
                         frontier_ev[b].addr + frontier_ev[b].size};
            for (const auto &cv : cs.commitVars) {
                if (cv.overlaps(ev)) {
                    dropped_commit = true;
                    break;
                }
            }
        }

        BugSink cand;
        trace::TraceBuffer post_trace;
        {
            obs::SpanScope s2(tl, "post-exec", "post", wobs.track);
            trace::PmRuntime rt(exec_pool, post_trace,
                                trace::Stage::PostFailure);
            rt.setEntryCap(1u << 20);
            rt.setBatching(true);
            auto t0 = std::chrono::steady_clock::now();
            try {
                post(rt);
            } catch (const trace::StageComplete &) {
            } catch (const trace::PostFailureAbort &abort) {
                BugReport r;
                r.type = BugType::RecoveryFailure;
                r.reader = abort.loc;
                r.writer = pre[fp].loc;
                r.failurePoint = fp;
                r.note = abort.reason;
                cand.report(std::move(r));
            } catch (const pm::BadPmAccess &bad) {
                BugReport r;
                r.type = BugType::RecoveryFailure;
                r.addr = bad.addr;
                r.size = static_cast<std::uint32_t>(bad.size);
                r.writer = pre[fp].loc;
                r.failurePoint = fp;
                r.note = strprintf(
                    "post-failure crash: wild PM access at %#llx",
                    static_cast<unsigned long long>(bad.addr));
                cand.report(std::move(r));
            }
            rt.setBatching(false);
            double post_s = secondsSince(t0);
            stats.postSeconds += post_s;
            stats.phases.note(obs::Phase::RecoveryExec, post_s);
            if (wobs.postLatency)
                wobs.postLatency->push_back(post_s);
            if (wobs.postOps) {
                const auto &ops = rt.opCounts();
                for (std::size_t i = 0; i < ops.size(); i++)
                    (*wobs.postOps)[i] += ops[i];
            }
            if (wobs.live)
                wobs.live->sample("post_exec_latency_us",
                                  post_s * 1e6);
        }
        stats.postExecutions++;
        stats.postTraceEntries += post_trace.size();

        auto tb1 = std::chrono::steady_clock::now();
        {
            obs::SpanScope s2(tl, "replay", "backend", wobs.track);
            replayPost(cur, pre, post_trace, fp, cand, dropped_commit);
        }
        double classify_s = secondsSince(tb1);
        stats.backendSeconds += classify_s;
        stats.phases.note(obs::Phase::Classify, classify_s);

        cand.annotate([&](BugReport &b) {
            b.frontierSeqs = frontier;
            b.persistedMask = mask;
        });

        if (tl) {
            for (const auto &b : cand.bugs()) {
                std::vector<std::pair<std::string, std::string>> args;
                args.emplace_back("type", bugTypeId(b.type));
                args.emplace_back("reader", b.reader.str());
                args.emplace_back("writer", b.writer.str());
                args.emplace_back("failure_point",
                                  strprintf("%u", fp));
                std::string fs;
                for (std::uint32_t s : frontier) {
                    if (!fs.empty())
                        fs += ',';
                    fs += strprintf("%u", s);
                }
                args.emplace_back("frontier", std::move(fs));
                args.emplace_back("persisted_mask", mask.toHex());
                tl->recordInstant(strprintf("finding@fp#%u", fp),
                                  "finding", wobs.track, tl->nowUs(),
                                  std::move(args));
            }
        }
        if (wobs.live)
            wobs.live->count("crash_candidates");
        local.merge(cand);
    }
    // Pages restored toward durable hold stale bytes relative to the
    // working image; re-dirty them so the next anchor restore
    // re-copies them (XFD_DELTA_VALIDATE holds across the mix).
    if (deltaStore) {
        std::size_t ps = deltaStore->pageSize();
        for (std::uint32_t page : touched) {
            exec_pool.markDirty(exec_pool.base() +
                                    static_cast<Addr>(page) * ps,
                                ps);
        }
    }
}

CampaignResult
Driver::run(const ProgramFn &pre, const ProgramFn &post)
{
    return runParallel(pre, post, 1);
}

CampaignResult
Driver::runParallel(const ProgramFn &pre, const ProgramFn &post,
                    unsigned threads)
{
    if (threads == 0)
        threads = 1;
    CampaignResult result;
    result.runConfig = cfg;
    result.stats.threads = threads;

    if (cfg.crashStatesOn() && cfg.crashImageMode) {
        fatal("--crash-states explores partial crash images itself "
              "and cannot combine with --crash-image");
    }
    CrashStateCtx cs_ctx;
    if (cfg.crashStatesOn() && !cfg.eadrOn()) {
        bool exhaustive = false;
        std::size_t n = 0;
        if (!DetectorConfig::parseCrashStates(cfg.crashStates,
                                              exhaustive, n)) {
            fatal("bad --crash-states mode \"%s\" (expected anchor, "
                  "sample:<n> or exhaustive)",
                  cfg.crashStates.c_str());
        }
        cs_ctx.exhaustive = exhaustive;
        // Exhaustive mode still samples frontiers beyond the
        // --oracle-frontier bound; match the oracle's fallback width.
        cs_ctx.sampleCount = n ? n : 64;
        csCtx = &cs_ctx;
    }

    obs::Timeline *tl =
        observer && observer->timeline.enabled() ? &observer->timeline
                                                 : nullptr;
    // The live registry costs one atomic load here; campaigns without
    // a live output (--live/--live-port/--live-jsonl) never touch it
    // again.
    obs::LiveMetrics *live =
        observer && observer->live.enabled() ? &observer->live
                                             : nullptr;

    // The campaign-start snapshot: one O(pool) copy into CoW pages;
    // every cursor's working/durable image forks it for O(pages)
    // pointer copies.
    pm::CowImage initial(pool.snapshot());

    // Step 1: pre-failure stage, traced.
    trace::TraceBuffer pre_trace;
    std::array<std::uint64_t, trace::opCount> pre_ops{};
    {
        obs::SpanScope span(tl, "pre-failure", "phase", 0);
        trace::PmRuntime rt(pool, pre_trace, trace::Stage::PreFailure);
        rt.setBatching(true);
        rt.setSameValueElision(cfg.elideSameValueWrites);
        auto t0 = std::chrono::steady_clock::now();
        try {
            pre(rt);
        } catch (const trace::StageComplete &) {
        }
        rt.setBatching(false); // flush the ring before reading counts
        result.stats.preSeconds = secondsSince(t0);
        result.stats.phases.note(obs::Phase::TraceCapture,
                                 result.stats.preSeconds);
        pre_ops = rt.opCounts();
        result.stats.sameValueElided = rt.sameValueElided();
    }
    result.stats.preTraceEntries = pre_trace.size();
    if (live) {
        live->count("pre_trace_entries", pre_trace.size());
        live->gauge("pre_seconds", result.stats.preSeconds);
    }

    if (observer)
        observer->notifyPreTrace(pre_trace);

    // Step 2: plan failure points before each ordering point.
    FailurePlan plan;
    {
        obs::SpanScope span(tl, "plan-failure-points", "phase", 0);
        auto t0 = std::chrono::steady_clock::now();
        plan = planFailurePoints(pre_trace, cfg);
        result.stats.phases.note(obs::Phase::Plan, secondsSince(t0));
    }

    // Step 2b (--backend=batched): group planned points by frontier
    // signature — an earlier kept point at the same ordering-point
    // source location exposed an identical frontier signature, so the
    // post-failure stage can only rediscover the representative's
    // findings. Each group is one scheduling unit; only its
    // representative executes. The oracle differential campaign
    // re-checks every folded point against its representative.
    std::uint32_t total_units =
        static_cast<std::uint32_t>(plan.points.size());
    struct WorkItem
    {
        std::uint32_t fp;
        std::uint32_t weight;
    };
    std::vector<WorkItem> schedule;
    if (cfg.batchingOn() && !plan.points.empty()) {
        obs::SpanScope span(tl, "plan-batches", "phase", 0);
        auto t0 = std::chrono::steady_clock::now();
        BatchPlan batches = planBatches(pre_trace, plan.points,
                                        cfg.granularity, cfg.eadrOn());
        result.stats.lintPrunedPoints = batches.foldedPoints();
        result.stats.batchGroups = batches.groups.size();
        schedule.reserve(batches.groups.size());
        for (const auto &g : batches.groups) {
            schedule.push_back(
                {g.rep, static_cast<std::uint32_t>(g.weight())});
        }
        result.stats.phases.note(obs::Phase::LintPrune,
                                 secondsSince(t0));
    } else {
        schedule.reserve(plan.points.size());
        for (std::uint32_t fp : plan.points)
            schedule.push_back({fp, 1});
    }
    result.stats.failurePoints = schedule.size();
    result.stats.orderingCandidates = plan.candidates;
    result.stats.elidedPoints = plan.elided;
    result.stats.poolBytes = pool.size();

    if (live)
        live->gauge("failure_points_planned", total_units);

    // Index the write log by page once; workers share it read-only.
    // Its cost bills to planning: both prepare the per-point loop.
    // base_sync_pages bounds where any working image can differ from
    // a zeroed pool (every logged write's page + the initial
    // snapshot's nonzero pages); chunk starts and checkpoint resyncs
    // restore that set instead of the whole pool.
    pm::ImageDeltaStore delta_store;
    std::set<std::uint32_t> base_sync_pages;
    if (cfg.deltaImagesOn()) {
        obs::SpanScope span(tl, "index-write-log", "phase", 0);
        auto t0 = std::chrono::steady_clock::now();
        delta_store = trace::buildDeltaStore(
            pre_trace, cfg.deltaPageSize, pool.range());
        deltaStore = &delta_store;
        delta_store.collectPages(
            0, static_cast<std::uint32_t>(pre_trace.size()),
            base_sync_pages);
        initial.collectNonZeroPages(cfg.deltaPageSize,
                                    base_sync_pages);
        chunkSyncPages = &base_sync_pages;
        result.stats.phases.note(obs::Phase::Plan, secondsSince(t0));
    }

    std::uint32_t trace_end =
        static_cast<std::uint32_t>(pre_trace.size());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(
                                           schedule.size(), 1)));

    // Steps 3-4: per schedule item (failure point, or signature group
    // under --backend=batched), reconstruct the image, run the
    // post-failure stage, and check its trace against the shadow PM.
    // Workers pull items off a shared index — dynamic load balancing
    // with no handoff of cursors: each worker's won items are still
    // in ascending seq order, so its shadow/image cursors advance
    // monotonically. Findings land in per-item sinks and merge in
    // item order after the join, so the merged result is identical
    // whatever the worker count or item-to-worker assignment.
    std::deque<BugSink> item_sinks(schedule.size());
    std::deque<CampaignStats> stats(threads);
    std::deque<PreCursor> cursors;
    for (unsigned t = 0; t < threads; t++)
        cursors.emplace_back(pool.range(), cfg, initial);

    // Per-worker observability sinks, merged deterministically
    // (worker order) into the observer after the join.
    std::deque<std::vector<double>> post_latency(threads);
    std::deque<std::array<std::uint64_t, trace::opCount>>
        post_ops(threads);
    for (auto &a : post_ops)
        a.fill(0);
    std::vector<int> tracks(threads, 0);
    if (tl && threads > 1) {
        for (unsigned t = 0; t < threads; t++)
            tracks[t] = tl->registerTrack(strprintf("worker-%u", t));
    }
    // Item i < threads is pre-assigned to worker i (every worker is
    // guaranteed work when there is enough to go around, and each
    // gets a warm cursor); the rest of the schedule is pulled off
    // the shared index. A worker's sequence of item indices is
    // strictly increasing either way, keeping its cursors monotonic.
    std::atomic<std::size_t> next_item{threads};
    std::atomic<std::size_t> units_done{0};
    std::atomic<std::size_t> bugs_found{0};
    std::mutex progress_lock;
    std::latch start_gate(threads);

    auto worker = [&](unsigned t) {
        if (threads > 1)
            setThreadLogLabel(strprintf("w%u", t));
        // Each worker executes post-failure stages on its own pool
        // replica at the same base address.
        pm::PmPool *exec_pool = &pool;
        std::unique_ptr<pm::PmPool> local;
        if (threads > 1) {
            local = std::make_unique<pm::PmPool>(pool.size(),
                                                 pool.base());
            exec_pool = local.get();
        }
        if (deltaStore)
            exec_pool->enableDirtyTracking(cfg.deltaPageSize);
        WorkerObs wobs{tl, tracks[t], &post_latency[t], &post_ops[t],
                       live};
        // All workers start pulling together — otherwise the first
        // spawned thread can drain a short queue before its peers
        // finish setting up their pool replicas.
        start_gate.arrive_and_wait();
        // Dedup across this worker's items, for progress counting
        // only (the authoritative dedup is the post-join merge).
        BugSink seen;
        bool first = true;
        for (;;) {
            std::size_t i;
            if (first) {
                first = false;
                i = t;
            } else {
                i = next_item.fetch_add(1, std::memory_order_relaxed);
            }
            if (i >= schedule.size())
                break;
            handleFailurePoint(cursors[t], *exec_pool, pre_trace, post,
                               schedule[i].fp, item_sinks[i], stats[t],
                               wobs);
            bool progress = observer && observer->wantsProgress();
            if (progress || live) {
                std::size_t before = seen.size();
                seen.merge(item_sinks[i]);
                std::size_t fresh = seen.size() - before;
                if (fresh) {
                    bugs_found += fresh;
                    if (live)
                        live->count("bugs", fresh);
                }
                // A finished group accounts for all its folded
                // members, so rates and ETAs track actual coverage.
                std::size_t done =
                    units_done.fetch_add(schedule[i].weight) +
                    schedule[i].weight;
                if (live) {
                    live->gauge("failure_points_done",
                                static_cast<double>(done));
                }
                if (progress) {
                    std::lock_guard<std::mutex> lock(progress_lock);
                    observer->notifyProgress(
                        {done, total_units, bugs_found.load()});
                }
            }
        }
        cursors[t].shadow.endPostReplay();
        exec_pool->disableDirtyTracking();
        if (threads > 1)
            setThreadLogLabel("");
    };

    // Zero anchor tick: lets progress consumers (the CLI meter's ETA
    // in particular) anchor their per-point rate at loop start, so
    // the first finished item — a whole signature group under
    // --backend=batched — is priced into the rate instead of lost to
    // the anchor.
    if (observer && observer->wantsProgress())
        observer->notifyProgress({0, total_units, 0});

    auto tpar0 = std::chrono::steady_clock::now();
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool_threads;
        for (unsigned t = 0; t < threads; t++)
            pool_threads.emplace_back(worker, t);
        for (auto &th : pool_threads)
            th.join();
    }
    double wall = secondsSince(tpar0);

    // Merge findings in item order: deterministic and identical to
    // the serial campaign regardless of which worker won which item.
    BugSink merged;
    for (auto &s : item_sinks)
        merged.merge(s);
    for (unsigned t = 0; t < threads; t++) {
        result.stats.postExecutions += stats[t].postExecutions;
        result.stats.postTraceEntries += stats[t].postTraceEntries;
        result.stats.crashStatesEnumerated +=
            stats[t].crashStatesEnumerated;
        result.stats.crashStatesExplored +=
            stats[t].crashStatesExplored;
        result.stats.crashStatesPruned += stats[t].crashStatesPruned;
        for (auto &p : stats[t].crashPruned)
            result.stats.crashPruned.push_back(std::move(p));
        if (threads == 1) {
            result.stats.postSeconds += stats[t].postSeconds;
            result.stats.backendSeconds += stats[t].backendSeconds;
        }
        result.stats.checksPerformed +=
            cursors[t].shadow.checksPerformed();
        result.stats.checksSkipped +=
            cursors[t].shadow.checksSkipped();
        result.stats.restore.merge(stats[t].restore);
        // Phase counts are serial/parallel-invariant; with workers the
        // summed seconds are CPU time, like the per-worker stats above.
        result.stats.phases.merge(stats[t].phases);
    }
    deltaStore = nullptr;
    chunkSyncPages = nullptr;
    csCtx = nullptr;
    if (threads > 1) {
        // Per-thread CPU times overlap; report the wall time split
        // proportionally like the serial breakdown would be.
        result.stats.postSeconds = wall;
    }

    // Performance bugs come from one full pre-trace replay, and the
    // pool is left holding the final pre-failure contents. The FSM
    // counters exported to the observer come from this cursor: it
    // covers the whole trace exactly once, so serial and parallel
    // campaigns register identical values.
    ShadowFsmCounters fsm;
    {
        obs::SpanScope span(tl, "perf-scan", "phase", 0);
        PreCursor full(pool.range(), cfg, initial);
        auto tb = std::chrono::steady_clock::now();
        advanceShadow(full, pre_trace, trace_end, &merged);
        advanceImage(full, pre_trace, trace_end);
        double scan_s = secondsSince(tb);
        result.stats.backendSeconds += scan_s;
        result.stats.phases.note(obs::Phase::Classify, scan_s);
        full.image.copyTo(pool);
        fsm = full.shadow.fsmCounters();
    }

    result.bugs = merged.bugs();

    if (observer && cfg.collectStats && obs::statsCompiledIn) {
        std::array<std::uint64_t, trace::opCount> post_ops_total{};
        std::vector<double> latency_all;
        for (unsigned t = 0; t < threads; t++) {
            for (std::size_t i = 0; i < trace::opCount; i++)
                post_ops_total[i] += post_ops[t][i];
            latency_all.insert(latency_all.end(),
                               post_latency[t].begin(),
                               post_latency[t].end());
        }
        fillObserverStats(result, pre_ops, post_ops_total, fsm,
                          latency_all);
    }
    return result;
}

void
Driver::fillObserverStats(
    const CampaignResult &res,
    const std::array<std::uint64_t, trace::opCount> &pre_ops,
    const std::array<std::uint64_t, trace::opCount> &post_ops,
    const ShadowFsmCounters &fsm,
    const std::vector<double> &post_latency)
{
    using obs::Scalar;

    obs::StatsRegistry &reg = observer->stats;
    const CampaignStats &s = res.stats;

    auto set = [&](const std::string &name, const std::string &desc,
                   double v) {
        reg.scalar(name, desc).set(v);
    };

    set("campaign.failure_points",
        "failure points planned (after elision)",
        static_cast<double>(s.failurePoints));
    set("campaign.ordering_candidates",
        "ordering points considered for failure injection",
        static_cast<double>(s.orderingCandidates));
    set("campaign.elided_points",
        "failure points skipped by trace elision",
        static_cast<double>(s.elidedPoints));
    set("campaign.lint.pruned_points",
        "failure points folded into batch representatives",
        static_cast<double>(s.lintPrunedPoints));
    set("campaign.batch.groups",
        "signature groups scheduled (--backend=batched)",
        static_cast<double>(s.batchGroups));
    set("campaign.batch.folded_points",
        "failure points covered by a group representative's run",
        static_cast<double>(s.lintPrunedPoints));
    set("campaign.trace.same_value_elided",
        "same-value stores elided at emit time (--elide-same-value)",
        static_cast<double>(s.sameValueElided));
    set("campaign.post_executions",
        "post-failure stage executions",
        static_cast<double>(s.postExecutions));
    set("campaign.crashstates.enumerated",
        "partial crash-state candidates enumerated (--crash-states)",
        static_cast<double>(s.crashStatesEnumerated));
    set("campaign.crashstates.explored",
        "partial crash-state candidates executed",
        static_cast<double>(s.crashStatesExplored));
    set("campaign.crashstates.pruned",
        "candidates skipped by equivalence-class pruning",
        static_cast<double>(s.crashStatesPruned));
    set("campaign.crashstates.partial_findings",
        "findings first exposed on a partial crash image",
        static_cast<double>(cfg.crashStatesOn()
                                ? res.partialImageFindings()
                                : 0));
    {
        Scalar &cs_en =
            reg.scalar("campaign.crashstates.enumerated", "");
        Scalar &cs_pr = reg.scalar("campaign.crashstates.pruned", "");
        reg.formula("campaign.crashstates.prune_ratio",
                    "fraction of enumerated candidates pruned as "
                    "equivalent",
                    [&cs_en, &cs_pr] {
                        return cs_en.value()
                                   ? cs_pr.value() / cs_en.value()
                                   : 0.0;
                    });
    }
    set("campaign.pre_trace_entries", "pre-failure trace entries",
        static_cast<double>(s.preTraceEntries));
    set("campaign.post_trace_entries",
        "post-failure trace entries (all executions)",
        static_cast<double>(s.postTraceEntries));
    set("campaign.checks_performed",
        "post-failure read checks performed",
        static_cast<double>(s.checksPerformed));
    set("campaign.checks_skipped",
        "post-failure read checks skipped (first-read opt)",
        static_cast<double>(s.checksSkipped));
    set("campaign.threads", "worker threads used",
        static_cast<double>(s.threads));
    set("campaign.bugs", "distinct findings",
        static_cast<double>(res.bugs.size()));
    set("campaign.pre_seconds", "pre-failure stage wall seconds",
        s.preSeconds);
    set("campaign.post_seconds", "post-failure stage wall seconds",
        s.postSeconds);
    set("campaign.backend_seconds",
        "image reconstruction + replay wall seconds",
        s.backendSeconds);

    Scalar &pre_s = reg.scalar("campaign.pre_seconds", "");
    Scalar &post_s = reg.scalar("campaign.post_seconds", "");
    Scalar &back_s = reg.scalar("campaign.backend_seconds", "");
    reg.formula("campaign.total_seconds",
                "pre + post + backend wall seconds",
                [&pre_s, &post_s, &back_s] {
                    return pre_s.value() + post_s.value() +
                           back_s.value();
                });
    Scalar &cand = reg.scalar("campaign.ordering_candidates", "");
    Scalar &elided = reg.scalar("campaign.elided_points", "");
    reg.formula("campaign.elision_ratio",
                "fraction of candidate points elided",
                [&cand, &elided] {
                    return cand.value() ? elided.value() / cand.value()
                                        : 0.0;
                });
    Scalar &fps = reg.scalar("campaign.failure_points", "");
    Scalar &pruned = reg.scalar("campaign.lint.pruned_points", "");
    reg.formula("campaign.lint.prune_ratio",
                "fraction of planned points folded by "
                "--backend=batched",
                [&fps, &pruned] {
                    double planned = fps.value() + pruned.value();
                    return planned ? pruned.value() / planned : 0.0;
                });

    // Delta-image engine restore volume. The baseline is what the
    // full-copy engine would have moved: one pool-sized copy per
    // restore.
    set("campaign.pool_bytes", "exec-pool capacity in bytes",
        static_cast<double>(s.poolBytes));
    set("campaign.delta.full_copies",
        "full-image restores (chunk starts, checkpoint cadence)",
        static_cast<double>(s.restore.fullCopies));
    set("campaign.delta.delta_restores",
        "page-granular partial restores",
        static_cast<double>(s.restore.deltaRestores));
    set("campaign.delta.pages_restored",
        "pages copied by partial restores",
        static_cast<double>(s.restore.pagesRestored));
    set("campaign.delta.bytes_restored",
        "bytes copied by partial restores",
        static_cast<double>(s.restore.bytesRestored));
    set("campaign.delta.bytes_full_copy",
        "bytes copied by full-image restores",
        static_cast<double>(s.restore.bytesFullCopy));
    set("campaign.delta.sync_restores",
        "from-scratch resyncs done page-granular instead of O(pool)",
        static_cast<double>(s.restore.syncRestores));
    Scalar &pool_b = reg.scalar("campaign.pool_bytes", "");
    Scalar &full_c = reg.scalar("campaign.delta.full_copies", "");
    Scalar &delta_r = reg.scalar("campaign.delta.delta_restores", "");
    Scalar &bytes_r = reg.scalar("campaign.delta.bytes_restored", "");
    Scalar &bytes_f = reg.scalar("campaign.delta.bytes_full_copy", "");
    reg.formula("campaign.delta.bytes_elided",
                "restore bytes saved vs full-copy baseline",
                [&pool_b, &full_c, &delta_r, &bytes_r, &bytes_f] {
                    double baseline = (full_c.value() +
                                       delta_r.value()) *
                                      pool_b.value();
                    return baseline -
                           (bytes_r.value() + bytes_f.value());
                });
    reg.formula("campaign.delta.restore_ratio",
                "restore bytes moved / full-copy baseline",
                [&pool_b, &full_c, &delta_r, &bytes_r, &bytes_f] {
                    double baseline = (full_c.value() +
                                       delta_r.value()) *
                                      pool_b.value();
                    return baseline ? (bytes_r.value() +
                                       bytes_f.value()) /
                                          baseline
                                    : 0.0;
                });

    // Shadow-PM persistency-FSM edge traversals (Fig. 6), from the
    // deterministic full-trace replay.
    for (std::size_t f = 0; f < ShadowFsmCounters::numStates; f++) {
        for (std::size_t t = 0; t < ShadowFsmCounters::numStates; t++) {
            std::uint64_t n = fsm.edge[f][t];
            if (!n)
                continue;
            auto from = static_cast<PersistState>(f);
            auto to = static_cast<PersistState>(t);
            set(strprintf("shadow_fsm.edge.%s_to_%s",
                          persistStateName(from), persistStateName(to)),
                "shadow-PM state transitions over the pre-trace",
                static_cast<double>(n));
        }
    }
    set("shadow_fsm.redundant_flushes",
        "flushes of lines with no modified data",
        static_cast<double>(fsm.redundantFlushes));
    set("shadow_fsm.fences", "fences replayed",
        static_cast<double>(fsm.fences));
    set("shadow_fsm.ordering_fences",
        "fences that persisted at least one pending line",
        static_cast<double>(fsm.orderingFences));

    // Per-op trace volumes.
    for (std::size_t i = 0; i < trace::opCount; i++) {
        auto op = static_cast<trace::Op>(i);
        if (pre_ops[i]) {
            set(strprintf("trace.pre.%s", trace::opName(op)),
                "pre-failure trace entries of this op",
                static_cast<double>(pre_ops[i]));
        }
        if (post_ops[i]) {
            set(strprintf("trace.post.%s", trace::opName(op)),
                "post-failure trace entries of this op (all "
                "executions)",
                static_cast<double>(post_ops[i]));
        }
    }

    // Post-failure execution latency distribution, in microseconds.
    obs::Histogram &h = reg.histogram(
        "campaign.post_exec_latency_us",
        "post-failure stage latency per failure point (us)");
    for (double sec : post_latency)
        h.sample(sec * 1e6);

    // Per-phase attribution of the campaign loop.
    obs::exportPhaseStats(reg, s.phases, s.backendSeconds);
}

} // namespace xfd::core
