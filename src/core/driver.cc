#include "core/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/logging.hh"
#include "lint/lint.hh"
#include "trace/buffer.hh"
#include "trace/iter.hh"
#include "trace/page_index.hh"

namespace xfd::core
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration<double>(steady_clock::now() - t0).count();
}

} // namespace

std::size_t
CampaignResult::count(BugType t) const
{
    std::size_t n = 0;
    for (const auto &b : bugs) {
        if (b.type == t)
            n++;
    }
    return n;
}

std::string
CampaignResult::summary() const
{
    std::string s = strprintf(
        "=== XFDetector report: %zu finding(s) ===\n"
        "failure points: %zu (candidates %zu, elided %zu%s), "
        "post-failure executions: %zu\n"
        "time: pre %.3fs, post %.3fs, backend %.3fs\n",
        bugs.size(), stats.failurePoints, stats.orderingCandidates,
        stats.elidedPoints,
        stats.lintPrunedPoints
            ? strprintf(", lint-pruned %zu", stats.lintPrunedPoints)
                  .c_str()
            : "",
        stats.postExecutions, stats.preSeconds, stats.postSeconds,
        stats.backendSeconds);
    for (const auto &b : bugs)
        s += b.str() + "\n";
    return s;
}

Driver::Driver(pm::PmPool &p, DetectorConfig c) : pool(p), cfg(c)
{
}

double
Driver::runBaseline(const ProgramFn &pre, bool traced)
{
    trace::TraceBuffer buf;
    trace::PmRuntime rt(pool, buf, trace::Stage::PreFailure);
    rt.setTracing(traced);
    auto t0 = std::chrono::steady_clock::now();
    try {
        pre(rt);
    } catch (const trace::StageComplete &) {
    }
    return secondsSince(t0);
}

void
Driver::advanceShadow(PreCursor &cur, const trace::TraceBuffer &pre,
                      std::uint32_t to, BugSink *perf_sink)
{
    using trace::Op;

    ShadowPM &shadow = cur.shadow;
    for (std::uint32_t &i = cur.shadowCursor; i < to; i++) {
        const auto &e = pre[i];
        bool detectable = e.has(trace::flagInRoi) &&
                          !e.has(trace::flagInternal) &&
                          !e.has(trace::flagSkipDetection);
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
            if (!e.has(trace::flagImageOnly)) {
                shadow.preWrite(e.addr, e.size, e.seq,
                                e.op == Op::NtWrite);
            }
            break;
          case Op::Clwb:
          case Op::ClflushOpt:
          case Op::Clflush:
            if (shadow.preFlush(e.addr, e.seq) && detectable &&
                perf_sink && cfg.reportPerformanceBugs) {
                BugReport r;
                r.type = BugType::Performance;
                r.addr = e.addr;
                r.size = e.size;
                r.reader = e.loc;
                r.note = "redundant writeback: no modified data in line";
                perf_sink->report(std::move(r));
            }
            break;
          case Op::Sfence:
          case Op::Mfence:
            shadow.preFence();
            break;
          case Op::Alloc:
            shadow.preAlloc(e.addr, e.size, e.seq);
            break;
          case Op::Free:
            shadow.preFree(e.addr, e.size);
            break;
          case Op::CommitVar:
            shadow.registerCommitVar(e.addr, e.size);
            break;
          case Op::CommitRange:
            shadow.registerCommitRange(e.aux, e.addr, e.size);
            break;
          case Op::TxAdd: {
            AddrRange r{e.addr, e.addr + e.size};
            bool duplicate = false;
            for (const auto &prev : cur.openTxAdds) {
                if (prev.begin <= r.begin && r.end <= prev.end) {
                    duplicate = true;
                    break;
                }
            }
            if (duplicate && detectable && perf_sink &&
                cfg.reportPerformanceBugs) {
                BugReport br;
                br.type = BugType::Performance;
                br.addr = e.addr;
                br.size = e.size;
                br.reader = e.loc;
                br.note = "duplicated TX_ADD of the same PM object";
                perf_sink->report(std::move(br));
            }
            if (!duplicate)
                cur.openTxAdds.push_back(r);
            break;
          }
          case Op::LibCall:
            if (trace::isTxBoundary(e))
                cur.openTxAdds.clear();
            break;
          default:
            break;
        }
    }
}

void
Driver::advanceImage(PreCursor &cur, const trace::TraceBuffer &pre,
                     std::uint32_t to)
{
    using trace::Op;

    for (std::uint32_t &i = cur.imageCursor; i < to; i++) {
        const auto &e = pre[i];
        if (e.isWrite()) {
            cur.image.applyWrite(e.addr, e.data.data(), e.data.size());
            Addr last = lineBase(e.addr + (e.size ? e.size - 1 : 0));
            for (Addr l = lineBase(e.addr); l <= last;
                 l += cacheLineSize) {
                // Frontier bookkeeping (provenance): the write is
                // in flight until a fence lands its line.
                cur.inflight[l].push_back(e.seq);
                if (e.op == Op::NtWrite)
                    cur.inflightPending.insert(l);
                if (cfg.crashImageMode) {
                    cur.dirtyLines.insert(l);
                    if (e.op == Op::NtWrite)
                        cur.pendingLines.insert(l);
                }
            }
            continue;
        }
        if (e.isFlush()) {
            // Flushing moves the line toward durability; it lands at
            // the next fence.
            if (cur.inflight.count(e.addr))
                cur.inflightPending.insert(e.addr);
            if (cfg.crashImageMode && cur.dirtyLines.count(e.addr))
                cur.pendingLines.insert(e.addr);
        } else if (e.isFence()) {
            for (Addr l : cur.inflightPending)
                cur.inflight.erase(l);
            cur.inflightPending.clear();
            if (!cfg.crashImageMode)
                continue;
            for (Addr l : cur.pendingLines) {
                std::size_t off = l - cur.image.base();
                std::memcpy(cur.durable.data() + off,
                            cur.image.data() + off, cacheLineSize);
                cur.dirtyLines.erase(l);
                if (deltaStore)
                    cur.durablePages.insert(deltaStore->pageOf(l));
            }
            cur.pendingLines.clear();
        }
    }
}

void
Driver::replayPost(PreCursor &cur, const trace::TraceBuffer &pre,
                   const trace::TraceBuffer &post, std::uint32_t fp,
                   BugSink &sink)
{
    using trace::Op;

    ShadowPM &shadow = cur.shadow;
    shadow.beginPostReplay();
    for (const auto &e : post) {
        switch (e.op) {
          case Op::Write:
          case Op::NtWrite:
            // Post-failure writes overwrite the old data; reading the
            // location afterwards is unconditionally fine (§5.4).
            shadow.postWrite(e.addr, e.size);
            break;
          case Op::Alloc:
            shadow.postWrite(e.addr, e.size);
            break;
          case Op::CommitVar:
            shadow.registerCommitVar(e.addr, e.size);
            break;
          case Op::CommitRange:
            shadow.registerCommitRange(e.aux, e.addr, e.size);
            break;
          case Op::Read: {
            if (!e.has(trace::flagInRoi) || e.has(trace::flagInternal) ||
                e.has(trace::flagSkipDetection)) {
                break;
            }
            ReadCheckResult res = shadow.checkPostRead(e.addr, e.size);
            if (res.verdict != ReadCheck::Race &&
                res.verdict != ReadCheck::SemanticBug) {
                break;
            }
            if (res.verdict == ReadCheck::SemanticBug &&
                cfg.crashImageMode) {
                // The commit-variable timestamps assume recovery
                // observes the *latest* commit write, which only the
                // paper's all-updates image guarantees; under a
                // realistic crash image the recovery may be acting on
                // an older committed version, so the semantic verdict
                // is not sound here.
                break;
            }
            BugReport r;
            r.type = res.verdict == ReadCheck::Race
                         ? BugType::CrossFailureRace
                         : BugType::CrossFailureSemantic;
            r.addr = res.addr;
            r.size = e.size;
            r.reader = e.loc;
            if (res.writerSeq != ReadCheckResult::noSeq)
                r.writer = pre[res.writerSeq].loc;
            r.failurePoint = fp;
            if (res.uninitialized)
                r.note = "location allocated but never initialized";
            else if (res.verdict == ReadCheck::SemanticBug)
                r.note = res.stale
                             ? "stale: last modified before the pre-last "
                               "commit write"
                             : "uncommitted: modified after the last "
                               "commit write";
            sink.report(std::move(r));
            break;
          }
          default:
            break;
        }
    }
    shadow.endPostReplay();
}

void
Driver::handleFailurePoint(PreCursor &cur, pm::PmPool &exec_pool,
                           const trace::TraceBuffer &pre,
                           const ProgramFn &post, std::uint32_t fp,
                           BugSink &sink, CampaignStats &stats,
                           const WorkerObs &wobs)
{
    obs::Timeline *tl = wobs.timeline;
    obs::SpanScope fp_span(tl, tl ? strprintf("fp#%u", fp)
                                  : std::string(),
                           "fp", wobs.track);

    // Findings collect in a local sink first, for two reasons: the
    // per-failure-point hook must see a finding's recurrence at later
    // points (the worker sink dedups across points), and provenance
    // (this point's write frontier) is annotated onto exactly the
    // findings this point produced before they merge.
    BugSink local;
    BugSink &fp_sink = local;

    auto tb0 = std::chrono::steady_clock::now();
    {
        obs::SpanScope span(tl, "reconstruct", "backend", wobs.track);
        // Performance bugs are collected by the dedicated full-trace
        // advance, not here (workers would double-report them).
        advanceShadow(cur, pre, fp, nullptr);
        advanceImage(cur, pre, fp);

        const pm::PmImage &src =
            cfg.crashImageMode ? cur.durable : cur.image;
        bool checkpoint_due =
            cfg.deltaCheckpointInterval != 0 &&
            cur.sinceCheckpoint >= cfg.deltaCheckpointInterval;
        if (!deltaStore) {
            pm::restoreFull(src, exec_pool, stats.restore);
        } else if (!cur.execSynced || checkpoint_due) {
            // Chunk start or checkpoint cadence: resync with one full
            // copy so divergence stays bounded.
            pm::restoreFull(src, exec_pool, stats.restore);
            exec_pool.clearDirtyPages();
            cur.durablePages.clear();
            cur.execSynced = true;
            cur.sinceCheckpoint = 0;
        } else {
            // The exec pool matches the source image as of the
            // previous restore except on (a) pages the image gained
            // since, and (b) pages the previous post-failure
            // execution soiled. Copy exactly that union.
            std::set<std::uint32_t> pages;
            if (cfg.crashImageMode)
                pages.swap(cur.durablePages);
            else
                deltaStore->collectPages(cur.lastRestoredSeq, fp,
                                         pages);
            exec_pool.drainDirtyPages(pages);
            pm::restorePages(src, exec_pool, deltaStore->pageSize(),
                             pages, stats.restore);
            cur.sinceCheckpoint++;
        }
        cur.lastRestoredSeq = fp;
        // Paranoia mode (XFD_DELTA_VALIDATE=1): after any restore the
        // exec pool must equal the source image byte-for-byte; a
        // mismatch means a mutation path missed markDirty() or the
        // write-log index missed a write. The equivalence suite runs
        // its campaigns under this check.
        static const bool validate =
            std::getenv("XFD_DELTA_VALIDATE") != nullptr;
        if (validate &&
            std::memcmp(src.data(), exec_pool.data(), src.size()) != 0) {
            std::size_t off = 0;
            while (src.data()[off] == exec_pool.data()[off])
                off++;
            panic("delta restore diverged at fp %u: pool offset %#zx "
                  "(page %zu) image=%02x pool=%02x",
                  fp, off, off / cfg.deltaPageSize, src.data()[off],
                  exec_pool.data()[off]);
        }
    }
    // The phase entry reuses the exact interval that feeds
    // backendSeconds, so restore + classify attribute the backend
    // identically in a serial campaign.
    double restore_s = secondsSince(tb0);
    stats.backendSeconds += restore_s;
    stats.phases.note(obs::Phase::Restore, restore_s);

    // This point's write frontier: the in-flight (not durably
    // persisted) write seqs as of fp, in ascending order — the
    // causal candidates for anything the post-failure stage trips
    // over. Captured before the post-failure run dirties anything.
    std::vector<std::uint32_t> frontier;
    for (const auto &ent : cur.inflight)
        frontier.insert(frontier.end(), ent.second.begin(),
                        ent.second.end());
    std::sort(frontier.begin(), frontier.end());
    frontier.erase(std::unique(frontier.begin(), frontier.end()),
                   frontier.end());

    trace::TraceBuffer post_trace;
    {
        obs::SpanScope span(tl, "post-exec", "post", wobs.track);
        trace::PmRuntime rt(exec_pool, post_trace,
                            trace::Stage::PostFailure);
        rt.setEntryCap(1u << 20);
        auto t0 = std::chrono::steady_clock::now();
        try {
            post(rt);
        } catch (const trace::StageComplete &) {
        } catch (const trace::PostFailureAbort &abort) {
            BugReport r;
            r.type = BugType::RecoveryFailure;
            r.reader = abort.loc;
            r.writer = pre[fp].loc;
            r.failurePoint = fp;
            r.note = abort.reason;
            fp_sink.report(std::move(r));
        } catch (const pm::BadPmAccess &bad) {
            // The post-failure stage dereferenced a corrupted
            // persistent pointer — the emulated equivalent of the
            // resumption segfault in the paper's Figure 1.
            BugReport r;
            r.type = BugType::RecoveryFailure;
            r.addr = bad.addr;
            r.size = static_cast<std::uint32_t>(bad.size);
            r.writer = pre[fp].loc;
            r.failurePoint = fp;
            r.note = strprintf(
                "post-failure crash: wild PM access at %#llx",
                static_cast<unsigned long long>(bad.addr));
            fp_sink.report(std::move(r));
        }
        double post_s = secondsSince(t0);
        stats.postSeconds += post_s;
        stats.phases.note(obs::Phase::RecoveryExec, post_s);
        if (wobs.postLatency)
            wobs.postLatency->push_back(post_s);
        if (wobs.postOps) {
            const auto &ops = rt.opCounts();
            for (std::size_t i = 0; i < ops.size(); i++)
                (*wobs.postOps)[i] += ops[i];
        }
        if (wobs.live)
            wobs.live->sample("post_exec_latency_us", post_s * 1e6);
    }
    stats.postExecutions++;
    stats.postTraceEntries += post_trace.size();

    auto tb1 = std::chrono::steady_clock::now();
    {
        obs::SpanScope span(tl, "replay", "backend", wobs.track);
        replayPost(cur, pre, post_trace, fp, fp_sink);
    }
    double classify_s = secondsSince(tb1);
    stats.backendSeconds += classify_s;
    stats.phases.note(obs::Phase::Classify, classify_s);

    // Annotate provenance onto the findings this exact point exposed:
    // its frontier, plus which frontier writes the post-failure image
    // contained (all of them under the paper's footnote-3 image, none
    // under --crash-image, where in flight means absent).
    trace::SubsetMask mask(frontier.size());
    if (!cfg.crashImageMode)
        mask.setAll();
    local.annotate([&](BugReport &b) {
        b.frontierSeqs = frontier;
        b.persistedMask = mask;
    });

    if (tl) {
        for (const auto &b : local.bugs()) {
            std::vector<std::pair<std::string, std::string>> args;
            args.emplace_back("type", bugTypeId(b.type));
            args.emplace_back("reader", b.reader.str());
            args.emplace_back("writer", b.writer.str());
            args.emplace_back("failure_point", strprintf("%u", fp));
            std::string seqs;
            for (std::uint32_t s : frontier) {
                if (!seqs.empty())
                    seqs += ',';
                seqs += strprintf("%u", s);
            }
            args.emplace_back("frontier", std::move(seqs));
            args.emplace_back("persisted_mask", mask.toHex());
            tl->recordInstant(strprintf("finding@fp#%u", fp), "finding",
                              wobs.track, tl->nowUs(), std::move(args));
        }
    }

    if (wobs.live) {
        wobs.live->count("failure_points");
        wobs.live->count("restore_us",
                         static_cast<std::uint64_t>(restore_s * 1e6));
        wobs.live->count("classify_us",
                         static_cast<std::uint64_t>(classify_s * 1e6));
    }

    if (observer && observer->onFailurePoint)
        observer->onFailurePoint(fp, local);
    sink.merge(local);
}

CampaignResult
Driver::run(const ProgramFn &pre, const ProgramFn &post)
{
    return runParallel(pre, post, 1);
}

CampaignResult
Driver::runParallel(const ProgramFn &pre, const ProgramFn &post,
                    unsigned threads)
{
    if (threads == 0)
        threads = 1;
    CampaignResult result;
    result.stats.threads = threads;

    obs::Timeline *tl =
        observer && observer->timeline.enabled() ? &observer->timeline
                                                 : nullptr;
    // The live registry costs one atomic load here; campaigns without
    // a live output (--live/--live-port/--live-jsonl) never touch it
    // again.
    obs::LiveMetrics *live =
        observer && observer->live.enabled() ? &observer->live
                                             : nullptr;

    pm::PmImage initial = pool.snapshot();

    // Step 1: pre-failure stage, traced.
    trace::TraceBuffer pre_trace;
    std::array<std::uint64_t, trace::opCount> pre_ops{};
    {
        obs::SpanScope span(tl, "pre-failure", "phase", 0);
        trace::PmRuntime rt(pool, pre_trace, trace::Stage::PreFailure);
        auto t0 = std::chrono::steady_clock::now();
        try {
            pre(rt);
        } catch (const trace::StageComplete &) {
        }
        result.stats.preSeconds = secondsSince(t0);
        result.stats.phases.note(obs::Phase::TraceCapture,
                                 result.stats.preSeconds);
        pre_ops = rt.opCounts();
    }
    result.stats.preTraceEntries = pre_trace.size();
    if (live) {
        live->count("pre_trace_entries", pre_trace.size());
        live->gauge("pre_seconds", result.stats.preSeconds);
    }

    if (observer && observer->onPreTraceReady)
        observer->onPreTraceReady(pre_trace);

    // Step 2: plan failure points before each ordering point.
    FailurePlan plan;
    {
        obs::SpanScope span(tl, "plan-failure-points", "phase", 0);
        auto t0 = std::chrono::steady_clock::now();
        plan = planFailurePoints(pre_trace, cfg);
        result.stats.phases.note(obs::Phase::Plan, secondsSince(t0));
    }

    // Step 2b (--lint-prune): drop points the static frontier
    // analysis proves redundant — an earlier kept point at the same
    // ordering-point source location exposed an identical frontier
    // signature, so the post-failure stage can only rediscover the
    // representative's findings. The oracle differential campaign
    // re-checks every pruned point against its representative.
    if (cfg.lintPrune && !plan.points.empty()) {
        obs::SpanScope span(tl, "lint-prune", "phase", 0);
        auto t0 = std::chrono::steady_clock::now();
        lint::PruneVerdicts v = lint::computePruneVerdicts(
            pre_trace, plan.points, cfg.granularity);
        result.stats.lintPrunedPoints = v.pruned.size();
        plan.points = std::move(v.kept);
        result.stats.phases.note(obs::Phase::LintPrune,
                                 secondsSince(t0));
    }
    result.stats.failurePoints = plan.points.size();
    result.stats.orderingCandidates = plan.candidates;
    result.stats.elidedPoints = plan.elided;
    result.stats.poolBytes = pool.size();

    if (live)
        live->gauge("failure_points_planned", plan.points.size());

    // Index the write log by page once; workers share it read-only.
    // Its cost bills to planning: both prepare the per-point loop.
    pm::ImageDeltaStore delta_store;
    if (cfg.deltaImages) {
        obs::SpanScope span(tl, "index-write-log", "phase", 0);
        auto t0 = std::chrono::steady_clock::now();
        delta_store = trace::buildDeltaStore(
            pre_trace, cfg.deltaPageSize, pool.range());
        deltaStore = &delta_store;
        result.stats.phases.note(obs::Phase::Plan, secondsSince(t0));
    }

    std::uint32_t trace_end =
        static_cast<std::uint32_t>(pre_trace.size());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(
                                           plan.points.size(), 1)));

    // Steps 3-4: per failure point, reconstruct the image, run the
    // post-failure stage, and check its trace against the shadow PM.
    // Failure points are split into contiguous chunks per worker.
    std::deque<BugSink> sinks(threads);
    std::deque<CampaignStats> stats(threads);
    std::deque<PreCursor> cursors;
    for (unsigned t = 0; t < threads; t++)
        cursors.emplace_back(pool.range(), cfg, initial);

    // Per-worker observability sinks, merged deterministically (chunk
    // order) into the observer after the join.
    std::deque<std::vector<double>> post_latency(threads);
    std::deque<std::array<std::uint64_t, trace::opCount>>
        post_ops(threads);
    for (auto &a : post_ops)
        a.fill(0);
    std::vector<int> tracks(threads, 0);
    if (tl && threads > 1) {
        for (unsigned t = 0; t < threads; t++)
            tracks[t] = tl->registerTrack(strprintf("worker-%u", t));
    }
    std::atomic<std::size_t> fps_done{0};
    std::atomic<std::size_t> bugs_found{0};
    std::mutex progress_lock;

    auto worker = [&](unsigned t) {
        std::size_t per =
            (plan.points.size() + threads - 1) / threads;
        std::size_t begin = t * per;
        std::size_t end =
            std::min(plan.points.size(), begin + per);
        if (begin >= end)
            return;
        if (threads > 1)
            setThreadLogLabel(strprintf("w%u", t));
        // Each worker executes post-failure stages on its own pool
        // replica at the same base address.
        pm::PmPool *exec_pool = &pool;
        std::unique_ptr<pm::PmPool> local;
        if (threads > 1) {
            local = std::make_unique<pm::PmPool>(pool.size(),
                                                 pool.base());
            exec_pool = local.get();
        }
        if (deltaStore)
            exec_pool->enableDirtyTracking(cfg.deltaPageSize);
        WorkerObs wobs{tl, tracks[t], &post_latency[t], &post_ops[t],
                       live};
        std::size_t reported = 0;
        for (std::size_t i = begin; i < end; i++) {
            handleFailurePoint(cursors[t], *exec_pool, pre_trace, post,
                               plan.points[i], sinks[t], stats[t],
                               wobs);
            bool progress = observer && observer->onProgress;
            if (progress || live) {
                std::size_t fresh = sinks[t].size() - reported;
                reported = sinks[t].size();
                if (fresh) {
                    bugs_found += fresh;
                    if (live)
                        live->count("bugs", fresh);
                }
                std::size_t done = ++fps_done;
                if (live) {
                    live->gauge("failure_points_done",
                                static_cast<double>(done));
                }
                if (progress) {
                    std::lock_guard<std::mutex> lock(progress_lock);
                    observer->onProgress(done, plan.points.size(),
                                         bugs_found.load());
                }
            }
        }
        cursors[t].shadow.endPostReplay();
        exec_pool->disableDirtyTracking();
        if (threads > 1)
            setThreadLogLabel("");
    };

    auto tpar0 = std::chrono::steady_clock::now();
    if (threads == 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool_threads;
        for (unsigned t = 0; t < threads; t++)
            pool_threads.emplace_back(worker, t);
        for (auto &th : pool_threads)
            th.join();
    }
    double wall = secondsSince(tpar0);

    // Merge per-worker findings in chunk order (deterministic).
    BugSink merged;
    for (unsigned t = 0; t < threads; t++) {
        merged.merge(sinks[t]);
        result.stats.postExecutions += stats[t].postExecutions;
        result.stats.postTraceEntries += stats[t].postTraceEntries;
        if (threads == 1) {
            result.stats.postSeconds += stats[t].postSeconds;
            result.stats.backendSeconds += stats[t].backendSeconds;
        }
        result.stats.checksPerformed +=
            cursors[t].shadow.checksPerformed();
        result.stats.checksSkipped +=
            cursors[t].shadow.checksSkipped();
        result.stats.restore.merge(stats[t].restore);
        // Phase counts are serial/parallel-invariant; with workers the
        // summed seconds are CPU time, like the per-worker stats above.
        result.stats.phases.merge(stats[t].phases);
    }
    deltaStore = nullptr;
    if (threads > 1) {
        // Per-thread CPU times overlap; report the wall time split
        // proportionally like the serial breakdown would be.
        result.stats.postSeconds = wall;
    }

    // Performance bugs come from one full pre-trace replay, and the
    // pool is left holding the final pre-failure contents. The FSM
    // counters exported to the observer come from this cursor: it
    // covers the whole trace exactly once, so serial and parallel
    // campaigns register identical values.
    ShadowFsmCounters fsm;
    {
        obs::SpanScope span(tl, "perf-scan", "phase", 0);
        PreCursor full(pool.range(), cfg, std::move(initial));
        auto tb = std::chrono::steady_clock::now();
        advanceShadow(full, pre_trace, trace_end, &merged);
        advanceImage(full, pre_trace, trace_end);
        double scan_s = secondsSince(tb);
        result.stats.backendSeconds += scan_s;
        result.stats.phases.note(obs::Phase::Classify, scan_s);
        full.image.copyTo(pool);
        fsm = full.shadow.fsmCounters();
    }

    result.bugs = merged.bugs();

    if (observer && cfg.collectStats && obs::statsCompiledIn) {
        std::array<std::uint64_t, trace::opCount> post_ops_total{};
        std::vector<double> latency_all;
        for (unsigned t = 0; t < threads; t++) {
            for (std::size_t i = 0; i < trace::opCount; i++)
                post_ops_total[i] += post_ops[t][i];
            latency_all.insert(latency_all.end(),
                               post_latency[t].begin(),
                               post_latency[t].end());
        }
        fillObserverStats(result, pre_ops, post_ops_total, fsm,
                          latency_all);
    }
    return result;
}

void
Driver::fillObserverStats(
    const CampaignResult &res,
    const std::array<std::uint64_t, trace::opCount> &pre_ops,
    const std::array<std::uint64_t, trace::opCount> &post_ops,
    const ShadowFsmCounters &fsm,
    const std::vector<double> &post_latency)
{
    using obs::Scalar;

    obs::StatsRegistry &reg = observer->stats;
    const CampaignStats &s = res.stats;

    auto set = [&](const std::string &name, const std::string &desc,
                   double v) {
        reg.scalar(name, desc).set(v);
    };

    set("campaign.failure_points",
        "failure points planned (after elision)",
        static_cast<double>(s.failurePoints));
    set("campaign.ordering_candidates",
        "ordering points considered for failure injection",
        static_cast<double>(s.orderingCandidates));
    set("campaign.elided_points",
        "failure points skipped by trace elision",
        static_cast<double>(s.elidedPoints));
    set("campaign.lint.pruned_points",
        "failure points skipped by --lint-prune",
        static_cast<double>(s.lintPrunedPoints));
    set("campaign.post_executions",
        "post-failure stage executions",
        static_cast<double>(s.postExecutions));
    set("campaign.pre_trace_entries", "pre-failure trace entries",
        static_cast<double>(s.preTraceEntries));
    set("campaign.post_trace_entries",
        "post-failure trace entries (all executions)",
        static_cast<double>(s.postTraceEntries));
    set("campaign.checks_performed",
        "post-failure read checks performed",
        static_cast<double>(s.checksPerformed));
    set("campaign.checks_skipped",
        "post-failure read checks skipped (first-read opt)",
        static_cast<double>(s.checksSkipped));
    set("campaign.threads", "worker threads used",
        static_cast<double>(s.threads));
    set("campaign.bugs", "distinct findings",
        static_cast<double>(res.bugs.size()));
    set("campaign.pre_seconds", "pre-failure stage wall seconds",
        s.preSeconds);
    set("campaign.post_seconds", "post-failure stage wall seconds",
        s.postSeconds);
    set("campaign.backend_seconds",
        "image reconstruction + replay wall seconds",
        s.backendSeconds);

    Scalar &pre_s = reg.scalar("campaign.pre_seconds", "");
    Scalar &post_s = reg.scalar("campaign.post_seconds", "");
    Scalar &back_s = reg.scalar("campaign.backend_seconds", "");
    reg.formula("campaign.total_seconds",
                "pre + post + backend wall seconds",
                [&pre_s, &post_s, &back_s] {
                    return pre_s.value() + post_s.value() +
                           back_s.value();
                });
    Scalar &cand = reg.scalar("campaign.ordering_candidates", "");
    Scalar &elided = reg.scalar("campaign.elided_points", "");
    reg.formula("campaign.elision_ratio",
                "fraction of candidate points elided",
                [&cand, &elided] {
                    return cand.value() ? elided.value() / cand.value()
                                        : 0.0;
                });
    Scalar &fps = reg.scalar("campaign.failure_points", "");
    Scalar &pruned = reg.scalar("campaign.lint.pruned_points", "");
    reg.formula("campaign.lint.prune_ratio",
                "fraction of planned points pruned by --lint-prune",
                [&fps, &pruned] {
                    double planned = fps.value() + pruned.value();
                    return planned ? pruned.value() / planned : 0.0;
                });

    // Delta-image engine restore volume. The baseline is what the
    // full-copy engine would have moved: one pool-sized copy per
    // restore.
    set("campaign.pool_bytes", "exec-pool capacity in bytes",
        static_cast<double>(s.poolBytes));
    set("campaign.delta.full_copies",
        "full-image restores (chunk starts, checkpoint cadence)",
        static_cast<double>(s.restore.fullCopies));
    set("campaign.delta.delta_restores",
        "page-granular partial restores",
        static_cast<double>(s.restore.deltaRestores));
    set("campaign.delta.pages_restored",
        "pages copied by partial restores",
        static_cast<double>(s.restore.pagesRestored));
    set("campaign.delta.bytes_restored",
        "bytes copied by partial restores",
        static_cast<double>(s.restore.bytesRestored));
    set("campaign.delta.bytes_full_copy",
        "bytes copied by full-image restores",
        static_cast<double>(s.restore.bytesFullCopy));
    Scalar &pool_b = reg.scalar("campaign.pool_bytes", "");
    Scalar &full_c = reg.scalar("campaign.delta.full_copies", "");
    Scalar &delta_r = reg.scalar("campaign.delta.delta_restores", "");
    Scalar &bytes_r = reg.scalar("campaign.delta.bytes_restored", "");
    Scalar &bytes_f = reg.scalar("campaign.delta.bytes_full_copy", "");
    reg.formula("campaign.delta.bytes_elided",
                "restore bytes saved vs full-copy baseline",
                [&pool_b, &full_c, &delta_r, &bytes_r, &bytes_f] {
                    double baseline = (full_c.value() +
                                       delta_r.value()) *
                                      pool_b.value();
                    return baseline -
                           (bytes_r.value() + bytes_f.value());
                });
    reg.formula("campaign.delta.restore_ratio",
                "restore bytes moved / full-copy baseline",
                [&pool_b, &full_c, &delta_r, &bytes_r, &bytes_f] {
                    double baseline = (full_c.value() +
                                       delta_r.value()) *
                                      pool_b.value();
                    return baseline ? (bytes_r.value() +
                                       bytes_f.value()) /
                                          baseline
                                    : 0.0;
                });

    // Shadow-PM persistency-FSM edge traversals (Fig. 6), from the
    // deterministic full-trace replay.
    for (std::size_t f = 0; f < ShadowFsmCounters::numStates; f++) {
        for (std::size_t t = 0; t < ShadowFsmCounters::numStates; t++) {
            std::uint64_t n = fsm.edge[f][t];
            if (!n)
                continue;
            auto from = static_cast<PersistState>(f);
            auto to = static_cast<PersistState>(t);
            set(strprintf("shadow_fsm.edge.%s_to_%s",
                          persistStateName(from), persistStateName(to)),
                "shadow-PM state transitions over the pre-trace",
                static_cast<double>(n));
        }
    }
    set("shadow_fsm.redundant_flushes",
        "flushes of lines with no modified data",
        static_cast<double>(fsm.redundantFlushes));
    set("shadow_fsm.fences", "fences replayed",
        static_cast<double>(fsm.fences));
    set("shadow_fsm.ordering_fences",
        "fences that persisted at least one pending line",
        static_cast<double>(fsm.orderingFences));

    // Per-op trace volumes.
    for (std::size_t i = 0; i < trace::opCount; i++) {
        auto op = static_cast<trace::Op>(i);
        if (pre_ops[i]) {
            set(strprintf("trace.pre.%s", trace::opName(op)),
                "pre-failure trace entries of this op",
                static_cast<double>(pre_ops[i]));
        }
        if (post_ops[i]) {
            set(strprintf("trace.post.%s", trace::opName(op)),
                "post-failure trace entries of this op (all "
                "executions)",
                static_cast<double>(post_ops[i]));
        }
    }

    // Post-failure execution latency distribution, in microseconds.
    obs::Histogram &h = reg.histogram(
        "campaign.post_exec_latency_us",
        "post-failure stage latency per failure point (us)");
    for (double sec : post_latency)
        h.sample(sec * 1e6);

    // Per-phase attribution of the campaign loop.
    obs::exportPhaseStats(reg, s.phases, s.backendSeconds);
}

} // namespace xfd::core
