/**
 * @file
 * Pre-failure-only crash-consistency checker — the baseline the paper
 * compares against (Fig. 3: "Prior works [22, 42]" = pmemcheck and
 * PMTest, which "only consider the pre-failure stage without testing
 * both the pre- and post-failure stages holistically").
 *
 * The checker replays only the pre-failure trace and applies the
 * rules those tools implement:
 *  - R1 "unpersisted at end": a RoI store never written back by the
 *    end of execution (pmemcheck's "stores not made persistent");
 *  - R2 "unlogged transactional write": a store inside an active
 *    transaction to a location not covered by any TX_ADD snapshot
 *    (PMTest's transaction rule);
 *  - R3 redundant flush (shared with XFDetector's performance bugs).
 *
 * By construction it cannot see the post-failure stage, so it
 * reports a false positive on programs whose *recovery* makes the
 * pre-failure laxity safe (the paper's recover_alt() example), and it
 * misses bugs that only manifest across the failure (the paper's
 * Figure 2 inverted-valid example).
 */

#ifndef XFD_CORE_PREFAILURE_CHECKER_HH
#define XFD_CORE_PREFAILURE_CHECKER_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "trace/buffer.hh"

namespace xfd::core
{

/** One baseline-checker finding. */
struct PreFailureFinding
{
    enum class Kind : std::uint8_t
    {
        UnpersistedAtEnd,   ///< R1
        UnloggedTxWrite,    ///< R2
        RedundantFlush,     ///< R3
    };

    Kind kind;
    Addr addr;
    std::uint32_t size;
    trace::SrcLoc writer;

    std::string str() const;
};

/** @return short name of @p k. */
const char *preFailureKindName(PreFailureFinding::Kind k);

/**
 * The baseline checker. Stateless between runs; check() replays one
 * pre-failure trace and returns deduplicated findings.
 */
class PreFailureChecker
{
  public:
    explicit PreFailureChecker(AddrRange pool);

    std::vector<PreFailureFinding>
    check(const trace::TraceBuffer &pre);

  private:
    AddrRange poolRange;
};

} // namespace xfd::core

#endif // XFD_CORE_PREFAILURE_CHECKER_HH
