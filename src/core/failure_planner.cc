#include "core/failure_planner.hh"

#include <algorithm>
#include <map>

#include "lint/lint.hh"
#include "trace/iter.hh"

namespace xfd::core
{

FailurePlan
planFailurePoints(const trace::TraceBuffer &pre, const DetectorConfig &cfg)
{
    using trace::Op;

    FailurePlan plan;
    // PM operations observed since the previous ordering point; a
    // failure point is useless if nothing could have changed state.
    std::size_t ops_since = 0;
    // Under the flush-free model a writeback changes no persistence
    // state, so an interval holding only flushes is as empty as one
    // holding nothing.
    const bool eadr = cfg.eadrOn();

    for (const auto &e : pre) {
        if (trace::isPmMutation(e)) {
            if (!(eadr && e.isFlush()))
                ops_since++;
            continue;
        }

        if (e.op == Op::FailurePoint) {
            // Explicit user-requested failure point: always honored.
            plan.points.push_back(e.seq);
            plan.candidates++;
            continue;
        }

        if (!e.isFence())
            continue;

        // Every fence is an ordering point for elision accounting,
        // even ones we cannot fail at.
        std::size_t ops_before = ops_since;
        ops_since = 0;

        bool eligible = e.has(trace::flagInRoi) &&
                        !e.has(trace::flagSkipFailure) &&
                        (!e.has(trace::flagInternal) ||
                         cfg.failureAtInternalFences);
        if (!eligible)
            continue;

        plan.candidates++;
        if (cfg.elideEmptyFailurePoints && ops_before == 0) {
            plan.elided++;
            continue;
        }
        plan.points.push_back(e.seq);
        if (cfg.maxFailurePoints &&
            plan.points.size() >= cfg.maxFailurePoints) {
            break;
        }
    }
    return plan;
}

BatchPlan
planBatches(const trace::TraceBuffer &pre,
            const std::vector<std::uint32_t> &points,
            unsigned granularity, bool flushFree)
{
    // The grouping identity is exactly the lint pass's prunability
    // relation: each kept point seeds a group, each pruned point
    // folds into its kept representative's group. The equivalence is
    // load-bearing — test_lint_e2e proves kept-only campaigns keep
    // byte-identical findings, which is what lets a representative's
    // run stand in for its members.
    lint::PruneVerdicts v =
        lint::computePruneVerdicts(pre, points, granularity, flushFree);

    BatchPlan plan;
    std::map<std::uint32_t, std::size_t> group_of;
    plan.groups.reserve(v.kept.size());
    for (std::uint32_t rep : v.kept) {
        group_of[rep] = plan.groups.size();
        plan.groups.push_back(BatchGroup{rep, {}});
    }
    for (const auto &p : v.pruned) {
        auto it = group_of.find(p.keptRep);
        if (it == group_of.end()) {
            // A pruned point always names a kept representative; be
            // defensive and promote it rather than lose coverage.
            group_of[p.fp] = plan.groups.size();
            plan.groups.push_back(BatchGroup{p.fp, {}});
            continue;
        }
        plan.groups[it->second].folded.push_back(p.fp);
    }
    // kept is in plan order (ascending); keep the schedule sorted by
    // representative so each worker's pulls stay monotonic and the
    // final merge order matches the serial campaign's.
    std::sort(plan.groups.begin(), plan.groups.end(),
              [](const BatchGroup &a, const BatchGroup &b) {
                  return a.rep < b.rep;
              });
    return plan;
}

} // namespace xfd::core
