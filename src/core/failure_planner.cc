#include "core/failure_planner.hh"

#include "trace/iter.hh"

namespace xfd::core
{

FailurePlan
planFailurePoints(const trace::TraceBuffer &pre, const DetectorConfig &cfg)
{
    using trace::Op;

    FailurePlan plan;
    // PM operations observed since the previous ordering point; a
    // failure point is useless if nothing could have changed state.
    std::size_t ops_since = 0;

    for (const auto &e : pre) {
        if (trace::isPmMutation(e)) {
            ops_since++;
            continue;
        }

        if (e.op == Op::FailurePoint) {
            // Explicit user-requested failure point: always honored.
            plan.points.push_back(e.seq);
            plan.candidates++;
            continue;
        }

        if (!e.isFence())
            continue;

        // Every fence is an ordering point for elision accounting,
        // even ones we cannot fail at.
        std::size_t ops_before = ops_since;
        ops_since = 0;

        bool eligible = e.has(trace::flagInRoi) &&
                        !e.has(trace::flagSkipFailure) &&
                        (!e.has(trace::flagInternal) ||
                         cfg.failureAtInternalFences);
        if (!eligible)
            continue;

        plan.candidates++;
        if (cfg.elideEmptyFailurePoints && ops_before == 0) {
            plan.elided++;
            continue;
        }
        plan.points.push_back(e.seq);
        if (cfg.maxFailurePoints &&
            plan.points.size() >= cfg.maxFailurePoints) {
            break;
        }
    }
    return plan;
}

} // namespace xfd::core
