/**
 * @file
 * Finding provenance rendering (xfdetect --explain).
 *
 * Turns one finding's causal chain — the pre-failure writer, the
 * failure point that exposed it, the write frontier in flight at that
 * point and the persisted-subset mask of the post-failure image —
 * into a human-readable walkthrough. The same chain is embedded
 * machine-readably in the xfd-report-v1 "provenance" object and as
 * timeline "finding" instant args; this is the terminal view.
 */

#ifndef XFD_CORE_EXPLAIN_HH
#define XFD_CORE_EXPLAIN_HH

#include <string>

#include "core/driver.hh"
#include "trace/buffer.hh"

namespace xfd::core
{

/**
 * Render the causal chain of the finding(s) @p selector names.
 *
 * @param res      the campaign's deduplicated result
 * @param selector "F3" or "3" for one finding (ids follow report
 *                 order, 1-based), "all" for every finding
 * @param pre      the pre-failure trace, for resolving frontier seqs
 *                 to source locations (may be null: seqs render bare)
 * @param err      set to a message when the selector does not parse
 *                 or names no finding
 * @return the rendering, empty on error
 */
std::string renderExplain(const CampaignResult &res,
                          const std::string &selector,
                          const trace::TraceBuffer *pre,
                          std::string *err);

} // namespace xfd::core

#endif // XFD_CORE_EXPLAIN_HH
