#include "mutate/operators.hh"

namespace xfd::mutate
{

const char *
mutationOpName(MutationOp op)
{
    switch (op) {
      case MutationOp::DropFlush: return "drop_flush";
      case MutationOp::DropFence: return "drop_fence";
      case MutationOp::DemoteFlush: return "demote_flush";
      case MutationOp::SkipTxAdd: return "skip_tx_add";
      case MutationOp::CommitBeforeData: return "commit_before_data";
      case MutationOp::StaleBackup: return "stale_backup";
      case MutationOp::AddFlush: return "add_flush";
      case MutationOp::AddFence: return "add_fence";
      case MutationOp::ReorderCommit: return "reorder_commit";
      case MutationOp::AddTxAdd: return "add_tx_add";
    }
    return "?";
}

bool
parseMutationOps(const std::string &spec, PerOp<bool> &enabled,
                 std::string *err)
{
    enabled.fill(false);
    if (spec == "all") {
        // "all" means every *fault* operator; repair operators are
        // driven by --fix plans, not planted as mutants.
        for (std::size_t i = 0; i < faultOpCount; i++)
            enabled[i] = true;
        return true;
    }
    if (spec == "quick") {
        enabled[static_cast<std::size_t>(MutationOp::DropFlush)] = true;
        enabled[static_cast<std::size_t>(MutationOp::DropFence)] = true;
        return true;
    }

    std::size_t pos = 0;
    bool any = false;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string name = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        bool found = false;
        for (std::size_t i = 0; i < mutationOpCount; i++) {
            if (name == mutationOpName(static_cast<MutationOp>(i))) {
                enabled[i] = true;
                found = true;
                any = true;
                break;
            }
        }
        if (!found) {
            if (err)
                *err = "unknown mutation operator: " + name;
            return false;
        }
    }
    if (!any) {
        if (err)
            *err = "empty mutation operator list";
        return false;
    }
    return true;
}

} // namespace xfd::mutate
