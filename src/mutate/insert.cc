#include "mutate/insert.hh"

#include <cstring>

namespace xfd::mutate
{

namespace
{

bool
locMatches(const trace::SrcLoc &a, const trace::SrcLoc &b)
{
    return b.file[0] != '\0' && a.line == b.line &&
           std::strcmp(a.file, b.file) == 0;
}

/** Flags an inserted repair entry carries (see insert.hh). */
std::uint16_t
repairFlags(const trace::TraceEntry &host)
{
    return static_cast<std::uint16_t>(host.flags | trace::flagInternal |
                                      trace::flagSkipFailure |
                                      trace::flagRepair);
}

trace::TraceEntry
mkEntry(trace::Op op, const trace::TraceEntry &host, Addr addr,
        std::uint32_t size)
{
    trace::TraceEntry e;
    e.op = op;
    e.addr = addr;
    e.size = size;
    e.loc = host.loc;
    e.flags = repairFlags(host);
    return e;
}

/** Append one Clwb per cache line covering [addr, addr+size), matching
 * how PmRuntime::clwb decomposes a multi-line flush into per-line
 * entries.  A single range-sized Clwb would leave lines beyond the
 * first Modified in the shadow state. */
std::size_t
pushLineFlushes(std::vector<trace::TraceEntry> &extra,
                const trace::TraceEntry &host, Addr addr,
                std::uint32_t size)
{
    Addr first = lineBase(addr);
    Addr last = lineBase(addr + (size ? size - 1 : 0));
    std::size_t n = 0;
    for (Addr line = first; line <= last; line += cacheLineSize) {
        extra.push_back(mkEntry(trace::Op::Clwb, host, line,
                                static_cast<std::uint32_t>(cacheLineSize)));
        n++;
    }
    return n;
}

} // namespace

InsertionMutation::InsertionMutation(const EditScript &s) : script(s)
{
    drops.insert(s.dropSeqs.begin(), s.dropSeqs.end());
    skips.insert(s.skipTxAdds.begin(), s.skipTxAdds.end());
}

bool
InsertionMutation::onEmit(trace::TraceEntry &e)
{
    (void)e;
    curSeq = static_cast<std::uint32_t>(calls++);
    if (drops.count(curSeq)) {
        dropsDone++;
        return false;
    }
    if (script.commitSeq != EditScript::noSeq &&
        curSeq == script.commitSeq) {
        // Stash the commit store (payload included — deterministic
        // re-execution reproduces the baseline bytes) and drop it;
        // onInsert re-emits it after the target fence.
        stash = e;
        stashed = true;
        return false;
    }
    return true;
}

void
InsertionMutation::onInsert(const trace::TraceEntry &e, bool kept,
                            std::vector<trace::TraceEntry> &extra)
{
    if (kept && e.isWrite() &&
        locMatches(e.loc, script.flushFenceAfterWritesAt)) {
        std::size_t lines = pushLineFlushes(extra, e, e.addr, e.size);
        extra.push_back(mkEntry(trace::Op::Sfence, e, 0, 0));
        insertedCount += lines + 1;
    }
    if (kept && e.isFlush() &&
        locMatches(e.loc, script.fenceAfterFlushAt)) {
        extra.push_back(mkEntry(trace::Op::Sfence, e, 0, 0));
        insertedCount += 1;
    }
    if (script.reinsertAfterSeq != EditScript::noSeq &&
        curSeq == script.reinsertAfterSeq && stashed && !reinserted) {
        trace::TraceEntry w = stash;
        w.flags = repairFlags(stash);
        extra.push_back(std::move(w));
        std::size_t lines =
            pushLineFlushes(extra, stash, stash.addr, stash.size);
        extra.push_back(mkEntry(trace::Op::Sfence, stash, 0, 0));
        insertedCount += lines + 2;
        reinserted = true;
    }
}

trace::MutationHook::TxAddAction
InsertionMutation::onTxAdd()
{
    std::uint64_t idx = txAddCalls++;
    if (skips.count(idx)) {
        skipsDone++;
        return TxAddAction::Skip;
    }
    return TxAddAction::Normal;
}

bool
InsertionMutation::fired() const
{
    if (dropsDone != drops.size() || skipsDone != skips.size())
        return false;
    if (script.commitSeq != EditScript::noSeq && !reinserted)
        return false;
    if (script.flushFenceAfterWritesAt.file[0] != '\0' &&
        insertedCount == 0) {
        return false;
    }
    if (script.fenceAfterFlushAt.file[0] != '\0' && insertedCount == 0)
        return false;
    return true;
}

} // namespace xfd::mutate
