/**
 * @file
 * Insertion mutations: the repair operators (add_flush, add_fence,
 * reorder_commit, add_tx_add) run the fault operators in reverse.
 *
 * Where ActiveMutation perturbs exactly one planned occurrence to
 * *plant* a bug, an InsertionMutation applies a whole edit script to
 * *remove* one: it drops entries by their baseline position, skips
 * TX_ADD calls by occurrence, and splices synthesized CLWB/SFENCE
 * entries (or a re-ordered commit store) into the trace through
 * MutationHook::onInsert. The repair advisor (src/fix) synthesizes
 * one script per finding and machine-checks it by re-running the
 * campaign over the edited trace.
 *
 * Addressing rules:
 *
 *  - onEmit is invoked for every would-be entry whether or not a
 *    previous one was dropped, so the running call index equals the
 *    entry's seq in the *unedited* baseline trace. Drops, the commit
 *    store to move, and the fence to re-insert it after are all
 *    addressed by that baseline seq.
 *  - A skipped TX_ADD changes what the PM library emits downstream
 *    (the TxAdd entry and the commit-time flushes of its range), so
 *    scripts that skip TX_ADDs must use only occurrence addressing —
 *    the synthesizer never mixes skips with seq-addressed edits.
 *  - Inserted entries carry flagInternal | flagSkipFailure on top of
 *    the host entry's context: they advance the persistency FSM like
 *    any library-issued writeback, but are neither failure points nor
 *    reportable operations — the model of a fix whose persist the
 *    library guarantees (pmlib::atomicStore's SkipFailureScope).
 */

#ifndef XFD_MUTATE_INSERT_HH
#define XFD_MUTATE_INSERT_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "trace/entry.hh"
#include "trace/mutation.hh"

namespace xfd::mutate
{

/**
 * One trace-edit script: everything a repair plan changes about the
 * pre-failure trace, in baseline-trace coordinates.
 */
struct EditScript
{
    static constexpr std::uint32_t noSeq = ~std::uint32_t{0};

    /** Baseline seqs of entries to drop (redundant flushes/fences). */
    std::vector<std::uint32_t> dropSeqs;

    /** TX_ADD call occurrences to skip (duplicated snapshots). */
    std::vector<std::uint64_t> skipTxAdds;

    /**
     * add_flush + add_fence: after every Write/NtWrite whose source
     * location matches, splice a covering CLWB plus an SFENCE.
     * Unset (empty file) = off.
     */
    trace::SrcLoc flushFenceAfterWritesAt;

    /**
     * add_fence: after every flush whose source location matches,
     * splice an SFENCE (the writeback exists, its fence is missing).
     */
    trace::SrcLoc fenceAfterFlushAt;

    /**
     * reorder_commit: drop the commit-variable store at commitSeq and
     * re-emit it (with CLWB + SFENCE) right after the fence at
     * reinsertAfterSeq, where its guarded data has become durable.
     */
    std::uint32_t commitSeq = noSeq;
    std::uint32_t reinsertAfterSeq = noSeq;

    bool
    empty() const
    {
        return dropSeqs.empty() && skipTxAdds.empty() &&
               flushFenceAfterWritesAt.file[0] == '\0' &&
               fenceAfterFlushAt.file[0] == '\0' &&
               commitSeq == noSeq;
    }
};

/** MutationHook applying one EditScript during re-execution. */
class InsertionMutation : public trace::MutationHook
{
  public:
    explicit InsertionMutation(const EditScript &script);

    bool onEmit(trace::TraceEntry &e) override;
    void onInsert(const trace::TraceEntry &e, bool kept,
                  std::vector<trace::TraceEntry> &extra) override;
    TxAddAction onTxAdd() override;

    /** Every planned edit was reached and applied. */
    bool fired() const;

    /** Entries spliced into the trace so far. */
    std::size_t inserted() const { return insertedCount; }

  private:
    const EditScript &script;
    std::set<std::uint32_t> drops;
    std::set<std::uint64_t> skips;
    std::uint64_t calls = 0;
    std::uint64_t txAddCalls = 0;
    /** Baseline seq of the entry the current onEmit/onInsert saw. */
    std::uint32_t curSeq = EditScript::noSeq;
    std::size_t dropsDone = 0;
    std::size_t skipsDone = 0;
    std::size_t insertedCount = 0;
    trace::TraceEntry stash;
    bool stashed = false;
    bool reinserted = false;
};

} // namespace xfd::mutate

#endif // XFD_MUTATE_INSERT_HH
