#include "mutate/plan.hh"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>

#include "common/logging.hh"
#include "trace/runtime.hh"

namespace xfd::mutate
{

namespace
{

constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

/** Sorted set of disjoint half-open byte ranges. */
class RangeSet
{
  public:
    void
    add(Addr b, Addr e)
    {
        if (b >= e)
            return;
        auto it = iv.upper_bound(b);
        if (it != iv.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= b) {
                b = prev->first;
                if (prev->second > e)
                    e = prev->second;
                it = iv.erase(prev);
            }
        }
        while (it != iv.end() && it->first <= e) {
            if (it->second > e)
                e = it->second;
            it = iv.erase(it);
        }
        iv[b] = e;
    }

    void
    add(const AddrRange &r)
    {
        add(r.begin, r.end);
    }

    void
    subtract(Addr b, Addr e)
    {
        if (b >= e)
            return;
        auto it = iv.lower_bound(b);
        if (it != iv.begin()) {
            auto prev = std::prev(it);
            if (prev->second > b) {
                Addr tailEnd = prev->second;
                prev->second = b;
                if (tailEnd > e)
                    iv[e] = tailEnd;
            }
        }
        it = iv.lower_bound(b);
        while (it != iv.end() && it->first < e) {
            if (it->second <= e) {
                it = iv.erase(it);
            } else {
                Addr tailEnd = it->second;
                iv.erase(it);
                iv[e] = tailEnd;
                break;
            }
        }
    }

    void
    subtract(const AddrRange &r)
    {
        subtract(r.begin, r.end);
    }

    bool
    intersects(Addr b, Addr e) const
    {
        if (b >= e)
            return false;
        auto it = iv.lower_bound(b);
        if (it != iv.begin() && std::prev(it)->second > b)
            return true;
        return it != iv.end() && it->first < e;
    }

    /** Clamped copies of the stored ranges overlapping [b, e). */
    std::vector<AddrRange>
    intersect(Addr b, Addr e) const
    {
        std::vector<AddrRange> out;
        if (b >= e)
            return out;
        auto it = iv.lower_bound(b);
        if (it != iv.begin() && std::prev(it)->second > b)
            --it;
        for (; it != iv.end() && it->first < e; ++it) {
            Addr rb = it->first < b ? b : it->first;
            Addr re = it->second > e ? e : it->second;
            if (rb < re)
                out.push_back(AddrRange{rb, re});
        }
        return out;
    }

    std::vector<AddrRange>
    ranges() const
    {
        std::vector<AddrRange> out;
        out.reserve(iv.size());
        for (const auto &[b, e] : iv)
            out.push_back(AddrRange{b, e});
        return out;
    }

    void clear() { iv.clear(); }
    bool empty() const { return iv.empty(); }

  private:
    std::map<Addr, Addr> iv;
};

/** A write the backend checks post-failure reads against. */
bool
checkedAppWrite(const trace::TraceEntry &e)
{
    return e.isWrite() && !e.has(trace::flagInternal) &&
           !e.has(trace::flagImageOnly) && !e.has(trace::flagSkipDetection);
}

/** Whether the failure planner may inject a point at fence @p e. */
bool
fenceEligible(const trace::TraceEntry &e, const core::DetectorConfig &cfg)
{
    return e.has(trace::flagInRoi) && !e.has(trace::flagSkipFailure) &&
           (!e.has(trace::flagInternal) || cfg.failureAtInternalFences);
}

/** One outermost transaction (txBegin .. txCommit/txAbort). */
struct TxInfo
{
    std::size_t beginIdx = 0;
    std::size_t endIdx = npos;
    bool committed = false;
    /** (trace index, range) of each TX_ADD annotation. */
    std::vector<std::pair<std::size_t, AddrRange>> adds;
    /** Checked application bytes written inside the transaction. */
    RangeSet writes;
};

struct TracePrecomputation
{
    std::vector<std::size_t> fenceIdx;
    std::vector<bool> fenceOk; ///< parallel to fenceIdx
    std::vector<std::pair<std::size_t, AddrRange>> frees;
    /** Per cache line: trace indices of every flush entry. */
    std::map<Addr, std::vector<std::size_t>> flushesByLine;
    RangeSet commitCovered;
    bool allCommitCovered = false;
    std::vector<TxInfo> txs;
    /** Transaction owning each TX_ADD trace index. */
    std::map<std::size_t, std::size_t> txOfAdd;
    /** Transaction ending at each txCommit LibCall trace index. */
    std::map<std::size_t, std::size_t> txOfCommit;
};

TracePrecomputation
precompute(const trace::TraceBuffer &pre, const core::DetectorConfig &cfg)
{
    TracePrecomputation pc;
    std::size_t commitVars = 0, commitRanges = 0;
    std::size_t openTx = npos;

    for (std::size_t i = 0; i < pre.size(); i++) {
        const trace::TraceEntry &e = pre[i];
        AddrRange r{e.addr, e.addr + e.size};
        switch (e.op) {
          case trace::Op::Sfence:
          case trace::Op::Mfence:
            pc.fenceIdx.push_back(i);
            pc.fenceOk.push_back(fenceEligible(e, cfg));
            break;
          case trace::Op::Clwb:
          case trace::Op::ClflushOpt:
          case trace::Op::Clflush:
            pc.flushesByLine[lineBase(e.addr)].push_back(i);
            break;
          case trace::Op::Free:
            pc.frees.emplace_back(i, r);
            break;
          case trace::Op::CommitVar:
            commitVars++;
            pc.commitCovered.add(r);
            break;
          case trace::Op::CommitRange:
            commitRanges++;
            pc.commitCovered.add(r);
            break;
          case trace::Op::TxAdd:
            if (openTx != npos) {
                pc.txs[openTx].adds.emplace_back(i, r);
                pc.txOfAdd[i] = openTx;
            }
            break;
          case trace::Op::LibCall:
            if (std::strcmp(e.label, trace::labels::txBegin) == 0) {
                pc.txs.push_back(TxInfo{});
                pc.txs.back().beginIdx = i;
                openTx = pc.txs.size() - 1;
            } else if (openTx != npos &&
                       std::strcmp(e.label, trace::labels::txCommit) == 0) {
                pc.txs[openTx].endIdx = i;
                pc.txs[openTx].committed = true;
                pc.txOfCommit[i] = openTx;
                openTx = npos;
            } else if (openTx != npos &&
                       std::strcmp(e.label, trace::labels::txAbort) == 0) {
                pc.txs[openTx].endIdx = i;
                openTx = npos;
            }
            break;
          default:
            if (checkedAppWrite(e) && openTx != npos)
                pc.txs[openTx].writes.add(r);
            break;
        }
    }

    // A commit variable registered without explicit ranges covers the
    // whole pool in the backend's consistency clause; treat everything
    // as maskable then (conservative: fewer candidates, never a
    // mutant whose detection the clause could suppress).
    pc.allCommitCovered = commitVars > 0 && commitRanges == 0;
    return pc;
}

/** First fence index > @p i, or npos. */
std::size_t
nextFence(const TracePrecomputation &pc, std::size_t i)
{
    auto it = std::upper_bound(pc.fenceIdx.begin(), pc.fenceIdx.end(), i);
    return it == pc.fenceIdx.end() ? npos : *it;
}

/** First *eligible* fence index > @p i, or npos. */
std::size_t
nextEligibleFence(const TracePrecomputation &pc, std::size_t i)
{
    auto it = std::upper_bound(pc.fenceIdx.begin(), pc.fenceIdx.end(), i);
    for (; it != pc.fenceIdx.end(); ++it) {
        if (pc.fenceOk[it - pc.fenceIdx.begin()])
            return *it;
    }
    return npos;
}

/** Drop bytes whose shadow cells a later Free resets. */
void
subtractLaterFrees(RangeSet &set, const TracePrecomputation &pc,
                   std::size_t i)
{
    for (const auto &[idx, r] : pc.frees) {
        if (idx > i)
            set.subtract(r);
    }
}

/** Another flush entry of line @p line in the same fence window? */
bool
flushedTwiceInWindow(const TracePrecomputation &pc, Addr line,
                     std::size_t i, std::size_t windowEnd)
{
    std::size_t windowBegin = 0;
    auto it = std::lower_bound(pc.fenceIdx.begin(), pc.fenceIdx.end(), i);
    if (it != pc.fenceIdx.begin())
        windowBegin = *std::prev(it);
    for (std::size_t j : pc.flushesByLine.at(line)) {
        if (j != i && j > windowBegin &&
            (windowEnd == npos || j < windowEnd))
            return true;
    }
    return false;
}

/** Any flush entry covering a line of [b, e) with index in (i, last]? */
bool
flushedWithin(const TracePrecomputation &pc, Addr b, Addr e,
              std::size_t i, std::size_t last)
{
    for (Addr line = lineBase(b); line < e; line += cacheLineSize) {
        auto it = pc.flushesByLine.find(line);
        if (it == pc.flushesByLine.end())
            continue;
        for (std::size_t j : it->second) {
            if (j > i && j <= last)
                return true;
        }
    }
    return false;
}

} // namespace

std::string
Mutant::describe() const
{
    return strprintf("%s #%llu @ %s:%u", mutationOpName(op),
                     static_cast<unsigned long long>(occurrence),
                     site.file, site.line);
}

std::vector<Mutant>
enumerateMutants(const trace::TraceBuffer &pre,
                 const core::DetectorConfig &cfg, const PerOp<bool> &ops)
{
    auto on = [&](MutationOp op) {
        return ops[static_cast<std::size_t>(op)];
    };

    TracePrecomputation pc = precompute(pre, cfg);
    std::vector<Mutant> out;

    auto emit = [&](MutationOp op, std::uint64_t occ,
                    const trace::SrcLoc &site, RangeSet &&affected,
                    std::size_t idx) {
        if (pc.allCommitCovered)
            return;
        for (const AddrRange &r : pc.commitCovered.ranges())
            affected.subtract(r);
        subtractLaterFrees(affected, pc, idx);
        if (affected.empty())
            return;
        Mutant m;
        m.op = op;
        m.occurrence = occ;
        m.site = site;
        m.affected = affected.ranges();
        out.push_back(std::move(m));
    };

    // Byte-granular persistence model of checked application writes.
    RangeSet modified; ///< written, not yet flushed
    RangeSet pending;  ///< flushed (or non-temporal), awaiting a fence

    std::uint64_t flushOcc = 0, fenceOcc = 0, ntOcc = 0;
    std::uint64_t txAddOcc = 0, commitOcc = 0;

    for (std::size_t i = 0; i < pre.size(); i++) {
        const trace::TraceEntry &e = pre[i];

        if (e.isFlush()) {
            Addr line = lineBase(e.addr);
            std::uint64_t occ = flushOcc++;
            if (on(MutationOp::DropFlush) && e.has(trace::flagInRoi)) {
                RangeSet dirty;
                for (const AddrRange &r :
                     modified.intersect(line, line + cacheLineSize))
                    dirty.add(r);
                // Detection window: any eligible fence after the drop
                // while no rescuing flush of the same line has both
                // run and been fenced.
                std::size_t rescue = npos;
                for (std::size_t j : pc.flushesByLine.at(line)) {
                    if (j > i) {
                        rescue = j;
                        break;
                    }
                }
                std::size_t limit =
                    rescue == npos ? npos : nextFence(pc, rescue);
                std::size_t fp = nextEligibleFence(pc, i);
                bool detectable =
                    fp != npos && (limit == npos || fp <= limit) &&
                    !flushedTwiceInWindow(pc, line, i, nextFence(pc, i));
                if (detectable && !dirty.empty())
                    emit(MutationOp::DropFlush, occ, e.loc,
                         std::move(dirty), i);
            }
            // Model the flush: dirty bytes of the line go pending.
            for (const AddrRange &r :
                 modified.intersect(line, line + cacheLineSize)) {
                pending.add(r);
                modified.subtract(r);
            }
            continue;
        }

        if (e.isFence()) {
            std::uint64_t occ = fenceOcc++;
            if (on(MutationOp::DropFence) && e.has(trace::flagInRoi)) {
                // Without this fence the pending bytes stay
                // write-back pending until the successor fence, whose
                // failure point observes the race — so the successor
                // must exist and be eligible.
                std::size_t succ = nextFence(pc, i);
                bool detectable =
                    succ != npos &&
                    pc.fenceOk[std::lower_bound(pc.fenceIdx.begin(),
                                                pc.fenceIdx.end(), succ) -
                               pc.fenceIdx.begin()];
                if (detectable && !pending.empty()) {
                    RangeSet affected;
                    for (const AddrRange &r : pending.ranges())
                        affected.add(r);
                    emit(MutationOp::DropFence, occ, e.loc,
                         std::move(affected), i);
                }
            }
            pending.clear();
            continue;
        }

        switch (e.op) {
          case trace::Op::Write:
            if (checkedAppWrite(e)) {
                modified.add(e.addr, e.addr + e.size);
                pending.subtract(e.addr, e.addr + e.size);
            }
            break;

          case trace::Op::NtWrite: {
            std::uint64_t occ = ntOcc++;
            if (checkedAppWrite(e)) {
                if (on(MutationOp::DemoteFlush) &&
                    e.has(trace::flagInRoi)) {
                    // Demoted to a cached store, the bytes persist
                    // only via an explicit flush. Detection needs an
                    // eligible fence after the fence that would have
                    // retired the original, with no flush of the
                    // bytes' lines before it.
                    std::size_t f1 = nextFence(pc, i);
                    std::size_t f2 =
                        f1 == npos ? npos : nextEligibleFence(pc, f1);
                    bool detectable =
                        f2 != npos &&
                        !flushedWithin(pc, e.addr, e.addr + e.size, i,
                                       f2);
                    if (detectable) {
                        RangeSet affected;
                        affected.add(e.addr, e.addr + e.size);
                        emit(MutationOp::DemoteFlush, occ, e.loc,
                             std::move(affected), i);
                    }
                }
                // Non-temporal stores bypass the cache: pending until
                // the next fence.
                pending.add(e.addr, e.addr + e.size);
                modified.subtract(e.addr, e.addr + e.size);
            }
            break;
          }

          case trace::Op::TxAdd: {
            std::uint64_t occ = txAddOcc++;
            auto it = pc.txOfAdd.find(i);
            if (it == pc.txOfAdd.end())
                break;
            const TxInfo &tx = pc.txs[it->second];
            if (!tx.committed || !e.has(trace::flagInRoi))
                break;
            if (nextEligibleFence(pc, tx.endIdx) == npos)
                break;
            // Unlogged bytes the transaction dirties: never flushed
            // at commit, never rolled back — modified at the commit's
            // retire failure point. Bytes another (still published)
            // TX_ADD of the same transaction covers are flushed
            // normally and stay protected.
            RangeSet affected;
            for (const AddrRange &r :
                 tx.writes.intersect(e.addr, e.addr + e.size))
                affected.add(r);
            for (const auto &[addIdx, r] : tx.adds) {
                if (addIdx != i)
                    affected.subtract(r);
            }
            if (affected.empty())
                break;
            if (on(MutationOp::SkipTxAdd)) {
                RangeSet copy = affected;
                emit(MutationOp::SkipTxAdd, occ, e.loc, std::move(copy),
                     i);
            }
            if (on(MutationOp::StaleBackup))
                emit(MutationOp::StaleBackup, occ, e.loc,
                     std::move(affected), i);
            break;
          }

          case trace::Op::LibCall: {
            if (std::strcmp(e.label, trace::labels::txCommit) != 0)
                break;
            std::uint64_t occ = commitOcc++;
            if (!on(MutationOp::CommitBeforeData))
                break;
            auto it = pc.txOfCommit.find(i);
            if (it == pc.txOfCommit.end())
                break;
            const TxInfo &tx = pc.txs[it->second];
            if (!e.has(trace::flagInRoi))
                break;
            if (nextEligibleFence(pc, i) == npos)
                break;
            // Retiring the log first exposes every logged dirty byte
            // at the failure points between retirement and the data
            // fence: the log no longer rolls them back and the data
            // flushes have not happened yet.
            RangeSet affected;
            for (const auto &[addIdx, r] : tx.adds) {
                for (const AddrRange &w :
                     tx.writes.intersect(r.begin, r.end))
                    affected.add(w);
            }
            if (!affected.empty())
                emit(MutationOp::CommitBeforeData, occ, e.loc,
                     std::move(affected), i);
            break;
          }

          case trace::Op::Free:
            modified.subtract(e.addr, e.addr + e.size);
            pending.subtract(e.addr, e.addr + e.size);
            break;

          default:
            break;
        }
    }

    return out;
}

bool
ActiveMutation::onEmit(trace::TraceEntry &e)
{
    switch (op) {
      case MutationOp::DropFlush:
        if (e.isFlush() && flushes++ == target) {
            hit = true;
            return false;
        }
        return true;
      case MutationOp::DropFence:
        if (e.isFence() && fences++ == target) {
            hit = true;
            return false;
        }
        return true;
      case MutationOp::DemoteFlush:
        if (e.op == trace::Op::NtWrite && ntWrites++ == target) {
            hit = true;
            e.op = trace::Op::Write;
        }
        return true;
      default:
        return true;
    }
}

trace::MutationHook::TxAddAction
ActiveMutation::onTxAdd()
{
    if (op != MutationOp::SkipTxAdd && op != MutationOp::StaleBackup)
        return TxAddAction::Normal;
    if (txAdds++ != target)
        return TxAddAction::Normal;
    hit = true;
    return op == MutationOp::SkipTxAdd ? TxAddAction::Skip
                                       : TxAddAction::StalePublish;
}

bool
ActiveMutation::onTxCommit()
{
    if (op != MutationOp::CommitBeforeData)
        return false;
    if (commits++ != target)
        return false;
    hit = true;
    return true;
}

} // namespace xfd::mutate
