/**
 * @file
 * Mutation planning: enumerate the fault-injection sites of a traced
 * program and describe the ground truth each mutant plants.
 *
 * The enumerator replays the *unmutated* pre-failure trace through a
 * byte-granular persistence model (the same Modified → WritebackPending
 * → retired lattice as core/shadow_pm) and keeps only sites whose
 * mutation provably leaves application bytes unprotected at some
 * failure point the planner will inject:
 *
 *  - a dropped flush must be the only flush of its cache line in its
 *    fence window, must cover dirty application bytes, and an eligible
 *    fence must follow before any rescuing flush of the same line;
 *  - a dropped fence must have pending application bytes and a
 *    successor fence that is failure-point eligible (detection happens
 *    at the successor, while the bytes are still write-back pending);
 *  - a demoted non-temporal store needs an eligible fence *after* the
 *    fence that would have persisted it, with no flush in between;
 *  - TX_ADD and commit mutations need the owning transaction to commit
 *    and to contain in-transaction writes to the mutated range.
 *
 * Bytes covered by commit variables/ranges are excluded (the backend's
 * consistency clause can mask the race) and so are bytes freed later
 * in the trace (the shadow state of freed cells is reset). Ground
 * truth is always BugType::CrossFailureRace: every operator plants an
 * unpersisted-then-read ordering violation, the paper's cross-failure
 * race (§3.1).
 *
 * Occurrences, not trace indices, identify sites: the k-th flush, the
 * k-th fence, the k-th TX_ADD call. The injection hook counts the same
 * event stream while the mutant executes, so a plan made from the
 * baseline trace addresses the re-executed program exactly (the
 * frontend is deterministic; see DESIGN.md §8).
 */

#ifndef XFD_MUTATE_PLAN_HH
#define XFD_MUTATE_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/bug_report.hh"
#include "core/config.hh"
#include "mutate/operators.hh"
#include "trace/buffer.hh"
#include "trace/mutation.hh"

namespace xfd::mutate
{

/** One planned fault injection with its ground truth. */
struct Mutant
{
    MutationOp op = MutationOp::DropFlush;
    /** Which occurrence of the operator's event kind to mutate (the
        k-th flush/fence/non-temporal store/TX_ADD/commit). */
    std::uint64_t occurrence = 0;
    /** Source location of the mutated operation (for reports). */
    trace::SrcLoc site;
    /** Finding class a detector must report to score a true positive. */
    core::BugType expected = core::BugType::CrossFailureRace;
    /** PM bytes the mutation leaves unprotected; a finding matches
        this mutant iff its class is @ref expected and its address
        range overlaps one of these. */
    std::vector<AddrRange> affected;

    /** "drop_flush #3 @ file:line" — scoreboard/debug identifier. */
    std::string describe() const;
};

/**
 * Enumerate every detectable mutant of the program that produced
 * @p pre. @p cfg supplies the failure-point eligibility knobs
 * (failureAtInternalFences); @p ops selects the operators to plan.
 * The trace must come from a single-threaded pre-failure stage —
 * occurrence counting assumes one deterministic event order.
 */
std::vector<Mutant> enumerateMutants(const trace::TraceBuffer &pre,
                                     const core::DetectorConfig &cfg,
                                     const PerOp<bool> &ops);

/**
 * The injection hook: counts the mutated operator's event stream
 * during re-execution and perturbs exactly the planned occurrence.
 * Attach to the pre-failure PmRuntime via setMutationHook(); the
 * post-failure stages run unhooked.
 */
class ActiveMutation : public trace::MutationHook
{
  public:
    ActiveMutation(MutationOp op, std::uint64_t occurrence)
        : op(op), target(occurrence)
    {
    }

    bool onEmit(trace::TraceEntry &e) override;
    TxAddAction onTxAdd() override;
    bool onTxCommit() override;

    /** Whether the planned occurrence was reached and perturbed. */
    bool fired() const { return hit; }

  private:
    MutationOp op;
    std::uint64_t target;
    std::uint64_t flushes = 0;
    std::uint64_t fences = 0;
    std::uint64_t ntWrites = 0;
    std::uint64_t txAdds = 0;
    std::uint64_t commits = 0;
    bool hit = false;
};

} // namespace xfd::mutate

#endif // XFD_MUTATE_PLAN_HH
