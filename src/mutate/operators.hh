/**
 * @file
 * Mutation-operator vocabulary.
 *
 * Each operator turns one site in a correct program into a planted
 * persistency bug with known ground truth (the finding class and the
 * PM bytes it leaves unprotected). The set mirrors the bug taxonomy
 * of the paper's §3 and §6.3: missing writebacks and fences (the
 * cross-failure races of Table 4), broken undo logging, and commit
 * ordering violations.
 *
 * The last four operators are *insertion* (repair) operators: they
 * run the fault operators in reverse, splicing entries into the trace
 * via MutationHook::onInsert instead of dropping them. The repair
 * advisor (src/fix) uses them to apply synthesized fixes; the mutant
 * planner never enumerates them (see faultOpCount).
 */

#ifndef XFD_MUTATE_OPERATORS_HH
#define XFD_MUTATE_OPERATORS_HH

#include <array>
#include <cstddef>
#include <string>

namespace xfd::mutate
{

/** The fault-injection operators the engine can apply. */
enum class MutationOp : unsigned
{
    /** Drop one flush (CLWB/CLFLUSHOPT/CLFLUSH) trace entry. */
    DropFlush,
    /** Drop one fence (SFENCE/MFENCE) trace entry. */
    DropFence,
    /** Turn one non-temporal store into a plain cached store. */
    DemoteFlush,
    /** Skip one TX_ADD: the range is never snapshotted or logged. */
    SkipTxAdd,
    /** Retire the tx log before the data ranges are flushed. */
    CommitBeforeData,
    /** Write one undo-log backup but never publish its entry count. */
    StaleBackup,

    /** Insert a CLWB covering a racy writer's bytes (repair). */
    AddFlush,
    /** Insert an SFENCE draining a pending writeback (repair). */
    AddFence,
    /** Re-emit a commit-variable store after its data's fence (repair). */
    ReorderCommit,
    /** Flag a missing TX_ADD before the first in-tx write (repair). */
    AddTxAdd,
};

/**
 * Total operator count, fault + repair. PerOp arrays span all of
 * them so scoreboards and stats can report repair applications.
 */
inline constexpr std::size_t mutationOpCount = 10;

/**
 * Count of *fault* operators — the prefix of MutationOp the mutant
 * planner enumerates. Repair operators past this index are only ever
 * applied deliberately by src/fix, never planted as bugs.
 */
inline constexpr std::size_t faultOpCount = 6;

/** True for the insertion (repair) operators. */
constexpr bool
isRepairOp(MutationOp op)
{
    return static_cast<std::size_t>(op) >= faultOpCount;
}

/** Per-operator flag/score array, indexed by MutationOp. */
template <typename T>
using PerOp = std::array<T, mutationOpCount>;

/** Stable identifier ("drop_flush") used in flags, JSON and stats. */
const char *mutationOpName(MutationOp op);

/**
 * Parse an operator spec: "all" (every operator), "quick" (the
 * drop_flush/drop_fence pair), or a comma-separated list of operator
 * names.
 * @return false (with *err set) on an unknown name or empty spec.
 */
bool parseMutationOps(const std::string &spec, PerOp<bool> &enabled,
                      std::string *err);

} // namespace xfd::mutate

#endif // XFD_MUTATE_OPERATORS_HH
