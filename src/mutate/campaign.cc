#include "mutate/campaign.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "core/campaign_json.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"
#include "xfd.hh"

namespace xfd::mutate
{

namespace
{

/** Same identity the BugSink dedupes on, plus the class. */
std::string
findingKey(const core::BugReport &b)
{
    return strprintf("%d|%s:%u|%s:%u", static_cast<int>(b.type),
                     b.reader.file, b.reader.line, b.writer.file,
                     b.writer.line);
}

bool
matchesGroundTruth(const core::BugReport &b, const Mutant &m)
{
    if (b.type != m.expected)
        return false;
    AddrRange read{b.addr, b.addr + std::max<std::size_t>(b.size, 1)};
    for (const AddrRange &r : m.affected) {
        if (read.overlaps(r))
            return true;
    }
    return false;
}

/**
 * Deterministic per-operator subsample: xorshift-shuffle each
 * operator's candidates with a seed-derived state, keep the first
 * @p cap, restore trace order. No global RNG: the same (plan, seed,
 * cap) always keeps the same mutants.
 */
void
applyPerOpCap(std::vector<Mutant> &mutants, std::size_t cap,
              std::size_t seed)
{
    if (cap == 0)
        return;
    std::vector<Mutant> kept;
    kept.reserve(mutants.size());
    for (std::size_t op = 0; op < mutationOpCount; op++) {
        std::vector<Mutant> mine;
        for (const Mutant &m : mutants) {
            if (static_cast<std::size_t>(m.op) == op)
                mine.push_back(m);
        }
        if (mine.size() > cap) {
            std::uint64_t state =
                (seed + 1) * 0x9e3779b97f4a7c15ull + op;
            auto next = [&state] {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                return state;
            };
            for (std::size_t i = mine.size(); i > 1; i--)
                std::swap(mine[i - 1], mine[next() % i]);
            mine.resize(cap);
            std::sort(mine.begin(), mine.end(),
                      [](const Mutant &a, const Mutant &b) {
                          return a.occurrence < b.occurrence;
                      });
        }
        kept.insert(kept.end(), mine.begin(), mine.end());
    }
    mutants.swap(kept);
}

void
writeScore(obs::JsonWriter &w, const OpScore &s)
{
    w.beginObject();
    w.field("mutants", static_cast<std::uint64_t>(s.mutants));
    w.field("detected", static_cast<std::uint64_t>(s.detected));
    w.field("true_positives",
            static_cast<std::uint64_t>(s.truePositives));
    w.field("false_positives",
            static_cast<std::uint64_t>(s.falsePositives));
    w.field("precision", s.precision());
    w.field("recall", s.recall());
    w.field("f1", s.f1());
    w.endObject();
}

} // namespace

MutationReport
runMutationCampaign(const MutationConfig &mcfg)
{
    MutationReport rep;
    rep.seed = mcfg.seed;

    // The inner campaigns must never recurse into mutation mode, and
    // run plain — oracle cross-checking of mutants is the differential
    // harness's job (src/oracle/diff), not each inner campaign's.
    core::DetectorConfig dcfg = mcfg.detector;
    dcfg.mutateOps.clear();
    dcfg.oracleMode.clear();
    dcfg.oracleArtifactDir.clear();

    // Trace the unmutated pre-failure stage once; the plan addresses
    // re-executions of the same deterministic program by occurrence.
    trace::TraceBuffer baseTrace;
    {
        pm::PmPool scratch(mcfg.poolBytes);
        trace::PmRuntime rt(scratch, baseTrace, trace::Stage::PreFailure);
        try {
            mcfg.pre(rt);
        } catch (const trace::StageComplete &) {
        }
    }

    std::vector<Mutant> mutants =
        enumerateMutants(baseTrace, dcfg, mcfg.ops);
    rep.enumerated = mutants.size();
    applyPerOpCap(mutants, mcfg.maxPerOp, mcfg.seed);

    auto runOne = [&](trace::MutationHook *hook,
                      core::CampaignObserver *obs) {
        auto campaign = Campaign::forProgram(
                            [&](trace::PmRuntime &rt) {
                                rt.setMutationHook(hook);
                                mcfg.pre(rt);
                            },
                            mcfg.post)
                            .poolSize(mcfg.poolBytes)
                            .threads(mcfg.threads)
                            .config(dcfg);
        if (obs)
            campaign.observer(obs);
        return campaign.run();
    };

    // Baseline: the workload is correct by assumption, so everything
    // found here is a false positive — and pre-existing findings must
    // not score as detections of a mutant.
    rep.baseline = runOne(nullptr, mcfg.observer);
    rep.baselineFindings = rep.baseline.bugs.size();
    std::set<std::string> baselineKeys;
    for (const core::BugReport &b : rep.baseline.bugs)
        baselineKeys.insert(findingKey(b));

    for (std::size_t i = 0; i < mutants.size(); i++) {
        const Mutant &m = mutants[i];
        ActiveMutation act(m.op, m.occurrence);
        core::CampaignResult res = runOne(&act, nullptr);

        MutantOutcome out;
        out.mutant = m;
        out.fired = act.fired();
        if (!out.fired)
            warn("mutation %s never fired", m.describe().c_str());
        for (const core::BugReport &b : res.bugs) {
            if (baselineKeys.count(findingKey(b)))
                continue;
            if (matchesGroundTruth(b, m))
                out.matchedFindings++;
            else
                out.unmatchedFindings++;
        }
        out.detected = out.matchedFindings > 0;

        OpScore &sc = rep.perOp[static_cast<std::size_t>(m.op)];
        sc.mutants++;
        sc.detected += out.detected ? 1 : 0;
        sc.truePositives += out.matchedFindings;
        sc.falsePositives += out.unmatchedFindings;
        rep.outcomes.push_back(std::move(out));

        if (mcfg.onMutant)
            mcfg.onMutant(i + 1, mutants.size(), m,
                          rep.outcomes.back().detected);
    }

    for (const OpScore &sc : rep.perOp) {
        rep.aggregate.mutants += sc.mutants;
        rep.aggregate.detected += sc.detected;
        rep.aggregate.truePositives += sc.truePositives;
        rep.aggregate.falsePositives += sc.falsePositives;
    }
    rep.aggregate.falsePositives += rep.baselineFindings;
    return rep;
}

std::string
MutationReport::scoreboard() const
{
    std::string s = strprintf(
        "=== mutation scoreboard: %zu mutant(s), %zu detected ===\n",
        aggregate.mutants, aggregate.detected);
    s += strprintf("%-20s %7s %8s %7s %5s %5s %9s %6s\n", "operator",
                   "mutants", "detected", "recall", "TP", "FP",
                   "precision", "F1");
    for (std::size_t op = 0; op < mutationOpCount; op++) {
        const OpScore &sc = perOp[op];
        if (sc.mutants == 0)
            continue;
        s += strprintf("%-20s %7zu %8zu %7.3f %5zu %5zu %9.3f %6.3f\n",
                       mutationOpName(static_cast<MutationOp>(op)),
                       sc.mutants, sc.detected, sc.recall(),
                       sc.truePositives, sc.falsePositives,
                       sc.precision(), sc.f1());
    }
    s += strprintf("%-20s %7zu %8zu %7.3f %5zu %5zu %9.3f %6.3f\n",
                   "aggregate", aggregate.mutants, aggregate.detected,
                   aggregate.recall(), aggregate.truePositives,
                   aggregate.falsePositives, aggregate.precision(),
                   aggregate.f1());
    s += strprintf(
        "baseline findings (counted as false positives): %zu\n",
        baselineFindings);
    for (const MutantOutcome &out : outcomes) {
        if (!out.detected)
            s += strprintf("  MISSED  %s\n",
                           out.mutant.describe().c_str());
    }
    return s;
}

void
MutationReport::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.field("seed", static_cast<std::uint64_t>(seed));
    w.field("enumerated", static_cast<std::uint64_t>(enumerated));
    w.field("mutants", static_cast<std::uint64_t>(aggregate.mutants));
    w.field("baseline_findings",
            static_cast<std::uint64_t>(baselineFindings));
    w.key("per_operator").beginObject();
    for (std::size_t op = 0; op < mutationOpCount; op++) {
        if (perOp[op].mutants == 0)
            continue;
        w.key(mutationOpName(static_cast<MutationOp>(op)));
        writeScore(w, perOp[op]);
    }
    w.endObject();
    w.key("aggregate");
    writeScore(w, aggregate);
    w.endObject();
}

void
exportMutationStats(const MutationReport &r, obs::StatsRegistry &reg)
{
    auto scalar = [&reg](const std::string &name, const char *desc,
                         double v) -> obs::Scalar & {
        obs::Scalar &s = reg.scalar(name, desc);
        s.set(v);
        return s;
    };

    scalar("campaign.mutation.enumerated", "mutants the planner found",
           static_cast<double>(r.enumerated));
    obs::Scalar &mutants =
        scalar("campaign.mutation.mutants", "mutant campaigns run",
               static_cast<double>(r.aggregate.mutants));
    obs::Scalar &detected =
        scalar("campaign.mutation.detected",
               "mutants with a matching finding",
               static_cast<double>(r.aggregate.detected));
    obs::Scalar &tp =
        scalar("campaign.mutation.true_positives",
               "findings matching planted ground truth",
               static_cast<double>(r.aggregate.truePositives));
    obs::Scalar &fp =
        scalar("campaign.mutation.false_positives",
               "findings matching no planted bug (incl. baseline)",
               static_cast<double>(r.aggregate.falsePositives));
    scalar("campaign.mutation.baseline_findings",
           "findings of the unmutated baseline run",
           static_cast<double>(r.baselineFindings));

    reg.formula("campaign.mutation.recall", "detected / mutants",
                [&mutants, &detected] {
                    return mutants.value()
                               ? detected.value() / mutants.value()
                               : 1.0;
                });
    reg.formula("campaign.mutation.precision", "TP / (TP + FP)",
                [&tp, &fp] {
                    double denom = tp.value() + fp.value();
                    return denom ? tp.value() / denom : 1.0;
                });

    for (std::size_t op = 0; op < mutationOpCount; op++) {
        const OpScore &sc = r.perOp[op];
        if (sc.mutants == 0)
            continue;
        std::string prefix = std::string("campaign.mutation.") +
                             mutationOpName(static_cast<MutationOp>(op));
        scalar(prefix + ".mutants", "mutant campaigns run",
               static_cast<double>(sc.mutants));
        scalar(prefix + ".detected", "mutants with a matching finding",
               static_cast<double>(sc.detected));
        scalar(prefix + ".recall", "detected / mutants", sc.recall());
        scalar(prefix + ".precision", "TP / (TP + FP)",
               sc.precision());
    }
}

} // namespace xfd::mutate
