/**
 * @file
 * Mutation campaigns: ground-truth precision/recall scoring of the
 * detector.
 *
 * The paper validates XFDetector against bugs planted by hand
 * (§6.2-§6.3, Table 4). The mutation engine automates that
 * experiment: it enumerates fault injections of a *correct* workload
 * (mutate/plan.hh), runs a full detection campaign per mutant, and
 * scores the findings against the plan's ground truth:
 *
 *  - a finding is a true positive iff its class matches the mutant's
 *    expected class and its address range overlaps the bytes the
 *    mutation left unprotected;
 *  - any other finding of a mutant run is a false positive;
 *  - every finding of the unmutated baseline run is a false positive
 *    (the workload is correct by assumption), and its dedup key is
 *    excluded from mutant scoring so a pre-existing bug is not
 *    miscounted as a detection.
 *
 * Scores come per operator and aggregated, as a human-readable
 * scoreboard, as a "mutation" object in the xfd-stats-v1 document,
 * and as campaign.mutation.* stats in an observer's registry.
 */

#ifndef XFD_MUTATE_CAMPAIGN_HH
#define XFD_MUTATE_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "core/observer.hh"
#include "mutate/plan.hh"
#include "obs/json.hh"

namespace xfd::mutate
{

namespace detail
{
constexpr PerOp<bool>
everyOp()
{
    PerOp<bool> all{};
    for (auto &b : all)
        b = true;
    return all;
}
} // namespace detail

/** Everything a mutation campaign needs. */
struct MutationConfig
{
    /** The (correct) workload: same contract as core::Driver. The
        pre-failure stage must be single-threaded and deterministic —
        mutants are addressed by event occurrence. */
    core::ProgramFn pre;
    core::ProgramFn post;

    /** Pool geometry; every run gets a fresh pool at the default
        deterministic base. */
    std::size_t poolBytes = std::size_t{1} << 22;

    /** Worker threads for each inner detection campaign. */
    unsigned threads = 1;

    /** Detector knobs for the inner campaigns (mutation fields are
        ignored — a mutation campaign never recurses). */
    core::DetectorConfig detector;

    /** Operators to plan; defaults to all of them. */
    PerOp<bool> ops = detail::everyOp();

    /** Seed for the deterministic per-operator subsample. */
    std::size_t seed = 42;

    /** Keep at most this many mutants per operator (0 = all). */
    std::size_t maxPerOp = 0;

    /** Optional observer, attached to the baseline campaign only
        (mutant campaigns run unobserved to stay cheap). */
    core::CampaignObserver *observer = nullptr;

    /** Progress callback, invoked after each mutant campaign. */
    std::function<void(std::size_t done, std::size_t total,
                       const Mutant &m, bool detected)>
        onMutant;
};

/** Detection quality for one operator (or the aggregate). */
struct OpScore
{
    std::size_t mutants = 0;        ///< campaigns run
    std::size_t detected = 0;       ///< mutants with >= 1 matching finding
    std::size_t truePositives = 0;  ///< findings matching ground truth
    std::size_t falsePositives = 0; ///< findings matching nothing

    double
    recall() const
    {
        return mutants ? static_cast<double>(detected) / mutants : 1.0;
    }

    double
    precision() const
    {
        std::size_t denom = truePositives + falsePositives;
        return denom ? static_cast<double>(truePositives) / denom : 1.0;
    }

    double
    f1() const
    {
        double p = precision(), r = recall();
        return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
    }
};

/** What one mutant campaign produced. */
struct MutantOutcome
{
    Mutant mutant;
    bool fired = false;    ///< the planned occurrence was reached
    bool detected = false; ///< >= 1 finding matched the ground truth
    std::size_t matchedFindings = 0;
    std::size_t unmatchedFindings = 0;
};

/** Full result of a mutation campaign. */
struct MutationReport
{
    std::vector<MutantOutcome> outcomes;
    PerOp<OpScore> perOp{};
    /** Sums of perOp; falsePositives additionally counts the
        baseline run's findings. */
    OpScore aggregate;
    /** Findings of the unmutated run (should be 0 for a correct
        workload; all counted as false positives). */
    std::size_t baselineFindings = 0;
    /** Mutants the planner found before the per-operator cap. */
    std::size_t enumerated = 0;
    std::size_t seed = 0;
    /** The unmutated campaign's result (summary/exit-code source). */
    core::CampaignResult baseline;

    /** Multi-line per-operator precision/recall table. */
    std::string scoreboard() const;

    /** The "mutation" object of the xfd-stats-v1 document. */
    void writeJson(obs::JsonWriter &w) const;
};

/** Run the campaign: baseline first, then one detection campaign per
    planned mutant, then score. */
MutationReport runMutationCampaign(const MutationConfig &cfg);

/** Mirror @p r into campaign.mutation.* stats of @p reg. */
void exportMutationStats(const MutationReport &r, obs::StatsRegistry &reg);

} // namespace xfd::mutate

#endif // XFD_MUTATE_CAMPAIGN_HH
