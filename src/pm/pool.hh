/**
 * @file
 * DRAM-emulated persistent-memory pool.
 *
 * The paper evaluates on Intel DCPMM mounted DAX; we do not have that
 * hardware, so the pool is a DRAM buffer with a *deterministic* virtual
 * base address (the paper itself pins pool addresses across executions
 * with PMEM_MMAP_HINT, and its artifact explicitly supports emulated
 * PM). All detector logic operates on pool-relative virtual addresses
 * (xfd::Addr), never on host pointers, so the emulation is transparent.
 */

#ifndef XFD_PM_POOL_HH
#define XFD_PM_POOL_HH

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace xfd::pm
{

class PmImage;

/**
 * Thrown when a PM address (typically a corrupted persistent pointer
 * read after a failure) does not resolve inside the pool — the
 * emulation's equivalent of the segmentation fault the paper's
 * Figure 1 example can suffer during resumption. The detection driver
 * catches it and records the post-failure crash.
 */
struct BadPmAccess
{
    Addr addr;
    std::size_t size;
};

/**
 * An emulated persistent-memory pool: a contiguous byte buffer exposed
 * at a fixed virtual address range [base, base + size).
 */
class PmPool
{
  public:
    /**
     * @param size pool capacity in bytes
     * @param base first virtual PM address of the pool
     */
    explicit PmPool(std::size_t size, Addr base = defaultPoolBase);

    PmPool(const PmPool &) = delete;
    PmPool &operator=(const PmPool &) = delete;

    Addr base() const { return baseAddr; }
    std::size_t size() const { return bytes.size(); }
    AddrRange range() const { return {baseAddr, baseAddr + bytes.size()}; }

    /** @return whether the pool address space contains @p a. */
    bool contains(Addr a) const { return range().contains(a); }

    /** @return whether [a, a+n) lies fully inside the pool. */
    bool
    contains(Addr a, std::size_t n) const
    {
        return a >= baseAddr && a + n <= baseAddr + bytes.size();
    }

    /**
     * Translate a PM address to a host pointer.
     * @throw BadPmAccess when [a, a+n) is not inside the pool.
     */
    void *
    toHost(Addr a, std::size_t n = 1)
    {
        if (!contains(a, n ? n : 1))
            throw BadPmAccess{a, n};
        return bytes.data() + (a - baseAddr);
    }

    const void *
    toHost(Addr a, std::size_t n = 1) const
    {
        return const_cast<PmPool *>(this)->toHost(a, n);
    }

    /**
     * Translate a host pointer into the pool to its PM address.
     * @throw BadPmAccess for pointers outside the pool — typically a
     *        field access through a corrupted/null persistent pointer.
     */
    Addr
    toAddr(const void *p) const
    {
        auto *b = static_cast<const std::uint8_t *>(p);
        if (b < bytes.data() || b >= bytes.data() + bytes.size())
            throw BadPmAccess{0, 0};
        return baseAddr + static_cast<Addr>(b - bytes.data());
    }

    /** @return whether a host pointer points into this pool. */
    bool
    hosts(const void *p) const
    {
        auto *b = static_cast<const std::uint8_t *>(p);
        return b >= bytes.data() && b < bytes.data() + bytes.size();
    }

    /** Typed view of the pool at byte offset @p off. */
    template <typename T>
    T *
    at(std::size_t off)
    {
        if (off + sizeof(T) > bytes.size())
            panic("pool offset %zu overruns pool", off);
        return reinterpret_cast<T *>(bytes.data() + off);
    }

    /** Zero the whole pool (fresh-device state). */
    void wipe() { std::memset(bytes.data(), 0, bytes.size()); }

    /** Capture a byte-exact snapshot of the pool contents. */
    PmImage snapshot() const;

    /** Overwrite the pool contents from a snapshot. */
    void restore(const PmImage &img);

    /** Raw storage access, used by PmImage and the failure injector. */
    std::uint8_t *data() { return bytes.data(); }
    const std::uint8_t *data() const { return bytes.data(); }

    /**
     * @name Dirty-page tracking
     * The delta-image engine needs to know which pages a post-failure
     * execution soiled so the next failure point can restore only
     * those. The instrumented runtime calls markDirty() on every
     * mutation path; with tracking disabled (the default) the call is
     * a single predictable branch. Flags are relaxed atomics so
     * multi-threaded workload stages may mark concurrently.
     * @{
     */

    /** Start tracking writes at @p pageSize granularity (power of 2). */
    void enableDirtyTracking(std::size_t pageSize);

    /** Stop tracking and drop the page map. */
    void disableDirtyTracking();

    /** @return the tracking page size, 0 when tracking is disabled. */
    std::size_t trackingPageSize() const { return pageSz; }

    /** Record that [a, a+n) was written (no-op unless tracking). */
    void
    markDirty(Addr a, std::size_t n)
    {
        if (pageSz == 0 || n == 0 || a < baseAddr)
            return;
        std::size_t first = (a - baseAddr) >> pageShift;
        std::size_t last = (a - baseAddr + n - 1) >> pageShift;
        for (std::size_t p = first; p <= last && p < numPages; p++)
            dirtyMap[p].store(1, std::memory_order_relaxed);
    }

    /** Move the dirty-page set into @p out (union) and clear the map. */
    void drainDirtyPages(std::set<std::uint32_t> &out);

    /** Clear the dirty-page map (after a full restore). */
    void clearDirtyPages();

    /** @return number of pages currently marked dirty. */
    std::size_t dirtyPageCount() const;

    /** @} */

  private:
    Addr baseAddr;
    std::vector<std::uint8_t> bytes;
    /** Dirty-page map; allocated only while tracking is enabled. */
    std::unique_ptr<std::atomic<std::uint8_t>[]> dirtyMap;
    std::size_t pageSz = 0;
    unsigned pageShift = 0;
    std::size_t numPages = 0;
};

/**
 * A typed persistent pointer: stores an absolute PM address, the idiom
 * real PM programs use (PMDK PMEMoid offsets) so that pointers stored
 * *inside* PM stay valid across restarts. Null is address 0.
 */
template <typename T>
class PPtr
{
  public:
    PPtr() = default;
    explicit PPtr(Addr a) : addr_(a) {}

    Addr addr() const { return addr_; }
    bool null() const { return addr_ == 0; }
    explicit operator bool() const { return addr_ != 0; }

    /**
     * Resolve against a pool.
     * @throw BadPmAccess when the pointee does not fit in the pool.
     */
    T *
    get(PmPool &pool) const
    {
        return addr_ ? static_cast<T *>(pool.toHost(addr_, sizeof(T)))
                     : nullptr;
    }

    bool operator==(const PPtr &o) const = default;

  private:
    Addr addr_ = 0;
};

} // namespace xfd::pm

#endif // XFD_PM_POOL_HH
