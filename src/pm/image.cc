#include "pm/image.hh"

#include <cstring>

#include "common/logging.hh"
#include "pm/pool.hh"

namespace xfd::pm
{

PmImage::PmImage(Addr base, std::vector<std::uint8_t> b)
    : baseAddr(base), bytes(std::move(b))
{
}

void
PmImage::applyWrite(Addr a, const void *src, std::size_t n)
{
    if (n == 0)
        return; // payload-elided same-value write
    if (a < baseAddr || a + n > baseAddr + bytes.size())
        panic("image write [%#llx,+%zu) out of range",
              static_cast<unsigned long long>(a), n);
    std::memcpy(bytes.data() + (a - baseAddr), src, n);
}

void
PmImage::copyTo(PmPool &pool) const
{
    if (pool.size() != bytes.size() || pool.base() != baseAddr)
        panic("copying mismatched PM image into pool");
    std::memcpy(pool.data(), bytes.data(), bytes.size());
}

} // namespace xfd::pm
