#include "pm/cow.hh"

#include <cstring>

#include "common/logging.hh"
#include "pm/image.hh"
#include "pm/pool.hh"

namespace xfd::pm
{

CowImage::CowImage(const PmImage &src, std::size_t pageSize)
    : baseAddr(src.base()), totalSize(src.size()), pageSz(pageSize)
{
    if (pageSize == 0 || (pageSize & (pageSize - 1)) != 0)
        panic("cow page size %zu is not a power of two", pageSize);
    std::size_t n = (totalSize + pageSz - 1) / pageSz;
    pages.reserve(n);
    for (std::size_t p = 0; p < n; p++) {
        auto page = std::shared_ptr<std::uint8_t[]>(
            new std::uint8_t[pageSz]);
        std::size_t off = p * pageSz;
        std::size_t len = std::min(pageSz, totalSize - off);
        std::memcpy(page.get(), src.data() + off, len);
        if (len < pageSz)
            std::memset(page.get() + len, 0, pageSz - len);
        pages.push_back(std::move(page));
    }
}

std::uint8_t *
CowImage::mutablePage(std::size_t p)
{
    auto &page = pages[p];
    if (page.use_count() > 1) {
        auto clone = std::shared_ptr<std::uint8_t[]>(
            new std::uint8_t[pageSz]);
        std::memcpy(clone.get(), page.get(), pageSz);
        page = std::move(clone);
    }
    return page.get();
}

void
CowImage::applyWrite(Addr a, const void *src, std::size_t n)
{
    if (a < baseAddr || a + n > baseAddr + totalSize)
        panic("cow image write [%#llx,+%zu) out of range",
              static_cast<unsigned long long>(a), n);
    std::size_t off = a - baseAddr;
    auto *bytes = static_cast<const std::uint8_t *>(src);
    while (n) {
        std::size_t p = off / pageSz;
        std::size_t in_page = off & (pageSz - 1);
        std::size_t len = std::min(n, pageSz - in_page);
        std::memcpy(mutablePage(p) + in_page, bytes, len);
        off += len;
        bytes += len;
        n -= len;
    }
}

void
CowImage::copyFrom(const CowImage &src, Addr a, std::size_t n)
{
    if (src.baseAddr != baseAddr || src.totalSize != totalSize ||
        src.pageSz != pageSz) {
        panic("cow copyFrom between mismatched images");
    }
    if (a < baseAddr || a + n > baseAddr + totalSize)
        panic("cow copyFrom [%#llx,+%zu) out of range",
              static_cast<unsigned long long>(a), n);
    std::size_t off = a - baseAddr;
    while (n) {
        std::size_t p = off / pageSz;
        std::size_t in_page = off & (pageSz - 1);
        std::size_t len = std::min(n, pageSz - in_page);
        if (pages[p] == src.pages[p]) {
            // Still the same physical page — nothing to copy.
        } else if (in_page == 0 && len == pageSz) {
            // Whole-page copy: share the source page instead.
            pages[p] = src.pages[p];
        } else {
            std::memcpy(mutablePage(p) + in_page,
                        src.pages[p].get() + in_page, len);
        }
        off += len;
        n -= len;
    }
}

void
CowImage::copyRange(std::size_t off, std::size_t len,
                    std::uint8_t *dst) const
{
    if (off + len > totalSize)
        panic("cow copyRange [%zu,+%zu) overruns image", off, len);
    while (len) {
        std::size_t p = off / pageSz;
        std::size_t in_page = off & (pageSz - 1);
        std::size_t n = std::min(len, pageSz - in_page);
        std::memcpy(dst, pages[p].get() + in_page, n);
        dst += n;
        off += n;
        len -= n;
    }
}

void
CowImage::copyTo(PmPool &pool) const
{
    if (pool.size() != totalSize || pool.base() != baseAddr)
        panic("copying mismatched cow image into pool");
    copyRange(0, totalSize, pool.data());
}

std::size_t
CowImage::firstMismatch(const std::uint8_t *other) const
{
    for (std::size_t p = 0; p < pages.size(); p++) {
        std::size_t off = p * pageSz;
        std::size_t len = std::min(pageSz, totalSize - off);
        if (std::memcmp(pages[p].get(), other + off, len) == 0)
            continue;
        for (std::size_t i = 0; i < len; i++) {
            if (pages[p].get()[i] != other[off + i])
                return off + i;
        }
    }
    return SIZE_MAX;
}

void
CowImage::collectNonZeroPages(std::size_t pageSize,
                              std::set<std::uint32_t> &out) const
{
    for (std::size_t p = 0; p < pages.size(); p++) {
        const std::uint8_t *bytes = pages[p].get();
        std::size_t off = p * pageSz;
        std::size_t len = std::min(pageSz, totalSize - off);
        for (std::size_t i = 0; i < len; i++) {
            if (!bytes[i])
                continue;
            out.insert(static_cast<std::uint32_t>((off + i) /
                                                  pageSize));
            // Skip to the next output page — everything before it is
            // already accounted for.
            std::size_t next = ((off + i) / pageSize + 1) * pageSize;
            i = next - off - 1;
        }
    }
}

std::size_t
CowImage::sharedPageCount() const
{
    std::size_t n = 0;
    for (const auto &p : pages)
        n += p.use_count() > 1;
    return n;
}

} // namespace xfd::pm
