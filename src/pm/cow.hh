/**
 * @file
 * Copy-on-write PM image with refcounted pages.
 *
 * The campaign loop materializes one working image per worker (plus a
 * durable image in crash-image mode), all seeded from the same
 * initial pool snapshot. With contiguous PmImage buffers that seeding
 * costs one O(pool) memcpy per cursor; a CowImage instead shares its
 * fixed-size pages by shared_ptr, so forking an image is O(pages)
 * pointer copies and a page is physically duplicated only when a
 * write first lands on it (applyWrite clones shared pages). Since a
 * campaign's working images diverge on exactly the pages the
 * pre-failure write log touches, the shared remainder — usually the
 * vast majority of a mostly-idle pool — is never copied at all.
 *
 * A CowImage is byte-equivalent to the PmImage it was built from; the
 * delta-restore validation mode (XFD_DELTA_VALIDATE=1) memcmps the
 * exec pool against it after every restore.
 */

#ifndef XFD_PM_COW_HH
#define XFD_PM_COW_HH

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/types.hh"

namespace xfd::pm
{

class PmImage;
class PmPool;

/** A forkable snapshot of pool contents with copy-on-write pages. */
class CowImage
{
  public:
    /** Default page granularity: one small OS page. */
    static constexpr std::size_t defaultPageSize = 4096;

    CowImage() = default;

    /**
     * Build from a contiguous snapshot (one O(size) copy — the only
     * one; subsequent forks share these pages).
     */
    explicit CowImage(const PmImage &src,
                      std::size_t pageSize = defaultPageSize);

    /** Forks: O(pages) pointer copies, no byte copying. */
    CowImage(const CowImage &) = default;
    CowImage &operator=(const CowImage &) = default;
    CowImage(CowImage &&) = default;
    CowImage &operator=(CowImage &&) = default;

    Addr base() const { return baseAddr; }
    std::size_t size() const { return totalSize; }
    bool empty() const { return totalSize == 0; }
    std::size_t pageSize() const { return pageSz; }
    std::size_t pageCount() const { return pages.size(); }

    /**
     * Apply a write of @p n bytes from @p src at PM address @p a,
     * cloning any still-shared page it touches.
     */
    void applyWrite(Addr a, const void *src, std::size_t n);

    /**
     * Copy [a, a+n) from @p src into this image (the durable-image
     * fence sync). Sources and destination must cover the same
     * address range and share a page size.
     */
    void copyFrom(const CowImage &src, Addr a, std::size_t n);

    /** Copy byte range [off, off+len) into @p dst. */
    void copyRange(std::size_t off, std::size_t len,
                   std::uint8_t *dst) const;

    /** Copy this image's bytes into @p pool (sizes must match). */
    void copyTo(PmPool &pool) const;

    /**
     * First byte offset where this image differs from @p other (a
     * buffer of size() bytes), or SIZE_MAX when equal. Validation
     * only — O(size).
     */
    std::size_t firstMismatch(const std::uint8_t *other) const;

    /**
     * Pages (by index) still physically shared with another fork or
     * the original snapshot — i.e. never written since the fork.
     * Tests and stats only.
     */
    std::size_t sharedPageCount() const;

    /**
     * Union into @p out the indices (at @p pageSize granularity,
     * which need not match pageSize()) of every page containing a
     * nonzero byte. See pm::collectNonZeroPages for why the driver
     * wants this of the initial snapshot.
     */
    void collectNonZeroPages(std::size_t pageSize,
                             std::set<std::uint32_t> &out) const;

  private:
    /** Writable view of page @p p, cloning it if shared. */
    std::uint8_t *mutablePage(std::size_t p);

    Addr baseAddr = 0;
    std::size_t totalSize = 0;
    std::size_t pageSz = 0;
    /** Fixed-size pages; the last one is zero-padded past size(). */
    std::vector<std::shared_ptr<std::uint8_t[]>> pages;
};

} // namespace xfd::pm

#endif // XFD_PM_COW_HH
