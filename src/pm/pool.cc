#include "pm/pool.hh"

#include "pm/image.hh"

namespace xfd::pm
{

PmPool::PmPool(std::size_t size, Addr base)
    : baseAddr(base), bytes(size, 0)
{
    if (size == 0)
        fatal("PM pool size must be nonzero");
    if (base % cacheLineSize != 0)
        fatal("PM pool base must be cache-line aligned");
}

PmImage
PmPool::snapshot() const
{
    return PmImage(baseAddr, bytes);
}

void
PmPool::restore(const PmImage &img)
{
    if (img.size() != bytes.size() || img.base() != baseAddr)
        panic("restoring mismatched PM image");
    std::memcpy(bytes.data(), img.data(), bytes.size());
}

void
PmPool::enableDirtyTracking(std::size_t pageSize)
{
    if (pageSize < cacheLineSize || (pageSize & (pageSize - 1)) != 0)
        panic("dirty-tracking page size %zu is not a power of two "
              ">= %zu", pageSize, cacheLineSize);
    pageSz = pageSize;
    pageShift = 0;
    while ((std::size_t{1} << pageShift) < pageSize)
        pageShift++;
    numPages = (bytes.size() + pageSize - 1) / pageSize;
    dirtyMap = std::make_unique<std::atomic<std::uint8_t>[]>(numPages);
    clearDirtyPages();
}

void
PmPool::disableDirtyTracking()
{
    pageSz = 0;
    pageShift = 0;
    numPages = 0;
    dirtyMap.reset();
}

void
PmPool::drainDirtyPages(std::set<std::uint32_t> &out)
{
    for (std::size_t p = 0; p < numPages; p++) {
        if (dirtyMap[p].exchange(0, std::memory_order_relaxed))
            out.insert(static_cast<std::uint32_t>(p));
    }
}

void
PmPool::clearDirtyPages()
{
    for (std::size_t p = 0; p < numPages; p++)
        dirtyMap[p].store(0, std::memory_order_relaxed);
}

std::size_t
PmPool::dirtyPageCount() const
{
    std::size_t n = 0;
    for (std::size_t p = 0; p < numPages; p++)
        n += dirtyMap[p].load(std::memory_order_relaxed) ? 1 : 0;
    return n;
}

} // namespace xfd::pm
