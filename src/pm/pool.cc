#include "pm/pool.hh"

#include "pm/image.hh"

namespace xfd::pm
{

PmPool::PmPool(std::size_t size, Addr base)
    : baseAddr(base), bytes(size, 0)
{
    if (size == 0)
        fatal("PM pool size must be nonzero");
    if (base % cacheLineSize != 0)
        fatal("PM pool base must be cache-line aligned");
}

PmImage
PmPool::snapshot() const
{
    return PmImage(baseAddr, bytes);
}

void
PmPool::restore(const PmImage &img)
{
    if (img.size() != bytes.size() || img.base() != baseAddr)
        panic("restoring mismatched PM image");
    std::memcpy(bytes.data(), img.data(), bytes.size());
}

} // namespace xfd::pm
