#include "pm/delta.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "pm/cow.hh"
#include "pm/image.hh"
#include "pm/pool.hh"

namespace xfd::pm
{

ImageDeltaStore::ImageDeltaStore(std::size_t pageSize, AddrRange range)
    : pageSz(pageSize), base(range.begin)
{
    if (pageSize < cacheLineSize || (pageSize & (pageSize - 1)) != 0)
        panic("delta page size %zu is not a power of two >= %zu",
              pageSize, cacheLineSize);
    nPages = (range.size() + pageSize - 1) / pageSize;
}

void
ImageDeltaStore::recordWrite(std::uint32_t seq, Addr a, std::size_t n)
{
    if (n == 0 || a < base)
        return;
    if (!spans.empty() && seq < spans.back().seq)
        panic("delta store writes must be recorded in seq order");
    Span s;
    s.seq = seq;
    s.firstPage = pageOf(a);
    s.lastPage = pageOf(a + n - 1);
    // No folding of repeated page spans: a failure point may land
    // between two writes to the same page, and collectPages() must
    // see the later one in the later interval.
    spans.push_back(s);
}

void
ImageDeltaStore::collectPages(std::uint32_t fromSeq, std::uint32_t toSeq,
                              std::set<std::uint32_t> &out) const
{
    auto it = std::lower_bound(spans.begin(), spans.end(), fromSeq,
                               [](const Span &s, std::uint32_t seq) {
                                   return s.seq < seq;
                               });
    for (; it != spans.end() && it->seq < toSeq; ++it) {
        for (std::uint32_t p = it->firstPage; p <= it->lastPage; p++)
            out.insert(p);
    }
}

void
restorePages(const PmImage &src, PmPool &pool, std::size_t pageSize,
             const std::set<std::uint32_t> &pages,
             DeltaRestoreStats &stats)
{
    if (pool.size() != src.size() || pool.base() != src.base())
        panic("delta-restoring mismatched PM image into pool");
    stats.deltaRestores++;
    auto it = pages.begin();
    while (it != pages.end()) {
        // Coalesce a run of adjacent pages into one copy.
        std::uint32_t first = *it;
        std::uint32_t last = first;
        ++it;
        while (it != pages.end() && *it == last + 1) {
            last = *it;
            ++it;
        }
        std::size_t off = static_cast<std::size_t>(first) * pageSize;
        if (off >= src.size())
            continue;
        std::size_t len = std::min(
            (static_cast<std::size_t>(last - first) + 1) * pageSize,
            src.size() - off);
        std::memcpy(pool.data() + off, src.data() + off, len);
        stats.pagesRestored += last - first + 1;
        stats.bytesRestored += len;
    }
}

void
restoreFull(const PmImage &src, PmPool &pool, DeltaRestoreStats &stats)
{
    src.copyTo(pool);
    stats.fullCopies++;
    stats.bytesFullCopy += src.size();
}

void
restorePages(const CowImage &src, PmPool &pool, std::size_t pageSize,
             const std::set<std::uint32_t> &pages,
             DeltaRestoreStats &stats)
{
    if (pool.size() != src.size() || pool.base() != src.base())
        panic("delta-restoring mismatched cow image into pool");
    stats.deltaRestores++;
    auto it = pages.begin();
    while (it != pages.end()) {
        std::uint32_t first = *it;
        std::uint32_t last = first;
        ++it;
        while (it != pages.end() && *it == last + 1) {
            last = *it;
            ++it;
        }
        std::size_t off = static_cast<std::size_t>(first) * pageSize;
        if (off >= src.size())
            continue;
        std::size_t len = std::min(
            (static_cast<std::size_t>(last - first) + 1) * pageSize,
            src.size() - off);
        src.copyRange(off, len, pool.data() + off);
        stats.pagesRestored += last - first + 1;
        stats.bytesRestored += len;
    }
}

void
restoreFull(const CowImage &src, PmPool &pool, DeltaRestoreStats &stats)
{
    src.copyTo(pool);
    stats.fullCopies++;
    stats.bytesFullCopy += src.size();
}

void
collectNonZeroPages(const PmImage &img, std::size_t pageSize,
                    std::set<std::uint32_t> &out)
{
    const std::uint8_t *d = img.data();
    std::size_t n = img.size();
    for (std::size_t off = 0; off < n; off += pageSize) {
        std::size_t len = std::min(pageSize, n - off);
        const std::uint8_t *p = d + off;
        bool zero = true;
        for (std::size_t i = 0; i < len; i++) {
            if (p[i]) {
                zero = false;
                break;
            }
        }
        if (!zero)
            out.insert(static_cast<std::uint32_t>(off / pageSize));
    }
}

} // namespace xfd::pm
