/**
 * @file
 * Byte-exact snapshot of a PM pool's contents.
 *
 * The failure injector materializes, for each injected failure point,
 * the PM image the post-failure stage runs on. Per the paper's design
 * (footnote 3) the image contains *all* pre-failure updates, including
 * ones not yet persisted — persistence is tracked by the shadow PM, not
 * by dropping bytes from the image.
 */

#ifndef XFD_PM_IMAGE_HH
#define XFD_PM_IMAGE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace xfd::pm
{

class PmPool;

/** A snapshot of pool contents plus its base address. */
class PmImage
{
  public:
    PmImage() = default;
    PmImage(Addr base, std::vector<std::uint8_t> bytes);

    Addr base() const { return baseAddr; }
    std::size_t size() const { return bytes.size(); }
    bool empty() const { return bytes.empty(); }

    const std::uint8_t *data() const { return bytes.data(); }
    std::uint8_t *data() { return bytes.data(); }

    /** Apply a write of @p n bytes from @p src at PM address @p a. */
    void applyWrite(Addr a, const void *src, std::size_t n);

    /** Copy this image's bytes into @p pool (sizes must match). */
    void copyTo(PmPool &pool) const;

  private:
    Addr baseAddr = 0;
    std::vector<std::uint8_t> bytes;
};

} // namespace xfd::pm

#endif // XFD_PM_IMAGE_HH
