/**
 * @file
 * Page-granular delta-image engine.
 *
 * Restoring the exec pool with a full PmImage::copyTo before every
 * post-failure execution costs O(failure points x pool size), yet
 * consecutive failure points differ only by the handful of writes
 * between two ordering points. The ImageDeltaStore indexes the
 * pre-failure write log by page, so the driver can restore only the
 * pages that changed since the previous failure point in a worker's
 * chunk: pages the image gained (from the write log) plus pages the
 * previous post-failure execution soiled (from the pool's dirty map).
 * Periodic full-image checkpoints bound divergence so chunk starts
 * and error recovery stay a single O(pool) copy.
 *
 * Invariant: between restores, the exec pool is byte-identical to the
 * source image on every page outside the two dirty sets; DESIGN.md §7
 * spells out why that holds and the tests that enforce it.
 */

#ifndef XFD_PM_DELTA_HH
#define XFD_PM_DELTA_HH

#include <cstdint>
#include <set>
#include <vector>

#include "common/types.hh"

namespace xfd::pm
{

class CowImage;
class PmImage;
class PmPool;

/** Restore-volume accounting for one campaign (or worker chunk). */
struct DeltaRestoreStats
{
    /** Full-image checkpoint copies (chunk starts, cadence, errors). */
    std::uint64_t fullCopies = 0;
    /** Page-granular partial restores. */
    std::uint64_t deltaRestores = 0;
    /**
     * Of the delta restores, ones that (re)synced an exec pool from
     * scratch via the exact written∪nonzero page set instead of a
     * full O(pool) copy (chunk starts, checkpoint cadence).
     */
    std::uint64_t syncRestores = 0;
    /** Pages copied by partial restores. */
    std::uint64_t pagesRestored = 0;
    /** Bytes copied by partial restores. */
    std::uint64_t bytesRestored = 0;
    /** Bytes copied by full checkpoints. */
    std::uint64_t bytesFullCopy = 0;

    std::uint64_t
    bytesCopied() const
    {
        return bytesRestored + bytesFullCopy;
    }

    void
    merge(const DeltaRestoreStats &o)
    {
        fullCopies += o.fullCopies;
        deltaRestores += o.deltaRestores;
        syncRestores += o.syncRestores;
        pagesRestored += o.pagesRestored;
        bytesRestored += o.bytesRestored;
        bytesFullCopy += o.bytesFullCopy;
    }
};

/**
 * Immutable page index over a pre-failure write log: which pool pages
 * do the writes in a trace-sequence interval touch? Built once per
 * campaign (see trace::buildDeltaStore) and shared read-only by all
 * workers.
 */
class ImageDeltaStore
{
  public:
    ImageDeltaStore() = default;

    /**
     * @param pageSize delta granularity, a power of two >= 64
     * @param range    the pool address range the log writes into
     */
    ImageDeltaStore(std::size_t pageSize, AddrRange range);

    /**
     * Append one logged write. Must be called in ascending @p seq
     * order (the order the trace was recorded in).
     */
    void recordWrite(std::uint32_t seq, Addr a, std::size_t n);

    /**
     * Union into @p out the pages touched by writes with sequence
     * number in [@p fromSeq, @p toSeq).
     */
    void collectPages(std::uint32_t fromSeq, std::uint32_t toSeq,
                      std::set<std::uint32_t> &out) const;

    std::size_t pageSize() const { return pageSz; }
    std::size_t pageCount() const { return nPages; }

    /** @return the page index of pool address @p a. */
    std::uint32_t
    pageOf(Addr a) const
    {
        return static_cast<std::uint32_t>((a - base) / pageSz);
    }

    /** Number of indexed write spans (tests/stats). */
    std::size_t spanCount() const { return spans.size(); }

  private:
    struct Span
    {
        std::uint32_t seq;
        std::uint32_t firstPage;
        std::uint32_t lastPage;
    };

    std::vector<Span> spans; ///< ascending by seq
    std::size_t pageSz = 0;
    std::size_t nPages = 0;
    Addr base = 0;
};

/**
 * Copy only @p pages (page indices at @p pageSize granularity) from
 * @p src into @p pool; adjacent pages coalesce into one memcpy.
 * Accounts the copied volume into @p stats.
 */
void restorePages(const PmImage &src, PmPool &pool,
                  std::size_t pageSize,
                  const std::set<std::uint32_t> &pages,
                  DeltaRestoreStats &stats);

/** Full-image checkpoint restore, accounted into @p stats. */
void restoreFull(const PmImage &src, PmPool &pool,
                 DeltaRestoreStats &stats);

/** @name CowImage sources (the campaign driver's working images) @{ */
void restorePages(const CowImage &src, PmPool &pool,
                  std::size_t pageSize,
                  const std::set<std::uint32_t> &pages,
                  DeltaRestoreStats &stats);
void restoreFull(const CowImage &src, PmPool &pool,
                 DeltaRestoreStats &stats);
/** @} */

/**
 * Union into @p out the indices (at @p pageSize granularity) of
 * every page of @p img containing a nonzero byte. Together with an
 * ImageDeltaStore's full write-log page set this bounds where any
 * campaign working image can differ from a fresh zeroed pool, which
 * is what lets chunk starts restore a page subset instead of the
 * whole pool (see Driver::handleFailurePoint).
 */
void collectNonZeroPages(const PmImage &img, std::size_t pageSize,
                         std::set<std::uint32_t> &out);

} // namespace xfd::pm

#endif // XFD_PM_DELTA_HH
