/**
 * @file
 * Fundamental types shared by every XFDetector-repro module.
 */

#ifndef XFD_COMMON_TYPES_HH
#define XFD_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace xfd
{

/** A (virtual) persistent-memory address inside an emulated pool. */
using Addr = std::uint64_t;

/** Size of an x86 cache line; CLWB/CLFLUSH operate at this granule. */
constexpr std::size_t cacheLineSize = 64;

/**
 * Deterministic base address for emulated pools. Mirrors the paper's use
 * of PMEM_MMAP_HINT=0x10000000000 to derandomize PM mappings so that
 * addresses are stable between the pre- and post-failure executions.
 */
constexpr Addr defaultPoolBase = 0x10000000000ull;

/** Align an address down to its cache-line base. */
constexpr Addr
lineBase(Addr a)
{
    return a & ~static_cast<Addr>(cacheLineSize - 1);
}

/** A half-open address range [begin, end). */
struct AddrRange
{
    Addr begin = 0;
    Addr end = 0;

    constexpr bool
    contains(Addr a) const
    {
        return a >= begin && a < end;
    }

    constexpr bool
    overlaps(const AddrRange &o) const
    {
        return begin < o.end && o.begin < end;
    }

    constexpr std::size_t size() const { return end - begin; }

    constexpr bool operator==(const AddrRange &o) const = default;
};

} // namespace xfd

#endif // XFD_COMMON_TYPES_HH
