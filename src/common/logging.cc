#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace xfd
{

namespace
{

bool verboseFlag = true;

/**
 * Serializes every message sink: warn()/inform() are called from
 * runParallel worker threads, and without a lock their bytes
 * interleave on stderr.
 */
std::mutex &
sinkLock()
{
    static std::mutex m;
    return m;
}

thread_local std::string logLabel;

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

/** One whole line, atomically, with the thread tag when set. */
void
emitLine(const char *prefix, const std::string &body)
{
    std::lock_guard<std::mutex> guard(sinkLock());
    if (logLabel.empty()) {
        std::fprintf(stderr, "%s: %s\n", prefix, body.c_str());
    } else {
        std::fprintf(stderr, "%s: [%s] %s\n", prefix,
                     logLabel.c_str(), body.c_str());
    }
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    emitLine("panic", s);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    emitLine("fatal", s);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    emitLine("warn", s);
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    emitLine("info", s);
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

void
setThreadLogLabel(const std::string &label)
{
    logLabel = label;
}

const std::string &
threadLogLabel()
{
    return logLabel;
}

} // namespace xfd
