#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace xfd
{

namespace
{

bool verboseFlag = true;

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<std::size_t>(n));
    }
    va_end(ap2);
    return out;
}

} // namespace

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
verbose()
{
    return verboseFlag;
}

} // namespace xfd
