/**
 * @file
 * Minimal gem5-style status/error reporting: panic(), fatal(), warn(),
 * inform(). panic() flags internal invariant violations (aborts);
 * fatal() flags unrecoverable user/configuration errors (exits).
 */

#ifndef XFD_COMMON_LOGGING_HH
#define XFD_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace xfd
{

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Internal invariant violated: print and abort (never user's fault). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Unrecoverable user-facing error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benchmarks silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

/**
 * Tag every warn()/inform() from the calling thread with @p label
 * (e.g. "w3" for runParallel worker 3); empty clears the tag. All
 * sinks share one mutex, so concurrent messages never interleave
 * bytes on stderr.
 */
void setThreadLogLabel(const std::string &label);

/** @return the calling thread's log label (empty when untagged). */
const std::string &threadLogLabel();

} // namespace xfd

#endif // XFD_COMMON_LOGGING_HH
