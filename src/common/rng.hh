/**
 * @file
 * Deterministic pseudo-random number generator for workload drivers.
 *
 * Workloads must be bit-reproducible between the pre-failure run and
 * every post-failure continuation, so they may not use global RNG state;
 * each execution stage seeds its own Rng.
 */

#ifndef XFD_COMMON_RNG_HH
#define XFD_COMMON_RNG_HH

#include <cstdint>

namespace xfd
{

/** xorshift64* generator; tiny, fast, and deterministic across builds. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** @return next raw 64-bit pseudo-random value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** @return uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

  private:
    std::uint64_t state;
};

} // namespace xfd

#endif // XFD_COMMON_RNG_HH
