/**
 * @file
 * The fix campaign: baseline detection + lint, plan synthesis, and
 * the machine check that gives each plan its verdict.
 *
 * Verification is a re-run, not an argument: the plan's edit script
 * re-executes the program through an InsertionMutation, the full
 * campaign runs over the edited trace, and the verdict is computed
 * from what that campaign (and, for candidate verifications, the
 * crash-state oracle) actually reported. "Verified" therefore means
 * the same thing for every repair kind: the targeted finding is gone,
 * nothing beyond the broken baseline's finding set appeared, every
 * planned edit really fired, and the oracle still agrees with the
 * detector at every failure point of the repaired trace.
 */

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "fix/fix.hh"
#include "oracle/diff.hh"
#include "pm/pool.hh"
#include "trace/runtime.hh"
#include "xfd.hh"

namespace xfd::fix
{

namespace
{

/** Same identity synth.cc keys plans on (mutate::findingKey twin). */
std::string
findingKeyOf(const core::BugReport &b)
{
    return strprintf("%d|%s:%u|%s:%u", static_cast<int>(b.type),
                     b.reader.file, b.reader.line, b.writer.file,
                     b.writer.line);
}

/** Does the --fix=<target> selection cover @p p? */
bool
targetMatches(const std::string &t, const RepairPlan &p)
{
    if (t.empty() || t == "all")
        return true;
    if (t == p.id)
        return true;
    if (!p.findingId.empty() &&
        (t == p.findingId || "F" + t == p.findingId)) {
        return true;
    }
    return false;
}

/** Lint-diagnostic identity stable across re-lints of edited traces. */
bool
sameDiag(const lint::Diagnostic &d, const RepairPlan &p)
{
    return d.rule == p.lintRule && d.addr == p.lintAddr &&
           d.loc == p.site;
}

} // namespace

FixReport
runFixCampaign(const FixConfig &fcfg)
{
    FixReport rep;

    // Inner campaigns run plain: no mutation planting, no recursive
    // fixing, and the oracle only as this pass's explicit cross-check.
    core::DetectorConfig dcfg = fcfg.detector;
    dcfg.mutateOps.clear();
    dcfg.oracleMode.clear();
    dcfg.oracleArtifactDir.clear();
    dcfg.fixTargets.clear();

    // Trace the broken pre-failure stage once; plans address this
    // baseline trace by seq/occurrence.
    trace::TraceBuffer baseTrace;
    {
        pm::PmPool scratch(fcfg.poolBytes);
        trace::PmRuntime rt(scratch, baseTrace,
                            trace::Stage::PreFailure);
        try {
            fcfg.pre(rt);
        } catch (const trace::StageComplete &) {
        }
    }

    auto runOne = [&](trace::MutationHook *hook,
                      core::CampaignObserver *obs) {
        auto campaign = Campaign::forProgram(
                            [&](trace::PmRuntime &rt) {
                                rt.setMutationHook(hook);
                                fcfg.pre(rt);
                            },
                            fcfg.post)
                            .poolSize(fcfg.poolBytes)
                            .threads(fcfg.threads)
                            .config(dcfg);
        if (obs)
            campaign.observer(obs);
        return campaign.run();
    };

    rep.baseline = runOne(nullptr, fcfg.observer);
    std::set<std::string> baselineKeys;
    for (const core::BugReport &b : rep.baseline.bugs)
        baselineKeys.insert(findingKeyOf(b));

    lint::LintConfig lcfg;
    lcfg.granularity = dcfg.granularity;
    lcfg.flushFree = dcfg.eadrOn();
    rep.lintBaseline = lint::runLint(baseTrace, lcfg);

    std::vector<RepairPlan> plans = synthesizePlans(
        rep.baseline, rep.lintBaseline, baseTrace, dcfg, &rep.unplanned);

    for (std::size_t i = 0; i < plans.size(); i++) {
        PlanOutcome out;
        out.plan = std::move(plans[i]);
        const RepairPlan &p = out.plan;

        if (p.advisory || p.edits.empty() ||
            !targetMatches(fcfg.targets, p)) {
            out.verdict = Verdict::Incomplete;
        } else {
            // Re-run the campaign with the repair applied. The hook
            // carries per-execution state, so every run gets a fresh
            // one over the same (plan-owned) script.
            mutate::InsertionMutation hook(p.edits);
            core::CampaignResult res = runOne(&hook, nullptr);
            out.editsFired = hook.fired();
            if (!out.editsFired)
                warn("repair %s: edits did not all fire",
                     p.describe().c_str());

            std::set<std::string> keys;
            for (const core::BugReport &b : res.bugs)
                keys.insert(findingKeyOf(b));
            out.remainingFindings = res.bugs.size();
            for (const std::string &k : keys) {
                if (!baselineKeys.count(k))
                    out.newFindings++;
            }

            if (!p.findingId.empty()) {
                out.targetGone = keys.count(p.targetKey) == 0;
            } else {
                // Lint-target plan: re-lint the edited trace and look
                // for the diagnostic by (rule, addr, source line).
                trace::TraceBuffer edited;
                mutate::InsertionMutation lintHook(p.edits);
                {
                    pm::PmPool scratch(fcfg.poolBytes);
                    trace::PmRuntime rt(scratch, edited,
                                        trace::Stage::PreFailure);
                    rt.setMutationHook(&lintHook);
                    try {
                        fcfg.pre(rt);
                    } catch (const trace::StageComplete &) {
                    }
                }
                lint::LintReport lr = lint::runLint(edited, lcfg);
                out.targetGone = true;
                for (const lint::Diagnostic &d : lr.diagnostics) {
                    if (sameDiag(d, p)) {
                        out.targetGone = false;
                        break;
                    }
                }
            }

            if (out.newFindings > 0) {
                out.verdict = Verdict::Regressed;
            } else if (!out.targetGone || !out.editsFired) {
                out.verdict = Verdict::Incomplete;
            } else if (fcfg.withOracle) {
                // Candidate verification: the repaired trace must
                // keep full detector/oracle agreement.
                pm::PmPool opool(fcfg.poolBytes);
                mutate::InsertionMutation ohook(p.edits);
                oracle::DiffConfig ocfg;
                ocfg.detector = dcfg;
                ocfg.threads = fcfg.threads;
                oracle::DiffReport dr = oracle::runDifferentialCampaign(
                    opool,
                    [&](trace::PmRuntime &rt) {
                        rt.setMutationHook(&ohook);
                        fcfg.pre(rt);
                    },
                    fcfg.post, ocfg);
                out.oracleRan = true;
                out.oracleClean = dr.clean();
                out.oracleAgreement = dr.agreementRate();
                out.verdict =
                    (out.oracleClean && out.oracleAgreement == 1.0)
                        ? Verdict::Verified
                        : Verdict::Regressed;
            } else {
                out.verdict = Verdict::Verified;
            }
        }

        switch (out.verdict) {
          case Verdict::Verified: rep.verified++; break;
          case Verdict::Incomplete: rep.incomplete++; break;
          case Verdict::Regressed: rep.regressed++; break;
        }
        if (fcfg.onPlan)
            fcfg.onPlan(i + 1, plans.size(), out.plan, out.verdict);
        rep.outcomes.push_back(std::move(out));
    }

    return rep;
}

namespace
{

/** The scoreboard's one-line explanation of a verdict. */
std::string
detailOf(const PlanOutcome &o)
{
    if (o.plan.advisory)
        return "advisory — not auto-applied";
    if (o.plan.edits.empty())
        return "no trace edit";
    if (o.verdict == Verdict::Verified) {
        return o.oracleRan ? strprintf("oracle agreement %.3f",
                                       o.oracleAgreement)
                           : "oracle skipped";
    }
    if (o.verdict == Verdict::Regressed) {
        if (o.newFindings)
            return strprintf("%zu new finding(s)", o.newFindings);
        return strprintf("oracle disagreement (agreement %.3f)",
                         o.oracleAgreement);
    }
    if (!o.editsFired && o.remainingFindings == 0 && !o.targetGone)
        return "not checked";
    if (!o.editsFired)
        return "edits did not fire";
    if (!o.targetGone)
        return "target persists";
    return "not checked";
}

} // namespace

std::string
FixReport::scoreboard() const
{
    std::string s = strprintf(
        "=== repair scoreboard: %zu plan(s): %zu verified, "
        "%zu incomplete, %zu regressed ===\n",
        outcomes.size(), verified, incomplete, regressed);
    s += strprintf("%-4s %-16s %-5s %-34s %-10s %s\n", "plan", "kind",
                   "for", "site", "verdict", "detail");
    for (const PlanOutcome &o : outcomes) {
        const RepairPlan &p = o.plan;
        const char *forWhat = "-";
        if (!p.findingId.empty())
            forWhat = p.findingId.c_str();
        else if (p.lintTarget)
            forWhat = lint::ruleId(p.lintRule);
        s += strprintf("%-4s %-16s %-5s %-34s %-10s %s\n",
                       p.id.c_str(), repairKindName(p.kind), forWhat,
                       strprintf("%s:%u", p.site.file, p.site.line)
                           .c_str(),
                       verdictName(o.verdict), detailOf(o).c_str());
    }
    for (const UnplannedFinding &u : unplanned) {
        s += strprintf("unplanned %s: %s — %s\n", u.findingId.c_str(),
                       u.description.c_str(), u.reason.c_str());
    }
    return s;
}

void
FixReport::writeJson(obs::JsonWriter &w) const
{
    w.beginObject();
    w.field("schema", "xfd-fix-v1");
    w.field("plans", static_cast<std::uint64_t>(outcomes.size()));
    w.field("verified", static_cast<std::uint64_t>(verified));
    w.field("incomplete", static_cast<std::uint64_t>(incomplete));
    w.field("regressed", static_cast<std::uint64_t>(regressed));

    w.key("repairs").beginArray();
    for (const PlanOutcome &o : outcomes) {
        const RepairPlan &p = o.plan;
        w.beginObject();
        w.field("id", p.id);
        w.field("kind", repairKindName(p.kind));
        if (!p.findingId.empty())
            w.field("finding", p.findingId);
        if (p.lintTarget)
            w.field("lint_rule", lint::ruleId(p.lintRule));
        w.field("target", p.target);
        w.key("site").beginObject();
        w.field("file", p.site.file);
        w.field("line", static_cast<std::uint64_t>(p.site.line));
        w.endObject();
        w.field("patch", p.patch);
        w.field("advisory", p.advisory);
        w.field("verdict", verdictName(o.verdict));
        w.field("target_gone", o.targetGone);
        w.field("new_findings",
                static_cast<std::uint64_t>(o.newFindings));
        w.field("remaining_findings",
                static_cast<std::uint64_t>(o.remainingFindings));
        w.field("edits_fired", o.editsFired);
        if (o.oracleRan) {
            w.key("oracle").beginObject();
            w.field("clean", o.oracleClean);
            w.field("agreement", o.oracleAgreement);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();

    w.key("unplanned").beginArray();
    for (const UnplannedFinding &u : unplanned) {
        w.beginObject();
        w.field("finding", u.findingId);
        w.field("description", u.description);
        w.field("reason", u.reason);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

std::string
FixReport::renderFixFor(const std::string &findingId) const
{
    std::string s;
    for (const PlanOutcome &o : outcomes) {
        if (o.plan.findingId != findingId)
            continue;
        s += strprintf("[FIX %s] %s: %s (%s", o.plan.id.c_str(),
                       repairKindName(o.plan.kind),
                       o.plan.patch.c_str(), verdictName(o.verdict));
        if (o.oracleRan)
            s += strprintf(", oracle %.3f", o.oracleAgreement);
        s += ")\n";
    }
    return s;
}

void
exportFixStats(const FixReport &r, obs::StatsRegistry &reg)
{
    auto scalar = [&reg](const std::string &name, const char *desc,
                         double v) -> obs::Scalar & {
        obs::Scalar &s = reg.scalar(name, desc);
        s.set(v);
        return s;
    };

    obs::Scalar &plans =
        scalar("campaign.fix.plans", "repair plans synthesized",
               static_cast<double>(r.outcomes.size()));
    obs::Scalar &verified =
        scalar("campaign.fix.verified",
               "plans whose re-run removed the target cleanly",
               static_cast<double>(r.verified));
    scalar("campaign.fix.incomplete",
           "plans advisory, unchecked, or with a surviving target",
           static_cast<double>(r.incomplete));
    scalar("campaign.fix.regressed",
           "plans that introduced findings or oracle disagreement",
           static_cast<double>(r.regressed));
    scalar("campaign.fix.unplanned",
           "findings the synthesizer produced no plan for",
           static_cast<double>(r.unplanned.size()));
    scalar("campaign.fix.baseline_findings",
           "findings of the broken baseline campaign",
           static_cast<double>(r.baseline.bugs.size()));

    reg.formula("campaign.fix.verified_ratio", "verified / plans",
                [&plans, &verified] {
                    return plans.value()
                               ? verified.value() / plans.value()
                               : 1.0;
                });
}

} // namespace xfd::fix
