/**
 * @file
 * xfd-fix — the static repair advisor (the ROADMAP's Arthas-direction
 * closed loop).
 *
 * Detection says "here are your cross-failure bugs"; the repair
 * advisor closes the loop with "here is the minimal fix, and here is
 * the re-run proving it works". It walks the same frontier dataflow
 * as xfd-lint and, for every confirmed campaign finding and every
 * repairable lint diagnostic, synthesizes a concrete RepairPlan:
 *
 *  - add_flush_fence: insert CLWB + SFENCE after the racy writer
 *    (unflushed-data cross-failure races, XL05 unpersisted-at-exit);
 *  - add_fence: insert the missing SFENCE after an existing writeback
 *    (clwb-without-fence races);
 *  - reorder_commit: move a commit-variable store (plus its persist)
 *    after the fence that makes its guarded data durable (XL06 /
 *    commit-before-data semantic bugs);
 *  - drop_flush / drop_fence / skip_tx_add: remove a provably
 *    redundant operation (XL01/XL03/XL04 and duplicate-TX_ADD
 *    performance bugs);
 *  - add_tx_add / advisory: semantic bugs that have no sound
 *    trace-level repair (a missing TX_ADD inside a transaction, a
 *    recovery-logic defect) get an advisory plan that names the patch
 *    site but is never auto-applied — auto-inserting the flush that
 *    would silence the detector would break undo-log atomicity
 *    invisibly, the textbook bogus fix.
 *
 * Each applicable plan is applied as an *inverse mutation* — a
 * mutate::EditScript run through mutate::InsertionMutation — and
 * machine-checked by re-running the campaign: the plan is **verified**
 * only if the targeted finding disappears, no finding beyond the
 * broken baseline's set appears, and the crash-state oracle still
 * reports full agreement on the repaired trace. A plan whose target
 * survives (advisories by design) is **incomplete**; one that
 * introduces findings or oracle disagreement is **regressed**.
 */

#ifndef XFD_FIX_FIX_HH
#define XFD_FIX_FIX_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "core/observer.hh"
#include "lint/lint.hh"
#include "mutate/insert.hh"
#include "obs/json.hh"
#include "trace/buffer.hh"

namespace xfd::fix
{

/** The repair shapes the synthesizer emits. */
enum class RepairKind : std::uint8_t
{
    DropFlush,     ///< remove a redundant writeback (XL01/XL03)
    DropFence,     ///< remove a no-op fence (XL04)
    SkipTxAdd,     ///< remove a duplicated TX_ADD (XL02)
    AddFlushFence, ///< insert CLWB+SFENCE after the racy writer
    AddFence,      ///< insert the missing SFENCE after a writeback
    ReorderCommit, ///< move the commit store after its data's fence
    AddTxAdd,      ///< advisory: snapshot the range before writing it
    Advisory,      ///< advisory: no sound trace-level repair exists
};

inline constexpr std::size_t repairKindCount = 8;

/** Stable identifier ("add_flush_fence") for JSON/stats/scoreboard. */
const char *repairKindName(RepairKind k);

/** Whether plans of @p k are ever auto-applied. */
constexpr bool
repairKindAdvisory(RepairKind k)
{
    return k == RepairKind::AddTxAdd || k == RepairKind::Advisory;
}

/** Machine-checked verdict of one plan. */
enum class Verdict : std::uint8_t
{
    /** Target gone, zero new findings, oracle agreement intact. */
    Verified,
    /** Target still present (or the plan is advisory-only). */
    Incomplete,
    /** The repair introduced findings or oracle disagreement. */
    Regressed,
};

const char *verdictName(Verdict v);

/** One synthesized repair with its target and edit script. */
struct RepairPlan
{
    /** Stable plan id ("R1".."Rn", synthesis order). */
    std::string id;

    RepairKind kind = RepairKind::AddFlushFence;

    /**
     * Campaign finding this plan targets ("F3" in --explain's
     * numbering); empty for lint-only plans.
     */
    std::string findingId;

    /** The targeted finding's dedup key (mutate::findingKey form). */
    std::string targetKey;

    /**
     * Lint diagnostic this plan targets, when findingId is empty:
     * (rule, addr, source line) identify it across re-lints.
     */
    lint::Rule lintRule = lint::Rule::RedundantWriteback;
    Addr lintAddr = 0;
    bool lintTarget = false;

    /** One-line description of what is being fixed. */
    std::string target;

    /** Where the patch goes. */
    trace::SrcLoc site;

    /** Suggested source change, human-readable. */
    std::string patch;

    /** Never auto-applied; verdict is Incomplete by design. */
    bool advisory = false;

    /** The trace edits implementing the repair. */
    mutate::EditScript edits;

    /** "R1 add_flush_fence @ file:line (F2)". */
    std::string describe() const;
};

/** What machine-checking one plan produced. */
struct PlanOutcome
{
    RepairPlan plan;
    Verdict verdict = Verdict::Incomplete;

    /** The targeted finding/diagnostic is gone from the re-run. */
    bool targetGone = false;

    /** Findings of the repaired run beyond the baseline's set. */
    std::size_t newFindings = 0;

    /** Findings remaining in the repaired run (any kind). */
    std::size_t remainingFindings = 0;

    /** Every planned edit was reached during re-execution. */
    bool editsFired = false;

    /** @name Oracle cross-check (run only for candidate verifies) @{ */
    bool oracleRan = false;
    bool oracleClean = false;
    double oracleAgreement = 0.0;
    /** @} */
};

/** Findings the synthesizer produced no plan for. */
struct UnplannedFinding
{
    std::string findingId;
    std::string description;
    std::string reason;
};

/** Everything a fix campaign needs. */
struct FixConfig
{
    /** The (buggy) workload, same contract as core::Driver. */
    core::ProgramFn pre;
    core::ProgramFn post;

    std::size_t poolBytes = std::size_t{1} << 22;

    /** Worker threads for each inner detection campaign. */
    unsigned threads = 1;

    /** Detector knobs for the inner campaigns (fix/mutation/oracle
        fields are ignored — a fix campaign never recurses). */
    core::DetectorConfig detector;

    /**
     * Which plans to check: "all", a finding id ("F3" or "3"), or a
     * plan id ("R2"). Non-matching plans are synthesized but not
     * machine-checked (verdict stays Incomplete with no re-run).
     */
    std::string targets = "all";

    /**
     * Cross-check candidate verifications against the crash-state
     * oracle (agreement must be 1.0 for a Verified verdict). Tests
     * can disable it to keep hot loops cheap.
     */
    bool withOracle = true;

    /** Optional observer, attached to the baseline campaign only. */
    core::CampaignObserver *observer = nullptr;

    /** Progress callback, after each plan's machine check. */
    std::function<void(std::size_t done, std::size_t total,
                       const RepairPlan &p, Verdict v)>
        onPlan;
};

/** Full result of a fix campaign. */
struct FixReport
{
    std::vector<PlanOutcome> outcomes;
    std::vector<UnplannedFinding> unplanned;

    std::size_t verified = 0;
    std::size_t incomplete = 0;
    std::size_t regressed = 0;

    /** The broken program's campaign result (summary/exit source). */
    core::CampaignResult baseline;

    /** The broken program's lint report. */
    lint::LintReport lintBaseline;

    /** Plans synthesized (== outcomes.size()). */
    std::size_t plans() const { return outcomes.size(); }

    /** Multi-line human-readable repair scoreboard. */
    std::string scoreboard() const;

    /** The "fix" object ("xfd-fix-v1") of the stats document. */
    void writeJson(obs::JsonWriter &w) const;

    /**
     * "[FIX Rn] ..." lines for the plans targeting finding
     * @p findingId ("F2"); empty when none do.
     */
    std::string renderFixFor(const std::string &findingId) const;
};

/**
 * Synthesize repair plans for every finding of @p baseline and every
 * repairable diagnostic of @p lintRep, from the frontier dataflow of
 * @p pre. Deterministic: plans come in finding order, then lint
 * diagnostic order, with ids R1..Rn.
 */
std::vector<RepairPlan>
synthesizePlans(const core::CampaignResult &baseline,
                const lint::LintReport &lintRep,
                const trace::TraceBuffer &pre,
                const core::DetectorConfig &cfg,
                std::vector<UnplannedFinding> *unplanned = nullptr);

/** Run the campaign: baseline + lint, synthesize, machine-check. */
FixReport runFixCampaign(const FixConfig &cfg);

/** Mirror @p r into campaign.fix.* stats of @p reg. */
void exportFixStats(const FixReport &r, obs::StatsRegistry &reg);

} // namespace xfd::fix

#endif // XFD_FIX_FIX_HH
