/**
 * @file
 * Repair-plan synthesis: from a finding (or a lint diagnostic) to the
 * trace edit that removes it.
 *
 * The synthesizer re-walks the frontier dataflow the lint pass uses
 * (lint::FrontierState) to locate the cell a cross-failure race is
 * about at its failure point, and derives the repair from the cell's
 * persistency state: a Modified cell needs a CLWB + SFENCE after its
 * writer, a WritebackPending cell only needs the SFENCE its existing
 * writeback is missing. Commit-ordering semantic bugs reuse the XL06
 * diagnostic (the premature commit store's seq) and compute, by
 * continuing the same walk, the first fence at which the data the
 * commit guards has become durable — the reinsertion point for the
 * reordered store. Performance findings map onto the lint
 * diagnostics at the same source line, whose seqs are exactly the
 * redundant operations to drop.
 *
 * Two classes of findings deliberately get advisory (never-applied)
 * plans: a racy write inside an open transaction with no covering
 * TX_ADD, where inserting the flush that would silence the race
 * check destroys undo-log atomicity (the repaired trace would
 * machine-"verify" while the real bug got worse); and reads of
 * never-initialized allocations, where no ordering edit can invent
 * the missing initialization.
 */

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "common/logging.hh"
#include "fix/fix.hh"
#include "lint/frontier.hh"
#include "trace/iter.hh"

namespace xfd::fix
{

namespace
{

using core::BugReport;
using core::BugType;
using lint::Diagnostic;
using lint::Rule;
using mutate::EditScript;
using trace::TraceEntry;

std::string
locStr(const trace::SrcLoc &l)
{
    return strprintf("%s:%u", l.file, l.line);
}

/** The dedup key the mutation engine uses (campaign identity). */
std::string
findingKey(const BugReport &b)
{
    return strprintf("%d|%s:%u|%s:%u", static_cast<int>(b.type),
                     b.reader.file, b.reader.line, b.writer.file,
                     b.writer.line);
}

/** Canonical signature of an edit script, for plan deduplication. */
std::string
editSig(const EditScript &s)
{
    std::string sig = "d:";
    for (std::uint32_t q : s.dropSeqs)
        sig += strprintf("%u,", q);
    sig += "|s:";
    for (std::uint64_t o : s.skipTxAdds)
        sig += strprintf("%llu,", static_cast<unsigned long long>(o));
    sig += strprintf("|wf:%s:%u|ff:%s:%u|c:%u>%u",
                     s.flushFenceAfterWritesAt.file,
                     s.flushFenceAfterWritesAt.line,
                     s.fenceAfterFlushAt.file, s.fenceAfterFlushAt.line,
                     s.commitSeq, s.reinsertAfterSeq);
    return sig;
}

/** TX_ADD occurrence (library call index) of the TxAdd entry @p seq. */
std::uint64_t
txAddOccurrence(const trace::TraceBuffer &pre, std::uint32_t seq)
{
    std::uint64_t occ = 0;
    for (const TraceEntry &e : pre) {
        if (e.seq >= seq)
            break;
        if (e.op == trace::Op::TxAdd)
            occ++;
    }
    return occ;
}

/** Replay the frontier dataflow over entries with seq < @p to. */
lint::FrontierState
replayTo(const trace::TraceBuffer &pre, std::uint32_t to,
         const core::DetectorConfig &cfg)
{
    lint::FrontierState fsm(cfg.granularity, cfg.eadrOn());
    for (const TraceEntry &e : pre) {
        if (e.seq >= to)
            break;
        fsm.apply(e);
    }
    return fsm;
}

/**
 * Is the write at @p writerSeq inside an open transaction with no
 * TX_ADD covering its range since the transaction began? That is the
 * one race shape whose flush-repair would be unsound.
 */
bool
uncoveredTxWrite(const trace::TraceBuffer &pre, std::uint32_t writerSeq)
{
    bool inTx = false;
    bool covered = false;
    bool isStore = false;
    std::vector<AddrRange> adds;
    for (const TraceEntry &e : pre) {
        if (e.seq > writerSeq)
            break;
        if (trace::isTxBoundary(e)) {
            inTx = std::strcmp(e.label, trace::labels::txBegin) == 0;
            adds.clear();
        } else if (e.op == trace::Op::TxAdd) {
            adds.push_back(AddrRange{
                e.addr, e.addr + std::max<std::uint32_t>(e.size, 1)});
        }
        if (e.seq == writerSeq && e.isWrite()) {
            isStore = true;
            AddrRange w{e.addr,
                        e.addr + std::max<std::uint32_t>(e.size, 1)};
            for (const AddrRange &r : adds) {
                if (w.overlaps(r)) {
                    covered = true;
                    break;
                }
            }
        }
    }
    return inTx && isStore && !covered;
}

/** Last flush before @p before whose line set covers @p addr. */
const TraceEntry *
lastCoveringFlush(const trace::TraceBuffer &pre, Addr addr,
                  std::uint32_t before)
{
    const TraceEntry *last = nullptr;
    Addr line = lineBase(addr);
    for (const TraceEntry &e : pre) {
        if (e.seq >= before)
            break;
        if (!e.isFlush())
            continue;
        trace::forEachLine(e.addr, std::max<std::uint32_t>(e.size, 1),
                           [&](Addr l) {
                               if (l == line)
                                   last = &e;
                           });
    }
    return last;
}

/** Lint diagnostics of @p rules at the source line of @p loc. */
std::vector<const Diagnostic *>
diagsAt(const lint::LintReport &rep,
        std::initializer_list<Rule> rules, const trace::SrcLoc &loc)
{
    std::vector<const Diagnostic *> out;
    for (const Diagnostic &d : rep.diagnostics) {
        if (!(d.loc == loc))
            continue;
        for (Rule r : rules) {
            if (d.rule == r) {
                out.push_back(&d);
                break;
            }
        }
    }
    return out;
}

} // namespace

std::vector<RepairPlan>
synthesizePlans(const core::CampaignResult &baseline,
                const lint::LintReport &lintRep,
                const trace::TraceBuffer &pre,
                const core::DetectorConfig &cfg,
                std::vector<UnplannedFinding> *unplanned)
{
    std::vector<RepairPlan> plans;
    std::set<std::string> sigs;

    auto push = [&](RepairPlan p) {
        std::string sig = editSig(p.edits);
        if (!p.edits.empty() && !sigs.insert(sig).second)
            return; // an earlier plan already makes this exact edit
        p.id = strprintf("R%zu", plans.size() + 1);
        p.advisory = p.advisory || repairKindAdvisory(p.kind);
        plans.push_back(std::move(p));
    };

    auto skip = [&](const std::string &fid, const BugReport &b,
                    const char *reason) {
        if (unplanned)
            unplanned->push_back(UnplannedFinding{fid, b.str(), reason});
    };

    const std::vector<BugReport> &bugs = baseline.findings();
    for (std::size_t i = 0; i < bugs.size(); i++) {
        const BugReport &b = bugs[i];
        std::string fid = strprintf("F%zu", i + 1);

        RepairPlan p;
        p.findingId = fid;
        p.targetKey = findingKey(b);
        p.target = b.str();

        switch (b.type) {
          case BugType::Performance: {
            if (b.note.find("writeback") != std::string::npos) {
                // The redundant flush; the lint pass walks the same
                // FSM, so its XL01/XL03 seqs at this source line are
                // exactly the dynamic finding's occurrences.
                auto ds = diagsAt(lintRep,
                                  {Rule::RedundantWriteback,
                                   Rule::FlushUnmodified},
                                  b.reader);
                if (ds.empty()) {
                    skip(fid, b,
                         "no lint diagnostic pins down the redundant "
                         "flush occurrences");
                    break;
                }
                p.kind = RepairKind::DropFlush;
                for (const Diagnostic *d : ds)
                    p.edits.dropSeqs.push_back(d->seq);
                p.site = b.reader;
                p.patch = strprintf("remove the redundant flush at %s",
                                    locStr(b.reader).c_str());
                push(std::move(p));
            } else if (b.note.find("TX_ADD") != std::string::npos) {
                auto ds =
                    diagsAt(lintRep, {Rule::DuplicateTxAdd}, b.reader);
                if (ds.empty()) {
                    skip(fid, b,
                         "no lint diagnostic pins down the duplicated "
                         "TX_ADD occurrences");
                    break;
                }
                p.kind = RepairKind::SkipTxAdd;
                for (const Diagnostic *d : ds) {
                    p.edits.skipTxAdds.push_back(
                        txAddOccurrence(pre, d->seq));
                }
                p.site = b.reader;
                p.patch =
                    strprintf("remove the duplicated TX_ADD at %s",
                              locStr(b.reader).c_str());
                push(std::move(p));
            } else {
                skip(fid, b, "unrecognized performance-bug shape");
            }
            break;
          }

          case BugType::CrossFailureRace: {
            lint::FrontierState fsm = replayTo(pre, b.failurePoint, cfg);
            unsigned gran = fsm.granularity();
            bool found = false;
            lint::FrontierCell cell;
            fsm.forEachInFlight([&](Addr a, const lint::FrontierCell &c) {
                if (!found && b.addr >= a && b.addr < a + gran) {
                    cell = c;
                    found = true;
                }
            });
            if (!found) {
                skip(fid, b,
                     "racy cell not in flight at the failure point");
                break;
            }
            if (cell.uninit) {
                p.kind = RepairKind::Advisory;
                p.site = cell.writer;
                p.patch = strprintf(
                    "initialize the allocation from %s before "
                    "publishing it; no ordering edit can invent the "
                    "missing initialization",
                    locStr(cell.writer).c_str());
                push(std::move(p));
                break;
            }
            if (uncoveredTxWrite(pre, cell.writerSeq)) {
                // Flushing here would silence the race check while
                // leaving the update outside the undo log — the
                // repaired trace would "verify" as the bug got worse.
                p.kind = RepairKind::AddTxAdd;
                p.site = cell.writer;
                p.patch = strprintf(
                    "TX_ADD the object before the in-transaction "
                    "store at %s; a flush alone would mask the lost "
                    "undo-log coverage",
                    locStr(cell.writer).c_str());
                push(std::move(p));
                break;
            }
            if (cell.st == lint::CellState::WritebackPending) {
                const TraceEntry *fl =
                    lastCoveringFlush(pre, b.addr, b.failurePoint);
                if (fl) {
                    p.kind = RepairKind::AddFence;
                    p.edits.fenceAfterFlushAt = fl->loc;
                    p.site = fl->loc;
                    p.patch = strprintf(
                        "insert sfence after the writeback at %s",
                        locStr(fl->loc).c_str());
                    push(std::move(p));
                    break;
                }
                // An ntstore pending with no flush to anchor on:
                // fall through to the writer-site flush + fence.
            }
            p.kind = RepairKind::AddFlushFence;
            p.edits.flushFenceAfterWritesAt = cell.writer;
            p.site = cell.writer;
            p.patch =
                strprintf("insert clwb + sfence after the store at %s",
                          locStr(cell.writer).c_str());
            push(std::move(p));
            break;
          }

          case BugType::CrossFailureSemantic: {
            // When the inconsistent data itself is still in flight at
            // the failure point, the commit protocol ordering is not
            // the defect — the data store inside the commit window was
            // simply never persisted. Persist it at its writer;
            // reordering the commit cannot help because the data never
            // becomes durable at all.
            {
                lint::FrontierState fsm =
                    replayTo(pre, b.failurePoint, cfg);
                unsigned gran = fsm.granularity();
                bool found = false;
                lint::FrontierCell cell;
                fsm.forEachInFlight(
                    [&](Addr a, const lint::FrontierCell &c) {
                        if (!found && b.addr >= a && b.addr < a + gran) {
                            cell = c;
                            found = true;
                        }
                    });
                if (found && !cell.uninit &&
                    !uncoveredTxWrite(pre, cell.writerSeq)) {
                    if (cell.st == lint::CellState::WritebackPending) {
                        const TraceEntry *fl = lastCoveringFlush(
                            pre, b.addr, b.failurePoint);
                        if (fl) {
                            p.kind = RepairKind::AddFence;
                            p.edits.fenceAfterFlushAt = fl->loc;
                            p.site = fl->loc;
                            p.patch = strprintf(
                                "insert sfence after the writeback at "
                                "%s",
                                locStr(fl->loc).c_str());
                            push(std::move(p));
                            break;
                        }
                    }
                    p.kind = RepairKind::AddFlushFence;
                    p.edits.flushFenceAfterWritesAt = cell.writer;
                    p.site = cell.writer;
                    p.patch = strprintf(
                        "insert clwb + sfence after the store at %s "
                        "so the data persists inside its commit "
                        "window",
                        locStr(cell.writer).c_str());
                    push(std::move(p));
                    break;
                }
            }

            // "Uncommitted" means the data store and its commit write
            // share one ordering epoch: the global timestamp advances
            // only at fences (§5.4), so with no fence between them the
            // commit write cannot vouch for the data. The inverse of
            // the missing persist is clwb + sfence right after the
            // data store, splitting the epoch. If the data is instead
            // mis-ordered against the protocol (e.g. updated outside
            // its dirty window), the edit fails the machine check and
            // the plan reports incomplete rather than a bogus fix.
            if (b.note.find("uncommitted") != std::string::npos) {
                const TraceEntry *w = nullptr;
                for (const TraceEntry &e : pre) {
                    if (e.seq >= b.failurePoint)
                        break;
                    if (e.isWrite() && e.addr <= b.addr &&
                        b.addr < e.addr + e.size) {
                        w = &e;
                    }
                }
                if (w) {
                    p.kind = RepairKind::AddFlushFence;
                    p.edits.flushFenceAfterWritesAt = w->loc;
                    p.site = w->loc;
                    p.patch = strprintf(
                        "insert clwb + sfence after the store at %s "
                        "so the data persists and fences before its "
                        "commit write",
                        locStr(w->loc).c_str());
                    push(std::move(p));
                    break;
                }
            }

            // The XL06 diagnostic carries the premature commit store;
            // pick the nearest one before this finding's failure
            // point.
            const Diagnostic *best = nullptr;
            for (const Diagnostic &d : lintRep.diagnostics) {
                if (d.rule != Rule::CommitFenceMissing)
                    continue;
                if (d.seq < b.failurePoint &&
                    (!best || d.seq > best->seq)) {
                    best = &d;
                }
            }
            if (!best) {
                p.kind = RepairKind::Advisory;
                p.site = b.writer;
                p.patch =
                    "crash-consistency mechanism violation with no "
                    "premature-commit signature; the repair needs a "
                    "semantic change, not a trace edit";
                push(std::move(p));
                break;
            }

            // Cells in flight when the commit store issued — the data
            // the commit publishes before it is durable. The commit
            // variable's own cells are excluded: they are the store
            // being moved.
            lint::FrontierState fsm = replayTo(pre, best->seq, cfg);
            std::set<Addr> waitFor;
            fsm.forEachInFlight(
                [&](Addr a, const lint::FrontierCell &) {
                    if (!fsm.isCommitVarAddr(a))
                        waitFor.insert(a);
                });

            // Continue the walk to the first fence after which none
            // of that data is still in flight: the reinsertion point.
            std::uint32_t reinsertAt = EditScript::noSeq;
            for (const TraceEntry &e : pre) {
                if (e.seq < best->seq)
                    continue;
                fsm.apply(e);
                if (!e.isFence() || e.seq <= best->seq)
                    continue;
                bool pending = false;
                fsm.forEachInFlight(
                    [&](Addr a, const lint::FrontierCell &) {
                        if (waitFor.count(a))
                            pending = true;
                    });
                if (!pending) {
                    reinsertAt = e.seq;
                    break;
                }
            }
            if (reinsertAt == EditScript::noSeq) {
                skip(fid, b,
                     "the data the commit guards never becomes "
                     "durable; reordering has no legal target");
                break;
            }

            p.kind = RepairKind::ReorderCommit;
            p.edits.commitSeq = best->seq;
            p.edits.reinsertAfterSeq = reinsertAt;
            // The commit store's original writebacks would flush a
            // line with nothing modified once the store moves; drop
            // them (the fences stay — other data may retire there).
            for (const TraceEntry &e : pre) {
                if (e.seq <= best->seq)
                    continue;
                if (e.seq >= reinsertAt)
                    break;
                if (!e.isFlush())
                    continue;
                bool covers = false;
                trace::forEachLine(
                    e.addr, std::max<std::uint32_t>(e.size, 1),
                    [&](Addr l) {
                        if (l == lineBase(best->addr))
                            covers = true;
                    });
                if (covers)
                    p.edits.dropSeqs.push_back(e.seq);
            }
            p.site = best->loc;
            p.patch = strprintf(
                "move the commit store at %s (and its flush + fence) "
                "after the fence at seq %u, where the data it "
                "publishes has become durable",
                locStr(best->loc).c_str(), reinsertAt);
            push(std::move(p));
            break;
          }

          case BugType::RecoveryFailure:
            skip(fid, b,
                 "recovery failed outright; no single trace edit can "
                 "be derived from the failure");
            break;
        }
    }

    // Lint-only plans: statically-decidable repairs whose targets the
    // dynamic campaign never surfaced (or surfaced elsewhere). One
    // plan covers every diagnostic with the same (rule, addr, source
    // line) — the identity a re-lint checks — so a flush that is
    // redundant on every execution gets all its occurrences dropped
    // at once. Edits already claimed by a finding-driven plan dedup
    // away in push().
    std::vector<const Diagnostic *> groups;
    std::map<std::string, std::size_t> groupOf;
    std::map<std::size_t, std::vector<const Diagnostic *>> members;
    for (const Diagnostic &d : lintRep.diagnostics) {
        std::string key =
            strprintf("%d|%llx|%s:%u", static_cast<int>(d.rule),
                      static_cast<unsigned long long>(d.addr),
                      d.loc.file, d.loc.line);
        auto [it, fresh] = groupOf.emplace(key, groups.size());
        if (fresh)
            groups.push_back(&d);
        members[it->second].push_back(&d);
    }
    for (std::size_t g = 0; g < groups.size(); g++) {
        const Diagnostic &d = *groups[g];
        RepairPlan p;
        p.lintRule = d.rule;
        p.lintAddr = d.addr;
        p.lintTarget = true;
        p.target = d.str();
        p.site = d.loc;
        switch (d.rule) {
          case Rule::RedundantWriteback:
          case Rule::FlushUnmodified:
            p.kind = RepairKind::DropFlush;
            for (const Diagnostic *m : members[g])
                p.edits.dropSeqs.push_back(m->seq);
            p.patch = strprintf("remove the redundant flush at %s",
                                locStr(d.loc).c_str());
            break;
          case Rule::FenceNoPending:
            p.kind = RepairKind::DropFence;
            for (const Diagnostic *m : members[g])
                p.edits.dropSeqs.push_back(m->seq);
            p.patch = strprintf("remove the no-op fence at %s",
                                locStr(d.loc).c_str());
            break;
          case Rule::DuplicateTxAdd:
            p.kind = RepairKind::SkipTxAdd;
            for (const Diagnostic *m : members[g]) {
                p.edits.skipTxAdds.push_back(
                    txAddOccurrence(pre, m->seq));
            }
            p.patch = strprintf("remove the duplicated TX_ADD at %s",
                                locStr(d.loc).c_str());
            break;
          case Rule::UnpersistedAtExit:
            if (uncoveredTxWrite(pre, d.seq)) {
                p.kind = RepairKind::AddTxAdd;
                p.patch = strprintf(
                    "TX_ADD the object before the in-transaction "
                    "store at %s; a flush alone would mask the lost "
                    "undo-log coverage",
                    locStr(d.loc).c_str());
                break;
            }
            p.kind = RepairKind::AddFlushFence;
            p.edits.flushFenceAfterWritesAt = d.loc;
            p.patch =
                strprintf("insert clwb + sfence after the store at %s",
                          locStr(d.loc).c_str());
            break;
          default:
            continue; // XL06..XL08 have no lint-only mechanical plan
        }
        push(std::move(p));
    }

    return plans;
}

std::string
RepairPlan::describe() const
{
    std::string s = strprintf("%s %s @ %s", id.c_str(),
                              repairKindName(kind), locStr(site).c_str());
    if (!findingId.empty())
        s += strprintf(" (%s)", findingId.c_str());
    else if (lintTarget)
        s += strprintf(" (%s)", lint::ruleId(lintRule));
    return s;
}

const char *
repairKindName(RepairKind k)
{
    switch (k) {
      case RepairKind::DropFlush: return "drop_flush";
      case RepairKind::DropFence: return "drop_fence";
      case RepairKind::SkipTxAdd: return "skip_tx_add";
      case RepairKind::AddFlushFence: return "add_flush_fence";
      case RepairKind::AddFence: return "add_fence";
      case RepairKind::ReorderCommit: return "reorder_commit";
      case RepairKind::AddTxAdd: return "add_tx_add";
      case RepairKind::Advisory: return "advisory";
    }
    return "?";
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Verified: return "verified";
      case Verdict::Incomplete: return "incomplete";
      case Verdict::Regressed: return "regressed";
    }
    return "?";
}

} // namespace xfd::fix
