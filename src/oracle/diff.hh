/**
 * @file
 * Differential conformance harness: detector vs. crash-state oracle.
 *
 * One differential campaign runs the FSM-based detector and the
 * enumeration oracle over the same program and compares them at every
 * planned failure point:
 *
 *  - The detector's per-point findings are captured through the
 *    CampaignObserver::onFailurePoint hook (pre-dedup, so a bug
 *    recurring at several points is seen at each of them).
 *  - The oracle's all-updates anchor candidate runs on a byte-
 *    identical crash image, so its finding classes must match the
 *    detector's exactly; any mismatch is a disagreement.
 *  - Classes that only partial candidates surface are *extras*: real
 *    crash states the detector's single image never executes. They
 *    are attributed (a partial image can legitimately race, break
 *    recovery, or expose a different committed version) rather than
 *    counted against conformance; an extra that cannot be attributed
 *    marks the report unclean.
 *  - Under --crash-states the detector explores partial candidates
 *    itself. The harness then mirrors the detector's enumeration
 *    knobs and per-point sampler stream (the equivalence-class hash
 *    of DESIGN.md §14), so the oracle materializes the same masks,
 *    and checks two more properties: every detector finding first
 *    exposed on a partial image must be reproduced by the oracle's
 *    candidate at the same mask, and every candidate the detector
 *    pruned as equivalent must get the same oracle verdict as the
 *    representative that ran in its place (agreement 1.0 means the
 *    pruning rule lost nothing).
 *
 * Disagreements are dumped as replayable artifacts: the pre-failure
 * trace (trace/serialize format) once per campaign, plus one JSON
 * sidecar per disagreeing failure point carrying the point's seq, the
 * anchor subset mask in SubsetMask::toHex() spelling, and both class
 * sets — everything needed to reconstruct the exact crash image and
 * re-run the comparison.
 */

#ifndef XFD_ORACLE_DIFF_HH
#define XFD_ORACLE_DIFF_HH

#include <set>
#include <string>
#include <vector>

#include "core/campaign_json.hh"
#include "core/driver.hh"
#include "core/observer.hh"
#include "oracle/oracle.hh"

namespace xfd::oracle
{

/** Knobs for one differential campaign. */
struct DiffConfig
{
    /**
     * Campaign configuration for the detector side; the oracle
     * mirrors its semantics knobs. crashImageMode is force-disabled
     * (the driver's durable image is line-granular where the oracle's
     * is cell-granular, so the images are not comparable).
     */
    core::DetectorConfig detector;

    /** Worker threads for the detector campaign. */
    unsigned threads = 1;

    /** Oracle tier: exhaustive below the frontier limit, or sampled. */
    bool exhaustive = true;

    /** Candidates per failure point when sampling. */
    std::size_t sampleCount = 64;

    /** Seed for the oracle's subset sampler. */
    std::uint64_t seed = 42;

    /** Directory for disagreement artifacts; empty = don't write. */
    std::string artifactDir;

    /**
     * Optional external observer: campaign stats/spans/progress land
     * there, and any hooks already installed keep firing. The harness
     * restores the hook slots before returning.
     */
    core::CampaignObserver *observer = nullptr;
};

/** Detector/oracle comparison at one failure point. */
struct FpAgreement
{
    std::uint32_t fp = 0;

    /** Classes the detector reported at this point (pre-dedup). */
    std::set<core::BugType> detectorClasses;

    /** Classes of the oracle's all-updates anchor candidate. */
    std::set<core::BugType> oracleClasses;

    /** In-flight writes at the point. */
    std::size_t frontier = 0;

    /** Candidate crash images the oracle ran. */
    std::size_t candidates = 0;

    /** Frontier exceeded the limit; candidates were sampled. */
    bool sampled = false;

    /** detectorClasses == oracleClasses. */
    bool agree = false;

    /**
     * The detector folded this point into a batch representative
     * (--backend=batched); detectorClasses
     * holds the classes of its kept representative, which the prune
     * rule guarantees are the classes this point would have produced.
     * The oracle runs the pruned point for real, so a disagreement
     * here falsifies the rule, not just the detector.
     */
    bool prunedRecheck = false;

    /** Classes only partial candidates produced (attributed). */
    std::set<core::BugType> extras;
};

/** Outcome of a differential campaign. */
struct DiffReport
{
    std::vector<FpAgreement> perFp;

    std::size_t failurePoints = 0;
    std::size_t agreements = 0;
    std::size_t disagreements = 0;

    /** Legal crash states identified across all points. */
    std::size_t statesEnumerated = 0;

    /** Candidates run at sampled (over-limit) points. */
    std::size_t subsetsSampled = 0;

    /** Candidate recovery executions in total. */
    std::size_t candidatesRun = 0;

    /** Points the detector pruned and the oracle re-checked. */
    std::size_t prunedRechecked = 0;

    /** Partial-candidate extra classes, by attribution. */
    std::size_t extrasExplained = 0;
    std::size_t extrasUnexplained = 0;

    /**
     * --crash-states conformance: detector partial-image finding
     * groups (one per distinct persisted mask at a point) checked
     * against the oracle's candidate at the same mask.
     */
    std::size_t partialChecked = 0;
    std::size_t partialDisagreements = 0;

    /**
     * Candidates the detector's equivalence pruning skipped,
     * re-checked by comparing the oracle's verdict at the skipped
     * (point, mask) against the representative that ran instead.
     */
    std::size_t crashPrunedRechecked = 0;
    std::size_t crashPrunedDisagreements = 0;

    /** Artifact files written (disagreements only). */
    std::vector<std::string> artifacts;

    /**
     * Wall seconds the oracle side spent (enumeration + candidate
     * recovery executions); also noted as Phase::Oracle on the
     * detector result's phase totals.
     */
    double oracleSeconds = 0;

    /** The detector campaign's own result (final, deduplicated). */
    core::CampaignResult detector;

    /** Agreeing points / planned points (1.0 when none planned). */
    double agreementRate() const;

    /** No disagreements and no unattributable extras. */
    bool
    clean() const
    {
        return disagreements == 0 && extrasUnexplained == 0 &&
               partialDisagreements == 0 &&
               crashPrunedDisagreements == 0;
    }

    /** Multi-line human-readable report. */
    std::string summary() const;
};

/**
 * Run detector and oracle over one program and compare per failure
 * point. The pool must be in its pre-campaign state; like a plain
 * campaign, it holds the final pre-failure contents afterwards.
 */
DiffReport runDifferentialCampaign(pm::PmPool &pool,
                                   const core::ProgramFn &pre,
                                   const core::ProgramFn &post,
                                   const DiffConfig &cfg);

/** Register campaign.oracle.* scalars/formulas for @p r. */
void exportOracleStats(obs::StatsRegistry &reg, const DiffReport &r);

/**
 * Stats-JSON section ("oracle") for @p r. The report must outlive the
 * writeStatsJson() call that consumes the section.
 */
core::JsonSection oracleJsonSection(const DiffReport &r);

} // namespace xfd::oracle

#endif // XFD_ORACLE_DIFF_HH
