/**
 * @file
 * Crash-state enumeration oracle — an independent second
 * implementation of the paper's cross-failure semantics.
 *
 * The detection driver trusts one shadow-PM FSM replay per failure
 * point (core/shadow_pm). The oracle re-derives the same verdicts
 * from first principles, Jaaru/WITCHER-style, sharing no state or
 * code with the FSM:
 *
 *  1. Scan the pre-failure trace with an independent per-cell model
 *     of the x86 persistency rules (CLWB/CLFLUSHOPT + SFENCE retire
 *     writes; non-temporal stores persist at the next fence). Each
 *     cell carries a *tail*: the write events applied to it since it
 *     was last guaranteed persisted.
 *  2. At a failure point, the union of the tails is the *frontier* —
 *     the in-flight write events a real crash may or may not have
 *     persisted. Every legal crash image corresponds to a
 *     downward-closed subset of the frontier (per cell, the applied
 *     events must form a prefix of its tail: stores to one location
 *     persist in store order).
 *  3. Enumerate the legal subsets (exhaustively below a configurable
 *     frontier size, seeded-random sampling above it), materialize
 *     each candidate crash image from an incrementally maintained
 *     durable image, run the recovery program on it, and classify
 *     the outcome into the paper's taxonomy: cross-failure race
 *     (read of an in-flight cell), cross-failure semantic bug
 *     (persisted but outside the commit-variable window, condition
 *     (3)), or recovery failure (abort / wild PM access).
 *
 * The all-updates candidate (every frontier event applied) is byte-
 * identical to the image the driver materializes per footnote 3, so
 * its classification must equal the detector's per-failure-point
 * findings exactly — that is the conformance anchor the differential
 * harness (oracle/diff.hh) asserts. Partial candidates explore crash
 * states the detector never executes; their extra findings are
 * attributed (see DiffReport) rather than compared one-to-one.
 */

#ifndef XFD_ORACLE_ORACLE_HH
#define XFD_ORACLE_ORACLE_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.hh"
#include "core/bug_report.hh"
#include "core/config.hh"
#include "core/driver.hh"
#include "pm/image.hh"
#include "pm/pool.hh"
#include "trace/buffer.hh"
#include "trace/candidates.hh"
#include "trace/subset.hh"

namespace xfd::oracle
{

/** Enumeration knobs for one oracle pass. */
struct OracleConfig
{
    /** Enumerate every legal subset (frontiers <= frontierLimit). */
    bool exhaustive = true;

    /** Candidates per failure point when sampling. */
    std::size_t sampleCount = 64;

    /**
     * Frontiers larger than this are sampled even in exhaustive mode
     * (the subset space is 2^frontier).
     */
    std::size_t frontierLimit = 8;

    /** Seed for the per-failure-point subset sampler. */
    std::uint64_t seed = 42;

    /**
     * Detector knobs the oracle must mirror to stay comparable:
     * granularity, firstReadOnly, strictPersistCheck and
     * crashImageMode change what counts as a finding.
     */
    core::DetectorConfig detector;
};

/**
 * One in-flight write event at a failure point. The type moved to
 * trace/candidates.hh when the driver's --crash-states mode started
 * sharing the enumeration; this alias keeps oracle call sites stable.
 */
using FrontierEvent = trace::FrontierEvent;

/** Outcome of running recovery on one candidate crash image. */
struct CandidateOutcome
{
    /** Which frontier events this candidate persisted. */
    trace::SubsetMask mask;

    /**
     * Finding classes recovery produced on this image (only
     * CrossFailureRace / CrossFailureSemantic / RecoveryFailure —
     * performance bugs are a whole-trace property, not a per-crash-
     * state one).
     */
    std::set<core::BugType> classes;
};

/** Everything the oracle derived for one failure point. */
struct FpOracleResult
{
    std::uint32_t fp = 0;

    /** In-flight write events, ascending by seq (mask bit order). */
    std::vector<FrontierEvent> frontier;

    /** Legal subsets found (enumerated or distinct sampled). */
    std::size_t statesLegal = 0;

    /** True when the frontier exceeded the limit and was sampled. */
    bool sampled = false;

    /** Candidates run; [0] is the all-updates anchor candidate. */
    std::vector<CandidateOutcome> candidates;

    /** Classes of the all-updates anchor (detector-equivalent). */
    const std::set<core::BugType> &anchorClasses() const
    {
        return candidates.front().classes;
    }
};

/**
 * The oracle. Construct once per campaign, then feed it the planned
 * failure points in ascending order — the pre-trace scan, like the
 * driver's replay cursors, only moves forward.
 */
class CrashStateOracle
{
  public:
    /**
     * @param pre     the campaign's pre-failure trace
     * @param initial pool snapshot from before the pre-failure run;
     *                also pins the oracle's pool geometry, which must
     *                match the campaign's (workloads chase absolute
     *                persistent pointers)
     * @param cfg     enumeration + mirrored detector knobs
     */
    CrashStateOracle(const trace::TraceBuffer &pre,
                     const pm::PmImage &initial,
                     const OracleConfig &cfg);

    /**
     * Enumerate, materialize and classify the crash states of the
     * failure point at pre-trace position @p fp (the entry at fp does
     * not retire). @p post is the recovery program, run once per
     * candidate on the oracle's own pool replica.
     *
     * @p extraMasks (may be null) are candidate masks some other
     * explorer — the driver's --crash-states mode — executed for this
     * failure point; any of them the oracle's own enumeration did not
     * produce is appended and classified too, so the differential
     * harness can look up the oracle's verdict at every detector
     * candidate even when enumeration knobs differ.
     *
     * @p stream (may be null) overrides the sampler stream identity.
     * The oracle defaults to the failure point; the driver's
     * --crash-states mode samples per candidate equivalence class, so
     * the differential harness passes the driver's class hash here to
     * reproduce the exact detector mask sequence.
     */
    FpOracleResult runFailurePoint(
        std::uint32_t fp, const core::ProgramFn &post,
        const std::vector<trace::SubsetMask> *extraMasks = nullptr,
        const std::uint64_t *stream = nullptr);

    /** Candidate recovery executions so far (stats). */
    std::size_t candidatesRun() const { return nCandidates; }

  private:
    /** Persistence state of one oracle cell. */
    enum class CellState : std::uint8_t
    {
        Untouched, ///< never written
        Modified,  ///< dirty in cache, no writeback in flight
        Pending,   ///< writeback issued, fence not reached
        Persisted, ///< last write guaranteed durable
    };

    /** Independent per-cell record (cfg.detector.granularity bytes). */
    struct OCell
    {
        CellState state = CellState::Untouched;
        bool touched = false;
        bool uninit = false;
        std::int32_t tlast = -1;
        /** Write events applied since the last guaranteed persist,
            ascending by seq — empty iff guaranteed persisted. */
        std::vector<std::uint32_t> tail;
    };

    /** Independent commit-variable clock (paper condition (3)). */
    struct OCommitVar
    {
        AddrRange var{0, 0};
        std::vector<AddrRange> ranges;
        std::int32_t tlast = -1;
        std::int32_t tprelast = -1;
    };

    std::uint64_t cellIndex(Addr a) const;
    std::uint64_t cellCount(Addr a, std::size_t n) const;
    Addr cellAddr(std::uint64_t idx) const;

    /** Advance the scan (cells, clocks, images) to pre-trace @p to. */
    void advance(std::uint32_t to);

    /** Copy one cell's bytes from the working into the durable image. */
    void persistCellBytes(std::uint64_t idx);

    /** Collect the frontier (union of tails) at the current cursor. */
    std::vector<FrontierEvent> collectFrontier() const;

    /**
     * The frontier plus the per-cell prefix chains as a shared
     * CandidateSet (legality, repair and enumeration live in
     * trace/candidates.cc, shared with the driver).
     */
    trace::CandidateSet
    buildCandidateSet(std::vector<FrontierEvent> frontier,
                      const std::map<std::uint32_t, std::size_t> &bitOf)
        const;

    /** Reset the exec pool to the durable image (delta restore). */
    void restoreExecPool();

    /** Apply the candidate's persisted events onto the exec pool. */
    void applyMask(const std::vector<FrontierEvent> &frontier,
                   const trace::SubsetMask &mask,
                   const std::map<std::uint32_t, std::size_t> &bitOf);

    /**
     * Run recovery on the current pool and classify its trace.
     * @p suppressSemantic mirrors the driver's dropped-commit rule: a
     * candidate that drops a commit-variable write shows recovery the
     * previous committed epoch, so commit-window (condition (3))
     * verdicts on it describe a legitimate older state, not a bug.
     */
    std::set<core::BugType> runCandidate(const core::ProgramFn &post,
                                         bool suppressSemantic);

    /** Mirror of the post-read decision procedure over oracle state. */
    int classifyRead(Addr a, std::size_t n,
                     std::map<std::uint64_t, std::uint8_t> &pflags,
                     const std::vector<OCommitVar> &vars) const;

    const OCommitVar *coveringVar(
        Addr a, const std::vector<OCommitVar> &vars) const;
    bool isCommitVarAddr(Addr a,
                         const std::vector<OCommitVar> &vars) const;

    static void registerVar(std::vector<OCommitVar> &vars, Addr a,
                            std::size_t n);
    static void registerRange(std::vector<OCommitVar> &vars, Addr cv,
                              Addr a, std::size_t n);

    const trace::TraceBuffer &pre;
    OracleConfig cfg;
    unsigned gran;
    /**
     * Cached cfg.detector.eadrOn(). Under the flush-free model every
     * store is guaranteed durable on arrival: cells never carry a
     * tail, so every frontier is empty and the all-updates anchor is
     * the only crash state — the oracle's independent restatement of
     * "flush omission is not a bug class under eADR".
     */
    bool eadr;

    pm::PmPool execPool;
    /** All updates applied (mirrors the footnote-3 image). */
    pm::PmImage working;
    /** Only guaranteed-persisted updates applied. */
    pm::PmImage durable;

    std::map<std::uint64_t, OCell> cells;
    /** Cells awaiting the next fence (may hold stale entries; the
        fence re-checks the state, like the FSM's pending list). */
    std::vector<std::uint64_t> pending;
    std::vector<OCommitVar> cvars;
    std::int32_t ts = 0;
    std::uint32_t cursor = 0;

    /** Delta-restore bookkeeping for the exec pool. */
    static constexpr std::size_t restorePageSize = 4096;
    std::set<std::uint32_t> durableDirty;
    bool poolSynced = false;

    std::size_t nCandidates = 0;
};

/**
 * Parse an --oracle mode string: "exhaustive", "sample" or
 * "sample:<n>". @return false (with *err set) on anything else.
 */
bool parseOracleMode(const std::string &mode, bool &exhaustive,
                     std::size_t &sampleCount, std::string *err);

} // namespace xfd::oracle

#endif // XFD_ORACLE_ORACLE_HH
